//! Cross-implementation equivalence: the pipeline-IR programs emitted
//! by `stat4-p4` must agree with the portable `stat4-core`
//! implementations — the reproduction's strongest internal consistency
//! check, run here with property-based inputs.

use p4sim::phv::fields;
use p4sim::{Phv, ProgramBuilder, TargetModel};
use proptest::prelude::*;
use stat4_suite::stat4_core::freq::FrequencyDist;
use stat4_suite::stat4_core::isqrt::approx_isqrt;
use stat4_suite::stat4_core::percentile::PercentileTracker;
use stat4_suite::stat4_p4::fragments::{isqrt_fragment, isqrt_fragment_const_shifts};
use stat4_suite::stat4_p4::{scratch, EchoApp, MedianApp, MedianAppParams, Stat4Config};

fn isqrt_pipe(const_shifts: bool) -> p4sim::Pipeline {
    let mut b = ProgramBuilder::new();
    let frag = if const_shifts {
        isqrt_fragment_const_shifts(&mut b, fields::PAYLOAD_VALUE, scratch::SD)
    } else {
        isqrt_fragment(&mut b, fields::PAYLOAD_VALUE, scratch::SD)
    };
    b.set_control(frag);
    let target = if const_shifts {
        TargetModel::tofino_like()
    } else {
        TargetModel::bmv2()
    };
    b.build(target).expect("valid program")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Both IR square-root variants equal the portable one on random
    /// 64-bit inputs.
    #[test]
    fn ir_isqrt_variants_match_core(x in any::<u64>()) {
        for const_shifts in [false, true] {
            let mut p = isqrt_pipe(const_shifts);
            let mut phv = Phv::new();
            phv.set(fields::PAYLOAD_VALUE, x);
            p.process_phv(&mut phv).expect("ok");
            prop_assert_eq!(phv.get(scratch::SD), approx_isqrt(x));
        }
    }

    /// The echo app's digests equal the portable frequency distribution
    /// for arbitrary value streams.
    #[test]
    fn echo_app_matches_core_freq(values in proptest::collection::vec(-255i64..=255, 1..120)) {
        let mut app = EchoApp::build(&Stat4Config::default()).expect("builds");
        let mut oracle = FrequencyDist::new(-255, 255).expect("domain");
        for &v in &values {
            let mut phv = Phv::new();
            phv.set(fields::PAYLOAD_VALUE, v as u64);
            phv.set(fields::INGRESS_PORT, 1);
            let out = app.pipeline.process_phv(&mut phv).expect("ok");
            oracle.observe(v).expect("in range");
            let d = &out.digests[0].values;
            prop_assert_eq!(d[0], oracle.n_distinct());
            prop_assert_eq!(d[1], oracle.xsum());
            prop_assert_eq!(u128::from(d[2]), oracle.xsumsq());
            prop_assert_eq!(u128::from(d[3]), oracle.variance_nx());
            prop_assert_eq!(d[4], oracle.sd_nx());
        }
    }

    /// The pipeline median tracker equals the portable tracker on
    /// arbitrary streams.
    #[test]
    fn median_app_matches_core_tracker(values in proptest::collection::vec(0u64..48, 1..250)) {
        let mut app = MedianApp::build(MedianAppParams {
            domain: 48,
            ..MedianAppParams::default()
        })
        .expect("builds");
        let mut oracle = PercentileTracker::median(0, 47).expect("domain");
        for &v in &values {
            let mut phv = Phv::new();
            phv.set(fields::PAYLOAD_VALUE, v);
            app.pipeline.process_phv(&mut phv).expect("ok");
            oracle.observe(v as i64).expect("in domain");
            prop_assert_eq!(app.estimate(), oracle.estimate().map(|e| e as u64));
        }
    }
}

/// Deterministic exhaustive sweep near interesting boundaries.
#[test]
fn ir_isqrt_boundary_sweep() {
    let mut dynamic = isqrt_pipe(false);
    let mut constant = isqrt_pipe(true);
    let mut run = |x: u64| {
        let mut phv = Phv::new();
        phv.set(fields::PAYLOAD_VALUE, x);
        dynamic.process_phv(&mut phv).expect("ok");
        let d = phv.get(scratch::SD);
        let mut phv2 = Phv::new();
        phv2.set(fields::PAYLOAD_VALUE, x);
        constant.process_phv(&mut phv2).expect("ok");
        let c = phv2.get(scratch::SD);
        assert_eq!(d, approx_isqrt(x), "dynamic at {x}");
        assert_eq!(c, approx_isqrt(x), "const-shift at {x}");
    };
    for e in 0..64u32 {
        let p = 1u64 << e;
        for delta in [0i64, 1, -1] {
            let x = p.wrapping_add_signed(delta);
            run(x);
        }
    }
}
