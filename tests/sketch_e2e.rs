//! Integration: the sketch application end to end — Zipf-popular
//! traffic through a switch running the count-min program, heavy-hitter
//! digests pushed to the controller, graded against the workload's
//! ground truth.

use netsim::host::{TraceGen, TrafficSource};
use netsim::{P4SwitchNode, RecordingController, Simulation, MICROS};
use p4sim::phv::fields;
use stat4_suite::stat4_p4::{SketchApp, SketchAppParams, DIGEST_HEAVY};
use workloads::ZipfPrefixWorkload;

#[test]
fn heavy_prefixes_surface_via_digests() {
    let workload = ZipfPrefixWorkload {
        prefixes: 256,
        exponent: 1.2,
        packets: 60_000,
        gap_ns: 1_000,
        seed: 6,
    };
    let (schedule, counts) = workload.generate();
    let total: u64 = counts.iter().sum();
    // Ground truth at the app's threshold (1/16 of traffic).
    let heavy_shift = 4u32;
    let truth: Vec<u64> = counts
        .iter()
        .enumerate()
        .filter(|(_, &c)| (c << heavy_shift) > total)
        .map(|(k, _)| u64::from(u32::from(workload.prefix_host(k as u16))))
        .collect();
    assert!(!truth.is_empty(), "Zipf head crosses 1/16");

    let app = SketchApp::build(SketchAppParams {
        rows: 4,
        width_log2: 10,
        heavy_shift,
        sample_log2: 8,
        key_field: fields::IPV4_DST,
    })
    .expect("builds");

    let mut sim = Simulation::new();
    let host = sim.add_node(Box::new(TrafficSource::new(Box::new(TraceGen::new(
        schedule,
    )))));
    let controller = sim.add_node(Box::new(RecordingController::new()));
    let switch = sim.add_node(Box::new(
        P4SwitchNode::new(app.pipeline).with_controller(controller),
    ));
    sim.connect(host, 0, switch, 0, 10 * MICROS);
    sim.connect_control(switch, controller, 100 * MICROS);
    sim.run();

    let rec = sim
        .node_as::<RecordingController>(controller)
        .expect("controller");
    let mut digested: Vec<u64> = rec
        .digests
        .iter()
        .filter(|(_, _, d)| d.id == DIGEST_HEAVY)
        .map(|(_, _, d)| d.values[0])
        .collect();
    digested.sort_unstable();
    digested.dedup();

    assert!(!digested.is_empty(), "heavy hitters digested");
    // The count-min estimate only overestimates, so every true heavy
    // prefix that was sampled must appear; conversely sketch collisions
    // may surface a near-heavy key, but with 4x1024 cells over 256 keys
    // collisions are negligible — require exact agreement on the head.
    let top = truth[0];
    assert!(
        digested.contains(&top),
        "rank-1 prefix {top:#x} digested: {digested:?}"
    );
    for k in &digested {
        // Every digested key must hold at least ~1/16 of traffic in
        // ground truth (allow 10% slack for early-stream sampling).
        let idx = counts
            .iter()
            .enumerate()
            .find(|(i, _)| {
                u64::from(u32::from(workload.prefix_host(*i as u16))) == *k
            })
            .map(|(_, &c)| c)
            .unwrap_or(0);
        assert!(
            (idx << heavy_shift) * 10 >= total * 9,
            "digested key {k:#x} holds only {idx} of {total}"
        );
    }
}
