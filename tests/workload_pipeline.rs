//! Integration: workload frames flowing through real pipeline programs
//! — the parse path (packet crate → p4sim parser → fields) feeding
//! Stat4 updates, cross-checked against workload ground truth.

use p4sim::action::{ActionDef, Operand, Primitive};
use p4sim::control::{CmpOp, Cond, Control};
use p4sim::phv::fields;
use p4sim::program::ProgramBuilder;
use p4sim::table::{MatchKind, TableDef};
use p4sim::TargetModel;
use packet::{EthernetFrame, Ipv4Packet, TcpSegment};
use workloads::{PacketMixWorkload, SynFloodWorkload};

/// A pipeline counting pure SYNs and total packets in two register
/// cells, using the parser-provided `TCP_IS_SYN` field.
fn syn_counter() -> (p4sim::Pipeline, usize) {
    let mut b = ProgramBuilder::new();
    let reg = b.add_register("counts", 64, 2);
    let count_total = b.add_action(ActionDef::new(
        "count_total",
        vec![
            Primitive::RegRead {
                dst: fields::M0,
                register: reg,
                index: Operand::Const(0),
            },
            Primitive::Add {
                dst: fields::M0,
                a: Operand::Field(fields::M0),
                b: Operand::Const(1),
            },
            Primitive::RegWrite {
                register: reg,
                index: Operand::Const(0),
                src: Operand::Field(fields::M0),
            },
        ],
    ));
    let count_syn = b.add_action(ActionDef::new(
        "count_syn",
        vec![
            Primitive::RegRead {
                dst: fields::M0,
                register: reg,
                index: Operand::Const(1),
            },
            Primitive::Add {
                dst: fields::M0,
                a: Operand::Field(fields::M0),
                b: Operand::Const(1),
            },
            Primitive::RegWrite {
                register: reg,
                index: Operand::Const(1),
                src: Operand::Field(fields::M0),
            },
        ],
    ));
    b.set_control(Control::Seq(vec![
        Control::ApplyAction(count_total),
        Control::If {
            cond: Cond::new(
                Operand::Field(fields::TCP_IS_SYN),
                CmpOp::Eq,
                Operand::Const(1),
            ),
            then_branch: Box::new(Control::ApplyAction(count_syn)),
            else_branch: None,
        },
    ]));
    (b.build(TargetModel::bmv2()).expect("valid"), reg)
}

#[test]
fn pipeline_syn_counts_match_workload_truth() {
    let w = SynFloodWorkload {
        background_cps: 400,
        flood_pps: 10_000,
        flood_start: 5_000_000,
        duration: 20_000_000,
        seed: 31,
        ..SynFloodWorkload::default()
    };
    let (schedule, _) = w.generate();

    // Ground truth by direct frame inspection.
    let mut truth_syn = 0u64;
    for (_, frame) in &schedule {
        let eth = EthernetFrame::new_checked(&frame[..]).expect("frame");
        let ip = Ipv4Packet::new_checked(eth.payload()).expect("ip");
        if let Ok(t) = TcpSegment::new_checked(ip.payload()) {
            if t.syn() && !t.ack() {
                truth_syn += 1;
            }
        }
    }

    let (mut pipe, reg) = syn_counter();
    for (t, frame) in &schedule {
        pipe.process_frame(frame, 0, *t).expect("ok");
    }
    assert_eq!(pipe.registers()[reg].cells[0], schedule.len() as u64);
    assert_eq!(pipe.registers()[reg].cells[1], truth_syn);
    assert!(truth_syn > schedule.len() as u64 / 2, "flood dominates");
}

/// A binding table keyed on UDP destination port classifies the packet
/// mix; counts per class must match the generator's ground truth.
#[test]
fn binding_table_classifies_packet_mix() {
    let w = PacketMixWorkload {
        packets: 5_000,
        gap_ns: 1_000,
        seed: 8,
        ..PacketMixWorkload::default()
    };
    let (schedule, kinds) = w.generate();

    let mut b = ProgramBuilder::new();
    let reg = b.add_register("per_kind", 64, 4);
    let bump = b.add_action(ActionDef::new(
        "bump",
        vec![
            Primitive::RegRead {
                dst: fields::M0,
                register: reg,
                index: Operand::Data(0),
            },
            Primitive::Add {
                dst: fields::M0,
                a: Operand::Field(fields::M0),
                b: Operand::Const(1),
            },
            Primitive::RegWrite {
                register: reg,
                index: Operand::Data(0),
                src: Operand::Field(fields::M0),
            },
        ],
    ));
    // Classify: TCP+SYN -> cell 1; TCP other -> cell 0; UDP 443 -> 3;
    // UDP other -> 2. Expressed as a ternary table over parsed fields —
    // the "binding table decides what is counted where" pattern.
    let classify = b.add_table(TableDef {
        name: "classify".into(),
        keys: vec![
            (fields::TCP_VALID, MatchKind::Exact),
            (fields::TCP_IS_SYN, MatchKind::Exact),
            (fields::UDP_DPORT, MatchKind::Range),
        ],
        max_entries: 8,
        allowed_actions: vec![bump],
        default_action: None,
    });
    b.set_control(Control::ApplyTable(classify));
    let mut pipe = b.build(TargetModel::bmv2()).expect("valid");

    use p4sim::table::{Entry, MatchValue};
    use p4sim::RuntimeRequest;
    let insert = |pipe: &mut p4sim::Pipeline, key: Vec<MatchValue>, cell: u64| {
        let r = pipe.runtime(&RuntimeRequest::InsertEntry {
            table: classify,
            entry: Entry {
                key,
                priority: 0,
                action: bump,
                action_data: vec![cell],
            },
        });
        assert!(r.is_ok(), "{r:?}");
    };
    insert(
        &mut pipe,
        vec![
            MatchValue::Exact(1),
            MatchValue::Exact(0),
            MatchValue::Any,
        ],
        0, // TCP data
    );
    insert(
        &mut pipe,
        vec![
            MatchValue::Exact(1),
            MatchValue::Exact(1),
            MatchValue::Any,
        ],
        1, // TCP SYN
    );
    insert(
        &mut pipe,
        vec![
            MatchValue::Exact(0),
            MatchValue::Exact(0),
            MatchValue::Range { lo: 443, hi: 443 },
        ],
        3, // QUIC
    );
    insert(
        &mut pipe,
        vec![
            MatchValue::Exact(0),
            MatchValue::Exact(0),
            MatchValue::Range { lo: 0, hi: 442 },
        ],
        2, // other UDP (the mix generator uses port 53)
    );

    for (t, frame) in &schedule {
        pipe.process_frame(frame, 0, *t).expect("ok");
    }

    let mut truth = [0u64; 4];
    for k in &kinds {
        truth[k.index()] += 1;
    }
    let cells = &pipe.registers()[reg].cells;
    assert_eq!(cells[..4], truth, "per-kind counts match ground truth");
}
