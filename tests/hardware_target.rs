//! Integration: the echo application built for the multiply-less,
//! dynamic-shift-less hardware target, run through the full simulator
//! loop — proving the paper's claim that the statistics survive real
//! hardware restrictions, not just bmv2.

use netsim::host::{TraceGen, TrafficSource};
use netsim::{P4SwitchNode, RecordingController, Simulation, MICROS};
use p4sim::TargetModel;
use stat4_suite::stat4_core::freq::FrequencyDist;
use stat4_suite::stat4_p4::echo::VarianceMode;
use stat4_suite::stat4_p4::{EchoApp, Stat4Config, DIGEST_ECHO};
use workloads::EchoWorkload;

#[test]
fn echo_app_exact_on_hardware_target() {
    let (schedule, values) = EchoWorkload {
        packets: 1_500,
        gap_ns: 5_000,
        seed: 55,
    }
    .generate();

    let app = EchoApp::build_with(
        &Stat4Config::default(),
        TargetModel::tofino_like(),
        VarianceMode::UnrolledShiftAdd { bits: 16 },
    )
    .expect("hardware-legal build");
    assert_eq!(app.pipeline.target().name, "tofino-like");

    let mut sim = Simulation::new();
    let host = sim.add_node(Box::new(TrafficSource::new(Box::new(TraceGen::new(
        schedule,
    )))));
    let controller = sim.add_node(Box::new(RecordingController::new()));
    let switch = sim.add_node(Box::new(
        P4SwitchNode::new(app.pipeline).with_controller(controller),
    ));
    sim.connect(host, 0, switch, 0, 10 * MICROS);
    sim.connect_control(switch, controller, 200 * MICROS);
    sim.run();

    let digests = &sim
        .node_as::<RecordingController>(controller)
        .expect("controller")
        .digests;
    assert_eq!(digests.len(), values.len());

    let mut oracle = FrequencyDist::new(-255, 255).expect("domain");
    for ((_, _, d), v) in digests.iter().zip(&values) {
        assert_eq!(d.id, DIGEST_ECHO);
        oracle.observe(*v).expect("in range");
        assert_eq!(d.values[0], oracle.n_distinct(), "N after {v}");
        assert_eq!(d.values[1], oracle.xsum(), "Xsum after {v}");
        assert_eq!(u128::from(d.values[2]), oracle.xsumsq(), "Xsumsq after {v}");
        assert_eq!(
            u128::from(d.values[3]),
            oracle.variance_nx(),
            "variance after {v} (exact despite the unrolled multiplier)"
        );
        assert_eq!(d.values[4], oracle.sd_nx(), "sd after {v}");
    }
}

/// The hardware build must reject the bmv2-only constructs.
#[test]
fn hardware_target_rejects_runtime_multiplication() {
    assert!(EchoApp::build_with(
        &Stat4Config::default(),
        TargetModel::tofino_like(),
        VarianceMode::ExactMul,
    )
    .is_err());
}
