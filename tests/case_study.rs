//! Integration test: the paper's Sec. 4 case study end to end across
//! seeds — spike detected at the close of its first interval, drill-down
//! pinpoints the right destination, and the pinpoint latency is
//! dominated by control-plane round trips.

use anomaly::drilldown::{DrilldownController, DrilldownPhase, DrilldownTopology};
use netsim::host::{SinkHost, TraceGen, TrafficSource};
use netsim::{P4SwitchNode, Simulation, MICROS, MILLIS};
use stat4_suite::stat4_p4::{CaseStudyApp, CaseStudyParams, Stat4Config};
use std::sync::atomic::AtomicU64;
use std::sync::Arc;
use workloads::{SpikeGroundTruth, SpikeWorkload};

struct Outcome {
    truth: SpikeGroundTruth,
    phase: DrilldownPhase,
    report: anomaly::drilldown::DrilldownReport,
    interval_ns: u64,
    ctrl_delay: u64,
}

fn run_case(seed: u64, ctrl_delay: u64) -> Outcome {
    let params = CaseStudyParams {
        interval_log2: 21, // ~2.1 ms, keeps the test fast
        window_size: 32,
        min_intervals: 8,
        config: Stat4Config {
            counter_num: 2,
            counter_size: 256,
            width_bits: 64,
        },
        ..CaseStudyParams::default()
    };
    let interval_ns = 1u64 << params.interval_log2;
    let workload = SpikeWorkload {
        background_pps: 20_000,
        spike_multiplier: 10,
        spike_start_range: (20 * interval_ns, 21 * interval_ns),
        duration: 21 * interval_ns + 6 * ctrl_delay + 40 * interval_ns,
        seed,
        ..SpikeWorkload::default()
    };
    let (schedule, truth) = workload.generate();
    let app = CaseStudyApp::build(params).expect("builds");
    let handles = app.handles();
    let mut sim = Simulation::new();
    let source = sim.add_node(Box::new(TrafficSource::new(Box::new(TraceGen::new(
        schedule,
    )))));
    let sink = sim.add_node(Box::new(SinkHost::new(Arc::new(AtomicU64::new(0)))));
    let switch = sim.add_node(Box::new(P4SwitchNode::new(app.pipeline)));
    let controller = sim.add_node(Box::new(DrilldownController::new(
        handles,
        switch,
        DrilldownTopology {
            net: 10,
            subnets: 6,
            hosts_per_subnet: 6,
        },
    )));
    sim.node_as_mut::<P4SwitchNode>(switch)
        .expect("switch")
        .controller = Some(controller);
    sim.connect(source, 0, switch, 0, 20 * MICROS);
    sim.connect(switch, 1, sink, 0, 20 * MICROS);
    sim.connect_control(switch, controller, ctrl_delay);
    sim.run();

    let ctl = sim
        .node_as::<DrilldownController>(controller)
        .expect("controller");
    Outcome {
        truth,
        phase: ctl.phase,
        report: ctl.report,
        interval_ns,
        ctrl_delay,
    }
}

#[test]
fn pinpoints_correct_destination_across_seeds() {
    for seed in [1u64, 2, 3, 4, 5] {
        let o = run_case(seed, 2 * MILLIS);
        assert!(
            matches!(o.phase, DrilldownPhase::Done { .. }),
            "seed {seed}: phase {:?}",
            o.phase
        );
        assert_eq!(
            o.report.dest,
            Some(o.truth.spike_dest),
            "seed {seed}: wrong destination"
        );
    }
}

#[test]
fn detection_within_first_interval_after_onset() {
    for seed in [1u64, 2, 3] {
        let o = run_case(seed, 2 * MILLIS);
        let alert_arrival = o.report.spike_alert_at.expect("detected");
        let emitted = alert_arrival - o.ctrl_delay;
        assert!(emitted >= o.truth.spike_start, "seed {seed}");
        // Emitted at the close of the spike's first interval: within
        // one interval of onset plus one inter-packet gap.
        assert!(
            emitted <= o.truth.spike_start + o.interval_ns + o.interval_ns / 4,
            "seed {seed}: emitted {} ns after onset",
            emitted - o.truth.spike_start
        );
    }
}

#[test]
fn pinpoint_latency_scales_with_control_delay() {
    let fast = run_case(1, 2 * MILLIS);
    let slow = run_case(1, 20 * MILLIS);
    let lf = fast.report.pinpoint_latency().expect("completed");
    let ls = slow.report.pinpoint_latency().expect("completed");
    // Two extra drill phases, each needing at least one switch->controller
    // digest and one controller->switch rebind: latency must grow by at
    // least 2 round trips' worth of the extra delay. Digests are only
    // emitted at interval closes, so each drill phase can absorb up to
    // one interval of the added delay into waiting it would have done
    // anyway — subtract that quantization slack from the bound.
    let quantization = 2 * fast.interval_ns;
    assert!(
        ls + quantization >= lf + 4 * (20 - 2) * MILLIS,
        "fast {lf} ns, slow {ls} ns"
    );
    assert_eq!(fast.report.dest, slow.report.dest);
}

#[test]
fn ordering_of_drilldown_milestones() {
    let o = run_case(2, 2 * MILLIS);
    let spike = o.report.spike_alert_at.expect("spike");
    let subnet = o.report.subnet_identified_at.expect("subnet");
    let host = o.report.pinpointed_at.expect("host");
    assert!(spike < subnet, "spike {spike} < subnet {subnet}");
    assert!(subnet < host, "subnet {subnet} < host {host}");
}
