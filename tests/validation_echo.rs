//! Integration test: the paper's Sec. 3 validation experiment at
//! reduced scale (the full 10 000-packet run lives in
//! `repro_validation`). Host → switch → digest → controller, with the
//! host-side oracle checking every digest bit for bit.

use netsim::host::{TraceGen, TrafficSource};
use netsim::{P4SwitchNode, RecordingController, Simulation, MICROS};
use stat4_suite::stat4_core::freq::FrequencyDist;
use stat4_suite::stat4_p4::{EchoApp, Stat4Config, DIGEST_ECHO};
use workloads::EchoWorkload;

fn run_echo(packets: usize, seed: u64) -> (Vec<i64>, Vec<Vec<u64>>, u64) {
    let (schedule, values) = EchoWorkload {
        packets,
        gap_ns: 5_000,
        seed,
    }
    .generate();
    let app = EchoApp::build(&Stat4Config::default()).expect("builds");
    let mut sim = Simulation::new();
    let host = sim.add_node(Box::new(TrafficSource::new(Box::new(TraceGen::new(
        schedule,
    )))));
    let controller = sim.add_node(Box::new(RecordingController::new()));
    let switch = sim.add_node(Box::new(
        P4SwitchNode::new(app.pipeline).with_controller(controller),
    ));
    sim.connect(host, 0, switch, 0, 10 * MICROS);
    sim.connect_control(switch, controller, 200 * MICROS);
    sim.run();
    let digests = sim
        .node_as::<RecordingController>(controller)
        .expect("controller")
        .digests
        .iter()
        .map(|(_, _, d)| {
            assert_eq!(d.id, DIGEST_ECHO);
            d.values.clone()
        })
        .collect();
    let echoes = sim.node_as::<TrafficSource>(host).expect("host").received;
    (values, digests, echoes)
}

#[test]
fn switch_statistics_equal_host_statistics() {
    let (values, digests, echoes) = run_echo(2_000, 77);
    assert_eq!(digests.len(), values.len(), "one digest per packet");
    assert_eq!(echoes, values.len() as u64, "every frame echoed back");

    let mut oracle = FrequencyDist::new(-255, 255).expect("domain");
    for (digest, v) in digests.iter().zip(&values) {
        oracle.observe(*v).expect("in range");
        let expect = vec![
            oracle.n_distinct(),
            oracle.xsum(),
            u64::try_from(oracle.xsumsq()).expect("fits"),
            u64::try_from(oracle.variance_nx()).expect("fits"),
            oracle.sd_nx(),
        ];
        assert_eq!(digest, &expect, "after value {v}");
    }
}

#[test]
fn different_seeds_still_exact() {
    for seed in [1, 2, 3] {
        let (values, digests, _) = run_echo(400, seed);
        let mut oracle = FrequencyDist::new(-255, 255).expect("domain");
        for (digest, v) in digests.iter().zip(&values) {
            oracle.observe(*v).expect("in range");
            assert_eq!(digest[0], oracle.n_distinct());
            assert_eq!(digest[1], oracle.xsum());
            assert_eq!(u128::from(digest[3]), oracle.variance_nx());
        }
    }
}

#[test]
fn determinism_same_seed_same_run() {
    let a = run_echo(300, 9);
    let b = run_echo(300, 9);
    assert_eq!(a.0, b.0);
    assert_eq!(a.1, b.1);
    assert_eq!(a.2, b.2);
}
