//! Ethernet II frame view and builder.

use crate::ParseError;
use std::fmt;

/// A 48-bit MAC address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: MacAddr = MacAddr([0xff; 6]);

    /// A deterministic locally-administered unicast address derived from
    /// an integer id — handy for simulated hosts.
    #[must_use]
    pub fn from_id(id: u32) -> Self {
        let b = id.to_be_bytes();
        // 0x02 = locally administered, unicast.
        MacAddr([0x02, 0x00, b[0], b[1], b[2], b[3]])
    }

    /// True for broadcast/multicast (group bit set).
    #[must_use]
    pub fn is_multicast(&self) -> bool {
        self.0[0] & 0x01 != 0
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = &self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            b[0], b[1], b[2], b[3], b[4], b[5]
        )
    }
}

/// EtherType of the payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EtherType {
    /// IPv4 (0x0800).
    Ipv4,
    /// ARP (0x0806).
    Arp,
    /// Anything else, raw.
    Other(u16),
}

impl From<u16> for EtherType {
    fn from(v: u16) -> Self {
        match v {
            0x0800 => EtherType::Ipv4,
            0x0806 => EtherType::Arp,
            other => EtherType::Other(other),
        }
    }
}

impl From<EtherType> for u16 {
    fn from(v: EtherType) -> u16 {
        match v {
            EtherType::Ipv4 => 0x0800,
            EtherType::Arp => 0x0806,
            EtherType::Other(other) => other,
        }
    }
}

/// Byte length of the Ethernet II header.
pub const HEADER_LEN: usize = 14;

/// A view over a byte buffer interpreted as an Ethernet II frame.
#[derive(Debug, Clone, Copy)]
pub struct EthernetFrame<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> EthernetFrame<T> {
    /// Wraps `buffer` after checking it holds at least a full header.
    ///
    /// # Errors
    ///
    /// [`ParseError::Truncated`] if shorter than 14 bytes.
    pub fn new_checked(buffer: T) -> Result<Self, ParseError> {
        let have = buffer.as_ref().len();
        if have < HEADER_LEN {
            return Err(ParseError::Truncated {
                layer: "ethernet",
                have,
                need: HEADER_LEN,
            });
        }
        Ok(Self { buffer })
    }

    /// Destination MAC address.
    #[must_use]
    pub fn dst(&self) -> MacAddr {
        let b = self.buffer.as_ref();
        MacAddr(b[0..6].try_into().expect("checked length"))
    }

    /// Source MAC address.
    #[must_use]
    pub fn src(&self) -> MacAddr {
        let b = self.buffer.as_ref();
        MacAddr(b[6..12].try_into().expect("checked length"))
    }

    /// EtherType field.
    #[must_use]
    pub fn ethertype(&self) -> EtherType {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[12], b[13]]).into()
    }

    /// The bytes after the header.
    #[must_use]
    pub fn payload(&self) -> &[u8] {
        &self.buffer.as_ref()[HEADER_LEN..]
    }

    /// Consumes the view, returning the buffer.
    pub fn into_inner(self) -> T {
        self.buffer
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> EthernetFrame<T> {
    /// Sets the destination MAC.
    pub fn set_dst(&mut self, mac: MacAddr) {
        self.buffer.as_mut()[0..6].copy_from_slice(&mac.0);
    }

    /// Sets the source MAC.
    pub fn set_src(&mut self, mac: MacAddr) {
        self.buffer.as_mut()[6..12].copy_from_slice(&mac.0);
    }

    /// Sets the EtherType.
    pub fn set_ethertype(&mut self, ty: EtherType) {
        let v: u16 = ty.into();
        self.buffer.as_mut()[12..14].copy_from_slice(&v.to_be_bytes());
    }

    /// Mutable access to the payload bytes.
    pub fn payload_mut(&mut self) -> &mut [u8] {
        &mut self.buffer.as_mut()[HEADER_LEN..]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u8> {
        let mut buf = vec![0u8; HEADER_LEN + 4];
        let mut f = EthernetFrame::new_checked(&mut buf[..]).unwrap();
        f.set_dst(MacAddr::BROADCAST);
        f.set_src(MacAddr::from_id(7));
        f.set_ethertype(EtherType::Ipv4);
        f.payload_mut().copy_from_slice(&[1, 2, 3, 4]);
        buf
    }

    #[test]
    fn roundtrip_fields() {
        let buf = sample();
        let f = EthernetFrame::new_checked(&buf[..]).unwrap();
        assert_eq!(f.dst(), MacAddr::BROADCAST);
        assert_eq!(f.src(), MacAddr::from_id(7));
        assert_eq!(f.ethertype(), EtherType::Ipv4);
        assert_eq!(f.payload(), &[1, 2, 3, 4]);
    }

    #[test]
    fn truncated_rejected() {
        let buf = [0u8; 13];
        assert!(matches!(
            EthernetFrame::new_checked(&buf[..]),
            Err(ParseError::Truncated { layer: "ethernet", .. })
        ));
    }

    #[test]
    fn ethertype_conversions() {
        assert_eq!(EtherType::from(0x0800), EtherType::Ipv4);
        assert_eq!(EtherType::from(0x0806), EtherType::Arp);
        assert_eq!(EtherType::from(0x86dd), EtherType::Other(0x86dd));
        assert_eq!(u16::from(EtherType::Ipv4), 0x0800);
        assert_eq!(u16::from(EtherType::Other(0x1234)), 0x1234);
    }

    #[test]
    fn mac_properties() {
        assert!(MacAddr::BROADCAST.is_multicast());
        assert!(!MacAddr::from_id(1).is_multicast());
        assert_eq!(MacAddr::from_id(1).to_string(), "02:00:00:00:00:01");
        assert_ne!(MacAddr::from_id(1), MacAddr::from_id(2));
    }

    #[test]
    fn exact_header_len_ok() {
        let buf = [0u8; HEADER_LEN];
        let f = EthernetFrame::new_checked(&buf[..]).unwrap();
        assert!(f.payload().is_empty());
    }
}
