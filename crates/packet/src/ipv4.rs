//! IPv4 packet view with real header checksums.

use crate::{checksum, ParseError};
use std::net::Ipv4Addr;

/// IP protocol numbers this stack understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IpProtocol {
    /// ICMP (1).
    Icmp,
    /// TCP (6).
    Tcp,
    /// UDP (17).
    Udp,
    /// Anything else, raw.
    Other(u8),
}

impl From<u8> for IpProtocol {
    fn from(v: u8) -> Self {
        match v {
            1 => IpProtocol::Icmp,
            6 => IpProtocol::Tcp,
            17 => IpProtocol::Udp,
            other => IpProtocol::Other(other),
        }
    }
}

impl From<IpProtocol> for u8 {
    fn from(v: IpProtocol) -> u8 {
        match v {
            IpProtocol::Icmp => 1,
            IpProtocol::Tcp => 6,
            IpProtocol::Udp => 17,
            IpProtocol::Other(other) => other,
        }
    }
}

/// Minimum (option-less) IPv4 header length in bytes.
pub const HEADER_LEN: usize = 20;

/// A view over a byte buffer interpreted as an IPv4 packet (options are
/// accepted but not interpreted).
#[derive(Debug, Clone, Copy)]
pub struct Ipv4Packet<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> Ipv4Packet<T> {
    /// Wraps `buffer` after validating version, header length and total
    /// length.
    ///
    /// # Errors
    ///
    /// [`ParseError::Truncated`], [`ParseError::BadVersion`] or
    /// [`ParseError::BadLength`].
    pub fn new_checked(buffer: T) -> Result<Self, ParseError> {
        let b = buffer.as_ref();
        if b.len() < HEADER_LEN {
            return Err(ParseError::Truncated {
                layer: "ipv4",
                have: b.len(),
                need: HEADER_LEN,
            });
        }
        let version = b[0] >> 4;
        if version != 4 {
            return Err(ParseError::BadVersion {
                layer: "ipv4",
                found: version,
            });
        }
        let ihl = usize::from(b[0] & 0x0f) * 4;
        let total = usize::from(u16::from_be_bytes([b[2], b[3]]));
        if ihl < HEADER_LEN || total < ihl || total > b.len() {
            return Err(ParseError::BadLength { layer: "ipv4" });
        }
        Ok(Self { buffer })
    }

    fn b(&self) -> &[u8] {
        self.buffer.as_ref()
    }

    /// Header length in bytes (IHL × 4).
    #[must_use]
    pub fn header_len(&self) -> usize {
        usize::from(self.b()[0] & 0x0f) * 4
    }

    /// Total packet length from the header.
    #[must_use]
    pub fn total_len(&self) -> usize {
        usize::from(u16::from_be_bytes([self.b()[2], self.b()[3]]))
    }

    /// Time-to-live.
    #[must_use]
    pub fn ttl(&self) -> u8 {
        self.b()[8]
    }

    /// Payload protocol.
    #[must_use]
    pub fn protocol(&self) -> IpProtocol {
        self.b()[9].into()
    }

    /// Header checksum field.
    #[must_use]
    pub fn header_checksum(&self) -> u16 {
        u16::from_be_bytes([self.b()[10], self.b()[11]])
    }

    /// Source address.
    #[must_use]
    pub fn src(&self) -> Ipv4Addr {
        let b = self.b();
        Ipv4Addr::new(b[12], b[13], b[14], b[15])
    }

    /// Destination address.
    #[must_use]
    pub fn dst(&self) -> Ipv4Addr {
        let b = self.b();
        Ipv4Addr::new(b[16], b[17], b[18], b[19])
    }

    /// True if the header checksum verifies.
    #[must_use]
    pub fn verify_checksum(&self) -> bool {
        checksum::verify(&self.b()[..self.header_len()])
    }

    /// The L4 payload (bytes between header and `total_len`).
    #[must_use]
    pub fn payload(&self) -> &[u8] {
        &self.b()[self.header_len()..self.total_len()]
    }

    /// Consumes the view, returning the buffer.
    pub fn into_inner(self) -> T {
        self.buffer
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> Ipv4Packet<T> {
    /// Initialises version/IHL for an option-less header and the given
    /// total length. Callers then set the remaining fields and call
    /// [`Self::fill_checksum`].
    pub fn init(&mut self, total_len: u16) {
        let b = self.buffer.as_mut();
        b[0] = 0x45;
        b[1] = 0;
        b[2..4].copy_from_slice(&total_len.to_be_bytes());
        b[4..8].fill(0); // id / flags / fragment offset
        b[8] = 64; // default TTL
        b[10..12].fill(0);
    }

    /// Sets the TTL.
    pub fn set_ttl(&mut self, ttl: u8) {
        self.buffer.as_mut()[8] = ttl;
    }

    /// Sets the payload protocol.
    pub fn set_protocol(&mut self, p: IpProtocol) {
        self.buffer.as_mut()[9] = p.into();
    }

    /// Sets the source address.
    pub fn set_src(&mut self, a: Ipv4Addr) {
        self.buffer.as_mut()[12..16].copy_from_slice(&a.octets());
    }

    /// Sets the destination address.
    pub fn set_dst(&mut self, a: Ipv4Addr) {
        self.buffer.as_mut()[16..20].copy_from_slice(&a.octets());
    }

    /// Computes and writes the header checksum.
    pub fn fill_checksum(&mut self) {
        let hl = self.header_len();
        let b = self.buffer.as_mut();
        b[10..12].fill(0);
        let c = checksum::checksum(&b[..hl]);
        b[10..12].copy_from_slice(&c.to_be_bytes());
    }

    /// Mutable payload access.
    pub fn payload_mut(&mut self) -> &mut [u8] {
        let hl = self.header_len();
        let tl = self.total_len();
        &mut self.buffer.as_mut()[hl..tl]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(payload: &[u8]) -> Vec<u8> {
        let total = HEADER_LEN + payload.len();
        let mut buf = vec![0u8; total];
        buf[0] = 0x45;
        buf[2..4].copy_from_slice(&(total as u16).to_be_bytes());
        let mut p = Ipv4Packet::new_checked(&mut buf[..]).unwrap();
        p.init(total as u16);
        p.set_protocol(IpProtocol::Udp);
        p.set_src(Ipv4Addr::new(10, 0, 1, 1));
        p.set_dst(Ipv4Addr::new(10, 0, 5, 6));
        p.payload_mut().copy_from_slice(payload);
        p.fill_checksum();
        buf
    }

    #[test]
    fn roundtrip_fields() {
        let buf = sample(&[9, 8, 7]);
        let p = Ipv4Packet::new_checked(&buf[..]).unwrap();
        assert_eq!(p.header_len(), 20);
        assert_eq!(p.total_len(), 23);
        assert_eq!(p.ttl(), 64);
        assert_eq!(p.protocol(), IpProtocol::Udp);
        assert_eq!(p.src(), Ipv4Addr::new(10, 0, 1, 1));
        assert_eq!(p.dst(), Ipv4Addr::new(10, 0, 5, 6));
        assert_eq!(p.payload(), &[9, 8, 7]);
        assert!(p.verify_checksum());
    }

    #[test]
    fn corrupted_checksum_detected() {
        let mut buf = sample(&[1]);
        buf[8] ^= 0x55; // flip TTL bits
        let p = Ipv4Packet::new_checked(&buf[..]).unwrap();
        assert!(!p.verify_checksum());
    }

    #[test]
    fn wrong_version_rejected() {
        let mut buf = sample(&[]);
        buf[0] = 0x65; // version 6
        assert!(matches!(
            Ipv4Packet::new_checked(&buf[..]),
            Err(ParseError::BadVersion { found: 6, .. })
        ));
    }

    #[test]
    fn truncated_rejected() {
        let buf = [0x45u8; 10];
        assert!(matches!(
            Ipv4Packet::new_checked(&buf[..]),
            Err(ParseError::Truncated { .. })
        ));
    }

    #[test]
    fn bad_total_len_rejected() {
        let mut buf = sample(&[1, 2, 3]);
        buf[2..4].copy_from_slice(&100u16.to_be_bytes()); // beyond buffer
        assert!(matches!(
            Ipv4Packet::new_checked(&buf[..]),
            Err(ParseError::BadLength { .. })
        ));
    }

    #[test]
    fn bad_ihl_rejected() {
        let mut buf = sample(&[]);
        buf[0] = 0x42; // IHL = 8 bytes < 20
        assert!(matches!(
            Ipv4Packet::new_checked(&buf[..]),
            Err(ParseError::BadLength { .. })
        ));
    }

    #[test]
    fn protocol_conversions() {
        assert_eq!(IpProtocol::from(6), IpProtocol::Tcp);
        assert_eq!(IpProtocol::from(17), IpProtocol::Udp);
        assert_eq!(IpProtocol::from(1), IpProtocol::Icmp);
        assert_eq!(IpProtocol::from(89), IpProtocol::Other(89));
        assert_eq!(u8::from(IpProtocol::Tcp), 6);
    }
}
