//! # packet
//!
//! Zero-copy Ethernet / IPv4 / TCP / UDP header views and builders, in
//! the style of `smoltcp`: a wrapper type borrows a byte buffer, `new_checked`
//! validates lengths up front, field accessors read/write in place, and
//! `emit`-style builders construct frames without intermediate
//! allocations.
//!
//! The network simulator (`netsim`) moves these frames between hosts and
//! switches; the P4 pipeline (`p4sim`) parses them into header fields;
//! the workload generators synthesise them in bulk. Checksums are real
//! Internet checksums so a parsing bug anywhere in the stack surfaces as
//! a verification failure in tests.
//!
//! ## Example
//!
//! ```
//! use packet::{EthernetFrame, EtherType, Ipv4Packet, IpProtocol, MacAddr, TcpSegment};
//! use packet::builder::PacketBuilder;
//! use std::net::Ipv4Addr;
//!
//! let bytes = PacketBuilder::tcp_syn(
//!     Ipv4Addr::new(192, 0, 2, 1),
//!     Ipv4Addr::new(10, 0, 5, 6),
//!     44123,
//!     80,
//! )
//! .build();
//!
//! let eth = EthernetFrame::new_checked(&bytes[..]).unwrap();
//! assert_eq!(eth.ethertype(), EtherType::Ipv4);
//! let ip = Ipv4Packet::new_checked(eth.payload()).unwrap();
//! assert_eq!(ip.protocol(), IpProtocol::Tcp);
//! assert!(ip.verify_checksum());
//! let tcp = TcpSegment::new_checked(ip.payload()).unwrap();
//! assert!(tcp.syn() && !tcp.ack());
//! # let _ = MacAddr::BROADCAST;
//! ```

pub mod builder;
pub mod checksum;
pub mod ethernet;
pub mod ipv4;
pub mod tcp;
pub mod udp;

pub use ethernet::{EtherType, EthernetFrame, MacAddr};
pub use ipv4::{IpProtocol, Ipv4Packet};
pub use tcp::{TcpFlags, TcpSegment};
pub use udp::UdpDatagram;

use std::fmt;

/// Errors from parsing a buffer as a protocol header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParseError {
    /// Buffer shorter than the fixed header.
    Truncated {
        /// Protocol whose header did not fit.
        layer: &'static str,
        /// Bytes available.
        have: usize,
        /// Bytes needed.
        need: usize,
    },
    /// A length field points beyond the buffer or inside the header.
    BadLength {
        /// Protocol with the inconsistent length.
        layer: &'static str,
    },
    /// Unsupported version (e.g. not IPv4).
    BadVersion {
        /// Protocol with the unsupported version.
        layer: &'static str,
        /// The version found.
        found: u8,
    },
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Truncated { layer, have, need } => {
                write!(f, "{layer}: truncated ({have} bytes, need {need})")
            }
            ParseError::BadLength { layer } => write!(f, "{layer}: inconsistent length field"),
            ParseError::BadVersion { layer, found } => {
                write!(f, "{layer}: unsupported version {found}")
            }
        }
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_error_display() {
        let e = ParseError::Truncated {
            layer: "ipv4",
            have: 10,
            need: 20,
        };
        assert!(e.to_string().contains("ipv4"));
        assert!(e.to_string().contains("10"));
    }
}
