//! RFC 1071 Internet checksum.

use std::net::Ipv4Addr;

/// Computes the one's-complement sum of `data`, folding carries.
#[must_use]
pub fn sum(data: &[u8]) -> u32 {
    let mut acc = 0u32;
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        acc += u32::from(u16::from_be_bytes([c[0], c[1]]));
    }
    if let [last] = chunks.remainder() {
        acc += u32::from(u16::from_be_bytes([*last, 0]));
    }
    acc
}

/// Folds a 32-bit accumulator into the final 16-bit checksum.
#[must_use]
pub fn finish(mut acc: u32) -> u16 {
    while acc > 0xffff {
        acc = (acc & 0xffff) + (acc >> 16);
    }
    !(acc as u16)
}

/// Checksum of a single contiguous buffer.
#[must_use]
pub fn checksum(data: &[u8]) -> u16 {
    finish(sum(data))
}

/// The TCP/UDP pseudo-header contribution.
#[must_use]
pub fn pseudo_header(src: Ipv4Addr, dst: Ipv4Addr, protocol: u8, length: u16) -> u32 {
    sum(&src.octets()) + sum(&dst.octets()) + u32::from(protocol) + u32::from(length)
}

/// True if `data` (whose checksum field is included) verifies.
#[must_use]
pub fn verify(data: &[u8]) -> bool {
    finish(sum(data)) == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Worked example in the style of RFC 1071 Sec. 3: the words 0x0001,
    /// 0xf203, 0xf4f5, 0xf5f6 sum to 0x2dcef, which folds to 0xdcf1.
    #[test]
    fn rfc1071_example() {
        let data = [0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf5, 0xf6];
        let s = sum(&data);
        assert_eq!(s, 0x2dcef);
        let mut folded = s;
        while folded > 0xffff {
            folded = (folded & 0xffff) + (folded >> 16);
        }
        assert_eq!(folded, 0xdcf1);
        assert_eq!(checksum(&data), !0xdcf1u16);
    }

    #[test]
    fn odd_length_pads_with_zero() {
        assert_eq!(checksum(&[0xab]), checksum(&[0xab, 0x00]));
    }

    #[test]
    fn empty_buffer() {
        assert_eq!(checksum(&[]), 0xffff);
    }

    #[test]
    fn verify_roundtrip() {
        // Build a buffer with a checksum field at offset 2 and verify.
        let mut data = vec![0x45, 0x00, 0x00, 0x00, 0x12, 0x34, 0xab, 0xcd];
        let c = checksum(&data);
        data[2] = (c >> 8) as u8;
        data[3] = (c & 0xff) as u8;
        assert!(verify(&data));
        data[4] ^= 0xff;
        assert!(!verify(&data));
    }

    #[test]
    fn pseudo_header_contribution() {
        let p = pseudo_header(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            6,
            20,
        );
        // 0x0a00 + 0x0001 + 0x0a00 + 0x0002 + 6 + 20
        assert_eq!(p, 0x0a00 + 0x0001 + 0x0a00 + 0x0002 + 6 + 20);
    }
}
