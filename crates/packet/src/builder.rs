//! Whole-frame builders for the common packet shapes the experiments use.

use crate::ethernet::{self, EtherType, EthernetFrame, MacAddr};
use crate::ipv4::{self, IpProtocol, Ipv4Packet};
use crate::tcp::{self, TcpFlags, TcpSegment};
use crate::udp::{self, UdpDatagram};
use bytes::Bytes;
use std::net::Ipv4Addr;

/// Fluent builder assembling an Ethernet + IPv4 (+ TCP/UDP) frame with
/// correct lengths and checksums.
#[derive(Debug, Clone)]
pub struct PacketBuilder {
    src_mac: MacAddr,
    dst_mac: MacAddr,
    src_ip: Ipv4Addr,
    dst_ip: Ipv4Addr,
    ttl: u8,
    l4: L4,
    payload: Vec<u8>,
}

#[derive(Debug, Clone)]
enum L4 {
    Raw(u8),
    Tcp { src: u16, dst: u16, flags: TcpFlags },
    Udp { src: u16, dst: u16 },
}

impl PacketBuilder {
    /// Starts a raw-IPv4 builder with protocol number `proto`.
    #[must_use]
    pub fn ipv4(src: Ipv4Addr, dst: Ipv4Addr, proto: u8) -> Self {
        Self {
            src_mac: MacAddr::from_id(1),
            dst_mac: MacAddr::from_id(2),
            src_ip: src,
            dst_ip: dst,
            ttl: 64,
            l4: L4::Raw(proto),
            payload: Vec::new(),
        }
    }

    /// Starts a UDP builder.
    #[must_use]
    pub fn udp(src: Ipv4Addr, dst: Ipv4Addr, sport: u16, dport: u16) -> Self {
        Self {
            l4: L4::Udp {
                src: sport,
                dst: dport,
            },
            ..Self::ipv4(src, dst, 17)
        }
    }

    /// Starts a TCP builder with explicit flags.
    #[must_use]
    pub fn tcp(src: Ipv4Addr, dst: Ipv4Addr, sport: u16, dport: u16, flags: TcpFlags) -> Self {
        Self {
            l4: L4::Tcp {
                src: sport,
                dst: dport,
                flags,
            },
            ..Self::ipv4(src, dst, 6)
        }
    }

    /// Starts a TCP SYN builder — the SYN-flood workload's unit.
    #[must_use]
    pub fn tcp_syn(src: Ipv4Addr, dst: Ipv4Addr, sport: u16, dport: u16) -> Self {
        Self::tcp(src, dst, sport, dport, TcpFlags::syn())
    }

    /// Overrides the MAC addresses.
    #[must_use]
    pub fn macs(mut self, src: MacAddr, dst: MacAddr) -> Self {
        self.src_mac = src;
        self.dst_mac = dst;
        self
    }

    /// Overrides the TTL.
    #[must_use]
    pub fn ttl(mut self, ttl: u8) -> Self {
        self.ttl = ttl;
        self
    }

    /// Sets the L4 payload (or L3 payload for raw builders).
    #[must_use]
    pub fn payload(mut self, bytes: &[u8]) -> Self {
        self.payload = bytes.to_vec();
        self
    }

    /// Assembles the frame.
    ///
    /// # Panics
    ///
    /// Panics if the assembled packet would exceed 65535 bytes of IPv4
    /// length (the builder is for test/workload frames, not jumbograms).
    #[must_use]
    pub fn build(&self) -> Vec<u8> {
        let l4_header = match self.l4 {
            L4::Raw(_) => 0,
            L4::Tcp { .. } => tcp::HEADER_LEN,
            L4::Udp { .. } => udp::HEADER_LEN,
        };
        let ip_total = ipv4::HEADER_LEN + l4_header + self.payload.len();
        assert!(ip_total <= 65535, "packet too large");
        let total = ethernet::HEADER_LEN + ip_total;
        let mut buf = vec![0u8; total];

        let mut eth = EthernetFrame::new_checked(&mut buf[..]).expect("sized buffer");
        eth.set_src(self.src_mac);
        eth.set_dst(self.dst_mac);
        eth.set_ethertype(EtherType::Ipv4);

        {
            let ip_buf = &mut buf[ethernet::HEADER_LEN..];
            ip_buf[0] = 0x45;
            ip_buf[2..4].copy_from_slice(&(ip_total as u16).to_be_bytes());
            let mut ip = Ipv4Packet::new_checked(ip_buf).expect("initialised header");
            ip.init(ip_total as u16);
            ip.set_ttl(self.ttl);
            ip.set_src(self.src_ip);
            ip.set_dst(self.dst_ip);
            match self.l4 {
                L4::Raw(p) => ip.set_protocol(IpProtocol::Other(p)),
                L4::Tcp { .. } => ip.set_protocol(IpProtocol::Tcp),
                L4::Udp { .. } => ip.set_protocol(IpProtocol::Udp),
            }
            ip.fill_checksum();
        }

        let l4_off = ethernet::HEADER_LEN + ipv4::HEADER_LEN;
        match self.l4 {
            L4::Raw(_) => {
                buf[l4_off..].copy_from_slice(&self.payload);
            }
            L4::Tcp { src, dst, flags } => {
                let seg = &mut buf[l4_off..];
                seg[12] = 5 << 4;
                let mut t = TcpSegment::new_checked(&mut *seg).expect("initialised header");
                t.init();
                t.set_ports(src, dst);
                t.set_flags(flags);
                seg[tcp::HEADER_LEN..].copy_from_slice(&self.payload);
                let mut t = TcpSegment::new_checked(&mut *seg).expect("initialised header");
                t.fill_checksum(self.src_ip, self.dst_ip);
            }
            L4::Udp { src, dst } => {
                let seg = &mut buf[l4_off..];
                let len = (udp::HEADER_LEN + self.payload.len()) as u16;
                seg[4..6].copy_from_slice(&len.to_be_bytes());
                let mut u = UdpDatagram::new_checked(&mut *seg).expect("initialised header");
                u.set_ports(src, dst);
                u.payload_mut().copy_from_slice(&self.payload);
                u.fill_checksum(self.src_ip, self.dst_ip);
            }
        }
        buf
    }

    /// Assembles into [`Bytes`] for cheap cloning across simulator nodes.
    #[must_use]
    pub fn build_bytes(&self) -> Bytes {
        Bytes::from(self.build())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const S: Ipv4Addr = Ipv4Addr::new(192, 0, 2, 1);
    const D: Ipv4Addr = Ipv4Addr::new(10, 0, 5, 6);

    #[test]
    fn udp_frame_parses_back() {
        let buf = PacketBuilder::udp(S, D, 1234, 53).payload(b"query").build();
        let eth = EthernetFrame::new_checked(&buf[..]).unwrap();
        assert_eq!(eth.ethertype(), EtherType::Ipv4);
        let ip = Ipv4Packet::new_checked(eth.payload()).unwrap();
        assert!(ip.verify_checksum());
        assert_eq!(ip.protocol(), IpProtocol::Udp);
        assert_eq!((ip.src(), ip.dst()), (S, D));
        let udp = UdpDatagram::new_checked(ip.payload()).unwrap();
        assert_eq!((udp.src_port(), udp.dst_port()), (1234, 53));
        assert_eq!(udp.payload(), b"query");
        assert!(udp.verify_checksum(S, D));
    }

    #[test]
    fn tcp_syn_parses_back() {
        let buf = PacketBuilder::tcp_syn(S, D, 44123, 80).build();
        let eth = EthernetFrame::new_checked(&buf[..]).unwrap();
        let ip = Ipv4Packet::new_checked(eth.payload()).unwrap();
        assert_eq!(ip.protocol(), IpProtocol::Tcp);
        let tcp = TcpSegment::new_checked(ip.payload()).unwrap();
        assert!(tcp.syn() && !tcp.ack());
        assert!(tcp.verify_checksum(S, D));
    }

    #[test]
    fn raw_ipv4_payload() {
        let buf = PacketBuilder::ipv4(S, D, 0xfd).payload(&[1, 2, 3, 4]).build();
        let eth = EthernetFrame::new_checked(&buf[..]).unwrap();
        let ip = Ipv4Packet::new_checked(eth.payload()).unwrap();
        assert_eq!(ip.protocol(), IpProtocol::Other(0xfd));
        assert_eq!(ip.payload(), &[1, 2, 3, 4]);
        assert!(ip.verify_checksum());
    }

    #[test]
    fn custom_macs_and_ttl() {
        let buf = PacketBuilder::udp(S, D, 1, 2)
            .macs(MacAddr::from_id(9), MacAddr::BROADCAST)
            .ttl(3)
            .build();
        let eth = EthernetFrame::new_checked(&buf[..]).unwrap();
        assert_eq!(eth.src(), MacAddr::from_id(9));
        assert_eq!(eth.dst(), MacAddr::BROADCAST);
        let ip = Ipv4Packet::new_checked(eth.payload()).unwrap();
        assert_eq!(ip.ttl(), 3);
    }

    #[test]
    fn bytes_variant_identical() {
        let b1 = PacketBuilder::udp(S, D, 5, 6).payload(b"x").build();
        let b2 = PacketBuilder::udp(S, D, 5, 6).payload(b"x").build_bytes();
        assert_eq!(&b1[..], &b2[..]);
    }
}
