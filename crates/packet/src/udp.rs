//! UDP datagram view with pseudo-header checksums.

use crate::{checksum, ParseError};
use std::net::Ipv4Addr;

/// UDP header length in bytes.
pub const HEADER_LEN: usize = 8;

/// A view over a byte buffer interpreted as a UDP datagram.
#[derive(Debug, Clone, Copy)]
pub struct UdpDatagram<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> UdpDatagram<T> {
    /// Wraps `buffer` after validating the header and length field.
    ///
    /// # Errors
    ///
    /// [`ParseError::Truncated`] or [`ParseError::BadLength`].
    pub fn new_checked(buffer: T) -> Result<Self, ParseError> {
        let b = buffer.as_ref();
        if b.len() < HEADER_LEN {
            return Err(ParseError::Truncated {
                layer: "udp",
                have: b.len(),
                need: HEADER_LEN,
            });
        }
        let len = usize::from(u16::from_be_bytes([b[4], b[5]]));
        if len < HEADER_LEN || len > b.len() {
            return Err(ParseError::BadLength { layer: "udp" });
        }
        Ok(Self { buffer })
    }

    fn b(&self) -> &[u8] {
        self.buffer.as_ref()
    }

    /// Source port.
    #[must_use]
    pub fn src_port(&self) -> u16 {
        u16::from_be_bytes([self.b()[0], self.b()[1]])
    }

    /// Destination port.
    #[must_use]
    pub fn dst_port(&self) -> u16 {
        u16::from_be_bytes([self.b()[2], self.b()[3]])
    }

    /// Datagram length from the header (header + payload).
    #[must_use]
    pub fn len_field(&self) -> usize {
        usize::from(u16::from_be_bytes([self.b()[4], self.b()[5]]))
    }

    /// Payload bytes.
    #[must_use]
    pub fn payload(&self) -> &[u8] {
        &self.b()[HEADER_LEN..self.len_field()]
    }

    /// Verifies the checksum (a zero field means "not computed", which
    /// RFC 768 permits; that verifies trivially).
    #[must_use]
    pub fn verify_checksum(&self, src: Ipv4Addr, dst: Ipv4Addr) -> bool {
        let b = &self.b()[..self.len_field()];
        let stored = u16::from_be_bytes([b[6], b[7]]);
        if stored == 0 {
            return true;
        }
        let len = u16::try_from(b.len()).unwrap_or(u16::MAX);
        let acc = checksum::pseudo_header(src, dst, 17, len) + checksum::sum(b);
        checksum::finish(acc) == 0
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> UdpDatagram<T> {
    /// Sets source/destination ports.
    pub fn set_ports(&mut self, src: u16, dst: u16) {
        let b = self.buffer.as_mut();
        b[0..2].copy_from_slice(&src.to_be_bytes());
        b[2..4].copy_from_slice(&dst.to_be_bytes());
    }

    /// Sets the length field.
    pub fn set_len_field(&mut self, len: u16) {
        self.buffer.as_mut()[4..6].copy_from_slice(&len.to_be_bytes());
    }

    /// Computes and writes the checksum for the pseudo-header, mapping
    /// an all-zero result to 0xffff per RFC 768.
    pub fn fill_checksum(&mut self, src: Ipv4Addr, dst: Ipv4Addr) {
        let len_field = {
            let b = self.buffer.as_ref();
            usize::from(u16::from_be_bytes([b[4], b[5]]))
        };
        let b = self.buffer.as_mut();
        b[6..8].fill(0);
        let region = &b[..len_field];
        let len = u16::try_from(region.len()).unwrap_or(u16::MAX);
        let acc = checksum::pseudo_header(src, dst, 17, len) + checksum::sum(region);
        let mut c = checksum::finish(acc);
        if c == 0 {
            c = 0xffff;
        }
        b[6..8].copy_from_slice(&c.to_be_bytes());
    }

    /// Mutable payload access.
    pub fn payload_mut(&mut self) -> &mut [u8] {
        let len = {
            let b = self.buffer.as_ref();
            usize::from(u16::from_be_bytes([b[4], b[5]]))
        };
        &mut self.buffer.as_mut()[HEADER_LEN..len]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: Ipv4Addr = Ipv4Addr::new(192, 0, 2, 9);
    const DST: Ipv4Addr = Ipv4Addr::new(10, 0, 1, 6);

    fn sample(payload: &[u8]) -> Vec<u8> {
        let total = HEADER_LEN + payload.len();
        let mut buf = vec![0u8; total];
        buf[4..6].copy_from_slice(&(total as u16).to_be_bytes());
        let mut u = UdpDatagram::new_checked(&mut buf[..]).unwrap();
        u.set_ports(5353, 53);
        u.payload_mut().copy_from_slice(payload);
        u.fill_checksum(SRC, DST);
        buf
    }

    #[test]
    fn roundtrip_fields() {
        let buf = sample(b"hello");
        let u = UdpDatagram::new_checked(&buf[..]).unwrap();
        assert_eq!(u.src_port(), 5353);
        assert_eq!(u.dst_port(), 53);
        assert_eq!(u.len_field(), 13);
        assert_eq!(u.payload(), b"hello");
        assert!(u.verify_checksum(SRC, DST));
    }

    #[test]
    fn corruption_detected() {
        let mut buf = sample(b"hello");
        buf[HEADER_LEN] ^= 0x01;
        let u = UdpDatagram::new_checked(&buf[..]).unwrap();
        assert!(!u.verify_checksum(SRC, DST));
    }

    #[test]
    fn zero_checksum_accepted() {
        let mut buf = sample(b"x");
        buf[6..8].fill(0);
        let u = UdpDatagram::new_checked(&buf[..]).unwrap();
        assert!(u.verify_checksum(SRC, DST), "zero = not computed");
    }

    #[test]
    fn truncated_and_bad_length() {
        assert!(matches!(
            UdpDatagram::new_checked(&[0u8; 7][..]),
            Err(ParseError::Truncated { .. })
        ));
        let mut buf = [0u8; 12];
        buf[4..6].copy_from_slice(&20u16.to_be_bytes()); // beyond buffer
        assert!(matches!(
            UdpDatagram::new_checked(&buf[..]),
            Err(ParseError::BadLength { .. })
        ));
        buf[4..6].copy_from_slice(&4u16.to_be_bytes()); // inside header
        assert!(matches!(
            UdpDatagram::new_checked(&buf[..]),
            Err(ParseError::BadLength { .. })
        ));
    }

    #[test]
    fn empty_payload() {
        let buf = sample(&[]);
        let u = UdpDatagram::new_checked(&buf[..]).unwrap();
        assert!(u.payload().is_empty());
        assert!(u.verify_checksum(SRC, DST));
    }
}
