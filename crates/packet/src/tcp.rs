//! TCP segment view with pseudo-header checksums.

use crate::{checksum, ParseError};
use std::net::Ipv4Addr;

/// TCP flag bits (low byte of the flags field).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TcpFlags(pub u8);

impl TcpFlags {
    /// FIN flag bit.
    pub const FIN: u8 = 0x01;
    /// SYN flag bit.
    pub const SYN: u8 = 0x02;
    /// RST flag bit.
    pub const RST: u8 = 0x04;
    /// PSH flag bit.
    pub const PSH: u8 = 0x08;
    /// ACK flag bit.
    pub const ACK: u8 = 0x10;

    /// A pure SYN.
    #[must_use]
    pub fn syn() -> Self {
        TcpFlags(Self::SYN)
    }

    /// SYN+ACK.
    #[must_use]
    pub fn syn_ack() -> Self {
        TcpFlags(Self::SYN | Self::ACK)
    }

    /// Plain ACK.
    #[must_use]
    pub fn ack() -> Self {
        TcpFlags(Self::ACK)
    }

    /// True if the given bit is set.
    #[must_use]
    pub fn contains(&self, bit: u8) -> bool {
        self.0 & bit != 0
    }
}

/// Minimum (option-less) TCP header length in bytes.
pub const HEADER_LEN: usize = 20;

/// A view over a byte buffer interpreted as a TCP segment.
#[derive(Debug, Clone, Copy)]
pub struct TcpSegment<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> TcpSegment<T> {
    /// Wraps `buffer` after validating the header length.
    ///
    /// # Errors
    ///
    /// [`ParseError::Truncated`] or [`ParseError::BadLength`] (data
    /// offset smaller than 20 bytes or beyond the buffer).
    pub fn new_checked(buffer: T) -> Result<Self, ParseError> {
        let b = buffer.as_ref();
        if b.len() < HEADER_LEN {
            return Err(ParseError::Truncated {
                layer: "tcp",
                have: b.len(),
                need: HEADER_LEN,
            });
        }
        let off = usize::from(b[12] >> 4) * 4;
        if off < HEADER_LEN || off > b.len() {
            return Err(ParseError::BadLength { layer: "tcp" });
        }
        Ok(Self { buffer })
    }

    fn b(&self) -> &[u8] {
        self.buffer.as_ref()
    }

    /// Source port.
    #[must_use]
    pub fn src_port(&self) -> u16 {
        u16::from_be_bytes([self.b()[0], self.b()[1]])
    }

    /// Destination port.
    #[must_use]
    pub fn dst_port(&self) -> u16 {
        u16::from_be_bytes([self.b()[2], self.b()[3]])
    }

    /// Sequence number.
    #[must_use]
    pub fn seq(&self) -> u32 {
        u32::from_be_bytes(self.b()[4..8].try_into().expect("checked length"))
    }

    /// Acknowledgement number.
    #[must_use]
    pub fn ack_number(&self) -> u32 {
        u32::from_be_bytes(self.b()[8..12].try_into().expect("checked length"))
    }

    /// Header length in bytes (data offset × 4).
    #[must_use]
    pub fn header_len(&self) -> usize {
        usize::from(self.b()[12] >> 4) * 4
    }

    /// The flags byte.
    #[must_use]
    pub fn flags(&self) -> TcpFlags {
        TcpFlags(self.b()[13])
    }

    /// True if SYN is set.
    #[must_use]
    pub fn syn(&self) -> bool {
        self.flags().contains(TcpFlags::SYN)
    }

    /// True if ACK is set.
    #[must_use]
    pub fn ack(&self) -> bool {
        self.flags().contains(TcpFlags::ACK)
    }

    /// True if FIN is set.
    #[must_use]
    pub fn fin(&self) -> bool {
        self.flags().contains(TcpFlags::FIN)
    }

    /// True if RST is set.
    #[must_use]
    pub fn rst(&self) -> bool {
        self.flags().contains(TcpFlags::RST)
    }

    /// The payload after options.
    #[must_use]
    pub fn payload(&self) -> &[u8] {
        &self.b()[self.header_len()..]
    }

    /// Verifies the checksum against the pseudo-header for `src`/`dst`.
    #[must_use]
    pub fn verify_checksum(&self, src: Ipv4Addr, dst: Ipv4Addr) -> bool {
        let b = self.b();
        let len = u16::try_from(b.len()).unwrap_or(u16::MAX);
        let acc = checksum::pseudo_header(src, dst, 6, len) + checksum::sum(b);
        checksum::finish(acc) == 0
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> TcpSegment<T> {
    /// Initialises an option-less header (data offset 5).
    pub fn init(&mut self) {
        let b = self.buffer.as_mut();
        b[..HEADER_LEN].fill(0);
        b[12] = 5 << 4;
        // A plausible default receive window.
        b[14..16].copy_from_slice(&0xffffu16.to_be_bytes());
    }

    /// Sets source/destination ports.
    pub fn set_ports(&mut self, src: u16, dst: u16) {
        let b = self.buffer.as_mut();
        b[0..2].copy_from_slice(&src.to_be_bytes());
        b[2..4].copy_from_slice(&dst.to_be_bytes());
    }

    /// Sets the sequence number.
    pub fn set_seq(&mut self, seq: u32) {
        self.buffer.as_mut()[4..8].copy_from_slice(&seq.to_be_bytes());
    }

    /// Sets the acknowledgement number.
    pub fn set_ack_number(&mut self, ack: u32) {
        self.buffer.as_mut()[8..12].copy_from_slice(&ack.to_be_bytes());
    }

    /// Sets the flags byte.
    pub fn set_flags(&mut self, flags: TcpFlags) {
        self.buffer.as_mut()[13] = flags.0;
    }

    /// Computes and writes the checksum for the pseudo-header.
    pub fn fill_checksum(&mut self, src: Ipv4Addr, dst: Ipv4Addr) {
        let b = self.buffer.as_mut();
        b[16..18].fill(0);
        let len = u16::try_from(b.len()).unwrap_or(u16::MAX);
        let acc = checksum::pseudo_header(src, dst, 6, len) + checksum::sum(b);
        let c = checksum::finish(acc);
        b[16..18].copy_from_slice(&c.to_be_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: Ipv4Addr = Ipv4Addr::new(192, 0, 2, 1);
    const DST: Ipv4Addr = Ipv4Addr::new(10, 0, 5, 6);

    fn sample(flags: TcpFlags, payload: &[u8]) -> Vec<u8> {
        let mut buf = vec![0u8; HEADER_LEN + payload.len()];
        // A zeroed buffer has data offset 0 and would fail validation;
        // set it before wrapping.
        buf[12] = 5 << 4;
        let mut t = TcpSegment::new_checked(&mut buf[..]).unwrap();
        t.init();
        t.set_ports(44123, 80);
        t.set_seq(0x01020304);
        t.set_ack_number(0x0a0b0c0d);
        t.set_flags(flags);
        buf[HEADER_LEN..].copy_from_slice(payload);
        let mut t = TcpSegment::new_checked(&mut buf[..]).unwrap();
        t.fill_checksum(SRC, DST);
        buf
    }

    #[test]
    fn roundtrip_fields() {
        let buf = sample(TcpFlags::syn_ack(), &[0xde, 0xad]);
        let t = TcpSegment::new_checked(&buf[..]).unwrap();
        assert_eq!(t.src_port(), 44123);
        assert_eq!(t.dst_port(), 80);
        assert_eq!(t.seq(), 0x01020304);
        assert_eq!(t.ack_number(), 0x0a0b0c0d);
        assert!(t.syn() && t.ack() && !t.fin() && !t.rst());
        assert_eq!(t.payload(), &[0xde, 0xad]);
        assert!(t.verify_checksum(SRC, DST));
    }

    #[test]
    fn checksum_catches_corruption() {
        let mut buf = sample(TcpFlags::syn(), &[1, 2, 3]);
        buf[HEADER_LEN] ^= 0xff;
        let t = TcpSegment::new_checked(&buf[..]).unwrap();
        assert!(!t.verify_checksum(SRC, DST));
        // Also wrong pseudo-header (different dst) must fail.
        let buf2 = sample(TcpFlags::syn(), &[1, 2, 3]);
        let t2 = TcpSegment::new_checked(&buf2[..]).unwrap();
        assert!(!t2.verify_checksum(SRC, Ipv4Addr::new(10, 0, 5, 7)));
    }

    #[test]
    fn truncated_rejected() {
        let buf = [0u8; 19];
        assert!(matches!(
            TcpSegment::new_checked(&buf[..]),
            Err(ParseError::Truncated { .. })
        ));
    }

    #[test]
    fn bad_data_offset_rejected() {
        let mut buf = [0u8; HEADER_LEN];
        buf[12] = 4 << 4; // 16 bytes < minimum
        assert!(matches!(
            TcpSegment::new_checked(&buf[..]),
            Err(ParseError::BadLength { .. })
        ));
        buf[12] = 15 << 4; // 60 bytes > buffer
        assert!(matches!(
            TcpSegment::new_checked(&buf[..]),
            Err(ParseError::BadLength { .. })
        ));
    }

    #[test]
    fn flag_constructors() {
        assert!(TcpFlags::syn().contains(TcpFlags::SYN));
        assert!(!TcpFlags::syn().contains(TcpFlags::ACK));
        assert!(TcpFlags::syn_ack().contains(TcpFlags::ACK));
        assert!(TcpFlags::ack().contains(TcpFlags::ACK));
    }
}
