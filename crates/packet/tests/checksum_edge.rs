//! RFC 1071 checksum edge cases, exercised end to end through built
//! frames: odd-length payloads, the UDP zero-checksum conventions, and
//! accumulator wraparound carries.

use packet::builder::PacketBuilder;
use packet::{checksum, EthernetFrame, Ipv4Packet, TcpSegment, UdpDatagram};
use std::net::Ipv4Addr;

const SRC: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
const DST: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

/// Reference one's-complement checksum with a wide accumulator — no
/// intermediate folding, so it cannot share a carry bug with the
/// implementation under test.
fn reference_checksum(data: &[u8]) -> u16 {
    let mut acc: u64 = 0;
    for c in data.chunks(2) {
        let w = if c.len() == 2 {
            u16::from_be_bytes([c[0], c[1]])
        } else {
            u16::from_be_bytes([c[0], 0])
        };
        acc += u64::from(w);
    }
    while acc > 0xffff {
        acc = (acc & 0xffff) + (acc >> 16);
    }
    !(acc as u16)
}

// ------------------------------------------------------- odd payloads

#[test]
fn udp_odd_length_payloads_verify_end_to_end() {
    // 1..=9-byte payloads cover every odd/even boundary around the
    // virtual zero pad byte.
    for n in 1usize..=9 {
        let payload: Vec<u8> = (0..n).map(|i| 0xa0 | i as u8).collect();
        let frame = PacketBuilder::udp(SRC, DST, 4000, 5000)
            .payload(&payload)
            .build();
        let eth = EthernetFrame::new_checked(frame.as_slice()).unwrap();
        let ip = Ipv4Packet::new_checked(eth.payload()).unwrap();
        let udp = UdpDatagram::new_checked(ip.payload()).unwrap();
        assert!(
            udp.verify_checksum(ip.src(), ip.dst()),
            "{n}-byte payload must verify"
        );
        assert_eq!(udp.payload(), payload.as_slice());
    }
}

#[test]
fn tcp_odd_length_payload_verifies() {
    let frame = PacketBuilder::tcp(SRC, DST, 1234, 80, packet::TcpFlags::ack())
        .payload(&[0xde, 0xad, 0xbe])
        .build();
    let eth = EthernetFrame::new_checked(frame.as_slice()).unwrap();
    let ip = Ipv4Packet::new_checked(eth.payload()).unwrap();
    let tcp = TcpSegment::new_checked(ip.payload()).unwrap();
    assert!(tcp.verify_checksum(ip.src(), ip.dst()));
}

#[test]
fn odd_pad_byte_is_virtual_not_part_of_the_message() {
    // Padding applies to the checksum only: [ab] and [ab, 00] checksum
    // identically, but corrupting the would-be pad position of a longer
    // buffer must still be detected.
    assert_eq!(checksum::checksum(&[0xab]), checksum::checksum(&[0xab, 0]));
    assert_ne!(
        checksum::checksum(&[0xab, 0x01]),
        checksum::checksum(&[0xab])
    );
}

// --------------------------------------------------- zero UDP checksum

#[test]
fn udp_zero_checksum_means_unverified() {
    // RFC 768: an all-zero checksum field means "no checksum computed";
    // receivers must accept the datagram.
    let frame = PacketBuilder::udp(SRC, DST, 4000, 5000)
        .payload(b"hello")
        .build();
    let eth = EthernetFrame::new_checked(frame.as_slice()).unwrap();
    let ip = Ipv4Packet::new_checked(eth.payload()).unwrap();
    let ip_header_len = ip.payload().as_ptr() as usize - eth.payload().as_ptr() as usize;
    let udp_off = 14 + ip_header_len + 6; // eth + ip header + checksum offset
    let mut raw = frame.clone();
    raw[udp_off] = 0;
    raw[udp_off + 1] = 0;
    let eth = EthernetFrame::new_checked(raw.as_slice()).unwrap();
    let ip = Ipv4Packet::new_checked(eth.payload()).unwrap();
    let udp = UdpDatagram::new_checked(ip.payload()).unwrap();
    assert!(
        udp.verify_checksum(ip.src(), ip.dst()),
        "zero checksum field = not computed = accepted"
    );
}

#[test]
fn udp_computed_zero_transmits_as_ffff() {
    // RFC 768's other half: a datagram whose checksum *computes* to
    // zero must be sent as 0xffff (zero is reserved for "none"), and
    // 0xffff must verify. Search for a payload byte that makes the sum
    // come out to 0xffff pre-inversion.
    let mut found = false;
    for a in 0..=255u8 {
        for b in 0..=255u8 {
            let frame = PacketBuilder::udp(SRC, DST, 4000, 5000)
                .payload(&[a, b])
                .build();
            let eth = EthernetFrame::new_checked(frame.as_slice()).unwrap();
            let ip = Ipv4Packet::new_checked(eth.payload()).unwrap();
            let udp = UdpDatagram::new_checked(ip.payload()).unwrap();
            let stored = u16::from_be_bytes([ip.payload()[6], ip.payload()[7]]);
            assert_ne!(stored, 0, "builder must never emit the reserved zero");
            assert!(udp.verify_checksum(ip.src(), ip.dst()));
            if stored == 0xffff {
                found = true;
            }
        }
    }
    assert!(found, "some 2-byte payload must hit the 0xffff mapping");
}

// --------------------------------------------------- wraparound carries

#[test]
fn single_fold_carry() {
    // Two 0xffff words: acc = 0x1fffe, one fold -> 0xffff, sum 0 after
    // inversion.
    assert_eq!(checksum::checksum(&[0xff, 0xff, 0xff, 0xff]), 0);
}

#[test]
fn multi_fold_carry_matches_wide_reference() {
    // Runs of 0xffff words alone never need a second fold (k·0xffff
    // always folds straight to 0xffff), so build the accumulator up to
    // 0xffff0002: 65536 words of 0xffff plus one word of 0x0002. The
    // first fold yields 0xffff + 0x0002 = 0x10001 > 0xffff, forcing a
    // second; a buggy single-fold implementation diverges here.
    let mut data = vec![0xffu8; 131_072];
    data.extend_from_slice(&[0x00, 0x02]);
    let acc = checksum::sum(&data);
    assert!(
        (acc & 0xffff) + (acc >> 16) > 0xffff,
        "test vector must actually need a second fold (acc = {acc:#x})"
    );
    assert_eq!(checksum::checksum(&data), reference_checksum(&data));
}

#[test]
fn random_buffers_match_wide_reference() {
    // Deterministic pseudo-random buffers of every parity, including
    // carry-heavy high-byte runs.
    let mut state = 0x1234_5678_9abc_def0u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for len in [1usize, 2, 3, 64, 65, 1499, 1500] {
        let data: Vec<u8> = (0..len).map(|_| (next() >> 32) as u8).collect();
        assert_eq!(
            checksum::checksum(&data),
            reference_checksum(&data),
            "len {len}"
        );
        let heavy: Vec<u8> = (0..len).map(|i| 0xf0 | (i as u8 & 0xf)).collect();
        assert_eq!(
            checksum::checksum(&heavy),
            reference_checksum(&heavy),
            "heavy len {len}"
        );
    }
}

#[test]
fn verify_detects_any_single_bit_flip() {
    let mut data = PacketBuilder::udp(SRC, DST, 1, 2).payload(b"stat4").build();
    // Take the UDP region with a valid checksum and check bit-flip
    // detection over the whole frame tail (checksummed region).
    let eth = EthernetFrame::new_checked(data.as_slice()).unwrap();
    let ip = Ipv4Packet::new_checked(eth.payload()).unwrap();
    let udp_region_start = data.len() - ip.payload().len();
    let acc0 = checksum::pseudo_header(SRC, DST, 17, ip.payload().len() as u16);
    assert_eq!(checksum::finish(acc0 + checksum::sum(ip.payload())), 0);
    for byte in udp_region_start..data.len() {
        for bit in 0..8 {
            data[byte] ^= 1 << bit;
            let eth = EthernetFrame::new_checked(data.as_slice()).unwrap();
            let ip = Ipv4Packet::new_checked(eth.payload()).unwrap();
            let ok = checksum::finish(acc0 + checksum::sum(ip.payload())) == 0;
            // One's-complement caveat: flipping a bit can only go
            // undetected if it turns the stored checksum 0x0000 <->
            // 0xffff (both encode zero); the builder never stores zero.
            assert!(!ok, "flip at byte {byte} bit {bit} undetected");
            data[byte] ^= 1 << bit;
        }
    }
}
