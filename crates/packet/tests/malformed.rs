//! Malformed-input corpus for the packet parsers.
//!
//! Switch data planes see whatever arrives on the wire, so the
//! zero-copy views must reject — never panic on — truncated frames,
//! lying length fields, and bit-flipped headers. Each property drives
//! the full ethernet → ipv4 → tcp/udp parse chain and, whenever a
//! layer parses, exercises every accessor (the slicing all happens
//! there, guarded by `new_checked`'s validation).

use packet::builder::PacketBuilder;
use packet::{EtherType, EthernetFrame, IpProtocol, Ipv4Packet, TcpSegment, UdpDatagram};
use proptest::prelude::*;
use std::net::Ipv4Addr;

const SRC: Ipv4Addr = Ipv4Addr::new(10, 1, 2, 3);
const DST: Ipv4Addr = Ipv4Addr::new(10, 9, 8, 7);

/// Parses `bytes` through every layer and touches every accessor of
/// each layer that parses. Returns how many layers parsed, so callers
/// can assert on well-formed inputs too.
fn exercise(bytes: &[u8]) -> usize {
    let Ok(eth) = EthernetFrame::new_checked(bytes) else {
        return 0;
    };
    let _ = (eth.src(), eth.dst(), eth.src().is_multicast());
    if eth.ethertype() != EtherType::Ipv4 {
        return 1;
    }
    let Ok(ip) = Ipv4Packet::new_checked(eth.payload()) else {
        return 1;
    };
    let _ = (
        ip.src(),
        ip.dst(),
        ip.ttl(),
        ip.header_checksum(),
        ip.verify_checksum(),
        ip.header_len(),
        ip.total_len(),
    );
    let payload = ip.payload();
    match ip.protocol() {
        IpProtocol::Tcp => {
            let Ok(tcp) = TcpSegment::new_checked(payload) else {
                return 2;
            };
            let _ = (
                tcp.src_port(),
                tcp.dst_port(),
                tcp.seq(),
                tcp.ack_number(),
                tcp.header_len(),
                tcp.flags(),
                tcp.syn(),
                tcp.ack(),
                tcp.fin(),
                tcp.rst(),
                tcp.payload(),
                tcp.verify_checksum(ip.src(), ip.dst()),
            );
            3
        }
        IpProtocol::Udp => {
            let Ok(udp) = UdpDatagram::new_checked(payload) else {
                return 2;
            };
            let _ = (
                udp.src_port(),
                udp.dst_port(),
                udp.len_field(),
                udp.payload(),
                udp.verify_checksum(ip.src(), ip.dst()),
            );
            3
        }
        _ => 2,
    }
}

/// A well-formed frame to mutate: either TCP (arbitrary flags via the
/// SYN builder) or UDP, with a payload.
fn valid_frame(udp: bool, payload: &[u8]) -> Vec<u8> {
    if udp {
        PacketBuilder::udp(SRC, DST, 4321, 53).payload(payload).build()
    } else {
        PacketBuilder::tcp_syn(SRC, DST, 4321, 80).payload(payload).build()
    }
}

proptest! {
    /// Pure noise: arbitrary bytes of arbitrary length never panic
    /// anywhere in the chain.
    #[test]
    fn random_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
        exercise(&bytes);
    }

    /// Random truncation of a well-formed frame either still parses or
    /// fails cleanly — and can never parse *more* layers than the
    /// intact original.
    #[test]
    fn truncated_frames_fail_cleanly(
        udp in any::<bool>(),
        payload in proptest::collection::vec(any::<u8>(), 0..64),
        cut in any::<u16>(),
    ) {
        let frame = valid_frame(udp, &payload);
        let full = exercise(&frame);
        prop_assert_eq!(full, 3, "intact frame parses all layers");
        let cut = usize::from(cut) % (frame.len() + 1);
        let depth = exercise(&frame[..cut]);
        prop_assert!(depth <= full);
    }

    /// A bogus IHL nibble (too small, or pointing past the buffer)
    /// never panics; IHL < 5 must be rejected outright.
    #[test]
    fn bad_ihl_never_panics(
        udp in any::<bool>(),
        payload in proptest::collection::vec(any::<u8>(), 0..32),
        ihl in 0u8..16,
    ) {
        let mut frame = valid_frame(udp, &payload);
        // Byte 14 is the IPv4 version/IHL byte behind the 14-byte
        // ethernet header.
        frame[14] = 0x40 | ihl;
        exercise(&frame);
        if ihl < 5 {
            let eth = EthernetFrame::new_checked(frame.as_slice()).unwrap();
            prop_assert!(Ipv4Packet::new_checked(eth.payload()).is_err());
        }
    }

    /// A lying IPv4 total-length field (any 16-bit value) never panics,
    /// and values beyond the actual buffer are rejected.
    #[test]
    fn bogus_ipv4_total_length_never_panics(
        udp in any::<bool>(),
        payload in proptest::collection::vec(any::<u8>(), 0..32),
        total in any::<u16>(),
    ) {
        let mut frame = valid_frame(udp, &payload);
        let [hi, lo] = total.to_be_bytes();
        frame[16] = hi;
        frame[17] = lo;
        exercise(&frame);
        let eth = EthernetFrame::new_checked(frame.as_slice()).unwrap();
        if usize::from(total) > eth.payload().len() {
            prop_assert!(Ipv4Packet::new_checked(eth.payload()).is_err());
        }
    }

    /// A lying UDP length field never panics and is either rejected or
    /// yields an in-bounds payload slice.
    #[test]
    fn bogus_udp_length_never_panics(
        payload in proptest::collection::vec(any::<u8>(), 0..32),
        len in any::<u16>(),
    ) {
        let mut frame = valid_frame(true, &payload);
        // 14 ethernet + 20 ipv4 puts the UDP length field at 38..40.
        let [hi, lo] = len.to_be_bytes();
        frame[38] = hi;
        frame[39] = lo;
        exercise(&frame);
    }

    /// A data offset mutated to any nibble never panics the TCP layer.
    #[test]
    fn bogus_tcp_data_offset_never_panics(
        payload in proptest::collection::vec(any::<u8>(), 0..32),
        offset in 0u8..16,
    ) {
        let mut frame = valid_frame(false, &payload);
        // 14 ethernet + 20 ipv4 + 12 puts the TCP data-offset byte at 46.
        frame[46] = offset << 4;
        exercise(&frame);
    }

    /// Single-bit corruption anywhere in a well-formed frame never
    /// panics (parse may succeed or fail; both are fine).
    #[test]
    fn bit_flips_never_panic(
        udp in any::<bool>(),
        payload in proptest::collection::vec(any::<u8>(), 0..64),
        pos in any::<u16>(),
        bit in 0u8..8,
    ) {
        let mut frame = valid_frame(udp, &payload);
        let pos = usize::from(pos) % frame.len();
        frame[pos] ^= 1 << bit;
        exercise(&frame);
    }
}
