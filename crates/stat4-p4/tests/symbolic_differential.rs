//! Differential property: guided symbolic execution agrees with the
//! concrete interpreter on random packets, over **every** built-in
//! program.
//!
//! This is the soundness anchor for the whole symbolic suite
//! (`S4L013`–`S4L016`): the equivalence, merge-soundness and rebind
//! checks all reason about program behaviour through the symbolic
//! executor, so the executor itself must be bit-faithful to the
//! interpreter — same outcome, same final PHV, same register state,
//! same digests, same recirculation count, same applied-table trace.

use p4sim::phv::{fields, FieldId};
use p4sim::{check_agreement, Pipeline, Witness};
use proptest::prelude::*;
use stat4_p4::lint::builtin_pipelines;

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A random packet plus random initial register state. Field values
/// mix boundary cases (0, 1), small values, addresses inside the
/// case study's monitored 10.0.0.0/8 (so LPM-guarded paths are
/// exercised, not just table misses), and full-range 64-bit values.
fn random_witness(p: &Pipeline, seed: u64) -> Witness {
    let mut s = seed;
    let mut fvals = Vec::new();
    for i in 0..u16::try_from(fields::FIELD_COUNT).unwrap() {
        let r = splitmix(&mut s);
        let v = match r % 5 {
            0 => 0,
            1 => 1,
            2 => (r >> 8) & 0xFF,
            3 => 0x0a00_0000 | ((r >> 8) & 0xFFFF),
            _ => splitmix(&mut s),
        };
        fvals.push((FieldId(i), v));
    }
    let registers = p
        .registers()
        .iter()
        .map(|reg| {
            let mask = if reg.width_bits >= 64 {
                u64::MAX
            } else {
                (1u64 << reg.width_bits) - 1
            };
            let cells = (0..reg.cells.len()).map(|_| splitmix(&mut s) & mask).collect();
            (reg.name.clone(), cells)
        })
        .collect();
    Witness {
        fields: fvals,
        registers,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    #[test]
    fn symbolic_agrees_with_concrete_on_every_builtin(seed in any::<u64>()) {
        for (name, p) in builtin_pipelines() {
            for k in 0..4u64 {
                let w = random_witness(&p, seed ^ k.wrapping_mul(0x0123_4567_89AB_CDEF));
                if let Err(e) = check_agreement(&p, &w) {
                    prop_assert!(false, "{name} (packet {k}): {e}");
                }
            }
        }
    }
}

/// The all-zero packet on fresh state — the single most common real
/// input — agrees exactly, as a plain (non-property) regression.
#[test]
fn symbolic_agrees_on_zero_packet() {
    for (name, p) in builtin_pipelines() {
        let w = Witness {
            fields: Vec::new(),
            registers: Vec::new(),
        };
        check_agreement(&p, &w).unwrap_or_else(|e| panic!("{name}: {e}"));
    }
}
