//! The online median / percentile tracker as a pipeline program
//! (paper Sec. 2, Figure 3).
//!
//! Register layout per tracked distribution: the frequency counters
//! plus four bookkeeping cells — marker position, combined mass strictly
//! below, combined mass strictly above, and a seeded flag. Per packet:
//!
//! 1. account the arriving value into `low`/`high`/its counter;
//! 2. move the marker **at most one cell** toward balance (P4 has no
//!    loops; an empty cell costs one packet to skip, as in Figure 3);
//! 3. write the bookkeeping back.
//!
//! Arbitrary quantiles reuse the machinery with integer weights
//! `low_weight : high_weight` (90th percentile = 9:1); the weighted
//! comparisons are products computed in actions (constant multipliers,
//! hardware-legal) and compared in control.

use crate::scratch;
use p4sim::action::{ActionDef, Operand, Primitive};
use p4sim::control::{CmpOp, Cond, Control};
use p4sim::phv::fields;
use p4sim::program::ProgramBuilder;
use p4sim::{P4Result, Pipeline, RegMerge, TargetModel};

/// Digest id reporting `(marker_value, low, high, total_seen)` per
/// packet (for validation; real deployments would read the registers).
pub const DIGEST_MEDIAN: u16 = 4;

/// Indices into the tracker's bookkeeping register.
mod state {
    /// Marker cell index.
    pub const POS: u64 = 0;
    /// Mass strictly below the marker.
    pub const LOW: u64 = 1;
    /// Mass strictly above the marker.
    pub const HIGH: u64 = 2;
    /// 0 until the first observation seeds the marker.
    pub const SEEDED: u64 = 3;
    /// Total observations (for the digest).
    pub const TOTAL: u64 = 4;
    /// Register size.
    pub const SIZE: usize = 5;
}

/// Configuration of the in-pipeline tracker.
#[derive(Debug, Clone, Copy)]
pub struct MedianAppParams {
    /// Domain size: values are cell indices `0..domain`.
    pub domain: usize,
    /// Balance weight of the low side (median: 1).
    pub low_weight: u64,
    /// Balance weight of the high side (median: 1).
    pub high_weight: u64,
    /// When true, the packet **recirculates** until the marker is fully
    /// balanced — the alternative the paper rejects ("we want to avoid
    /// packet recirculation, our current approach is to move the median
    /// by at most one unit per packet"). Exact marker placement, at the
    /// cost of extra pipeline passes counted in
    /// [`p4sim::PacketOutcome::recirculations`]; the
    /// `median_recirculation` test quantifies the trade.
    pub converge_with_recirculation: bool,
}

impl Default for MedianAppParams {
    fn default() -> Self {
        Self {
            domain: 512,
            low_weight: 1,
            high_weight: 1,
            converge_with_recirculation: false,
        }
    }
}

/// A pipeline program tracking one quantile of the payload values.
#[derive(Debug)]
pub struct MedianApp {
    /// The runnable pipeline.
    pub pipeline: Pipeline,
    /// Frequency counters register id.
    pub counters_reg: usize,
    /// Bookkeeping register id (cells: pos, low, high, seeded, total).
    pub state_reg: usize,
    /// Parameters.
    pub params: MedianAppParams,
}

impl MedianApp {
    /// Builds the tracker program for bmv2.
    ///
    /// # Errors
    ///
    /// Propagates [`p4sim`] validation errors.
    #[allow(clippy::too_many_lines)]
    pub fn build(params: MedianAppParams) -> P4Result<Self> {
        use scratch::{AUX, F_OLD, IS_NEW, MUL_A, MUL_B, SQRT_E, SQRT_M, SQRT_T, TMP, VALUE_IDX};
        // Scratch roles in this program:
        //   VALUE_IDX  arriving value (cell index)
        //   MUL_A      marker position
        //   MUL_B      low mass
        //   AUX        high mass
        //   TMP        f = counters[pos]
        //   SQRT_T     neighbour count during a step
        //   IS_NEW     seeded flag
        //   SQRT_E/M   weighted products for the balance tests
        //   F_OLD      scratch for counter bumps
        //   RECIRC     1 on recirculated passes (skip the accounting)
        //   MOVED      1 when the rebalance step moved the marker
        let recirc_flag = p4sim::phv::fields::scratch(16);
        let moved_flag = p4sim::phv::fields::scratch(17);
        let mut b = ProgramBuilder::new();
        let counters_reg = b.add_register("median_counters", 64, params.domain);
        let state_reg = b.add_register("median_state", 64, state::SIZE);
        // The marker position / mass split is a single walker's state,
        // not an additive quantity — summing two shards' markers would
        // produce an out-of-domain position.
        b.set_register_merge(state_reg, RegMerge::None);

        let extract = b.add_action(ActionDef::new(
            "m_extract",
            vec![
                Primitive::Set {
                    dst: VALUE_IDX,
                    src: Operand::Field(fields::PAYLOAD_VALUE),
                },
                Primitive::RegRead {
                    dst: MUL_A,
                    register: state_reg,
                    index: Operand::Const(state::POS),
                },
                Primitive::RegRead {
                    dst: MUL_B,
                    register: state_reg,
                    index: Operand::Const(state::LOW),
                },
                Primitive::RegRead {
                    dst: AUX,
                    register: state_reg,
                    index: Operand::Const(state::HIGH),
                },
                Primitive::RegRead {
                    dst: IS_NEW,
                    register: state_reg,
                    index: Operand::Const(state::SEEDED),
                },
            ],
        ));

        // First observation: marker lands on the value, whose counter
        // is bumped like any other observation.
        let seed = b.add_action(ActionDef::new(
            "m_seed",
            vec![
                Primitive::Set {
                    dst: MUL_A,
                    src: Operand::Field(VALUE_IDX),
                },
                Primitive::RegWrite {
                    register: state_reg,
                    index: Operand::Const(state::POS),
                    src: Operand::Field(VALUE_IDX),
                },
                Primitive::RegWrite {
                    register: state_reg,
                    index: Operand::Const(state::SEEDED),
                    src: Operand::Const(1),
                },
                Primitive::RegRead {
                    dst: F_OLD,
                    register: counters_reg,
                    index: Operand::Field(VALUE_IDX),
                },
                Primitive::Add {
                    dst: F_OLD,
                    a: Operand::Field(F_OLD),
                    b: Operand::Const(1),
                },
                Primitive::RegWrite {
                    register: counters_reg,
                    index: Operand::Field(VALUE_IDX),
                    src: Operand::Field(F_OLD),
                },
            ],
        ));

        // Side accounting.
        let inc_low = b.add_action(ActionDef::new(
            "m_inc_low",
            vec![Primitive::Add {
                dst: MUL_B,
                a: Operand::Field(MUL_B),
                b: Operand::Const(1),
            }],
        ));
        let inc_high = b.add_action(ActionDef::new(
            "m_inc_high",
            vec![Primitive::Add {
                dst: AUX,
                a: Operand::Field(AUX),
                b: Operand::Const(1),
            }],
        ));

        // Bump the value's counter, load f = counters[pos], and compute
        // the weighted balance products:
        //   SQRT_E = low_weight·high          (tests the up-move)
        //   SQRT_M = high_weight·(low + f)
        let bump = b.add_action(ActionDef::new(
            "m_bump_and_products",
            vec![
                Primitive::Set {
                    dst: moved_flag,
                    src: Operand::Const(0),
                },
                Primitive::RegRead {
                    dst: F_OLD,
                    register: counters_reg,
                    index: Operand::Field(VALUE_IDX),
                },
                Primitive::Add {
                    dst: F_OLD,
                    a: Operand::Field(F_OLD),
                    b: Operand::Const(1),
                },
                Primitive::RegWrite {
                    register: counters_reg,
                    index: Operand::Field(VALUE_IDX),
                    src: Operand::Field(F_OLD),
                },
                Primitive::RegRead {
                    dst: TMP,
                    register: counters_reg,
                    index: Operand::Field(MUL_A),
                },
                Primitive::Mul {
                    dst: SQRT_E,
                    a: Operand::Field(AUX),
                    b: Operand::Const(params.low_weight),
                },
                Primitive::Add {
                    dst: SQRT_M,
                    a: Operand::Field(MUL_B),
                    b: Operand::Field(TMP),
                },
                Primitive::Mul {
                    dst: SQRT_M,
                    a: Operand::Field(SQRT_M),
                    b: Operand::Const(params.high_weight),
                },
            ],
        ));

        // Products only (no counter bump): the rebalance preamble for a
        // recirculated pass, where the packet was already accounted.
        let products_only = b.add_action(ActionDef::new(
            "m_products_only",
            vec![
                Primitive::Set {
                    dst: moved_flag,
                    src: Operand::Const(0),
                },
                Primitive::RegRead {
                    dst: TMP,
                    register: counters_reg,
                    index: Operand::Field(MUL_A),
                },
                Primitive::Mul {
                    dst: SQRT_E,
                    a: Operand::Field(AUX),
                    b: Operand::Const(params.low_weight),
                },
                Primitive::Add {
                    dst: SQRT_M,
                    a: Operand::Field(MUL_B),
                    b: Operand::Field(TMP),
                },
                Primitive::Mul {
                    dst: SQRT_M,
                    a: Operand::Field(SQRT_M),
                    b: Operand::Const(params.high_weight),
                },
            ],
        ));

        // One marker step up: low += f; high -= counters[pos+1]; pos += 1.
        let step_up = b.add_action(ActionDef::new(
            "m_step_up",
            vec![
                Primitive::Add {
                    dst: MUL_B,
                    a: Operand::Field(MUL_B),
                    b: Operand::Field(TMP),
                },
                Primitive::Add {
                    dst: MUL_A,
                    a: Operand::Field(MUL_A),
                    b: Operand::Const(1),
                },
                Primitive::RegRead {
                    dst: SQRT_T,
                    register: counters_reg,
                    index: Operand::Field(MUL_A),
                },
                Primitive::Sub {
                    dst: AUX,
                    a: Operand::Field(AUX),
                    b: Operand::Field(SQRT_T),
                },
                Primitive::Set {
                    dst: moved_flag,
                    src: Operand::Const(1),
                },
            ],
        ));

        // Weighted products for the down-move test:
        //   SQRT_E = high_weight·low
        //   SQRT_M = low_weight·(high + f)
        let down_products = b.add_action(ActionDef::new(
            "m_down_products",
            vec![
                Primitive::Mul {
                    dst: SQRT_E,
                    a: Operand::Field(MUL_B),
                    b: Operand::Const(params.high_weight),
                },
                Primitive::Add {
                    dst: SQRT_M,
                    a: Operand::Field(AUX),
                    b: Operand::Field(TMP),
                },
                Primitive::Mul {
                    dst: SQRT_M,
                    a: Operand::Field(SQRT_M),
                    b: Operand::Const(params.low_weight),
                },
            ],
        ));

        // One marker step down: high += f; low -= counters[pos-1]; pos -= 1.
        let step_down = b.add_action(ActionDef::new(
            "m_step_down",
            vec![
                Primitive::Add {
                    dst: AUX,
                    a: Operand::Field(AUX),
                    b: Operand::Field(TMP),
                },
                Primitive::Sub {
                    dst: MUL_A,
                    a: Operand::Field(MUL_A),
                    b: Operand::Const(1),
                },
                Primitive::RegRead {
                    dst: SQRT_T,
                    register: counters_reg,
                    index: Operand::Field(MUL_A),
                },
                Primitive::Sub {
                    dst: MUL_B,
                    a: Operand::Field(MUL_B),
                    b: Operand::Field(SQRT_T),
                },
                Primitive::Set {
                    dst: moved_flag,
                    src: Operand::Const(1),
                },
            ],
        ));

        // Persist state + digest.
        let store = b.add_action(ActionDef::new(
            "m_store",
            vec![
                Primitive::RegWrite {
                    register: state_reg,
                    index: Operand::Const(state::POS),
                    src: Operand::Field(MUL_A),
                },
                Primitive::RegWrite {
                    register: state_reg,
                    index: Operand::Const(state::LOW),
                    src: Operand::Field(MUL_B),
                },
                Primitive::RegWrite {
                    register: state_reg,
                    index: Operand::Const(state::HIGH),
                    src: Operand::Field(AUX),
                },
                Primitive::RegRead {
                    dst: SQRT_T,
                    register: state_reg,
                    index: Operand::Const(state::TOTAL),
                },
                Primitive::Add {
                    dst: SQRT_T,
                    a: Operand::Field(SQRT_T),
                    b: Operand::Const(1),
                },
                Primitive::RegWrite {
                    register: state_reg,
                    index: Operand::Const(state::TOTAL),
                    src: Operand::Field(SQRT_T),
                },
                Primitive::Digest {
                    id: DIGEST_MEDIAN,
                    values: vec![
                        Operand::Field(MUL_A),
                        Operand::Field(MUL_B),
                        Operand::Field(AUX),
                        Operand::Field(SQRT_T),
                    ],
                },
            ],
        ));

        let max_pos = (params.domain - 1) as u64;
        let balance_tree =
            // Up-move: low_weight·high > high_weight·(low + f), marker
            // not at the top.
            Control::If {
                cond: Cond::new(
                    Operand::Field(SQRT_E),
                    CmpOp::Gt,
                    Operand::Field(SQRT_M),
                ),
                then_branch: Box::new(Control::If {
                    cond: Cond::new(Operand::Field(MUL_A), CmpOp::Lt, Operand::Const(max_pos)),
                    then_branch: Box::new(Control::ApplyAction(step_up)),
                    else_branch: None,
                }),
                // Otherwise, evaluate the down-move test.
                else_branch: Some(Box::new(Control::Seq(vec![
                    Control::ApplyAction(down_products),
                    Control::If {
                        cond: Cond::new(
                            Operand::Field(SQRT_E),
                            CmpOp::Gt,
                            Operand::Field(SQRT_M),
                        ),
                        then_branch: Box::new(Control::If {
                            cond: Cond::new(Operand::Field(MUL_A), CmpOp::Gt, Operand::Const(0)),
                            then_branch: Box::new(Control::ApplyAction(step_down)),
                            else_branch: None,
                        }),
                        else_branch: None,
                    },
                ]))),
            };
        let rebalance = Control::Seq(vec![Control::ApplyAction(bump), balance_tree.clone()]);

        let first_pass = Control::Seq(vec![
            Control::ApplyAction(extract),
            Control::If {
                cond: Cond::new(Operand::Field(IS_NEW), CmpOp::Eq, Operand::Const(0)),
                then_branch: Box::new(Control::ApplyAction(seed)),
                else_branch: Some(Box::new(Control::Seq(vec![
                    Control::If {
                        cond: Cond::new(
                            Operand::Field(VALUE_IDX),
                            CmpOp::Lt,
                            Operand::Field(MUL_A),
                        ),
                        then_branch: Box::new(Control::ApplyAction(inc_low)),
                        else_branch: Some(Box::new(Control::If {
                            cond: Cond::new(
                                Operand::Field(VALUE_IDX),
                                CmpOp::Gt,
                                Operand::Field(MUL_A),
                            ),
                            then_branch: Box::new(Control::ApplyAction(inc_high)),
                            else_branch: None,
                        })),
                    },
                    rebalance,
                ]))),
            },
        ]);

        let mut top = if params.converge_with_recirculation {
            // Recirculated passes skip the accounting (the packet is
            // already counted; RECIRC persists across passes) and only
            // take further marker steps.
            let mark_recirc = b.add_action(ActionDef::new(
                "m_mark_recirc",
                vec![Primitive::Set {
                    dst: recirc_flag,
                    src: Operand::Const(1),
                }],
            ));
            let later_pass = Control::Seq(vec![
                Control::ApplyAction(extract),
                Control::ApplyAction(products_only),
                balance_tree,
            ]);
            vec![
                Control::If {
                    cond: Cond::new(Operand::Field(recirc_flag), CmpOp::Eq, Operand::Const(0)),
                    then_branch: Box::new(first_pass),
                    else_branch: Some(Box::new(later_pass)),
                },
                Control::If {
                    cond: Cond::new(Operand::Field(moved_flag), CmpOp::Eq, Operand::Const(1)),
                    then_branch: Box::new(Control::Seq(vec![
                        Control::ApplyAction(mark_recirc),
                        Control::Recirculate,
                    ])),
                    else_branch: None,
                },
            ]
        } else {
            let _ = products_only;
            vec![first_pass]
        };
        top.push(Control::ApplyAction(store));
        b.set_control(Control::Seq(top));

        Ok(Self {
            pipeline: b.build(TargetModel::bmv2())?,
            counters_reg,
            state_reg,
            params,
        })
    }

    /// The current marker (estimate), read from the registers.
    #[must_use]
    pub fn estimate(&self) -> Option<u64> {
        let seeded = self.pipeline.registers()[self.state_reg].cells[state::SEEDED as usize];
        (seeded != 0)
            .then(|| self.pipeline.registers()[self.state_reg].cells[state::POS as usize])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p4sim::Phv;
    use stat4_core::percentile::{PercentileTracker, Quantile};

    fn feed(app: &mut MedianApp, v: u64) {
        let mut phv = Phv::new();
        phv.set(fields::PAYLOAD_VALUE, v);
        app.pipeline.process_phv(&mut phv).expect("ok");
    }

    /// The pipeline median must agree with the portable tracker on every
    /// packet — they implement the same register algorithm.
    #[test]
    fn tracks_portable_median_exactly() {
        let mut app = MedianApp::build(MedianAppParams {
            domain: 64,
            ..MedianAppParams::default()
        })
        .unwrap();
        let mut oracle = PercentileTracker::median(0, 63).unwrap();
        let values: Vec<u64> = (0..2000u64).map(|i| (i * 37 + i * i) % 64).collect();
        for &v in &values {
            feed(&mut app, v);
            oracle.observe(v as i64).unwrap();
            assert_eq!(
                app.estimate(),
                oracle.estimate().map(|e| e as u64),
                "diverged"
            );
        }
    }

    #[test]
    fn p90_variant_matches_portable() {
        let mut app = MedianApp::build(MedianAppParams {
            domain: 100,
            low_weight: 9,
            high_weight: 1,
            ..MedianAppParams::default()
        })
        .unwrap();
        let q = Quantile::percentile(90).unwrap();
        let mut oracle = PercentileTracker::new(0, 99, q).unwrap();
        let values: Vec<u64> = (0..3000u64).map(|i| (i * 17) % 100).collect();
        for &v in &values {
            feed(&mut app, v);
            oracle.observe(v as i64).unwrap();
            assert_eq!(app.estimate(), oracle.estimate().map(|e| e as u64));
        }
        let est = app.estimate().unwrap();
        assert!((85..=95).contains(&est), "p90 ≈ 90, got {est}");
    }

    #[test]
    fn figure3_walk_in_pipeline() {
        // The same register walk as the portable figure3 test.
        let mut app = MedianApp::build(MedianAppParams {
            domain: 11,
            ..MedianAppParams::default()
        })
        .unwrap();
        for _ in 0..10 {
            feed(&mut app, 2);
        }
        for _ in 0..2 {
            feed(&mut app, 3);
        }
        feed(&mut app, 6);
        for _ in 0..5 {
            feed(&mut app, 9);
        }
        for _ in 0..6 {
            feed(&mut app, 10);
        }
        assert_eq!(app.estimate(), Some(3), "pre-add resting point");
        feed(&mut app, 8);
        assert_eq!(app.estimate(), Some(4), "one packet, one step");
        // Two more packets' worth of rebalancing: re-observe the current
        // cell's... any packet triggers one step; feed value 4 (at the
        // marker, not changing the balance masses beyond its own count).
        feed(&mut app, 8);
        feed(&mut app, 8);
        let m = app.estimate().unwrap();
        assert!(m >= 6, "marker walked past the empty cells: {m}");
    }

    /// The recirculation ablation: the converging variant tracks the
    /// exact balance point every packet (zero lag) at the cost of extra
    /// pipeline passes, which the one-step variant never takes — the
    /// trade the paper resolves in favour of one step per packet.
    #[test]
    fn recirculation_converges_exactly_at_extra_passes() {
        let mut one_step = MedianApp::build(MedianAppParams {
            domain: 256,
            ..MedianAppParams::default()
        })
        .unwrap();
        let mut recirc = MedianApp::build(MedianAppParams {
            domain: 256,
            converge_with_recirculation: true,
            ..MedianAppParams::default()
        })
        .unwrap();
        let mut oracle =
            stat4_core::percentile::PercentileSet::new(0, 255, &[Quantile::median()]).unwrap();

        // An adversarial stream: blocks hop 12 cells at a time — within
        // the bmv2 recirculation cap (16 passes) but far beyond one
        // step per packet.
        let mut stream = Vec::new();
        for b in 0..20u64 {
            for _ in 0..5 {
                stream.push(10 + b * 12);
            }
        }
        let mut recirc_passes = 0u32;
        let mut one_step_max_lag = 0i64;
        for &v in &stream {
            let mut phv = Phv::new();
            phv.set(fields::PAYLOAD_VALUE, v);
            one_step.pipeline.process_phv(&mut phv).unwrap();

            let mut phv2 = Phv::new();
            phv2.set(fields::PAYLOAD_VALUE, v);
            let out = recirc.pipeline.process_phv(&mut phv2).unwrap();
            recirc_passes += out.recirculations;

            oracle.observe(v as i64).unwrap();
            oracle.rebalance_full();
            let exact = oracle.estimate(0).unwrap();
            // The recirculating variant is always at the exact balance
            // point.
            assert_eq!(recirc.estimate(), Some(exact as u64), "after {v}");
            let lag = (one_step.estimate().unwrap() as i64 - exact).abs();
            one_step_max_lag = one_step_max_lag.max(lag);
        }
        assert!(
            recirc_passes > 50,
            "the exactness cost: {recirc_passes} extra passes"
        );
        assert!(
            one_step_max_lag >= 8,
            "the one-step variant lags through the hops: {one_step_max_lag}"
        );
    }

    #[test]
    fn digest_reports_state() {
        let mut app = MedianApp::build(MedianAppParams::default()).unwrap();
        let mut phv = Phv::new();
        phv.set(fields::PAYLOAD_VALUE, 7);
        let out = app.pipeline.process_phv(&mut phv).unwrap();
        assert_eq!(out.digests.len(), 1);
        assert_eq!(out.digests[0].id, DIGEST_MEDIAN);
        assert_eq!(out.digests[0].values, vec![7, 0, 0, 1]);
    }
}
