//! Lint harness over every built-in stat4-p4 program.
//!
//! [`builtin_suite`] builds each shipped pipeline — the echo app on
//! both targets, the case study, both median variants, the sketch app,
//! and the standalone algorithm fragments — and runs the p4sim
//! compile-time verifier ([`p4sim::verify`]) on each, against the
//! target the program was built for. The `stat4-lint` binary and the
//! CI gate are thin wrappers over this function, and the unit tests
//! here pin the invariant the repo promises: every built-in program is
//! free of errors *and* warnings on its own target.

use crate::echo::VarianceMode;
use crate::{fragments, scratch};
use crate::{
    CaseStudyApp, CaseStudyParams, EchoApp, MedianApp, MedianAppParams, SketchApp,
    SketchAppParams, Stat4Config,
};
use p4sim::control::Control;
use p4sim::phv::fields;
use p4sim::program::ProgramBuilder;
use p4sim::{
    check_equivalence, check_merge_soundness, verify, ActionDef, EquivReport, FieldId, InputDomain,
    MergeReport, Operand, Pipeline, Primitive, RegMerge, SymbolicOptions, TargetModel, VerifyReport,
};

/// One linted built-in program: a display name plus the verifier's
/// findings for it on its own target.
pub struct LintEntry {
    /// Program name as shown by `stat4-lint`.
    pub name: &'static str,
    /// Verifier output (target name, diagnostics, stage allocation,
    /// range-analysis summary).
    pub report: VerifyReport,
}

fn entry(name: &'static str, pipeline: &Pipeline) -> LintEntry {
    LintEntry {
        name,
        report: verify(pipeline),
    }
}

/// Every built-in program as a named pipeline, on the target it ships
/// for. Single source of truth for [`builtin_suite`] and for the
/// symbolic-vs-concrete differential property test.
#[must_use]
pub fn builtin_pipelines() -> Vec<(&'static str, Pipeline)> {
    let mut out: Vec<(&'static str, Pipeline)> = Vec::new();

    let echo = EchoApp::build(&Stat4Config::default()).expect("echo/bmv2 builds");
    out.push(("echo (bmv2, exact-mul)", echo.pipeline));

    let echo_hw = EchoApp::build_with(
        &Stat4Config::default(),
        TargetModel::tofino_like(),
        VarianceMode::UnrolledShiftAdd { bits: 16 },
    )
    .expect("echo/tofino builds");
    out.push(("echo (tofino-like, shift-add)", echo_hw.pipeline));

    let case = CaseStudyApp::build(CaseStudyParams::default()).expect("case study builds");
    out.push(("casestudy (bmv2)", case.pipeline));

    let median = MedianApp::build(MedianAppParams::default()).expect("median builds");
    out.push(("median (bmv2)", median.pipeline));

    let median_recirc = MedianApp::build(MedianAppParams {
        converge_with_recirculation: true,
        ..MedianAppParams::default()
    })
    .expect("median/recirculation builds");
    out.push(("median (bmv2, recirculating)", median_recirc.pipeline));

    let sketch = SketchApp::build(SketchAppParams::default()).expect("sketch builds");
    out.push(("sketch (tofino-like)", sketch.pipeline));

    // Standalone fragment pipelines — the paper's algorithms in
    // isolation, each on the weakest target it is legal for.
    let isqrt = fragment_pipeline(TargetModel::bmv2(), |b| {
        fragments::isqrt_fragment(b, IN, OUT)
    });
    out.push(("fragment: isqrt (bmv2)", isqrt));

    let isqrt_hw = fragment_pipeline(TargetModel::tofino_like(), |b| {
        fragments::isqrt_fragment_const_shifts(b, IN, OUT)
    });
    out.push(("fragment: isqrt const-shift (tofino-like)", isqrt_hw));

    let square = fragment_pipeline(TargetModel::bmv2(), |b| {
        fragments::approx_square_fragment(b, IN, OUT)
    });
    out.push(("fragment: approx-square (bmv2)", square));

    let var_sd = fragment_pipeline(TargetModel::bmv2(), fragments::variance_sd_fragment);
    out.push(("fragment: variance+sd (bmv2)", var_sd));

    let ewma = fragment_pipeline(TargetModel::bmv2(), |b| {
        let reg = b.add_register("ewma_acc", 64, 1);
        // The EWMA update `acc - (acc >> k) + x` does not commute with a
        // sum merge; the accumulator is per-shard last-writer state.
        b.set_register_merge(reg, p4sim::RegMerge::None);
        fragments::ewma_fragment(b, reg, 0, IN, OUT, 3)
    });
    out.push(("fragment: ewma (bmv2)", ewma));

    let mul = fragment_pipeline(TargetModel::tofino_like(), |b| {
        let a = b.add_action(ActionDef::new(
            "mul16",
            fragments::mul_unrolled_primitives(IN, fields::PKT_LEN, OUT, 16),
        ));
        Control::ApplyAction(a)
    });
    out.push(("fragment: unrolled-mul (tofino-like)", mul));

    out
}

/// Input/output fields used by the standalone fragment pipelines.
const IN: FieldId = fields::PAYLOAD_VALUE;
const OUT: FieldId = scratch::SD;

fn fragment_pipeline(
    target: TargetModel,
    build: impl FnOnce(&mut ProgramBuilder) -> Control,
) -> Pipeline {
    let mut b = ProgramBuilder::new();
    let c = build(&mut b);
    b.set_control(c);
    b.build(target).expect("built-in fragment pipeline must build")
}

/// Builds every built-in program and verifies it against the target it
/// ships for. Panics only if a built-in fails to *build* — lint
/// findings are returned in the entries, not panicked on.
#[must_use]
pub fn builtin_suite() -> Vec<LintEntry> {
    builtin_pipelines()
        .iter()
        .map(|(name, p)| entry(name, p))
        .collect()
}

/// One cross-target differential check: the same algorithm built two
/// ways, with the symbolic verifier's verdict on whether they agree.
pub struct EquivEntry {
    /// Pair name as shown by `stat4-lint --equiv`.
    pub name: &'static str,
    /// True when the pair is *supposed* to diverge — the entry then
    /// passes only if the verifier finds the `S4L013` divergence (a
    /// self-test that the checker has teeth).
    pub expect_divergence: bool,
    /// The symbolic differential report.
    pub report: EquivReport,
}

impl EquivEntry {
    /// Lint outcome: expected-equivalent pairs must be clean under the
    /// severity policy; expected-divergent pairs must actually diverge.
    #[must_use]
    pub fn passes(&self, deny_warnings: bool) -> bool {
        if self.expect_divergence {
            !self.report.equivalent()
        } else {
            self.report.passes(deny_warnings)
        }
    }
}

/// One merge-soundness check: a built-in program and the verdict on
/// whether every register update commutes with its declared merge.
pub struct MergeEntry {
    /// Program name as shown by `stat4-lint --merge-sound`.
    pub name: &'static str,
    /// The `S4L015` merge-soundness report.
    pub report: MergeReport,
}

/// Differential equivalence suite: every algorithm the repo ships in
/// both a software (bmv2) and a hardware (Tofino-like) formulation,
/// checked symbolically for observational agreement — plus one pair
/// that is *known* to diverge (an 8-bit unrolled multiplier against the
/// exact one on unbounded operands), asserting the checker finds it.
#[must_use]
pub fn equiv_suite() -> Vec<EquivEntry> {
    let opts = SymbolicOptions::default();
    let mut out = Vec::new();

    // Echo app: exact multiply + dynamic-shift isqrt vs 16-bit unrolled
    // shift-add multiply + constant-shift isqrt. The pair only promises
    // agreement while the multiplier operands fit 16 bits, so the
    // domain bounds payloads and initial register state to one byte
    // (N, Xsum, Xsumsq then stay far below 2^16).
    let sw = EchoApp::build(&Stat4Config::default()).expect("echo/bmv2 builds");
    let hw = EchoApp::build_with(
        &Stat4Config::default(),
        TargetModel::tofino_like(),
        VarianceMode::UnrolledShiftAdd { bits: 16 },
    )
    .expect("echo/tofino builds");
    let domain = InputDomain::infer(&[&sw.pipeline, &hw.pipeline])
        .with_all_fields_max(0xFF)
        .with_register_limit(0xFF);
    let echo_opts = SymbolicOptions {
        domain: Some(domain),
        ..SymbolicOptions::default()
    };
    out.push(EquivEntry {
        name: "echo: exact-mul (bmv2) vs shift-add-16 (tofino-like)",
        expect_divergence: false,
        report: check_equivalence(&sw.pipeline, &hw.pipeline, &echo_opts),
    });

    // Equivalence is *observational* (egress, digests, registers), so
    // each fragment pipeline digests its result field — otherwise two
    // fragments that only differ in scratch state compare as equal.
    let emit = |b: &mut ProgramBuilder, inner: Control| {
        let a = b.add_action(ActionDef::new(
            "emit_result",
            vec![Primitive::Digest {
                id: 0x51,
                values: vec![Operand::Field(OUT)],
            }],
        ));
        Control::Seq(vec![inner, Control::ApplyAction(a)])
    };

    // Square root: dynamic-shift formulation vs the constant-shift
    // branch tree, over the full 64-bit input space.
    let sq_sw = fragment_pipeline(TargetModel::bmv2(), |b| {
        let c = fragments::isqrt_fragment(b, IN, OUT);
        emit(b, c)
    });
    let sq_hw = fragment_pipeline(TargetModel::tofino_like(), |b| {
        let c = fragments::isqrt_fragment_const_shifts(b, IN, OUT);
        emit(b, c)
    });
    out.push(EquivEntry {
        name: "isqrt: dynamic-shift (bmv2) vs const-shift tree (tofino-like)",
        expect_divergence: false,
        report: check_equivalence(&sq_sw, &sq_hw, &opts),
    });

    // EWMA: the identical fragment built for both targets (constant
    // shift distance, so it is legal on both) — a same-IR sanity pair.
    let mk_ewma = |target: TargetModel| {
        fragment_pipeline(target, |b| {
            let reg = b.add_register("ewma_acc", 64, 1);
            b.set_register_merge(reg, RegMerge::None);
            fragments::ewma_fragment(b, reg, 0, IN, OUT, 3)
        })
    };
    out.push(EquivEntry {
        name: "ewma: same fragment (bmv2) vs (tofino-like)",
        expect_divergence: false,
        report: check_equivalence(
            &mk_ewma(TargetModel::bmv2()),
            &mk_ewma(TargetModel::tofino_like()),
            &opts,
        ),
    });

    // Asserted divergence: an 8-bit unrolled multiplier truncates the
    // second operand, so against the exact multiply on an unbounded
    // domain the checker must produce an S4L013 counterexample.
    let exact = fragment_pipeline(TargetModel::bmv2(), |b| {
        let a = b.add_action(ActionDef::new(
            "mul_exact",
            vec![Primitive::Mul {
                dst: OUT,
                a: Operand::Field(IN),
                b: Operand::Field(fields::PKT_LEN),
            }],
        ));
        emit(b, Control::ApplyAction(a))
    });
    let trunc = fragment_pipeline(TargetModel::tofino_like(), |b| {
        let a = b.add_action(ActionDef::new(
            "mul8",
            fragments::mul_unrolled_primitives(IN, fields::PKT_LEN, OUT, 8),
        ));
        emit(b, Control::ApplyAction(a))
    });
    out.push(EquivEntry {
        name: "unrolled-mul-8 vs exact-mul (asserted S4L013 divergence)",
        expect_divergence: true,
        report: check_equivalence(&exact, &trunc, &opts),
    });

    out
}

/// Merge-soundness suite: runs the `S4L015` check over every built-in
/// app, verifying each register's per-packet update commutes with its
/// declared shard-merge policy (or that the register is declared
/// `RegMerge::None` and exempt).
#[must_use]
pub fn merge_suite() -> Vec<MergeEntry> {
    // Reduced budgets: the corpus only needs to exercise each update
    // function, not sweep the input space.
    let opts = SymbolicOptions {
        path_budget: 512,
        samples: 24,
        merge_origins: 4,
        merge_witnesses: 12,
        ..SymbolicOptions::default()
    };
    let mut out = Vec::new();
    let mut push = |name: &'static str, p: &Pipeline| {
        out.push(MergeEntry {
            name,
            report: check_merge_soundness(p, &opts),
        });
    };

    let echo = EchoApp::build(&Stat4Config::default()).expect("echo/bmv2 builds");
    push("echo (bmv2, exact-mul)", &echo.pipeline);

    let echo_hw = EchoApp::build_with(
        &Stat4Config::default(),
        TargetModel::tofino_like(),
        VarianceMode::UnrolledShiftAdd { bits: 16 },
    )
    .expect("echo/tofino builds");
    push("echo (tofino-like, shift-add)", &echo_hw.pipeline);

    // Bind one /24 into the drill-down table so the summed statistics
    // registers are actually written on some path (the table ships
    // empty; an unexercised register would pass vacuously).
    let mut case = CaseStudyApp::build(CaseStudyParams::default()).expect("case study builds");
    let bind = crate::binding::bind_prefix(&case, std::net::Ipv4Addr::new(10, 0, 0, 0), 24, 0, 0);
    assert!(case.pipeline.runtime(&bind).is_ok(), "drill binding installs");
    push("casestudy (bmv2)", &case.pipeline);

    let median = MedianApp::build(MedianAppParams::default()).expect("median builds");
    push("median (bmv2)", &median.pipeline);

    let sketch = SketchApp::build(SketchAppParams::default()).expect("sketch builds");
    push("sketch (tofino-like)", &sketch.pipeline);

    let ewma = fragment_pipeline(TargetModel::bmv2(), |b| {
        let reg = b.add_register("ewma_acc", 64, 1);
        b.set_register_merge(reg, RegMerge::None);
        fragments::ewma_fragment(b, reg, 0, IN, OUT, 3)
    });
    push("fragment: ewma (bmv2)", &ewma);

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_builtin_is_clean_under_deny_warnings() {
        for e in builtin_suite() {
            assert!(
                e.report.passes(true),
                "{} on {} has lint findings:\n{}",
                e.name,
                e.report.target,
                e.report
            );
        }
    }

    #[test]
    fn suite_covers_both_targets() {
        let suite = builtin_suite();
        assert!(suite.iter().any(|e| e.report.target == "bmv2"));
        assert!(suite.iter().any(|e| e.report.target == "tofino-like"));
    }

    /// Every expected-equivalent pair verifies clean under denied
    /// warnings, and the asserted-divergent pair actually diverges with
    /// a concrete counterexample attached.
    #[test]
    fn equiv_suite_passes_with_asserted_divergence() {
        let suite = equiv_suite();
        assert!(suite.iter().any(|e| e.expect_divergence));
        for e in &suite {
            let diags: Vec<String> =
                e.report.diagnostics.iter().map(ToString::to_string).collect();
            assert!(
                e.passes(true),
                "{}: unexpected verdict (equivalent={})\n{}",
                e.name,
                e.report.equivalent(),
                diags.join("\n")
            );
            if e.expect_divergence {
                assert!(
                    e.report.counterexample.is_some(),
                    "{}: divergence without a concrete counterexample",
                    e.name
                );
            }
        }
    }

    /// Every built-in app's register updates commute with the declared
    /// merge policies; last-writer registers are declared exempt.
    #[test]
    fn merge_suite_is_clean() {
        let suite = merge_suite();
        for e in &suite {
            let diags: Vec<String> =
                e.report.diagnostics.iter().map(ToString::to_string).collect();
            assert!(
                e.report.passes(true),
                "{}: merge-soundness findings\n{}",
                e.name,
                diags.join("\n")
            );
        }
        // The exemptions declared in the apps actually register.
        let case = suite.iter().find(|e| e.name.starts_with("casestudy")).unwrap();
        assert!(case.report.exempt.iter().any(|r| r == "rate_state"));
        assert!(case.report.checked > 0, "casestudy checks summed registers");
        assert!(
            case.report.origin_pairs > 0,
            "casestudy's summed registers are actually exercised"
        );
    }

    /// The shift-add variance forces the echo app through more
    /// dependent actions and the per-stage caps bite, so the hardware
    /// allocation must be strictly deeper than the software one.
    #[test]
    fn echo_hardware_allocation_is_deeper_than_software() {
        let suite = builtin_suite();
        let depth = |prefix: &str| {
            suite
                .iter()
                .find(|e| e.name.starts_with(prefix))
                .expect("suite entry")
                .report
                .allocation
                .depth
        };
        let sw = depth("echo (bmv2");
        let hw = depth("echo (tofino");
        assert!(
            hw > sw,
            "expected tofino echo deeper than bmv2 echo, got {hw} vs {sw}"
        );
        assert_eq!(sw, 4, "echo on bmv2 should allocate to 4 stages");
        assert_eq!(hw, 5, "echo on tofino-like should allocate to 5 stages");
        for e in builtin_suite() {
            assert!(
                e.report.allocation.fits,
                "{} overflows its target's stages",
                e.name
            );
        }
    }
}
