//! Lint harness over every built-in stat4-p4 program.
//!
//! [`builtin_suite`] builds each shipped pipeline — the echo app on
//! both targets, the case study, both median variants, the sketch app,
//! and the standalone algorithm fragments — and runs the p4sim
//! compile-time verifier ([`p4sim::verify`]) on each, against the
//! target the program was built for. The `stat4-lint` binary and the
//! CI gate are thin wrappers over this function, and the unit tests
//! here pin the invariant the repo promises: every built-in program is
//! free of errors *and* warnings on its own target.

use crate::echo::VarianceMode;
use crate::{fragments, scratch};
use crate::{
    CaseStudyApp, CaseStudyParams, EchoApp, MedianApp, MedianAppParams, SketchApp,
    SketchAppParams, Stat4Config,
};
use p4sim::control::Control;
use p4sim::phv::fields;
use p4sim::program::ProgramBuilder;
use p4sim::{verify, ActionDef, FieldId, Pipeline, TargetModel, VerifyReport};

/// One linted built-in program: a display name plus the verifier's
/// findings for it on its own target.
pub struct LintEntry {
    /// Program name as shown by `stat4-lint`.
    pub name: &'static str,
    /// Verifier output (target name, diagnostics, stage allocation,
    /// range-analysis summary).
    pub report: VerifyReport,
}

fn entry(name: &'static str, pipeline: &Pipeline) -> LintEntry {
    LintEntry {
        name,
        report: verify(pipeline),
    }
}

/// Input/output fields used by the standalone fragment pipelines.
const IN: FieldId = fields::PAYLOAD_VALUE;
const OUT: FieldId = scratch::SD;

fn fragment_pipeline(
    target: TargetModel,
    build: impl FnOnce(&mut ProgramBuilder) -> Control,
) -> Pipeline {
    let mut b = ProgramBuilder::new();
    let c = build(&mut b);
    b.set_control(c);
    b.build(target).expect("built-in fragment pipeline must build")
}

/// Builds every built-in program and verifies it against the target it
/// ships for. Panics only if a built-in fails to *build* — lint
/// findings are returned in the entries, not panicked on.
#[must_use]
pub fn builtin_suite() -> Vec<LintEntry> {
    let mut out = Vec::new();

    let echo = EchoApp::build(&Stat4Config::default()).expect("echo/bmv2 builds");
    out.push(entry("echo (bmv2, exact-mul)", &echo.pipeline));

    let echo_hw = EchoApp::build_with(
        &Stat4Config::default(),
        TargetModel::tofino_like(),
        VarianceMode::UnrolledShiftAdd { bits: 16 },
    )
    .expect("echo/tofino builds");
    out.push(entry("echo (tofino-like, shift-add)", &echo_hw.pipeline));

    let case = CaseStudyApp::build(CaseStudyParams::default()).expect("case study builds");
    out.push(entry("casestudy (bmv2)", &case.pipeline));

    let median = MedianApp::build(MedianAppParams::default()).expect("median builds");
    out.push(entry("median (bmv2)", &median.pipeline));

    let median_recirc = MedianApp::build(MedianAppParams {
        converge_with_recirculation: true,
        ..MedianAppParams::default()
    })
    .expect("median/recirculation builds");
    out.push(entry("median (bmv2, recirculating)", &median_recirc.pipeline));

    let sketch = SketchApp::build(SketchAppParams::default()).expect("sketch builds");
    out.push(entry("sketch (tofino-like)", &sketch.pipeline));

    // Standalone fragment pipelines — the paper's algorithms in
    // isolation, each on the weakest target it is legal for.
    let isqrt = fragment_pipeline(TargetModel::bmv2(), |b| {
        fragments::isqrt_fragment(b, IN, OUT)
    });
    out.push(entry("fragment: isqrt (bmv2)", &isqrt));

    let isqrt_hw = fragment_pipeline(TargetModel::tofino_like(), |b| {
        fragments::isqrt_fragment_const_shifts(b, IN, OUT)
    });
    out.push(entry("fragment: isqrt const-shift (tofino-like)", &isqrt_hw));

    let square = fragment_pipeline(TargetModel::bmv2(), |b| {
        fragments::approx_square_fragment(b, IN, OUT)
    });
    out.push(entry("fragment: approx-square (bmv2)", &square));

    let var_sd = fragment_pipeline(TargetModel::bmv2(), fragments::variance_sd_fragment);
    out.push(entry("fragment: variance+sd (bmv2)", &var_sd));

    let ewma = fragment_pipeline(TargetModel::bmv2(), |b| {
        let reg = b.add_register("ewma_acc", 64, 1);
        fragments::ewma_fragment(b, reg, 0, IN, OUT, 3)
    });
    out.push(entry("fragment: ewma (bmv2)", &ewma));

    let mul = fragment_pipeline(TargetModel::tofino_like(), |b| {
        let a = b.add_action(ActionDef::new(
            "mul16",
            fragments::mul_unrolled_primitives(IN, fields::PKT_LEN, OUT, 16),
        ));
        Control::ApplyAction(a)
    });
    out.push(entry("fragment: unrolled-mul (tofino-like)", &mul));

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_builtin_is_clean_under_deny_warnings() {
        for e in builtin_suite() {
            assert!(
                e.report.passes(true),
                "{} on {} has lint findings:\n{}",
                e.name,
                e.report.target,
                e.report
            );
        }
    }

    #[test]
    fn suite_covers_both_targets() {
        let suite = builtin_suite();
        assert!(suite.iter().any(|e| e.report.target == "bmv2"));
        assert!(suite.iter().any(|e| e.report.target == "tofino-like"));
    }

    /// The shift-add variance forces the echo app through more
    /// dependent actions and the per-stage caps bite, so the hardware
    /// allocation must be strictly deeper than the software one.
    #[test]
    fn echo_hardware_allocation_is_deeper_than_software() {
        let suite = builtin_suite();
        let depth = |prefix: &str| {
            suite
                .iter()
                .find(|e| e.name.starts_with(prefix))
                .expect("suite entry")
                .report
                .allocation
                .depth
        };
        let sw = depth("echo (bmv2");
        let hw = depth("echo (tofino");
        assert!(
            hw > sw,
            "expected tofino echo deeper than bmv2 echo, got {hw} vs {sw}"
        );
        assert_eq!(sw, 4, "echo on bmv2 should allocate to 4 stages");
        assert_eq!(hw, 5, "echo on tofino-like should allocate to 5 stages");
        for e in builtin_suite() {
            assert!(
                e.report.allocation.fits,
                "{} overflows its target's stages",
                e.name
            );
        }
    }
}
