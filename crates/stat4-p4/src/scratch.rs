//! Scratch-field allocation shared by the emitted fragments.
//!
//! P4 user metadata, flattened: every fragment reads/writes these PHV
//! slots by agreed name so fragments compose without clobbering each
//! other. The allocation mirrors how a P4 program would declare one
//! metadata struct for the whole Stat4 library.

use p4sim::phv::fields;
use p4sim::FieldId;

/// Extracted value of interest (already offset into the cell domain).
pub const VALUE_IDX: FieldId = fields::scratch(0);
/// Absolute cell address within the big counter register.
pub const ADDR: FieldId = fields::scratch(1);
/// Old counter value `f` read from the cell.
pub const F_OLD: FieldId = fields::scratch(2);
/// General temporary.
pub const TMP: FieldId = fields::scratch(3);
/// `1` when the cell was previously zero (first observation).
pub const IS_NEW: FieldId = fields::scratch(4);
/// Updated `N`.
pub const N: FieldId = fields::scratch(5);
/// Updated `Xsum`.
pub const XSUM: FieldId = fields::scratch(6);
/// Updated `Xsumsq`.
pub const XSUMSQ: FieldId = fields::scratch(7);
/// Variance of `NX`.
pub const VAR: FieldId = fields::scratch(8);
/// MSB position during the square-root fragment.
pub const SQRT_E: FieldId = fields::scratch(9);
/// Mantissa temporaries during the square-root fragment.
pub const SQRT_M: FieldId = fields::scratch(10);
/// More square-root temporaries.
pub const SQRT_T: FieldId = fields::scratch(11);
/// Standard deviation result.
pub const SD: FieldId = fields::scratch(12);
/// Left operand / scratch for the multiply-free product fragment.
pub const MUL_A: FieldId = fields::scratch(13);
/// Right operand / scratch for the multiply-free product fragment.
pub const MUL_B: FieldId = fields::scratch(14);
/// Spare scratch (interval logic in the case study).
pub const AUX: FieldId = fields::scratch(15);
/// 1 when the drill-down binding table matched this packet.
pub const DRILL_HIT: FieldId = fields::scratch(16);
/// Current interval id (`timestamp >> interval_log2`).
pub const IVL: FieldId = fields::scratch(17);
/// Packet count of the interval being closed.
pub const CNT: FieldId = fields::scratch(18);
/// Evicted window value during an interval close.
pub const OLD: FieldId = fields::scratch(19);
/// Window write index during an interval close.
pub const WIDX: FieldId = fields::scratch(20);
/// Alert-suppression temporary (last-alert interval id).
pub const SUPPRESS: FieldId = fields::scratch(21);
/// 1 when the rate binding table matched this packet.
pub const RATE_HIT: FieldId = fields::scratch(22);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_slots_distinct() {
        let all = [
            VALUE_IDX, ADDR, F_OLD, TMP, IS_NEW, N, XSUM, XSUMSQ, VAR, SQRT_E, SQRT_M, SQRT_T,
            SD, MUL_A, MUL_B, AUX, DRILL_HIT, IVL, CNT, OLD, WIDX, SUPPRESS, RATE_HIT,
        ];
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }
}
