//! Reusable program fragments: the paper's algorithms as action/control
//! IR.
//!
//! Each `*_primitives` function returns straight-line instruction
//! sequences (P4 actions cannot branch); each `*_fragment` function adds
//! the needed actions to a [`ProgramBuilder`] and returns the
//! [`Control`] subtree wiring them together with branches. Fragments
//! communicate through the [`crate::scratch`] fields.
//!
//! The unit tests cross-validate every fragment against the portable
//! implementations in `stat4_core` — the IR square root must agree with
//! [`stat4_core::isqrt::approx_isqrt`] on every input, the unrolled
//! multiplier must be exact, the frequency update must track
//! [`stat4_core::freq::FrequencyDist`] bit for bit.

use crate::scratch;
use p4sim::action::{ActionDef, Operand, Primitive};
use p4sim::control::{CmpOp, Cond, Control};
use p4sim::phv::FieldId;
use p4sim::program::ProgramBuilder;

/// Straight-line body of the paper's Figure 2 square-root algorithm
/// (valid for `src != 0`; the zero case needs the branch in
/// [`isqrt_fragment`]). Clobbers `SQRT_E`, `SQRT_M`, `SQRT_T`, `TMP`.
#[must_use]
pub fn isqrt_primitives(src: FieldId, dst: FieldId) -> Vec<Primitive> {
    use scratch::{SQRT_E, SQRT_M, SQRT_T, TMP};
    vec![
        // e = msb(src)
        Primitive::Msb {
            dst: SQRT_E,
            src: Operand::Field(src),
        },
        // mask = (1 << e) - 1 ; m = src & mask
        Primitive::Shl {
            dst: TMP,
            src: Operand::Const(1),
            amount: Operand::Field(SQRT_E),
        },
        Primitive::Sub {
            dst: TMP,
            a: Operand::Field(TMP),
            b: Operand::Const(1),
        },
        Primitive::And {
            dst: SQRT_M,
            a: Operand::Field(src),
            b: Operand::Field(TMP),
        },
        // ebit = e & 1, shifted to the mantissa's top bit: ebit << (e-1).
        // (For e = 0 the distance wraps past 63 and the shift yields 0,
        // which is exactly what the algorithm needs.)
        Primitive::And {
            dst: SQRT_T,
            a: Operand::Field(SQRT_E),
            b: Operand::Const(1),
        },
        Primitive::Sub {
            dst: TMP,
            a: Operand::Field(SQRT_E),
            b: Operand::Const(1),
        },
        Primitive::Shl {
            dst: SQRT_T,
            src: Operand::Field(SQRT_T),
            amount: Operand::Field(TMP),
        },
        // m1 = (m >> 1) | (ebit << (e-1))
        Primitive::Shr {
            dst: SQRT_M,
            src: Operand::Field(SQRT_M),
            amount: Operand::Const(1),
        },
        Primitive::Or {
            dst: SQRT_M,
            a: Operand::Field(SQRT_M),
            b: Operand::Field(SQRT_T),
        },
        // e1 = e >> 1 ; head = 1 << e1
        Primitive::Shr {
            dst: SQRT_T,
            src: Operand::Field(SQRT_E),
            amount: Operand::Const(1),
        },
        Primitive::Shl {
            dst,
            src: Operand::Const(1),
            amount: Operand::Field(SQRT_T),
        },
        // top = m1 >> (e - e1) ; result = head | top
        Primitive::Sub {
            dst: TMP,
            a: Operand::Field(SQRT_E),
            b: Operand::Field(SQRT_T),
        },
        Primitive::Shr {
            dst: SQRT_M,
            src: Operand::Field(SQRT_M),
            amount: Operand::Field(TMP),
        },
        Primitive::Or {
            dst,
            a: Operand::Field(dst),
            b: Operand::Field(SQRT_M),
        },
    ]
}

/// Adds the square-root actions to `b` and returns the control subtree
/// computing `dst = approx_isqrt(src)`.
pub fn isqrt_fragment(b: &mut ProgramBuilder, src: FieldId, dst: FieldId) -> Control {
    let zero = b.add_action(ActionDef::new(
        "isqrt_zero",
        vec![Primitive::Set {
            dst,
            src: Operand::Const(0),
        }],
    ));
    let main = b.add_action(ActionDef::new("isqrt_main", isqrt_primitives(src, dst)));
    Control::If {
        cond: Cond::new(Operand::Field(src), CmpOp::Eq, Operand::Const(0)),
        then_branch: Box::new(Control::ApplyAction(zero)),
        else_branch: Some(Box::new(Control::ApplyAction(main))),
    }
}

/// Hardware variant of the square root: no dynamic shifts. One `Msb`
/// plus a branch tree on the exponent, each leaf a handful of
/// constant-distance shifts — the in-IR analogue of the paper's
/// "longest prefix match on an ad-hoc TCAM table" suggestion (the
/// branch selects what the TCAM row would encode).
pub fn isqrt_fragment_const_shifts(b: &mut ProgramBuilder, src: FieldId, dst: FieldId) -> Control {
    use scratch::{SQRT_E, SQRT_M};
    let zero = b.add_action(ActionDef::new(
        "isqrt_zero",
        vec![Primitive::Set {
            dst,
            src: Operand::Const(0),
        }],
    ));
    let msb = b.add_action(ActionDef::new(
        "isqrt_msb",
        vec![Primitive::Msb {
            dst: SQRT_E,
            src: Operand::Field(src),
        }],
    ));
    // e == 0 (src == 1) -> 1.
    let mut chain = Control::ApplyAction(b.add_action(ActionDef::new(
        "isqrt_e0",
        vec![Primitive::Set {
            dst,
            src: Operand::Const(1),
        }],
    )));
    // Build the chain from e = 1 upward so the final tree tests high
    // exponents first (irrelevant semantically, cheap to build).
    for e in 1u64..64 {
        // With e known, every shift distance is a constant:
        let mask = if e >= 64 { u64::MAX } else { (1u64 << e) - 1 };
        let tconst = (e & 1) << (e - 1); // ebit << (e-1)
        let e1 = e >> 1;
        let head = 1u64 << e1;
        let top_shift = e - e1;
        let leaf = b.add_action(ActionDef::new(
            format!("isqrt_e{e}"),
            vec![
                Primitive::And {
                    dst: SQRT_M,
                    a: Operand::Field(src),
                    b: Operand::Const(mask),
                },
                Primitive::Shr {
                    dst: SQRT_M,
                    src: Operand::Field(SQRT_M),
                    amount: Operand::Const(1),
                },
                Primitive::Or {
                    dst: SQRT_M,
                    a: Operand::Field(SQRT_M),
                    b: Operand::Const(tconst),
                },
                Primitive::Shr {
                    dst: SQRT_M,
                    src: Operand::Field(SQRT_M),
                    amount: Operand::Const(top_shift),
                },
                Primitive::Or {
                    dst,
                    a: Operand::Field(SQRT_M),
                    b: Operand::Const(head),
                },
            ],
        ));
        chain = Control::If {
            cond: Cond::new(Operand::Field(SQRT_E), CmpOp::Eq, Operand::Const(e)),
            then_branch: Box::new(Control::ApplyAction(leaf)),
            else_branch: Some(Box::new(chain)),
        };
    }
    Control::If {
        cond: Cond::new(Operand::Field(src), CmpOp::Eq, Operand::Const(0)),
        then_branch: Box::new(Control::ApplyAction(zero)),
        else_branch: Some(Box::new(Control::Seq(vec![Control::ApplyAction(msb), chain]))),
    }
}

/// Target-adaptive square root: dynamic shifts where the target allows
/// them, otherwise the constant-shift branch tree.
pub fn isqrt_fragment_for(
    b: &mut ProgramBuilder,
    target: &p4sim::TargetModel,
    src: FieldId,
    dst: FieldId,
) -> Control {
    if target.allow_dynamic_shift {
        isqrt_fragment(b, src, dst)
    } else {
        isqrt_fragment_const_shifts(b, src, dst)
    }
}

/// Straight-line shift-approximated squaring (valid for `src != 0`;
/// see [`approx_square_fragment`]). Clobbers `SQRT_E`, `SQRT_M`, `TMP`.
#[must_use]
pub fn approx_square_primitives(src: FieldId, dst: FieldId) -> Vec<Primitive> {
    use scratch::{SQRT_E, SQRT_M, TMP};
    vec![
        Primitive::Msb {
            dst: SQRT_E,
            src: Operand::Field(src),
        },
        // m = src & ((1 << e) - 1)
        Primitive::Shl {
            dst: TMP,
            src: Operand::Const(1),
            amount: Operand::Field(SQRT_E),
        },
        Primitive::Sub {
            dst: TMP,
            a: Operand::Field(TMP),
            b: Operand::Const(1),
        },
        Primitive::And {
            dst: SQRT_M,
            a: Operand::Field(src),
            b: Operand::Field(TMP),
        },
        // dst = 1 << (2e)
        Primitive::Shl {
            dst: TMP,
            src: Operand::Field(SQRT_E),
            amount: Operand::Const(1),
        },
        Primitive::Shl {
            dst,
            src: Operand::Const(1),
            amount: Operand::Field(TMP),
        },
        // dst += m << (e + 1)
        Primitive::Add {
            dst: TMP,
            a: Operand::Field(SQRT_E),
            b: Operand::Const(1),
        },
        Primitive::Shl {
            dst: SQRT_M,
            src: Operand::Field(SQRT_M),
            amount: Operand::Field(TMP),
        },
        Primitive::Add {
            dst,
            a: Operand::Field(dst),
            b: Operand::Field(SQRT_M),
        },
    ]
}

/// Adds the approximate-squaring actions and returns the control
/// subtree computing `dst ≈ src²` without any multiplication.
pub fn approx_square_fragment(b: &mut ProgramBuilder, src: FieldId, dst: FieldId) -> Control {
    let zero = b.add_action(ActionDef::new(
        "sq_zero",
        vec![Primitive::Set {
            dst,
            src: Operand::Const(0),
        }],
    ));
    let main = b.add_action(ActionDef::new("sq_main", approx_square_primitives(src, dst)));
    Control::If {
        cond: Cond::new(Operand::Field(src), CmpOp::Eq, Operand::Const(0)),
        then_branch: Box::new(Control::ApplyAction(zero)),
        else_branch: Some(Box::new(Control::ApplyAction(main))),
    }
}

/// Exact multiplication `dst = a × b` for `b < 2^bits`, fully unrolled
/// into constant-distance shifts and masked adds — legal on targets
/// without a runtime multiplier. `5·bits` primitives. Clobbers `TMP`
/// and `MUL_A`.
///
/// Per bit `i`: `t = (b >> i) & 1; mask = 0 − t; dst += (a << i) & mask`.
#[must_use]
pub fn mul_unrolled_primitives(a: FieldId, b: FieldId, dst: FieldId, bits: u32) -> Vec<Primitive> {
    use scratch::{MUL_A, TMP};
    let mut out = vec![Primitive::Set {
        dst,
        src: Operand::Const(0),
    }];
    for i in 0..bits {
        out.push(Primitive::Shr {
            dst: TMP,
            src: Operand::Field(b),
            amount: Operand::Const(u64::from(i)),
        });
        out.push(Primitive::And {
            dst: TMP,
            a: Operand::Field(TMP),
            b: Operand::Const(1),
        });
        // mask = 0 - t: all-ones when the bit is set.
        out.push(Primitive::Sub {
            dst: TMP,
            a: Operand::Const(0),
            b: Operand::Field(TMP),
        });
        out.push(Primitive::Shl {
            dst: MUL_A,
            src: Operand::Field(a),
            amount: Operand::Const(u64::from(i)),
        });
        out.push(Primitive::And {
            dst: MUL_A,
            a: Operand::Field(MUL_A),
            b: Operand::Field(TMP),
        });
        out.push(Primitive::Add {
            dst,
            a: Operand::Field(dst),
            b: Operand::Field(MUL_A),
        });
    }
    out
}

/// Exact `NX`-variance from the scratch moments:
/// `VAR = N·Xsumsq − Xsum²` (runtime multiplication — bmv2 targets).
/// Reads `N`, `XSUM`, `XSUMSQ`; clobbers `TMP`, `MUL_B`.
#[must_use]
pub fn variance_nx_primitives() -> Vec<Primitive> {
    use scratch::{MUL_B, N, TMP, VAR, XSUM, XSUMSQ};
    vec![
        Primitive::Mul {
            dst: TMP,
            a: Operand::Field(N),
            b: Operand::Field(XSUMSQ),
        },
        Primitive::Mul {
            dst: MUL_B,
            a: Operand::Field(XSUM),
            b: Operand::Field(XSUM),
        },
        Primitive::Sub {
            dst: VAR,
            a: Operand::Field(TMP),
            b: Operand::Field(MUL_B),
        },
    ]
}

/// One frequency-distribution observation (paper Sec. 2): given
/// `VALUE_IDX`, with action data `[0] = base cell` and `[1] = slot`,
/// bumps the value's counter and maintains `N`, `Xsum`, `Xsumsq`
/// **without rescanning** (`Xsumsq += 2·f + 1`).
///
/// Leaves the *updated* `N`, `XSUM`, `XSUMSQ` and the *old* count
/// `F_OLD` in scratch for downstream checks.
#[must_use]
pub fn freq_update_primitives(
    counters_reg: usize,
    n_reg: usize,
    xsum_reg: usize,
    xsumsq_reg: usize,
) -> Vec<Primitive> {
    use scratch::{ADDR, F_OLD, IS_NEW, N, TMP, VALUE_IDX, XSUM, XSUMSQ};
    vec![
        // addr = base + idx
        Primitive::Add {
            dst: ADDR,
            a: Operand::Field(VALUE_IDX),
            b: Operand::Data(0),
        },
        Primitive::RegRead {
            dst: F_OLD,
            register: counters_reg,
            index: Operand::Field(ADDR),
        },
        // is_new = 1 - min(f, 1)
        Primitive::Min {
            dst: TMP,
            a: Operand::Field(F_OLD),
            b: Operand::Const(1),
        },
        Primitive::Sub {
            dst: IS_NEW,
            a: Operand::Const(1),
            b: Operand::Field(TMP),
        },
        // N += is_new
        Primitive::RegRead {
            dst: N,
            register: n_reg,
            index: Operand::Data(1),
        },
        Primitive::Add {
            dst: N,
            a: Operand::Field(N),
            b: Operand::Field(IS_NEW),
        },
        Primitive::RegWrite {
            register: n_reg,
            index: Operand::Data(1),
            src: Operand::Field(N),
        },
        // Xsum += 1
        Primitive::RegRead {
            dst: XSUM,
            register: xsum_reg,
            index: Operand::Data(1),
        },
        Primitive::Add {
            dst: XSUM,
            a: Operand::Field(XSUM),
            b: Operand::Const(1),
        },
        Primitive::RegWrite {
            register: xsum_reg,
            index: Operand::Data(1),
            src: Operand::Field(XSUM),
        },
        // Xsumsq += 2f + 1
        Primitive::RegRead {
            dst: XSUMSQ,
            register: xsumsq_reg,
            index: Operand::Data(1),
        },
        Primitive::Shl {
            dst: TMP,
            src: Operand::Field(F_OLD),
            amount: Operand::Const(1),
        },
        Primitive::Add {
            dst: TMP,
            a: Operand::Field(TMP),
            b: Operand::Const(1),
        },
        Primitive::Add {
            dst: XSUMSQ,
            a: Operand::Field(XSUMSQ),
            b: Operand::Field(TMP),
        },
        Primitive::RegWrite {
            register: xsumsq_reg,
            index: Operand::Data(1),
            src: Operand::Field(XSUMSQ),
        },
        // f += 1
        Primitive::Add {
            dst: TMP,
            a: Operand::Field(F_OLD),
            b: Operand::Const(1),
        },
        Primitive::RegWrite {
            register: counters_reg,
            index: Operand::Field(ADDR),
            src: Operand::Field(TMP),
        },
    ]
}

/// One *value-distribution* observation (paper Sec. 2's non-frequency
/// path): a new value of interest `xk` (in `VALUE_IDX`) joins the
/// distribution at slot `Data(1)`: `N += 1`, `Xsum += xk`,
/// `Xsumsq += xk²` (runtime multiply — bmv2; pair with
/// [`approx_square_fragment`] or [`mul_unrolled_primitives`] on
/// hardware). Leaves the updated moments in scratch like
/// [`freq_update_primitives`] does.
#[must_use]
pub fn value_update_primitives(
    n_reg: usize,
    xsum_reg: usize,
    xsumsq_reg: usize,
) -> Vec<Primitive> {
    use scratch::{N, TMP, VALUE_IDX, XSUM, XSUMSQ};
    vec![
        Primitive::RegRead {
            dst: N,
            register: n_reg,
            index: Operand::Data(1),
        },
        Primitive::Add {
            dst: N,
            a: Operand::Field(N),
            b: Operand::Const(1),
        },
        Primitive::RegWrite {
            register: n_reg,
            index: Operand::Data(1),
            src: Operand::Field(N),
        },
        Primitive::RegRead {
            dst: XSUM,
            register: xsum_reg,
            index: Operand::Data(1),
        },
        Primitive::Add {
            dst: XSUM,
            a: Operand::Field(XSUM),
            b: Operand::Field(VALUE_IDX),
        },
        Primitive::RegWrite {
            register: xsum_reg,
            index: Operand::Data(1),
            src: Operand::Field(XSUM),
        },
        Primitive::RegRead {
            dst: XSUMSQ,
            register: xsumsq_reg,
            index: Operand::Data(1),
        },
        Primitive::Mul {
            dst: TMP,
            a: Operand::Field(VALUE_IDX),
            b: Operand::Field(VALUE_IDX),
        },
        Primitive::Add {
            dst: XSUMSQ,
            a: Operand::Field(XSUMSQ),
            b: Operand::Field(TMP),
        },
        Primitive::RegWrite {
            register: xsumsq_reg,
            index: Operand::Data(1),
            src: Operand::Field(XSUMSQ),
        },
    ]
}

/// Fixed-point EWMA update in the pipeline (`α = 2^−shift`): one read,
/// one constant shift, one subtract, one add, one write — see
/// [`stat4_core::ewma::Ewma`] for the numeric design (the accumulator
/// keeps `shift` fractional bits so small deviations still converge).
/// Valid for non-negative samples (rates/counts); a zero accumulator is
/// treated as "unseeded" by [`ewma_fragment`]'s branch.
#[must_use]
pub fn ewma_update_primitives(
    acc_reg: usize,
    slot: u64,
    x: FieldId,
    out: FieldId,
    shift: u32,
) -> Vec<Primitive> {
    use scratch::{MUL_B, TMP};
    vec![
        Primitive::RegRead {
            dst: MUL_B,
            register: acc_reg,
            index: Operand::Const(slot),
        },
        Primitive::Shr {
            dst: TMP,
            src: Operand::Field(MUL_B),
            amount: Operand::Const(u64::from(shift)),
        },
        Primitive::Sub {
            dst: MUL_B,
            a: Operand::Field(MUL_B),
            b: Operand::Field(TMP),
        },
        Primitive::Add {
            dst: MUL_B,
            a: Operand::Field(MUL_B),
            b: Operand::Field(x),
        },
        Primitive::RegWrite {
            register: acc_reg,
            index: Operand::Const(slot),
            src: Operand::Field(MUL_B),
        },
        Primitive::Shr {
            dst: out,
            src: Operand::Field(MUL_B),
            amount: Operand::Const(u64::from(shift)),
        },
    ]
}

/// Adds the EWMA actions and returns the control subtree: seeds the
/// accumulator at the first non-zero sample (RFC 6298 style), then
/// performs the shift-based update per packet. `out` receives the
/// current average.
pub fn ewma_fragment(
    b: &mut ProgramBuilder,
    acc_reg: usize,
    slot: u64,
    x: FieldId,
    out: FieldId,
    shift: u32,
) -> Control {
    use scratch::MUL_B;
    let seed = b.add_action(ActionDef::new(
        "ewma_seed",
        vec![
            Primitive::Shl {
                dst: MUL_B,
                src: Operand::Field(x),
                amount: Operand::Const(u64::from(shift)),
            },
            Primitive::RegWrite {
                register: acc_reg,
                index: Operand::Const(slot),
                src: Operand::Field(MUL_B),
            },
            Primitive::Set {
                dst: out,
                src: Operand::Field(x),
            },
        ],
    ));
    let probe = b.add_action(ActionDef::new(
        "ewma_probe",
        vec![Primitive::RegRead {
            dst: MUL_B,
            register: acc_reg,
            index: Operand::Const(slot),
        }],
    ));
    let update = b.add_action(ActionDef::new(
        "ewma_update",
        ewma_update_primitives(acc_reg, slot, x, out, shift),
    ));
    Control::Seq(vec![
        Control::ApplyAction(probe),
        Control::If {
            cond: Cond::new(Operand::Field(MUL_B), CmpOp::Eq, Operand::Const(0)),
            then_branch: Box::new(Control::ApplyAction(seed)),
            else_branch: Some(Box::new(Control::ApplyAction(update))),
        },
    ])
}

/// Control fragment: computes `VAR` (exact) and `SD` from the scratch
/// moments — the lazy σ evaluation point.
pub fn variance_sd_fragment(b: &mut ProgramBuilder) -> Control {
    use scratch::{SD, VAR};
    let var_action = b.add_action(ActionDef::new("variance_nx", variance_nx_primitives()));
    let sqrt = isqrt_fragment(b, VAR, SD);
    Control::Seq(vec![Control::ApplyAction(var_action), sqrt])
}

#[cfg(test)]
mod tests {
    use super::*;
    use p4sim::phv::{fields, Phv};
    use p4sim::{Pipeline, TargetModel};
    use stat4_core::freq::FrequencyDist;
    use stat4_core::isqrt::approx_isqrt;
    use stat4_core::square::approx_square;

    /// Builds a pipeline that runs `fragment(IN -> OUT)` once per packet,
    /// with IN preloaded from the PHV by the test.
    fn fragment_pipeline(build: impl FnOnce(&mut ProgramBuilder) -> Control) -> Pipeline {
        let mut b = ProgramBuilder::new();
        let c = build(&mut b);
        b.set_control(c);
        b.build(TargetModel::bmv2()).unwrap()
    }

    const IN: FieldId = fields::PAYLOAD_VALUE;
    const OUT: FieldId = scratch::SD;

    fn run_unary(p: &mut Pipeline, x: u64) -> u64 {
        let mut phv = Phv::new();
        phv.set(IN, x);
        p.process_phv(&mut phv).unwrap();
        phv.get(OUT)
    }

    #[test]
    fn ir_isqrt_matches_core_exhaustively() {
        let mut p = fragment_pipeline(|b| isqrt_fragment(b, IN, OUT));
        for x in 0..5_000u64 {
            assert_eq!(run_unary(&mut p, x), approx_isqrt(x), "x = {x}");
        }
    }

    #[test]
    fn ir_isqrt_matches_core_on_large_values() {
        let mut p = fragment_pipeline(|b| isqrt_fragment(b, IN, OUT));
        for x in [
            106,
            u64::from(u32::MAX),
            1 << 40,
            (1 << 40) + 12345,
            u64::MAX,
            u64::MAX - 1,
            1 << 62,
        ] {
            assert_eq!(run_unary(&mut p, x), approx_isqrt(x), "x = {x}");
        }
    }

    #[test]
    fn const_shift_isqrt_matches_core() {
        let mut p = fragment_pipeline(|b| {
            isqrt_fragment_const_shifts(b, IN, OUT)
        });
        for x in 0..5_000u64 {
            assert_eq!(run_unary(&mut p, x), approx_isqrt(x), "x = {x}");
        }
        for x in [u64::MAX, 1 << 63, (1 << 50) + 999, u64::from(u32::MAX)] {
            assert_eq!(run_unary(&mut p, x), approx_isqrt(x), "x = {x}");
        }
    }

    #[test]
    fn const_shift_isqrt_is_hardware_legal() {
        let mut b = ProgramBuilder::new();
        let c = isqrt_fragment_const_shifts(&mut b, IN, OUT);
        b.set_control(c);
        assert!(b.build(TargetModel::tofino_like()).is_ok());
    }

    #[test]
    fn ir_square_matches_core() {
        let mut p = fragment_pipeline(|b| approx_square_fragment(b, IN, OUT));
        for x in 0..3_000u64 {
            let expect = u64::try_from(approx_square(x)).unwrap();
            assert_eq!(run_unary(&mut p, x), expect, "x = {x}");
        }
    }

    #[test]
    fn unrolled_mul_is_exact() {
        let mut b = ProgramBuilder::new();
        let a = b.add_action(ActionDef::new(
            "mul",
            mul_unrolled_primitives(fields::PAYLOAD_VALUE, fields::PKT_LEN, OUT, 16),
        ));
        b.set_control(Control::ApplyAction(a));
        let mut p = b.build(TargetModel::tofino_like()).unwrap();
        for (x, y) in [(0u64, 0u64), (1, 1), (7, 9), (1234, 4321), (65535, 65535), (1 << 30, 3)] {
            let mut phv = Phv::new();
            phv.set(fields::PAYLOAD_VALUE, x);
            phv.set(fields::PKT_LEN, y);
            p.process_phv(&mut phv).unwrap();
            assert_eq!(phv.get(OUT), x.wrapping_mul(y), "{x} * {y}");
        }
    }

    #[test]
    fn unrolled_mul_is_hardware_legal() {
        // The whole point: it must validate on the multiply-less target.
        let mut b = ProgramBuilder::new();
        let a = b.add_action(ActionDef::new(
            "mul",
            mul_unrolled_primitives(fields::PAYLOAD_VALUE, fields::PKT_LEN, OUT, 8),
        ));
        b.set_control(Control::ApplyAction(a));
        assert!(b.build(TargetModel::tofino_like()).is_ok());
    }

    #[test]
    fn runtime_mul_variance_rejected_on_hardware() {
        let mut b = ProgramBuilder::new();
        let a = b.add_action(ActionDef::new("var", variance_nx_primitives()));
        b.set_control(Control::ApplyAction(a));
        assert!(b.build(TargetModel::tofino_like()).is_err());
    }

    /// Drives the frequency-update fragment with a stream of values and
    /// checks every register against `stat4_core::FrequencyDist`.
    #[test]
    fn freq_update_tracks_core_dist() {
        let mut b = ProgramBuilder::new();
        let counters = b.add_register("counters", 64, 64);
        let n_reg = b.add_register("n", 64, 2);
        let xsum_reg = b.add_register("xsum", 64, 2);
        let xsumsq_reg = b.add_register("xsumsq", 64, 2);
        // An extractor action: VALUE_IDX = payload (already an index).
        let mut prims = vec![Primitive::Set {
            dst: scratch::VALUE_IDX,
            src: Operand::Field(fields::PAYLOAD_VALUE),
        }];
        prims.extend(freq_update_primitives(counters, n_reg, xsum_reg, xsumsq_reg));
        let upd = b.add_action(ActionDef::new("freq_update", prims));
        let t = b.add_table(p4sim::TableDef {
            name: "bind".into(),
            keys: vec![],
            max_entries: 1,
            allowed_actions: vec![upd],
            default_action: Some((upd, vec![0, 0])), // base 0, slot 0
        });
        b.set_control(Control::ApplyTable(t));
        let mut p = b.build(TargetModel::bmv2()).unwrap();

        let mut oracle = FrequencyDist::new(0, 63).unwrap();
        let values = [3i64, 7, 3, 0, 63, 7, 7, 12, 3, 3, 0, 1, 2, 3, 63];
        for &v in &values {
            let mut phv = Phv::new();
            phv.set(fields::PAYLOAD_VALUE, v as u64);
            p.process_phv(&mut phv).unwrap();
            oracle.observe(v).unwrap();

            assert_eq!(p.registers()[n_reg].cells[0], oracle.n_distinct());
            assert_eq!(p.registers()[xsum_reg].cells[0], oracle.xsum());
            assert_eq!(
                u128::from(p.registers()[xsumsq_reg].cells[0]),
                oracle.xsumsq()
            );
            assert_eq!(
                p.registers()[counters].cells[v as usize],
                oracle.frequency(v)
            );
        }
    }

    /// The value-distribution fragment tracks RunningStats exactly.
    #[test]
    fn value_update_tracks_running_stats() {
        use stat4_core::running::RunningStats;
        let mut b = ProgramBuilder::new();
        let n_reg = b.add_register("n", 64, 2);
        let xsum_reg = b.add_register("xsum", 64, 2);
        let xsumsq_reg = b.add_register("xsumsq", 64, 2);
        let mut prims = vec![Primitive::Set {
            dst: scratch::VALUE_IDX,
            src: Operand::Field(fields::PAYLOAD_VALUE),
        }];
        prims.extend(value_update_primitives(n_reg, xsum_reg, xsumsq_reg));
        let upd = b.add_action(ActionDef::new("value_update", prims));
        let t = b.add_table(p4sim::TableDef {
            name: "bind".into(),
            keys: vec![],
            max_entries: 1,
            allowed_actions: vec![upd],
            default_action: Some((upd, vec![0, 1])), // base unused, slot 1
        });
        b.set_control(Control::ApplyTable(t));
        let mut p = b.build(TargetModel::bmv2()).unwrap();

        let mut oracle = RunningStats::new();
        for v in [5i64, 122, 9, 9, 0, 77, 31] {
            let mut phv = Phv::new();
            phv.set(fields::PAYLOAD_VALUE, v as u64);
            p.process_phv(&mut phv).unwrap();
            oracle.push(v);
            assert_eq!(p.registers()[n_reg].cells[1], oracle.n());
            assert_eq!(p.registers()[xsum_reg].cells[1] as i64, oracle.xsum());
            assert_eq!(p.registers()[xsumsq_reg].cells[1] as i64, oracle.xsumsq());
            // Slot 0 untouched.
            assert_eq!(p.registers()[n_reg].cells[0], 0);
        }
    }

    /// The pipeline EWMA matches the portable fixed-point EWMA on every
    /// sample.
    #[test]
    fn ewma_fragment_matches_core() {
        use stat4_core::ewma::Ewma;
        let shift = 4u32;
        let mut b = ProgramBuilder::new();
        let reg = b.add_register("ewma_acc", 64, 1);
        let frag = ewma_fragment(&mut b, reg, 0, IN, OUT, shift);
        b.set_control(frag);
        let mut p = b.build(TargetModel::bmv2()).unwrap();

        let mut oracle = Ewma::new(shift);
        let values: Vec<u64> = (0..500u64).map(|i| 50 + (i * 13) % 200).collect();
        for &v in &values {
            let mut phv = Phv::new();
            phv.set(IN, v);
            p.process_phv(&mut phv).unwrap();
            oracle.update(v as i64);
            assert_eq!(
                phv.get(OUT),
                oracle.value() as u64,
                "diverged at sample {v}"
            );
            assert_eq!(
                p.registers()[reg].cells[0],
                oracle.raw() as u64,
                "accumulators diverged"
            );
        }
    }

    /// The end-to-end lazy-σ pipeline: freq update, then VAR/SD in
    /// scratch must equal the oracle's values.
    #[test]
    fn variance_sd_fragment_matches_oracle() {
        let mut b = ProgramBuilder::new();
        let counters = b.add_register("counters", 64, 32);
        let n_reg = b.add_register("n", 64, 1);
        let xsum_reg = b.add_register("xsum", 64, 1);
        let xsumsq_reg = b.add_register("xsumsq", 64, 1);
        let mut prims = vec![Primitive::Set {
            dst: scratch::VALUE_IDX,
            src: Operand::Field(fields::PAYLOAD_VALUE),
        }];
        prims.extend(freq_update_primitives(counters, n_reg, xsum_reg, xsumsq_reg));
        let upd = b.add_action(ActionDef::new("freq_update", prims));
        let t = b.add_table(p4sim::TableDef {
            name: "bind".into(),
            keys: vec![],
            max_entries: 1,
            allowed_actions: vec![upd],
            default_action: Some((upd, vec![0, 0])),
        });
        let var_sd = variance_sd_fragment(&mut b);
        b.set_control(Control::Seq(vec![Control::ApplyTable(t), var_sd]));
        let mut p = b.build(TargetModel::bmv2()).unwrap();

        let mut oracle = FrequencyDist::new(0, 31).unwrap();
        let mut phv_last = Phv::new();
        for v in [5i64, 5, 9, 1, 5, 30, 9, 9, 2, 2, 2, 2] {
            let mut phv = Phv::new();
            phv.set(fields::PAYLOAD_VALUE, v as u64);
            p.process_phv(&mut phv).unwrap();
            oracle.observe(v).unwrap();
            phv_last = phv;
        }
        assert_eq!(u128::from(phv_last.get(scratch::VAR)), oracle.variance_nx());
        assert_eq!(phv_last.get(scratch::SD), oracle.sd_nx());
    }
}
