//! The echo validation application (paper Sec. 3, Figure 5).
//!
//! A host sends Ethernet frames whose payload carries an integer in
//! `[-255, 255]`; the switch tracks the frequency distribution of those
//! integers and, for every packet, reports the updated `N`, `Xsum`,
//! `Xsumsq`, `σ²(NX)` and `σ(NX)` back (here: as a digest; bmv2 used a
//! reply frame). The host recomputes everything in software and
//! compares — the integration test `validation_echo` and the
//! `repro_validation` binary replicate the paper's 10 000-packet run.

use crate::config::Stat4Config;
use crate::fragments::{
    freq_update_primitives, isqrt_fragment_for, mul_unrolled_primitives, variance_nx_primitives,
};
use crate::scratch;
use p4sim::action::{ActionDef, Operand, Primitive};
use p4sim::control::Control;
use p4sim::phv::fields;
use p4sim::program::ProgramBuilder;
use p4sim::{P4Result, Pipeline, RegMerge, TargetModel};

/// Digest id carrying `(N, Xsum, Xsumsq, var, sd)` per packet.
pub const DIGEST_ECHO: u16 = 1;

/// Offset added to payload integers so `[-255, 255]` maps onto cell
/// indices `[0, 510]`.
pub const VALUE_OFFSET: u64 = 255;

/// How the program computes `N·Xsumsq` and `Xsum²`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarianceMode {
    /// Runtime multiplication (bmv2-class targets).
    ExactMul,
    /// Fully unrolled shift-add multiplication — exact for operands
    /// below `2^bits`, legal on multiply-less hardware.
    UnrolledShiftAdd {
        /// Bit width of the unrolled multiplier.
        bits: u32,
    },
}

/// The built echo application.
#[derive(Debug)]
pub struct EchoApp {
    /// The runnable pipeline.
    pub pipeline: Pipeline,
    /// Register id of the value counters.
    pub counters_reg: usize,
    /// Register id of `N` (per slot).
    pub n_reg: usize,
    /// Register id of `Xsum`.
    pub xsum_reg: usize,
    /// Register id of `Xsumsq`.
    pub xsumsq_reg: usize,
    /// Register id of `σ²(NX)` (stored lazily).
    pub var_reg: usize,
    /// Register id of `σ(NX)`.
    pub sd_reg: usize,
}

impl EchoApp {
    /// Builds the echo app with runtime multiplication on bmv2.
    ///
    /// # Errors
    ///
    /// Propagates [`p4sim`] validation errors.
    pub fn build(config: &Stat4Config) -> P4Result<Self> {
        Self::build_with(config, TargetModel::bmv2(), VarianceMode::ExactMul)
    }

    /// Builds with an explicit target and variance mode.
    ///
    /// # Errors
    ///
    /// Propagates [`p4sim`] validation errors — e.g. `ExactMul` on the
    /// Tofino-like target is rejected.
    pub fn build_with(
        config: &Stat4Config,
        target: TargetModel,
        mode: VarianceMode,
    ) -> P4Result<Self> {
        let mut b = ProgramBuilder::new();
        let counters_reg = b.add_register("stat_counters", config.width_bits, config.total_cells());
        let n_reg = b.add_register("stat_n", config.width_bits, config.counter_num);
        let xsum_reg = b.add_register("stat_xsum", config.width_bits, config.counter_num);
        let xsumsq_reg = b.add_register("stat_xsumsq", config.width_bits, config.counter_num);
        let var_reg = b.add_register("stat_var", config.width_bits, config.counter_num);
        let sd_reg = b.add_register("stat_sd", config.width_bits, config.counter_num);
        // Derived values (recomputed from the sums on every packet), not
        // additive state: merging shards by summing them would be wrong.
        b.set_register_merge(var_reg, RegMerge::None);
        b.set_register_merge(sd_reg, RegMerge::None);

        // Binding-table action: extract the payload integer, shift it
        // into the cell domain, then run the frequency update. Action
        // data: [0] base cell, [1] slot, [2] value offset.
        let mut prims = vec![Primitive::Add {
            dst: scratch::VALUE_IDX,
            a: Operand::Field(fields::PAYLOAD_VALUE),
            b: Operand::Data(2),
        }];
        prims.extend(freq_update_primitives(counters_reg, n_reg, xsum_reg, xsumsq_reg));
        let track = b.add_action(ActionDef::new("track_payload", prims));

        let bind = b.add_table(p4sim::TableDef {
            name: "binding".into(),
            keys: vec![],
            max_entries: config.counter_num,
            allowed_actions: vec![track],
            default_action: Some((track, vec![0, 0, VALUE_OFFSET])),
        });

        // Lazy statistics: variance then σ, then persist and echo.
        let var_control = match mode {
            VarianceMode::ExactMul => {
                let a = b.add_action(ActionDef::new("variance_nx", variance_nx_primitives()));
                Control::ApplyAction(a)
            }
            VarianceMode::UnrolledShiftAdd { bits } => {
                // N·Xsumsq via the unrolled multiplier (N is the small
                // operand), Xsum² likewise, then subtract.
                let mut prims =
                    mul_unrolled_primitives(scratch::XSUMSQ, scratch::N, scratch::SQRT_T, bits);
                prims.push(Primitive::Set {
                    dst: scratch::AUX,
                    src: Operand::Field(scratch::SQRT_T),
                });
                prims.extend(mul_unrolled_primitives(
                    scratch::XSUM,
                    scratch::XSUM,
                    scratch::SQRT_T,
                    bits,
                ));
                prims.push(Primitive::Sub {
                    dst: scratch::VAR,
                    a: Operand::Field(scratch::AUX),
                    b: Operand::Field(scratch::SQRT_T),
                });
                let a = b.add_action(ActionDef::new("variance_nx_unrolled", prims));
                Control::ApplyAction(a)
            }
        };
        let sqrt_control = isqrt_fragment_for(&mut b, &target, scratch::VAR, scratch::SD);

        let store_echo = b.add_action(ActionDef::new(
            "store_and_echo",
            vec![
                Primitive::RegWrite {
                    register: var_reg,
                    index: Operand::Const(0),
                    src: Operand::Field(scratch::VAR),
                },
                Primitive::RegWrite {
                    register: sd_reg,
                    index: Operand::Const(0),
                    src: Operand::Field(scratch::SD),
                },
                Primitive::Digest {
                    id: DIGEST_ECHO,
                    values: vec![
                        Operand::Field(scratch::N),
                        Operand::Field(scratch::XSUM),
                        Operand::Field(scratch::XSUMSQ),
                        Operand::Field(scratch::VAR),
                        Operand::Field(scratch::SD),
                    ],
                },
                // Echo the frame back where it came from.
                Primitive::Forward {
                    port: Operand::Field(fields::INGRESS_PORT),
                },
            ],
        ));

        b.set_control(Control::Seq(vec![
            Control::ApplyTable(bind),
            var_control,
            sqrt_control,
            Control::ApplyAction(store_echo),
        ]));

        Ok(Self {
            pipeline: b.build(target)?,
            counters_reg,
            n_reg,
            xsum_reg,
            xsumsq_reg,
            var_reg,
            sd_reg,
        })
    }

    /// Encodes a value of interest as the frame payload the parser
    /// expects (8 bytes, big-endian two's complement).
    #[must_use]
    pub fn encode_value(v: i64) -> [u8; 8] {
        (v as u64).to_be_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p4sim::Phv;
    use stat4_core::freq::FrequencyDist;

    fn send(app: &mut EchoApp, value: i64) -> Vec<u64> {
        let mut phv = Phv::new();
        phv.set(fields::PAYLOAD_VALUE, value as u64);
        phv.set(fields::INGRESS_PORT, 1);
        let out = app.pipeline.process_phv(&mut phv).unwrap();
        assert_eq!(out.egress, Some(1), "echoed to sender");
        assert_eq!(out.digests.len(), 1);
        assert_eq!(out.digests[0].id, DIGEST_ECHO);
        out.digests[0].values.clone()
    }

    /// The paper's Fig. 5 caption: after one frame carrying "2",
    /// N=1, Xsum=2... — note the paper tracks the frequency distribution,
    /// so Xsum counts *observations*: after one frame N=1, Xsum=1,
    /// Xsumsq=1, var=0, sd=0. (The caption's Xsum=2/Xsumsq=4 corresponds
    /// to a value distribution; our digest matches the frequency
    /// semantics of Sec. 2, cross-checked against stat4_core.)
    #[test]
    fn first_packet_digest() {
        let mut app = EchoApp::build(&Stat4Config::default()).unwrap();
        let d = send(&mut app, 2);
        assert_eq!(d, vec![1, 1, 1, 0, 0]);
    }

    #[test]
    fn digest_matches_oracle_over_stream() {
        let mut app = EchoApp::build(&Stat4Config::default()).unwrap();
        let mut oracle = FrequencyDist::new(-255, 255).unwrap();
        let values = [-255i64, 255, 0, 0, -1, 1, -255, 17, 17, 17, -42];
        for &v in &values {
            let d = send(&mut app, v);
            oracle.observe(v).unwrap();
            assert_eq!(d[0], oracle.n_distinct(), "N after {v}");
            assert_eq!(d[1], oracle.xsum(), "Xsum after {v}");
            assert_eq!(u128::from(d[2]), oracle.xsumsq(), "Xsumsq after {v}");
            assert_eq!(u128::from(d[3]), oracle.variance_nx(), "var after {v}");
            assert_eq!(d[4], oracle.sd_nx(), "sd after {v}");
        }
    }

    #[test]
    fn var_sd_persisted_to_registers() {
        let mut app = EchoApp::build(&Stat4Config::default()).unwrap();
        let d = send(&mut app, 5);
        send(&mut app, 9);
        let d2 = send(&mut app, 9);
        assert_eq!(app.pipeline.registers()[app.var_reg].cells[0], d2[3]);
        assert_eq!(app.pipeline.registers()[app.sd_reg].cells[0], d2[4]);
        // First digest differs from last: state evolved.
        assert_ne!(d, d2);
    }

    #[test]
    fn unrolled_variance_builds_on_hardware_and_agrees() {
        let cfg = Stat4Config::default();
        let mut exact = EchoApp::build(&cfg).unwrap();
        let mut hw = EchoApp::build_with(
            &cfg,
            TargetModel::tofino_like(),
            VarianceMode::UnrolledShiftAdd { bits: 16 },
        )
        .unwrap();
        for v in [-3i64, 3, 3, 100, -100, 7, 7, 7, 0] {
            let a = send(&mut exact, v);
            let b = send(&mut hw, v);
            assert_eq!(a, b, "modes agree on {v}");
        }
    }

    #[test]
    fn exact_mul_rejected_on_hardware() {
        let cfg = Stat4Config::default();
        assert!(
            EchoApp::build_with(&cfg, TargetModel::tofino_like(), VarianceMode::ExactMul).is_err()
        );
    }

    #[test]
    fn negative_offsets_map_into_domain() {
        let mut app = EchoApp::build(&Stat4Config::default()).unwrap();
        send(&mut app, -255);
        assert_eq!(
            app.pipeline.registers()[app.counters_reg].cells[0],
            1,
            "-255 lands in cell 0"
        );
        send(&mut app, 255);
        assert_eq!(
            app.pipeline.registers()[app.counters_reg].cells[510],
            1,
            "255 lands in cell 510"
        );
    }
}
