//! Controller-side helpers for editing binding tables.
//!
//! The paper's runtime-tuning mechanism: "controllers can adjust at
//! runtime the tracked distributions without recompiling the P4
//! application, by modifying the content of Stat4's binding tables."
//! These helpers construct the [`RuntimeRequest`]s for the case-study
//! app's drill-down table; the `anomaly` crate's controller sends them
//! over the (latency-modelled) control channel.

use crate::casestudy::{CaseStudyApp, CaseStudyHandles};
use p4sim::table::{Entry, MatchValue};
use p4sim::RuntimeRequest;
use std::net::Ipv4Addr;

/// Key for a `prefix/len` binding entry.
#[must_use]
pub fn prefix_key(prefix: Ipv4Addr, len: u8) -> Vec<MatchValue> {
    vec![MatchValue::Lpm {
        value: u64::from(u32::from(prefix)),
        prefix_len: len,
    }]
}

/// Builds the request binding `prefix/len` to `group` within the
/// drill-down distribution at `slot`.
#[must_use]
pub fn bind_prefix_h(
    h: &CaseStudyHandles,
    prefix: Ipv4Addr,
    len: u8,
    slot: usize,
    group: u64,
) -> RuntimeRequest {
    let base = h.params.config.base(slot) as u64;
    RuntimeRequest::InsertEntry {
        table: h.drill_table,
        entry: Entry {
            key: prefix_key(prefix, len),
            priority: i32::from(len),
            action: h.track_group_action,
            action_data: vec![base, slot as u64, group],
        },
    }
}

/// [`bind_prefix_h`] for a still-local app.
#[must_use]
pub fn bind_prefix(
    app: &CaseStudyApp,
    prefix: Ipv4Addr,
    len: u8,
    slot: usize,
    group: u64,
) -> RuntimeRequest {
    bind_prefix_h(&app.handles(), prefix, len, slot, group)
}

/// Builds the request removing a binding.
#[must_use]
pub fn unbind_prefix_h(h: &CaseStudyHandles, prefix: Ipv4Addr, len: u8) -> RuntimeRequest {
    RuntimeRequest::DeleteEntry {
        table: h.drill_table,
        key: prefix_key(prefix, len),
    }
}

/// [`unbind_prefix_h`] for a still-local app.
#[must_use]
pub fn unbind_prefix(app: &CaseStudyApp, prefix: Ipv4Addr, len: u8) -> RuntimeRequest {
    unbind_prefix_h(&app.handles(), prefix, len)
}

/// Builds the requests that wipe the drill-down distribution's state so
/// a re-bound table starts from a clean slate (the controller sends
/// these together with the new bindings).
#[must_use]
pub fn reset_distribution_h(h: &CaseStudyHandles) -> Vec<RuntimeRequest> {
    vec![
        RuntimeRequest::ResetRegister {
            register: h.counters_reg,
        },
        RuntimeRequest::ResetRegister { register: h.n_reg },
        RuntimeRequest::ResetRegister {
            register: h.xsum_reg,
        },
        RuntimeRequest::ResetRegister {
            register: h.xsumsq_reg,
        },
        RuntimeRequest::ResetRegister {
            register: h.suppress_reg,
        },
    ]
}

/// [`reset_distribution_h`] for a still-local app.
#[must_use]
pub fn reset_distribution(app: &CaseStudyApp) -> Vec<RuntimeRequest> {
    reset_distribution_h(&app.handles())
}

/// Builds the request clearing every binding entry.
#[must_use]
pub fn clear_bindings_h(h: &CaseStudyHandles) -> RuntimeRequest {
    RuntimeRequest::ClearTable {
        table: h.drill_table,
    }
}

/// [`clear_bindings_h`] for a still-local app.
#[must_use]
pub fn clear_bindings(app: &CaseStudyApp) -> RuntimeRequest {
    clear_bindings_h(&app.handles())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::casestudy::CaseStudyParams;

    #[test]
    fn bind_and_unbind_roundtrip() {
        let mut app = CaseStudyApp::build(CaseStudyParams::default()).unwrap();
        let p = Ipv4Addr::new(10, 0, 5, 0);
        let req = bind_prefix(&app, p, 24, 0, 5);
        assert!(app.pipeline.runtime(&req).is_ok());
        assert_eq!(app.pipeline.tables()[app.drill_table].entries().len(), 1);
        let del = unbind_prefix(&app, p, 24);
        assert!(app.pipeline.runtime(&del).is_ok());
        assert!(app.pipeline.tables()[app.drill_table].entries().is_empty());
    }

    #[test]
    fn reset_distribution_zeroes_registers() {
        let mut app = CaseStudyApp::build(CaseStudyParams::default()).unwrap();
        app.pipeline.runtime(&RuntimeRequest::WriteRegister {
            register: app.counters_reg,
            index: 7,
            value: 9,
        });
        for req in reset_distribution(&app) {
            assert!(app.pipeline.runtime(&req).is_ok());
        }
        assert_eq!(app.pipeline.registers()[app.counters_reg].cells[7], 0);
    }

    #[test]
    fn clear_bindings_empties_table() {
        let mut app = CaseStudyApp::build(CaseStudyParams::default()).unwrap();
        for g in 0..3 {
            let req = bind_prefix(&app, Ipv4Addr::new(10, 0, g, 0), 24, 0, u64::from(g));
            app.pipeline.runtime(&req);
        }
        app.pipeline.runtime(&clear_bindings(&app));
        assert!(app.pipeline.tables()[app.drill_table].entries().is_empty());
    }
}
