//! The case-study application (paper Sec. 4, Figure 6).
//!
//! A P4 switch fronts a /8 of 36 destinations spread over six /24
//! subnets. It continuously:
//!
//! 1. **Tracks packets per time interval** for the whole /8 in a
//!    circular window of recent intervals (paper default: 100 × 8 ms),
//!    and on every interval close checks the just-finished interval
//!    against the stored distribution: `N·x > Xsum + k·σ(NX)` — the
//!    paper's "rate higher than the mean plus two standard deviations".
//!    A hit digests a [`DIGEST_SPIKE`] alert.
//! 2. **Applies the drill-down binding table**. Initially empty; after a
//!    spike alert the controller binds each /24 to a *group index*, so
//!    the switch starts tracking the frequency distribution of groups
//!    (one observation per packet). After every update it checks whether
//!    the updated group's frequency is an outlier among group
//!    frequencies — the traffic-imbalance test — and digests
//!    [`DIGEST_IMBALANCE`] (at most once per interval). The controller
//!    then narrows the binding to per-destination /32s inside the guilty
//!    /24, and the same mechanism pinpoints the destination.
//!
//! Everything per-packet is constant work; all state is registers; the
//! interval boundary uses a power-of-two interval length
//! (`2^interval_log2` ns) so "divide by interval" is a shift.

use crate::config::Stat4Config;
use crate::fragments::{freq_update_primitives, isqrt_fragment, variance_nx_primitives};
use crate::scratch;
use p4sim::action::{ActionDef, Operand, Primitive};
use p4sim::control::{CmpOp, Cond, Control};
use p4sim::phv::fields;
use p4sim::program::ProgramBuilder;
use p4sim::{P4Result, Pipeline, RegMerge, TargetModel};

/// Digest id for traffic-spike alerts:
/// `[interval_count, xsum, n, sd, interval_id]`.
pub const DIGEST_SPIKE: u16 = 2;

/// Digest id for traffic-imbalance alerts:
/// `[group_index, group_freq, n, xsum, sd, interval_id, generation]`.
/// `generation` echoes the [`CaseStudyHandles::generation_reg`] value at
/// emission so the controller can discard digests that were in flight
/// across a rebind.
pub const DIGEST_IMBALANCE: u16 = 3;

/// Tunables of the case-study program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CaseStudyParams {
    /// Interval length is `2^interval_log2` nanoseconds (23 ≈ 8.4 ms,
    /// the closest power of two to the paper's 8 ms default).
    pub interval_log2: u32,
    /// Window capacity in intervals (paper default 100; any value ≥ 2).
    pub window_size: u64,
    /// Outlier band width in σ units (paper: 2).
    pub k_sigma: u64,
    /// Minimum closed intervals before spike alerts fire.
    pub min_intervals: u64,
    /// Minimum distinct groups before imbalance alerts fire.
    pub min_groups: u64,
    /// Relative alarm margin, as a right-shift of `Xsum`: both checks
    /// become `N·x > Xsum + k·σ(NX) + (Xsum >> margin_shift)` — the
    /// outlier must beat the mean by `k·σ` *and* by a fixed fraction
    /// (default 1/8 = 12.5%). A bare k·σ band false-alarms on any
    /// realistic traffic: ~N(0,1)-distributed interval noise crosses 2σ
    /// in ≈2% of intervals, and near-uniform integer counts have σ < 1
    /// so whichever group is one count ahead gets flagged. The paper
    /// does not discuss this; see DESIGN.md "Known deviations". The
    /// margin is one shift and one add — P4-legal.
    pub margin_shift: u32,
    /// Floor of the relative margin (in `Xsum` units), so tiny early
    /// sums cannot produce a zero margin.
    pub min_margin: u64,
    /// Local mitigation (paper Fig. 1c: switches "locally react to
    /// anomalies (e.g., rate limiting some flows)"): when enabled,
    /// packets whose drill-down group currently fails the imbalance
    /// check are dropped in the data plane — no controller involvement,
    /// zero reaction latency. Alert digests still flow.
    pub local_mitigation: bool,
    /// Egress port for forwarded traffic.
    pub egress_port: u64,
    /// The monitored prefix as `(address, prefix_len)` — installed in
    /// the rate binding table at build time (the paper's /8).
    pub monitored_prefix: (u32, u8),
    /// Capacity of the drill-down binding table in entries.
    pub drill_capacity: usize,
    /// Stat4 register sizing for the drill-down distribution.
    pub config: Stat4Config,
}

impl Default for CaseStudyParams {
    fn default() -> Self {
        Self {
            interval_log2: 23,
            window_size: 100,
            k_sigma: 2,
            min_intervals: 10,
            min_groups: 2,
            margin_shift: 3,
            min_margin: 4,
            local_mitigation: false,
            egress_port: 1,
            monitored_prefix: (0x0a00_0000, 8),
            drill_capacity: 64,
            config: Stat4Config {
                counter_num: 2,
                counter_size: 256,
                width_bits: 64,
            },
        }
    }
}

/// Indices into the `rate_state` register.
mod rate_state {
    /// Currently open interval id (0 = uninitialised).
    pub const CUR_INTERVAL: u64 = 0;
    /// Packets seen in the open interval.
    pub const CUR_COUNT: u64 = 1;
    /// Next window slot to overwrite.
    pub const WIDX: u64 = 2;
    /// `N` over the stored window.
    pub const N: u64 = 3;
    /// `Xsum` over the stored window.
    pub const XSUM: u64 = 4;
    /// `Xsumsq` over the stored window.
    pub const XSUMSQ: u64 = 5;
    /// Cells in the register.
    pub const SIZE: usize = 6;
}

/// Copyable identifiers of the case-study program's tables and
/// registers — what a controller needs to drive the app after the
/// pipeline itself has been moved into a switch node.
#[derive(Debug, Clone, Copy)]
pub struct CaseStudyHandles {
    /// Parameters the app was built with.
    pub params: CaseStudyParams,
    /// Rate binding table id (decides which packets feed the rate
    /// distribution).
    pub rate_table: usize,
    /// Drill-down binding table id.
    pub drill_table: usize,
    /// Action id binding entries must use.
    pub track_group_action: usize,
    /// Window register id.
    pub win_reg: usize,
    /// Rate bookkeeping register id.
    pub rate_state_reg: usize,
    /// Group-frequency counters register id.
    pub counters_reg: usize,
    /// Per-slot `N` register id.
    pub n_reg: usize,
    /// Per-slot `Xsum` register id.
    pub xsum_reg: usize,
    /// Per-slot `Xsumsq` register id.
    pub xsumsq_reg: usize,
    /// Imbalance alert-suppression register id.
    pub suppress_reg: usize,
    /// Binding-generation register id (single cell, bumped by the
    /// controller on every rebind).
    pub generation_reg: usize,
}

/// The built case-study application.
#[derive(Debug)]
pub struct CaseStudyApp {
    /// The runnable pipeline.
    pub pipeline: Pipeline,
    /// Parameters it was built with.
    pub params: CaseStudyParams,
    /// Rate binding table id.
    pub rate_table: usize,
    /// Drill-down binding table id (the controller edits this).
    pub drill_table: usize,
    /// Action id binding entries must use.
    pub track_group_action: usize,
    /// Window register id.
    pub win_reg: usize,
    /// Rate bookkeeping register id (see the `rate_state` indices).
    pub rate_state_reg: usize,
    /// Group-frequency counters register id.
    pub counters_reg: usize,
    /// Per-slot `N` register id for the group distribution.
    pub n_reg: usize,
    /// Per-slot `Xsum` register id.
    pub xsum_reg: usize,
    /// Per-slot `Xsumsq` register id.
    pub xsumsq_reg: usize,
    /// Imbalance alert-suppression register id.
    pub suppress_reg: usize,
    /// Binding-generation register id.
    pub generation_reg: usize,
}

impl CaseStudyApp {
    /// Builds the application for bmv2.
    ///
    /// # Errors
    ///
    /// Propagates [`p4sim`] validation errors.
    #[allow(clippy::too_many_lines)]
    pub fn build(params: CaseStudyParams) -> P4Result<Self> {
        use scratch::{
            CNT, DRILL_HIT, F_OLD, IVL, MUL_A, MUL_B, N, OLD, RATE_HIT, SUPPRESS, TMP, VALUE_IDX,
            WIDX, XSUM, XSUMSQ,
        };
        let cfg = params.config;
        let mut b = ProgramBuilder::new();

        let win_reg = b.add_register("rate_window", 64, params.window_size as usize);
        let rate_state_reg = b.add_register("rate_state", 64, rate_state::SIZE);
        let counters_reg = b.add_register("stat_counters", cfg.width_bits, cfg.total_cells());
        let n_reg = b.add_register("stat_n", cfg.width_bits, cfg.counter_num);
        let xsum_reg = b.add_register("stat_xsum", cfg.width_bits, cfg.counter_num);
        let xsumsq_reg = b.add_register("stat_xsumsq", cfg.width_bits, cfg.counter_num);
        let suppress_reg = b.add_register("imbalance_suppress", 64, cfg.counter_num);
        let generation_reg = b.add_register("binding_generation", 64, 1);
        // Sliding-window slots, EWMA rate state, cooldown timers and the
        // controller-written generation stamp are last-writer state, not
        // additive counters — exempt them from the sum-merge algebra.
        b.set_register_merge(win_reg, RegMerge::None);
        b.set_register_merge(rate_state_reg, RegMerge::None);
        b.set_register_merge(suppress_reg, RegMerge::None);
        b.set_register_merge(generation_reg, RegMerge::None);

        // ---- 0. rate binding table -----------------------------------
        // Stat4's architecture: even "track the rate of the /8" is a
        // binding-table entry, so the controller can retarget it at
        // runtime. Action data: [0] = slot (reserved for multi-slot rate
        // tracking).
        let mark_rate = b.add_action(ActionDef::new(
            "mark_rate",
            vec![
                Primitive::Set {
                    dst: RATE_HIT,
                    src: Operand::Const(1),
                },
                Primitive::Set {
                    dst: scratch::AUX,
                    src: Operand::Data(0),
                },
            ],
        ));
        let rate_table = b.add_table(p4sim::TableDef {
            name: "rate_binding".into(),
            keys: vec![(fields::IPV4_DST, p4sim::MatchKind::Lpm { width: 32 })],
            max_entries: 8,
            allowed_actions: vec![mark_rate],
            default_action: None,
        });

        // ---- 1. interval bookkeeping --------------------------------
        // IVL = (ts >> log2) + 1, so 0 is reserved for "uninitialised".
        let prep = b.add_action(ActionDef::new(
            "interval_prep",
            vec![
                Primitive::Shr {
                    dst: IVL,
                    src: Operand::Field(fields::TIMESTAMP_NS),
                    amount: Operand::Const(u64::from(params.interval_log2)),
                },
                Primitive::Add {
                    dst: IVL,
                    a: Operand::Field(IVL),
                    b: Operand::Const(1),
                },
                Primitive::RegRead {
                    dst: TMP,
                    register: rate_state_reg,
                    index: Operand::Const(rate_state::CUR_INTERVAL),
                },
                Primitive::RegRead {
                    dst: CNT,
                    register: rate_state_reg,
                    index: Operand::Const(rate_state::CUR_COUNT),
                },
            ],
        ));

        let init = b.add_action(ActionDef::new(
            "interval_init",
            vec![
                Primitive::RegWrite {
                    register: rate_state_reg,
                    index: Operand::Const(rate_state::CUR_INTERVAL),
                    src: Operand::Field(IVL),
                },
                Primitive::RegWrite {
                    register: rate_state_reg,
                    index: Operand::Const(rate_state::CUR_COUNT),
                    src: Operand::Const(1),
                },
            ],
        ));

        let incr = b.add_action(ActionDef::new(
            "interval_incr",
            vec![
                Primitive::Add {
                    dst: TMP,
                    a: Operand::Field(CNT),
                    b: Operand::Const(1),
                },
                Primitive::RegWrite {
                    register: rate_state_reg,
                    index: Operand::Const(rate_state::CUR_COUNT),
                    src: Operand::Field(TMP),
                },
            ],
        ));

        // ---- 2. interval close: load, check, commit ------------------
        let load_close = b.add_action(ActionDef::new(
            "close_load",
            vec![
                Primitive::RegRead {
                    dst: WIDX,
                    register: rate_state_reg,
                    index: Operand::Const(rate_state::WIDX),
                },
                Primitive::RegRead {
                    dst: OLD,
                    register: win_reg,
                    index: Operand::Field(WIDX),
                },
                Primitive::RegRead {
                    dst: N,
                    register: rate_state_reg,
                    index: Operand::Const(rate_state::N),
                },
                Primitive::RegRead {
                    dst: XSUM,
                    register: rate_state_reg,
                    index: Operand::Const(rate_state::XSUM),
                },
                Primitive::RegRead {
                    dst: XSUMSQ,
                    register: rate_state_reg,
                    index: Operand::Const(rate_state::XSUMSQ),
                },
            ],
        ));

        // σ over the *stored* distribution (before the new value joins).
        let var_sd_rate = {
            let var = b.add_action(ActionDef::new("rate_variance", variance_nx_primitives()));
            let sqrt = isqrt_fragment(&mut b, scratch::VAR, scratch::SD);
            Control::Seq(vec![Control::ApplyAction(var), sqrt])
        };

        let spike_prep = b.add_action(ActionDef::new(
            "spike_prep",
            vec![
                Primitive::Mul {
                    dst: MUL_A,
                    a: Operand::Field(N),
                    b: Operand::Field(CNT),
                },
                Primitive::Mul {
                    dst: MUL_B,
                    a: Operand::Field(scratch::SD),
                    b: Operand::Const(params.k_sigma),
                },
                Primitive::Add {
                    dst: MUL_B,
                    a: Operand::Field(MUL_B),
                    b: Operand::Field(XSUM),
                },
                // Relative margin with a floor:
                // + max(Xsum >> margin_shift, min_margin).
                Primitive::Shr {
                    dst: scratch::SQRT_T,
                    src: Operand::Field(XSUM),
                    amount: Operand::Const(u64::from(params.margin_shift)),
                },
                Primitive::Max {
                    dst: scratch::SQRT_T,
                    a: Operand::Field(scratch::SQRT_T),
                    b: Operand::Const(params.min_margin),
                },
                Primitive::Add {
                    dst: MUL_B,
                    a: Operand::Field(MUL_B),
                    b: Operand::Field(scratch::SQRT_T),
                },
            ],
        ));

        let spike_digest = b.add_action(ActionDef::new(
            "spike_digest",
            vec![Primitive::Digest {
                id: DIGEST_SPIKE,
                values: vec![
                    Operand::Field(CNT),
                    Operand::Field(XSUM),
                    Operand::Field(N),
                    Operand::Field(scratch::SD),
                    Operand::Field(IVL),
                ],
            }],
        ));

        let commit_close = b.add_action(ActionDef::new(
            "close_commit",
            vec![
                // Xsumsq += CNT² − OLD²
                Primitive::Mul {
                    dst: TMP,
                    a: Operand::Field(CNT),
                    b: Operand::Field(CNT),
                },
                Primitive::Add {
                    dst: XSUMSQ,
                    a: Operand::Field(XSUMSQ),
                    b: Operand::Field(TMP),
                },
                Primitive::Mul {
                    dst: TMP,
                    a: Operand::Field(OLD),
                    b: Operand::Field(OLD),
                },
                Primitive::Sub {
                    dst: XSUMSQ,
                    a: Operand::Field(XSUMSQ),
                    b: Operand::Field(TMP),
                },
                // Xsum += CNT − OLD
                Primitive::Add {
                    dst: XSUM,
                    a: Operand::Field(XSUM),
                    b: Operand::Field(CNT),
                },
                Primitive::Sub {
                    dst: XSUM,
                    a: Operand::Field(XSUM),
                    b: Operand::Field(OLD),
                },
                // N = min(N + 1, window_size)
                Primitive::Add {
                    dst: N,
                    a: Operand::Field(N),
                    b: Operand::Const(1),
                },
                Primitive::Min {
                    dst: N,
                    a: Operand::Field(N),
                    b: Operand::Const(params.window_size),
                },
                // Persist.
                Primitive::RegWrite {
                    register: win_reg,
                    index: Operand::Field(WIDX),
                    src: Operand::Field(CNT),
                },
                Primitive::RegWrite {
                    register: rate_state_reg,
                    index: Operand::Const(rate_state::N),
                    src: Operand::Field(N),
                },
                Primitive::RegWrite {
                    register: rate_state_reg,
                    index: Operand::Const(rate_state::XSUM),
                    src: Operand::Field(XSUM),
                },
                Primitive::RegWrite {
                    register: rate_state_reg,
                    index: Operand::Const(rate_state::XSUMSQ),
                    src: Operand::Field(XSUMSQ),
                },
                Primitive::RegWrite {
                    register: rate_state_reg,
                    index: Operand::Const(rate_state::CUR_INTERVAL),
                    src: Operand::Field(IVL),
                },
                Primitive::RegWrite {
                    register: rate_state_reg,
                    index: Operand::Const(rate_state::CUR_COUNT),
                    src: Operand::Const(1),
                },
                // Advance the window index (wrap handled in control).
                Primitive::Add {
                    dst: WIDX,
                    a: Operand::Field(WIDX),
                    b: Operand::Const(1),
                },
            ],
        ));

        let widx_wrap = b.add_action(ActionDef::new(
            "widx_wrap",
            vec![Primitive::RegWrite {
                register: rate_state_reg,
                index: Operand::Const(rate_state::WIDX),
                src: Operand::Const(0),
            }],
        ));
        let widx_store = b.add_action(ActionDef::new(
            "widx_store",
            vec![Primitive::RegWrite {
                register: rate_state_reg,
                index: Operand::Const(rate_state::WIDX),
                src: Operand::Field(WIDX),
            }],
        ));

        let close_seq = Control::Seq(vec![
            Control::ApplyAction(load_close),
            var_sd_rate,
            Control::ApplyAction(spike_prep),
            Control::If {
                cond: Cond::new(
                    Operand::Field(N),
                    CmpOp::Ge,
                    Operand::Const(params.min_intervals),
                ),
                then_branch: Box::new(Control::If {
                    cond: Cond::new(Operand::Field(MUL_A), CmpOp::Gt, Operand::Field(MUL_B)),
                    then_branch: Box::new(Control::ApplyAction(spike_digest)),
                    else_branch: None,
                }),
                else_branch: None,
            },
            Control::ApplyAction(commit_close),
            Control::If {
                cond: Cond::new(
                    Operand::Field(WIDX),
                    CmpOp::Ge,
                    Operand::Const(params.window_size),
                ),
                then_branch: Box::new(Control::ApplyAction(widx_wrap)),
                else_branch: Some(Box::new(Control::ApplyAction(widx_store))),
            },
        ]);

        let rate_fragment = Control::Seq(vec![
            Control::ApplyAction(prep),
            Control::If {
                cond: Cond::new(Operand::Field(IVL), CmpOp::Ne, Operand::Field(TMP)),
                then_branch: Box::new(Control::If {
                    cond: Cond::new(Operand::Field(TMP), CmpOp::Eq, Operand::Const(0)),
                    then_branch: Box::new(Control::ApplyAction(init)),
                    else_branch: Some(Box::new(close_seq)),
                }),
                else_branch: Some(Box::new(Control::ApplyAction(incr))),
            },
        ]);

        // ---- 3. drill-down binding table ------------------------------
        // Action data: [0] base cell, [1] slot, [2] group index.
        let mut track_prims = vec![
            Primitive::Set {
                dst: DRILL_HIT,
                src: Operand::Const(1),
            },
            Primitive::Set {
                dst: VALUE_IDX,
                src: Operand::Data(2),
            },
        ];
        track_prims.extend(freq_update_primitives(counters_reg, n_reg, xsum_reg, xsumsq_reg));
        let track_group_action = b.add_action(ActionDef::new("track_group", track_prims));

        let drill_table = b.add_table(p4sim::TableDef {
            name: "drill_binding".into(),
            keys: vec![(
                fields::IPV4_DST,
                p4sim::MatchKind::Lpm { width: 32 },
            )],
            max_entries: params.drill_capacity,
            allowed_actions: vec![track_group_action],
            default_action: None,
        });

        // ---- 4. imbalance check after a drill hit ---------------------
        let var_sd_groups = {
            let var = b.add_action(ActionDef::new("group_variance", variance_nx_primitives()));
            let sqrt = isqrt_fragment(&mut b, scratch::VAR, scratch::SD);
            Control::Seq(vec![Control::ApplyAction(var), sqrt])
        };

        let imb_prep = b.add_action(ActionDef::new(
            "imbalance_prep",
            vec![
                // f_new = f_old + 1
                Primitive::Add {
                    dst: TMP,
                    a: Operand::Field(F_OLD),
                    b: Operand::Const(1),
                },
                Primitive::Mul {
                    dst: MUL_A,
                    a: Operand::Field(N),
                    b: Operand::Field(TMP),
                },
                Primitive::Mul {
                    dst: MUL_B,
                    a: Operand::Field(scratch::SD),
                    b: Operand::Const(params.k_sigma),
                },
                Primitive::Add {
                    dst: MUL_B,
                    a: Operand::Field(MUL_B),
                    b: Operand::Field(XSUM),
                },
                // Relative margin with a floor:
                // + max(Xsum >> margin_shift, min_margin).
                Primitive::Shr {
                    dst: scratch::SQRT_T,
                    src: Operand::Field(XSUM),
                    amount: Operand::Const(u64::from(params.margin_shift)),
                },
                Primitive::Max {
                    dst: scratch::SQRT_T,
                    a: Operand::Field(scratch::SQRT_T),
                    b: Operand::Const(params.min_margin),
                },
                Primitive::Add {
                    dst: MUL_B,
                    a: Operand::Field(MUL_B),
                    b: Operand::Field(scratch::SQRT_T),
                },
                Primitive::RegRead {
                    dst: SUPPRESS,
                    register: suppress_reg,
                    index: Operand::Const(0),
                },
                Primitive::RegRead {
                    dst: scratch::SQRT_M,
                    register: generation_reg,
                    index: Operand::Const(0),
                },
            ],
        ));

        let imb_digest = b.add_action(ActionDef::new(
            "imbalance_digest",
            vec![
                Primitive::Digest {
                    id: DIGEST_IMBALANCE,
                    values: vec![
                        Operand::Field(VALUE_IDX),
                        Operand::Field(TMP),
                        Operand::Field(N),
                        Operand::Field(XSUM),
                        Operand::Field(scratch::SD),
                        Operand::Field(IVL),
                        Operand::Field(scratch::SQRT_M),
                    ],
                },
                Primitive::RegWrite {
                    register: suppress_reg,
                    index: Operand::Const(0),
                    src: Operand::Field(IVL),
                },
            ],
        ));

        let mitigate = b.add_action(ActionDef::new("mitigate_drop", vec![Primitive::Drop]));
        let alert_and_react = {
            let mut steps = vec![Control::If {
                cond: Cond::new(Operand::Field(SUPPRESS), CmpOp::Ne, Operand::Field(IVL)),
                then_branch: Box::new(Control::ApplyAction(imb_digest)),
                else_branch: None,
            }];
            if params.local_mitigation {
                // Fig. 1c local reaction: drop packets of the guilty
                // group while the check holds. Counting happens at
                // ingress (before the drop), so the tracked statistics
                // still see the attack — the egress side is protected.
                steps.push(Control::ApplyAction(mitigate));
            }
            Control::Seq(steps)
        };
        let imbalance_fragment = Control::If {
            cond: Cond::new(Operand::Field(DRILL_HIT), CmpOp::Eq, Operand::Const(1)),
            then_branch: Box::new(Control::Seq(vec![
                var_sd_groups,
                Control::ApplyAction(imb_prep),
                Control::If {
                    cond: Cond::new(
                        Operand::Field(N),
                        CmpOp::Ge,
                        Operand::Const(params.min_groups),
                    ),
                    then_branch: Box::new(Control::If {
                        cond: Cond::new(Operand::Field(MUL_A), CmpOp::Gt, Operand::Field(MUL_B)),
                        then_branch: Box::new(alert_and_react),
                        else_branch: None,
                    }),
                    else_branch: None,
                },
            ])),
            else_branch: None,
        };

        // ---- 5. forwarding -------------------------------------------
        let route = b.add_action(ActionDef::new(
            "route",
            vec![Primitive::Forward {
                port: Operand::Const(params.egress_port),
            }],
        ));

        // Routing runs before the imbalance fragment so a mitigation
        // Drop is not overwritten by the egress assignment.
        b.set_control(Control::Seq(vec![
            Control::ApplyTable(rate_table),
            Control::If {
                cond: Cond::new(Operand::Field(RATE_HIT), CmpOp::Eq, Operand::Const(1)),
                then_branch: Box::new(rate_fragment),
                else_branch: None,
            },
            Control::ApplyAction(route),
            Control::ApplyTable(drill_table),
            imbalance_fragment,
        ]));

        let mut pipeline = b.build(TargetModel::bmv2())?;
        // Install the monitored-prefix entry, as the controller would at
        // startup.
        let (addr, plen) = params.monitored_prefix;
        let resp = pipeline.runtime(&p4sim::RuntimeRequest::InsertEntry {
            table: rate_table,
            entry: p4sim::Entry {
                key: vec![p4sim::MatchValue::Lpm {
                    value: u64::from(addr),
                    prefix_len: plen,
                }],
                priority: i32::from(plen),
                action: mark_rate,
                action_data: vec![0],
            },
        });
        if let p4sim::RuntimeResponse::Error(e) = resp {
            return Err(p4sim::P4Error::Invalid { what: e });
        }
        Ok(Self {
            pipeline,
            params,
            rate_table,
            drill_table,
            track_group_action,
            win_reg,
            rate_state_reg,
            counters_reg,
            n_reg,
            xsum_reg,
            xsumsq_reg,
            suppress_reg,
            generation_reg,
        })
    }

    /// Extracts the copyable handles (ids survive moving `pipeline`
    /// into a switch node).
    #[must_use]
    pub fn handles(&self) -> CaseStudyHandles {
        CaseStudyHandles {
            params: self.params,
            rate_table: self.rate_table,
            drill_table: self.drill_table,
            track_group_action: self.track_group_action,
            win_reg: self.win_reg,
            rate_state_reg: self.rate_state_reg,
            counters_reg: self.counters_reg,
            n_reg: self.n_reg,
            xsum_reg: self.xsum_reg,
            xsumsq_reg: self.xsumsq_reg,
            suppress_reg: self.suppress_reg,
            generation_reg: self.generation_reg,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binding;
    use p4sim::Phv;
    use std::net::Ipv4Addr;

    fn params_small() -> CaseStudyParams {
        CaseStudyParams {
            interval_log2: 20, // ~1 ms intervals
            window_size: 16,
            min_intervals: 4,
            ..CaseStudyParams::default()
        }
    }

    fn packet(app: &mut CaseStudyApp, ts: u64, dst: u32) -> p4sim::PacketOutcome {
        let mut phv = Phv::new();
        phv.set(fields::TIMESTAMP_NS, ts);
        phv.set(fields::IPV4_DST, u64::from(dst));
        phv.set(fields::IPV4_VALID, 1);
        app.pipeline.process_phv(&mut phv).unwrap()
    }

    /// Send `rate` packets in each of `n` intervals starting at
    /// `start_ivl`; returns any spike digests seen.
    fn run_intervals(
        app: &mut CaseStudyApp,
        start_ivl: u64,
        n: u64,
        rate: u64,
    ) -> Vec<p4sim::pipeline::DigestRecord> {
        let ivl_len = 1u64 << app.params.interval_log2;
        let mut alerts = Vec::new();
        for i in 0..n {
            for p in 0..rate {
                let ts = (start_ivl + i) * ivl_len + p * (ivl_len / (rate + 1));
                let out = packet(app, ts, 0x0a00_0001);
                alerts.extend(
                    out.digests
                        .into_iter()
                        .filter(|d| d.id == DIGEST_SPIKE),
                );
            }
        }
        alerts
    }

    #[test]
    fn steady_traffic_never_alarms() {
        let mut app = CaseStudyApp::build(params_small()).unwrap();
        let alerts = run_intervals(&mut app, 1, 30, 20);
        assert!(alerts.is_empty(), "got {alerts:?}");
    }

    #[test]
    fn spike_detected_in_first_interval_after_onset() {
        let mut app = CaseStudyApp::build(params_small()).unwrap();
        // Warm-up: 20 intervals at ~20 pkts. Use slightly varying rates
        // so sigma is non-zero.
        let ivl_len = 1u64 << app.params.interval_log2;
        for i in 0..20u64 {
            let rate = 20 + (i % 3); // 20, 21, 22
            for p in 0..rate {
                packet(&mut app, (1 + i) * ivl_len + p * 1000, 0x0a00_0001);
            }
        }
        // Spike: 10x the rate in interval 21.
        let mut spike_alerts = Vec::new();
        for p in 0..200u64 {
            let out = packet(&mut app, 21 * ivl_len + p * 100, 0x0a00_0001);
            spike_alerts.extend(out.digests.into_iter().filter(|d| d.id == DIGEST_SPIKE));
        }
        // The alert fires when interval 21 closes, i.e. on the first
        // packet of interval 22 — "the first interval after the start of
        // the spike".
        assert!(spike_alerts.is_empty(), "not yet closed");
        let out = packet(&mut app, 22 * ivl_len + 5, 0x0a00_0001);
        let alerts: Vec<_> = out
            .digests
            .iter()
            .filter(|d| d.id == DIGEST_SPIKE)
            .collect();
        assert_eq!(alerts.len(), 1, "spike flagged at first close");
        assert_eq!(alerts[0].values[0], 200, "the spiky interval count");
    }

    #[test]
    fn drill_down_identifies_group() {
        let mut app = CaseStudyApp::build(params_small()).unwrap();
        // Bind six /24s to groups 0..6, as the controller would after a
        // spike alert.
        for g in 0..6u32 {
            let req = binding::bind_prefix(
                &app,
                Ipv4Addr::new(10, 0, g as u8, 0),
                24,
                0,
                u64::from(g),
            );
            assert!(app.pipeline.runtime(&req).is_ok());
        }
        // Balanced traffic across the six /24s: no imbalance alert.
        let ivl_len = 1u64 << app.params.interval_log2;
        let mut ts = ivl_len;
        let mut imbalance = Vec::new();
        for round in 0..40u32 {
            for g in 0..6u32 {
                let dst = 0x0a00_0000 | (g << 8) | (round % 6 + 1);
                let out = packet(&mut app, ts, dst);
                ts += 10_000;
                imbalance.extend(out.digests.into_iter().filter(|d| d.id == DIGEST_IMBALANCE));
            }
        }
        assert!(imbalance.is_empty(), "balanced: {imbalance:?}");

        // Hammer group 3.
        let mut hits = Vec::new();
        for _ in 0..2_000u32 {
            let out = packet(&mut app, ts, 0x0a00_0305);
            ts += 997;
            hits.extend(out.digests.into_iter().filter(|d| d.id == DIGEST_IMBALANCE));
        }
        assert!(!hits.is_empty(), "imbalance must surface");
        assert_eq!(hits[0].values[0], 3, "guilty group identified");
    }

    #[test]
    fn imbalance_alert_rate_limited_per_interval() {
        // Note: with N groups the maximum achievable z-score of the
        // frequency-outlier test is (N-1)/sqrt(N), so a k = 2 band needs
        // at least 6 groups to be able to fire at all; we use 8.
        let mut app = CaseStudyApp::build(params_small()).unwrap();
        for g in 0..8u32 {
            let req = binding::bind_prefix(
                &app,
                Ipv4Addr::new(10, 0, g as u8, 0),
                24,
                0,
                u64::from(g),
            );
            app.pipeline.runtime(&req);
        }
        let ivl_len = 1u64 << app.params.interval_log2;
        // Balanced background then a flood, all inside ONE interval.
        let mut ts = ivl_len;
        for round in 0..30u32 {
            for g in 0..8u32 {
                packet(&mut app, ts + u64::from(round * 8 + g), 0x0a00_0001 | (g << 8));
            }
        }
        ts += 200;
        let mut alerts = 0;
        for i in 0..3_000u64 {
            let out = packet(&mut app, ts + i, 0x0a00_0005);
            alerts += out
                .digests
                .iter()
                .filter(|d| d.id == DIGEST_IMBALANCE)
                .count();
        }
        assert_eq!(alerts, 1, "one alert per interval");
    }

    /// Fig. 1c local reaction: with mitigation on, the switch drops the
    /// flooded group's packets in the data plane while forwarding the
    /// others untouched.
    #[test]
    fn local_mitigation_rate_limits_guilty_group() {
        let run = |mitigate: bool| -> (u64, u64) {
            let mut app = CaseStudyApp::build(CaseStudyParams {
                local_mitigation: mitigate,
                ..params_small()
            })
            .unwrap();
            for g in 0..8u32 {
                let req = crate::binding::bind_prefix(
                    &app,
                    std::net::Ipv4Addr::new(10, 0, g as u8, 0),
                    24,
                    0,
                    u64::from(g),
                );
                app.pipeline.runtime(&req);
            }
            // Balanced background, then a flood at group 2.
            let mut ts = 1u64 << app.params.interval_log2;
            for round in 0..30u32 {
                for g in 0..8u32 {
                    packet(&mut app, ts + u64::from(round * 8 + g), 0x0a00_0001 | (g << 8));
                }
            }
            ts += 1000;
            let mut victim_forwarded = 0u64;
            let mut other_forwarded = 0u64;
            for i in 0..4_000u64 {
                // 3 flood packets to group 2 per background packet.
                let (dst, victim) = if i % 4 != 3 {
                    (0x0a00_0205, true)
                } else {
                    (0x0a00_0101, false)
                };
                let out = packet(&mut app, ts + i, dst);
                if !out.dropped {
                    if victim {
                        victim_forwarded += 1;
                    } else {
                        other_forwarded += 1;
                    }
                }
            }
            (victim_forwarded, other_forwarded)
        };
        let (v_off, o_off) = run(false);
        let (v_on, o_on) = run(true);
        assert_eq!(v_off, 3_000, "no mitigation: everything forwarded");
        assert_eq!(o_off, 1_000);
        assert_eq!(o_on, 1_000, "innocent groups untouched");
        assert!(
            v_on < v_off / 2,
            "flood rate-limited in the data plane: {v_on} of {v_off}"
        );
    }

    #[test]
    fn window_stats_match_core_windowed_dist() {
        use stat4_core::window::WindowedDist;
        let mut app = CaseStudyApp::build(params_small()).unwrap();
        let ivl_len = 1u64 << app.params.interval_log2;
        let mut oracle = WindowedDist::new(16).unwrap();
        // 25 intervals with deterministic varying rates (wraps the ring).
        let rates: Vec<u64> = (0..25).map(|i| 10 + (i * 7) % 13).collect();
        for (i, &rate) in rates.iter().enumerate() {
            for p in 0..rate {
                packet(&mut app, (1 + i as u64) * ivl_len + p, 0x0a00_0001);
            }
        }
        // Close the last interval by sending one packet beyond it; then
        // compare the register state with the oracle fed the same rates
        // (the last interval is still open on the oracle side too).
        packet(&mut app, (26) * ivl_len + 1, 0x0a00_0001);
        for &rate in &rates {
            oracle.accumulate(rate as i64);
            oracle.close_interval();
        }
        let regs = app.pipeline.registers();
        assert_eq!(
            regs[app.rate_state_reg].cells[rate_state::N as usize],
            oracle.stats().n()
        );
        assert_eq!(
            regs[app.rate_state_reg].cells[rate_state::XSUM as usize] as i64,
            oracle.stats().xsum()
        );
        assert_eq!(
            regs[app.rate_state_reg].cells[rate_state::XSUMSQ as usize] as i64,
            oracle.stats().xsumsq()
        );
    }
}
