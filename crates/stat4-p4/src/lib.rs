//! # stat4-p4
//!
//! Stat4 as a *data-plane library*: the paper's Sec. 2 algorithms
//! emitted as [`p4sim`] pipeline programs, plus the two applications the
//! paper builds on top of it — the echo validation app (Sec. 3, Fig. 5)
//! and the traffic-spike drill-down app of the case study (Sec. 4,
//! Fig. 6).
//!
//! Where [`stat4_core`](https://docs.rs) implements the algorithms as
//! ordinary Rust (the portable API and the validation oracle), this
//! crate implements them **under P4's constraints**: straight-line
//! actions, branches only in control flow, state in registers, no
//! division anywhere, and runtime multiplication only where the chosen
//! target allows it. The unit tests cross-validate every fragment
//! against `stat4_core` — e.g. the IR square root must agree with
//! [`stat4_core::isqrt::approx_isqrt`] bit for bit on every input.
//!
//! ## Crate layout
//!
//! - [`config`] — `STAT_COUNTER_NUM` / `STAT_COUNTER_SIZE` as runtime
//!   configuration, plus the case-study parameters.
//! - [`scratch`] — the PHV scratch-field allocation fragments share.
//! - [`fragments`] — reusable program pieces: the shift-based integer
//!   square root, `NX`-variance computation (exact and multiply-free),
//!   frequency-distribution moment updates.
//! - [`echo`] — the echo application: tracks the frequency distribution
//!   of payload integers and digests `(N, Xsum, Xsumsq, σ², σ)` per
//!   packet for host-side comparison.
//! - [`casestudy`] — the Fig. 6 application: windowed packet-rate spike
//!   detection on a /8 plus binding-table-driven drill-down to /24s and
//!   destinations.
//! - [`binding`] — helpers building the controller-side
//!   [`p4sim::RuntimeRequest`]s that retarget monitoring at runtime
//!   without recompiling.

pub mod binding;
pub mod casestudy;
pub mod config;
pub mod echo;
pub mod fragments;
pub mod lint;
pub mod median;
pub mod sketch_app;
pub mod scratch;

pub use casestudy::{CaseStudyApp, CaseStudyHandles, CaseStudyParams, DIGEST_IMBALANCE, DIGEST_SPIKE};
pub use config::Stat4Config;
pub use echo::{EchoApp, DIGEST_ECHO};
pub use median::{MedianApp, MedianAppParams, DIGEST_MEDIAN};
pub use sketch_app::{SketchApp, SketchAppParams, DIGEST_HEAVY};
