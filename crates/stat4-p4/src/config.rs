//! Library configuration: the paper's compile-time macros as values.
//!
//! Stat4's register footprint is controlled by two "compiler macros
//! whose values can be tuned by P4 applications using the library":
//! `STAT_COUNTER_NUM` (how many distributions can be tracked at once)
//! and `STAT_COUNTER_SIZE` (cells per distribution). Here they are plain
//! fields of [`Stat4Config`], fixed when a program is emitted — the same
//! point in the lifecycle as a P4 compile.

use serde::{Deserialize, Serialize};

/// Sizing of the Stat4 register block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Stat4Config {
    /// `STAT_COUNTER_NUM`: distributions tracked simultaneously.
    pub counter_num: usize,
    /// `STAT_COUNTER_SIZE`: value cells per distribution.
    pub counter_size: usize,
    /// Register cell width in bits.
    pub width_bits: u32,
}

impl Default for Stat4Config {
    fn default() -> Self {
        Self {
            counter_num: 4,
            counter_size: 512,
            width_bits: 64,
        }
    }
}

impl Stat4Config {
    /// Total value-counter cells (`counter_num × counter_size`).
    #[must_use]
    pub fn total_cells(&self) -> usize {
        self.counter_num * self.counter_size
    }

    /// Base cell index of distribution `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot >= counter_num`.
    #[must_use]
    pub fn base(&self, slot: usize) -> usize {
        assert!(slot < self.counter_num, "slot {slot} out of range");
        slot * self.counter_size
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_and_layout() {
        let c = Stat4Config::default();
        assert_eq!(c.total_cells(), 4 * 512);
        assert_eq!(c.base(0), 0);
        assert_eq!(c.base(3), 3 * 512);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn base_bounds_checked() {
        let c = Stat4Config::default();
        let _ = c.base(4);
    }
}
