//! `stat4-lint` — compile-time verification of every built-in Stat4
//! data-plane program.
//!
//! For each shipped pipeline (echo on both targets, the case study,
//! both median variants, the sketch app, and the standalone algorithm
//! fragments) this runs the p4sim verifier — table-dependency stage
//! allocation plus value-range analysis — against the target the
//! program was built for, and reports the findings.
//!
//! ```text
//! stat4-lint [--deny warnings] [--json] [--verbose]
//! ```
//!
//! Exit status is non-zero when any program has an error-severity
//! finding, or any warning-severity finding under `--deny warnings`.
//! Info-severity notes (things the analysis could not *prove* but that
//! are not certain violations) never fail the lint; `--verbose` shows
//! them.

use std::process::ExitCode;

use p4sim::Severity;
use stat4_p4::lint::builtin_suite;

struct Options {
    deny_warnings: bool,
    json: bool,
    verbose: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        deny_warnings: false,
        json: false,
        verbose: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny" => match args.next().as_deref() {
                Some("warnings") => opts.deny_warnings = true,
                other => {
                    return Err(format!(
                        "--deny takes `warnings`, got {}",
                        other.unwrap_or("nothing")
                    ))
                }
            },
            "--deny-warnings" => opts.deny_warnings = true,
            "--json" => opts.json = true,
            "--verbose" | "-v" => opts.verbose = true,
            "--help" | "-h" => {
                println!(
                    "stat4-lint: verify every built-in Stat4 data-plane program\n\n\
                     Usage: stat4-lint [--deny warnings] [--json] [--verbose]\n\n\
                     Options:\n  \
                     --deny warnings  treat warning-severity findings as fatal\n  \
                     --json           emit one JSON object per program\n  \
                     --verbose, -v    also show info-severity notes"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("stat4-lint: {e}");
            return ExitCode::FAILURE;
        }
    };

    let suite = builtin_suite();
    let mut failed = 0usize;

    if opts.json {
        let entries: Vec<String> = suite
            .iter()
            .map(|e| {
                format!(
                    "{{\"name\":{},\"pass\":{},\"report\":{}}}",
                    p4sim::analysis::json_string(e.name),
                    e.report.passes(opts.deny_warnings),
                    e.report.to_json()
                )
            })
            .collect();
        println!("[{}]", entries.join(","));
        failed = suite
            .iter()
            .filter(|e| !e.report.passes(opts.deny_warnings))
            .count();
    } else {
        for e in &suite {
            let pass = e.report.passes(opts.deny_warnings);
            let verdict = if pass { "ok" } else { "FAIL" };
            println!(
                "{verdict:4} {:45} [{}] {} stage(s), {} error(s), {} warning(s), {} note(s)",
                e.name,
                e.report.target,
                e.report.allocation.depth,
                e.report.errors(),
                e.report.warnings(),
                e.report.infos()
            );
            for d in &e.report.diagnostics {
                let show = match d.severity {
                    Severity::Error | Severity::Warning => true,
                    Severity::Info => opts.verbose,
                };
                if show {
                    println!("       {d}");
                }
            }
            if !pass {
                failed += 1;
            }
        }
        println!(
            "{} program(s) linted, {} failed{}",
            suite.len(),
            failed,
            if opts.deny_warnings {
                " (warnings denied)"
            } else {
                ""
            }
        );
    }

    if failed > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
