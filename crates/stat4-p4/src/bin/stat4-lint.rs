//! `stat4-lint` — compile-time verification of every built-in Stat4
//! data-plane program.
//!
//! For each shipped pipeline (echo on both targets, the case study,
//! both median variants, the sketch app, and the standalone algorithm
//! fragments) this runs the p4sim verifier — table-dependency stage
//! allocation plus value-range analysis — against the target the
//! program was built for, and reports the findings.
//!
//! ```text
//! stat4-lint [--deny warnings] [--equiv] [--merge-sound] [--json] [--verbose]
//! ```
//!
//! `--equiv` additionally runs the symbolic differential verifier over
//! every algorithm shipped in both a software and a hardware
//! formulation (`S4L013`/`S4L014`); `--merge-sound` runs the `S4L015`
//! merge-soundness check over every built-in app's registers.
//!
//! Exit status is non-zero when any program has an error-severity
//! finding, or any warning-severity finding under `--deny warnings`.
//! Info-severity notes (things the analysis could not *prove* but that
//! are not certain violations) never fail the lint; `--verbose` shows
//! them.

use std::process::ExitCode;

use p4sim::Severity;
use stat4_p4::lint::{builtin_suite, equiv_suite, merge_suite};

struct Options {
    deny_warnings: bool,
    json: bool,
    verbose: bool,
    equiv: bool,
    merge_sound: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        deny_warnings: false,
        json: false,
        verbose: false,
        equiv: false,
        merge_sound: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny" => match args.next().as_deref() {
                Some("warnings") => opts.deny_warnings = true,
                other => {
                    return Err(format!(
                        "--deny takes `warnings`, got {}",
                        other.unwrap_or("nothing")
                    ))
                }
            },
            "--deny-warnings" => opts.deny_warnings = true,
            "--json" => opts.json = true,
            "--verbose" | "-v" => opts.verbose = true,
            "--equiv" => opts.equiv = true,
            "--merge-sound" => opts.merge_sound = true,
            "--help" | "-h" => {
                println!(
                    "stat4-lint: verify every built-in Stat4 data-plane program\n\n\
                     Usage: stat4-lint [--deny warnings] [--equiv] [--merge-sound] [--json] [--verbose]\n\n\
                     Options:\n  \
                     --deny warnings  treat warning-severity findings as fatal\n  \
                     --equiv          also run the symbolic cross-target equivalence suite (S4L013/S4L014)\n  \
                     --merge-sound    also run the register merge-soundness suite (S4L015)\n  \
                     --json           emit machine-readable JSON\n  \
                     --verbose, -v    also show info-severity notes"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(opts)
}

fn print_diags(diags: &[p4sim::Diagnostic], verbose: bool) {
    for d in diags {
        let show = match d.severity {
            Severity::Error | Severity::Warning => true,
            Severity::Info => verbose,
        };
        if show {
            println!("       {d}");
        }
    }
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("stat4-lint: {e}");
            return ExitCode::FAILURE;
        }
    };

    let suite = builtin_suite();
    let equiv = opts.equiv.then(equiv_suite);
    let merge = opts.merge_sound.then(merge_suite);
    let mut failed = 0usize;

    if opts.json {
        let programs: Vec<String> = suite
            .iter()
            .map(|e| {
                format!(
                    "{{\"name\":{},\"pass\":{},\"report\":{}}}",
                    p4sim::analysis::json_string(e.name),
                    e.report.passes(opts.deny_warnings),
                    e.report.to_json()
                )
            })
            .collect();
        failed += suite
            .iter()
            .filter(|e| !e.report.passes(opts.deny_warnings))
            .count();
        let programs = format!("[{}]", programs.join(","));
        if equiv.is_none() && merge.is_none() {
            // Backwards-compatible shape: a bare per-program array.
            println!("{programs}");
        } else {
            let mut sections = vec![format!("\"programs\":{programs}")];
            if let Some(eq) = &equiv {
                let entries: Vec<String> = eq
                    .iter()
                    .map(|e| {
                        format!(
                            "{{\"name\":{},\"expect_divergence\":{},\"pass\":{},\"report\":{}}}",
                            p4sim::analysis::json_string(e.name),
                            e.expect_divergence,
                            e.passes(opts.deny_warnings),
                            e.report.to_json()
                        )
                    })
                    .collect();
                failed += eq.iter().filter(|e| !e.passes(opts.deny_warnings)).count();
                sections.push(format!("\"equiv\":[{}]", entries.join(",")));
            }
            if let Some(ms) = &merge {
                let entries: Vec<String> = ms
                    .iter()
                    .map(|e| {
                        format!(
                            "{{\"name\":{},\"pass\":{},\"report\":{}}}",
                            p4sim::analysis::json_string(e.name),
                            e.report.passes(opts.deny_warnings),
                            e.report.to_json()
                        )
                    })
                    .collect();
                failed += ms
                    .iter()
                    .filter(|e| !e.report.passes(opts.deny_warnings))
                    .count();
                sections.push(format!("\"merge\":[{}]", entries.join(",")));
            }
            println!("{{{}}}", sections.join(","));
        }
    } else {
        for e in &suite {
            let pass = e.report.passes(opts.deny_warnings);
            let verdict = if pass { "ok" } else { "FAIL" };
            println!(
                "{verdict:4} {:45} [{}] {} stage(s), {} error(s), {} warning(s), {} note(s)",
                e.name,
                e.report.target,
                e.report.allocation.depth,
                e.report.errors(),
                e.report.warnings(),
                e.report.infos()
            );
            print_diags(&e.report.diagnostics, opts.verbose);
            if !pass {
                failed += 1;
            }
        }
        if let Some(eq) = &equiv {
            println!("-- cross-target equivalence (symbolic) --");
            for e in eq {
                let pass = e.passes(opts.deny_warnings);
                let verdict = if pass { "ok" } else { "FAIL" };
                let outcome = if e.report.equivalent() {
                    "equivalent"
                } else if e.expect_divergence {
                    "diverges (as asserted)"
                } else {
                    "DIVERGES"
                };
                println!(
                    "{verdict:4} {:60} {outcome}, {}+{} path(s), {} witness(es)",
                    e.name, e.report.paths_a, e.report.paths_b, e.report.witnesses
                );
                if !e.expect_divergence {
                    print_diags(&e.report.diagnostics, opts.verbose);
                }
                if !pass {
                    failed += 1;
                }
            }
        }
        if let Some(ms) = &merge {
            println!("-- register merge soundness --");
            for e in ms {
                let pass = e.report.passes(opts.deny_warnings);
                let verdict = if pass { "ok" } else { "FAIL" };
                println!(
                    "{verdict:4} {:45} {} register(s) checked, {} exempt, {} origin pair(s), {} witness(es)",
                    e.name,
                    e.report.checked,
                    e.report.exempt.len(),
                    e.report.origin_pairs,
                    e.report.witnesses
                );
                print_diags(&e.report.diagnostics, opts.verbose);
                if !pass {
                    failed += 1;
                }
            }
        }
        let total =
            suite.len() + equiv.as_ref().map_or(0, Vec::len) + merge.as_ref().map_or(0, Vec::len);
        println!(
            "{total} check(s) run, {failed} failed{}",
            if opts.deny_warnings {
                " (warnings denied)"
            } else {
                ""
            }
        );
    }

    if failed > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
