//! Count-min sketch tracking in the pipeline — the paper's future-work
//! direction ("avoid reserving memory for non-observed values, e.g.
//! using hash-tables similarly to \[23\]") realised as a program.
//!
//! One register array per sketch row (as hardware would allocate), the
//! CRC extern modelled by [`p4sim::Primitive::Hash`] with the same
//! multiply-shift family as the portable
//! [`stat4_core::sketch::CountMinSketch`], so the two implementations
//! are cross-validated cell for cell. Per packet (fully unrolled, the
//! row count is a compile-time constant):
//!
//! 1. hash the key into each row, bump each row's cell;
//! 2. fold the row minimum — the count-min estimate;
//! 3. heavy-hitter check in Stat4's integer style:
//!    `estimate << shift > total` (is the key above a `1/2^shift`
//!    fraction of traffic), digested at a sampled rate so one elephant
//!    cannot flood the controller.

use crate::scratch;
use p4sim::action::{ActionDef, Operand, Primitive};
use p4sim::control::{CmpOp, Cond, Control};
use p4sim::phv::{fields, FieldId};
use p4sim::program::ProgramBuilder;
use p4sim::{P4Result, Pipeline, TargetModel};
use stat4_core::sketch::ROW_SALTS;

/// Digest id for heavy-hitter alerts: `[key, estimate, total]`.
pub const DIGEST_HEAVY: u16 = 5;

/// Configuration of the sketch program.
#[derive(Debug, Clone, Copy)]
pub struct SketchAppParams {
    /// Sketch rows (1..=8).
    pub rows: usize,
    /// Columns per row = `2^width_log2`.
    pub width_log2: u32,
    /// Heavy-hitter fraction = `1/2^heavy_shift`.
    pub heavy_shift: u32,
    /// Alert sampling: digests allowed only when
    /// `total & (2^sample_log2 − 1) == 0`.
    pub sample_log2: u32,
    /// The PHV field used as the key.
    pub key_field: FieldId,
}

impl Default for SketchAppParams {
    fn default() -> Self {
        Self {
            rows: 4,
            width_log2: 10,
            heavy_shift: 3, // 1/8 of traffic
            sample_log2: 8, // at most one digest per 256 packets
            key_field: fields::IPV4_DST,
        }
    }
}

/// The built sketch application.
#[derive(Debug)]
pub struct SketchApp {
    /// The runnable pipeline.
    pub pipeline: Pipeline,
    /// One register id per sketch row.
    pub row_regs: Vec<usize>,
    /// Register holding the total packet count (1 cell).
    pub total_reg: usize,
    /// Parameters.
    pub params: SketchAppParams,
}

impl SketchApp {
    /// Builds the sketch program (hardware-legal: hashes are externs,
    /// every shift distance is a constant).
    ///
    /// # Errors
    ///
    /// Propagates [`p4sim`] validation errors.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is outside `1..=8`.
    pub fn build(params: SketchAppParams) -> P4Result<Self> {
        use scratch::{ADDR, F_OLD, TMP, VALUE_IDX};
        assert!((1..=ROW_SALTS.len()).contains(&params.rows));
        let mut b = ProgramBuilder::new();
        let width = 1usize << params.width_log2;
        let row_regs: Vec<usize> = (0..params.rows)
            .map(|r| b.add_register(format!("sketch_row_{r}"), 64, width))
            .collect();
        let total_reg = b.add_register("sketch_total", 64, 1);

        // Per packet: bump every row, folding the minimum into VALUE_IDX
        // (the estimate), then bump the total into F_OLD.
        let mut prims = vec![Primitive::Set {
            dst: VALUE_IDX,
            src: Operand::Const(u64::MAX),
        }];
        for (r, &reg) in row_regs.iter().enumerate() {
            prims.push(Primitive::Hash {
                dst: ADDR,
                src: Operand::Field(params.key_field),
                salt: ROW_SALTS[r],
                width_log2: params.width_log2,
            });
            prims.push(Primitive::RegRead {
                dst: TMP,
                register: reg,
                index: Operand::Field(ADDR),
            });
            prims.push(Primitive::Add {
                dst: TMP,
                a: Operand::Field(TMP),
                b: Operand::Const(1),
            });
            prims.push(Primitive::RegWrite {
                register: reg,
                index: Operand::Field(ADDR),
                src: Operand::Field(TMP),
            });
            prims.push(Primitive::Min {
                dst: VALUE_IDX,
                a: Operand::Field(VALUE_IDX),
                b: Operand::Field(TMP),
            });
        }
        prims.push(Primitive::RegRead {
            dst: F_OLD,
            register: total_reg,
            index: Operand::Const(0),
        });
        prims.push(Primitive::Add {
            dst: F_OLD,
            a: Operand::Field(F_OLD),
            b: Operand::Const(1),
        });
        prims.push(Primitive::RegWrite {
            register: total_reg,
            index: Operand::Const(0),
            src: Operand::Field(F_OLD),
        });
        // Heavy test operands: TMP = estimate << heavy_shift;
        // ADDR = total & sample_mask (0 -> digest allowed).
        prims.push(Primitive::Shl {
            dst: TMP,
            src: Operand::Field(VALUE_IDX),
            amount: Operand::Const(u64::from(params.heavy_shift)),
        });
        prims.push(Primitive::And {
            dst: ADDR,
            a: Operand::Field(F_OLD),
            b: Operand::Const((1u64 << params.sample_log2) - 1),
        });
        let update = b.add_action(ActionDef::new("sketch_update", prims));

        let digest = b.add_action(ActionDef::new(
            "heavy_digest",
            vec![Primitive::Digest {
                id: DIGEST_HEAVY,
                values: vec![
                    Operand::Field(params.key_field),
                    Operand::Field(VALUE_IDX),
                    Operand::Field(F_OLD),
                ],
            }],
        ));

        b.set_control(Control::Seq(vec![
            Control::ApplyAction(update),
            Control::If {
                cond: Cond::new(Operand::Field(TMP), CmpOp::Gt, Operand::Field(F_OLD)),
                then_branch: Box::new(Control::If {
                    cond: Cond::new(Operand::Field(ADDR), CmpOp::Eq, Operand::Const(0)),
                    then_branch: Box::new(Control::ApplyAction(digest)),
                    else_branch: None,
                }),
                else_branch: None,
            },
        ]));

        Ok(Self {
            pipeline: b.build(TargetModel::tofino_like())?,
            row_regs,
            total_reg,
            params,
        })
    }

    /// Controller-side estimate for a key, read from the registers.
    #[must_use]
    pub fn estimate(&self, key: u64) -> u64 {
        (0..self.params.rows)
            .map(|r| {
                let h = stat4_core::sketch::row_hash(ROW_SALTS[r], self.params.width_log2, key);
                self.pipeline.registers()[self.row_regs[r]].cells[h as usize]
            })
            .min()
            .unwrap_or(0)
    }

    /// Total packets observed.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.pipeline.registers()[self.total_reg].cells[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p4sim::Phv;
    use rand::Rng;
    use stat4_core::sketch::CountMinSketch;

    fn feed(app: &mut SketchApp, key: u64) -> Vec<p4sim::pipeline::DigestRecord> {
        let mut phv = Phv::new();
        phv.set(fields::IPV4_DST, key);
        app.pipeline.process_phv(&mut phv).expect("ok").digests
    }

    /// The pipeline sketch and the portable sketch agree cell for cell.
    #[test]
    fn matches_portable_sketch() {
        let params = SketchAppParams {
            rows: 3,
            width_log2: 6,
            ..SketchAppParams::default()
        };
        let mut app = SketchApp::build(params).unwrap();
        let mut oracle = CountMinSketch::new(3, 6);
        let mut rng = workloads::rng(17);
        let keys: Vec<u64> = (0..3_000).map(|_| rng.random_range(0..500u64)).collect();
        for &k in &keys {
            feed(&mut app, k);
            oracle.update(k, 1);
        }
        assert_eq!(app.total(), oracle.total());
        for k in 0..500u64 {
            assert_eq!(app.estimate(k), oracle.estimate(k), "key {k}");
        }
    }

    #[test]
    fn heavy_hitter_digested_and_sampled() {
        let params = SketchAppParams {
            rows: 4,
            width_log2: 8,
            heavy_shift: 2,  // > 1/4 of traffic
            sample_log2: 6,  // at most one digest per 64 packets
            ..SketchAppParams::default()
        };
        let mut app = SketchApp::build(params).unwrap();
        let mut rng = workloads::rng(5);
        let mut digests = Vec::new();
        // Background: uniform keys. Elephant: key 7 at ~50% (random
        // interleave, so elephant packets land on all total-counter
        // residues — a strict alternation would always miss the
        // sampling slots).
        for _ in 0..8_000u64 {
            let key = if rng.random_range(0..2u32) == 0 {
                7
            } else {
                rng.random_range(1_000..9_000u64)
            };
            digests.extend(feed(&mut app, key));
        }
        assert!(!digests.is_empty(), "elephant surfaced");
        // Every digest names the elephant.
        for d in &digests {
            assert_eq!(d.id, DIGEST_HEAVY);
            assert_eq!(d.values[0], 7, "digest: {d:?}");
        }
        // Sampling bounds the alert volume.
        assert!(
            digests.len() <= 8_000 / 64 + 1,
            "sampled: {} alerts",
            digests.len()
        );
    }

    #[test]
    fn uniform_traffic_stays_quiet() {
        let mut app = SketchApp::build(SketchAppParams::default()).unwrap();
        let mut rng = workloads::rng(9);
        let mut digests = 0usize;
        for _ in 0..5_000 {
            digests += feed(&mut app, rng.random_range(0..4_000u64)).len();
        }
        assert_eq!(digests, 0, "no key holds 1/8 of uniform traffic");
    }

    #[test]
    fn memory_is_independent_of_key_space() {
        // The point of the future-work direction: 4x1024 cells track a
        // 32-bit key space.
        let app = SketchApp::build(SketchAppParams::default()).unwrap();
        let report = p4sim::resources::analyze(&app.pipeline);
        assert!(report.register_bytes <= 4 * 1024 * 8 + 8);
    }

    #[test]
    fn hardware_legal() {
        // Built against the Tofino-like target inside build(); assert the
        // target took.
        let app = SketchApp::build(SketchAppParams::default()).unwrap();
        assert_eq!(app.pipeline.target().name, "tofino-like");
    }
}
