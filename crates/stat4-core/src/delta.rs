//! Sparse delta merging: ship only the state mutated since the last
//! merge.
//!
//! [`crate::merge::Mergeable`] folds *whole* trackers — O(state size)
//! per reduce, every interval, even when an epoch touched a handful of
//! cells. Real traffic is sparse in exactly that sense (the same
//! observation that motivates sketch-based data planes: per-update work
//! must track traffic, not table size), so this module extends the
//! merge surface with **dirty tracking**: each tracker journals the
//! cells it touched since the last [`DeltaMergeable::take_delta`], and
//! a coordinator that already holds the fold of the previous barrier
//! applies just those entries.
//!
//! ## Protocol
//!
//! A coordinator keeps an accumulator `acc` and a set of source
//! trackers `s_1..s_k`:
//!
//! 1. **Rebuild** (full merge): `acc = fold(merge_from, fresh, s_i)`,
//!    then [`discard_delta`](DeltaMergeable::discard_delta) on every
//!    `s_i` — this *re-bases* each journal so the next delta is
//!    relative to exactly the state the accumulator saw.
//! 2. **Delta step**: for each `s_i`, `acc.apply_delta(&s_i.take_delta())`.
//!    The invariant: after the applies, `acc` is bit-identical to what
//!    a fresh rebuild would have produced (absent register saturation —
//!    the same caveat [`crate::merge`] documents for full merges).
//!
//! Every journal entry carries the cell's **base** value (its value
//! when first touched after a take) together with the current value,
//! so the delta is self-describing: `apply` adds `cur − base` (or, for
//! [`crate::hll::HyperLogLog`], maxes in `cur` — register files that
//! only rise need no base). Decrementing mutators
//! ([`crate::freq::FrequencyDist::forget`],
//! [`crate::running::RunningStats::remove`]) journal the same way and
//! produce negative increments; the equivalence holds for them too.
//!
//! `reset()`-style bulk mutations clear the journal and re-base: a
//! reset tracker reports an *empty* delta, which is correct for the
//! interval-scoped use (the accumulator is reset alongside) and
//! conservative for every other use — a coordinator that cannot prove
//! its accumulator matched the pre-reset fold must rebuild.
//!
//! Dirty state is deliberately **invisible**: it is excluded from
//! `PartialEq` and from serde on every tracker, so journaled and
//! journal-free instances of equal register state compare equal and
//! checkpoint formats are unchanged (a restored tracker starts with an
//! empty journal, i.e. "nothing to ship until the next rebuild").

use crate::error::Stat4Result;
use crate::merge::Mergeable;

/// First-touch journal over an indexed register file: a bitmap guards
/// one `(index, base value)` record per cell per window, so repeated
/// hits on the same hot cell cost one bit test after the first.
///
/// The bitmap grows lazily to the highest index marked (a
/// deserialized/`Default` journal starts empty), and `take`/`clear`
/// scrub only the touched bits — O(touched), never O(domain).
#[derive(Debug, Clone, Default)]
pub struct DirtyJournal {
    bits: Vec<u64>,
    touched: Vec<(u32, u64)>,
}

impl DirtyJournal {
    /// Fresh, empty journal.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the first touch of `idx` this window with its pre-write
    /// value `base`; later touches of the same cell are no-ops (the
    /// base stays the value the cell had when the window opened).
    #[inline]
    pub fn mark(&mut self, idx: usize, base: u64) {
        let word = idx / 64;
        if word >= self.bits.len() {
            self.bits.resize(word + 1, 0);
        }
        let bit = 1u64 << (idx % 64);
        if self.bits[word] & bit == 0 {
            self.bits[word] |= bit;
            self.touched.push((idx as u32, base));
        }
    }

    /// Number of distinct cells touched this window.
    #[must_use]
    pub fn len(&self) -> usize {
        self.touched.len()
    }

    /// True when no cell was touched since the last take/clear.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.touched.is_empty()
    }

    /// Drains the journal, returning the `(index, base)` records and
    /// scrubbing exactly the touched bits.
    pub fn take(&mut self) -> Vec<(u32, u64)> {
        for &(idx, _) in &self.touched {
            let i = idx as usize;
            self.bits[i / 64] &= !(1u64 << (i % 64));
        }
        std::mem::take(&mut self.touched)
    }

    /// Drops all records (same bit scrubbing as [`take`](Self::take)).
    pub fn clear(&mut self) {
        self.take();
    }
}

/// One journaled cell: where, what it was at the window open, what it
/// is now. The shipped increment is `cur − base`.
pub type CellDelta = (u32, u64, u64);

/// Serialized-size model shared by the delta types: what a wire
/// encoding of the entries would cost, for merge-traffic telemetry.
fn cell_bytes(entries: usize) -> u64 {
    // 4-byte index + two 8-byte values per entry.
    entries as u64 * 20
}

/// Delta of a [`crate::sketch::CountMinSketch`] window.
#[derive(Debug, Clone, Default)]
pub struct SketchDelta {
    pub(crate) cells: Vec<CellDelta>,
    pub(crate) total_base: u64,
    pub(crate) total_cur: u64,
}

impl SketchDelta {
    /// Distinct cells touched in the window.
    #[must_use]
    pub fn touched(&self) -> usize {
        self.cells.len()
    }

    /// Modelled wire size of this delta.
    #[must_use]
    pub fn wire_bytes(&self) -> u64 {
        16 + cell_bytes(self.cells.len())
    }
}

/// Delta of a [`crate::freq::FrequencyDist`] window. The moments are
/// not shipped: the receiver updates them incrementally from the count
/// increments, exactly as a full merge recomputes them from the merged
/// counts.
#[derive(Debug, Clone, Default)]
pub struct FreqDelta {
    pub(crate) cells: Vec<CellDelta>,
}

impl FreqDelta {
    /// Distinct cells touched in the window.
    #[must_use]
    pub fn touched(&self) -> usize {
        self.cells.len()
    }

    /// Modelled wire size of this delta.
    #[must_use]
    pub fn wire_bytes(&self) -> u64 {
        cell_bytes(self.cells.len())
    }
}

/// Delta of a [`crate::percentile::PercentileSet`] window. Markers are
/// never shipped — the receiver rebuilds them from its merged counts,
/// the same canonicalisation a full merge performs.
#[derive(Debug, Clone, Default)]
pub struct PercentileDelta {
    pub(crate) cells: Vec<CellDelta>,
    pub(crate) total_base: u64,
    pub(crate) total_cur: u64,
}

impl PercentileDelta {
    /// Distinct cells touched in the window.
    #[must_use]
    pub fn touched(&self) -> usize {
        self.cells.len()
    }

    /// Modelled wire size of this delta.
    #[must_use]
    pub fn wire_bytes(&self) -> u64 {
        16 + cell_bytes(self.cells.len())
    }
}

/// Delta of a [`crate::hll::HyperLogLog`] window: the registers that
/// rose, with their current rank. Registers only rise between resets,
/// so no base is needed — the receiver maxes the rank in, which is
/// idempotent and order-free.
#[derive(Debug, Clone, Default)]
pub struct HllDelta {
    pub(crate) regs: Vec<(u32, u8)>,
}

impl HllDelta {
    /// Distinct registers that rose in the window.
    #[must_use]
    pub fn touched(&self) -> usize {
        self.regs.len()
    }

    /// Modelled wire size of this delta.
    #[must_use]
    pub fn wire_bytes(&self) -> u64 {
        self.regs.len() as u64 * 5
    }
}

/// Delta of a [`crate::running::RunningStats`] window: the change of
/// the three accumulators since the last take, in `i128` so any
/// mutator mix (push/absorb/replace/remove) is representable exactly.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunningDelta {
    pub(crate) dn: i128,
    pub(crate) dsum: i128,
    pub(crate) dsumsq: i128,
}

impl RunningDelta {
    /// True when the tracker did not change in the window.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.dn == 0 && self.dsum == 0 && self.dsumsq == 0
    }

    /// Modelled wire size of this delta.
    #[must_use]
    pub fn wire_bytes(&self) -> u64 {
        48
    }
}

/// The sparse-merge extension of [`Mergeable`]: trackers that journal
/// their mutations and can ship/apply them as deltas.
///
/// The contract, for any tracker `t` and merge-compatible accumulator
/// `acc` (all equalities bit-exact absent register saturation):
///
/// - after `acc.merge_from(&t)` and `t.discard_delta()`, any sequence
///   of mutations on `t` followed by `acc.apply_delta(&t.take_delta())`
///   leaves `acc` equal to a fresh fold that used the mutated `t`;
/// - `take_delta` drains the journal: a second immediate take yields an
///   empty delta;
/// - `apply_delta` does **not** record into the receiver's own journal
///   (an accumulator is a sink, not a source).
pub trait DeltaMergeable: Mergeable {
    /// The delta payload this tracker ships.
    type Delta;

    /// Drains the journal into a delta and re-bases it, so the next
    /// take covers only mutations from this point on.
    fn take_delta(&mut self) -> Self::Delta;

    /// Applies a delta taken from a merge-compatible tracker.
    ///
    /// # Errors
    ///
    /// [`crate::error::Stat4Error::MergeMismatch`] when an entry falls
    /// outside this tracker's geometry — the same incompatibilities
    /// [`Mergeable::merge_from`] rejects.
    fn apply_delta(&mut self, delta: &Self::Delta) -> Stat4Result<()>;

    /// Drops pending journal entries and re-bases, without building the
    /// delta — what a coordinator does right after a full rebuild.
    fn discard_delta(&mut self) {
        let _ = self.take_delta();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::freq::FrequencyDist;
    use crate::hll::HyperLogLog;
    use crate::percentile::{PercentileSet, Quantile};
    use crate::running::RunningStats;
    use crate::sketch::CountMinSketch;
    use proptest::prelude::*;

    #[test]
    fn journal_records_first_touch_base_only() {
        let mut j = DirtyJournal::new();
        j.mark(3, 10);
        j.mark(3, 999); // later touch: base must stay 10
        j.mark(70, 0); // forces bitmap growth past one word
        assert_eq!(j.len(), 2);
        let taken = j.take();
        assert_eq!(taken, vec![(3, 10), (70, 0)]);
        assert!(j.is_empty());
        // Bits were scrubbed: marking again re-records.
        j.mark(3, 42);
        assert_eq!(j.take(), vec![(3, 42)]);
    }

    /// The full protocol check for one tracker: merge a baseline into
    /// an accumulator, mutate the source, and require delta-apply to
    /// land bit-identically on a from-scratch full merge of the mutated
    /// source.
    macro_rules! assert_delta_matches_full {
        ($fresh:expr, $src:ident, $mutate:block) => {{
            let mut acc_delta = $fresh;
            acc_delta.merge_from(&$src).expect("baseline merge");
            $src.discard_delta();
            $mutate
            let d = $src.take_delta();
            acc_delta.apply_delta(&d).expect("delta applies");
            let mut acc_full = $fresh;
            acc_full.merge_from(&$src).expect("full merge");
            prop_assert_eq!(&acc_delta, &acc_full);
            // A drained journal ships nothing more.
            let empty = $src.take_delta();
            let mut acc_again = acc_delta.clone();
            acc_again.apply_delta(&empty).expect("empty delta applies");
            prop_assert_eq!(&acc_again, &acc_delta);
        }};
    }

    proptest! {
        #[test]
        fn freq_delta_equals_full_merge(
            before in proptest::collection::vec(0i64..32, 0..200),
            after in proptest::collection::vec(0i64..32, 0..200),
            forgets in proptest::collection::vec(0usize..64, 0..40),
        ) {
            let mut src = FrequencyDist::new(0, 31).unwrap();
            for v in &before {
                src.observe(*v).unwrap();
            }
            assert_delta_matches_full!(FrequencyDist::new(0, 31).unwrap(), src, {
                for v in &after {
                    src.observe(*v).unwrap();
                }
                // Forget a sample of values that are actually present,
                // so decrementing mutations journal too.
                for f in &forgets {
                    let v = (*f as i64) % 32;
                    if src.frequency(v) > 0 {
                        src.forget(v).unwrap();
                    }
                }
            });
        }

        #[test]
        fn sketch_delta_equals_full_merge(
            before in proptest::collection::vec(any::<u64>(), 0..150),
            after in proptest::collection::vec(any::<u64>(), 0..150),
            conservative in any::<bool>(),
        ) {
            let mut src = CountMinSketch::new(3, 6);
            for k in &before {
                src.update(*k, 1);
            }
            assert_delta_matches_full!(CountMinSketch::new(3, 6), src, {
                for k in &after {
                    if conservative {
                        src.update_conservative(*k, 2);
                    } else {
                        src.update(*k, 1);
                    }
                }
            });
        }

        #[test]
        fn percentile_delta_equals_full_merge(
            before in proptest::collection::vec(0i64..128, 0..150),
            after in proptest::collection::vec(0i64..128, 0..150),
        ) {
            let quantiles = [Quantile::median(), Quantile::percentile(90).unwrap()];
            let mut src = PercentileSet::new(0, 127, &quantiles).unwrap();
            for v in &before {
                src.observe(*v).unwrap();
            }
            assert_delta_matches_full!(
                PercentileSet::new(0, 127, &quantiles).unwrap(),
                src,
                {
                    for v in &after {
                        src.observe(*v).unwrap();
                    }
                }
            );
        }

        #[test]
        fn running_delta_equals_full_merge(
            before in proptest::collection::vec(-1000i64..1000, 0..100),
            after in proptest::collection::vec(-1000i64..1000, 0..100),
            removes in 0usize..20,
        ) {
            let mut src = RunningStats::new();
            for v in &before {
                src.push(*v);
            }
            assert_delta_matches_full!(RunningStats::new(), src, {
                for v in &after {
                    src.push(*v);
                }
                for v in after.iter().take(removes) {
                    src.remove(*v);
                }
            });
        }

        #[test]
        fn hll_delta_equals_full_merge(
            before in proptest::collection::vec(any::<u64>(), 0..200),
            after in proptest::collection::vec(any::<u64>(), 0..200),
        ) {
            let mut src = HyperLogLog::new(6).unwrap();
            for k in &before {
                src.observe(*k);
            }
            assert_delta_matches_full!(HyperLogLog::new(6).unwrap(), src, {
                for k in &after {
                    src.observe(*k);
                }
            });
        }

        /// Multi-round: three take/apply windows in a row stay pinned to
        /// the from-scratch merge, i.e. re-basing composes.
        #[test]
        fn freq_delta_composes_across_windows(
            rounds in proptest::collection::vec(
                proptest::collection::vec(0i64..16, 0..60), 1..4),
        ) {
            let mut src = FrequencyDist::new(0, 15).unwrap();
            let mut acc = FrequencyDist::new(0, 15).unwrap();
            acc.merge_from(&src).unwrap();
            src.discard_delta();
            for round in &rounds {
                for v in round {
                    src.observe(*v).unwrap();
                }
                let d = src.take_delta();
                acc.apply_delta(&d).unwrap();
                let mut full = FrequencyDist::new(0, 15).unwrap();
                full.merge_from(&src).unwrap();
                prop_assert_eq!(&acc, &full);
            }
        }
    }

    #[test]
    fn reset_rebases_the_journal() {
        let mut h = HyperLogLog::new(6).unwrap();
        h.observe(1);
        h.observe(2);
        h.reset();
        assert_eq!(h.take_delta().touched(), 0, "reset drops pending entries");
        h.observe(3);
        let d = h.take_delta();
        assert!(d.touched() >= 1, "post-reset observes journal afresh");
    }

    #[test]
    fn apply_delta_rejects_foreign_geometry() {
        let mut a = FrequencyDist::new(0, 63).unwrap();
        a.discard_delta();
        for v in 0..64 {
            a.observe(v).unwrap();
        }
        let d = a.take_delta();
        let mut small = FrequencyDist::new(0, 3).unwrap();
        assert!(small.apply_delta(&d).is_err());

        let mut h = HyperLogLog::new(8).unwrap();
        h.discard_delta();
        for k in 0..2000u64 {
            h.observe(k);
        }
        let hd = h.take_delta();
        let mut tiny = HyperLogLog::new(4).unwrap();
        assert!(tiny.apply_delta(&hd).is_err());
    }
}
