//! Exact (floating-point and big-integer) reference statistics.
//!
//! Nothing here is data-plane-legal; these functions are the *host-side*
//! oracle of the paper's validation experiment (Sec. 3, Fig. 5): the host
//! recomputes every statistic in software and compares with what the
//! switch reports. They are also used by the `repro_*` binaries to grade
//! the approximation errors of Tables 2 and 3.

/// Exact arithmetic mean of `values`.
#[must_use]
pub fn mean(values: &[i64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().map(|&v| v as f64).sum::<f64>() / values.len() as f64
}

/// Exact population variance of `values` (the paper uses the population
/// form `E[X²] − E[X]²`).
#[must_use]
pub fn variance(values: &[i64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let m = mean(values);
    values
        .iter()
        .map(|&v| {
            let d = v as f64 - m;
            d * d
        })
        .sum::<f64>()
        / values.len() as f64
}

/// Exact population standard deviation.
#[must_use]
pub fn stddev(values: &[i64]) -> f64 {
    variance(values).sqrt()
}

/// Exact `σ²(NX) = N·Xsumsq − Xsum²` in big integers — the quantity the
/// switch's registers must hold bit-for-bit.
#[must_use]
pub fn variance_nx_exact(values: &[i64]) -> u128 {
    let n = values.len() as i128;
    let sum: i128 = values.iter().map(|&v| v as i128).sum();
    let sumsq: i128 = values.iter().map(|&v| (v as i128) * (v as i128)).sum();
    let v = n * sumsq - sum * sum;
    debug_assert!(v >= 0, "Cauchy-Schwarz violated?");
    v.max(0) as u128
}

/// Exact `q`-quantile (0 < q < 1) of `values` using the nearest-rank
/// definition on the sorted multiset — the ground truth for Table 3's
/// median-error measurements.
#[must_use]
pub fn quantile(values: &[i64], q: f64) -> Option<i64> {
    if values.is_empty() || !(0.0..=1.0).contains(&q) {
        return None;
    }
    let mut sorted = values.to_vec();
    sorted.sort_unstable();
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    Some(sorted[rank - 1])
}

/// Exact median (50th percentile, nearest rank).
#[must_use]
pub fn median(values: &[i64]) -> Option<i64> {
    quantile(values, 0.5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_inputs() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
        assert_eq!(median(&[]), None);
        assert_eq!(variance_nx_exact(&[]), 0);
    }

    #[test]
    fn mean_and_variance_by_hand() {
        let v = [2i64, 4, 4, 4, 5, 5, 7, 9];
        assert!((mean(&v) - 5.0).abs() < 1e-12);
        assert!((variance(&v) - 4.0).abs() < 1e-12);
        assert!((stddev(&v) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn variance_nx_is_n2_times_variance() {
        let v = [2i64, 4, 4, 4, 5, 5, 7, 9];
        let n = v.len() as f64;
        let expected = n * n * variance(&v);
        assert!((variance_nx_exact(&v) as f64 - expected).abs() < 1e-6);
    }

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[3, 1, 2]), Some(2));
        // Nearest-rank lower median for even counts.
        assert_eq!(median(&[4, 1, 3, 2]), Some(2));
        assert_eq!(median(&[5]), Some(5));
    }

    #[test]
    fn quantile_extremes_and_bounds() {
        let v = [10i64, 20, 30, 40, 50, 60, 70, 80, 90, 100];
        assert_eq!(quantile(&v, 0.9), Some(90));
        assert_eq!(quantile(&v, 0.1), Some(10));
        assert_eq!(quantile(&v, 1.0), Some(100));
        assert_eq!(quantile(&v, 1.5), None);
        assert_eq!(quantile(&v, -0.1), None);
    }

    #[test]
    fn quantile_of_constant_stream() {
        let v = [7i64; 31];
        assert_eq!(quantile(&v, 0.5), Some(7));
        assert_eq!(quantile(&v, 0.9), Some(7));
    }
}
