//! Cross-shard state merging.
//!
//! Real switches process traffic on multiple pipes, each with its own
//! register file; heavy-hitter and entropy detectors in the literature
//! all assume per-pipe state that is periodically reduced into a global
//! view. This module defines the [`Mergeable`] trait that makes that
//! reduce step explicit for every Stat4 tracker, together with the
//! merge rule each one satisfies:
//!
//! | tracker | merge rule | exactness |
//! |---|---|---|
//! | [`RunningStats`](crate::running::RunningStats) | `N`, `Xsum`, `Xsumsq` add | bit-identical to the sequential run (absent saturation) |
//! | [`FrequencyDist`](crate::freq::FrequencyDist) | cellwise count add, moments recomputed | bit-identical |
//! | [`CountMinSketch`](crate::sketch::CountMinSketch) | cellwise row add (same salts/width) | bit-identical for plain updates |
//! | [`PercentileSet`](crate::percentile::PercentileSet) | counts add; markers **rebuilt** | counts bit-identical; marker is the *canonical* exact quantile, not the path-dependent sequential marker |
//!
//! The first three are *order-free*: their state is a sum over per-value
//! contributions, so any partition of the input stream across shards
//! merges back to exactly the state a single sequential pass would hold.
//! (`CountMinSketch::update_conservative` is the exception — conservative
//! update is order-dependent by design, so merged conservative sketches
//! keep the ≥-truth guarantee but not bit-equality; see the sketch docs.)
//!
//! Percentile markers are genuinely **not** mergeable: a marker's
//! position encodes the path it walked (one step per packet), and two
//! shards' markers cannot be combined into the marker a sequential run
//! would have produced. The documented fallback is implemented by
//! [`PercentileSet`](crate::percentile::PercentileSet)'s `Mergeable`
//! impl: the per-cell counters merge exactly, and each marker is then
//! *rebuilt* from the merged counters — placed at the canonical exact
//! quantile (the fixpoint a loop-capable rebalance reaches from the
//! lowest populated cell). The rebuilt marker differs from a sequential
//! marker by at most the sequential marker's own lag (paper Table 3),
//! and — crucially for conformance testing — it is a deterministic
//! function of the merged counters alone, so any shard count yields the
//! same merged marker. The `moves` counter is canonicalised too (it
//! becomes the rebuild's step count): per-shard walk histories are
//! partition-dependent, so summing them would make the merged state
//! depend on *how* the traffic was split — exactly what the conformance
//! suite forbids. The marker-work anomaly signal remains available on
//! the live per-shard trackers, which never merge in place.
//!
//! Full-state merges are O(state size) however sparse the interval's
//! traffic was. The [`crate::delta`] module layers sparse merging on
//! top of this trait ([`crate::delta::DeltaMergeable`]): trackers
//! journal the cells they touch, and a coordinator that already holds
//! the previous fold applies only those cells — same results (the table
//! above is preserved entry for entry), per-merge work proportional to
//! the traffic actually observed.

use crate::error::Stat4Result;

/// In-place merge of another shard's state into `self`.
///
/// Implementations must be **commutative and associative** on the state
/// observable through the type's public API (up to the documented
/// percentile-marker rebuild), so that folding any number of shards in
/// any order produces one well-defined global state.
pub trait Mergeable {
    /// Absorbs `other` into `self`.
    ///
    /// # Errors
    ///
    /// [`crate::error::Stat4Error::MergeMismatch`] when the two trackers
    /// were configured incompatibly (different domains, sketch
    /// geometries, or quantile sets).
    fn merge_from(&mut self, other: &Self) -> Stat4Result<()>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::Stat4Error;
    use crate::freq::FrequencyDist;
    use crate::percentile::{PercentileSet, Quantile};
    use crate::running::RunningStats;
    use crate::sketch::CountMinSketch;
    use proptest::prelude::*;

    #[test]
    fn running_stats_merge_equals_sequential() {
        let xs = [3i64, -7, 100, 0, 42, 5];
        let mut seq = RunningStats::new();
        for x in xs {
            seq.push(x);
        }
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        for (i, x) in xs.iter().enumerate() {
            if i % 2 == 0 { &mut a } else { &mut b }.push(*x);
        }
        a.merge_from(&b).unwrap();
        assert_eq!(a.n(), seq.n());
        assert_eq!(a.xsum(), seq.xsum());
        assert_eq!(a.xsumsq(), seq.xsumsq());
    }

    #[test]
    fn freq_merge_mismatched_domain_rejected() {
        let mut a = FrequencyDist::new(0, 10).unwrap();
        let b = FrequencyDist::new(0, 11).unwrap();
        assert!(matches!(
            a.merge_from(&b),
            Err(Stat4Error::MergeMismatch { .. })
        ));
    }

    #[test]
    fn sketch_merge_mismatched_geometry_rejected() {
        let mut a = CountMinSketch::new(4, 8);
        let b = CountMinSketch::new(3, 8);
        let c = CountMinSketch::new(4, 9);
        assert!(matches!(
            a.merge_from(&b),
            Err(Stat4Error::MergeMismatch { .. })
        ));
        assert!(matches!(
            a.merge_from(&c),
            Err(Stat4Error::MergeMismatch { .. })
        ));
    }

    #[test]
    fn percentile_merge_mismatched_quantiles_rejected() {
        let mut a = PercentileSet::new(0, 100, &[Quantile::median()]).unwrap();
        let b = PercentileSet::new(0, 100, &[Quantile::percentile(90).unwrap()]).unwrap();
        assert!(matches!(
            a.merge_from(&b),
            Err(Stat4Error::MergeMismatch { .. })
        ));
    }

    /// Merging into an empty tracker is the identity on the other's
    /// observable state.
    #[test]
    fn merge_into_empty_is_identity() {
        let mut src = FrequencyDist::new(-5, 5).unwrap();
        for v in [-5, 0, 0, 3, 5, 5, 5] {
            src.observe(v).unwrap();
        }
        let mut dst = FrequencyDist::new(-5, 5).unwrap();
        dst.merge_from(&src).unwrap();
        assert_eq!(dst, src);
    }

    proptest! {
        /// Any 3-way partition of a value stream merges (in either fold
        /// order) back to the sequential FrequencyDist, bit for bit.
        #[test]
        fn freq_partition_merge_exact(
            values in proptest::collection::vec((-20i64..=20, 0usize..3), 0..300),
        ) {
            let mut seq = FrequencyDist::new(-20, 20).unwrap();
            let mut parts =
                [FrequencyDist::new(-20, 20).unwrap(),
                 FrequencyDist::new(-20, 20).unwrap(),
                 FrequencyDist::new(-20, 20).unwrap()];
            for (v, p) in &values {
                seq.observe(*v).unwrap();
                parts[*p].observe(*v).unwrap();
            }
            let mut fwd = parts[0].clone();
            fwd.merge_from(&parts[1]).unwrap();
            fwd.merge_from(&parts[2]).unwrap();
            let mut rev = parts[2].clone();
            rev.merge_from(&parts[1]).unwrap();
            rev.merge_from(&parts[0]).unwrap();
            prop_assert_eq!(&fwd, &seq);
            prop_assert_eq!(&rev, &seq);
        }

        /// Plain count-min updates partitioned across shards merge back
        /// to the sequential sketch, bit for bit.
        #[test]
        fn sketch_partition_merge_exact(
            updates in proptest::collection::vec((0u64..1_000, 0usize..4), 0..200),
        ) {
            let mut seq = CountMinSketch::new(3, 6);
            let mut parts: Vec<CountMinSketch> =
                (0..4).map(|_| CountMinSketch::new(3, 6)).collect();
            for (key, p) in &updates {
                seq.update(*key, 1);
                parts[*p].update(*key, 1);
            }
            let mut merged = parts[0].clone();
            for p in &parts[1..] {
                merged.merge_from(p).unwrap();
            }
            prop_assert_eq!(&merged, &seq);
        }

        /// Merged percentile counts are exact and the rebuilt marker is
        /// shard-count-invariant: merging 2 parts and merging 4 parts of
        /// the same stream land the marker on the same cell.
        #[test]
        fn percentile_merge_counts_exact_marker_canonical(
            values in proptest::collection::vec(0i64..=63, 1..300),
        ) {
            let quantiles = [Quantile::median(), Quantile::percentile(90).unwrap()];
            let build = |ways: usize| {
                let mut parts: Vec<PercentileSet> = (0..ways)
                    .map(|_| PercentileSet::new(0, 63, &quantiles).unwrap())
                    .collect();
                for (i, v) in values.iter().enumerate() {
                    parts[i % ways].observe(*v).unwrap();
                }
                let mut merged = parts[0].clone();
                for p in &parts[1..] {
                    merged.merge_from(p).unwrap();
                }
                merged
            };
            let two = build(2);
            let four = build(4);
            let mut seq = PercentileSet::new(0, 63, &quantiles).unwrap();
            for v in &values {
                seq.observe(*v).unwrap();
            }
            // Counters merge exactly.
            prop_assert_eq!(two.total(), seq.total());
            for v in 0..=63 {
                prop_assert_eq!(two.frequency(v), seq.frequency(v));
                prop_assert_eq!(four.frequency(v), seq.frequency(v));
            }
            // The rebuilt marker is a function of the merged counts
            // alone — identical across shard counts.
            for i in 0..quantiles.len() {
                prop_assert_eq!(two.estimate(i), four.estimate(i));
            }
            prop_assert!(two.masses_consistent());
            prop_assert!(four.masses_consistent());
        }
    }
}
