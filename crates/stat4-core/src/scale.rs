//! Order-of-magnitude value scaling.
//!
//! The paper (Sec. 2) reduces memory by "storing the order of magnitude
//! of the values in the tracked distributions, possibly relative to a
//! baseline": a switch forwarding ~10 Gb per 100 ms interval tracks the
//! interval volumes *in Gb units*, so counters stay small (≤ a few
//! hundred) and the frequency-array domains stay narrow.
//!
//! In a pipeline the only division-free scaling is a right shift, so
//! [`Scale`] quantises by powers of two, optionally after subtracting a
//! baseline. The controller (which *can* divide) chooses the shift so
//! that typical values land in the target range.

use crate::error::{Stat4Error, Stat4Result};
use serde::{Deserialize, Serialize};

/// A data-plane-legal affine quantiser: `scaled = (raw − baseline) >> shift`,
/// clamped to `[0, max_scaled]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Scale {
    /// Subtracted before shifting (the paper's "relative to a baseline").
    pub baseline: i64,
    /// Right-shift distance; `1 << shift` raw units map to one scaled unit.
    pub shift: u32,
    /// Inclusive upper clamp of the scaled output (the last counter cell
    /// absorbs everything larger).
    pub max_scaled: i64,
}

impl Scale {
    /// Identity scale (no baseline, no shift, clamp at `max`).
    #[must_use]
    pub fn identity(max: i64) -> Self {
        Self {
            baseline: 0,
            shift: 0,
            max_scaled: max,
        }
    }

    /// Builds a scale with an explicit shift.
    ///
    /// # Errors
    ///
    /// [`Stat4Error::InvalidDomain`] if `shift > 62` or `max_scaled < 0`.
    pub fn new(baseline: i64, shift: u32, max_scaled: i64) -> Stat4Result<Self> {
        if shift > 62 || max_scaled < 0 {
            return Err(Stat4Error::InvalidDomain {
                min: 0,
                max: max_scaled,
            });
        }
        Ok(Self {
            baseline,
            shift,
            max_scaled,
        })
    }

    /// Controller-side helper: the smallest power-of-two scale that maps
    /// `typical` raw units to at most `target` scaled units.
    ///
    /// E.g. `for_typical(10_000_000_000, 10)` tracks ~10 Gb intervals in
    /// ~1 Gb units.
    #[must_use]
    pub fn for_typical(typical: i64, target: i64, max_scaled: i64) -> Self {
        let mut shift = 0u32;
        let target = target.max(1);
        while shift < 62 && (typical >> shift) > target {
            shift += 1;
        }
        Self {
            baseline: 0,
            shift,
            max_scaled,
        }
    }

    /// Applies the quantisation: shift-and-clamp, never negative.
    #[must_use]
    pub fn apply(&self, raw: i64) -> i64 {
        let shifted = raw.saturating_sub(self.baseline) >> self.shift;
        shifted.clamp(0, self.max_scaled)
    }

    /// Inverse of the quantisation midpoint, for reporting: the raw value
    /// a scaled bucket's centre represents. Saturates at the `i64` range
    /// instead of overflowing the widening shift (`shift` may be up to
    /// 62, so `scaled << shift` does not fit `i64` for large buckets).
    #[must_use]
    pub fn unapply(&self, scaled: i64) -> i64 {
        let raw = (i128::from(scaled) << self.shift)
            + i128::from(1i64 << self.shift >> 1)
            + i128::from(self.baseline);
        i64::try_from(raw).unwrap_or(if raw < 0 { i64::MIN } else { i64::MAX })
    }

    /// Worst-case absolute quantisation error in raw units.
    #[must_use]
    pub fn quantisation_error(&self) -> i64 {
        (1i64 << self.shift) / 2 + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn identity_passthrough() {
        let s = Scale::identity(100);
        assert_eq!(s.apply(42), 42);
        assert_eq!(s.apply(150), 100, "clamped");
        assert_eq!(s.apply(-5), 0, "never negative");
    }

    #[test]
    fn invalid_params_rejected() {
        assert!(Scale::new(0, 63, 10).is_err());
        assert!(Scale::new(0, 3, -1).is_err());
        assert!(Scale::new(0, 62, 0).is_ok());
    }

    #[test]
    fn gigabit_example() {
        // ~10 Gb per interval tracked in ~0.5 GB buckets: shift chosen so
        // a typical 10e9 lands at <= 15.
        let s = Scale::for_typical(10_000_000_000, 15, 127);
        let scaled = s.apply(10_000_000_000);
        assert!(scaled > 0 && scaled <= 15, "scaled = {scaled}");
        // A 4x spike stays in-domain and distinguishable.
        let spike = s.apply(40_000_000_000);
        assert!(spike > scaled && spike <= 127, "spike = {spike}");
    }

    #[test]
    fn baseline_subtraction() {
        let s = Scale::new(1000, 0, 100).unwrap();
        assert_eq!(s.apply(1000), 0);
        assert_eq!(s.apply(1050), 50);
        assert_eq!(s.apply(900), 0, "below baseline clamps to 0");
    }

    #[test]
    fn unapply_roundtrip_within_error() {
        let s = Scale::new(0, 10, 1 << 20).unwrap();
        for raw in [0i64, 1023, 1024, 5000, 123_456] {
            let rt = s.unapply(s.apply(raw));
            assert!(
                (rt - raw).abs() <= s.quantisation_error(),
                "raw = {raw} rt = {rt}"
            );
        }
    }

    /// `unapply` of a large bucket at a large shift must saturate, not
    /// overflow the `i64` shift (a debug-mode panic before the widening).
    #[test]
    fn unapply_saturates_instead_of_overflowing() {
        let s = Scale::new(0, 62, i64::MAX).unwrap();
        assert_eq!(s.unapply(i64::MAX >> 1), i64::MAX);
        assert_eq!(s.unapply(i64::MIN >> 1), i64::MIN);
        let t = Scale::new(i64::MAX, 1, i64::MAX).unwrap();
        assert_eq!(t.unapply(i64::MAX), i64::MAX);
    }

    proptest! {
        /// apply is monotone non-decreasing.
        #[test]
        fn apply_monotone(a in 0i64..1_000_000_000, b in 0i64..1_000_000_000, shift in 0u32..30) {
            let s = Scale::new(0, shift, i64::MAX >> 1).unwrap();
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(s.apply(lo) <= s.apply(hi));
        }

        /// Output always within [0, max_scaled].
        #[test]
        fn apply_bounded(raw in i64::MIN/2..i64::MAX/2, shift in 0u32..40, max in 0i64..1_000_000) {
            let s = Scale::new(0, shift, max).unwrap();
            let out = s.apply(raw);
            prop_assert!((0..=max).contains(&out));
        }

        /// Round-trip error bounded by the quantisation step (when not
        /// clamped).
        #[test]
        fn roundtrip_error_bounded(raw in 0i64..1_000_000_000, shift in 0u32..20) {
            let s = Scale::new(0, shift, i64::MAX >> 2).unwrap();
            let rt = s.unapply(s.apply(raw));
            prop_assert!((rt - raw).abs() <= s.quantisation_error());
        }
    }
}
