//! Integer additive Holt-Winters seasonal forecasting.
//!
//! The paper's band check models traffic as a stationary distribution;
//! diurnal or otherwise periodic traffic breaks that assumption — the
//! seasonal swing either saturates the σ band (missed detections) or
//! the trough false-alarms the lower band. Holt-Winters decomposes the
//! signal into level + trend + per-phase seasonal offsets and judges
//! each interval against its *phase-specific* forecast, so a phase
//! inversion that leaves mean and variance untouched is still caught.
//!
//! The smoothing constants are powers of two (`α = 2^-a`, `β = 2^-b`,
//! `γ = 2^-g`), making every update a shift-and-add in Q16 fixed
//! point — the same arithmetic discipline as [`crate::ewma::Ewma`],
//! P4-expressible per the paper's constraints. Seeding takes one full
//! season: the level seeds to the season mean and each phase offset to
//! its deviation from that mean (one division per season at the
//! controller, never per packet).

use crate::error::{Stat4Error, Stat4Result};
use serde::{Deserialize, Serialize};

/// One observation's forecast decomposition, in Q16.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Forecast {
    /// What the model expected for this interval (Q16).
    pub forecast_q16: i64,
    /// Observed minus forecast (Q16).
    pub residual_q16: i64,
}

/// Additive Holt-Winters smoother over Q16 fixed point.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HoltWinters {
    season_len: usize,
    alpha_shift: u32,
    beta_shift: u32,
    gamma_shift: u32,
    level_q16: i64,
    trend_q16: i64,
    season_q16: Vec<i64>,
    /// Raw values buffered while seeding the first season.
    seed_buf: Vec<i64>,
    /// Phase of the *next* observation once seeded.
    phase: usize,
}

impl HoltWinters {
    /// Creates a smoother with `season_len` intervals per season and
    /// power-of-two smoothing constants `2^-alpha_shift` (level),
    /// `2^-beta_shift` (trend), `2^-gamma_shift` (season).
    ///
    /// # Errors
    ///
    /// [`Stat4Error::InvalidDomain`] if `season_len < 2` or any shift
    /// is outside `1..=16`.
    pub fn new(
        season_len: usize,
        alpha_shift: u32,
        beta_shift: u32,
        gamma_shift: u32,
    ) -> Stat4Result<Self> {
        if season_len < 2 {
            return Err(Stat4Error::InvalidDomain {
                min: 2,
                max: i64::MAX,
            });
        }
        for s in [alpha_shift, beta_shift, gamma_shift] {
            if !(1..=16).contains(&s) {
                return Err(Stat4Error::InvalidDomain { min: 1, max: 16 });
            }
        }
        Ok(Self {
            season_len,
            alpha_shift,
            beta_shift,
            gamma_shift,
            level_q16: 0,
            trend_q16: 0,
            season_q16: vec![0; season_len],
            seed_buf: Vec::with_capacity(season_len),
            phase: 0,
        })
    }

    /// Intervals per season.
    #[must_use]
    pub fn season_len(&self) -> usize {
        self.season_len
    }

    /// True once one full season has seeded the model.
    #[must_use]
    pub fn is_seeded(&self) -> bool {
        self.seed_buf.len() >= self.season_len
    }

    /// Current smoothed level (Q16), meaningful once seeded.
    #[must_use]
    pub fn level_q16(&self) -> i64 {
        self.level_q16
    }

    /// Current smoothed trend per interval (Q16).
    #[must_use]
    pub fn trend_q16(&self) -> i64 {
        self.trend_q16
    }

    /// Seasonal offset for `phase` (Q16).
    #[must_use]
    pub fn season_q16(&self, phase: usize) -> i64 {
        self.season_q16[phase % self.season_len]
    }

    /// Forecast for the *next* observation (Q16), `None` until seeded.
    #[must_use]
    pub fn forecast_q16(&self) -> Option<i64> {
        if !self.is_seeded() {
            return None;
        }
        Some(self.level_q16 + self.trend_q16 + self.season_q16[self.phase])
    }

    /// Feeds one interval value. Returns `None` during the seeding
    /// season, then the forecast/residual pair for every interval.
    pub fn observe(&mut self, x: i64) -> Option<Forecast> {
        if !self.is_seeded() {
            self.seed_buf.push(x);
            if self.seed_buf.len() == self.season_len {
                // Controller-side seeding: level = season mean, one
                // offset per phase. One division per season.
                let sum: i64 = self.seed_buf.iter().sum();
                self.level_q16 = (sum << 16) / self.season_len as i64;
                self.trend_q16 = 0;
                for (i, v) in self.seed_buf.iter().enumerate() {
                    self.season_q16[i] = (v << 16) - self.level_q16;
                }
                self.phase = 0;
            }
            return None;
        }
        let xq = x << 16;
        let forecast = self.level_q16 + self.trend_q16 + self.season_q16[self.phase];
        let residual = xq - forecast;
        // l' = (l + b) + α·(x − s − l − b); the bracket is the residual.
        let prev_level = self.level_q16;
        self.level_q16 = prev_level + self.trend_q16 + (residual >> self.alpha_shift);
        // b' = b + β·(l' − l − b)
        self.trend_q16 += (self.level_q16 - prev_level - self.trend_q16) >> self.beta_shift;
        // s' = s + γ·(x − l' − s)
        self.season_q16[self.phase] +=
            (xq - self.level_q16 - self.season_q16[self.phase]) >> self.gamma_shift;
        self.phase = (self.phase + 1) % self.season_len;
        Some(Forecast {
            forecast_q16: forecast,
            residual_q16: residual,
        })
    }

    /// Drops all learned state, keeping the configuration.
    pub fn reset(&mut self) {
        self.level_q16 = 0;
        self.trend_q16 = 0;
        self.season_q16.fill(0);
        self.seed_buf.clear();
        self.phase = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Float oracle with the exact same recurrence and seeding, using
    /// real multiplications by `2^-shift` instead of shifts.
    struct FloatHw {
        season_len: usize,
        alpha: f64,
        beta: f64,
        gamma: f64,
        level: f64,
        trend: f64,
        season: Vec<f64>,
        seed_buf: Vec<f64>,
        phase: usize,
    }

    impl FloatHw {
        fn new(season_len: usize, a: u32, b: u32, g: u32) -> Self {
            Self {
                season_len,
                alpha: 0.5f64.powi(a as i32),
                beta: 0.5f64.powi(b as i32),
                gamma: 0.5f64.powi(g as i32),
                level: 0.0,
                trend: 0.0,
                season: vec![0.0; season_len],
                seed_buf: Vec::new(),
                phase: 0,
            }
        }

        fn observe(&mut self, x: f64) -> Option<f64> {
            if self.seed_buf.len() < self.season_len {
                self.seed_buf.push(x);
                if self.seed_buf.len() == self.season_len {
                    let mean: f64 =
                        self.seed_buf.iter().sum::<f64>() / self.season_len as f64;
                    self.level = mean;
                    for (i, v) in self.seed_buf.iter().enumerate() {
                        self.season[i] = v - mean;
                    }
                    self.phase = 0;
                }
                return None;
            }
            let forecast = self.level + self.trend + self.season[self.phase];
            let r = x - forecast;
            let prev = self.level;
            self.level = prev + self.trend + self.alpha * r;
            self.trend += self.beta * (self.level - prev - self.trend);
            self.season[self.phase] += self.gamma * (x - self.level - self.season[self.phase]);
            self.phase = (self.phase + 1) % self.season_len;
            Some(forecast)
        }
    }

    #[test]
    fn config_bounds_enforced() {
        assert!(HoltWinters::new(1, 2, 4, 2).is_err());
        assert!(HoltWinters::new(8, 0, 4, 2).is_err());
        assert!(HoltWinters::new(8, 2, 17, 2).is_err());
        assert!(HoltWinters::new(8, 2, 4, 2).is_ok());
    }

    #[test]
    fn seeding_takes_one_season_then_forecasts() {
        let mut hw = HoltWinters::new(4, 2, 4, 2).unwrap();
        let pattern = [100i64, 140, 100, 60];
        for v in pattern {
            assert!(hw.observe(v).is_none());
        }
        assert!(hw.is_seeded());
        // A repeating pattern forecasts itself almost exactly.
        for _ in 0..5 {
            for v in pattern {
                let f = hw.observe(v).unwrap();
                assert!(
                    (f.residual_q16).abs() < 2 << 16,
                    "residual {} for value {v}",
                    f.residual_q16
                );
            }
        }
    }

    #[test]
    fn phase_inversion_produces_large_residual() {
        let mut hw = HoltWinters::new(8, 2, 4, 2).unwrap();
        let season: Vec<i64> = (0..8).map(|i| if i < 4 { 180 } else { 60 }).collect();
        for _ in 0..6 {
            for &v in &season {
                hw.observe(v);
            }
        }
        // Swap the halves: same mean, same variance, wrong phase.
        let swapped: Vec<i64> = (0..8).map(|i| if i < 4 { 60 } else { 180 }).collect();
        let f = hw.observe(swapped[0]).unwrap();
        assert!(
            f.residual_q16.abs() > 100 << 16,
            "phase flip residual {}",
            f.residual_q16
        );
    }

    #[test]
    fn trend_is_learned() {
        let mut hw = HoltWinters::new(4, 1, 2, 3).unwrap();
        // Linear ramp, no seasonality: trend should converge near the
        // per-interval slope (Q16 of 10).
        for i in 0..200i64 {
            hw.observe(100 + 10 * i);
        }
        let slope = hw.trend_q16() as f64 / 65536.0;
        assert!((slope - 10.0).abs() < 1.5, "learned slope {slope}");
    }

    #[test]
    fn reset_clears_learning() {
        let mut hw = HoltWinters::new(4, 2, 4, 2).unwrap();
        for i in 0..20 {
            hw.observe(i * 7 % 50);
        }
        hw.reset();
        assert!(!hw.is_seeded());
        assert!(hw.forecast_q16().is_none());
    }

    proptest! {
        /// The Q16 integer model tracks the float oracle: truncation
        /// loses at most a few Q16 ulps per update and the smoothing
        /// recurrence is contractive, so forecasts stay within a small
        /// absolute band of the float reference.
        #[test]
        fn forecast_matches_float_oracle(
            values in proptest::collection::vec(0i64..20_000, 24..300),
            season_pow in 1u32..5,
            a in 1u32..5,
            b in 2u32..6,
            g in 1u32..5,
        ) {
            let season = 1usize << season_pow;
            let mut hw = HoltWinters::new(season, a, b, g).unwrap();
            let mut oracle = FloatHw::new(season, a, b, g);
            for &v in &values {
                let got = hw.observe(v);
                let want = oracle.observe(v as f64);
                if let (Some(f), Some(wf)) = (got, want) {
                    let fi = f.forecast_q16 as f64 / 65536.0;
                    prop_assert!(
                        (fi - wf).abs() <= 1.0,
                        "int forecast {} float {}", fi, wf
                    );
                }
            }
        }

        /// Seeding is exact: after one season the level is the floor
        /// mean and offsets reconstruct the seed values.
        #[test]
        fn seeding_reconstructs_first_season(
            values in proptest::collection::vec(0i64..10_000, 8),
        ) {
            let mut hw = HoltWinters::new(8, 2, 4, 2).unwrap();
            for &v in &values {
                hw.observe(v);
            }
            for (i, &v) in values.iter().enumerate() {
                let rebuilt = hw.level_q16() + hw.season_q16(i);
                prop_assert_eq!(rebuilt, v << 16);
            }
        }
    }
}
