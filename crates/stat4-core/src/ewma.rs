//! Shift-based exponentially weighted moving averages.
//!
//! The paper's future-work section calls for "a larger exploration of
//! in-switch statistical primitives". The EWMA is the most requested
//! one in practice (RED/CoDel-style smoothing, baseline tracking), and
//! it has a classic division-free form when the smoothing factor is a
//! negative power of two:
//!
//! ```text
//! avg ← avg + (x − avg) >> k        (α = 2^−k)
//! ```
//!
//! To avoid losing the fractional part to integer truncation (which
//! would bias the average low and freeze it for small deviations), the
//! accumulator stores the average **left-shifted by `k`** — fixed-point
//! with `k` fractional bits:
//!
//! ```text
//! acc ← acc − (acc >> k) + x
//! avg = acc >> k
//! ```
//!
//! One subtraction, one shift, one addition per update — the same
//! register budget as the paper's counters.

use serde::{Deserialize, Serialize};

/// A fixed-point EWMA with `α = 2^−shift`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Ewma {
    /// Fixed-point accumulator (`avg << shift`).
    acc: i64,
    /// `α = 2^−shift`.
    shift: u32,
    /// True once the first sample seeded the accumulator.
    seeded: bool,
}

impl Ewma {
    /// Creates an EWMA with smoothing factor `2^-shift`
    /// (`shift = 3` → α = 0.125).
    ///
    /// # Panics
    ///
    /// Panics if `shift` is 0 or ≥ 32 (degenerate smoothing / overflow
    /// headroom).
    #[must_use]
    pub fn new(shift: u32) -> Self {
        assert!((1..32).contains(&shift), "shift {shift} out of range");
        Self {
            acc: 0,
            shift,
            seeded: false,
        }
    }

    /// Feeds one sample.
    pub fn update(&mut self, x: i64) {
        if !self.seeded {
            // Seed at the first sample, as RFC 6298-style estimators do.
            self.acc = x << self.shift;
            self.seeded = true;
            return;
        }
        self.acc = self.acc - (self.acc >> self.shift) + x;
    }

    /// The current average (integer part).
    #[must_use]
    pub fn value(&self) -> i64 {
        self.acc >> self.shift
    }

    /// The raw fixed-point accumulator (for register-level tests).
    #[must_use]
    pub fn raw(&self) -> i64 {
        self.acc
    }

    /// True once at least one sample was seen.
    #[must_use]
    pub fn is_seeded(&self) -> bool {
        self.seeded
    }

    /// The configured shift.
    #[must_use]
    pub fn shift(&self) -> u32 {
        self.shift
    }

    /// Integer deviation check: is `x` further than `multiple` times
    /// the current average from the current average? A cheap relative
    /// band used when a full σ is overkill
    /// (`|x − avg| > avg >> band_shift`).
    #[must_use]
    pub fn deviates(&self, x: i64, band_shift: u32) -> bool {
        if !self.seeded {
            return false;
        }
        let avg = self.value();
        (x - avg).abs() > (avg >> band_shift.min(63)).abs()
    }

    /// Resets to the unseeded state.
    pub fn reset(&mut self) {
        self.acc = 0;
        self.seeded = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn seeds_at_first_sample() {
        let mut e = Ewma::new(3);
        assert!(!e.is_seeded());
        assert_eq!(e.value(), 0);
        e.update(100);
        assert!(e.is_seeded());
        assert_eq!(e.value(), 100, "no warm-up bias");
    }

    #[test]
    fn converges_to_constant_input() {
        let mut e = Ewma::new(4);
        e.update(0);
        for _ in 0..200 {
            e.update(1000);
        }
        let v = e.value();
        assert!((999..=1000).contains(&v), "converged: {v}");
    }

    #[test]
    fn tracks_step_change_geometrically() {
        let mut e = Ewma::new(3); // alpha = 1/8
        e.update(0);
        // After n updates at level L, avg ≈ L(1 − (7/8)^n).
        e.update(800);
        assert_eq!(e.value(), 100); // 800/8
        e.update(800);
        // acc = 800+... ≈ 800*(1-(7/8)^2)=187.5
        let v = e.value();
        assert!((186..=188).contains(&v), "second step: {v}");
    }

    #[test]
    fn no_truncation_freeze() {
        // A naive avg += (x-avg)>>k freezes when |x-avg| < 2^k; the
        // fixed-point accumulator must keep converging.
        let mut e = Ewma::new(4);
        e.update(0);
        for _ in 0..500 {
            e.update(7); // deviation smaller than 2^4
        }
        assert_eq!(e.value(), 7, "small deviations still converge");
    }

    #[test]
    fn negative_values() {
        let mut e = Ewma::new(3);
        e.update(-100);
        for _ in 0..100 {
            e.update(-100);
        }
        assert_eq!(e.value(), -100);
    }

    #[test]
    fn deviation_band() {
        let mut e = Ewma::new(3);
        e.update(1000);
        for _ in 0..50 {
            e.update(1000);
        }
        assert!(!e.deviates(1100, 3), "within 12.5%");
        assert!(e.deviates(1200, 3), "beyond 12.5%");
        assert!(e.deviates(800, 3), "low side too");
    }

    #[test]
    fn reset_clears() {
        let mut e = Ewma::new(3);
        e.update(5);
        e.reset();
        assert!(!e.is_seeded());
        assert_eq!(e.value(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn zero_shift_rejected() {
        let _ = Ewma::new(0);
    }

    proptest! {
        /// The average always stays within the observed value range.
        #[test]
        fn bounded_by_input_range(
            values in proptest::collection::vec(-10_000i64..10_000, 1..300),
            shift in 1u32..8,
        ) {
            let mut e = Ewma::new(shift);
            for &v in &values {
                e.update(v);
            }
            let lo = *values.iter().min().expect("non-empty");
            let hi = *values.iter().max().expect("non-empty");
            prop_assert!(e.value() >= lo - 1, "value {} lo {lo}", e.value());
            prop_assert!(e.value() <= hi + 1, "value {} hi {hi}", e.value());
        }

        /// Against the floating-point EWMA with the same alpha, the
        /// fixed-point version stays within one unit plus accumulated
        /// rounding (bounded by 2).
        #[test]
        fn close_to_float_reference(
            values in proptest::collection::vec(0i64..100_000, 1..200),
            shift in 1u32..8,
        ) {
            let alpha = 1.0 / f64::from(1u32 << shift);
            let mut e = Ewma::new(shift);
            let mut f = values[0] as f64;
            e.update(values[0]);
            for &v in &values[1..] {
                e.update(v);
                f = f + alpha * (v as f64 - f);
            }
            let diff = (e.value() as f64 - f).abs();
            prop_assert!(diff <= 2.0, "fixed {} float {f}", e.value());
        }
    }
}
