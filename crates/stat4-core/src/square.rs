//! Approximate squaring with shifts, for targets without runtime multiply.
//!
//! The paper notes (Sec. 2) that "some hardware switches do not support
//! the squaring of values unknown at compile time" and that squaring can
//! be approximated with shifting operations, as suggested by Ding et
//! al. (NOMS '20). The trick mirrors the square-root approximation:
//! decompose `x = 2^e + m` where `e` is the MSB position and `m` the
//! mantissa, then
//!
//! ```text
//! x² = 2^{2e} + 2·2^e·m + m²  ≈  2^{2e} + (m << (e+1))
//! ```
//!
//! dropping the `m²` term. The result always *underestimates*, by at most
//! `m² < 2^{2e} ≤ x²/1`, i.e. the relative error is below `(m/x)² < 25%`
//! and shrinks as `x` approaches a power of two. [`approx_square_refined`]
//! re-applies the trick to the dropped `m²` term, pushing the worst case
//! under ~6%.
//!
//! In a pipeline the variable-distance shift `m << (e+1)` is realised the
//! same way as the MSB scan in [`crate::isqrt`]: an `if` cascade on bmv2
//! or a TCAM match on hardware. `p4sim` models that cost explicitly.

/// Shift-approximated square of `x`, always `<= x²`, relative error `< 25%`.
///
/// Uses only MSB detection, shifts and addition — legal on multiply-less
/// P4 targets.
///
/// # Examples
///
/// ```
/// use stat4_core::square::approx_square;
/// assert_eq!(approx_square(0), 0);
/// assert_eq!(approx_square(1), 1);
/// assert_eq!(approx_square(4), 16);        // exact on powers of two
/// assert_eq!(approx_square(5), 24);        // 25 - 1² = 24
/// assert_eq!(approx_square(6), 32);        // 36 - 2² = 32
/// ```
#[must_use]
pub fn approx_square(x: u64) -> u128 {
    if x == 0 {
        return 0;
    }
    let e = 63 - u64::from(x.leading_zeros());
    if e == 0 {
        return 1;
    }
    let m = (x & ((1u64 << e) - 1)) as u128;
    (1u128 << (2 * e)) + (m << (e + 1))
}

/// One-level refinement: adds a shift-approximation of the dropped `m²`
/// term, reducing the worst-case relative error to roughly 6%.
///
/// # Examples
///
/// ```
/// use stat4_core::square::approx_square_refined;
/// assert_eq!(approx_square_refined(4), 16);
/// // 7² = 49; one-term gives 40, refined recovers the 3² = 9 as 8 -> 48.
/// assert_eq!(approx_square_refined(7), 48);
/// ```
#[must_use]
pub fn approx_square_refined(x: u64) -> u128 {
    if x == 0 {
        return 0;
    }
    let e = 63 - u64::from(x.leading_zeros());
    if e == 0 {
        return 1;
    }
    let m = x & ((1u64 << e) - 1);
    (1u128 << (2 * e)) + ((m as u128) << (e + 1)) + approx_square(m)
}

/// Saturating `u64` variant of [`approx_square`] for register-width-bound
/// pipelines; values whose square exceeds `u64::MAX` clamp.
#[must_use]
pub fn approx_square_u64(x: u64) -> u64 {
    u64::try_from(approx_square(x)).unwrap_or(u64::MAX)
}

/// Relative underestimation error of [`approx_square`] in percent.
#[must_use]
pub fn approx_square_error_percent(x: u64) -> f64 {
    if x == 0 {
        return 0.0;
    }
    let truth = (x as u128) * (x as u128);
    let approx = approx_square(x);
    ((truth - approx) as f64 / truth as f64) * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn exact_on_powers_of_two() {
        for k in 0..32u32 {
            let x = 1u64 << k;
            assert_eq!(approx_square(x), (x as u128) * (x as u128));
            assert_eq!(approx_square_refined(x), (x as u128) * (x as u128));
        }
    }

    #[test]
    fn zero_and_one() {
        assert_eq!(approx_square(0), 0);
        assert_eq!(approx_square(1), 1);
        assert_eq!(approx_square_refined(0), 0);
        assert_eq!(approx_square_refined(1), 1);
    }

    #[test]
    fn small_values_by_hand() {
        // 3 = 2 + 1: 4 + (1 << 2) = 8; truth 9.
        assert_eq!(approx_square(3), 8);
        // 5 = 4 + 1: 16 + (1 << 3) = 24; truth 25.
        assert_eq!(approx_square(5), 24);
        // 7 = 4 + 3: 16 + (3 << 3) = 40; truth 49.
        assert_eq!(approx_square(7), 40);
        // refined(7): 40 + approx_square(3) = 48.
        assert_eq!(approx_square_refined(7), 48);
    }

    #[test]
    fn saturating_u64_clamps() {
        assert_eq!(approx_square_u64(u64::MAX), u64::MAX);
        assert_eq!(approx_square_u64(3), 8);
    }

    /// The widening shifts stay inside `u128` even at the top of the
    /// input range (e = 63 makes `m << 64` a 127-bit quantity, and the
    /// refined sum is bounded by the true square `< 2¹²⁸`).
    #[test]
    fn no_overflow_at_word_boundary() {
        for x in [u64::MAX, u64::MAX - 1, 1 << 63, (1 << 63) - 1] {
            let truth = u128::from(x) * u128::from(x);
            assert!(approx_square(x) <= truth, "x = {x}");
            assert!(approx_square_refined(x) <= truth, "x = {x}");
            assert!(approx_square(x) >= truth / 2, "x = {x}");
        }
    }

    #[test]
    fn error_band_shrinks_with_refinement() {
        let max_err = |f: fn(u64) -> u128| -> f64 {
            (2u64..50_000)
                .map(|x| {
                    let truth = (x as u128) * (x as u128);
                    ((truth - f(x)) as f64 / truth as f64) * 100.0
                })
                .fold(0.0, f64::max)
        };
        let one_term = max_err(approx_square);
        let refined = max_err(approx_square_refined);
        assert!(one_term < 25.0, "one-term max err {one_term}");
        assert!(refined < 7.0, "refined max err {refined}");
        assert!(refined < one_term);
    }

    proptest! {
        /// Always an underestimate, never by more than 25%.
        #[test]
        fn underestimates_within_bound(x in 2u64..u64::MAX) {
            let truth = (x as u128) * (x as u128);
            let approx = approx_square(x);
            prop_assert!(approx <= truth);
            // Dropped term is m² < 2^{2e} <= truth/4 rounded up.
            prop_assert!(truth - approx <= truth / 4 + 2,
                "x = {} approx = {} truth = {}", x, approx, truth);
        }

        /// Refinement never hurts.
        #[test]
        fn refined_dominates(x in 0u64..u64::MAX) {
            let truth = (x as u128) * (x as u128);
            let a = approx_square(x);
            let r = approx_square_refined(x);
            prop_assert!(r >= a);
            prop_assert!(r <= truth);
        }

        /// Order of magnitude is always right: the MSB of the result is
        /// exactly 2e or 2e+1.
        #[test]
        fn msb_is_doubled(x in 1u64..u64::MAX) {
            let e = 63 - u64::from(x.leading_zeros());
            let r = approx_square(x);
            let re = 127 - u128::from(r.leading_zeros());
            prop_assert!(re == u128::from(2 * e) || re == u128::from(2 * e + 1));
        }
    }
}
