//! Frequency distributions with constant-work moment updates.
//!
//! A *frequency distribution* (paper Sec. 2) tracks how often each value
//! of interest occurs: `X = {f_1, …, f_N}` where `f_i` is the frequency
//! of value `i` (SYN vs data packets, packets per protocol, occurrences
//! of payload integers, …). Its moments are maintained without any
//! re-scan:
//!
//! - a value `k` seen for the first time increments `N` (the number of
//!   *distinct* values observed);
//! - every observation increments `Xsum` (total observation count) by 1;
//! - `Xsumsq` absorbs the change from `f_k²` to `(f_k+1)²` as
//!   `Xsumsq += 2·f_k + 1` — one shift and two adds.
//!
//! The distribution's domain is a fixed integer interval, mirroring the
//! register array a switch pre-allocates (`STAT_COUNTER_SIZE` cells); the
//! paper's validation app uses the domain `[-255, 255]`.

use crate::delta::{DeltaMergeable, DirtyJournal, FreqDelta};
use crate::error::{Stat4Error, Stat4Result};
use crate::isqrt::approx_isqrt;
use crate::running::RunningStats;
use serde::{Deserialize, Serialize};

/// A bounded-domain frequency distribution with O(1) updates of
/// `N`, `Xsum` and `Xsumsq`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FrequencyDist {
    min: i64,
    max: i64,
    counts: Vec<u64>,
    /// Number of distinct values observed (the paper's `N`).
    n_distinct: u64,
    /// Total number of observations (`Xsum = Σ f_i`).
    total: u64,
    /// Sum of squared frequencies (`Xsumsq = Σ f_i²`).
    sumsq: u128,
    /// Buckets touched since the last `take_delta`; not part of the
    /// distribution's identity (excluded from eq and serde).
    #[serde(skip, default)]
    journal: DirtyJournal,
}

/// Equality is over counters and moments only — the dirty journal is
/// bookkeeping, not identity.
impl PartialEq for FrequencyDist {
    fn eq(&self, other: &Self) -> bool {
        self.min == other.min
            && self.max == other.max
            && self.counts == other.counts
            && self.n_distinct == other.n_distinct
            && self.total == other.total
            && self.sumsq == other.sumsq
    }
}

impl Eq for FrequencyDist {}

impl FrequencyDist {
    /// Creates a distribution over the inclusive domain `[min, max]`.
    ///
    /// # Errors
    ///
    /// [`Stat4Error::InvalidDomain`] if `min > max` or the domain has more
    /// than 2³² cells (a register array no switch could allocate).
    pub fn new(min: i64, max: i64) -> Stat4Result<Self> {
        if min > max {
            return Err(Stat4Error::InvalidDomain { min, max });
        }
        let size = (max as i128) - (min as i128) + 1;
        if size > (1i128 << 32) {
            return Err(Stat4Error::InvalidDomain { min, max });
        }
        Ok(Self {
            min,
            max,
            counts: vec![0; size as usize],
            n_distinct: 0,
            total: 0,
            sumsq: 0,
            journal: DirtyJournal::new(),
        })
    }

    /// Seeds a distribution directly from per-cell counters (cell 0 =
    /// `min`), recomputing the moments with the same saturating
    /// arithmetic `observe` uses. Exists so tests can reach the
    /// near-ceiling states that would take 2⁶⁴ observations to produce.
    ///
    /// # Errors
    ///
    /// [`Stat4Error::InvalidDomain`] if `counts` is empty or wider than
    /// 2³² cells.
    #[doc(hidden)]
    pub fn from_raw_counts(min: i64, counts: Vec<u64>) -> Stat4Result<Self> {
        if counts.is_empty() || counts.len() > (1usize << 32) {
            return Err(Stat4Error::InvalidDomain { min, max: min });
        }
        let max = min + (counts.len() as i64 - 1);
        let mut n_distinct = 0u64;
        let mut total = 0u64;
        let mut sumsq = 0u128;
        for &f in &counts {
            if f != 0 {
                n_distinct += 1;
            }
            total = total.saturating_add(f);
            sumsq = sumsq.saturating_add(u128::from(f) * u128::from(f));
        }
        Ok(Self {
            min,
            max,
            counts,
            n_distinct,
            total,
            sumsq,
            journal: DirtyJournal::new(),
        })
    }

    /// Inclusive lower bound of the domain.
    #[must_use]
    pub fn min_value(&self) -> i64 {
        self.min
    }

    /// Inclusive upper bound of the domain.
    #[must_use]
    pub fn max_value(&self) -> i64 {
        self.max
    }

    /// Number of cells in the domain.
    #[must_use]
    pub fn domain_size(&self) -> usize {
        self.counts.len()
    }

    #[inline]
    fn index(&self, value: i64) -> Option<usize> {
        if value < self.min || value > self.max {
            None
        } else {
            Some((value - self.min) as usize)
        }
    }

    /// Records one occurrence of `value`.
    ///
    /// # Errors
    ///
    /// [`Stat4Error::ValueOutOfDomain`] if `value` lies outside the
    /// configured domain. (A pipeline would simply not match such a
    /// packet; host code gets an explicit error.)
    pub fn observe(&mut self, value: i64) -> Stat4Result<()> {
        let idx = self.index(value).ok_or(Stat4Error::ValueOutOfDomain {
            value,
            min: self.min,
            max: self.max,
        })?;
        let f = self.counts[idx];
        self.journal.mark(idx, f);
        if f == 0 {
            self.n_distinct += 1;
        }
        // Xsumsq += (f+1)² − f² = 2f + 1 — the constant-work update.
        // All three accumulators saturate explicitly at their register
        // ceiling instead of wrapping (or panicking in debug builds):
        // a pinned counter is what a fixed-width switch register does.
        self.sumsq = self.sumsq.saturating_add(2 * u128::from(f) + 1);
        self.total = self.total.saturating_add(1);
        self.counts[idx] = f.saturating_add(1);
        Ok(())
    }

    /// Removes one previously recorded occurrence of `value` (the inverse
    /// of [`Self::observe`]), used by decaying/windowed monitors.
    ///
    /// # Errors
    ///
    /// [`Stat4Error::ValueOutOfDomain`] if outside the domain;
    /// [`Stat4Error::Overflow`] if the count is already zero.
    pub fn forget(&mut self, value: i64) -> Stat4Result<()> {
        let idx = self.index(value).ok_or(Stat4Error::ValueOutOfDomain {
            value,
            min: self.min,
            max: self.max,
        })?;
        let f = self.counts[idx];
        if f == 0 {
            return Err(Stat4Error::Overflow {
                op: "forget on zero count",
            });
        }
        self.journal.mark(idx, f);
        // Xsumsq -= f² − (f−1)² = 2f − 1. Saturating like `observe`:
        // once any accumulator has pinned at its ceiling the moments are
        // no longer exact, so the inverse update must not trap either.
        self.sumsq = self.sumsq.saturating_sub(2 * u128::from(f) - 1);
        self.total = self.total.saturating_sub(1);
        self.counts[idx] = f - 1;
        if f == 1 {
            self.n_distinct -= 1;
        }
        Ok(())
    }

    /// Current frequency of `value` (zero if out of domain).
    #[must_use]
    pub fn frequency(&self, value: i64) -> u64 {
        self.index(value).map_or(0, |i| self.counts[i])
    }

    /// Number of distinct values observed — the paper's `N` for
    /// frequency distributions.
    #[must_use]
    pub fn n_distinct(&self) -> u64 {
        self.n_distinct
    }

    /// Total observations — `Xsum`, and also the exact mean of `NX`.
    #[must_use]
    pub fn xsum(&self) -> u64 {
        self.total
    }

    /// Sum of squared frequencies — `Xsumsq`.
    #[must_use]
    pub fn xsumsq(&self) -> u128 {
        self.sumsq
    }

    /// `σ²(NX) = N·Xsumsq − Xsum²` over the frequencies of the observed
    /// values.
    #[must_use]
    pub fn variance_nx(&self) -> u128 {
        let n = u128::from(self.n_distinct);
        let sum = u128::from(self.total);
        (n * self.sumsq).saturating_sub(sum * sum)
    }

    /// `σ(NX)` via the shift-approximated square root (clamped to the
    /// 64-bit register width like [`RunningStats::sd_nx`]).
    #[must_use]
    pub fn sd_nx(&self) -> u64 {
        approx_isqrt(u64::try_from(self.variance_nx()).unwrap_or(u64::MAX))
    }

    /// Integer-only check: is the frequency of `value` an upper outlier
    /// among the observed frequencies (`N·f > Xsum + k·σ(NX)`)?
    ///
    /// This is how a SYN-flood monitor asks "is the SYN count abnormally
    /// high relative to the other packet types".
    #[must_use]
    pub fn is_frequency_outlier(&self, value: i64, k: u32) -> bool {
        let f = self.frequency(value);
        let nf = u128::from(self.n_distinct) * u128::from(f);
        let bound = u128::from(self.total) + u128::from(k) * u128::from(self.sd_nx());
        nf > bound
    }

    /// Iterates `(value, frequency)` for every non-zero cell.
    pub fn iter_nonzero(&self) -> impl Iterator<Item = (i64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c != 0)
            .map(|(i, &c)| (self.min + i as i64, c))
    }

    /// Snapshot of the per-cell counters, index 0 = `min_value()`.
    #[must_use]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Materialises the frequency multiset `{f_i : f_i > 0}` as a
    /// [`RunningStats`] — used to cross-check the incremental moments
    /// against the batch formulas in tests.
    #[must_use]
    pub fn to_running_stats(&self) -> RunningStats {
        let mut s = RunningStats::new();
        for (_, f) in self.iter_nonzero() {
            s.push(f as i64);
        }
        s
    }

    /// Clears all counters and moments (and re-bases the dirty journal:
    /// a reset distribution has nothing to ship).
    pub fn reset(&mut self) {
        self.counts.fill(0);
        self.n_distinct = 0;
        self.total = 0;
        self.sumsq = 0;
        self.journal.clear();
    }
}

impl DeltaMergeable for FrequencyDist {
    type Delta = FreqDelta;

    fn take_delta(&mut self) -> FreqDelta {
        let cells = self
            .journal
            .take()
            .into_iter()
            .map(|(idx, base)| (idx, base, self.counts[idx as usize]))
            .collect();
        FreqDelta { cells }
    }

    /// Applies the count increments cellwise and updates the moments
    /// incrementally from the old/new cell values — exactly what the
    /// full merge's recomputation yields, one touched cell at a time
    /// (bit-identical absent accumulator saturation).
    fn apply_delta(&mut self, delta: &FreqDelta) -> Stat4Result<()> {
        for &(idx, base, cur) in &delta.cells {
            let c = self
                .counts
                .get_mut(idx as usize)
                .ok_or(Stat4Error::MergeMismatch {
                    what: "frequency domains",
                })?;
            let old = *c;
            let new = if cur >= base {
                old.saturating_add(cur - base)
            } else {
                old.saturating_sub(base - cur)
            };
            *c = new;
            if old == 0 && new != 0 {
                self.n_distinct += 1;
            } else if old != 0 && new == 0 {
                self.n_distinct -= 1;
            }
            self.total = self.total.saturating_sub(old).saturating_add(new);
            self.sumsq = self
                .sumsq
                .saturating_sub(u128::from(old) * u128::from(old))
                .saturating_add(u128::from(new) * u128::from(new));
        }
        Ok(())
    }
}

impl crate::merge::Mergeable for FrequencyDist {
    /// Cellwise count addition with the moments recomputed from the
    /// merged cells in the same pass. The recomputation matters:
    /// `(f_a + f_b)² ≠ f_a² + f_b²`, so `Xsumsq` cannot merge by
    /// addition — but the merged cells determine it exactly, making the
    /// result bit-identical to a sequential pass over both streams.
    fn merge_from(&mut self, other: &Self) -> crate::error::Stat4Result<()> {
        if self.min != other.min || self.max != other.max {
            return Err(Stat4Error::MergeMismatch {
                what: "frequency domains",
            });
        }
        let mut n_distinct = 0u64;
        let mut total = 0u64;
        let mut sumsq = 0u128;
        for (c, o) in self.counts.iter_mut().zip(&other.counts) {
            let f = c.saturating_add(*o);
            *c = f;
            if f != 0 {
                n_distinct += 1;
            }
            total = total.saturating_add(f);
            sumsq += u128::from(f) * u128::from(f);
        }
        self.n_distinct = n_distinct;
        self.total = total;
        self.sumsq = sumsq;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn invalid_domains_rejected() {
        assert!(matches!(
            FrequencyDist::new(10, 5),
            Err(Stat4Error::InvalidDomain { .. })
        ));
        assert!(matches!(
            FrequencyDist::new(0, i64::MAX),
            Err(Stat4Error::InvalidDomain { .. })
        ));
    }

    #[test]
    fn empty_distribution() {
        let d = FrequencyDist::new(-255, 255).unwrap();
        assert_eq!(d.n_distinct(), 0);
        assert_eq!(d.xsum(), 0);
        assert_eq!(d.xsumsq(), 0);
        assert_eq!(d.variance_nx(), 0);
        assert_eq!(d.domain_size(), 511);
    }

    #[test]
    fn out_of_domain_rejected() {
        let mut d = FrequencyDist::new(0, 10).unwrap();
        assert!(matches!(
            d.observe(11),
            Err(Stat4Error::ValueOutOfDomain { .. })
        ));
        assert!(matches!(
            d.observe(-1),
            Err(Stat4Error::ValueOutOfDomain { .. })
        ));
        assert_eq!(d.frequency(11), 0);
    }

    #[test]
    fn moments_track_by_hand() {
        let mut d = FrequencyDist::new(0, 10).unwrap();
        d.observe(3).unwrap();
        d.observe(3).unwrap();
        d.observe(7).unwrap();
        // frequencies: {3: 2, 7: 1} -> N = 2, Xsum = 3, Xsumsq = 4 + 1 = 5.
        assert_eq!(d.n_distinct(), 2);
        assert_eq!(d.xsum(), 3);
        assert_eq!(d.xsumsq(), 5);
        // var(NX) = 2*5 - 9 = 1.
        assert_eq!(d.variance_nx(), 1);
    }

    #[test]
    fn negative_domain_works() {
        let mut d = FrequencyDist::new(-255, 255).unwrap();
        d.observe(-255).unwrap();
        d.observe(255).unwrap();
        d.observe(0).unwrap();
        d.observe(-255).unwrap();
        assert_eq!(d.frequency(-255), 2);
        assert_eq!(d.frequency(255), 1);
        assert_eq!(d.n_distinct(), 3);
        assert_eq!(d.xsum(), 4);
    }

    #[test]
    fn forget_inverts_observe() {
        let mut d = FrequencyDist::new(0, 10).unwrap();
        for v in [1, 2, 2, 3, 3, 3] {
            d.observe(v).unwrap();
        }
        let snapshot = d.clone();
        d.observe(5).unwrap();
        d.forget(5).unwrap();
        assert_eq!(d, snapshot);
    }

    #[test]
    fn forget_zero_count_errors() {
        let mut d = FrequencyDist::new(0, 10).unwrap();
        assert!(matches!(d.forget(4), Err(Stat4Error::Overflow { .. })));
    }

    #[test]
    fn syn_flood_style_outlier() {
        // Packet-type frequency distribution over 16 types (type 1 =
        // SYN). Note the outlier value inflates the distribution's own
        // variance, so with N distinct values the maximum achievable
        // z-score is (N-1)/sqrt(N); a k = 2 check needs N >= 6 types to
        // be able to fire at all.
        let mut d = FrequencyDist::new(0, 15).unwrap();
        for v in 0..16 {
            for _ in 0..100 {
                d.observe(v).unwrap();
            }
        }
        assert!(!d.is_frequency_outlier(1, 2));
        for _ in 0..20_000 {
            d.observe(1).unwrap();
        }
        assert!(d.is_frequency_outlier(1, 2));
        assert!(!d.is_frequency_outlier(2, 2));
    }

    #[test]
    fn iter_nonzero_and_counts() {
        let mut d = FrequencyDist::new(-2, 2).unwrap();
        d.observe(-2).unwrap();
        d.observe(2).unwrap();
        d.observe(2).unwrap();
        let items: Vec<_> = d.iter_nonzero().collect();
        assert_eq!(items, vec![(-2, 1), (2, 2)]);
        assert_eq!(d.counts(), &[1, 0, 0, 0, 2]);
    }

    /// A cell pinned at `u64::MAX` must saturate, not wrap (release) or
    /// panic (debug): wrapping to 0 would silently corrupt `n_distinct`.
    #[test]
    fn observe_saturates_at_counter_ceiling() {
        let mut d = FrequencyDist::from_raw_counts(0, vec![u64::MAX, 3]).unwrap();
        let (n, total) = (d.n_distinct(), d.xsum());
        d.observe(0).unwrap();
        assert_eq!(d.frequency(0), u64::MAX, "count pins at the ceiling");
        assert_eq!(d.n_distinct(), n, "a pinned cell stays distinct");
        assert_eq!(d.xsum(), total, "total already saturated");
    }

    /// `total` saturates independently of any single cell.
    #[test]
    fn total_saturates() {
        let mut d = FrequencyDist::from_raw_counts(0, vec![u64::MAX - 1, 1]).unwrap();
        assert_eq!(d.xsum(), u64::MAX, "sum of cells saturates");
        d.observe(1).unwrap();
        assert_eq!(d.xsum(), u64::MAX);
        assert_eq!(d.frequency(1), 2, "the cell itself is still exact");
    }

    /// `forget` on a saturated state must not trap on the moment
    /// subtraction either.
    #[test]
    fn forget_on_saturated_state_does_not_trap() {
        let mut d = FrequencyDist::from_raw_counts(0, vec![u64::MAX]).unwrap();
        d.forget(0).unwrap();
        assert_eq!(d.frequency(0), u64::MAX - 1);
        assert_eq!(d.n_distinct(), 1);
    }

    #[test]
    fn from_raw_counts_matches_observes() {
        let mut a = FrequencyDist::new(0, 3).unwrap();
        for v in [0, 1, 1, 3, 3, 3] {
            a.observe(v).unwrap();
        }
        let b = FrequencyDist::from_raw_counts(0, vec![1, 2, 0, 3]).unwrap();
        assert_eq!(a, b);
        assert!(FrequencyDist::from_raw_counts(0, vec![]).is_err());
    }

    #[test]
    fn reset_clears() {
        let mut d = FrequencyDist::new(0, 5).unwrap();
        d.observe(1).unwrap();
        d.reset();
        assert_eq!(d.xsum(), 0);
        assert_eq!(d.n_distinct(), 0);
        assert_eq!(d.frequency(1), 0);
    }

    proptest! {
        /// The incremental moments always equal a batch recomputation
        /// from the counters.
        #[test]
        fn incremental_equals_batch(values in proptest::collection::vec(-50i64..=50, 0..500)) {
            let mut d = FrequencyDist::new(-50, 50).unwrap();
            for v in &values {
                d.observe(*v).unwrap();
            }
            let batch = d.to_running_stats();
            prop_assert_eq!(d.n_distinct(), batch.n());
            prop_assert_eq!(d.xsum() as i64, batch.xsum());
            prop_assert_eq!(d.xsumsq(), batch.xsumsq() as u128);
            prop_assert_eq!(d.variance_nx(), batch.variance_nx());
        }

        /// observe/forget round-trips restore the exact state.
        #[test]
        fn observe_forget_roundtrip(
            base in proptest::collection::vec(0i64..=20, 0..100),
            extra in proptest::collection::vec(0i64..=20, 1..50),
        ) {
            let mut d = FrequencyDist::new(0, 20).unwrap();
            for v in &base {
                d.observe(*v).unwrap();
            }
            let snapshot = d.clone();
            for v in &extra {
                d.observe(*v).unwrap();
            }
            for v in extra.iter().rev() {
                d.forget(*v).unwrap();
            }
            prop_assert_eq!(d, snapshot);
        }

        /// Xsum always equals the number of observations and n_distinct
        /// never exceeds the domain size.
        #[test]
        fn counting_invariants(values in proptest::collection::vec(-10i64..=10, 0..300)) {
            let mut d = FrequencyDist::new(-10, 10).unwrap();
            for v in &values {
                d.observe(*v).unwrap();
            }
            prop_assert_eq!(d.xsum(), values.len() as u64);
            prop_assert!(d.n_distinct() as usize <= d.domain_size());
        }
    }
}
