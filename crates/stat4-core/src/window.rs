//! Circular-buffer distributions of per-interval values.
//!
//! The paper's case study (Sec. 4) monitors *packets per time interval*:
//! "the switch implements a circular buffer that by default stores 100
//! 8ms-long time intervals". Every packet increments the current
//! interval's counter; when an interval closes, the interval's value
//! joins the distribution (and once the buffer is full, evicts the
//! oldest value — the 12-step "override the oldest counter" chain the
//! paper's resource analysis mentions).
//!
//! [`WindowedDist`] packages that: a ring of interval counters plus a
//! [`RunningStats`] over the ring contents, with the paper's outlier
//! check (`N·x > Xsum + k·σ(NX)`) evaluated when intervals close.

use crate::error::{Stat4Error, Stat4Result};
use crate::running::RunningStats;
use serde::{Deserialize, Serialize};

/// A sliding window of the most recent `capacity` interval values with
/// constant-work maintenance of `N`, `Xsum`, `Xsumsq`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WindowedDist {
    ring: Vec<i64>,
    /// Next slot to write (== oldest slot once the ring is full).
    head: usize,
    /// Number of valid slots (saturates at `ring.len()`).
    filled: usize,
    stats: RunningStats,
    /// Counter accumulating within the *current, still-open* interval.
    current: i64,
}

impl WindowedDist {
    /// Creates a window of `capacity` intervals (the paper's default is
    /// 100).
    ///
    /// # Errors
    ///
    /// [`Stat4Error::EmptyWindow`] if `capacity == 0`.
    pub fn new(capacity: usize) -> Stat4Result<Self> {
        if capacity == 0 {
            return Err(Stat4Error::EmptyWindow);
        }
        Ok(Self {
            ring: vec![0; capacity],
            head: 0,
            filled: 0,
            stats: RunningStats::new(),
            current: 0,
        })
    }

    /// Adds `amount` to the still-open interval (one packet's
    /// contribution: 1 for packet counts, the length for byte counts).
    pub fn accumulate(&mut self, amount: i64) {
        self.current = self.current.saturating_add(amount);
    }

    /// Value accumulated in the still-open interval.
    #[must_use]
    pub fn current(&self) -> i64 {
        self.current
    }

    /// Closes the current interval: its value enters the distribution
    /// (evicting the oldest value if the ring is full) and the
    /// accumulator resets. Returns the closed value.
    pub fn close_interval(&mut self) -> i64 {
        let value = self.current;
        self.current = 0;
        if self.filled < self.ring.len() {
            self.ring[self.head] = value;
            self.stats.push(value);
            self.filled += 1;
        } else {
            let old = self.ring[self.head];
            self.ring[self.head] = value;
            self.stats.replace(old, value);
        }
        self.head = (self.head + 1) % self.ring.len();
        value
    }

    /// The moments over the closed intervals currently in the window.
    #[must_use]
    pub fn stats(&self) -> &RunningStats {
        &self.stats
    }

    /// Number of closed intervals currently in the window.
    #[must_use]
    pub fn len(&self) -> usize {
        self.filled
    }

    /// True before any interval has closed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.filled == 0
    }

    /// Window capacity in intervals.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.ring.len()
    }

    /// The paper's case-study check, run when an interval closes: is the
    /// just-closed value `x` an upper outlier of the stored distribution
    /// (`N·x > Xsum + k·σ(NX)`)? Requires a minimally warm window
    /// (`min_fill` closed intervals) before it will ever fire, so the
    /// first interval cannot alarm against an empty history.
    #[must_use]
    pub fn is_spike(&self, x: i64, k: u32, min_fill: usize) -> bool {
        self.filled >= min_fill && self.stats.is_upper_outlier(x, k)
    }

    /// [`Self::is_spike`] with the relative margin: the closed value
    /// must also beat the mean by `max(Xsum >> shift, floor)` — the
    /// production configuration of the detectors (a bare k·σ band
    /// false-alarms on stochastic interval counts).
    #[must_use]
    pub fn is_spike_margined(&self, x: i64, k: u32, min_fill: usize, shift: u32, floor: u64) -> bool {
        self.filled >= min_fill
            && self
                .stats
                .is_upper_outlier_with_margin(x, k, self.stats.relative_margin(shift, floor))
    }

    /// Lower-tail variant for activity-collapse detection.
    #[must_use]
    pub fn is_drop_margined(&self, x: i64, k: u32, min_fill: usize, shift: u32, floor: u64) -> bool {
        self.filled >= min_fill
            && self
                .stats
                .is_lower_outlier_with_margin(x, k, self.stats.relative_margin(shift, floor))
    }

    /// Iterates the closed intervals, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = i64> + '_ {
        let cap = self.ring.len();
        let start = if self.filled < cap { 0 } else { self.head };
        (0..self.filled).map(move |i| self.ring[(start + i) % cap])
    }

    /// Clears the window and the open accumulator.
    pub fn reset(&mut self) {
        self.ring.fill(0);
        self.head = 0;
        self.filled = 0;
        self.stats.reset();
        self.current = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zero_capacity_rejected() {
        assert!(matches!(WindowedDist::new(0), Err(Stat4Error::EmptyWindow)));
    }

    #[test]
    fn fill_then_wrap() {
        let mut w = WindowedDist::new(3).unwrap();
        for v in [10, 20, 30] {
            w.accumulate(v);
            w.close_interval();
        }
        assert_eq!(w.len(), 3);
        assert_eq!(w.iter().collect::<Vec<_>>(), vec![10, 20, 30]);
        // Wrap: 40 evicts 10.
        w.accumulate(40);
        w.close_interval();
        assert_eq!(w.len(), 3);
        assert_eq!(w.iter().collect::<Vec<_>>(), vec![20, 30, 40]);
        assert_eq!(w.stats().xsum(), 90);
        assert_eq!(w.stats().n(), 3);
    }

    #[test]
    fn accumulate_within_interval() {
        let mut w = WindowedDist::new(4).unwrap();
        w.accumulate(1);
        w.accumulate(1);
        w.accumulate(3);
        assert_eq!(w.current(), 5);
        assert_eq!(w.close_interval(), 5);
        assert_eq!(w.current(), 0);
        assert_eq!(w.stats().xsum(), 5);
    }

    #[test]
    fn spike_detection_warms_up() {
        let mut w = WindowedDist::new(100).unwrap();
        // Too early: even an enormous value must not alarm.
        assert!(!w.is_spike(1_000_000, 2, 10));
        for _ in 0..50 {
            w.accumulate(100);
            w.close_interval();
        }
        // Insert mild noise so sigma is non-zero.
        for v in [98, 102, 99, 101, 100, 97, 103, 100, 96, 104] {
            w.accumulate(v);
            w.close_interval();
        }
        assert!(w.is_spike(500, 2, 10));
        // 101 sits inside the 2-sigma band (sigma of this stream is ~1).
        assert!(!w.is_spike(101, 2, 10));
    }

    #[test]
    fn stats_match_ring_rebuild_after_wraps() {
        let mut w = WindowedDist::new(5).unwrap();
        for v in 1..=17 {
            w.accumulate(v * 3);
            w.close_interval();
        }
        let mut fresh = RunningStats::new();
        for v in w.iter() {
            fresh.push(v);
        }
        assert_eq!(w.stats().n(), fresh.n());
        assert_eq!(w.stats().xsum(), fresh.xsum());
        assert_eq!(w.stats().xsumsq(), fresh.xsumsq());
    }

    #[test]
    fn reset_clears() {
        let mut w = WindowedDist::new(3).unwrap();
        w.accumulate(9);
        w.close_interval();
        w.accumulate(1);
        w.reset();
        assert!(w.is_empty());
        assert_eq!(w.current(), 0);
        assert_eq!(w.stats().n(), 0);
    }

    proptest! {
        /// After any sequence of interval closes, the incremental stats
        /// equal a batch rebuild over the ring contents.
        #[test]
        fn incremental_equals_rebuild(
            values in proptest::collection::vec(0i64..10_000, 1..60),
            cap in 1usize..12,
        ) {
            let mut w = WindowedDist::new(cap).unwrap();
            for v in &values {
                w.accumulate(*v);
                w.close_interval();
            }
            let mut fresh = RunningStats::new();
            for v in w.iter() {
                fresh.push(v);
            }
            prop_assert_eq!(w.stats().n(), fresh.n());
            prop_assert_eq!(w.stats().xsum(), fresh.xsum());
            prop_assert_eq!(w.stats().xsumsq(), fresh.xsumsq());
        }

        /// The ring always holds the `min(len, cap)` most recent values
        /// in order.
        #[test]
        fn ring_holds_most_recent(
            values in proptest::collection::vec(0i64..1_000, 1..60),
            cap in 1usize..12,
        ) {
            let mut w = WindowedDist::new(cap).unwrap();
            for v in &values {
                w.accumulate(*v);
                w.close_interval();
            }
            let expect: Vec<i64> = values
                .iter()
                .copied()
                .skip(values.len().saturating_sub(cap))
                .collect();
            prop_assert_eq!(w.iter().collect::<Vec<_>>(), expect);
        }
    }
}
