//! Integer HyperLogLog cardinality estimation.
//!
//! The paper's aggregates (moments, percentiles, sketches) all measure
//! *how much* traffic flows; none measure *how many distinct* entities
//! send it. A spoofed-source sweep keeps every volume counter flat
//! while the number of distinct sources explodes — the signal
//! Turkovic et al.'s heavy-hitter work motivates tracking alongside
//! the paper's statistics. HyperLogLog closes that gap with data-plane
//! legal per-packet work: hash, shift, compare, max — one `u8` register
//! update per packet, no division, no floats.
//!
//! The *estimator* runs at the controller (like every division in this
//! repo) but still in pure integer arithmetic: the harmonic sum
//! `Σ 2^-reg` is computed as `Σ (2^32 >> reg)` in Q32, the bias
//! constant α is Q16, and the small-range linear-counting correction
//! `m·ln(m/V)` uses an integer `atanh`-series logarithm.
//!
//! Registers merge by cellwise `max`, which is commutative, associative
//! and idempotent — any partition of a stream folds back to the
//! sequential register file exactly, so sharded replay stays
//! bit-identical at every shard count.

use crate::delta::{DeltaMergeable, DirtyJournal, HllDelta};
use crate::error::{Stat4Error, Stat4Result};
use crate::merge::Mergeable;
use serde::{Deserialize, Serialize};

/// A HyperLogLog sketch with `2^precision` one-byte registers.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HyperLogLog {
    precision: u32,
    registers: Vec<u8>,
    /// Registers that rose since the last `take_delta`; not part of the
    /// sketch's identity (excluded from eq and serde).
    #[serde(skip, default)]
    journal: DirtyJournal,
}

/// Equality is over the register file only — the dirty journal is
/// bookkeeping, not identity.
impl PartialEq for HyperLogLog {
    fn eq(&self, other: &Self) -> bool {
        self.precision == other.precision && self.registers == other.registers
    }
}

impl Eq for HyperLogLog {}

/// SplitMix64 finalizer: a full-avalanche 64-bit mix so that raw keys
/// (IPv4 addresses, flow hashes) spread uniformly over registers.
#[must_use]
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// ln(2) in Q16.
const LN2_Q16: u64 = 45_426;

/// Integer `ln(num/den)` in Q16 for `num ≥ den ≥ 1`: range-reduce by
/// powers of two (`ln(r) = k·ln2 + ln(r/2^k)` with the residual ratio
/// in `[1, 2)`), then the `ln(1+x) = 2·atanh(x/(2+x))` series. The
/// reduced series argument stays below 1/3, so four odd terms leave a
/// truncation error under 3 Q16 ulps.
#[must_use]
fn ln_ratio_q16(num: u64, den: u64) -> u64 {
    debug_assert!(num >= den && den >= 1);
    let k = (num / den).ilog2();
    let den = den << k;
    let d = num - den;
    let series = if d == 0 {
        0
    } else {
        let z = (d << 16) / (2 * den + d);
        let z2 = (z * z) >> 16;
        let z3 = (z2 * z) >> 16;
        let z5 = (z3 * z2) >> 16;
        let z7 = (z5 * z2) >> 16;
        2 * (z + z3 / 3 + z5 / 5 + z7 / 7)
    };
    u64::from(k) * LN2_Q16 + series
}

impl HyperLogLog {
    /// Creates a sketch with `2^precision` registers. The standard
    /// error is `1.04 / sqrt(2^precision)` — precision 10 (1 KiB of
    /// registers) gives ±3.3%.
    ///
    /// # Errors
    ///
    /// [`Stat4Error::InvalidDomain`] unless `4 ≤ precision ≤ 16`.
    pub fn new(precision: u32) -> Stat4Result<Self> {
        if !(4..=16).contains(&precision) {
            return Err(Stat4Error::InvalidDomain {
                min: 4,
                max: 16,
            });
        }
        Ok(Self {
            precision,
            registers: vec![0; 1 << precision],
            journal: DirtyJournal::new(),
        })
    }

    /// Rebuilds a sketch from a previously exported register file
    /// (`precision()`, `registers()`), as a crash-recovery checkpoint
    /// does.
    ///
    /// # Errors
    ///
    /// [`Stat4Error::InvalidDomain`] for an out-of-range precision, a
    /// register file of the wrong length, or a register value above the
    /// maximum rank `64 − precision + 1`.
    pub fn from_registers(precision: u32, registers: Vec<u8>) -> Stat4Result<Self> {
        if !(4..=16).contains(&precision)
            || registers.len() != 1 << precision
            || registers
                .iter()
                .any(|&r| u32::from(r) > 64 - precision + 1)
        {
            return Err(Stat4Error::InvalidDomain { min: 4, max: 16 });
        }
        Ok(Self {
            precision,
            registers,
            journal: DirtyJournal::new(),
        })
    }

    /// Register-file precision (log2 of the register count).
    #[must_use]
    pub fn precision(&self) -> u32 {
        self.precision
    }

    /// Number of registers.
    #[must_use]
    pub fn register_count(&self) -> usize {
        self.registers.len()
    }

    /// Observes one key: the data-plane path. Hash, take the top
    /// `precision` bits as the register index, count the leading zeros
    /// of the rest, keep the max — all P4-expressible.
    pub fn observe(&mut self, key: u64) {
        let h = mix64(key);
        let idx = (h >> (64 - self.precision)) as usize;
        // Rank of the remaining 64−p bits: leading zeros + 1, with the
        // all-zero suffix pinned to its maximum rank.
        let rest = h << self.precision;
        let rank = if rest == 0 {
            (64 - self.precision + 1) as u8
        } else {
            (rest.leading_zeros() + 1) as u8
        };
        if rank > self.registers[idx] {
            self.journal.mark(idx, u64::from(self.registers[idx]));
            self.registers[idx] = rank;
        }
    }

    /// Registers still at zero (drives the linear-counting regime).
    #[must_use]
    pub fn zero_registers(&self) -> u64 {
        self.registers.iter().filter(|r| **r == 0).count() as u64
    }

    /// Raw register file (oldest-fashioned debugging aid and the
    /// float-oracle hook for tests).
    #[must_use]
    pub fn registers(&self) -> &[u8] {
        &self.registers
    }

    /// Integer cardinality estimate (controller-side).
    ///
    /// Harmonic-mean estimate `α·m²/Σ2^-reg` with the classic
    /// small-range linear-counting correction `m·ln(m/V)` when the raw
    /// estimate is below `5m/2` and some register is still zero. All
    /// arithmetic is integer: Q32 harmonic sum, Q16 α, Q16 series log.
    #[must_use]
    pub fn estimate(&self) -> u64 {
        let m = self.registers.len() as u64;
        // Σ 2^-reg in Q32; reg ≤ 61 so the shift is always in range.
        let harmonic_q32: u64 = self
            .registers
            .iter()
            .map(|r| (1u64 << 32) >> u32::from(*r))
            .sum();
        if harmonic_q32 == 0 {
            // Every register saturated: report the estimator's ceiling.
            return u64::MAX;
        }
        // α in Q16: the small-m constants, then 0.7213/(1 + 1.079/m).
        let alpha_q16: u128 = match m {
            16 => 44_102,
            32 => 45_675,
            64 => 46_461,
            _ => (47_273u128 * 1000 * m as u128) / (1000 * m as u128 + 1079),
        };
        let raw = (((alpha_q16 * (m as u128) * (m as u128)) << 32)
            / (harmonic_q32 as u128))
            >> 16;
        let zeros = self.zero_registers();
        if zeros > 0 && raw * 2 <= 5 * m as u128 {
            // Linear counting: m · ln(m / V).
            (m * ln_ratio_q16(m, zeros)) >> 16
        } else {
            raw.min(u64::MAX as u128) as u64
        }
    }

    /// Clears every register, as the switch does when the controller
    /// rebinds the register block at an interval boundary (and re-bases
    /// the dirty journal: a reset sketch has nothing to ship).
    pub fn reset(&mut self) {
        self.registers.fill(0);
        self.journal.clear();
    }
}

impl DeltaMergeable for HyperLogLog {
    type Delta = HllDelta;

    fn take_delta(&mut self) -> HllDelta {
        let regs = self
            .journal
            .take()
            .into_iter()
            // Registers only rise between resets, so the current rank
            // alone is the delta: max-merge needs no base.
            .map(|(idx, _base)| (idx, self.registers[idx as usize]))
            .collect();
        HllDelta { regs }
    }

    /// Maxes the risen registers in — commutative, associative and
    /// idempotent like the full merge, hence exact unconditionally.
    fn apply_delta(&mut self, delta: &HllDelta) -> Stat4Result<()> {
        for &(idx, rank) in &delta.regs {
            let r = self
                .registers
                .get_mut(idx as usize)
                .ok_or(Stat4Error::MergeMismatch {
                    what: "hyperloglog precisions",
                })?;
            *r = (*r).max(rank);
        }
        Ok(())
    }
}

impl Mergeable for HyperLogLog {
    fn merge_from(&mut self, other: &Self) -> Stat4Result<()> {
        if self.precision != other.precision {
            return Err(Stat4Error::MergeMismatch {
                what: "hyperloglog precisions",
            });
        }
        for (a, b) in self.registers.iter_mut().zip(&other.registers) {
            *a = (*a).max(*b);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_rng;
    use proptest::prelude::*;
    use rand::Rng;
    use std::collections::HashSet;

    /// The float reference estimator over the same register file.
    fn float_estimate(h: &HyperLogLog) -> f64 {
        let m = h.register_count() as f64;
        let sum: f64 = h.registers().iter().map(|r| 2f64.powi(-i32::from(*r))).sum();
        let alpha = match h.register_count() {
            16 => 0.673,
            32 => 0.697,
            64 => 0.709,
            _ => 0.7213 / (1.0 + 1.079 / m),
        };
        let raw = alpha * m * m / sum;
        let zeros = h.zero_registers() as f64;
        if zeros > 0.0 && raw <= 2.5 * m {
            m * (m / zeros).ln()
        } else {
            raw
        }
    }

    #[test]
    fn precision_bounds_enforced() {
        assert!(HyperLogLog::new(3).is_err());
        assert!(HyperLogLog::new(17).is_err());
        assert_eq!(HyperLogLog::new(10).unwrap().register_count(), 1024);
    }

    #[test]
    fn empty_estimates_zero() {
        assert_eq!(HyperLogLog::new(10).unwrap().estimate(), 0);
    }

    #[test]
    fn duplicate_keys_do_not_inflate() {
        let mut h = HyperLogLog::new(10).unwrap();
        for _ in 0..100_000 {
            h.observe(42);
        }
        assert!(h.estimate() <= 2, "one key: {}", h.estimate());
    }

    #[test]
    fn small_exact_range_is_tight() {
        let mut h = HyperLogLog::new(10).unwrap();
        for k in 0..64u64 {
            h.observe(k);
        }
        let e = h.estimate() as i64;
        assert!((e - 64).abs() <= 6, "linear counting near-exact: {e}");
    }

    #[test]
    fn ln_ratio_matches_float() {
        for (num, den) in [(1024u64, 1024u64), (1024, 1000), (1024, 512), (1024, 100), (4096, 336)] {
            let want = (num as f64 / den as f64).ln();
            let got = ln_ratio_q16(num, den) as f64 / 65536.0;
            assert!(
                (got - want).abs() <= 0.02 * want.max(0.01),
                "ln({num}/{den}): int {got} float {want}"
            );
        }
    }

    #[test]
    fn from_registers_round_trips() {
        let mut h = HyperLogLog::new(8).unwrap();
        for k in 0..5_000u64 {
            h.observe(k.wrapping_mul(0x9e37_79b9));
        }
        let restored = HyperLogLog::from_registers(h.precision(), h.registers().to_vec()).unwrap();
        assert_eq!(restored, h);
        assert_eq!(restored.estimate(), h.estimate());
    }

    #[test]
    fn from_registers_rejects_bad_state() {
        assert!(HyperLogLog::from_registers(3, vec![0; 8]).is_err());
        assert!(HyperLogLog::from_registers(8, vec![0; 7]).is_err());
        assert!(HyperLogLog::from_registers(8, vec![64; 256]).is_err());
    }

    #[test]
    fn merge_mismatched_precision_rejected() {
        let mut a = HyperLogLog::new(10).unwrap();
        let b = HyperLogLog::new(12).unwrap();
        assert!(matches!(
            a.merge_from(&b),
            Err(Stat4Error::MergeMismatch { what: "hyperloglog precisions" })
        ));
    }

    #[test]
    fn reset_clears() {
        let mut h = HyperLogLog::new(8).unwrap();
        for k in 0..1000u64 {
            h.observe(k);
        }
        h.reset();
        assert_eq!(h.estimate(), 0);
        assert_eq!(h.zero_registers(), 256);
    }

    proptest! {
        /// Uniform streams: estimate within ±15% of the true distinct
        /// count (4.6σ of the p=10 standard error) plus small-range
        /// slack.
        #[test]
        fn uniform_relative_error_bounded(seed in 0u64..200, n in 1usize..30_000) {
            let mut r = test_rng(seed);
            let mut h = HyperLogLog::new(10).unwrap();
            let mut truth = HashSet::new();
            for _ in 0..n {
                let k: u64 = r.random::<u64>() % (4 * n as u64);
                truth.insert(k);
                h.observe(k);
            }
            let est = h.estimate() as f64;
            let t = truth.len() as f64;
            prop_assert!(
                (est - t).abs() <= 0.15 * t + 4.0,
                "n={} truth={} est={}", n, t, est
            );
        }

        /// Zipf streams (heavy duplication) obey the same bound.
        #[test]
        fn zipf_relative_error_bounded(seed in 0u64..200, n in 100usize..30_000) {
            let mut r = test_rng(seed);
            let mut h = HyperLogLog::new(10).unwrap();
            let mut truth = HashSet::new();
            for _ in 0..n {
                // Inverse-CDF Zipf(s≈1.2) over a large id space.
                let u: f64 = r.random::<f64>().max(1e-12);
                let k = u.powf(-1.0 / 1.2).min(1e9) as u64;
                truth.insert(k);
                h.observe(k);
            }
            let est = h.estimate() as f64;
            let t = truth.len() as f64;
            prop_assert!(
                (est - t).abs() <= 0.15 * t + 4.0,
                "n={} truth={} est={}", n, t, est
            );
        }

        /// The integer estimator tracks the float reference estimator
        /// (same registers) within 3%.
        #[test]
        fn integer_estimator_matches_float_reference(
            seed in 0u64..100,
            n in 1usize..20_000,
        ) {
            let mut r = test_rng(seed);
            let mut h = HyperLogLog::new(10).unwrap();
            for _ in 0..n {
                h.observe(r.random::<u64>() % (2 * n as u64 + 1));
            }
            let int_e = h.estimate() as f64;
            let float_e = float_estimate(&h);
            prop_assert!(
                (int_e - float_e).abs() <= 0.03 * float_e + 2.0,
                "int {} float {}", int_e, float_e
            );
        }

        /// Any 2/4/8-way partition of a stream merges back to the
        /// sequential register file bit-for-bit.
        #[test]
        fn merge_is_partition_invariant(
            keys in proptest::collection::vec(0u64..5_000, 1..2_000),
            parts_pow in 1u32..4,
        ) {
            let parts = 1usize << parts_pow;
            let mut seq = HyperLogLog::new(8).unwrap();
            for k in &keys {
                seq.observe(*k);
            }
            let mut shards: Vec<HyperLogLog> =
                (0..parts).map(|_| HyperLogLog::new(8).unwrap()).collect();
            for (i, k) in keys.iter().enumerate() {
                shards[i % parts].observe(*k);
            }
            let mut merged = shards.remove(0);
            for s in &shards {
                merged.merge_from(s).unwrap();
            }
            prop_assert_eq!(merged, seq);
        }
    }
}
