//! Online mean / variance / standard deviation in the `NX` domain.
//!
//! P4 cannot divide, so the classical online algorithms (Welford etc.)
//! are out of reach. The paper instead tracks the *scaled* distribution
//! `NX = {N·x1, …, N·xN}`:
//!
//! - the **mean of `NX`** is exactly `Xsum = Σ xi` — a plain sum, no
//!   division;
//! - the **variance of `NX`** is `σ²(NX) = N·Xsumsq − Xsum²` where
//!   `Xsumsq = Σ xi²` — products and a subtraction, no division;
//! - the **standard deviation of `NX`** is `√(σ²(NX))`, computed with
//!   the shift-based [`crate::isqrt::approx_isqrt`].
//!
//! Anomaly checks are rewritten into the same domain: "is `xj` more than
//! `k` standard deviations above the mean" becomes the integer test
//! `N·xj > Xsum + k·σ(NX)`. All the state is three integers, updated in
//! constant time per new value.
//!
//! Standard deviation is computed **lazily** (paper Sec. 3): per-value
//! updates only maintain `N`, `Xsum` and `Xsumsq`; the variance and the
//! (comparatively expensive) MSB scan inside the square root run only
//! when a check actually reads `σ`. The [`RunningStats::sd_cached`]
//! accessor memoises the last computed value for the eager-vs-lazy
//! ablation benchmark.

use crate::delta::{DeltaMergeable, RunningDelta};
use crate::isqrt::approx_isqrt;
use serde::{Deserialize, Serialize};

/// Online tracker for `N`, `Xsum`, `Xsumsq` and the derived `NX`-domain
/// statistics of a stream of integer values.
///
/// `push` is the per-new-value update a switch performs when an interval
/// closes; reads (`variance_nx`, `sd_nx`, outlier checks) are the lazy,
/// less frequent operations a detection algorithm performs.
///
/// Values are `i64`; internal products are computed in `i128` so that any
/// realistic data-plane register contents (counters of packets, bytes,
/// intervals) are far from overflow. Overflow in `Xsumsq` accumulation
/// itself is checked in debug builds and saturates in release builds —
/// matching how a fixed-width P4 register would wrap-or-clamp rather than
/// trap.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RunningStats {
    n: u64,
    sum: i64,
    sumsq: i64,
    /// Memoised standard deviation, invalidated on every push.
    #[serde(skip)]
    sd_cache: Option<u64>,
    /// Accumulator values at the last `take_delta` — the baseline the
    /// next delta is computed against. Like `sd_cache`, derived
    /// bookkeeping: excluded from eq and serde.
    #[serde(skip)]
    taken_n: u64,
    #[serde(skip)]
    taken_sum: i64,
    #[serde(skip)]
    taken_sumsq: i64,
}

/// Equality is over the three accumulators only — the σ memo and the
/// delta baseline are derived bookkeeping, not identity.
impl PartialEq for RunningStats {
    fn eq(&self, other: &Self) -> bool {
        self.n == other.n && self.sum == other.sum && self.sumsq == other.sumsq
    }
}

impl Eq for RunningStats {}

impl RunningStats {
    /// Creates an empty tracker (`N = 0`).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Rebuilds a tracker from previously exported raw accumulators
    /// (`n()`, `xsum()`, `xsumsq()`), as a crash-recovery checkpoint
    /// does. The derived-statistic cache starts cold, exactly as after
    /// any mutation, so a restored tracker compares equal to the live
    /// tracker it was exported from.
    #[must_use]
    pub fn from_raw(n: u64, xsum: i64, xsumsq: i64) -> Self {
        Self {
            n,
            sum: xsum,
            sumsq: xsumsq,
            sd_cache: None,
            // Restored state ships nothing until the next rebuild.
            taken_n: n,
            taken_sum: xsum,
            taken_sumsq: xsumsq,
        }
    }

    /// Number of values observed so far.
    #[must_use]
    pub fn n(&self) -> u64 {
        self.n
    }

    /// `Xsum = Σ xi` — also the exact mean of the tracked `NX`
    /// distribution.
    #[must_use]
    pub fn xsum(&self) -> i64 {
        self.sum
    }

    /// `Xsumsq = Σ xi²`.
    #[must_use]
    pub fn xsumsq(&self) -> i64 {
        self.sumsq
    }

    /// Alias for [`Self::xsum`] making call sites read like the paper:
    /// "the mean of NX is exactly Xsum".
    #[must_use]
    pub fn mean_nx(&self) -> i64 {
        self.sum
    }

    /// Adds a new value `x` to the distribution: `N += 1`,
    /// `Xsum += x`, `Xsumsq += x²`. Constant work.
    pub fn push(&mut self, x: i64) {
        self.n = self.n.saturating_add(1);
        self.sum = self.sum.saturating_add(x);
        self.sumsq = self.sumsq.saturating_add(x.saturating_mul(x));
        self.sd_cache = None;
    }

    /// Absorbs another tracker's distribution: `N`, `Xsum` and `Xsumsq`
    /// add. Exactly the state a single tracker would hold after pushing
    /// both value streams in any order (absent saturation).
    pub fn absorb(&mut self, other: &Self) {
        self.n = self.n.saturating_add(other.n);
        self.sum = self.sum.saturating_add(other.sum);
        self.sumsq = self.sumsq.saturating_add(other.sumsq);
        self.sd_cache = None;
    }

    /// Replaces a previously pushed value `old` with `new` without
    /// changing `N`. This is the circular-buffer update of the paper's
    /// case study: when the window is full, the oldest interval counter
    /// is overwritten by the newest.
    pub fn replace(&mut self, old: i64, new: i64) {
        self.sum = self.sum.saturating_sub(old).saturating_add(new);
        self.sumsq = self
            .sumsq
            .saturating_sub(old.saturating_mul(old))
            .saturating_add(new.saturating_mul(new));
        self.sd_cache = None;
    }

    /// Removes a previously pushed value (`N -= 1`). Used when a tracked
    /// distribution shrinks, e.g. when a binding is retired.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `N` is already zero.
    pub fn remove(&mut self, x: i64) {
        debug_assert!(self.n > 0, "remove from empty RunningStats");
        self.n = self.n.saturating_sub(1);
        self.sum = self.sum.saturating_sub(x);
        self.sumsq = self.sumsq.saturating_sub(x.saturating_mul(x));
        self.sd_cache = None;
    }

    /// Variance of the `NX` distribution: `N·Xsumsq − Xsum²`, computed in
    /// `i128`. Never negative for a state reachable via `push`/`replace`
    /// (Cauchy–Schwarz); clamped at zero defensively for saturated states.
    #[must_use]
    pub fn variance_nx(&self) -> u128 {
        let v = (self.n as i128) * (self.sumsq as i128) - (self.sum as i128) * (self.sum as i128);
        if v < 0 {
            0
        } else {
            v as u128
        }
    }

    /// Standard deviation of `NX` via the shift-approximated square root.
    ///
    /// The variance is an `i128` product but `approx_isqrt` operates on
    /// `u64`, matching a pipeline's register width; variances beyond
    /// `u64::MAX` clamp (their square root saturates at `√(u64::MAX)`,
    /// still monotone).
    #[must_use]
    pub fn sd_nx(&self) -> u64 {
        let v = self.variance_nx();
        let v64 = u64::try_from(v).unwrap_or(u64::MAX);
        approx_isqrt(v64)
    }

    /// Memoising accessor used by the lazy-vs-eager ablation: recomputes
    /// only when the state changed since the last read.
    pub fn sd_cached(&mut self) -> u64 {
        if let Some(sd) = self.sd_cache {
            return sd;
        }
        let sd = self.sd_nx();
        self.sd_cache = Some(sd);
        sd
    }

    /// Integer-only outlier test in the `NX` domain:
    /// `N·x > Xsum + k·σ(NX)`.
    ///
    /// This is the paper's example check "if traffic rates follow a
    /// normal distribution, the rate `xj` is an outlier if
    /// `N·xj > N·x̄ + 2σ(NX)`".
    #[must_use]
    pub fn is_upper_outlier(&self, x: i64, k: u32) -> bool {
        let nx = (self.n as i128) * (x as i128);
        let bound = (self.sum as i128) + (k as i128) * (self.sd_nx() as i128);
        nx > bound
    }

    /// Upper-tail test with an additional absolute margin:
    /// `N·x > Xsum + k·σ(NX) + margin`. Detectors use a *relative*
    /// margin ([`Self::relative_margin`]) because a bare k·σ band
    /// false-alarms on any stochastic traffic: interval noise crosses
    /// 2σ in roughly 2% of intervals.
    #[must_use]
    pub fn is_upper_outlier_with_margin(&self, x: i64, k: u32, margin: u64) -> bool {
        let nx = (self.n as i128) * (x as i128);
        let bound = (self.sum as i128)
            + (k as i128) * (self.sd_nx() as i128)
            + (margin as i128);
        nx > bound
    }

    /// Lower-tail test with a margin: `N·x < Xsum − k·σ(NX) − margin`.
    #[must_use]
    pub fn is_lower_outlier_with_margin(&self, x: i64, k: u32, margin: u64) -> bool {
        let nx = (self.n as i128) * (x as i128);
        let bound = (self.sum as i128)
            - (k as i128) * (self.sd_nx() as i128)
            - (margin as i128);
        nx < bound
    }

    /// The data-plane-legal relative margin: `max(|Xsum| >> shift,
    /// floor)` — a shift, a compare, both P4-expressible. A shift of 3
    /// demands outliers beat the mean by 12.5% on top of the σ band.
    #[must_use]
    pub fn relative_margin(&self, shift: u32, floor: u64) -> u64 {
        let base = (self.sum.unsigned_abs()) >> shift.min(63);
        base.max(floor)
    }

    /// Symmetric lower-tail test: `N·x < Xsum − k·σ(NX)`.
    #[must_use]
    pub fn is_lower_outlier(&self, x: i64, k: u32) -> bool {
        let nx = (self.n as i128) * (x as i128);
        let bound = (self.sum as i128) - (k as i128) * (self.sd_nx() as i128);
        nx < bound
    }

    /// Two-sided test: either tail at `k` standard deviations.
    #[must_use]
    pub fn is_outlier(&self, x: i64, k: u32) -> bool {
        self.is_upper_outlier(x, k) || self.is_lower_outlier(x, k)
    }

    /// Checks whether the mean rate matches a target `t`, within `k`
    /// standard deviations — the paper's "check that the average traffic
    /// rate matches a value T" example, as `|Xsum − N·T| ≤ k·σ(NX)`.
    #[must_use]
    pub fn mean_matches(&self, t: i64, k: u32) -> bool {
        let diff = ((self.sum as i128) - (self.n as i128) * (t as i128)).unsigned_abs();
        diff <= (k as u128) * (self.sd_nx() as u128)
    }

    /// Resets to the empty state, as a switch does when the controller
    /// rebinds a register block to a new distribution.
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

impl crate::merge::Mergeable for RunningStats {
    /// Sums are order-free: any shard partition merges back to the
    /// sequential state. Infallible (no configuration to mismatch).
    fn merge_from(&mut self, other: &Self) -> crate::error::Stat4Result<()> {
        self.absorb(other);
        Ok(())
    }
}

impl DeltaMergeable for RunningStats {
    type Delta = RunningDelta;

    fn take_delta(&mut self) -> RunningDelta {
        let d = RunningDelta {
            dn: i128::from(self.n) - i128::from(self.taken_n),
            dsum: i128::from(self.sum) - i128::from(self.taken_sum),
            dsumsq: i128::from(self.sumsq) - i128::from(self.taken_sumsq),
        };
        self.taken_n = self.n;
        self.taken_sum = self.sum;
        self.taken_sumsq = self.sumsq;
        d
    }

    /// Adds the accumulator changes, clamping at the register bounds
    /// exactly as `absorb`'s saturating adds do. Infallible, like the
    /// full merge.
    fn apply_delta(&mut self, delta: &RunningDelta) -> crate::error::Stat4Result<()> {
        let n = i128::from(self.n) + delta.dn;
        self.n = u64::try_from(n.clamp(0, i128::from(u64::MAX))).expect("clamped into range");
        let sum = i128::from(self.sum) + delta.dsum;
        self.sum = i64::try_from(sum.clamp(i128::from(i64::MIN), i128::from(i64::MAX)))
            .expect("clamped into range");
        let sumsq = i128::from(self.sumsq) + delta.dsumsq;
        self.sumsq = i64::try_from(sumsq.clamp(i128::from(i64::MIN), i128::from(i64::MAX)))
            .expect("clamped into range");
        self.sd_cache = None;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle;
    use proptest::prelude::*;

    #[test]
    fn from_raw_round_trips() {
        let mut s = RunningStats::new();
        for v in [3i64, -7, 40, 40, 12] {
            s.push(v);
        }
        let restored = RunningStats::from_raw(s.n(), s.xsum(), s.xsumsq());
        assert_eq!(restored, s);
        assert_eq!(restored.variance_nx(), s.variance_nx());
    }

    #[test]
    fn empty_state() {
        let s = RunningStats::new();
        assert_eq!(s.n(), 0);
        assert_eq!(s.xsum(), 0);
        assert_eq!(s.xsumsq(), 0);
        assert_eq!(s.variance_nx(), 0);
        assert_eq!(s.sd_nx(), 0);
    }

    #[test]
    fn single_value_has_zero_variance() {
        let mut s = RunningStats::new();
        s.push(2);
        // The paper's Fig. 5 caption: N=1, Xsum=2, Xsumsq=4, var=0, sd=0.
        assert_eq!(s.n(), 1);
        assert_eq!(s.xsum(), 2);
        assert_eq!(s.xsumsq(), 4);
        assert_eq!(s.variance_nx(), 0);
        assert_eq!(s.sd_nx(), 0);
    }

    #[test]
    fn hand_computed_variance() {
        let mut s = RunningStats::new();
        for x in [1, 2, 3, 4] {
            s.push(x);
        }
        // Xsum = 10, Xsumsq = 30, N = 4 -> var(NX) = 4*30 - 100 = 20.
        assert_eq!(s.variance_nx(), 20);
    }

    #[test]
    fn variance_matches_scaled_oracle() {
        let values = [5i64, 9, 2, 14, 7, 7, 3, 11, 6];
        let mut s = RunningStats::new();
        for &v in &values {
            s.push(v);
        }
        let exact = oracle::variance_nx_exact(&values);
        assert_eq!(s.variance_nx(), exact);
    }

    #[test]
    fn replace_equals_rebuild() {
        let mut a = RunningStats::new();
        for x in [10, 20, 30] {
            a.push(x);
        }
        a.replace(10, 40);

        let mut b = RunningStats::new();
        for x in [40, 20, 30] {
            b.push(x);
        }
        assert_eq!(a.n(), b.n());
        assert_eq!(a.xsum(), b.xsum());
        assert_eq!(a.xsumsq(), b.xsumsq());
    }

    #[test]
    fn remove_undoes_push() {
        let mut a = RunningStats::new();
        for x in [3, 1, 4, 1, 5] {
            a.push(x);
        }
        a.remove(4);
        let mut b = RunningStats::new();
        for x in [3, 1, 1, 5] {
            b.push(x);
        }
        assert_eq!(a, b);
    }

    #[test]
    fn outlier_detection_on_stable_stream() {
        let mut s = RunningStats::new();
        for _ in 0..50 {
            s.push(100);
        }
        for wiggle in [98, 99, 101, 102, 100, 97, 103] {
            s.push(wiggle);
        }
        assert!(s.is_upper_outlier(200, 2));
        assert!(!s.is_upper_outlier(101, 2));
        assert!(s.is_lower_outlier(10, 2));
        assert!(!s.is_lower_outlier(99, 2));
        assert!(s.is_outlier(200, 2));
        assert!(s.is_outlier(10, 2));
        assert!(!s.is_outlier(100, 2));
    }

    #[test]
    fn mean_matches_target() {
        let mut s = RunningStats::new();
        for x in [99, 101, 100, 100, 98, 102] {
            s.push(x);
        }
        assert!(s.mean_matches(100, 2));
        assert!(!s.mean_matches(140, 2));
    }

    #[test]
    fn negative_values_supported() {
        let mut s = RunningStats::new();
        for x in [-5, 5, -5, 5] {
            s.push(x);
        }
        assert_eq!(s.xsum(), 0);
        assert_eq!(s.xsumsq(), 100);
        // var(NX) = 4*100 - 0 = 400; sd ~ 20.
        assert_eq!(s.variance_nx(), 400);
        let sd = s.sd_nx();
        assert!((16..=24).contains(&sd), "sd = {sd}");
    }

    #[test]
    fn cache_invalidation() {
        let mut s = RunningStats::new();
        for x in [1, 2, 3, 4, 5] {
            s.push(x);
        }
        let sd1 = s.sd_cached();
        assert_eq!(s.sd_cached(), sd1);
        s.push(1000);
        let sd2 = s.sd_cached();
        assert!(sd2 > sd1);
    }

    /// Extreme values saturate every accumulator instead of trapping in
    /// debug builds — the library-side mirror of a fixed-width register.
    #[test]
    fn push_saturates_on_extreme_values() {
        let mut s = RunningStats::new();
        s.push(i64::MAX);
        s.push(i64::MAX);
        assert_eq!(s.xsum(), i64::MAX);
        assert_eq!(s.xsumsq(), i64::MAX);
        // Saturated states keep the variance clamp at zero rather than
        // producing a garbage negative value.
        let _ = s.variance_nx();
        s.push(i64::MIN);
        assert_eq!(s.n(), 3);
    }

    /// Merging two near-ceiling trackers must not wrap `N`.
    #[test]
    fn absorb_saturates_n() {
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        a.push(1);
        b.push(2);
        a.n = u64::MAX - 1;
        b.n = 3;
        a.absorb(&b);
        assert_eq!(a.n(), u64::MAX);
        assert_eq!(a.xsum(), 3);
    }

    #[test]
    fn reset_clears_everything() {
        let mut s = RunningStats::new();
        s.push(42);
        s.reset();
        assert_eq!(s, RunningStats::new());
    }

    proptest! {
        /// Non-negativity of the variance expression for any push-only
        /// state (Cauchy–Schwarz in integers).
        #[test]
        fn variance_never_negative(values in proptest::collection::vec(-10_000i64..10_000, 0..200)) {
            let mut s = RunningStats::new();
            for v in &values {
                s.push(*v);
            }
            // variance_nx already clamps; verify the raw expression too.
            let raw = (s.n() as i128) * (s.xsumsq() as i128)
                - (s.xsum() as i128) * (s.xsum() as i128);
            prop_assert!(raw >= 0);
        }

        /// Online state equals batch recomputation.
        #[test]
        fn online_equals_batch(values in proptest::collection::vec(-1_000i64..1_000, 1..100)) {
            let mut s = RunningStats::new();
            for v in &values {
                s.push(*v);
            }
            let sum: i64 = values.iter().sum();
            let sumsq: i64 = values.iter().map(|v| v * v).sum();
            prop_assert_eq!(s.n(), values.len() as u64);
            prop_assert_eq!(s.xsum(), sum);
            prop_assert_eq!(s.xsumsq(), sumsq);
            prop_assert_eq!(s.variance_nx(), oracle::variance_nx_exact(&values));
        }

        /// Push-then-replace equals pushing the final window contents in
        /// any order.
        #[test]
        fn replace_is_order_insensitive(
            window in proptest::collection::vec(0i64..100_000, 2..50),
            newval in 0i64..100_000,
        ) {
            let mut a = RunningStats::new();
            for v in &window {
                a.push(*v);
            }
            a.replace(window[0], newval);

            let mut b = RunningStats::new();
            b.push(newval);
            for v in &window[1..] {
                b.push(*v);
            }
            prop_assert_eq!(a.n(), b.n());
            prop_assert_eq!(a.xsum(), b.xsum());
            prop_assert_eq!(a.xsumsq(), b.xsumsq());
        }

        /// The integer outlier check agrees with the floating-point check
        /// up to the documented square-root approximation error: if the
        /// integer test fires at k, the float z-score is at least k/2
        /// (factor-2 envelope of approx_isqrt).
        #[test]
        fn outlier_check_consistent_with_float(
            values in proptest::collection::vec(1i64..1_000, 8..64),
            candidate in 1i64..10_000,
        ) {
            let mut s = RunningStats::new();
            for v in &values {
                s.push(*v);
            }
            if s.variance_nx() == 0 {
                return Ok(());
            }
            let n = values.len() as f64;
            let mean = values.iter().sum::<i64>() as f64 / n;
            let var = values.iter()
                .map(|&v| (v as f64 - mean).powi(2))
                .sum::<f64>() / n;
            let sd = var.sqrt();
            if sd == 0.0 {
                return Ok(());
            }
            let z = (candidate as f64 - mean) / sd;
            if s.is_upper_outlier(candidate, 2) {
                // sd(NX) = N * sd(X); integer test: N*x > Xsum + 2*sd(NX)
                // => z > 2 * approx/true >= 2 * (1/2) = 1.
                prop_assert!(z > 0.9, "z = {z}");
            }
        }
    }
}
