//! Reusable anomaly-check predicates over the tracked statistics.
//!
//! The paper's detection applications all reduce to integer comparisons
//! in the `NX` domain; this module packages the recurring ones as small
//! config structs so applications (and the `p4sim` program generator,
//! which mirrors them as action code) share one definition of each test.

use crate::running::RunningStats;
use serde::{Deserialize, Serialize};

/// Outcome of a check against one observed value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Verdict {
    /// The value is consistent with the tracked distribution.
    Normal,
    /// Upper-tail outlier (`N·x > Xsum + k·σ(NX)`).
    High,
    /// Lower-tail outlier (`N·x < Xsum − k·σ(NX)`).
    Low,
    /// Not enough history to judge (warm-up).
    Warmup,
}

impl Verdict {
    /// True for either outlier direction.
    #[must_use]
    pub fn is_anomalous(self) -> bool {
        matches!(self, Verdict::High | Verdict::Low)
    }
}

/// A mean ± k·σ outlier check with a warm-up threshold — the paper's
/// case-study detector ("rate higher than the mean of the stored
/// distribution plus two standard deviations").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OutlierCheck {
    /// Number of standard deviations for the band (paper default: 2).
    pub k: u32,
    /// Minimum `N` before verdicts other than [`Verdict::Warmup`].
    pub min_n: u64,
    /// Whether to alarm on the lower tail too (the paper's failure /
    /// stalled-flows use case watches for *drops* in activity).
    pub two_sided: bool,
}

impl Default for OutlierCheck {
    fn default() -> Self {
        Self {
            k: 2,
            min_n: 10,
            two_sided: false,
        }
    }
}

impl OutlierCheck {
    /// Judges value `x` against the tracked distribution.
    #[must_use]
    pub fn judge(&self, stats: &RunningStats, x: i64) -> Verdict {
        if stats.n() < self.min_n {
            return Verdict::Warmup;
        }
        if stats.is_upper_outlier(x, self.k) {
            return Verdict::High;
        }
        if self.two_sided && stats.is_lower_outlier(x, self.k) {
            return Verdict::Low;
        }
        Verdict::Normal
    }
}

/// A fixed-target rate check: does the tracked mean match `target`
/// within `k` standard deviations (`|Xsum − N·T| ≤ k·σ(NX)`)?
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RateCheck {
    /// The expected per-interval value `T`.
    pub target: i64,
    /// Allowed deviation in σ units.
    pub k: u32,
    /// Minimum `N` before a verdict.
    pub min_n: u64,
}

impl RateCheck {
    /// Judges the *distribution itself* (not a single value) against the
    /// target mean.
    #[must_use]
    pub fn judge(&self, stats: &RunningStats) -> Verdict {
        if stats.n() < self.min_n {
            return Verdict::Warmup;
        }
        if stats.mean_matches(self.target, self.k) {
            Verdict::Normal
        } else {
            // Direction of the mismatch.
            let actual = stats.xsum() as i128;
            let expect = (stats.n() as i128) * (self.target as i128);
            if actual > expect {
                Verdict::High
            } else {
                Verdict::Low
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn warm_stats() -> RunningStats {
        let mut s = RunningStats::new();
        for v in [100, 101, 99, 100, 102, 98, 100, 101, 99, 100, 100, 97] {
            s.push(v);
        }
        s
    }

    #[test]
    fn warmup_gate() {
        let mut s = RunningStats::new();
        s.push(100);
        let c = OutlierCheck::default();
        assert_eq!(c.judge(&s, 100_000), Verdict::Warmup);
        assert!(!c.judge(&s, 100_000).is_anomalous());
    }

    #[test]
    fn one_sided_default_ignores_low() {
        let s = warm_stats();
        let c = OutlierCheck::default();
        assert_eq!(c.judge(&s, 400), Verdict::High);
        assert_eq!(c.judge(&s, 100), Verdict::Normal);
        assert_eq!(c.judge(&s, 1), Verdict::Normal, "one-sided");
    }

    #[test]
    fn two_sided_flags_low() {
        let s = warm_stats();
        let c = OutlierCheck {
            two_sided: true,
            ..OutlierCheck::default()
        };
        assert_eq!(c.judge(&s, 1), Verdict::Low);
        assert!(c.judge(&s, 1).is_anomalous());
    }

    #[test]
    fn wider_band_tolerates_more() {
        let s = warm_stats();
        let tight = OutlierCheck {
            k: 1,
            ..OutlierCheck::default()
        };
        let loose = OutlierCheck {
            k: 30,
            ..OutlierCheck::default()
        };
        assert_eq!(tight.judge(&s, 110), Verdict::High);
        assert_eq!(loose.judge(&s, 110), Verdict::Normal);
    }

    #[test]
    fn rate_check_directions() {
        let s = warm_stats();
        let ok = RateCheck {
            target: 100,
            k: 2,
            min_n: 5,
        };
        assert_eq!(ok.judge(&s), Verdict::Normal);
        let low_target = RateCheck {
            target: 10,
            k: 2,
            min_n: 5,
        };
        assert_eq!(low_target.judge(&s), Verdict::High, "actual above target");
        let high_target = RateCheck {
            target: 500,
            k: 2,
            min_n: 5,
        };
        assert_eq!(high_target.judge(&s), Verdict::Low, "actual below target");
    }

    #[test]
    fn rate_check_warmup() {
        let s = RunningStats::new();
        let c = RateCheck {
            target: 100,
            k: 2,
            min_n: 1,
        };
        assert_eq!(c.judge(&s), Verdict::Warmup);
    }
}
