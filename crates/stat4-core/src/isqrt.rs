//! Approximate integer square root using only shifts and masks.
//!
//! This is the algorithm of the paper's Figure 2. P4 targets support
//! neither square roots nor the iteration a Newton/binary-search integer
//! square root would need, so the paper halves the *floating point
//! representation* of the operand instead:
//!
//! 1. Split the integer `y` into an exponent `e` (the position of its most
//!    significant set bit) and a mantissa `m` (the `e` bits below the MSB).
//! 2. Shift the concatenated bit string `e ‖ m` right by one. This halves
//!    the exponent, and the exponent's dropped low bit slides into the top
//!    of the mantissa, which is itself halved.
//! 3. Re-materialise an integer: set the MSB at the new exponent's value
//!    and copy the *leftmost* bits of the new mantissa below it.
//!
//! The result interpolates between consecutive powers `2^k`, e.g.
//! `√106 ≈ 10` (the paper's worked example). Accuracy improves quickly
//! with magnitude — see the paper's Table 2 and this crate's
//! `repro_table2` binary: the median error is ≈3% for `y ∈ [1,10]` and
//! below 0.05% for `y ∈ [100, 1000]`.
//!
//! In an actual pipeline the MSB scan is realised either as a cascade of
//! `if`s (bmv2) or as a TCAM longest-prefix match (hardware); the
//! [`p4sim`-level implementation](https://docs.rs) mirrors that. Here we
//! use `leading_zeros`, which is the same computation.

/// Approximate integer square root of `y` using the shift-based
/// exponent-halving algorithm of the paper (Figure 2).
///
/// Uses only data-plane-legal operations: MSB position, shifts, masks and
/// bitwise or. Exact for every even power of two (`approx_isqrt(2^{2k}) =
/// 2^k`) and exact on many perfect squares nearby; elsewhere it
/// interpolates linearly between `2^k` and `2^{k+1}`.
///
/// # Examples
///
/// ```
/// use stat4_core::isqrt::approx_isqrt;
/// assert_eq!(approx_isqrt(106), 10); // the paper's worked example
/// assert_eq!(approx_isqrt(0), 0);
/// assert_eq!(approx_isqrt(1), 1);
/// assert_eq!(approx_isqrt(9), 3);
/// assert_eq!(approx_isqrt(16), 4);
/// ```
#[must_use]
pub fn approx_isqrt(y: u64) -> u64 {
    if y == 0 {
        return 0;
    }
    // Exponent: position of the most significant set bit.
    let e = 63 - u64::from(y.leading_zeros());
    if e == 0 {
        // y == 1: exponent 0, no mantissa bits.
        return 1;
    }
    // Mantissa: the `e` bits below the MSB.
    let m_width = e;
    let m = y & ((1u64 << e) - 1);

    // Shift the concatenated (exponent ‖ mantissa) string right by one.
    // The exponent's low bit slides into the mantissa's top bit.
    let e1 = e >> 1;
    let m1 = ((e & 1) << (m_width - 1)) | (m >> 1);

    // Rebuild: MSB at position e1, leftmost e1 bits of m1 below it.
    let head = 1u64 << e1;
    if e1 == 0 {
        return head;
    }
    let top_bits = m1 >> (m_width - e1);
    head | top_bits
}

/// Splits `y` into the (exponent, mantissa-top-bits) pair the Figure 2
/// algorithm is built on: the exponent is the position of the most
/// significant set bit and the mantissa is truncated to its leftmost
/// `mantissa_bits` bits.
///
/// This is the decomposition [`approx_isqrt`] halves and the log-linear
/// telemetry histograms reuse for bucketing — both are "read the float
/// representation of an integer with shifts and masks" tricks, so they
/// share one implementation. For `y < 2`, where no mantissa bits exist
/// below the MSB, the mantissa is 0.
///
/// # Examples
///
/// ```
/// use stat4_core::isqrt::msb_decompose;
/// // 106 = 0b110_1010: MSB at 6, top-2 mantissa bits are 0b10.
/// assert_eq!(msb_decompose(106, 2), (6, 0b10));
/// assert_eq!(msb_decompose(1, 2), (0, 0));
/// ```
#[must_use]
pub fn msb_decompose(y: u64, mantissa_bits: u32) -> (u32, u64) {
    if y == 0 {
        return (0, 0);
    }
    let e = 63 - y.leading_zeros();
    if e == 0 {
        return (0, 0);
    }
    let take = mantissa_bits.min(e);
    // Leftmost `take` bits of the e-bit mantissa, left-aligned into the
    // requested width so the pair orders lexicographically.
    let m = ((y >> (e - take)) & ((1u64 << take) - 1)) << (mantissa_bits - take);
    (e, m)
}

/// Log-linear bucket index of `y` for a histogram with `2^mantissa_bits`
/// sub-buckets per power of two.
///
/// Values below `2^mantissa_bits` get exact unit-width buckets (the
/// linear region, `index == y`); above it, the bucket is the
/// concatenation `(exponent − mantissa_bits + 1) ‖ mantissa-top-bits`
/// from [`msb_decompose`] — exactly the exponent/mantissa bit string
/// that [`approx_isqrt`] shifts, reused as an index. Bucket width is
/// therefore ≤ `2^-mantissa_bits` of the value, i.e. a relative
/// resolution of 1/2^mantissa_bits.
///
/// The mapping is monotone and contiguous: index 0 holds value 0 and
/// each bucket's range starts where the previous one ends.
///
/// # Examples
///
/// ```
/// use stat4_core::isqrt::{log_linear_bucket, log_linear_lower_bound};
/// // Linear region: exact buckets.
/// assert_eq!(log_linear_bucket(3, 2), 3);
/// // 106 lands in the bucket covering [96, 112).
/// let b = log_linear_bucket(106, 2);
/// assert_eq!(log_linear_lower_bound(b, 2), 96);
/// assert_eq!(log_linear_lower_bound(b + 1, 2), 112);
/// ```
#[must_use]
pub fn log_linear_bucket(y: u64, mantissa_bits: u32) -> usize {
    assert!(mantissa_bits < 32, "mantissa_bits must be small");
    if y < (1u64 << mantissa_bits) {
        return y as usize;
    }
    let (e, m) = msb_decompose(y, mantissa_bits);
    (((u64::from(e) - u64::from(mantissa_bits) + 1) << mantissa_bits) + m) as usize
}

/// Smallest value mapped to `bucket` by [`log_linear_bucket`] — the
/// inverse of the decomposition: re-materialise the MSB at the encoded
/// exponent and place the mantissa bits below it.
///
/// `log_linear_lower_bound(b + 1, m) - 1` is the largest value of
/// bucket `b`. Saturates at `u64::MAX` for the (one past the last)
/// bucket index.
#[must_use]
pub fn log_linear_lower_bound(bucket: usize, mantissa_bits: u32) -> u64 {
    assert!(mantissa_bits < 32, "mantissa_bits must be small");
    let b = bucket as u64;
    if b < (1u64 << mantissa_bits) {
        return b;
    }
    let e = (b >> mantissa_bits) + u64::from(mantissa_bits) - 1;
    let m = b & ((1u64 << mantissa_bits) - 1);
    if e >= 64 {
        return u64::MAX;
    }
    (1u64 << e) | (m << (e - u64::from(mantissa_bits)))
}

/// Number of buckets [`log_linear_bucket`] can produce for u64 inputs —
/// the histogram array size that makes every index valid.
#[must_use]
pub fn log_linear_bucket_count(mantissa_bits: u32) -> usize {
    log_linear_bucket(u64::MAX, mantissa_bits) + 1
}

/// Exact floor integer square root, used as the validation oracle and by
/// control-plane code where full precision is wanted.
///
/// Computed with a branch-free-ish digit-by-digit method (no floating
/// point), exact for all `u64` inputs.
///
/// # Examples
///
/// ```
/// use stat4_core::isqrt::exact_isqrt;
/// assert_eq!(exact_isqrt(0), 0);
/// assert_eq!(exact_isqrt(99), 9);
/// assert_eq!(exact_isqrt(100), 10);
/// assert_eq!(exact_isqrt(u64::MAX), 4294967295);
/// ```
#[must_use]
pub fn exact_isqrt(y: u64) -> u64 {
    if y < 2 {
        return y;
    }
    // Digit-by-digit (binary restoring) method.
    let mut x = y;
    let mut result = 0u64;
    // Highest power of four <= y.
    let mut bit = 1u64 << ((63 - y.leading_zeros()) & !1);
    while bit != 0 {
        if x >= result + bit {
            x -= result + bit;
            result = (result >> 1) + bit;
        } else {
            result >>= 1;
        }
        bit >>= 2;
    }
    result
}

/// Relative error of the approximation against the *fractional* square
/// root, in percent, as the paper's Table 2 reports it.
///
/// Returns `0.0` for `y == 0`.
#[must_use]
pub fn approx_error_percent(y: u64) -> f64 {
    if y == 0 {
        return 0.0;
    }
    let truth = (y as f64).sqrt();
    let approx = approx_isqrt(y) as f64;
    ((approx - truth) / truth).abs() * 100.0
}

/// Controller-side refined square root in Q48.16 fixed point:
/// `refined_sqrt_q16(y) ≈ √y · 2¹⁶`.
///
/// The data plane can only afford [`approx_isqrt`] (shifts and masks,
/// a few percent of error); the *control plane* is a general-purpose
/// CPU and may divide. This routine seeds Newton's method with the
/// data-plane approximation and runs four integer iterations of
/// `x ← (x + y·2³²/x) / 2`, driving the error below the Q16
/// quantisation step — comfortably inside the paper's Table 2 claims
/// for the upper decades, which no integer-*output* variant of the
/// Figure 2 algorithm can reach (see `repro_table2`). It models the
/// paper's split: coarse σ in-switch for threshold checks, precise σ
/// recomputed from the exported `N`/`Xsum`/`Xsumsq` sums when the
/// controller investigates an alert.
///
/// # Examples
///
/// ```
/// use stat4_core::isqrt::refined_sqrt_q16;
/// assert_eq!(refined_sqrt_q16(0), 0);
/// assert_eq!(refined_sqrt_q16(1), 1 << 16);
/// assert_eq!(refined_sqrt_q16(4), 2 << 16);
/// // √2 · 2^16 = 92681.9… (floor-Newton may land an LSB or two low)
/// assert!((refined_sqrt_q16(2) as i64 - 92682).abs() <= 2);
/// ```
#[must_use]
pub fn refined_sqrt_q16(y: u64) -> u64 {
    if y == 0 {
        return 0;
    }
    // Seed from the data-plane approximation, lifted to Q16. Worst-case
    // seed error is ~42% (Table 2, first decade); each Newton step
    // roughly squares the relative error, so four steps reach the
    // fixed-point resolution from any seed.
    let mut x = approx_isqrt(y) << 16;
    let yq = u128::from(y) << 32;
    for _ in 0..4 {
        let cur = u128::from(x);
        x = ((cur + yq / cur) / 2) as u64;
    }
    x
}

/// Relative error of [`refined_sqrt_q16`] against the fractional square
/// root, in percent.
///
/// Returns `0.0` for `y == 0`.
#[must_use]
pub fn refined_error_percent(y: u64) -> f64 {
    if y == 0 {
        return 0.0;
    }
    let truth = (y as f64).sqrt();
    let refined = refined_sqrt_q16(y) as f64 / f64::from(1u32 << 16);
    ((refined - truth) / truth).abs() * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// The worked example of the paper's Figure 2: √106 ≈ 10.
    #[test]
    fn figure2_example() {
        assert_eq!(approx_isqrt(106), 10);
    }

    #[test]
    fn footnote_small_numbers() {
        // "√3 approximated to 1" (Table 2 footnote).
        assert_eq!(approx_isqrt(3), 1);
    }

    #[test]
    fn zero_and_one() {
        assert_eq!(approx_isqrt(0), 0);
        assert_eq!(approx_isqrt(1), 1);
    }

    #[test]
    fn exact_on_even_powers_of_two() {
        for k in 0..31u32 {
            let y = 1u64 << (2 * k);
            assert_eq!(approx_isqrt(y), 1u64 << k, "sqrt(2^{})", 2 * k);
        }
    }

    #[test]
    fn small_perfect_squares() {
        assert_eq!(approx_isqrt(4), 2);
        assert_eq!(approx_isqrt(9), 3);
        assert_eq!(approx_isqrt(16), 4);
        assert_eq!(approx_isqrt(64), 8);
        assert_eq!(approx_isqrt(256), 16);
    }

    #[test]
    fn exact_isqrt_matches_float_on_range() {
        for y in 0u64..100_000 {
            let f = (y as f64).sqrt().floor() as u64;
            assert_eq!(exact_isqrt(y), f, "y = {y}");
        }
    }

    #[test]
    fn exact_isqrt_extremes() {
        assert_eq!(exact_isqrt(u64::MAX), (1u64 << 32) - 1);
        let r = exact_isqrt(u64::MAX - 1);
        assert_eq!(r, (1u64 << 32) - 1);
    }

    /// Table 2's accuracy shape: the error decreases sharply from the
    /// first decade and then plateaus at the interpolation bound.
    ///
    /// Note: the paper's absolute Table 2 numbers (e.g. max 0.05% for
    /// 1000-10000) are not attainable by *any* integer-output variant of
    /// the Figure 2 algorithm — the linear `1 + f/2` interpolation alone
    /// has a ~6% worst case at `f -> 1`, and the paper's own footnote
    /// example (sqrt(3) ~= 1, a 42% error) exceeds its row maximum of
    /// 20%. We therefore assert the *measured* bands of the published
    /// algorithm (shape preserved: rapid decay then plateau); the
    /// `repro_table2` binary prints measured-vs-paper side by side.
    #[test]
    fn table2_error_bands() {
        let band = |lo: u64, hi: u64| -> (f64, f64) {
            let mut errs: Vec<f64> = (lo..=hi).map(approx_error_percent).collect();
            errs.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let median = errs[errs.len() / 2];
            let max = *errs.last().unwrap();
            (median, max)
        };
        // Measured: p50=10.6, max=42.3 (the footnote's sqrt(3) case).
        let (med, max) = band(1, 10);
        assert!(med <= 12.0, "median {med}");
        assert!(max <= 45.0, "max {max}");
        // Measured: p50=5.1, max=22.5.
        let (med, max) = band(10, 100);
        assert!(med <= 6.0, "median {med}");
        assert!(max <= 24.0, "max {max}");
        // Measured: p50=1.6, max=6.2.
        let (med, max) = band(100, 1000);
        assert!(med <= 2.0, "median {med}");
        assert!(max <= 7.0, "max {max}");
        // Measured: p50=2.0, max=6.1 — the plateau.
        let (med, max) = band(1000, 10_000);
        assert!(med <= 2.5, "median {med}");
        assert!(max <= 7.0, "max {max}");
        // Monotone decay of the median across the first three decades.
        let m1 = band(1, 10).0;
        let m2 = band(10, 100).0;
        let m3 = band(100, 1000).0;
        assert!(m1 > m2 && m2 > m3, "decay: {m1} {m2} {m3}");
    }

    /// The approximation never overshoots by more than the gap to the next
    /// power of two and is always within 50% below/above the true root for
    /// y >= 4 — a loose but universal sanity envelope.
    #[test]
    fn bounded_relative_error_everywhere() {
        for y in 4u64..200_000 {
            let err = approx_error_percent(y);
            assert!(err < 50.0, "y = {y} err = {err}");
        }
    }

    #[test]
    fn bucket_linear_region_is_exact() {
        for m in 0..6u32 {
            for y in 0..(1u64 << m) {
                assert_eq!(log_linear_bucket(y, m), y as usize, "m={m} y={y}");
                assert_eq!(log_linear_lower_bound(y as usize, m), y, "m={m} y={y}");
            }
        }
    }

    #[test]
    fn bucket_index_is_the_isqrt_bit_string() {
        // Above the linear region the bucket index is literally the
        // `(e − m + 1) ‖ mantissa` concatenation of the Figure 2
        // decomposition — the same bit string approx_isqrt shifts.
        let m = 3u32;
        for y in [8u64, 9, 100, 106, 1 << 20, u64::MAX] {
            let (e, f) = msb_decompose(y, m);
            let expect = (((u64::from(e) - u64::from(m) + 1) << m) + f) as usize;
            assert_eq!(log_linear_bucket(y, m), expect, "y={y}");
        }
    }

    #[test]
    fn bucket_count_covers_u64() {
        for m in 0..8u32 {
            let n = log_linear_bucket_count(m);
            assert_eq!(log_linear_bucket(u64::MAX, m), n - 1);
            // One-past-the-end lower bound saturates.
            assert_eq!(log_linear_lower_bound(n, m), u64::MAX);
        }
    }

    proptest! {
        /// Buckets tile the u64 line: the lower bound round-trips and
        /// the value sits inside [lower(b), lower(b+1)).
        #[test]
        fn bucket_bounds_contain_value(y in 0u64..u64::MAX, m in 0u32..7) {
            let b = log_linear_bucket(y, m);
            let lo = log_linear_lower_bound(b, m);
            let hi = log_linear_lower_bound(b + 1, m);
            prop_assert!(lo <= y, "lo {lo} > y {y}");
            prop_assert!(y < hi || hi == u64::MAX, "y {y} >= hi {hi}");
            prop_assert_eq!(log_linear_bucket(lo, m), b);
        }

        /// The mapping is monotone: larger values never land in
        /// smaller buckets.
        #[test]
        fn bucket_monotone(a in 0u64..u64::MAX, b in 0u64..u64::MAX, m in 0u32..7) {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(log_linear_bucket(lo, m) <= log_linear_bucket(hi, m));
        }

        /// Relative bucket width is bounded by 2^-m above the linear
        /// region (the histogram's quantile-error guarantee).
        #[test]
        fn bucket_relative_width(y in 1u64..(u64::MAX / 2), m in 1u32..7) {
            let b = log_linear_bucket(y, m);
            let lo = log_linear_lower_bound(b, m);
            let hi = log_linear_lower_bound(b + 1, m);
            let width = hi - lo;
            // Unit buckets are exact; wider buckets satisfy
            // width = 2^(e-m) ≤ lo · 2^-m.
            prop_assert!(
                width == 1 || (u128::from(width) << m) <= u128::from(lo),
                "width {width} lo {lo} m {m}"
            );
        }
    }

    proptest! {
        /// Monotone in the exponent: the MSB of the result is exactly
        /// half the MSB of the input (floor), i.e. the order of magnitude
        /// is always right.
        #[test]
        fn msb_is_halved(y in 1u64..u64::MAX) {
            let e = 63 - y.leading_zeros();
            let r = approx_isqrt(y);
            let re = 63 - r.leading_zeros();
            prop_assert_eq!(re, e / 2);
        }

        /// Result is within a factor of 2 of the exact root (tight bound
        /// implied by the interpolation construction).
        #[test]
        fn within_factor_two(y in 1u64..u64::MAX) {
            let exact = exact_isqrt(y);
            let approx = approx_isqrt(y);
            prop_assert!(approx <= exact.saturating_mul(2).max(1));
            prop_assert!(approx.saturating_mul(2) >= exact);
        }

        /// Never zero for non-zero input.
        #[test]
        fn positive_for_positive(y in 1u64..u64::MAX) {
            prop_assert!(approx_isqrt(y) >= 1);
        }

        /// Exact oracle really is a floor square root.
        #[test]
        fn exact_oracle_definition(y in 0u64..u64::MAX) {
            let r = exact_isqrt(y);
            let r2 = (r as u128) * (r as u128);
            let r1 = (r as u128 + 1) * (r as u128 + 1);
            prop_assert!(r2 <= y as u128);
            prop_assert!(r1 > y as u128);
        }
    }
}
