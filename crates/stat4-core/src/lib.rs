//! # stat4-core
//!
//! Integer-only online statistics for programmable data planes — the core
//! algorithms of *Stats 101 in P4: Towards In-Switch Anomaly Detection*
//! (Gao, Handley, Vissicchio — HotNets '21) as a portable Rust library.
//!
//! P4 pipelines cannot divide, take square roots, loop, or (on some
//! hardware targets) multiply two runtime values. The paper shows that
//! mean, variance, standard deviation, the median and arbitrary
//! percentiles of a distribution can nevertheless be tracked online, one
//! constant-work update per packet, by:
//!
//! 1. **Tracking the scaled distribution `NX`** instead of `X`
//!    ([`running::RunningStats`]): for `X = {x1..xN}` the mean of
//!    `NX = {N·x1..N·xN}` is exactly `Xsum = Σxi` and its variance is
//!    `σ²(NX) = N·Xsumsq − Xsum²` — both division-free.
//! 2. **Approximating `√y` with shifts** ([`isqrt::approx_isqrt`]):
//!    halve the exponent (MSB position) and interpolate with the top
//!    mantissa bits (paper Figure 2, accuracy in Table 2).
//! 3. **Constant-work frequency updates** ([`freq::FrequencyDist`]):
//!    bumping the count of value `k` updates the sum of squares as
//!    `Xsumsq += 2·f_k + 1`.
//! 4. **One-step-per-packet percentile tracking**
//!    ([`percentile::PercentileTracker`]): keep the mass strictly below
//!    and strictly above a marker and nudge the marker at most one value
//!    per packet (paper Figure 3, accuracy in Table 3).
//!
//! Everything in this crate is written in the *data-plane-legal* subset
//! of arithmetic — addition, subtraction, comparison, shifts and masks;
//! multiplications appear only where the paper's bmv2 target allows them
//! and each has a shift-approximated alternative in [`square`] for
//! multiply-less hardware targets. The floating-point *oracles* used to
//! validate accuracy live in [`oracle`] and are `#[cfg]`-free but clearly
//! separated: nothing in the online paths touches them.
//!
//! ## Quick start
//!
//! ```
//! use stat4_core::running::RunningStats;
//!
//! // Track packets-per-interval and flag outlier intervals.
//! let mut stats = RunningStats::new();
//! for rate in [100, 104, 98, 101, 99, 102, 97, 103] {
//!     stats.push(rate);
//! }
//! // "is 250 an outlier?" — integer-only check in the NX domain:
//! //    N·x  >  Xsum + 2·σ(NX)
//! assert!(stats.is_upper_outlier(250, 2));
//! assert!(!stats.is_upper_outlier(103, 2));
//! ```
#![forbid(unsafe_code)]


pub mod check;
pub mod cusum;
pub mod delta;
pub mod error;
pub mod ewma;
pub mod freq;
pub mod hll;
pub mod holtwinters;
pub mod isqrt;
pub mod merge;
pub mod oracle;
pub mod percentile;
pub mod running;
pub mod scale;
pub mod sketch;
pub mod square;
pub mod window;

pub use check::{OutlierCheck, RateCheck, Verdict};
pub use cusum::{CusumDetector, TwoSidedCusum};
pub use delta::{
    DeltaMergeable, DirtyJournal, FreqDelta, HllDelta, PercentileDelta, RunningDelta,
    SketchDelta,
};
pub use ewma::Ewma;
pub use error::{Stat4Error, Stat4Result};
pub use freq::FrequencyDist;
pub use hll::HyperLogLog;
pub use holtwinters::{Forecast, HoltWinters};
pub use isqrt::{
    approx_isqrt, exact_isqrt, log_linear_bucket, log_linear_bucket_count,
    log_linear_lower_bound, msb_decompose,
};
pub use merge::Mergeable;
pub use percentile::{MarkerRaw, PercentileTracker, Quantile};
pub use running::RunningStats;
pub use scale::Scale;
pub use sketch::CountMinSketch;
pub use square::{approx_square, approx_square_u64};
pub use window::WindowedDist;

/// Deterministic RNG for this crate's tests (kept here so test modules
/// don't each redeclare the seeding dance).
#[cfg(test)]
pub(crate) fn test_rng(seed: u64) -> impl rand::Rng {
    use rand::SeedableRng;
    rand::rngs::StdRng::seed_from_u64(seed)
}
