//! Count-min sketches: hashed counters for sparse domains.
//!
//! The paper's future-work section: "Stat4 currently allocates switch
//! resources for every possible value in the tracked distributions …
//! We will explore techniques to avoid reserving memory for
//! non-observed values (e.g., using hash-tables similarly to \[23\])
//! which would be especially beneficial for sparse distributions."
//! This module implements that direction: a count-min sketch whose rows
//! are exactly the register arrays a P4 target provides and whose
//! hashes model the CRC extern every target exposes (here: independent
//! multiply-shift hashes, one odd constant per row).
//!
//! Two update policies:
//!
//! - **plain**: increment every row — one register write per row, the
//!   standard CM guarantee (`estimate ≥ truth`, overshoot bounded by
//!   `N/w` per row with probability 1/2 each);
//! - **conservative**: raise only the rows at the current minimum —
//!   tighter estimates for the same memory, at the cost of a
//!   read-then-conditionally-write per row (still loop-free: the row
//!   count is a compile-time constant). The `sketch` bench quantifies
//!   the accuracy gap.

use crate::delta::{DeltaMergeable, DirtyJournal, SketchDelta};
use serde::{Deserialize, Serialize};

/// Per-row multiply-shift hash constants (odd, from the golden-ratio
/// family), modelling independent CRC polynomials. Public so the
/// pipeline realisation (`stat4-p4`) uses the same family and the two
/// implementations can be cross-validated cell for cell.
pub const ROW_SALTS: [u64; 8] = [
    0x9e37_79b9_7f4a_7c15,
    0xbf58_476d_1ce4_e5b9,
    0x94d0_49bb_1331_11eb,
    0xc2b2_ae3d_27d4_eb4f,
    0x1656_67b1_9e37_79f9,
    0x2545_f491_4f6c_dd1d,
    0x27d4_eb2f_1656_67c5,
    0x1171_5211_59e3_779b,
];

/// The multiply-shift row hash: the high bits of `key·salt` are well
/// mixed; masking keeps the column in range. This is the canonical
/// definition both the portable sketch and the pipeline `Hash`
/// primitive implement.
#[inline]
#[must_use]
pub fn row_hash(salt: u64, width_log2: u32, key: u64) -> u64 {
    let mask = (1u64 << width_log2) - 1;
    (key.wrapping_mul(salt | 1) >> (64 - width_log2 - 1)) & mask
}

/// A count-min sketch over `u64` keys.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CountMinSketch {
    rows: usize,
    /// Column mask (`width − 1`; width is a power of two so indexing is
    /// an AND, never a modulo).
    mask: u64,
    width_log2: u32,
    cells: Vec<u64>,
    /// Total increments (the stream length `N` in the error bound).
    total: u64,
    /// Cells touched since the last `take_delta` (dirty state is not
    /// part of the sketch's identity: excluded from eq and serde).
    #[serde(skip, default)]
    journal: DirtyJournal,
    /// `total` at the last `take_delta` — the delta's total baseline.
    #[serde(skip, default)]
    taken_total: u64,
}

/// Equality is over register state only — the dirty journal is
/// bookkeeping, not identity.
impl PartialEq for CountMinSketch {
    fn eq(&self, other: &Self) -> bool {
        self.rows == other.rows
            && self.mask == other.mask
            && self.width_log2 == other.width_log2
            && self.cells == other.cells
            && self.total == other.total
    }
}

impl Eq for CountMinSketch {}

impl CountMinSketch {
    /// Creates a sketch of `rows × 2^width_log2` counters.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is 0 or exceeds 8 (the salt table / realistic
    /// stage budget) or `width_log2` ≥ 28.
    #[must_use]
    pub fn new(rows: usize, width_log2: u32) -> Self {
        assert!((1..=ROW_SALTS.len()).contains(&rows), "rows out of range");
        assert!(width_log2 < 28, "width too large");
        let width = 1usize << width_log2;
        Self {
            rows,
            mask: (width - 1) as u64,
            width_log2,
            cells: vec![0; rows * width],
            total: 0,
            journal: DirtyJournal::new(),
            taken_total: 0,
        }
    }

    /// Rebuilds a sketch from a previously exported cell array and
    /// increment total (`cells()`, `total()`), as a crash-recovery
    /// checkpoint does. Geometry is validated the same way [`new`]
    /// validates it, plus the cell count must match `rows × 2^width_log2`.
    ///
    /// [`new`]: CountMinSketch::new
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range geometry or a cell array of the wrong
    /// length.
    #[must_use]
    pub fn from_raw(rows: usize, width_log2: u32, cells: Vec<u64>, total: u64) -> Self {
        assert!((1..=ROW_SALTS.len()).contains(&rows), "rows out of range");
        assert!(width_log2 < 28, "width too large");
        let width = 1usize << width_log2;
        assert_eq!(cells.len(), rows * width, "cell array length mismatch");
        Self {
            rows,
            mask: (width - 1) as u64,
            width_log2,
            cells,
            total,
            journal: DirtyJournal::new(),
            // Restored state ships nothing until the next rebuild.
            taken_total: total,
        }
    }

    /// Raw cell array in row-major order — the checkpoint export
    /// counterpart of [`CountMinSketch::from_raw`].
    #[must_use]
    pub fn cells(&self) -> &[u64] {
        &self.cells
    }

    /// The row/column cell index for `key` in `row`.
    #[inline]
    fn index(&self, row: usize, key: u64) -> usize {
        let h = row_hash(ROW_SALTS[row], self.width_log2, key);
        row * (self.mask as usize + 1) + h as usize
    }

    /// Plain update: add `amount` to every row.
    pub fn update(&mut self, key: u64, amount: u64) {
        for r in 0..self.rows {
            let i = self.index(r, key);
            self.journal.mark(i, self.cells[i]);
            self.cells[i] = self.cells[i].saturating_add(amount);
        }
        self.total += amount;
    }

    /// Conservative update: only rows currently at the minimum rise, to
    /// `min + amount`.
    pub fn update_conservative(&mut self, key: u64, amount: u64) {
        let new_min = self.estimate(key).saturating_add(amount);
        for r in 0..self.rows {
            let i = self.index(r, key);
            if self.cells[i] < new_min {
                self.journal.mark(i, self.cells[i]);
                self.cells[i] = new_min;
            }
        }
        self.total += amount;
    }

    /// Point estimate: the row minimum (never underestimates).
    #[must_use]
    pub fn estimate(&self, key: u64) -> u64 {
        (0..self.rows)
            .map(|r| self.cells[self.index(r, key)])
            .min()
            .unwrap_or(0)
    }

    /// Total increments observed.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Memory footprint in bytes (64-bit cells).
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        self.cells.len() * 8
    }

    /// Number of hash rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Log2 of the per-row width; two sketches merge iff `rows` and
    /// `width_log2` agree ([`crate::Mergeable::merge_from`]).
    #[must_use]
    pub fn width_log2(&self) -> u32 {
        self.width_log2
    }

    /// The classic heavy-hitter test in Stat4's integer style: is this
    /// key's estimated count above `fraction = 1/2^shift` of the total
    /// (`estimate << shift > total`)?
    #[must_use]
    pub fn is_heavy(&self, key: u64, shift: u32) -> bool {
        let est = self.estimate(key);
        (est << shift.min(63)) > self.total
    }

    /// Clears the sketch (and re-bases the dirty journal: a reset
    /// sketch has nothing to ship).
    pub fn reset(&mut self) {
        self.cells.fill(0);
        self.total = 0;
        self.journal.clear();
        self.taken_total = 0;
    }
}

impl DeltaMergeable for CountMinSketch {
    type Delta = SketchDelta;

    fn take_delta(&mut self) -> SketchDelta {
        let cells = self
            .journal
            .take()
            .into_iter()
            .map(|(idx, base)| (idx, base, self.cells[idx as usize]))
            .collect();
        let total_base = self.taken_total;
        self.taken_total = self.total;
        SketchDelta {
            cells,
            total_base,
            total_cur: self.total,
        }
    }

    fn apply_delta(&mut self, delta: &SketchDelta) -> crate::error::Stat4Result<()> {
        for &(idx, base, cur) in &delta.cells {
            let c = self.cells.get_mut(idx as usize).ok_or(
                crate::error::Stat4Error::MergeMismatch {
                    what: "sketch geometries",
                },
            )?;
            // Same saturating cellwise addition a full merge performs,
            // fed the window's increment. `forget`-style decrements do
            // not exist for sketches, but the signed form keeps the
            // apply total-ordering-free.
            *c = if cur >= base {
                c.saturating_add(cur - base)
            } else {
                c.saturating_sub(base - cur)
            };
        }
        // Plain add, mirroring `merge_from`'s `self.total += other.total`.
        self.total += delta.total_cur - delta.total_base;
        Ok(())
    }
}

impl crate::merge::Mergeable for CountMinSketch {
    /// Cellwise row addition. Both sketches hash with the same
    /// [`ROW_SALTS`] table, so equal geometry means equal cell
    /// assignment and the merged sketch equals a sequential sketch fed
    /// both streams of **plain** updates, bit for bit. Conservative
    /// updates are order-dependent (a row rises only when it is the
    /// current minimum), so merged conservative sketches keep the
    /// `estimate ≥ truth` guarantee but not bit-equality.
    fn merge_from(&mut self, other: &Self) -> crate::error::Stat4Result<()> {
        if self.rows != other.rows || self.width_log2 != other.width_log2 {
            return Err(crate::error::Stat4Error::MergeMismatch {
                what: "sketch geometries",
            });
        }
        for (c, o) in self.cells.iter_mut().zip(&other.cells) {
            *c = c.saturating_add(*o);
        }
        self.total += other.total;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::Rng;

    #[test]
    fn never_underestimates() {
        let mut s = CountMinSketch::new(4, 8);
        let keys: Vec<u64> = (0..500).map(|i| i * 7919).collect();
        for (i, &k) in keys.iter().enumerate() {
            s.update(k, (i as u64 % 5) + 1);
        }
        for (i, &k) in keys.iter().enumerate() {
            let truth = (i as u64 % 5) + 1;
            assert!(s.estimate(k) >= truth, "key {k}");
        }
    }

    #[test]
    fn exact_when_sparse() {
        // Few keys, wide sketch: no collisions expected.
        let mut s = CountMinSketch::new(4, 12);
        for k in 0..50u64 {
            for _ in 0..=k {
                s.update(k * 104729, 1);
            }
        }
        for k in 0..50u64 {
            assert_eq!(s.estimate(k * 104729), k + 1);
        }
    }

    #[test]
    fn conservative_no_worse_than_plain() {
        let mut rng = crate::test_rng(7);
        let keys: Vec<u64> = (0..2000).map(|_| rng.random_range(0..300u64) * 31) .collect();
        let mut plain = CountMinSketch::new(3, 6);
        let mut cons = CountMinSketch::new(3, 6);
        let mut truth = std::collections::HashMap::new();
        for &k in &keys {
            plain.update(k, 1);
            cons.update_conservative(k, 1);
            *truth.entry(k).or_insert(0u64) += 1;
        }
        let mut plain_err = 0u64;
        let mut cons_err = 0u64;
        for (&k, &t) in &truth {
            assert!(cons.estimate(k) >= t, "CM guarantee holds");
            plain_err += plain.estimate(k) - t;
            cons_err += cons.estimate(k) - t;
        }
        assert!(
            cons_err <= plain_err,
            "conservative {cons_err} <= plain {plain_err}"
        );
        assert!(plain_err > 0, "the narrow sketch does collide");
    }

    #[test]
    fn heavy_hitter_detection() {
        let mut s = CountMinSketch::new(4, 10);
        // 10k background over many keys, one key with 30% of traffic.
        let mut rng = crate::test_rng(3);
        for _ in 0..10_000 {
            s.update(rng.random_range(0..5_000u64) | 0x8000_0000, 1);
        }
        for _ in 0..4_300 {
            s.update(42, 1);
        }
        assert!(s.is_heavy(42, 2), "42 holds > 1/4 of the total");
        assert!(!s.is_heavy(77 | 0x8000_0000, 2));
    }

    #[test]
    fn from_raw_round_trips() {
        let mut s = CountMinSketch::new(4, 6);
        for k in 0..200u64 {
            s.update(k * 31, (k % 3) + 1);
        }
        let restored =
            CountMinSketch::from_raw(s.rows(), s.width_log2(), s.cells().to_vec(), s.total());
        assert_eq!(restored, s);
    }

    #[test]
    #[should_panic(expected = "cell array length mismatch")]
    fn from_raw_rejects_bad_length() {
        let _ = CountMinSketch::from_raw(2, 4, vec![0; 3], 0);
    }

    #[test]
    fn memory_model() {
        let s = CountMinSketch::new(4, 10);
        assert_eq!(s.memory_bytes(), 4 * 1024 * 8);
    }

    #[test]
    fn reset_clears() {
        let mut s = CountMinSketch::new(2, 4);
        s.update(9, 5);
        s.reset();
        assert_eq!(s.estimate(9), 0);
        assert_eq!(s.total(), 0);
    }

    #[test]
    #[should_panic(expected = "rows out of range")]
    fn zero_rows_rejected() {
        let _ = CountMinSketch::new(0, 4);
    }

    proptest! {
        /// CM guarantee under arbitrary streams, both update policies.
        #[test]
        fn overestimate_only(
            stream in proptest::collection::vec((0u64..64, 1u64..4), 1..400),
            conservative in any::<bool>(),
        ) {
            let mut s = CountMinSketch::new(3, 5);
            let mut truth = std::collections::HashMap::new();
            for &(k, amt) in &stream {
                if conservative {
                    s.update_conservative(k, amt);
                } else {
                    s.update(k, amt);
                }
                *truth.entry(k).or_insert(0u64) += amt;
            }
            for (&k, &t) in &truth {
                prop_assert!(s.estimate(k) >= t);
            }
            prop_assert_eq!(s.total(), stream.iter().map(|(_, a)| a).sum::<u64>());
        }
    }
}
