//! Error type shared by the fallible constructors and checked update paths.

use std::fmt;

/// Errors produced by `stat4-core` constructors and checked operations.
///
/// The per-packet hot paths (`push`, `observe`, `rebalance`) are
/// infallible by design — a data plane cannot signal errors mid-pipeline —
/// so errors only arise when *configuring* a tracker or when using the
/// explicitly checked `try_*` variants.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stat4Error {
    /// A value lies outside the configured domain of a frequency
    /// distribution or percentile tracker.
    ValueOutOfDomain {
        /// The offending value.
        value: i64,
        /// Inclusive lower bound of the domain.
        min: i64,
        /// Inclusive upper bound of the domain.
        max: i64,
    },
    /// A domain was configured with `min > max` or with a size that does
    /// not fit in memory-addressable counters.
    InvalidDomain {
        /// Inclusive lower bound requested.
        min: i64,
        /// Inclusive upper bound requested.
        max: i64,
    },
    /// A quantile was configured with a zero weight on either side.
    InvalidQuantile {
        /// Weight of the mass below the marker.
        low_weight: u32,
        /// Weight of the mass above the marker.
        high_weight: u32,
    },
    /// A windowed distribution was configured with zero intervals.
    EmptyWindow,
    /// An arithmetic update would overflow the counter width.
    Overflow {
        /// Human-readable description of the operation that overflowed.
        op: &'static str,
    },
    /// Two trackers with incompatible configurations (different domains,
    /// sketch geometries or quantile sets) were asked to merge.
    MergeMismatch {
        /// Which configuration aspect differed.
        what: &'static str,
    },
}

/// Convenience alias used throughout the crate.
pub type Stat4Result<T> = Result<T, Stat4Error>;

impl fmt::Display for Stat4Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Stat4Error::ValueOutOfDomain { value, min, max } => {
                write!(f, "value {value} outside tracked domain [{min}, {max}]")
            }
            Stat4Error::InvalidDomain { min, max } => {
                write!(f, "invalid domain [{min}, {max}]")
            }
            Stat4Error::InvalidQuantile {
                low_weight,
                high_weight,
            } => write!(
                f,
                "invalid quantile weights {low_weight}:{high_weight}; both must be non-zero"
            ),
            Stat4Error::EmptyWindow => write!(f, "windowed distribution needs >= 1 interval"),
            Stat4Error::Overflow { op } => write!(f, "integer overflow in {op}"),
            Stat4Error::MergeMismatch { what } => {
                write!(f, "cannot merge trackers with different {what}")
            }
        }
    }
}

impl std::error::Error for Stat4Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = Stat4Error::ValueOutOfDomain {
            value: 300,
            min: -255,
            max: 255,
        };
        let s = e.to_string();
        assert!(s.contains("300"));
        assert!(s.contains("-255"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>(_: &E) {}
        assert_err(&Stat4Error::EmptyWindow);
    }

    #[test]
    fn errors_compare_by_value() {
        assert_eq!(
            Stat4Error::Overflow { op: "sumsq" },
            Stat4Error::Overflow { op: "sumsq" }
        );
        assert_ne!(
            Stat4Error::EmptyWindow,
            Stat4Error::Overflow { op: "sumsq" }
        );
    }
}
