//! Integer CUSUM change detection.
//!
//! A second "in-switch statistical primitive" beyond the paper's
//! mean ± k·σ band (its future-work section invites exactly this
//! exploration). CUSUM accumulates evidence of a *persistent* shift
//! rather than judging each interval in isolation:
//!
//! ```text
//! S ← max(0, S + (x − target − slack))
//! alarm when S > threshold
//! ```
//!
//! Everything is addition, subtraction, comparison and `max` — the same
//! P4-legal vocabulary as the rest of the library. Against the paper's
//! band check, CUSUM trades a little detection latency on huge spikes
//! for the ability to catch *small sustained* shifts the band never
//! sees (a spike of +0.5σ per interval is invisible to a 2σ band but
//! accumulates linearly in S); the `ablation_cusum` binary quantifies
//! the trade.
//!
//! The `target`/`slack` parameters are either fixed by the controller
//! or derived from the tracked mean — [`CusumDetector::from_stats`]
//! uses the paper's own `Xsum`/`N` machinery to calibrate them (one
//! division *at the controller*, never in the data plane, matching the
//! paper's division of labour).

use crate::running::RunningStats;
use serde::{Deserialize, Serialize};

/// One-sided (upper) integer CUSUM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CusumDetector {
    /// Reference level subtracted from every sample.
    pub target: i64,
    /// Additional slack per sample (suppresses drift from noise).
    pub slack: i64,
    /// Alarm threshold on the accumulated sum.
    pub threshold: i64,
    /// The accumulated statistic `S`.
    s: i64,
    /// Alarms raised so far.
    pub alarms: u64,
}

impl CusumDetector {
    /// Creates a detector with explicit calibration.
    #[must_use]
    pub fn new(target: i64, slack: i64, threshold: i64) -> Self {
        Self {
            target,
            slack,
            threshold,
            s: 0,
            alarms: 0,
        }
    }

    /// Calibrates from tracked statistics (controller-side): `target` =
    /// the current mean, `slack` = `slack_sigmas/2` standard deviations,
    /// `threshold` = `threshold_sigmas` standard deviations — the
    /// textbook (k = σ/2, h = 4σ…5σ) tuning, computed from the same
    /// `Xsum`/`N`/`σ(NX)` registers the paper maintains.
    #[must_use]
    pub fn from_stats(stats: &RunningStats, slack_halves: i64, threshold_sigmas: i64) -> Self {
        let n = stats.n().max(1) as i64;
        let mean = stats.xsum() / n;
        let sd = (stats.sd_nx() as i64) / n; // σ(X) = σ(NX)/N
        Self::new(
            mean,
            (slack_halves * sd / 2).max(1),
            (threshold_sigmas * sd).max(4),
        )
    }

    /// Feeds one sample; returns true if the alarm fired (the statistic
    /// resets after an alarm).
    pub fn observe(&mut self, x: i64) -> bool {
        self.s = (self.s + x - self.target - self.slack).max(0);
        if self.s > self.threshold {
            self.alarms += 1;
            self.s = 0;
            true
        } else {
            false
        }
    }

    /// Current accumulated evidence.
    #[must_use]
    pub fn statistic(&self) -> i64 {
        self.s
    }

    /// Resets the accumulated statistic (not the calibration).
    pub fn reset(&mut self) {
        self.s = 0;
    }
}

/// Two-sided CUSUM built from two one-sided detectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TwoSidedCusum {
    /// Upper-shift detector.
    pub upper: CusumDetector,
    /// Lower-shift detector (operates on negated samples).
    pub lower: CusumDetector,
}

impl TwoSidedCusum {
    /// Creates a symmetric two-sided detector.
    #[must_use]
    pub fn new(target: i64, slack: i64, threshold: i64) -> Self {
        Self {
            upper: CusumDetector::new(target, slack, threshold),
            lower: CusumDetector::new(-target, slack, threshold),
        }
    }

    /// Feeds one sample; returns `(upper_alarm, lower_alarm)`.
    pub fn observe(&mut self, x: i64) -> (bool, bool) {
        (self.upper.observe(x), self.lower.observe(-x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn quiet_on_target_noise() {
        let mut c = CusumDetector::new(100, 3, 50);
        // Noise within +-slack around the target never accumulates.
        for i in 0..10_000i64 {
            let x = 100 + [0, 1, -1, 2, -2, 3, -3][(i % 7) as usize];
            assert!(!c.observe(x), "false alarm at {i}");
        }
        assert_eq!(c.alarms, 0);
    }

    #[test]
    fn detects_small_sustained_shift() {
        // +5 over target with slack 3: accumulates 2 per sample; the
        // 2-sigma band (sigma ~2) would need x >= 104+margin and sees
        // at most borderline evidence each interval.
        let mut c = CusumDetector::new(100, 3, 50);
        let mut fired_at = None;
        for i in 0..1000i64 {
            if c.observe(105) {
                fired_at = Some(i);
                break;
            }
        }
        let at = fired_at.expect("sustained shift detected");
        assert!(at <= 30, "accumulates ~2/sample: fired at {at}");
    }

    #[test]
    fn huge_spike_fires_quickly() {
        let mut c = CusumDetector::new(100, 3, 50);
        for _ in 0..20 {
            c.observe(100);
        }
        assert!(c.observe(1000), "one giant sample crosses the threshold");
        assert_eq!(c.statistic(), 0, "reset after alarm");
    }

    #[test]
    fn calibration_from_stats() {
        let mut s = RunningStats::new();
        for v in [100i64, 102, 98, 101, 99, 100, 103, 97, 100, 100] {
            s.push(v);
        }
        let c = CusumDetector::from_stats(&s, 1, 8);
        assert_eq!(c.target, s.xsum() / 10);
        assert!(c.slack >= 1);
        assert!(c.threshold >= 4);
    }

    #[test]
    fn two_sided_detects_both_directions() {
        let mut c = TwoSidedCusum::new(100, 3, 40);
        let mut up = false;
        for _ in 0..100 {
            up |= c.observe(110).0;
        }
        assert!(up, "upper shift detected");
        let mut c = TwoSidedCusum::new(100, 3, 40);
        let mut down = false;
        for _ in 0..100 {
            down |= c.observe(90).1;
        }
        assert!(down, "lower shift detected");
    }

    proptest! {
        /// The statistic never goes negative and never exceeds the
        /// threshold after observe returns.
        #[test]
        fn statistic_invariants(
            samples in proptest::collection::vec(0i64..10_000, 1..500),
            target in 0i64..5_000,
            slack in 1i64..100,
            threshold in 10i64..1_000,
        ) {
            let mut c = CusumDetector::new(target, slack, threshold);
            for &x in &samples {
                let _ = c.observe(x);
                prop_assert!(c.statistic() >= 0);
                prop_assert!(c.statistic() <= threshold);
            }
        }

        /// Detection delay is monotone in drift magnitude: feeding a
        /// constant supercritical level `target + slack + d`, a larger
        /// `d` never fires *later* than a smaller one (each sample
        /// accumulates exactly `d`, so the delay is `ceil((h+1)/d)`).
        #[test]
        fn detection_delay_monotone_in_drift(
            d_small in 1i64..50,
            d_extra in 1i64..50,
            target in 0i64..1_000,
            slack in 1i64..20,
            threshold in 10i64..500,
        ) {
            let delay_of = |d: i64| -> i64 {
                let mut c = CusumDetector::new(target, slack, threshold);
                for i in 1..10_000i64 {
                    if c.observe(target + slack + d) {
                        return i;
                    }
                }
                i64::MAX
            };
            let slow = delay_of(d_small);
            let fast = delay_of(d_small + d_extra);
            prop_assert!(slow < i64::MAX, "supercritical drift always fires");
            prop_assert!(
                fast <= slow,
                "drift {} fired at {}, larger drift {} at {}",
                d_small, slow, d_small + d_extra, fast
            );
        }

        /// Samples at or below target+slack never alarm.
        #[test]
        fn subcritical_never_alarms(
            deltas in proptest::collection::vec(-100i64..=0, 1..500),
        ) {
            let mut c = CusumDetector::new(50, 5, 100);
            for &d in &deltas {
                prop_assert!(!c.observe(50 + 5 + d));
            }
        }
    }
}
