//! Online median and percentile tracking, one marker step per packet.
//!
//! The paper (Sec. 2, Figure 3) tracks the median of a frequency
//! distribution `F = {f_1..f_N}` with three registers: the marker (the
//! current median estimate), the combined frequency of all values
//! *strictly below* it, and the combined frequency of all values
//! *strictly above* it. Each arriving value updates one frequency counter
//! and one of the two masses, then the marker is *rebalanced by at most
//! one value per packet* — P4 has no loops, and the paper explicitly
//! avoids recirculation. Skipping an empty cell therefore costs one
//! packet (Figure 3's example takes two packets to move the median from
//! 4 to 6).
//!
//! Arbitrary percentiles reuse the same machinery with a reweighted
//! balance test ([`Quantile`]): for the 90th percentile "the frequency of
//! values lower than `p` must stay nine times bigger than the frequency
//! of values higher than `p`".
//!
//! The one-step-per-packet rule bounds the estimation error by the
//! marker's lag; the paper's Table 3 quantifies it (≤1% once the
//! distribution stops being sparse). The `repro_table3` binary
//! regenerates that table; [`PercentileSet::rebalance_full`] exists for
//! the lag ablation (what an unconstrained, loop-capable tracker would
//! do).

use crate::delta::{DeltaMergeable, DirtyJournal, PercentileDelta};
use crate::error::{Stat4Error, Stat4Result};
use serde::{Deserialize, Serialize};

/// A quantile expressed as the integer balance ratio `low : high` the
/// marker must maintain — the form in which P4 can test it without
/// division.
///
/// The median is `1:1`; the 90th percentile is `9:1`; the 10th is `1:9`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Quantile {
    /// Weight of the mass below the marker.
    low_weight: u32,
    /// Weight of the mass above the marker.
    high_weight: u32,
}

impl Quantile {
    /// The median (50th percentile).
    #[must_use]
    pub const fn median() -> Self {
        Self {
            low_weight: 1,
            high_weight: 1,
        }
    }

    /// The `p`-th percentile, `1 <= p <= 99`, as the ratio `p : 100 − p`
    /// reduced to lowest terms.
    ///
    /// # Errors
    ///
    /// [`Stat4Error::InvalidQuantile`] if `p` is 0 or ≥ 100.
    pub fn percentile(p: u32) -> Stat4Result<Self> {
        if p == 0 || p >= 100 {
            return Err(Stat4Error::InvalidQuantile {
                low_weight: p,
                high_weight: 100 - p.min(100),
            });
        }
        Ok(Self::from_weights(p, 100 - p).expect("both weights non-zero"))
    }

    /// A quantile from explicit balance weights `low : high`.
    ///
    /// # Errors
    ///
    /// [`Stat4Error::InvalidQuantile`] if either weight is zero.
    pub fn from_weights(low_weight: u32, high_weight: u32) -> Stat4Result<Self> {
        if low_weight == 0 || high_weight == 0 {
            return Err(Stat4Error::InvalidQuantile {
                low_weight,
                high_weight,
            });
        }
        let g = gcd(low_weight, high_weight);
        Ok(Self {
            low_weight: low_weight / g,
            high_weight: high_weight / g,
        })
    }

    /// Weight applied to the low-side mass in the balance test.
    #[must_use]
    pub fn low_weight(&self) -> u32 {
        self.low_weight
    }

    /// Weight applied to the high-side mass in the balance test.
    #[must_use]
    pub fn high_weight(&self) -> u32 {
        self.high_weight
    }

    /// The fraction this quantile targets, for reporting (`0.5` for the
    /// median).
    #[must_use]
    pub fn fraction(&self) -> f64 {
        f64::from(self.low_weight) / f64::from(self.low_weight + self.high_weight)
    }
}

fn gcd(mut a: u32, mut b: u32) -> u32 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a.max(1)
}

/// One percentile marker: estimate position plus the two combined-mass
/// registers.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct Marker {
    q: Quantile,
    /// Index of the current estimate within the counts array; `None`
    /// until the first observation seeds it.
    pos: Option<usize>,
    /// Combined frequency of all cells strictly below `pos`.
    low: u64,
    /// Combined frequency of all cells strictly above `pos`.
    high: u64,
    /// Total marker movements — the paper suggests percentile *change
    /// rates* as an anomaly signal.
    moves: u64,
}

impl Marker {
    fn new(q: Quantile) -> Self {
        Self {
            q,
            pos: None,
            low: 0,
            high: 0,
            moves: 0,
        }
    }

    /// Accounts an arrival at `idx` into the side masses.
    fn record(&mut self, idx: usize) {
        match self.pos {
            None => self.pos = Some(idx),
            Some(p) => {
                if idx < p {
                    self.low += 1;
                } else if idx > p {
                    self.high += 1;
                }
            }
        }
    }

    /// Moves the marker at most one cell toward balance. Returns whether
    /// it moved.
    fn rebalance_step(&mut self, counts: &[u64]) -> bool {
        let Some(p) = self.pos else { return false };
        let f = u128::from(counts[p]);
        let low = u128::from(self.low);
        let high = u128::from(self.high);
        let a = u128::from(self.q.low_weight);
        let b = u128::from(self.q.high_weight);

        if a * high > b * (low + f) && p + 1 < counts.len() {
            // Too much mass above: step toward the higher values.
            self.low += counts[p];
            self.high -= counts[p + 1];
            self.pos = Some(p + 1);
            self.moves += 1;
            true
        } else if b * low > a * (high + f) && p > 0 {
            // Too much mass below: step toward the lower values.
            self.high += counts[p];
            self.low -= counts[p - 1];
            self.pos = Some(p - 1);
            self.moves += 1;
            true
        } else {
            false
        }
    }

    /// Rebuilds this marker from scratch over `counts`: seed at the
    /// lowest populated cell, then rebalance to the fixpoint. The
    /// landing cell is the *canonical* exact quantile — a deterministic
    /// function of the counters alone, unlike the path-dependent cell a
    /// one-step-per-packet marker occupies. `moves` is likewise reset to
    /// the rebuild's own step count, so the *whole* marker is a pure
    /// function of the counters — per-shard walk histories are
    /// partition-dependent and must not survive a merge (the conformance
    /// suite asserts merged state is shard-count invariant).
    fn rebuild(&mut self, counts: &[u64], total: u64) {
        self.moves = 0;
        if total == 0 {
            self.pos = None;
            self.low = 0;
            self.high = 0;
            return;
        }
        let start = counts
            .iter()
            .position(|&c| c > 0)
            .expect("total > 0 implies a populated cell");
        self.pos = Some(start);
        self.low = 0;
        self.high = total - counts[start];
        while self.rebalance_step(counts) {}
    }
}

/// The raw register state of one percentile marker, as exported by
/// [`PercentileSet::export_markers`] and reloaded through
/// [`PercentileSet::from_raw`]. Marker positions are path-dependent
/// (one step per packet), so a crash-recovery checkpoint must carry
/// them verbatim — rebuilding from the counters would land on the
/// canonical quantile instead of the cell the live walk occupies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MarkerRaw {
    /// Weight of the mass below the marker (see [`Quantile`]).
    pub low_weight: u32,
    /// Weight of the mass above the marker.
    pub high_weight: u32,
    /// Index of the current estimate, `None` before the first
    /// observation.
    pub pos: Option<usize>,
    /// Combined frequency strictly below `pos`.
    pub low: u64,
    /// Combined frequency strictly above `pos`.
    pub high: u64,
    /// Total marker movements.
    pub moves: u64,
}

/// A frequency-counter array with any number of percentile markers
/// tracked over it — the register layout a Stat4 switch allocates per
/// monitored distribution.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PercentileSet {
    min: i64,
    max: i64,
    counts: Vec<u64>,
    total: u64,
    markers: Vec<Marker>,
    /// Cells touched since the last `take_delta`; not part of the
    /// tracker's identity (excluded from eq and serde).
    #[serde(skip, default)]
    journal: DirtyJournal,
    /// `total` at the last `take_delta` — the delta's total baseline.
    #[serde(skip, default)]
    taken_total: u64,
}

/// Equality is over counters, total and markers only — the dirty
/// journal is bookkeeping, not identity.
impl PartialEq for PercentileSet {
    fn eq(&self, other: &Self) -> bool {
        self.min == other.min
            && self.max == other.max
            && self.counts == other.counts
            && self.total == other.total
            && self.markers == other.markers
    }
}

impl Eq for PercentileSet {}

impl PercentileSet {
    /// Creates an empty tracker over the inclusive domain `[min, max]`
    /// with the given quantile markers.
    ///
    /// # Errors
    ///
    /// [`Stat4Error::InvalidDomain`] for an empty or oversized domain.
    pub fn new(min: i64, max: i64, quantiles: &[Quantile]) -> Stat4Result<Self> {
        if min > max {
            return Err(Stat4Error::InvalidDomain { min, max });
        }
        let size = (max as i128) - (min as i128) + 1;
        if size > (1i128 << 32) {
            return Err(Stat4Error::InvalidDomain { min, max });
        }
        Ok(Self {
            min,
            max,
            counts: vec![0; size as usize],
            total: 0,
            markers: quantiles.iter().copied().map(Marker::new).collect(),
            journal: DirtyJournal::new(),
            taken_total: 0,
        })
    }

    /// Rebuilds a tracker from previously exported raw state
    /// ([`counts`], [`total`], [`export_markers`]), as a crash-recovery
    /// checkpoint does. Unlike a merge, markers are restored verbatim,
    /// preserving the path-dependent walk position.
    ///
    /// [`counts`]: PercentileSet::counts
    /// [`total`]: PercentileSet::total
    /// [`export_markers`]: PercentileSet::export_markers
    ///
    /// # Errors
    ///
    /// [`Stat4Error::InvalidDomain`] for a bad domain, a counts array of
    /// the wrong length, or a marker position outside the domain;
    /// [`Stat4Error::InvalidQuantile`] for zero marker weights.
    pub fn from_raw(
        min: i64,
        max: i64,
        counts: Vec<u64>,
        total: u64,
        markers: &[MarkerRaw],
    ) -> Stat4Result<Self> {
        if min > max {
            return Err(Stat4Error::InvalidDomain { min, max });
        }
        let size = (max as i128) - (min as i128) + 1;
        if size > (1i128 << 32) || counts.len() != size as usize {
            return Err(Stat4Error::InvalidDomain { min, max });
        }
        let markers = markers
            .iter()
            .map(|r| {
                if r.pos.is_some_and(|p| p >= counts.len()) {
                    return Err(Stat4Error::InvalidDomain { min, max });
                }
                Ok(Marker {
                    q: Quantile::from_weights(r.low_weight, r.high_weight)?,
                    pos: r.pos,
                    low: r.low,
                    high: r.high,
                    moves: r.moves,
                })
            })
            .collect::<Stat4Result<Vec<_>>>()?;
        Ok(Self {
            min,
            max,
            counts,
            total,
            markers,
            journal: DirtyJournal::new(),
            // Restored state ships nothing until the next rebuild.
            taken_total: total,
        })
    }

    /// Raw per-cell frequency counters — the checkpoint export
    /// counterpart of [`PercentileSet::from_raw`].
    #[must_use]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Raw marker state, verbatim, for checkpoint export.
    #[must_use]
    pub fn export_markers(&self) -> Vec<MarkerRaw> {
        self.markers
            .iter()
            .map(|m| MarkerRaw {
                low_weight: m.q.low_weight(),
                high_weight: m.q.high_weight(),
                pos: m.pos,
                low: m.low,
                high: m.high,
                moves: m.moves,
            })
            .collect()
    }

    /// Records one occurrence of `value` and rebalances every marker by
    /// at most one step — the complete per-packet work.
    ///
    /// # Errors
    ///
    /// [`Stat4Error::ValueOutOfDomain`] if outside the domain.
    pub fn observe(&mut self, value: i64) -> Stat4Result<()> {
        if value < self.min || value > self.max {
            return Err(Stat4Error::ValueOutOfDomain {
                value,
                min: self.min,
                max: self.max,
            });
        }
        let idx = (value - self.min) as usize;
        for m in &mut self.markers {
            m.record(idx);
        }
        self.journal.mark(idx, self.counts[idx]);
        self.counts[idx] += 1;
        self.total += 1;
        for m in &mut self.markers {
            m.rebalance_step(&self.counts);
        }
        Ok(())
    }

    /// Rebalances every marker until no marker can move — the
    /// loop-capable baseline for the step-size ablation. Returns the
    /// total number of steps taken.
    pub fn rebalance_full(&mut self) -> u64 {
        let mut steps = 0;
        for m in &mut self.markers {
            while m.rebalance_step(&self.counts) {
                steps += 1;
            }
        }
        steps
    }

    /// Current estimate of the `i`-th configured quantile, `None` before
    /// the first observation.
    #[must_use]
    pub fn estimate(&self, i: usize) -> Option<i64> {
        self.markers
            .get(i)
            .and_then(|m| m.pos)
            .map(|p| self.min + p as i64)
    }

    /// Total marker movements of the `i`-th quantile so far — the
    /// percentile *change rate* signal.
    #[must_use]
    pub fn moves(&self, i: usize) -> u64 {
        self.markers.get(i).map_or(0, |m| m.moves)
    }

    /// The quantile configured at slot `i`.
    #[must_use]
    pub fn quantile(&self, i: usize) -> Option<Quantile> {
        self.markers.get(i).map(|m| m.q)
    }

    /// Number of markers.
    #[must_use]
    pub fn marker_count(&self) -> usize {
        self.markers.len()
    }

    /// Total observations recorded.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Frequency of `value` (zero if out of domain).
    #[must_use]
    pub fn frequency(&self, value: i64) -> u64 {
        if value < self.min || value > self.max {
            0
        } else {
            self.counts[(value - self.min) as usize]
        }
    }

    /// Inclusive domain bounds.
    #[must_use]
    pub fn domain(&self) -> (i64, i64) {
        (self.min, self.max)
    }

    /// Verifies the register invariant `low + f(pos) + high == total` for
    /// every marker; used by tests and debug assertions.
    #[must_use]
    pub fn masses_consistent(&self) -> bool {
        self.markers.iter().all(|m| match m.pos {
            None => self.total == 0,
            Some(p) => m.low + self.counts[p] + m.high == self.total,
        })
    }

    /// Clears all counters and markers (and re-bases the dirty journal:
    /// a reset tracker has nothing to ship).
    pub fn reset(&mut self) {
        self.counts.fill(0);
        self.total = 0;
        for m in &mut self.markers {
            let q = m.q;
            *m = Marker::new(q);
        }
        self.journal.clear();
        self.taken_total = 0;
    }
}

impl DeltaMergeable for PercentileSet {
    type Delta = PercentileDelta;

    fn take_delta(&mut self) -> PercentileDelta {
        let cells = self
            .journal
            .take()
            .into_iter()
            .map(|(idx, base)| (idx, base, self.counts[idx as usize]))
            .collect();
        let total_base = self.taken_total;
        self.taken_total = self.total;
        PercentileDelta {
            cells,
            total_base,
            total_cur: self.total,
        }
    }

    /// Applies the count increments cellwise, then **rebuilds every
    /// marker** from the merged counters — the same canonicalisation
    /// [`crate::merge::Mergeable::merge_from`] performs. Because the
    /// rebuilt marker is a pure function of `(counts, total)`, the
    /// delta-applied tracker is bit-identical to a full merge no matter
    /// how many delta windows it absorbed.
    fn apply_delta(&mut self, delta: &PercentileDelta) -> Stat4Result<()> {
        for &(idx, base, cur) in &delta.cells {
            let c = self
                .counts
                .get_mut(idx as usize)
                .ok_or(Stat4Error::MergeMismatch {
                    what: "percentile domains",
                })?;
            *c = if cur >= base {
                c.saturating_add(cur - base)
            } else {
                c.saturating_sub(base - cur)
            };
        }
        let (tb, tc) = (delta.total_base, delta.total_cur);
        self.total = if tc >= tb {
            self.total.saturating_add(tc - tb)
        } else {
            self.total.saturating_sub(tb - tc)
        };
        for m in &mut self.markers {
            m.rebuild(&self.counts, self.total);
        }
        Ok(())
    }
}

impl crate::merge::Mergeable for PercentileSet {
    /// The documented non-mergeability fallback for percentile markers
    /// (see [`crate::merge`]): the per-cell counters merge exactly
    /// (cellwise addition — they are plain frequency registers), but a
    /// marker's position encodes the path it walked, one step per
    /// packet, and two such paths cannot be combined into the position
    /// a sequential marker would hold. Each marker is therefore
    /// **rebuilt** from the merged counters at the canonical exact
    /// quantile. The rebuilt estimate differs from a sequential
    /// tracker's by at most the sequential marker's own lag (paper
    /// Table 3 bounds it), and is identical for every shard count by
    /// construction. `moves` counters are likewise canonicalised — they
    /// become the rebuild's own step count, because per-shard walk
    /// histories are partition-dependent; a merged tracker is a pure
    /// function of its merged counters, nothing else.
    fn merge_from(&mut self, other: &Self) -> Stat4Result<()> {
        if self.min != other.min || self.max != other.max {
            return Err(Stat4Error::MergeMismatch {
                what: "percentile domains",
            });
        }
        if self.markers.len() != other.markers.len()
            || self
                .markers
                .iter()
                .zip(&other.markers)
                .any(|(a, b)| a.q != b.q)
        {
            return Err(Stat4Error::MergeMismatch {
                what: "quantile sets",
            });
        }
        for (c, o) in self.counts.iter_mut().zip(&other.counts) {
            *c = c.saturating_add(*o);
        }
        self.total = self.total.saturating_add(other.total);
        for m in &mut self.markers {
            m.rebuild(&self.counts, self.total);
        }
        Ok(())
    }
}

/// Convenience wrapper tracking a single quantile.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PercentileTracker {
    set: PercentileSet,
}

impl PercentileTracker {
    /// A median tracker over `[min, max]`.
    ///
    /// # Errors
    ///
    /// See [`PercentileSet::new`].
    pub fn median(min: i64, max: i64) -> Stat4Result<Self> {
        Ok(Self {
            set: PercentileSet::new(min, max, &[Quantile::median()])?,
        })
    }

    /// A tracker for quantile `q` over `[min, max]`.
    ///
    /// # Errors
    ///
    /// See [`PercentileSet::new`].
    pub fn new(min: i64, max: i64, q: Quantile) -> Stat4Result<Self> {
        Ok(Self {
            set: PercentileSet::new(min, max, &[q])?,
        })
    }

    /// Records one occurrence and rebalances (at most one marker step).
    ///
    /// # Errors
    ///
    /// [`Stat4Error::ValueOutOfDomain`] if outside the domain.
    pub fn observe(&mut self, value: i64) -> Stat4Result<()> {
        self.set.observe(value)
    }

    /// Current estimate, `None` before the first observation.
    #[must_use]
    pub fn estimate(&self) -> Option<i64> {
        self.set.estimate(0)
    }

    /// Marker movements so far.
    #[must_use]
    pub fn moves(&self) -> u64 {
        self.set.moves(0)
    }

    /// Total observations.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.set.total()
    }

    /// Access to the underlying set (e.g. for `rebalance_full`).
    pub fn as_set_mut(&mut self) -> &mut PercentileSet {
        &mut self.set
    }

    /// Read-only access to the underlying set.
    #[must_use]
    pub fn as_set(&self) -> &PercentileSet {
        &self.set
    }
}

impl crate::merge::Mergeable for PercentileTracker {
    /// Delegates to [`PercentileSet`]'s counts-merge + marker-rebuild
    /// fallback.
    fn merge_from(&mut self, other: &Self) -> Stat4Result<()> {
        self.set.merge_from(&other.set)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle;
    use proptest::prelude::*;

    /// The paper's Figure 3 at the register level. The pre-add state has
    /// frequencies {2:10, 3:2, 6:1, 9:5, 10:6} (Figure 3 without the
    /// added 8) and the marker one imbalance away from value 4. Feeding
    /// the 8 pushes the marker onto the empty cell 4; it then takes
    /// **two more steps** — one per packet — to skip the empty cells and
    /// settle on 6, exactly as the paper narrates ("it would therefore
    /// take us two packets to move the median from 4 to 6").
    #[test]
    fn figure3_register_transition() {
        let mut s = PercentileSet::new(1, 10, &[Quantile::median()]).unwrap();
        // Feed low values first so the marker seeds at 2, then the high
        // tail; the marker walks up as the high mass accumulates.
        for _ in 0..10 {
            s.observe(2).unwrap();
        }
        for _ in 0..2 {
            s.observe(3).unwrap();
        }
        s.observe(6).unwrap();
        for _ in 0..5 {
            s.observe(9).unwrap();
        }
        for _ in 0..6 {
            s.observe(10).unwrap();
        }
        assert!(s.masses_consistent());
        assert_eq!(s.estimate(0), Some(3), "pre-add resting point");

        // The paper's added packet with value 8.
        s.observe(8).unwrap();
        assert_eq!(s.estimate(0), Some(4), "one packet, one step: onto 4");
        assert!(s.masses_consistent());

        // Two further packets' worth of rebalancing: 4 -> 5 -> 6, the
        // empty cell 5 costing one packet, as in the paper.
        let steps = s.rebalance_full();
        assert_eq!(steps, 2, "two packets to move the median from 4 to 6");
        assert_eq!(s.estimate(0), Some(6));
        assert!(s.masses_consistent());
    }

    #[test]
    fn quantile_constructors() {
        assert_eq!(Quantile::median().fraction(), 0.5);
        let p90 = Quantile::percentile(90).unwrap();
        assert_eq!((p90.low_weight(), p90.high_weight()), (9, 1));
        let p10 = Quantile::percentile(10).unwrap();
        assert_eq!((p10.low_weight(), p10.high_weight()), (1, 9));
        let p75 = Quantile::percentile(75).unwrap();
        assert_eq!((p75.low_weight(), p75.high_weight()), (3, 1));
        assert!(Quantile::percentile(0).is_err());
        assert!(Quantile::percentile(100).is_err());
        assert!(Quantile::from_weights(0, 1).is_err());
    }

    #[test]
    fn median_of_uniform_converges() {
        let mut t = PercentileTracker::median(1, 100).unwrap();
        // Deterministic uniform sweep, repeated: true median = 50 (lower).
        for _ in 0..20 {
            for v in 1..=100 {
                t.observe(v).unwrap();
            }
        }
        let est = t.estimate().unwrap();
        assert!((49..=51).contains(&est), "estimate = {est}");
        assert!(t.as_set().masses_consistent());
    }

    #[test]
    fn p90_of_uniform_converges() {
        let mut t = PercentileTracker::new(1, 100, Quantile::percentile(90).unwrap()).unwrap();
        for _ in 0..20 {
            for v in 1..=100 {
                t.observe(v).unwrap();
            }
        }
        let est = t.estimate().unwrap();
        assert!((88..=92).contains(&est), "estimate = {est}");
    }

    #[test]
    fn constant_stream_pins_marker() {
        let mut t = PercentileTracker::median(0, 1000).unwrap();
        for _ in 0..500 {
            t.observe(700).unwrap();
        }
        assert_eq!(t.estimate(), Some(700));
        assert_eq!(t.moves(), 0, "marker seeded at the value, never moves");
    }

    #[test]
    fn one_step_per_packet_bound() {
        let mut t = PercentileTracker::median(0, 1000).unwrap();
        t.observe(0).unwrap();
        let mut prev = t.estimate().unwrap();
        // Hammer the far end: the marker may only walk one cell a packet.
        for _ in 0..100 {
            t.observe(1000).unwrap();
            let now = t.estimate().unwrap();
            assert!((now - prev).abs() <= 1);
            prev = now;
        }
        assert!(t.estimate().unwrap() <= 101);
    }

    #[test]
    fn multiple_markers_share_counts() {
        let qs = [
            Quantile::percentile(10).unwrap(),
            Quantile::median(),
            Quantile::percentile(90).unwrap(),
        ];
        let mut s = PercentileSet::new(1, 100, &qs).unwrap();
        for _ in 0..30 {
            for v in 1..=100 {
                s.observe(v).unwrap();
            }
        }
        let p10 = s.estimate(0).unwrap();
        let p50 = s.estimate(1).unwrap();
        let p90 = s.estimate(2).unwrap();
        assert!(p10 < p50 && p50 < p90);
        assert!((8..=12).contains(&p10), "p10 = {p10}");
        assert!((48..=52).contains(&p50), "p50 = {p50}");
        assert!((88..=92).contains(&p90), "p90 = {p90}");
        assert!(s.masses_consistent());
    }

    #[test]
    fn from_raw_round_trips_verbatim() {
        let qs = [Quantile::median(), Quantile::percentile(90).unwrap()];
        let mut s = PercentileSet::new(0, 50, &qs).unwrap();
        // An asymmetric stream leaves the markers mid-walk, away from
        // the canonical rebuilt position — exactly what a checkpoint
        // must preserve.
        s.observe(0).unwrap();
        for _ in 0..40 {
            s.observe(50).unwrap();
        }
        let restored = PercentileSet::from_raw(
            0,
            50,
            s.counts().to_vec(),
            s.total(),
            &s.export_markers(),
        )
        .unwrap();
        assert_eq!(restored, s);
    }

    #[test]
    fn from_raw_rejects_bad_state() {
        assert!(PercentileSet::from_raw(0, 10, vec![0; 5], 0, &[]).is_err());
        let bad_pos = MarkerRaw {
            low_weight: 1,
            high_weight: 1,
            pos: Some(11),
            low: 0,
            high: 0,
            moves: 0,
        };
        assert!(PercentileSet::from_raw(0, 10, vec![0; 11], 0, &[bad_pos]).is_err());
        let bad_q = MarkerRaw {
            low_weight: 0,
            high_weight: 1,
            pos: None,
            low: 0,
            high: 0,
            moves: 0,
        };
        assert!(PercentileSet::from_raw(0, 10, vec![0; 11], 0, &[bad_q]).is_err());
    }

    #[test]
    fn out_of_domain_rejected() {
        let mut t = PercentileTracker::median(0, 10).unwrap();
        assert!(t.observe(11).is_err());
        assert!(t.observe(-1).is_err());
        assert_eq!(t.estimate(), None);
    }

    #[test]
    fn reset_restores_empty() {
        let mut s = PercentileSet::new(0, 10, &[Quantile::median()]).unwrap();
        s.observe(5).unwrap();
        s.reset();
        assert_eq!(s.estimate(0), None);
        assert_eq!(s.total(), 0);
        assert!(s.masses_consistent());
    }

    #[test]
    fn moves_counts_marker_movement() {
        let mut t = PercentileTracker::median(0, 100).unwrap();
        t.observe(0).unwrap();
        for _ in 0..10 {
            t.observe(100).unwrap();
        }
        assert!(t.moves() >= 5, "moves = {}", t.moves());
    }

    proptest! {
        /// Register invariant after any observation sequence.
        #[test]
        fn masses_always_consistent(values in proptest::collection::vec(0i64..=50, 0..400)) {
            let mut s = PercentileSet::new(
                0, 50,
                &[Quantile::median(), Quantile::percentile(90).unwrap()],
            ).unwrap();
            for v in &values {
                s.observe(*v).unwrap();
            }
            prop_assert!(s.masses_consistent());
        }

        /// After full rebalance on a static distribution the marker is a
        /// valid nearest-rank median up to one occupied cell: the mass
        /// strictly below never exceeds half the total, and the mass
        /// strictly above never exceeds half the total plus the marker
        /// cell.
        #[test]
        fn full_rebalance_is_balanced(values in proptest::collection::vec(0i64..=30, 1..300)) {
            let mut s = PercentileSet::new(0, 30, &[Quantile::median()]).unwrap();
            for v in &values {
                s.observe(*v).unwrap();
            }
            s.rebalance_full();
            let p = s.estimate(0).unwrap();
            let below: u64 = (0..p).map(|v| s.frequency(v)).sum();
            let above: u64 = ((p + 1)..=30).map(|v| s.frequency(v)).sum();
            let f = s.frequency(p);
            // Balance conditions hold (no further step possible):
            prop_assert!(above <= below + f);
            prop_assert!(below <= above + f);
        }

        /// The fully rebalanced median is close to the exact oracle
        /// median: within the span of the marker's cell neighbourhood
        /// (empty cells between occupied ones can park the marker one
        /// occupied-run away from the oracle's nearest-rank choice).
        #[test]
        fn converged_median_near_oracle(values in proptest::collection::vec(0i64..=30, 5..300)) {
            let mut s = PercentileSet::new(0, 30, &[Quantile::median()]).unwrap();
            for v in &values {
                s.observe(*v).unwrap();
            }
            s.rebalance_full();
            let est = s.estimate(0).unwrap();
            let truth = oracle::median(values.as_slice()).unwrap();
            // The marker's balance-point can differ from nearest-rank by
            // at most one occupied cell in each direction; bound the rank
            // error instead of the value error.
            let below: u64 = (0..est).map(|v| s.frequency(v)).sum();
            let n = values.len() as u64;
            prop_assert!(below <= n / 2 + 1, "below = {below} n = {n} est = {est} truth = {truth}");
        }

        /// Marker estimates of distinct quantiles are ordered.
        #[test]
        fn quantile_estimates_ordered(values in proptest::collection::vec(0i64..=40, 50..400)) {
            let qs = [
                Quantile::percentile(25).unwrap(),
                Quantile::median(),
                Quantile::percentile(75).unwrap(),
            ];
            let mut s = PercentileSet::new(0, 40, &qs).unwrap();
            for v in &values {
                s.observe(*v).unwrap();
            }
            s.rebalance_full();
            let p25 = s.estimate(0).unwrap();
            let p50 = s.estimate(1).unwrap();
            let p75 = s.estimate(2).unwrap();
            prop_assert!(p25 <= p50 + 1 && p50 <= p75 + 1,
                "p25={p25} p50={p50} p75={p75}");
        }
    }
}
