//! Declarative fault specification and its textual grammar.

use std::fmt;

/// What happens to a shard thread when its fault fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardFaultKind {
    /// The shard sleeps for this many (simulated-work) nanoseconds
    /// before finishing its epoch; state survives.
    Stall {
        /// Stall duration in nanoseconds.
        ns: u64,
    },
    /// The shard thread panics mid-epoch; the supervisor quarantines it.
    Panic,
    /// The shard stops cleanly but permanently; quarantined like a
    /// panic but without unwinding.
    Crash,
}

/// One scheduled shard fault: shard `shard` misbehaves at epoch `epoch`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardFault {
    /// Shard index the fault applies to.
    pub shard: usize,
    /// Epoch (0-based) at which the fault fires.
    pub epoch: u64,
    /// What the shard does.
    pub kind: ShardFaultKind,
}

/// One scheduled single-event-upset: flip `bit` of `cell` in register
/// `register` just before packet `at_packet` is processed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeuFault {
    /// Register name as declared in the program.
    pub register: String,
    /// Cell index within the register array.
    pub cell: usize,
    /// Bit position to flip (0 = LSB).
    pub bit: u8,
    /// 0-based index of the packet before which the flip lands.
    pub at_packet: u64,
}

/// A window of forced misses on one table: every lookup of `table`
/// while the pipeline's packet counter is in `[from_packet, to_packet)`
/// misses regardless of installed entries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableMissWindow {
    /// Table name as declared in the program.
    pub table: String,
    /// First affected packet index (inclusive).
    pub from_packet: u64,
    /// First unaffected packet index (exclusive).
    pub to_packet: u64,
}

/// A link-flap window: data-plane frames sent while the simulation
/// clock is in `[from_ns, to_ns)` are silently dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkFlap {
    /// Window start in simulation nanoseconds (inclusive).
    pub from_ns: u64,
    /// Window end in simulation nanoseconds (exclusive).
    pub to_ns: u64,
}

/// Declarative description of every fault a run may experience.
///
/// Probabilities drive seeded per-ordinal decisions in
/// [`crate::FaultSchedule`]; the explicit lists fire unconditionally at
/// their scheduled points. The default spec is empty: every decision
/// method answers "no fault".
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultSpec {
    /// Probability in `[0, 1]` that any given control message (or
    /// replay epoch report) is dropped.
    pub ctrl_loss: f64,
    /// Probability in `[0, 1]` that a control message is duplicated.
    pub ctrl_dup: f64,
    /// Maximum extra control-message delay; actual jitter is uniform
    /// in `[0, ctrl_delay_ns]` per message. Delay variance is what
    /// reorders messages relative to their send order.
    pub ctrl_delay_ns: u64,
    /// Data-plane link-flap windows.
    pub link_flaps: Vec<LinkFlap>,
    /// Scheduled shard faults.
    pub shard_faults: Vec<ShardFault>,
    /// Scheduled register bit flips.
    pub seus: Vec<SeuFault>,
    /// Forced table-miss windows.
    pub table_miss: Vec<TableMissWindow>,
    /// Checkpoint-write ordinals (0-based) whose bytes are corrupted on
    /// the way to disk — the torn-write / bit-rot model. Whether a
    /// given ordinal is truncated or bit-flipped is a seeded decision
    /// ([`crate::FaultSchedule::ckpt_corruption`]).
    pub ckpt_corrupt: Vec<u64>,
    /// Probability in `[0, 1]` that a reconfigure (drain-swap)
    /// transaction is redelivered after committing — the duplicated
    /// control-plane request a swap path must reject as stale.
    pub reconfig_storm: f64,
}

/// A fault-spec string failed to parse; the message says where and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError(pub String);

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad fault spec: {}", self.0)
    }
}

impl std::error::Error for SpecError {}

fn err(entry: &str, why: impl fmt::Display) -> SpecError {
    SpecError(format!("`{entry}`: {why}"))
}

/// Parses `1500`, `250us`, `4ms`, `2s` into nanoseconds.
fn parse_duration_ns(s: &str) -> Result<u64, String> {
    let (digits, mult) = if let Some(d) = s.strip_suffix("us") {
        (d, 1_000)
    } else if let Some(d) = s.strip_suffix("ms") {
        (d, 1_000_000)
    } else if let Some(d) = s.strip_suffix("ns") {
        (d, 1)
    } else if let Some(d) = s.strip_suffix('s') {
        (d, 1_000_000_000)
    } else {
        (s, 1)
    };
    let n: u64 = digits
        .parse()
        .map_err(|_| format!("`{s}` is not a duration (expected e.g. `1500`, `250us`, `4ms`)"))?;
    n.checked_mul(mult)
        .ok_or_else(|| format!("duration `{s}` overflows u64 nanoseconds"))
}

fn parse_prob(entry: &str, v: &str) -> Result<f64, SpecError> {
    let p: f64 = v
        .parse()
        .map_err(|_| err(entry, format_args!("`{v}` is not a probability")))?;
    if !(0.0..=1.0).contains(&p) {
        return Err(err(entry, format_args!("probability {p} outside [0, 1]")));
    }
    Ok(p)
}

/// Parses `S@E` into (shard, epoch).
fn parse_shard_at(entry: &str, v: &str) -> Result<(usize, u64), SpecError> {
    let (s, e) = v
        .split_once('@')
        .ok_or_else(|| err(entry, "expected `<shard>@<epoch>`"))?;
    let shard = s
        .parse()
        .map_err(|_| err(entry, format_args!("`{s}` is not a shard index")))?;
    let epoch = e
        .parse()
        .map_err(|_| err(entry, format_args!("`{e}` is not an epoch number")))?;
    Ok((shard, epoch))
}

impl FaultSpec {
    /// Parses the comma-separated `key=value` grammar described in the
    /// crate docs. Whitespace around entries is ignored; keys may
    /// repeat (repeated probability keys keep the last value, repeated
    /// event keys accumulate). An empty string parses to the empty
    /// spec.
    pub fn parse(spec: &str) -> Result<Self, SpecError> {
        let mut out = Self::default();
        for entry in spec.split(',') {
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            let (key, val) = entry
                .split_once('=')
                .ok_or_else(|| err(entry, "expected `key=value`"))?;
            match key {
                "ctrl_loss" => out.ctrl_loss = parse_prob(entry, val)?,
                "ctrl_dup" => out.ctrl_dup = parse_prob(entry, val)?,
                "ctrl_delay_ns" | "ctrl_delay" => {
                    out.ctrl_delay_ns =
                        parse_duration_ns(val).map_err(|e| err(entry, e))?;
                }
                "link_flap" => {
                    let v = val
                        .strip_prefix('@')
                        .ok_or_else(|| err(entry, "expected `@<from>..<to>`"))?;
                    let (from, to) = v
                        .split_once("..")
                        .ok_or_else(|| err(entry, "expected `@<from>..<to>`"))?;
                    let from_ns = parse_duration_ns(from).map_err(|e| err(entry, e))?;
                    let to_ns = parse_duration_ns(to).map_err(|e| err(entry, e))?;
                    if from_ns >= to_ns {
                        return Err(err(entry, "flap window is empty"));
                    }
                    out.link_flaps.push(LinkFlap { from_ns, to_ns });
                }
                "shard_crash" | "shard_panic" => {
                    let (shard, epoch) = parse_shard_at(entry, val)?;
                    let kind = if key == "shard_crash" {
                        ShardFaultKind::Crash
                    } else {
                        ShardFaultKind::Panic
                    };
                    out.shard_faults.push(ShardFault { shard, epoch, kind });
                }
                "shard_stall" => {
                    let (head, dur) = val
                        .split_once(':')
                        .ok_or_else(|| err(entry, "expected `<shard>@<epoch>:<duration>`"))?;
                    let (shard, epoch) = parse_shard_at(entry, head)?;
                    let ns = parse_duration_ns(dur).map_err(|e| err(entry, e))?;
                    out.shard_faults.push(ShardFault {
                        shard,
                        epoch,
                        kind: ShardFaultKind::Stall { ns },
                    });
                }
                "seu" => {
                    // register:cell:bit@packet
                    let (head, pkt) = val
                        .split_once('@')
                        .ok_or_else(|| err(entry, "expected `<reg>:<cell>:<bit>@<packet>`"))?;
                    let mut parts = head.split(':');
                    let (reg, cell, bit) = match (parts.next(), parts.next(), parts.next(), parts.next())
                    {
                        (Some(r), Some(c), Some(b), None) => (r, c, b),
                        _ => return Err(err(entry, "expected `<reg>:<cell>:<bit>@<packet>`")),
                    };
                    let cell = cell
                        .parse()
                        .map_err(|_| err(entry, format_args!("`{cell}` is not a cell index")))?;
                    let bit: u8 = bit
                        .parse()
                        .map_err(|_| err(entry, format_args!("`{bit}` is not a bit position")))?;
                    if bit > 63 {
                        return Err(err(entry, format_args!("bit {bit} outside 0..=63")));
                    }
                    let at_packet = pkt
                        .parse()
                        .map_err(|_| err(entry, format_args!("`{pkt}` is not a packet index")))?;
                    out.seus.push(SeuFault {
                        register: reg.to_string(),
                        cell,
                        bit,
                        at_packet,
                    });
                }
                "table_miss" => {
                    let (table, range) = val
                        .split_once('@')
                        .ok_or_else(|| err(entry, "expected `<table>@<from>..<to>`"))?;
                    let (from, to) = range
                        .split_once("..")
                        .ok_or_else(|| err(entry, "expected `<table>@<from>..<to>`"))?;
                    let from_packet = from
                        .parse()
                        .map_err(|_| err(entry, format_args!("`{from}` is not a packet index")))?;
                    let to_packet = to
                        .parse()
                        .map_err(|_| err(entry, format_args!("`{to}` is not a packet index")))?;
                    if from_packet >= to_packet {
                        return Err(err(entry, "miss window is empty"));
                    }
                    out.table_miss.push(TableMissWindow {
                        table: table.to_string(),
                        from_packet,
                        to_packet,
                    });
                }
                "ckpt_corrupt" => {
                    let ordinal = val.parse().map_err(|_| {
                        err(entry, format_args!("`{val}` is not a checkpoint ordinal"))
                    })?;
                    out.ckpt_corrupt.push(ordinal);
                }
                "reconfig_storm" => out.reconfig_storm = parse_prob(entry, val)?,
                other => {
                    return Err(err(
                        entry,
                        format_args!(
                            "unknown fault key `{other}` (known: ctrl_loss, ctrl_dup, \
                             ctrl_delay_ns, link_flap, shard_crash, shard_panic, \
                             shard_stall, seu, table_miss, ckpt_corrupt, \
                             reconfig_storm)"
                        ),
                    ))
                }
            }
        }
        Ok(out)
    }

    /// True when the spec declares no faults at all — the schedule will
    /// never perturb anything and every layer takes its fast path.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ctrl_loss == 0.0
            && self.ctrl_dup == 0.0
            && self.ctrl_delay_ns == 0
            && self.link_flaps.is_empty()
            && self.shard_faults.is_empty()
            && self.seus.is_empty()
            && self.table_miss.is_empty()
            && self.ckpt_corrupt.is_empty()
            && self.reconfig_storm == 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_string_is_empty_spec() {
        let s = FaultSpec::parse("").unwrap();
        assert!(s.is_empty());
        assert_eq!(s, FaultSpec::default());
    }

    #[test]
    fn full_grammar_round_trips_into_fields() {
        let s = FaultSpec::parse(
            "ctrl_loss=0.30, ctrl_dup=0.05, ctrl_delay_ns=250us, \
             link_flap=@5ms..9ms, shard_crash=1@3, shard_panic=0@2, \
             shard_stall=2@4:1500000, seu=syn_count:12:7@40000, \
             table_miss=binding@100..200",
        )
        .unwrap();
        assert!((s.ctrl_loss - 0.30).abs() < 1e-12);
        assert!((s.ctrl_dup - 0.05).abs() < 1e-12);
        assert_eq!(s.ctrl_delay_ns, 250_000);
        assert_eq!(
            s.link_flaps,
            vec![LinkFlap { from_ns: 5_000_000, to_ns: 9_000_000 }]
        );
        assert_eq!(s.shard_faults.len(), 3);
        assert_eq!(
            s.shard_faults[0],
            ShardFault { shard: 1, epoch: 3, kind: ShardFaultKind::Crash }
        );
        assert_eq!(
            s.shard_faults[2],
            ShardFault { shard: 2, epoch: 4, kind: ShardFaultKind::Stall { ns: 1_500_000 } }
        );
        assert_eq!(
            s.seus,
            vec![SeuFault { register: "syn_count".into(), cell: 12, bit: 7, at_packet: 40_000 }]
        );
        assert_eq!(
            s.table_miss,
            vec![TableMissWindow { table: "binding".into(), from_packet: 100, to_packet: 200 }]
        );
        assert!(!s.is_empty());
    }

    #[test]
    fn bad_entries_are_rejected_with_context() {
        for bad in [
            "ctrl_loss=1.5",
            "ctrl_loss=maybe",
            "nonsense=1",
            "shard_crash=1",
            "shard_stall=1@2",
            "seu=reg:0:64@5",
            "seu=reg:0@5",
            "link_flap=@9ms..5ms",
            "table_miss=t@5..5",
            "ctrl_delay_ns=4x",
            "justakey",
            "ckpt_corrupt=soon",
            "reconfig_storm=2.0",
        ] {
            let e = FaultSpec::parse(bad).unwrap_err();
            assert!(e.to_string().contains("bad fault spec"), "{bad}: {e}");
        }
    }

    #[test]
    fn durations_accept_suffixes() {
        for (txt, ns) in [("1500", 1_500), ("250us", 250_000), ("4ms", 4_000_000), ("2s", 2_000_000_000), ("7ns", 7)] {
            let s = FaultSpec::parse(&format!("ctrl_delay_ns={txt}")).unwrap();
            assert_eq!(s.ctrl_delay_ns, ns, "{txt}");
        }
    }

    #[test]
    fn lifecycle_faults_parse_into_fields() {
        let s = FaultSpec::parse("ckpt_corrupt=2, ckpt_corrupt=5, reconfig_storm=0.75").unwrap();
        assert_eq!(s.ckpt_corrupt, vec![2, 5]);
        assert!((s.reconfig_storm - 0.75).abs() < 1e-12);
        assert!(!s.is_empty());
        assert!(!FaultSpec::parse("ckpt_corrupt=0").unwrap().is_empty());
        assert!(!FaultSpec::parse("reconfig_storm=1").unwrap().is_empty());
    }

    #[test]
    fn repeated_event_keys_accumulate() {
        let s = FaultSpec::parse("shard_crash=0@1,shard_crash=1@1,seu=a:0:1@2,seu=b:0:1@3").unwrap();
        assert_eq!(s.shard_faults.len(), 2);
        assert_eq!(s.seus.len(), 2);
    }
}
