//! Deterministic fault injection for the Stat4 reproduction.
//!
//! The paper's architecture keeps detection in the switch precisely
//! because the control loop is slow and lossy; this crate supplies the
//! lossiness. A [`FaultSpec`] declares *what* can fail (control-channel
//! loss/duplication/jitter, link flaps, shard stalls/panics/crashes,
//! register bit flips, table misses) and a [`FaultSchedule`] pairs the
//! spec with a seed to decide *when* each individual fault fires.
//!
//! # Determinism model
//!
//! Every probabilistic decision is a **stateless hash** of
//! `(seed, domain, ordinal)` rather than a draw from a sequential RNG
//! stream. The ordinal is a stable identifier of the decision point —
//! a control-message sequence number, an `(epoch, shard)` pair, a
//! packet index — so the answer to "does control message #17 get
//! dropped?" depends only on the seed and the number 17, never on how
//! many other decisions were made before it or on which thread asked.
//! Two runs of the same seeded schedule therefore make bit-identical
//! fault decisions even when thread interleaving differs, which is
//! what lets the cross-layer conformance suite assert byte-identical
//! outcomes across reruns.
//!
//! Deterministic *scheduled* faults (a crash of shard 1 at epoch 3, an
//! SEU in cell 12 of `syn_count` at packet 40 000) are listed
//! explicitly in the spec and do not consult the seed at all.
//!
//! # Spec grammar
//!
//! A spec is a comma-separated list of `key=value` entries; keys may
//! repeat to add more instances of the same fault:
//!
//! ```text
//! ctrl_loss=0.30              drop each control message w.p. 0.30
//! ctrl_dup=0.05               duplicate each control message w.p. 0.05
//! ctrl_delay_ns=200000        add uniform extra delay in [0, 200µs]
//! link_flap=@5ms..9ms         drop data-plane frames in [5ms, 9ms)
//! shard_crash=1@3             shard 1 crashes at epoch 3
//! shard_panic=0@2             shard 0 panics at epoch 2
//! shard_stall=2@4:1500000     shard 2 stalls 1.5ms at epoch 4
//! seu=syn_count:12:7@40000    flip bit 7 of cell 12 before packet 40000
//! table_miss=binding@100..200 table `binding` misses for packets 100..200
//! ckpt_corrupt=2              corrupt the 3rd checkpoint write (0-based)
//! reconfig_storm=0.5          redeliver each committed swap w.p. 0.5
//! ```
//!
//! Durations accept a bare nanosecond count or `us`/`ms`/`s` suffixes.
//! See [`FaultSpec::parse`] for the full grammar.

mod schedule;
mod spec;

pub use schedule::{domains, CkptCorruption, FaultSchedule};
pub use spec::{
    FaultSpec, LinkFlap, SeuFault, ShardFault, ShardFaultKind, SpecError, TableMissWindow,
};

/// SplitMix64 finalizer: the core bijective mixer behind every seeded
/// decision in this crate. Public so layers that need an extra derived
/// stream (e.g. jitter magnitudes) can stay consistent with it.
#[must_use]
pub const fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}
