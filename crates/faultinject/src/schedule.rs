//! Seeded, order-independent fault decisions over a [`FaultSpec`].

use crate::spec::{FaultSpec, SeuFault, ShardFaultKind, TableMissWindow};
use crate::splitmix64;

/// Decision domains: each kind of question hashes under its own domain
/// constant so e.g. "drop message #5?" and "duplicate message #5?" are
/// independent coin flips.
pub mod domains {
    /// Control-message drop decisions (ordinal = message sequence).
    pub const CTRL_DROP: u64 = 0x01;
    /// Control-message duplication decisions.
    pub const CTRL_DUP: u64 = 0x02;
    /// Control-message extra-delay magnitudes.
    pub const CTRL_DELAY: u64 = 0x03;
    /// Replay epoch-report drop decisions (ordinal = epoch).
    pub const REPORT_DROP: u64 = 0x04;
    /// Checkpoint-write corruption-mode decisions (ordinal = write).
    pub const CKPT_CORRUPT: u64 = 0x05;
    /// Reconfigure-transaction redelivery decisions (ordinal = swap).
    pub const RECONFIG_STORM: u64 = 0x06;
}

/// How a scheduled checkpoint corruption mangles the bytes on disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CkptCorruption {
    /// The write is cut short after `keep` bytes — a torn write.
    Truncate {
        /// Bytes that survive (may exceed the payload, in which case
        /// the injector clamps; the decision is made before the payload
        /// size is known).
        keep: u64,
    },
    /// One byte is flipped in place — bit rot past the page cache.
    FlipByte {
        /// Byte offset to XOR, modulo the payload length.
        offset: u64,
        /// The XOR mask (never zero).
        mask: u8,
    },
}

/// A [`FaultSpec`] bound to a seed: the queryable object every layer
/// consults. All methods are `&self` and pure — the schedule keeps no
/// mutable state, which is what makes decisions independent of call
/// order and thread interleaving (see the crate docs).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSchedule {
    spec: FaultSpec,
    seed: u64,
}

impl FaultSchedule {
    /// Binds a spec to a seed.
    #[must_use]
    pub fn new(spec: FaultSpec, seed: u64) -> Self {
        Self { spec, seed }
    }

    /// Parses a spec string and binds it to a seed.
    pub fn parse(spec: &str, seed: u64) -> Result<Self, crate::SpecError> {
        Ok(Self::new(FaultSpec::parse(spec)?, seed))
    }

    /// A schedule that never injects anything.
    #[must_use]
    pub fn none() -> Self {
        Self::new(FaultSpec::default(), 0)
    }

    /// The underlying spec.
    #[must_use]
    pub fn spec(&self) -> &FaultSpec {
        &self.spec
    }

    /// The seed this schedule was bound to.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// True when the schedule can never fire a fault.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.spec.is_empty()
    }

    /// The stateless decision hash: mixes `(seed, domain, ordinal)`
    /// through two SplitMix64 rounds.
    #[must_use]
    fn mix(&self, domain: u64, ordinal: u64) -> u64 {
        splitmix64(splitmix64(self.seed ^ domain.wrapping_mul(0xa076_1d64_78bd_642f)) ^ ordinal)
    }

    /// Maps the hash to a uniform value in `[0, 1)`.
    fn unit(&self, domain: u64, ordinal: u64) -> f64 {
        // 53 mantissa bits, the standard u64 -> f64 construction.
        (self.mix(domain, ordinal) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    // ---- control channel (netsim) -----------------------------------

    /// Should control message `seq` be dropped in flight?
    #[must_use]
    pub fn drop_control(&self, seq: u64) -> bool {
        self.spec.ctrl_loss > 0.0 && self.unit(domains::CTRL_DROP, seq) < self.spec.ctrl_loss
    }

    /// Should control message `seq` be delivered twice?
    #[must_use]
    pub fn duplicate_control(&self, seq: u64) -> bool {
        self.spec.ctrl_dup > 0.0 && self.unit(domains::CTRL_DUP, seq) < self.spec.ctrl_dup
    }

    /// Extra in-flight delay for control message `seq`, uniform in
    /// `[0, ctrl_delay_ns]`. Per-message variance is what reorders
    /// messages relative to their send order.
    #[must_use]
    pub fn control_extra_delay_ns(&self, seq: u64) -> u64 {
        if self.spec.ctrl_delay_ns == 0 {
            return 0;
        }
        self.mix(domains::CTRL_DELAY, seq) % (self.spec.ctrl_delay_ns + 1)
    }

    /// Is the data-plane link down (flapping) at simulation time `now_ns`?
    #[must_use]
    pub fn link_down_at(&self, now_ns: u64) -> bool {
        self.spec
            .link_flaps
            .iter()
            .any(|w| (w.from_ns..w.to_ns).contains(&now_ns))
    }

    // ---- replay -----------------------------------------------------

    /// The fault (if any) scheduled for `shard` at `epoch`. If several
    /// entries match, the most severe wins (crash > panic > stall) so a
    /// schedule can't soften itself by entry order.
    #[must_use]
    pub fn shard_fault(&self, epoch: u64, shard: usize) -> Option<ShardFaultKind> {
        self.spec
            .shard_faults
            .iter()
            .filter(|f| f.shard == shard && f.epoch == epoch)
            .map(|f| f.kind)
            .max_by_key(|k| match k {
                ShardFaultKind::Stall { .. } => 0,
                ShardFaultKind::Panic => 1,
                ShardFaultKind::Crash => 2,
            })
    }

    /// Should the epoch report for `epoch` be lost on its way to the
    /// detector? Models the controller failing to read the switch that
    /// interval; counters are cumulative, so the next delivered report
    /// carries the missed traffic forward.
    #[must_use]
    pub fn drop_epoch_report(&self, epoch: u64) -> bool {
        self.spec.ctrl_loss > 0.0 && self.unit(domains::REPORT_DROP, epoch) < self.spec.ctrl_loss
    }

    /// The corruption (if any) scheduled for checkpoint write
    /// `ordinal`. The *whether* comes from the spec's explicit ordinal
    /// list; the *how* (torn write vs. flipped byte, and where) is a
    /// seeded decision so different seeds exercise different damage.
    #[must_use]
    pub fn ckpt_corruption(&self, ordinal: u64) -> Option<CkptCorruption> {
        if !self.spec.ckpt_corrupt.contains(&ordinal) {
            return None;
        }
        let h = self.mix(domains::CKPT_CORRUPT, ordinal);
        Some(if h & 1 == 0 {
            CkptCorruption::Truncate { keep: (h >> 1) % 4096 }
        } else {
            CkptCorruption::FlipByte {
                offset: h >> 9,
                mask: (((h >> 1) & 0xff) as u8) | 1,
            }
        })
    }

    /// Should reconfigure (drain-swap) transaction `ordinal` be
    /// redelivered after it commits? A correct swap path rejects the
    /// replayed request as stale (generation already advanced).
    #[must_use]
    pub fn duplicate_reconfig(&self, ordinal: u64) -> bool {
        self.spec.reconfig_storm > 0.0
            && self.unit(domains::RECONFIG_STORM, ordinal) < self.spec.reconfig_storm
    }

    // ---- p4sim ------------------------------------------------------

    /// SEU events scheduled for the pipeline, in spec order.
    #[must_use]
    pub fn seu_events(&self) -> &[SeuFault] {
        &self.spec.seus
    }

    /// Forced table-miss windows.
    #[must_use]
    pub fn table_miss_windows(&self) -> &[TableMissWindow] {
        &self.spec.table_miss
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ShardFault;

    fn sched(spec: &str, seed: u64) -> FaultSchedule {
        FaultSchedule::parse(spec, seed).unwrap()
    }

    #[test]
    fn decisions_are_pure_functions_of_seed_and_ordinal() {
        let a = sched("ctrl_loss=0.3,ctrl_dup=0.1,ctrl_delay_ns=1ms", 42);
        let b = sched("ctrl_loss=0.3,ctrl_dup=0.1,ctrl_delay_ns=1ms", 42);
        // Query b in reverse and interleaved order: answers must match a.
        let fwd: Vec<_> = (0..1000)
            .map(|i| (a.drop_control(i), a.duplicate_control(i), a.control_extra_delay_ns(i)))
            .collect();
        let rev: Vec<_> = (0..1000)
            .rev()
            .map(|i| (b.drop_control(i), b.duplicate_control(i), b.control_extra_delay_ns(i)))
            .collect();
        for (i, f) in fwd.iter().enumerate() {
            assert_eq!(*f, rev[999 - i], "ordinal {i}");
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = sched("ctrl_loss=0.5", 1);
        let b = sched("ctrl_loss=0.5", 2);
        let da: Vec<bool> = (0..256).map(|i| a.drop_control(i)).collect();
        let db: Vec<bool> = (0..256).map(|i| b.drop_control(i)).collect();
        assert_ne!(da, db);
    }

    #[test]
    fn loss_rate_is_roughly_the_requested_probability() {
        let s = sched("ctrl_loss=0.30", 7);
        let dropped = (0..10_000).filter(|&i| s.drop_control(i)).count();
        let rate = dropped as f64 / 10_000.0;
        assert!((rate - 0.30).abs() < 0.02, "observed rate {rate}");
    }

    #[test]
    fn domains_are_independent() {
        let s = sched("ctrl_loss=0.5,ctrl_dup=0.5", 3);
        let drops: Vec<bool> = (0..512).map(|i| s.drop_control(i)).collect();
        let dups: Vec<bool> = (0..512).map(|i| s.duplicate_control(i)).collect();
        assert_ne!(drops, dups);
    }

    #[test]
    fn delay_stays_within_bound_and_varies() {
        let s = sched("ctrl_delay_ns=200us", 9);
        let delays: Vec<u64> = (0..256).map(|i| s.control_extra_delay_ns(i)).collect();
        assert!(delays.iter().all(|&d| d <= 200_000));
        assert!(delays.iter().any(|&d| d != delays[0]), "no variance");
        assert_eq!(sched("", 9).control_extra_delay_ns(5), 0);
    }

    #[test]
    fn shard_fault_lookup_and_severity_order() {
        let s = sched("shard_stall=1@3:1ms,shard_crash=1@3,shard_panic=0@2", 0);
        assert_eq!(s.shard_fault(3, 1), Some(ShardFaultKind::Crash));
        assert_eq!(s.shard_fault(2, 0), Some(ShardFaultKind::Panic));
        assert_eq!(s.shard_fault(2, 1), None);
        assert_eq!(s.shard_fault(3, 0), None);
        // Severity ordering is entry-order independent.
        let s2 = FaultSchedule::new(
            FaultSpec {
                shard_faults: vec![
                    ShardFault { shard: 0, epoch: 0, kind: ShardFaultKind::Crash },
                    ShardFault { shard: 0, epoch: 0, kind: ShardFaultKind::Stall { ns: 1 } },
                ],
                ..FaultSpec::default()
            },
            0,
        );
        assert_eq!(s2.shard_fault(0, 0), Some(ShardFaultKind::Crash));
    }

    #[test]
    fn link_flap_windows_are_half_open() {
        let s = sched("link_flap=@5ms..9ms", 0);
        assert!(!s.link_down_at(4_999_999));
        assert!(s.link_down_at(5_000_000));
        assert!(s.link_down_at(8_999_999));
        assert!(!s.link_down_at(9_000_000));
    }

    #[test]
    fn ckpt_corruption_fires_only_on_listed_ordinals() {
        let s = sched("ckpt_corrupt=1,ckpt_corrupt=4", 42);
        assert!(s.ckpt_corruption(0).is_none());
        assert!(s.ckpt_corruption(1).is_some());
        assert!(s.ckpt_corruption(2).is_none());
        assert!(s.ckpt_corruption(4).is_some());
        // Same seed, same damage; different seed may choose differently
        // but still fires on the listed ordinal.
        assert_eq!(s.ckpt_corruption(1), sched("ckpt_corrupt=1", 42).ckpt_corruption(1));
        assert!(sched("ckpt_corrupt=1", 7).ckpt_corruption(1).is_some());
        if let Some(CkptCorruption::FlipByte { mask, .. }) = s.ckpt_corruption(1) {
            assert_ne!(mask, 0);
        }
    }

    #[test]
    fn reconfig_storm_is_a_seeded_bernoulli() {
        let s = sched("reconfig_storm=1.0", 11);
        assert!(s.duplicate_reconfig(0));
        let p = sched("reconfig_storm=0.5", 11);
        let hits = (0..1000).filter(|&i| p.duplicate_reconfig(i)).count();
        assert!((400..600).contains(&hits), "hits = {hits}");
        assert!(!sched("", 11).duplicate_reconfig(0));
    }

    #[test]
    fn none_schedule_never_fires() {
        let s = FaultSchedule::none();
        assert!(s.is_empty());
        for i in 0..64 {
            assert!(!s.drop_control(i));
            assert!(!s.duplicate_control(i));
            assert_eq!(s.control_extra_delay_ns(i), 0);
            assert!(!s.drop_epoch_report(i));
            assert_eq!(s.shard_fault(i, i as usize), None);
        }
        assert!(s.seu_events().is_empty());
        assert!(s.table_miss_windows().is_empty());
    }
}
