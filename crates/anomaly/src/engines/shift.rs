//! The percentile-shift detector lifted behind the `Detector` trait.
//!
//! Signal binding: the canonical merged median frame length. The
//! streaming detector watches its own marker's per-interval movement;
//! at epoch granularity the engine feeds it the merged median estimate
//! once per interval, so a shift in the length distribution sends the
//! inner tracker's marker walking after the migrating estimate and
//! the movement band fires. Constant-size traffic keeps the estimate
//! pinned and the engine silent, which is what keeps it orthogonal to
//! the volume engines.

use crate::detector::{DetectionResult, Detector, SignalContext, Q16};
use crate::shift::{PercentileShiftDetector, ShiftConfig};
use std::any::Any;

/// Trait adapter over [`PercentileShiftDetector`].
#[derive(Debug)]
pub struct MedianShiftEngine {
    inner: PercentileShiftDetector,
}

impl MedianShiftEngine {
    /// Wraps a fresh shift detector (configure `domain` to the frame
    /// length range).
    #[must_use]
    pub fn new(cfg: ShiftConfig) -> Self {
        Self {
            inner: PercentileShiftDetector::new(cfg),
        }
    }

    /// The inner detector (alert stream, marker estimate).
    #[must_use]
    pub fn inner(&self) -> &PercentileShiftDetector {
        &self.inner
    }
}

impl Detector for MedianShiftEngine {
    fn name(&self) -> &'static str {
        "median_shift"
    }

    fn update(&mut self, ctx: &SignalContext<'_>) -> Option<DetectionResult> {
        let raised = self.inner.observe(ctx.at, ctx.median_len);
        let fired = raised.is_some();
        Some(DetectionResult {
            engine: self.name(),
            at: ctx.at,
            epoch: ctx.epoch,
            score: if fired { 2 * Q16 } else { 0 },
            weight: self.weight_q16(),
            confidence: if fired { Q16 } else { 0 },
            expected: self.inner.estimate().unwrap_or(0),
            observed: ctx.median_len,
            fired,
        })
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}
