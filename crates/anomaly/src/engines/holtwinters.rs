//! Holt-Winters seasonal forecasting engine.
//!
//! Signal binding: packets per interval. Periodic traffic breaks the
//! stationary-band assumption — the seasonal swing inflates σ until
//! the band tolerates anything, so an anomaly that preserves mean and
//! variance (a phase flip, a pattern permutation) sails through every
//! other volume engine. [`HoltWinters`] learns a per-phase forecast;
//! this engine keeps an integer EWMA of the absolute residual and
//! fires when a residual beats `k·dev + margin` — the same margined
//! band idiom as the rest of the repo, but over *forecast residuals*
//! instead of raw values.

use crate::detector::{confidence_q16, ratio_q16, DetectionResult, Detector, SignalContext};
use stat4_core::HoltWinters;
use std::any::Any;

/// Configuration.
#[derive(Debug, Clone, Copy)]
pub struct HoltWintersEngineConfig {
    /// Intervals per season (must divide the workload's period for a
    /// clean fit, but any value ≥ 2 is legal).
    pub season_len: usize,
    /// Level smoothing `α = 2^-alpha_shift`.
    pub alpha_shift: u32,
    /// Trend smoothing `β = 2^-beta_shift`.
    pub beta_shift: u32,
    /// Season smoothing `γ = 2^-gamma_shift`.
    pub gamma_shift: u32,
    /// Residual-deviation EWMA smoothing (`2^-dev_shift`).
    pub dev_shift: u32,
    /// Band width in deviation multiples.
    pub k: i64,
    /// Relative margin shift on the level (3 = 12.5%).
    pub margin_shift: u32,
    /// Margin floor in raw signal units.
    pub margin_floor: i64,
    /// Seasons after seeding before the engine may fire.
    pub warm_seasons: u64,
}

impl Default for HoltWintersEngineConfig {
    fn default() -> Self {
        Self {
            season_len: 16,
            alpha_shift: 2,
            beta_shift: 4,
            gamma_shift: 2,
            dev_shift: 2,
            k: 2,
            margin_shift: 3,
            margin_floor: 8,
            warm_seasons: 2,
        }
    }
}

/// Seasonal forecast-residual band over per-interval packet counts.
#[derive(Debug)]
pub struct HoltWintersEngine {
    cfg: HoltWintersEngineConfig,
    model: HoltWinters,
    /// EWMA of |residual| in Q16.
    dev_q16: i64,
    /// Post-seed intervals observed.
    observed: u64,
}

impl HoltWintersEngine {
    /// Creates an unseeded engine.
    ///
    /// # Panics
    ///
    /// Panics on a degenerate season length or smoothing shift.
    #[must_use]
    pub fn new(cfg: HoltWintersEngineConfig) -> Self {
        Self {
            model: HoltWinters::new(
                cfg.season_len,
                cfg.alpha_shift,
                cfg.beta_shift,
                cfg.gamma_shift,
            )
            .expect("valid Holt-Winters config"),
            dev_q16: 0,
            observed: 0,
            cfg,
        }
    }

    /// The underlying forecaster (level/trend/season inspection).
    #[must_use]
    pub fn model(&self) -> &HoltWinters {
        &self.model
    }
}

impl Detector for HoltWintersEngine {
    fn name(&self) -> &'static str {
        "holtwinters"
    }

    fn update(&mut self, ctx: &SignalContext<'_>) -> Option<DetectionResult> {
        let x = ctx.packets;
        let forecast = self.model.observe(x)?;
        self.observed += 1;
        let r = forecast.residual_q16.abs();
        let margin =
            (self.model.level_q16().abs() >> self.cfg.margin_shift).max(self.cfg.margin_floor << 16);
        let band = self.cfg.k * self.dev_q16 + margin;
        let score = ratio_q16(r, band.max(1));
        let warm = self.observed > self.cfg.warm_seasons * self.cfg.season_len as u64;
        let fired = warm && r > band;
        // Band first, then learn: the residual that fired must not
        // have widened its own band.
        self.dev_q16 += (r - self.dev_q16) >> self.cfg.dev_shift;
        Some(DetectionResult {
            engine: "holtwinters",
            at: ctx.at,
            epoch: ctx.epoch,
            score,
            weight: self.weight_q16(),
            confidence: confidence_q16(score),
            expected: forecast.forecast_q16 >> 16,
            observed: x,
            fired,
        })
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}
