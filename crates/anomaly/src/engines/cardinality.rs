//! HyperLogLog cardinality engine.
//!
//! Signal binding: the per-interval distinct-source estimate from the
//! replay's merged [`stat4_core::HyperLogLog`] registers. A spoofed
//! sweep (one packet per random source, constant total rate) keeps
//! every volume counter, kind share and frame length flat — only the
//! number of *distinct senders* moves. The engine runs the standard
//! margined spike band over the estimate stream, exactly the paper's
//! `N·x > Xsum + k·σ(NX) + margin` check with a different x.

use crate::detector::{confidence_q16, ratio_q16, DetectionResult, Detector, SignalContext};
use stat4_core::WindowedDist;
use std::any::Any;

/// Configuration.
#[derive(Debug, Clone, Copy)]
pub struct CardinalityEngineConfig {
    /// Window capacity in intervals.
    pub window: usize,
    /// σ multiplier.
    pub k: u32,
    /// Minimum closed intervals before alerts.
    pub min_intervals: usize,
    /// Relative margin shift (2 = 25%: HLL estimates carry ±3.3%
    /// noise at precision 10, so the band needs more headroom than
    /// exact counters get).
    pub margin_shift: u32,
    /// Margin floor (absolute, in the NX domain).
    pub margin_floor: u64,
}

impl Default for CardinalityEngineConfig {
    fn default() -> Self {
        Self {
            window: 64,
            k: 2,
            min_intervals: 10,
            margin_shift: 2,
            margin_floor: 8,
        }
    }
}

/// Margined spike band over per-interval distinct-source estimates.
#[derive(Debug)]
pub struct CardinalityEngine {
    cfg: CardinalityEngineConfig,
    window: WindowedDist,
}

impl CardinalityEngine {
    /// Creates an engine with an empty history window.
    ///
    /// # Panics
    ///
    /// Panics on a zero-capacity window.
    #[must_use]
    pub fn new(cfg: CardinalityEngineConfig) -> Self {
        Self {
            window: WindowedDist::new(cfg.window).expect("non-empty window"),
            cfg,
        }
    }

    /// The estimate history window.
    #[must_use]
    pub fn window(&self) -> &WindowedDist {
        &self.window
    }
}

impl Detector for CardinalityEngine {
    fn name(&self) -> &'static str {
        "cardinality"
    }

    fn update(&mut self, ctx: &SignalContext<'_>) -> Option<DetectionResult> {
        let x = ctx.distinct_sources;
        self.window.accumulate(x);
        let fired = self.window.is_spike_margined(
            x,
            self.cfg.k,
            self.cfg.min_intervals,
            self.cfg.margin_shift,
            self.cfg.margin_floor,
        );
        let stats = self.window.stats();
        let n = stats.n() as i64;
        let margin = stats.relative_margin(self.cfg.margin_shift, self.cfg.margin_floor);
        let bound = stats
            .xsum()
            .saturating_add(self.cfg.k as i64 * stats.sd_nx() as i64)
            .saturating_add(margin as i64);
        let score = ratio_q16(n.saturating_mul(x), bound);
        let expected = stats.xsum() / n.max(1);
        self.window.close_interval();
        Some(DetectionResult {
            engine: "cardinality",
            at: ctx.at,
            epoch: ctx.epoch,
            score,
            weight: self.weight_q16(),
            confidence: confidence_q16(score),
            expected,
            observed: x,
            fired,
        })
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}
