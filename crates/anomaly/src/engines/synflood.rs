//! The epoch SYN-flood detector lifted behind the `Detector` trait.
//!
//! The wrapper is deliberately thin: `update` forwards the context's
//! span-averaged SYN estimate and cumulative kind composition to
//! [`EpochSynFloodDetector::observe_interval`] with the exact call
//! sequence the replay engine used before the trait existed, so the
//! legacy alert stream (`alerts`, `detected_at`, `metrics`) is
//! bit-identical to the pre-refactor outputs — the behavior
//! preservation suite compares against captured goldens.

use crate::alerts::Alert;
use crate::detector::{DetectionResult, Detector, SignalContext, Q16};
use crate::epoch::EpochSynFloodDetector;
use crate::metrics::DetectorMetrics;
use crate::synflood::SynFloodConfig;
use std::any::Any;

/// Trait adapter over [`EpochSynFloodDetector`].
#[derive(Debug)]
pub struct SynFloodEngine {
    inner: EpochSynFloodDetector,
}

impl SynFloodEngine {
    /// Wraps a fresh epoch detector.
    #[must_use]
    pub fn new(cfg: SynFloodConfig) -> Self {
        Self {
            inner: EpochSynFloodDetector::new(cfg),
        }
    }

    /// The legacy alert stream (the replay outcome's alert source).
    #[must_use]
    pub fn alerts(&self) -> &[Alert] {
        &self.inner.alerts
    }

    /// First detection time, if any.
    #[must_use]
    pub fn detected_at(&self) -> Option<u64> {
        self.inner.detected_at
    }

    /// The inner detector's episode metrics.
    #[must_use]
    pub fn metrics(&self) -> &DetectorMetrics {
        &self.inner.metrics
    }
}

impl Detector for SynFloodEngine {
    fn name(&self) -> &'static str {
        "synflood"
    }

    fn update(&mut self, ctx: &SignalContext<'_>) -> Option<DetectionResult> {
        let raised = self.inner.observe_interval(ctx.at, ctx.syns, ctx.kinds);
        let fired = !raised.is_empty();
        let stats = self.inner.rate_stats();
        let expected = stats.xsum() / (stats.n().max(1) as i64);
        Some(DetectionResult {
            engine: self.name(),
            at: ctx.at,
            epoch: ctx.epoch,
            // The inner detector exposes booleans, not margins: report
            // a saturated score (see the module docs in `detector`).
            score: if fired { 2 * Q16 } else { 0 },
            weight: self.weight_q16(),
            confidence: if fired { Q16 } else { 0 },
            expected,
            observed: ctx.syns,
            fired,
        })
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}
