//! CUSUM change-point engine: `stat4-core::cusum` behind the trait.
//!
//! Signal binding: SYNs per interval. The band engines judge each
//! interval in isolation, so a sustained shift smaller than
//! `k·σ + margin` is invisible to them forever; CUSUM accumulates the
//! excess over `target + slack` across intervals and fires once the
//! sum crosses a threshold — the low-and-slow port scan detector.
//!
//! Calibration is self-serve: the first `warmup_intervals` delivered
//! reports feed a [`WindowedDist`] baseline, then
//! [`CusumDetector::from_stats`] freezes `target`/`slack`/`threshold`
//! from its moments (the one division at the controller). Until then
//! the engine returns `None` — it has no opinion.

use crate::detector::{confidence_q16, ratio_q16, DetectionResult, Detector, SignalContext};
use stat4_core::{CusumDetector, WindowedDist};
use std::any::Any;

/// Configuration.
#[derive(Debug, Clone, Copy)]
pub struct CusumEngineConfig {
    /// Delivered intervals used to calibrate target/slack/threshold.
    pub warmup_intervals: usize,
    /// Slack in half-σ units (1 = the textbook σ/2).
    pub slack_halves: i64,
    /// Threshold in σ units (textbook 4–5; higher = fewer false
    /// alarms on bursty integer-noise baselines).
    pub threshold_sigmas: i64,
}

impl Default for CusumEngineConfig {
    fn default() -> Self {
        Self {
            warmup_intervals: 32,
            slack_halves: 1,
            threshold_sigmas: 8,
        }
    }
}

/// Self-calibrating CUSUM over per-interval SYN counts.
#[derive(Debug)]
pub struct CusumEngine {
    cfg: CusumEngineConfig,
    baseline: WindowedDist,
    inner: Option<CusumDetector>,
}

impl CusumEngine {
    /// Creates an uncalibrated engine.
    ///
    /// # Panics
    ///
    /// Panics if `warmup_intervals` is zero.
    #[must_use]
    pub fn new(cfg: CusumEngineConfig) -> Self {
        Self {
            baseline: WindowedDist::new(cfg.warmup_intervals).expect("non-zero warmup"),
            inner: None,
            cfg,
        }
    }

    /// The frozen calibration, once warm.
    #[must_use]
    pub fn calibration(&self) -> Option<&CusumDetector> {
        self.inner.as_ref()
    }
}

impl Detector for CusumEngine {
    fn name(&self) -> &'static str {
        "cusum"
    }

    fn update(&mut self, ctx: &SignalContext<'_>) -> Option<DetectionResult> {
        let x = ctx.syns;
        let Some(c) = self.inner.as_mut() else {
            self.baseline.accumulate(x);
            self.baseline.close_interval();
            if self.baseline.len() >= self.cfg.warmup_intervals {
                self.inner = Some(CusumDetector::from_stats(
                    self.baseline.stats(),
                    self.cfg.slack_halves,
                    self.cfg.threshold_sigmas,
                ));
            }
            return None;
        };
        // Score the statistic *after* this sample, before the alarm
        // reset: projected/threshold ≥ 1 exactly when the alarm fires.
        let projected = (c.statistic() + x - c.target - c.slack).max(0);
        let score = ratio_q16(projected, c.threshold + 1);
        let target = c.target;
        let fired = c.observe(x);
        Some(DetectionResult {
            engine: "cusum",
            at: ctx.at,
            epoch: ctx.epoch,
            score,
            weight: self.weight_q16(),
            confidence: confidence_q16(score),
            expected: target,
            observed: x,
            fired,
        })
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}
