//! The ensemble's engines: one statistical check each.
//!
//! Three engines *lift* the pre-trait detectors behind
//! [`crate::detector::Detector`] without changing their behavior (the
//! behavior-preservation suite pins their alert streams bit-for-bit);
//! five are new, each covering a signal the seed detectors cannot see.
//!
//! | engine        | signal                    | catches                      |
//! |---------------|---------------------------|------------------------------|
//! | `synflood`    | SYNs/interval + kind share| volumetric SYN floods        |
//! | `stalled`     | packets/interval (lower)  | activity collapse            |
//! | `median_shift`| median frame length       | length-distribution shifts   |
//! | `cusum`       | SYNs/interval (cumulative)| low-and-slow scans           |
//! | `holtwinters` | packets/interval (seasonal)| phase drift in periodic load |
//! | `cardinality` | distinct sources/interval | spoofed-source sweeps        |
//! | `multiscale`  | packets at scales 1/4/16  | slow swells under the band   |
//! | `adaptive`    | mean frame length (EWMA)  | size regime changes          |

pub mod adaptive;
pub mod cardinality;
pub mod cusum;
pub mod holtwinters;
pub mod multiscale;
pub mod shift;
pub mod stalled;
pub mod synflood;

pub use adaptive::{AdaptiveEngine, AdaptiveEngineConfig};
pub use cardinality::{CardinalityEngine, CardinalityEngineConfig};
pub use cusum::{CusumEngine, CusumEngineConfig};
pub use holtwinters::{HoltWintersEngine, HoltWintersEngineConfig};
pub use multiscale::{MultiScaleEngine, MultiScaleEngineConfig};
pub use shift::MedianShiftEngine;
pub use stalled::StalledEngine;
pub use synflood::SynFloodEngine;

/// Engine configuration for the five new engines (the lifted three
/// reuse their detectors' own configs).
#[derive(Debug, Clone, Copy, Default)]
pub struct EnsembleConfig {
    /// CUSUM change-point engine.
    pub cusum: CusumEngineConfig,
    /// Holt-Winters seasonal forecaster.
    pub holtwinters: HoltWintersEngineConfig,
    /// HyperLogLog cardinality band.
    pub cardinality: CardinalityEngineConfig,
    /// Multi-scale volume bands.
    pub multiscale: MultiScaleEngineConfig,
    /// Adaptive 2σ EWMA band.
    pub adaptive: AdaptiveEngineConfig,
    /// Drilldown trigger policy (per-engine fires + combined score).
    pub trigger: crate::drilldown::EnsembleTriggerConfig,
}
