//! Multi-scale window engine.
//!
//! Signal binding: packets per interval, summed into tumbling windows
//! at scales 1, 4 and 16 intervals, each with its own margined spike
//! band. A swell too gradual for the single-interval band (each
//! interval inside the noise margin) still accumulates in the coarser
//! sums, where the margin is relatively smaller against the aggregated
//! drift — the volume analogue of what CUSUM does for SYNs, but
//! windowed and therefore self-forgetting. Upper-tail only: the
//! lower tail belongs to the stalled engine.

use crate::detector::{confidence_q16, ratio_q16, DetectionResult, Detector, SignalContext};
use stat4_core::WindowedDist;
use std::any::Any;

/// The tumbling-window scales, in intervals.
pub const SCALES: [u32; 3] = [1, 4, 16];

/// Configuration (shared by all scales).
#[derive(Debug, Clone, Copy)]
pub struct MultiScaleEngineConfig {
    /// Per-scale history window, in closed sums.
    pub window: usize,
    /// σ multiplier.
    pub k: u32,
    /// Minimum closed sums per scale before alerts.
    pub min_intervals: usize,
    /// Relative margin shift (3 = 12.5%).
    pub margin_shift: u32,
    /// Margin floor (absolute, in the NX domain).
    pub margin_floor: u64,
}

impl Default for MultiScaleEngineConfig {
    fn default() -> Self {
        Self {
            window: 32,
            k: 2,
            min_intervals: 8,
            margin_shift: 3,
            margin_floor: 4,
        }
    }
}

#[derive(Debug)]
struct ScaleState {
    scale: u32,
    acc: i64,
    count: u32,
    window: WindowedDist,
}

/// Tumbling-window spike bands at [`SCALES`].
#[derive(Debug)]
pub struct MultiScaleEngine {
    cfg: MultiScaleEngineConfig,
    scales: Vec<ScaleState>,
}

impl MultiScaleEngine {
    /// Creates an engine with empty windows at every scale.
    ///
    /// # Panics
    ///
    /// Panics on a zero-capacity window.
    #[must_use]
    pub fn new(cfg: MultiScaleEngineConfig) -> Self {
        Self {
            scales: SCALES
                .iter()
                .map(|s| ScaleState {
                    scale: *s,
                    acc: 0,
                    count: 0,
                    window: WindowedDist::new(cfg.window).expect("non-empty window"),
                })
                .collect(),
            cfg,
        }
    }
}

impl Detector for MultiScaleEngine {
    fn name(&self) -> &'static str {
        "multiscale"
    }

    fn update(&mut self, ctx: &SignalContext<'_>) -> Option<DetectionResult> {
        let x = ctx.packets;
        let mut best_score = 0i64;
        let mut expected = 0i64;
        let mut observed = x;
        let mut fired = false;
        for s in &mut self.scales {
            s.acc = s.acc.saturating_add(x);
            s.count += 1;
            if s.count < s.scale {
                continue;
            }
            let v = s.acc;
            s.acc = 0;
            s.count = 0;
            s.window.accumulate(v);
            fired |= s.window.is_spike_margined(
                v,
                self.cfg.k,
                self.cfg.min_intervals,
                self.cfg.margin_shift,
                self.cfg.margin_floor,
            );
            let stats = s.window.stats();
            let n = stats.n() as i64;
            let margin = stats.relative_margin(self.cfg.margin_shift, self.cfg.margin_floor);
            let bound = stats
                .xsum()
                .saturating_add(self.cfg.k as i64 * stats.sd_nx() as i64)
                .saturating_add(margin as i64);
            let score = ratio_q16(n.saturating_mul(v), bound);
            if score > best_score {
                best_score = score;
                expected = stats.xsum() / n.max(1);
                observed = v;
            }
            s.window.close_interval();
        }
        Some(DetectionResult {
            engine: "multiscale",
            at: ctx.at,
            epoch: ctx.epoch,
            score: best_score,
            weight: self.weight_q16(),
            confidence: confidence_q16(best_score),
            expected,
            observed,
            fired,
        })
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}
