//! The stalled-flow detector lifted behind the `Detector` trait.
//!
//! Signal binding: per-interval merged packet count as the activity
//! measure. The inner detector is timestamp-driven; each `update`
//! feeds it one bulk activity record at the interval end via
//! [`StalledFlowDetector::observe_activity_n`], whose equivalence to
//! repeated single observations is proptested in `stalled`. The inner
//! window therefore closes interval `e`'s value when interval `e+1`
//! reports — a one-interval judgement lag inherited from the
//! streaming design and preserved here.

use crate::detector::{DetectionResult, Detector, SignalContext, Q16};
use crate::stalled::{StalledFlowConfig, StalledFlowDetector};
use std::any::Any;

/// Trait adapter over [`StalledFlowDetector`].
#[derive(Debug)]
pub struct StalledEngine {
    inner: StalledFlowDetector,
}

impl StalledEngine {
    /// Wraps a fresh stalled-flow detector.
    #[must_use]
    pub fn new(cfg: StalledFlowConfig) -> Self {
        Self {
            inner: StalledFlowDetector::new(cfg),
        }
    }

    /// The inner detector (alert stream, window stats).
    #[must_use]
    pub fn inner(&self) -> &StalledFlowDetector {
        &self.inner
    }
}

impl Detector for StalledEngine {
    fn name(&self) -> &'static str {
        "stalled"
    }

    fn update(&mut self, ctx: &SignalContext<'_>) -> Option<DetectionResult> {
        let before = self.inner.alerts.len();
        let n = u64::try_from(ctx.packets.max(0)).unwrap_or(0);
        self.inner.observe_activity_n(ctx.at, n);
        let fired = self.inner.alerts.len() > before;
        let stats = self.inner.stats();
        let expected = stats.xsum() / (stats.n().max(1) as i64);
        Some(DetectionResult {
            engine: self.name(),
            at: ctx.at,
            epoch: ctx.epoch,
            score: if fired { 2 * Q16 } else { 0 },
            weight: self.weight_q16(),
            confidence: if fired { Q16 } else { 0 },
            expected,
            observed: ctx.packets,
            fired,
        })
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}
