//! Adaptive 2σ threshold engine.
//!
//! Signal binding: mean frame length per interval (`len_sum/packets`,
//! one controller-side division). Where the windowed bands carry a
//! fixed-capacity ring, this engine keeps two shift-based EWMAs — a
//! level and a mean absolute deviation — so its threshold
//! `level ± k·dev + margin` adapts continuously with O(1) state: the
//! RED/CoDel idiom applied to detection. It catches regime changes in
//! packet sizing (a flood of bare-header frames, a jumbo-frame leak)
//! that volume and cardinality engines cannot see, and its two-sided
//! band makes it the only length-sensitive engine besides the median
//! tracker — which watches the *median*, blind to tail-driven mean
//! shifts.

use crate::detector::{confidence_q16, ratio_q16, DetectionResult, Detector, SignalContext};
use stat4_core::Ewma;
use std::any::Any;

/// Configuration.
#[derive(Debug, Clone, Copy)]
pub struct AdaptiveEngineConfig {
    /// Level EWMA smoothing (`α = 2^-level_shift`).
    pub level_shift: u32,
    /// Deviation EWMA smoothing.
    pub dev_shift: u32,
    /// Band width in deviation multiples (the "2" in 2σ).
    pub k: i64,
    /// Relative margin shift on the level (3 = 12.5%).
    pub margin_shift: u32,
    /// Margin floor in raw signal units.
    pub margin_floor: i64,
    /// Intervals before the engine may fire.
    pub warmup_intervals: u64,
}

impl Default for AdaptiveEngineConfig {
    fn default() -> Self {
        Self {
            level_shift: 3,
            dev_shift: 3,
            k: 2,
            margin_shift: 3,
            margin_floor: 8,
            warmup_intervals: 10,
        }
    }
}

/// Two-sided adaptive EWMA band over per-interval mean frame length.
#[derive(Debug)]
pub struct AdaptiveEngine {
    cfg: AdaptiveEngineConfig,
    level: Ewma,
    dev: Ewma,
    seen: u64,
}

impl AdaptiveEngine {
    /// Creates an unseeded engine.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range EWMA shift.
    #[must_use]
    pub fn new(cfg: AdaptiveEngineConfig) -> Self {
        Self {
            level: Ewma::new(cfg.level_shift),
            dev: Ewma::new(cfg.dev_shift),
            seen: 0,
            cfg,
        }
    }

    /// Current adaptive level (the learned mean frame length).
    #[must_use]
    pub fn level(&self) -> i64 {
        self.level.value()
    }
}

impl Detector for AdaptiveEngine {
    fn name(&self) -> &'static str {
        "adaptive"
    }

    fn update(&mut self, ctx: &SignalContext<'_>) -> Option<DetectionResult> {
        let x = ctx.len_sum / ctx.packets.max(1);
        self.seen += 1;
        if !self.level.is_seeded() {
            self.level.update(x);
            self.dev.update(0);
            return None;
        }
        let lv = self.level.value();
        let d = (x - lv).abs();
        let margin = (lv.abs() >> self.cfg.margin_shift).max(self.cfg.margin_floor);
        let band = self.cfg.k * self.dev.value() + margin;
        let score = ratio_q16(d, band.max(1));
        let fired = self.seen > self.cfg.warmup_intervals && d > band;
        // Band first, then learn, so an outlier cannot hide inside the
        // band it just widened.
        self.level.update(x);
        self.dev.update(d);
        Some(DetectionResult {
            engine: "adaptive",
            at: ctx.at,
            epoch: ctx.epoch,
            score,
            weight: self.weight_q16(),
            confidence: confidence_q16(score),
            expected: lv,
            observed: x,
            fired,
        })
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}
