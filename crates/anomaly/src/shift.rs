//! Percentile-shift detection (paper Sec. 2: "we can track values and
//! change rates of percentiles, which may be indicative of anomalies").
//!
//! The marker of a [`stat4_core::percentile::PercentileTracker`] moves
//! at most one cell per packet; on a stable distribution it jitters
//! around the true quantile, so its *movement count per interval* is a
//! small, steady value. A distribution shift (a latency regression, a
//! load imbalance changing the shape rather than the volume of traffic)
//! sends the marker on a long walk — the per-interval movement count
//! spikes. Because the marker moves (or not) once per *packet*, raw
//! per-interval counts scale with traffic volume; to keep this detector
//! orthogonal to the rate detectors, the movement count is normalised
//! per packet (in 1/1024ths, one shift and one divide per interval
//! close — controller-side math, not data-plane) before it enters the
//! [`WindowedDist`]. The standard margined band over that normalised
//! rate turns "the median is on the move" into an alert using only
//! machinery the paper already has.

use crate::alerts::Alert;
use stat4_core::percentile::{PercentileTracker, Quantile};
use stat4_core::window::WindowedDist;

/// Configuration.
#[derive(Debug, Clone, Copy)]
pub struct ShiftConfig {
    /// Tracked quantile.
    pub quantile: Quantile,
    /// Value domain (inclusive).
    pub domain: (i64, i64),
    /// Interval length (ns) for the movement-rate window.
    pub interval_ns: u64,
    /// Window capacity in intervals.
    pub window: usize,
    /// σ multiplier for the movement-rate band.
    pub k: u32,
    /// Minimum closed intervals before alerts.
    pub min_intervals: usize,
}

impl Default for ShiftConfig {
    fn default() -> Self {
        Self {
            quantile: Quantile::median(),
            domain: (0, 1023),
            interval_ns: 10_000_000,
            window: 32,
            k: 2,
            min_intervals: 10,
        }
    }
}

/// Streaming percentile-shift detector.
#[derive(Debug)]
pub struct PercentileShiftDetector {
    cfg: ShiftConfig,
    tracker: PercentileTracker,
    moves_window: WindowedDist,
    last_moves: u64,
    /// Marker moves accumulated in the still-open interval.
    moves_in_interval: u64,
    /// Packets observed in the still-open interval.
    pkts_in_interval: u64,
    current_interval: Option<u64>,
    /// Alerts raised.
    pub alerts: Vec<Alert>,
    /// First alert time.
    pub detected_at: Option<u64>,
}

impl PercentileShiftDetector {
    /// Creates a detector.
    ///
    /// # Panics
    ///
    /// Panics on a degenerate domain or window.
    #[must_use]
    pub fn new(cfg: ShiftConfig) -> Self {
        Self {
            tracker: PercentileTracker::new(cfg.domain.0, cfg.domain.1, cfg.quantile)
                .expect("valid domain"),
            moves_window: WindowedDist::new(cfg.window).expect("non-empty window"),
            last_moves: 0,
            moves_in_interval: 0,
            pkts_in_interval: 0,
            current_interval: None,
            alerts: Vec::new(),
            detected_at: None,
            cfg,
        }
    }

    /// Feeds one observed value at time `at`; returns an alert when the
    /// interval that just closed saw an outlying amount of marker
    /// movement.
    pub fn observe(&mut self, at: u64, value: i64) -> Option<Alert> {
        let mut raised = None;
        let ivl = at / self.cfg.interval_ns;
        match self.current_interval {
            None => self.current_interval = Some(ivl),
            Some(cur) if cur != ivl => {
                // Per-packet movement rate of the ended interval, in
                // 1/1024ths: volume changes cancel out, shape changes
                // do not. The interval became current on a packet, so
                // pkts_in_interval >= 1.
                let moved =
                    ((self.moves_in_interval << 10) / self.pkts_in_interval.max(1)) as i64;
                self.moves_in_interval = 0;
                self.pkts_in_interval = 0;
                self.moves_window.accumulate(moved);
                let shift = self.moves_window.is_spike_margined(
                    moved,
                    self.cfg.k,
                    self.cfg.min_intervals,
                    3,
                    4,
                );
                self.moves_window.close_interval();
                self.current_interval = Some(ivl);
                if shift {
                    let alert = Alert::CompositionDrift {
                        at,
                        // Report the marker's landing cell as the "kind".
                        kind: usize::try_from(self.tracker.estimate().unwrap_or(0))
                            .unwrap_or(0),
                    };
                    self.detected_at.get_or_insert(at);
                    self.alerts.push(alert.clone());
                    raised = Some(alert);
                }
            }
            _ => {}
        }
        if self.tracker.observe(value).is_ok() {
            let moves = self.tracker.moves();
            self.moves_in_interval += moves - self.last_moves;
            self.pkts_in_interval += 1;
            self.last_moves = moves;
        }
        raised
    }

    /// The current quantile estimate.
    #[must_use]
    pub fn estimate(&self) -> Option<i64> {
        self.tracker.estimate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    fn cfg() -> ShiftConfig {
        ShiftConfig {
            interval_ns: 1_000_000,
            window: 24,
            min_intervals: 8,
            ..ShiftConfig::default()
        }
    }

    /// A stable latency distribution, then a regression shifting the
    /// median by 60 cells: the movement rate spikes once the marker
    /// starts its walk into the new cluster.
    #[test]
    fn detects_distribution_shift() {
        let mut rng = workloads::rng(8);
        let mut det = PercentileShiftDetector::new(cfg());
        let mut t = 0u64;
        // Healthy: values ~ uniform(90..110), ~100 per interval.
        for _ in 0..3_000 {
            det.observe(t, rng.random_range(90..110));
            t += 10_000;
        }
        assert!(det.detected_at.is_none(), "stable phase clean: {:?}", det.alerts);
        let shift_at = t;
        // Regression: values ~ uniform(150..170). Enough samples that
        // the combined median genuinely crosses into the new cluster
        // (the old 3000 samples anchor it until the new ones outnumber
        // them).
        for _ in 0..5_000 {
            det.observe(t, rng.random_range(150..170));
            t += 10_000;
        }
        let at = det.detected_at.expect("shift detected");
        assert!(at >= shift_at);
        // The marker cannot outrun the data: it stays anchored near the
        // old median until the new cluster's mass outweighs the 3000
        // old samples below it (~30 intervals at ~100 samples each),
        // then walks the 60 cells within an interval — an unmissable
        // movement spike. Allow those ~30 intervals plus slack.
        assert!(
            at <= shift_at + 35_000_000,
            "detected within 35 intervals: +{} ns",
            at - shift_at
        );
        // The marker itself has migrated to the new median.
        let est = det.estimate().unwrap();
        assert!((150..170).contains(&est), "marker followed: {est}");
    }

    /// Volume changes without shape changes do not alert (the rate
    /// detector's job, not this one's).
    #[test]
    fn volume_change_alone_is_quiet() {
        let mut rng = workloads::rng(9);
        let mut det = PercentileShiftDetector::new(cfg());
        let mut t = 0u64;
        for _ in 0..2_000 {
            det.observe(t, rng.random_range(90..110));
            t += 10_000;
        }
        // 5x the packet rate, same value distribution.
        for _ in 0..5_000 {
            det.observe(t, rng.random_range(90..110));
            t += 2_000;
        }
        assert!(det.detected_at.is_none(), "alerts: {:?}", det.alerts);
    }
}
