//! SYN-flood detection (paper Table 1: "SYN flood — protect servers,
//! SYN rate over time").
//!
//! Two complementary Stat4 checks, both integer-only:
//!
//! 1. **SYN share**: the frequency distribution of packet kinds; the
//!    SYN count becoming an upper outlier among kind frequencies
//!    signals a flood regardless of absolute rate.
//! 2. **SYN rate**: a windowed distribution of SYNs per interval with
//!    the mean + k·σ spike check — the same machinery as the
//!    case-study rate monitor, bound to a different value of interest.
//!
//! This module is the *software-side* twin of what `stat4-p4` programs
//! express in the pipeline; the `syn_flood` example wires the same
//! logic in-switch.

use crate::alerts::Alert;
use stat4_core::freq::FrequencyDist;
use stat4_core::window::WindowedDist;

/// Configuration of the detector.
#[derive(Debug, Clone, Copy)]
pub struct SynFloodConfig {
    /// Interval length (ns) for the rate check.
    pub interval_ns: u64,
    /// Window capacity in intervals.
    pub window: usize,
    /// σ multiplier.
    pub k: u32,
    /// Minimum closed intervals before rate alerts.
    pub min_intervals: usize,
    /// Number of packet kinds tracked by the share check.
    pub kinds: i64,
    /// Extra absolute margin for the share check (see the case-study
    /// `imbalance_margin` rationale).
    pub share_margin: u64,
}

impl Default for SynFloodConfig {
    fn default() -> Self {
        Self {
            interval_ns: 10_000_000, // 10 ms
            window: 64,
            k: 2,
            min_intervals: 10,
            kinds: 8,
            share_margin: 16,
        }
    }
}

/// Streaming SYN-flood detector.
#[derive(Debug)]
pub struct SynFloodDetector {
    cfg: SynFloodConfig,
    kind_freq: FrequencyDist,
    syn_rate: WindowedDist,
    current_interval: Option<u64>,
    /// Alerts raised so far.
    pub alerts: Vec<Alert>,
    /// Set once the first alert fires (detection time).
    pub detected_at: Option<u64>,
    /// Fire counts and detection-delay histogram (pure bookkeeping;
    /// the alert sequence is unchanged by telemetry).
    pub metrics: crate::metrics::DetectorMetrics,
}

/// Kind cell used for SYN packets in the share distribution.
pub const KIND_SYN: i64 = 1;

impl SynFloodDetector {
    /// Creates a detector.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate (zero window/kinds).
    #[must_use]
    pub fn new(cfg: SynFloodConfig) -> Self {
        Self {
            kind_freq: FrequencyDist::new(0, cfg.kinds - 1).expect("valid kind domain"),
            syn_rate: WindowedDist::new(cfg.window).expect("non-empty window"),
            current_interval: None,
            alerts: Vec::new(),
            detected_at: None,
            metrics: crate::metrics::DetectorMetrics::new(),
            cfg,
        }
    }

    /// Feeds one packet: its arrival time, kind cell (0-based,
    /// [`KIND_SYN`] for pure SYNs) — returns any alert raised by this
    /// packet.
    pub fn observe(&mut self, at: u64, kind: i64) -> Option<Alert> {
        // --- interval roll-over for the rate check -------------------
        let ivl = at / self.cfg.interval_ns;
        match self.current_interval {
            None => self.current_interval = Some(ivl),
            Some(cur) if cur != ivl => {
                let closed = self.syn_rate.current();
                let spike = self.syn_rate.is_spike_margined(
                    closed,
                    self.cfg.k,
                    self.cfg.min_intervals,
                    3, // +12.5% of the mean
                    4,
                );
                // Warm-up-ungated signal drives the detection-delay
                // episode clock.
                let raw = self.syn_rate.is_spike_margined(closed, self.cfg.k, 1, 3, 4);
                self.metrics.signal(at, raw || self.share_outlier());
                self.syn_rate.close_interval();
                self.current_interval = Some(ivl);
                if spike {
                    self.metrics.fired(crate::metrics::Check::Rate, at);
                    let alert = Alert::SynFlood {
                        at,
                        syn_count: closed as u64,
                    };
                    self.detected_at.get_or_insert(at);
                    self.alerts.push(alert.clone());
                    // Also record the packet below, but report now.
                    self.record(kind);
                    return Some(alert);
                }
            }
            _ => {}
        }
        self.record(kind);

        // --- share check ---------------------------------------------
        if kind == KIND_SYN && self.share_outlier() {
            self.metrics.fired(crate::metrics::Check::Share, at);
            let alert = Alert::SynFlood {
                at,
                syn_count: self.kind_freq.frequency(KIND_SYN),
            };
            self.detected_at.get_or_insert(at);
            self.alerts.push(alert.clone());
            return Some(alert);
        }
        None
    }

    fn record(&mut self, kind: i64) {
        let _ = self.kind_freq.observe(kind.clamp(0, self.cfg.kinds - 1));
        if kind == KIND_SYN {
            self.syn_rate.accumulate(1);
        }
    }

    fn share_outlier(&self) -> bool {
        let f = self.kind_freq.frequency(KIND_SYN);
        let n = self.kind_freq.n_distinct();
        if n < 4 {
            return false;
        }
        let nf = u128::from(n) * u128::from(f);
        let bound = u128::from(self.kind_freq.xsum())
            + u128::from(self.cfg.k) * u128::from(self.kind_freq.sd_nx())
            + u128::from(self.cfg.share_margin) * u128::from(n);
        nf > bound
    }

    /// The tracked SYN-per-interval statistics (for reports).
    #[must_use]
    pub fn rate_stats(&self) -> &stat4_core::running::RunningStats {
        self.syn_rate.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use packet::{EthernetFrame, Ipv4Packet, TcpSegment};
    use workloads::SynFloodWorkload;

    fn kind_of(frame: &[u8]) -> i64 {
        let eth = EthernetFrame::new_checked(frame).unwrap();
        let ip = Ipv4Packet::new_checked(eth.payload()).unwrap();
        match TcpSegment::new_checked(ip.payload()) {
            Ok(t) if t.syn() && !t.ack() => KIND_SYN,
            Ok(_) => 0,
            Err(_) => 2,
        }
    }

    #[test]
    fn detects_flood_not_background() {
        let w = SynFloodWorkload {
            background_cps: 500,
            flood_pps: 50_000,
            flood_start: 400_000_000,
            duration: 900_000_000,
            seed: 4,
            ..SynFloodWorkload::default()
        };
        let (schedule, _victim) = w.generate();
        let mut det = SynFloodDetector::new(SynFloodConfig::default());
        for (t, frame) in &schedule {
            det.observe(*t, kind_of(frame));
        }
        let at = det.detected_at.expect("flood must be detected");
        assert!(
            at >= w.flood_start,
            "no false positive before the flood: {at}"
        );
        assert!(
            at < w.flood_start + 100_000_000,
            "detected within 100 ms of onset, got +{} ms",
            (at - w.flood_start) / 1_000_000
        );
    }

    #[test]
    fn quiet_traffic_never_alerts() {
        let w = SynFloodWorkload {
            background_cps: 500,
            flood_pps: 50_000,
            flood_start: 2_000_000_000, // after the end
            duration: 900_000_000,
            seed: 4,
            ..SynFloodWorkload::default()
        };
        let (schedule, _) = w.generate();
        let mut det = SynFloodDetector::new(SynFloodConfig::default());
        for (t, frame) in &schedule {
            det.observe(*t, kind_of(frame));
        }
        assert!(det.detected_at.is_none(), "alerts: {:?}", det.alerts);
    }

    #[test]
    fn rate_stats_populated() {
        let mut det = SynFloodDetector::new(SynFloodConfig {
            interval_ns: 1_000,
            min_intervals: 2,
            ..SynFloodConfig::default()
        });
        for i in 0..100u64 {
            det.observe(i * 100, if i % 3 == 0 { KIND_SYN } else { 0 });
        }
        assert!(det.rate_stats().n() > 0);
    }
}
