//! The pluggable `Detector` trait and ensemble combiner.
//!
//! The paper's thesis is that *simple statistics suffice*: each
//! detector in this crate is one statistical check over per-interval
//! aggregates. This module gives them a common shape so the replay
//! engine can run any number of them over the same merged switch state
//! without knowing what each one computes:
//!
//! - [`SignalContext`] is the per-interval view of the merged shard
//!   state — the controller-side aggregates every engine reads.
//! - [`Detector::update`] consumes one context and returns a
//!   [`DetectionResult`] carrying a Q16 score/weight/confidence.
//! - [`Ensemble`] drives all engines, combines scores into one Q16
//!   verdict (a weighted mean — the one division lives at the
//!   controller, like every division in this repo), and keeps
//!   per-engine fire counters and detection-delay histograms.
//!
//! ## Score convention
//!
//! `score` is the engine's instantaneous statistical verdict in Q16,
//! normalised so `score ≥ Q16` means "past my threshold" — typically
//! `observed/bound` for a band engine or `residual/band` for a
//! forecaster, *before* warm-up gating. `fired` is the production
//! (gated) verdict; during warm-up an engine can score above Q16
//! without firing, which is exactly the gap the detection-delay
//! histogram measures. Engines lifted from the pre-trait detectors
//! (SYN flood, shift, stalled) report a saturated score (`2·Q16` on
//! fire, `0` otherwise) because their inner detectors expose booleans,
//! not margins — their alert streams are the behavioral contract.

use crate::metrics::{Check, DetectorMetrics};
use serde::Serialize;
use stat4_core::{FrequencyDist, RunningStats};
use std::any::Any;
use telemetry::Snapshot;

/// One in Q16 fixed point — the firing threshold for scores.
pub const Q16: i64 = 1 << 16;

/// Scores saturate at 16 in Q16 so weighted sums cannot overflow.
pub const SCORE_CAP: i64 = 16 * Q16;

/// `num/den` in Q16, clamped to `[0, SCORE_CAP]`; `den ≤ 0` maps to
/// the cap (an exhausted bound means any observation is past it).
#[must_use]
pub fn ratio_q16(num: i64, den: i64) -> i64 {
    if num <= 0 {
        return 0;
    }
    if den <= 0 {
        return SCORE_CAP;
    }
    let r = ((num as i128) << 16) / (den as i128);
    r.min(SCORE_CAP as i128) as i64
}

/// Confidence convention: how far past the threshold the score sits,
/// saturating at one (Q16).
#[must_use]
pub fn confidence_q16(score: i64) -> i64 {
    (score - Q16).clamp(0, Q16)
}

/// Per-interval merged switch state, as seen by every engine.
///
/// `packets`, `syns` and `len_sum` are per-interval *averages over the
/// report span*: when chaos drops epoch reports, the next delivered
/// report carries the accumulated counts and `spanned` says how many
/// intervals it covers (≥ 1). `distinct_sources` is the HyperLogLog
/// estimate for the delivered interval only (registers wash every
/// interval). `kinds` and `len_stats` are cumulative since the start
/// of the replay, as in the pre-trait detector.
#[derive(Debug, Clone, Copy)]
pub struct SignalContext<'a> {
    /// End of the interval (ns).
    pub at: u64,
    /// Interval ordinal since replay start.
    pub epoch: u64,
    /// Interval length (ns).
    pub interval_ns: u64,
    /// Intervals this report spans (> 1 after dropped reports).
    pub spanned: i64,
    /// Packets per interval (span average).
    pub packets: i64,
    /// Pure SYNs per interval (span average).
    pub syns: i64,
    /// Sum of frame lengths per interval (span average).
    pub len_sum: i64,
    /// Distinct source addresses this interval (HLL estimate).
    pub distinct_sources: i64,
    /// Canonical median frame length over the whole replay so far.
    pub median_len: i64,
    /// Cumulative packet-kind composition.
    pub kinds: &'a FrequencyDist,
    /// Cumulative frame-length moments.
    pub len_stats: &'a RunningStats,
}

/// One engine's verdict for one interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct DetectionResult {
    /// Engine that produced this result.
    pub engine: &'static str,
    /// Interval end (ns).
    pub at: u64,
    /// Interval ordinal.
    pub epoch: u64,
    /// Instantaneous verdict in Q16 (`≥ Q16` = past threshold).
    pub score: i64,
    /// Engine weight in Q16 for the ensemble combiner.
    pub weight: i64,
    /// [`confidence_q16`] of the score.
    pub confidence: i64,
    /// What the engine expected for its signal (raw units).
    pub expected: i64,
    /// What it observed (raw units).
    pub observed: i64,
    /// Gated production verdict: did the engine alert?
    pub fired: bool,
}

/// A pluggable anomaly detection engine over merged interval state.
pub trait Detector {
    /// Stable engine name (telemetry label, report key).
    fn name(&self) -> &'static str;

    /// Ensemble weight in Q16 (default: 1.0).
    fn weight_q16(&self) -> i64 {
        Q16
    }

    /// Consumes one interval; `None` while the engine cannot yet form
    /// a verdict (seeding/calibration), a result afterwards.
    fn update(&mut self, ctx: &SignalContext<'_>) -> Option<DetectionResult>;

    /// Typed access for callers that need an engine's extra state
    /// (e.g. the lifted SYN-flood engine's legacy alert stream).
    fn as_any(&self) -> &dyn Any;
}

/// An owned snapshot of the scalar fields of a [`SignalContext`] —
/// what every engine saw for one interval, detached from the borrowed
/// cumulative state so it can ride inside an [`AlertProvenance`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct SignalValues {
    /// Interval end (ns).
    pub at: u64,
    /// Interval ordinal.
    pub epoch: u64,
    /// Interval length (ns).
    pub interval_ns: u64,
    /// Intervals the report spans (> 1 after dropped reports).
    pub spanned: i64,
    /// Packets per interval (span average).
    pub packets: i64,
    /// Pure SYNs per interval (span average).
    pub syns: i64,
    /// Sum of frame lengths per interval (span average).
    pub len_sum: i64,
    /// Distinct source addresses this interval (HLL estimate).
    pub distinct_sources: i64,
    /// Canonical median frame length so far.
    pub median_len: i64,
}

impl SignalValues {
    /// Captures the scalar view of `ctx`.
    #[must_use]
    pub fn capture(ctx: &SignalContext<'_>) -> Self {
        Self {
            at: ctx.at,
            epoch: ctx.epoch,
            interval_ns: ctx.interval_ns,
            spanned: ctx.spanned,
            packets: ctx.packets,
            syns: ctx.syns,
            len_sum: ctx.len_sum,
            distinct_sources: ctx.distinct_sources,
            median_len: ctx.median_len,
        }
    }
}

/// The combined verdict for one interval.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnsembleVerdict {
    /// Interval end (ns).
    pub at: u64,
    /// Interval ordinal.
    pub epoch: u64,
    /// Weighted mean score over all reporting engines, Q16.
    pub combined_q16: i64,
    /// Results from engines that fired this interval.
    pub fired: Vec<DetectionResult>,
    /// Every reporting engine's result this interval (fired or not),
    /// in report order — the provenance record's raw material.
    pub results: Vec<DetectionResult>,
}

/// Why a drilldown (or any alert-consumer) acted on a verdict.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub enum TriggerCause {
    /// One or more engines' gated verdicts fired; names in report
    /// order.
    EnginesFired(Vec<String>),
    /// No single engine fired, but the ensemble's combined weighted
    /// score crossed the trigger threshold.
    CombinedScore {
        /// The combined weighted mean at trigger time, Q16.
        combined_q16: i64,
        /// The configured trigger threshold, Q16.
        threshold_q16: i64,
    },
}

/// One engine's state at the moment an alert fired, with owned
/// strings so provenance survives JSON round trips field-for-field.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct EngineAtFire {
    /// Engine name.
    pub engine: String,
    /// Instantaneous Q16 score.
    pub score: i64,
    /// The firing threshold the score is normalised against (Q16 by
    /// the crate's score convention).
    pub threshold_q16: i64,
    /// [`confidence_q16`] of the score.
    pub confidence: i64,
    /// Ensemble weight, Q16.
    pub weight: i64,
    /// Expected signal value (raw units).
    pub expected: i64,
    /// Observed signal value (raw units).
    pub observed: i64,
    /// Did the engine's gated verdict fire?
    pub fired: bool,
}

impl EngineAtFire {
    /// Snapshot of one engine's result.
    #[must_use]
    pub fn of(r: &DetectionResult) -> Self {
        Self {
            engine: r.engine.to_string(),
            score: r.score,
            threshold_q16: Q16,
            confidence: r.confidence,
            weight: r.weight,
            expected: r.expected,
            observed: r.observed,
            fired: r.fired,
        }
    }
}

/// The full statistical provenance of one alert: the signals every
/// engine read, each engine's score against its threshold at fire
/// time, the combined score, and what pulled the trigger.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct AlertProvenance {
    /// Interval end (ns).
    pub at: u64,
    /// Interval ordinal.
    pub epoch: u64,
    /// The merged per-interval signals the engines consumed.
    pub signals: SignalValues,
    /// Weighted mean score at fire time, Q16.
    pub combined_q16: i64,
    /// Every reporting engine's state at fire time.
    pub engines: Vec<EngineAtFire>,
    /// What pulled the trigger.
    pub cause: TriggerCause,
}

impl AlertProvenance {
    /// Assembles provenance from the interval's signals, the verdict
    /// that tripped, and the trigger cause.
    #[must_use]
    pub fn assemble(signals: SignalValues, verdict: &EnsembleVerdict, cause: TriggerCause) -> Self {
        Self {
            at: verdict.at,
            epoch: verdict.epoch,
            signals,
            combined_q16: verdict.combined_q16,
            engines: verdict.results.iter().map(EngineAtFire::of).collect(),
            cause,
        }
    }
}

/// Per-engine summary for reports (shard-count invariant).
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct EngineSummary {
    /// Engine name.
    pub name: &'static str,
    /// Total gated fires.
    pub fires: u64,
    /// First fire time (ns), if any.
    pub first_fired_at: Option<u64>,
}

/// Drives a set of engines over the interval stream and combines their
/// scores.
pub struct Ensemble {
    engines: Vec<Box<dyn Detector>>,
    /// Per-engine fire counters and detection-delay histograms,
    /// parallel to the engine list.
    pub metrics: Vec<DetectorMetrics>,
    first_fired: Vec<Option<u64>>,
    fires: Vec<u64>,
    /// Per-engine combining-weight overrides, parallel to the engine
    /// list. `None` leaves the engine's own reported weight in force;
    /// `Some(w)` replaces it in the combined score and in every logged
    /// result from the interval the override lands on. Installed by the
    /// replay lifecycle's vetted hot-swap path.
    weight_overrides: Vec<Option<i64>>,
    /// Every fired result, in interval order then engine order — the
    /// determinism regression surface.
    pub fired_log: Vec<DetectionResult>,
}

impl std::fmt::Debug for Ensemble {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ensemble")
            .field("engines", &self.names())
            .field("fired_log", &self.fired_log.len())
            .finish()
    }
}

impl Ensemble {
    /// Builds an ensemble over `engines` (order is report order).
    #[must_use]
    pub fn new(engines: Vec<Box<dyn Detector>>) -> Self {
        let n = engines.len();
        Self {
            engines,
            metrics: (0..n).map(|_| DetectorMetrics::new()).collect(),
            first_fired: vec![None; n],
            fires: vec![0; n],
            weight_overrides: vec![None; n],
            fired_log: Vec::new(),
        }
    }

    /// Overrides the combining weight of engine `name` for every
    /// subsequent interval; `None` restores the engine's own weight.
    /// Returns `false` — changing nothing — for an unknown engine or a
    /// negative weight (a negative weight could zero or invert the
    /// combined-score denominator).
    pub fn set_weight_override(&mut self, name: &str, weight: Option<i64>) -> bool {
        if weight.is_some_and(|w| w < 0) {
            return false;
        }
        match self.engines.iter().position(|e| e.name() == name) {
            Some(i) => {
                self.weight_overrides[i] = weight;
                true
            }
            None => false,
        }
    }

    /// Current weight overrides keyed by engine name (checkpoint
    /// export).
    #[must_use]
    pub fn weight_overrides(&self) -> Vec<(&'static str, Option<i64>)> {
        self.engines
            .iter()
            .zip(&self.weight_overrides)
            .map(|(e, w)| (e.name(), *w))
            .collect()
    }

    /// Engine names in report order.
    #[must_use]
    pub fn names(&self) -> Vec<&'static str> {
        self.engines.iter().map(|e| e.name()).collect()
    }

    /// Typed access to an engine by name.
    #[must_use]
    pub fn engine<T: 'static>(&self, name: &str) -> Option<&T> {
        self.engines
            .iter()
            .find(|e| e.name() == name)
            .and_then(|e| e.as_any().downcast_ref::<T>())
    }

    /// Feeds one interval to every engine and combines the results.
    pub fn observe(&mut self, ctx: &SignalContext<'_>) -> EnsembleVerdict {
        let mut fired = Vec::new();
        let mut results = Vec::new();
        let mut weighted: i128 = 0;
        let mut weights: i128 = 0;
        for (i, engine) in self.engines.iter_mut().enumerate() {
            let Some(mut result) = engine.update(ctx) else {
                continue;
            };
            if let Some(w) = self.weight_overrides[i] {
                result.weight = w;
            }
            weighted += (result.score as i128) * (result.weight as i128);
            weights += result.weight as i128;
            // Episode clock: raw (ungated) anomaly = score past Q16.
            self.metrics[i].signal(ctx.at, result.score >= Q16);
            if result.fired {
                self.metrics[i].fired(Check::Rate, ctx.at);
                self.fires[i] += 1;
                self.first_fired[i].get_or_insert(ctx.at);
                fired.push(result);
            }
            results.push(result);
        }
        self.fired_log.extend(fired.iter().copied());
        let combined_q16 = if weights == 0 {
            0
        } else {
            (weighted / weights) as i64
        };
        EnsembleVerdict {
            at: ctx.at,
            epoch: ctx.epoch,
            combined_q16,
            fired,
            results,
        }
    }

    /// Per-engine summaries, in report order.
    #[must_use]
    pub fn summaries(&self) -> Vec<EngineSummary> {
        self.engines
            .iter()
            .enumerate()
            .map(|(i, e)| EngineSummary {
                name: e.name(),
                fires: self.fires[i],
                first_fired_at: self.first_fired[i],
            })
            .collect()
    }

    /// Per-engine metrics keyed by engine name (for telemetry export).
    #[must_use]
    pub fn metrics_by_name(&self) -> Vec<(&'static str, DetectorMetrics)> {
        self.engines
            .iter()
            .zip(&self.metrics)
            .map(|(e, m)| (e.name(), m.clone()))
            .collect()
    }

    /// Exports per-engine fire counters and delay histograms.
    pub fn export(&self, snap: &mut Snapshot) {
        for (name, m) in self.metrics_by_name() {
            m.export(snap, name);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct FixedEngine {
        name: &'static str,
        score: i64,
        warmup: u64,
        seen: u64,
    }

    impl Detector for FixedEngine {
        fn name(&self) -> &'static str {
            self.name
        }
        fn update(&mut self, ctx: &SignalContext<'_>) -> Option<DetectionResult> {
            self.seen += 1;
            let gated = self.seen <= self.warmup;
            Some(DetectionResult {
                engine: self.name,
                at: ctx.at,
                epoch: ctx.epoch,
                score: self.score,
                weight: Q16,
                confidence: confidence_q16(self.score),
                expected: 0,
                observed: 0,
                fired: !gated && self.score >= Q16,
            })
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
    }

    fn ctx_at<'a>(at: u64, kinds: &'a FrequencyDist, stats: &'a RunningStats) -> SignalContext<'a> {
        SignalContext {
            at,
            epoch: at / 10,
            interval_ns: 10,
            spanned: 1,
            packets: 0,
            syns: 0,
            len_sum: 0,
            distinct_sources: 0,
            median_len: 0,
            kinds,
            len_stats: stats,
        }
    }

    #[test]
    fn weight_overrides_steer_the_combined_score() {
        let kinds = FrequencyDist::new(0, 3).unwrap();
        let stats = RunningStats::new();
        let mut e = Ensemble::new(vec![
            Box::new(FixedEngine { name: "hot", score: 2 * Q16, warmup: 0, seen: 0 }),
            Box::new(FixedEngine { name: "cold", score: 0, warmup: 0, seen: 0 }),
        ]);
        let even = e.observe(&ctx_at(10, &kinds, &stats)).combined_q16;
        assert_eq!(even, Q16, "equal weights average to Q16");

        assert!(e.set_weight_override("cold", Some(0)));
        let skewed = e.observe(&ctx_at(20, &kinds, &stats)).combined_q16;
        assert_eq!(skewed, 2 * Q16, "silenced engine no longer dilutes");
        assert_eq!(
            e.weight_overrides(),
            vec![("hot", None), ("cold", Some(0))]
        );

        assert!(e.set_weight_override("cold", None));
        let restored = e.observe(&ctx_at(30, &kinds, &stats)).combined_q16;
        assert_eq!(restored, Q16);

        assert!(!e.set_weight_override("missing", Some(1)));
        assert!(!e.set_weight_override("cold", Some(-1)));
    }

    #[test]
    fn ratio_q16_clamps() {
        assert_eq!(ratio_q16(0, 10), 0);
        assert_eq!(ratio_q16(-5, 10), 0);
        assert_eq!(ratio_q16(10, 0), SCORE_CAP);
        assert_eq!(ratio_q16(5, 10), Q16 / 2);
        assert_eq!(ratio_q16(i64::MAX, 1), SCORE_CAP);
    }

    #[test]
    fn confidence_saturates() {
        assert_eq!(confidence_q16(0), 0);
        assert_eq!(confidence_q16(Q16), 0);
        assert_eq!(confidence_q16(Q16 + 100), 100);
        assert_eq!(confidence_q16(10 * Q16), Q16);
    }

    #[test]
    fn combined_score_is_weighted_mean() {
        let kinds = FrequencyDist::new(0, 7).unwrap();
        let stats = RunningStats::new();
        let mut ens = Ensemble::new(vec![
            Box::new(FixedEngine { name: "a", score: 2 * Q16, warmup: 0, seen: 0 }),
            Box::new(FixedEngine { name: "b", score: 0, warmup: 0, seen: 0 }),
        ]);
        let v = ens.observe(&ctx_at(10, &kinds, &stats));
        assert_eq!(v.combined_q16, Q16, "mean of 2.0 and 0.0");
        assert_eq!(v.fired.len(), 1);
        assert_eq!(v.fired[0].engine, "a");
    }

    #[test]
    fn warmup_gating_feeds_detection_delay() {
        let kinds = FrequencyDist::new(0, 7).unwrap();
        let stats = RunningStats::new();
        // Scores anomalous from the start, but gated for 3 intervals:
        // the recorded delay is the gating lag.
        let mut ens = Ensemble::new(vec![Box::new(FixedEngine {
            name: "g",
            score: 2 * Q16,
            warmup: 3,
            seen: 0,
        })]);
        for at in [10u64, 20, 30, 40] {
            ens.observe(&ctx_at(at, &kinds, &stats));
        }
        assert_eq!(ens.summaries()[0].fires, 1);
        assert_eq!(ens.summaries()[0].first_fired_at, Some(40));
        assert_eq!(ens.metrics[0].detection_delay.max(), Some(30));
    }

    #[test]
    fn typed_engine_access() {
        let mut ens = Ensemble::new(vec![Box::new(FixedEngine {
            name: "a",
            score: 0,
            warmup: 0,
            seen: 0,
        })]);
        let kinds = FrequencyDist::new(0, 7).unwrap();
        let stats = RunningStats::new();
        ens.observe(&ctx_at(10, &kinds, &stats));
        let e: &FixedEngine = ens.engine("a").expect("typed access");
        assert_eq!(e.seen, 1);
        assert!(ens.engine::<FixedEngine>("missing").is_none());
    }

    #[test]
    fn export_shape_is_valid() {
        let mut ens = Ensemble::new(vec![Box::new(FixedEngine {
            name: "a",
            score: 2 * Q16,
            warmup: 0,
            seen: 0,
        })]);
        let kinds = FrequencyDist::new(0, 7).unwrap();
        let stats = RunningStats::new();
        ens.observe(&ctx_at(10, &kinds, &stats));
        let mut snap = Snapshot::new();
        ens.export(&mut snap);
        assert_eq!(snap.counter_sum("anomaly_detector_fires_total"), 1);
        let text = telemetry::render_prometheus(&snap);
        telemetry::check_prometheus(&text).expect("valid exposition");
    }
}
