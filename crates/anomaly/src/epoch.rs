//! Epoch-granularity SYN-flood detection for the sharded replay engine.
//!
//! The streaming [`SynFloodDetector`](crate::synflood::SynFloodDetector)
//! evaluates its share check on every packet, which requires a single
//! totally-ordered packet stream. The sharded replay engine has no such
//! stream: packets are processed by N independent shard pipelines and
//! only the *merged* statistics exist at the epoch barrier.
//!
//! [`EpochSynFloodDetector`] is the epoch-side twin: it consumes one
//! observation per closed interval — the merged SYN count of the
//! interval and the merged cumulative kind distribution — and runs the
//! same two Stat4 checks at that granularity:
//!
//! 1. **SYN rate**: the merged per-interval SYN count feeds a
//!    [`WindowedDist`] with the mean + k·σ spike test.
//! 2. **SYN share**: the merged [`FrequencyDist`] of packet kinds is
//!    tested for the SYN cell being an upper outlier
//!    (`n·f > Xsum + k·σ(NX) + margin·n`).
//!
//! Because every input is a pure function of merged (order-free) shard
//! state, the detector's verdicts are *shard-count invariant by
//! construction*: a 1-shard and an 8-shard replay hand it bit-identical
//! aggregates and therefore produce identical alert sequences. That is
//! the property the cross-shard conformance suite asserts.

use crate::alerts::Alert;
use crate::metrics::{Check, DetectorMetrics};
use crate::synflood::{SynFloodConfig, KIND_SYN};
use stat4_core::freq::FrequencyDist;
use stat4_core::window::WindowedDist;

/// SYN-flood detector driven by per-interval merged aggregates.
#[derive(Debug)]
pub struct EpochSynFloodDetector {
    cfg: SynFloodConfig,
    syn_rate: WindowedDist,
    /// Alerts raised so far, in interval order.
    pub alerts: Vec<Alert>,
    /// Set once the first alert fires (detection time).
    pub detected_at: Option<u64>,
    /// Fire counts and detection-delay histogram. Pure bookkeeping: the
    /// alert sequence is unchanged by telemetry, so the conformance
    /// guarantees are untouched.
    pub metrics: DetectorMetrics,
}

impl EpochSynFloodDetector {
    /// Creates a detector sharing the streaming detector's config.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate (zero window).
    #[must_use]
    pub fn new(cfg: SynFloodConfig) -> Self {
        Self {
            syn_rate: WindowedDist::new(cfg.window).expect("non-empty window"),
            alerts: Vec::new(),
            detected_at: None,
            metrics: DetectorMetrics::new(),
            cfg,
        }
    }

    /// Feeds one closed interval: its end time, the merged SYN count of
    /// the interval, and the merged cumulative kind distribution.
    /// Returns the alerts raised by this interval (at most one per
    /// check).
    pub fn observe_interval(
        &mut self,
        at: u64,
        syn_in_interval: i64,
        kind_freq: &FrequencyDist,
    ) -> Vec<Alert> {
        let mut raised = Vec::new();

        // --- rate check ----------------------------------------------
        self.syn_rate.accumulate(syn_in_interval);
        let spike = self.syn_rate.is_spike_margined(
            syn_in_interval,
            self.cfg.k,
            self.cfg.min_intervals,
            3, // +12.5% of the mean
            4,
        );
        let share = self.share_outlier(kind_freq);
        // Raw (warm-up-ungated) signal drives the detection-delay
        // episode clock: "first anomalous epoch" per the case study.
        let raw_anomalous =
            self.syn_rate.is_spike_margined(syn_in_interval, self.cfg.k, 1, 3, 4) || share;
        self.metrics.signal(at, raw_anomalous);
        self.syn_rate.close_interval();
        if spike {
            self.metrics.fired(Check::Rate, at);
            raised.push(Alert::SynFlood {
                at,
                syn_count: syn_in_interval as u64,
            });
        }

        // --- share check ---------------------------------------------
        if share {
            self.metrics.fired(Check::Share, at);
            raised.push(Alert::SynFlood {
                at,
                syn_count: kind_freq.frequency(KIND_SYN),
            });
        }

        if !raised.is_empty() {
            self.detected_at.get_or_insert(at);
            self.alerts.extend(raised.iter().cloned());
        }
        raised
    }

    fn share_outlier(&self, kind_freq: &FrequencyDist) -> bool {
        let f = kind_freq.frequency(KIND_SYN);
        let n = kind_freq.n_distinct();
        if n < 4 {
            return false;
        }
        let nf = u128::from(n) * u128::from(f);
        let bound = u128::from(kind_freq.xsum())
            + u128::from(self.cfg.k) * u128::from(kind_freq.sd_nx())
            + u128::from(self.cfg.share_margin) * u128::from(n);
        nf > bound
    }

    /// The tracked SYN-per-interval statistics (for reports).
    #[must_use]
    pub fn rate_stats(&self) -> &stat4_core::running::RunningStats {
        self.syn_rate.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use packet::{EthernetFrame, Ipv4Packet, TcpSegment};
    use workloads::SynFloodWorkload;

    fn kind_of(frame: &[u8]) -> i64 {
        let eth = EthernetFrame::new_checked(frame).unwrap();
        let ip = Ipv4Packet::new_checked(eth.payload()).unwrap();
        match TcpSegment::new_checked(ip.payload()) {
            Ok(t) if t.syn() && !t.ack() => KIND_SYN,
            Ok(_) => 0,
            Err(_) => 2,
        }
    }

    /// Replays a schedule through the epoch detector exactly as the
    /// replay engine does: aggregate per interval, observe at each
    /// interval close.
    fn run_epoch(schedule: &workloads::Schedule, cfg: SynFloodConfig) -> EpochSynFloodDetector {
        let mut det = EpochSynFloodDetector::new(cfg);
        let mut kinds = FrequencyDist::new(0, cfg.kinds - 1).unwrap();
        let mut cur: Option<u64> = None;
        let mut syns: i64 = 0;
        for (t, frame) in schedule {
            let ivl = t / cfg.interval_ns;
            if let Some(c) = cur {
                if c != ivl {
                    det.observe_interval((c + 1) * cfg.interval_ns, syns, &kinds);
                    syns = 0;
                    cur = Some(ivl);
                }
            } else {
                cur = Some(ivl);
            }
            let k = kind_of(frame);
            let _ = kinds.observe(k.clamp(0, cfg.kinds - 1));
            if k == KIND_SYN {
                syns += 1;
            }
        }
        det
    }

    #[test]
    fn detects_flood_not_background() {
        let w = SynFloodWorkload {
            background_cps: 500,
            flood_pps: 50_000,
            flood_start: 400_000_000,
            duration: 900_000_000,
            seed: 4,
            ..SynFloodWorkload::default()
        };
        let (schedule, _victim) = w.generate();
        let det = run_epoch(&schedule, SynFloodConfig::default());
        let at = det.detected_at.expect("flood must be detected");
        assert!(
            at >= w.flood_start,
            "no false positive before the flood: {at}"
        );
        assert!(
            at < w.flood_start + 100_000_000,
            "detected within 100 ms of onset, got +{} ms",
            (at - w.flood_start) / 1_000_000
        );
    }

    #[test]
    fn quiet_traffic_never_alerts() {
        let w = SynFloodWorkload {
            background_cps: 500,
            flood_pps: 50_000,
            flood_start: 2_000_000_000, // after the end
            duration: 900_000_000,
            seed: 4,
            ..SynFloodWorkload::default()
        };
        let (schedule, _) = w.generate();
        let det = run_epoch(&schedule, SynFloodConfig::default());
        assert!(det.detected_at.is_none(), "alerts: {:?}", det.alerts);
    }

    #[test]
    fn identical_aggregates_identical_alerts() {
        // The conformance property in miniature: two detectors fed the
        // same per-interval aggregates raise the same alerts.
        let w = SynFloodWorkload {
            background_cps: 500,
            flood_pps: 50_000,
            flood_start: 300_000_000,
            duration: 700_000_000,
            seed: 9,
            ..SynFloodWorkload::default()
        };
        let (schedule, _) = w.generate();
        let a = run_epoch(&schedule, SynFloodConfig::default());
        let b = run_epoch(&schedule, SynFloodConfig::default());
        assert_eq!(a.alerts, b.alerts);
        assert_eq!(a.detected_at, b.detected_at);
    }

    #[test]
    fn metrics_track_fires_and_delay() {
        let w = SynFloodWorkload {
            background_cps: 500,
            flood_pps: 50_000,
            flood_start: 400_000_000,
            duration: 900_000_000,
            seed: 4,
            ..SynFloodWorkload::default()
        };
        let (schedule, _) = w.generate();
        let det = run_epoch(&schedule, SynFloodConfig::default());
        assert_eq!(
            det.metrics.fires(),
            det.alerts.len() as u64,
            "every alert is counted by exactly one check"
        );
        assert!(det.metrics.fires() > 0);
        // The flood episode produced at least one delay sample, and the
        // delay cannot precede the raw signal.
        assert!(det.metrics.detection_delay.count() >= 1);
        assert!(
            det.metrics.detection_delay.max().unwrap() <= 200_000_000,
            "delay {:?} implausibly long",
            det.metrics.detection_delay.max()
        );
    }

    #[test]
    fn quiet_traffic_no_fires() {
        let w = SynFloodWorkload {
            background_cps: 500,
            flood_pps: 50_000,
            flood_start: 2_000_000_000,
            duration: 900_000_000,
            seed: 4,
            ..SynFloodWorkload::default()
        };
        let (schedule, _) = w.generate();
        let det = run_epoch(&schedule, SynFloodConfig::default());
        assert_eq!(det.metrics.fires(), 0);
        assert!(det.metrics.detection_delay.is_empty());
    }

    #[test]
    fn rate_stats_populated() {
        let mut det = EpochSynFloodDetector::new(SynFloodConfig::default());
        let kinds = FrequencyDist::new(0, 7).unwrap();
        for i in 0..20u64 {
            det.observe_interval(i * 10_000_000, 5, &kinds);
        }
        assert!(det.rate_stats().n() > 0);
    }
}
