//! A sketch-only (Figure 1b) controller: periodically pulls the
//! switch's registers and runs the anomaly check centrally.
//!
//! This is the architecture the paper argues *against*: "the controller
//! would need to pull sketches from switches every few milliseconds,
//! which produces high overhead throughout normal operation … a delay
//! is inevitable between when a traffic change is theoretically
//! detectable and when the system is actually able to detect the
//! change: this delay is inversely proportional to the generated
//! overhead." The `repro_architecture` binary pits this controller
//! against the push-based one and measures exactly that trade-off.
//!
//! The polled state is the same rate window the in-switch detector
//! uses; detection logic is identical (margined mean + k·σ) — only the
//! *placement* differs, so the comparison isolates the architecture.

use netsim::control::ControlMsg;
use netsim::node::{Node, NodeCtx, NodeId};
use netsim::SimTime;
use p4sim::{RuntimeRequest, RuntimeResponse};
use stat4_core::running::RunningStats;
use stat4_p4::CaseStudyHandles;
use std::collections::HashMap;

const TOKEN_POLL: u64 = 1;

/// What a pending request's response contains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PendingKind {
    Window,
    RateState,
}

/// The pull-based controller.
pub struct PollingController {
    handles: CaseStudyHandles,
    switch: NodeId,
    /// Poll period (ns).
    pub period: SimTime,
    /// σ multiplier for the central check.
    pub k: u32,
    /// Minimum window fill before alarms.
    pub min_fill: u64,
    next_tag: u64,
    pending: HashMap<u64, PendingKind>,
    /// Last window snapshot (awaiting its rate-state sibling).
    last_window: Option<Vec<u64>>,
    /// Last rate-state snapshot.
    last_state: Option<Vec<u64>>,
    /// Time of the first spike detection, if any.
    pub detected_at: Option<SimTime>,
    /// The flagged interval value.
    pub detected_value: Option<u64>,
    /// Pull requests sent (overhead accounting).
    pub requests_sent: u64,
    /// Register cells transferred (overhead accounting).
    pub cells_read: u64,
}

impl PollingController {
    /// Creates a poller for `switch` at the given period.
    #[must_use]
    pub fn new(handles: CaseStudyHandles, switch: NodeId, period: SimTime) -> Self {
        Self {
            handles,
            switch,
            period,
            k: 2,
            min_fill: 10,
            next_tag: 1,
            pending: HashMap::new(),
            last_window: None,
            last_state: None,
            detected_at: None,
            detected_value: None,
            requests_sent: 0,
            cells_read: 0,
        }
    }

    fn poll(&mut self, ctx: &mut NodeCtx) {
        // Two pulls per round: the window ring and the bookkeeping
        // register (the ring index is needed to recover write order).
        for (kind, register, len) in [
            (
                PendingKind::Window,
                self.handles.win_reg,
                self.handles.params.window_size,
            ),
            (PendingKind::RateState, self.handles.rate_state_reg, 6),
        ] {
            let tag = self.next_tag;
            self.next_tag += 1;
            self.requests_sent += 1;
            self.pending.insert(tag, kind);
            ctx.send_control(
                self.switch,
                ControlMsg::Request {
                    tag,
                    req: RuntimeRequest::ReadRegisterRange {
                        register,
                        start: 0,
                        len,
                    },
                },
            );
        }
        ctx.set_timer(self.period, TOKEN_POLL);
    }

    /// Central detection: replay the switch's own sequential check over
    /// the snapshot in write order (oldest first) — judge each interval
    /// against the statistics of the intervals before it, then absorb
    /// it. This is exactly what the data plane did at each interval
    /// close; the pull architecture just learns about it later.
    fn check_snapshot(&mut self, ctx: &NodeCtx, window: &[u64], state: &[u64]) {
        let n = state.get(3).copied().unwrap_or(0) as usize;
        let widx = state.get(2).copied().unwrap_or(0) as usize;
        let cap = window.len();
        if cap == 0 {
            return;
        }
        let ordered: Vec<i64> = if n < cap {
            window[..n.min(cap)].iter().map(|&v| v as i64).collect()
        } else {
            (0..cap)
                .map(|i| window[(widx + i) % cap] as i64)
                .collect()
        };
        let mut stats = RunningStats::new();
        for &x in &ordered {
            if stats.n() >= self.min_fill {
                let margin = stats.relative_margin(3, 4);
                if stats.is_upper_outlier_with_margin(x, self.k, margin) {
                    self.detected_at.get_or_insert(ctx.now);
                    self.detected_value.get_or_insert(x as u64);
                    return;
                }
            }
            stats.push(x);
        }
    }
}

impl Node for PollingController {
    fn on_frame(&mut self, _ctx: &mut NodeCtx, _port: usize, _frame: bytes::Bytes) {}

    fn on_start(&mut self, ctx: &mut NodeCtx) {
        self.poll(ctx);
    }

    fn on_timer(&mut self, ctx: &mut NodeCtx, token: u64) {
        if token == TOKEN_POLL {
            self.poll(ctx);
        }
    }

    fn on_control(&mut self, ctx: &mut NodeCtx, _from: NodeId, msg: ControlMsg) {
        if let ControlMsg::Response {
            tag,
            resp: RuntimeResponse::Values(cells),
        } = msg
        {
            self.cells_read += cells.len() as u64;
            match self.pending.remove(&tag) {
                Some(PendingKind::Window) => self.last_window = Some(cells),
                Some(PendingKind::RateState) => self.last_state = Some(cells),
                None => {}
            }
            if self.detected_at.is_none() {
                if let (Some(w), Some(s)) = (self.last_window.clone(), self.last_state.clone()) {
                    self.check_snapshot(ctx, &w, &s);
                }
            }
        }
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::host::{SinkHost, TraceGen, TrafficSource};
    use netsim::{P4SwitchNode, Simulation, MICROS, MILLIS};
    use stat4_p4::{CaseStudyApp, CaseStudyParams, Stat4Config};
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;
    use workloads::SpikeWorkload;

    #[test]
    fn poller_detects_but_later_than_interval_close() {
        let params = CaseStudyParams {
            interval_log2: 20, // ~1 ms
            window_size: 32,
            min_intervals: 8,
            config: Stat4Config {
                counter_num: 2,
                counter_size: 64,
                width_bits: 64,
            },
            ..CaseStudyParams::default()
        };
        let interval_ns = 1u64 << params.interval_log2;
        let workload = SpikeWorkload {
            background_pps: 20_000,
            spike_multiplier: 10,
            spike_start_range: (20 * interval_ns, 21 * interval_ns),
            duration: 80 * interval_ns,
            seed: 4,
            ..SpikeWorkload::default()
        };
        let (schedule, truth) = workload.generate();
        let app = CaseStudyApp::build(params).expect("builds");
        let handles = app.handles();

        let mut sim = Simulation::new();
        let source = sim.add_node(Box::new(TrafficSource::new(Box::new(TraceGen::new(
            schedule,
        )))));
        let sink = sim.add_node(Box::new(SinkHost::new(Arc::new(AtomicU64::new(0)))));
        let switch = sim.add_node(Box::new(P4SwitchNode::new(app.pipeline)));
        let poller = sim.add_node(Box::new(PollingController::new(
            handles,
            switch,
            10 * MILLIS,
        )));
        sim.connect(source, 0, switch, 0, 20 * MICROS);
        sim.connect(switch, 1, sink, 0, 20 * MICROS);
        sim.connect_control(switch, poller, 2 * MILLIS);
        // The poller re-arms its timer forever; bound the run at the
        // workload's end.
        sim.run_until(80 * interval_ns);

        let p = sim.node_as::<PollingController>(poller).expect("poller");
        let at = p.detected_at.expect("poller finds the spike eventually");
        assert!(at > truth.spike_start, "cannot detect before onset");
        // The pull architecture pays at least one poll period + RTT +
        // bulk-read latency beyond the interval close.
        assert!(p.requests_sent > 3, "kept polling: {}", p.requests_sent);
        assert!(
            p.cells_read >= p.requests_sent * 32 / 2,
            "window transferred on each poll"
        );
    }
}
