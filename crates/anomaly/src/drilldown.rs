//! The drill-down controller of the paper's case study (Sec. 4).
//!
//! Reacts to in-switch alerts by progressively refining what the switch
//! monitors, purely through binding-table edits over the control
//! channel:
//!
//! 1. **WatchingPrefix** — the switch only tracks packets/interval for
//!    the whole /8. On a [`stat4_p4::DIGEST_SPIKE`] digest, the
//!    controller binds each /24 subnet to a group index and moves on.
//! 2. **WatchingSubnets** — the switch now also tracks the frequency
//!    distribution of subnet groups. On a
//!    [`stat4_p4::DIGEST_IMBALANCE`] digest naming a subnet, the
//!    controller rebinds to per-destination /32s within that subnet.
//! 3. **WatchingHosts** — the next imbalance digest names the
//!    destination: **Pinpointed**.
//!
//! Every transition costs one controller→switch round trip (plus the
//! time for fresh statistics to accumulate), which is what makes the
//! paper's end-to-end pinpoint latency "2–3 seconds" despite detection
//! happening within one interval.
//!
//! # Self-healing control loop
//!
//! The control channel is allowed to be lossy (see
//! `faultinject::FaultSchedule`): any rebind request may be dropped or
//! reordered in flight. The controller therefore treats each rebind as
//! an acknowledged *transaction*:
//!
//! - the whole transaction (clear bindings, reset the distribution,
//!   bump the generation register, install the new bindings) travels
//!   as ONE atomic [`p4sim::RuntimeRequest::Batch`] message — it is
//!   applied in full or lost in full, never half-applied;
//! - the batch carries a tag; the switch's [`ControlMsg::Response`]
//!   acks it;
//! - a timer re-sends the transaction while it is unacked, under the
//!   controller's [`RetryPolicy`]: capped exponential backoff with
//!   deterministic jitter plus an overall give-up deadline
//!   ([`DrilldownController::retry`]);
//! - re-sends are idempotent: the batch starts from a table clear and
//!   stamps the binding *generation*, so applying it twice converges
//!   to the same switch state;
//! - imbalance digests carry the generation they were computed under;
//!   digests from an older generation (in flight across a rebind, or
//!   emitted from a partially-applied one) are rejected as stale.
//!
//! [`DrilldownStats`] counts every retry, ack, timeout and stale
//! digest, so chaos runs can assert the loop actually healed.

use crate::alerts::Alert;
use crate::backoff::RetryPolicy;
use crate::detector::TriggerCause;
use netsim::control::ControlMsg;
use netsim::node::{Node, NodeCtx, NodeId};
use netsim::SimTime;
use p4sim::pipeline::DigestRecord;
use stat4_p4::binding;
use stat4_p4::{CaseStudyHandles, DIGEST_IMBALANCE, DIGEST_SPIKE};
use std::net::Ipv4Addr;

/// Where the controller is in the drill-down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DrilldownPhase {
    /// Waiting for a spike on the /8 rate.
    WatchingPrefix,
    /// Subnets bound; waiting for an imbalance digest.
    WatchingSubnets,
    /// Hosts of one subnet bound; waiting for the final imbalance.
    WatchingHosts {
        /// The subnet being drilled into.
        subnet: u8,
    },
    /// Destination identified.
    Done {
        /// The pinpointed destination.
        dest: Ipv4Addr,
    },
}

/// Timeline of one drill-down run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DrilldownReport {
    /// When the spike digest arrived (ns).
    pub spike_alert_at: Option<u64>,
    /// When the subnet-level imbalance digest arrived.
    pub subnet_identified_at: Option<u64>,
    /// When the destination was pinpointed.
    pub pinpointed_at: Option<u64>,
    /// The pinpointed destination.
    pub dest: Option<Ipv4Addr>,
}

impl DrilldownReport {
    /// Spike-alert → pinpoint latency, if the run completed.
    #[must_use]
    pub fn pinpoint_latency(&self) -> Option<u64> {
        Some(self.pinpointed_at? - self.spike_alert_at?)
    }
}

/// Topology the controller drills into.
#[derive(Debug, Clone, Copy)]
pub struct DrilldownTopology {
    /// First octet of the monitored /8.
    pub net: u8,
    /// Number of /24 subnets.
    pub subnets: u8,
    /// Destinations per subnet.
    pub hosts_per_subnet: u8,
}

/// Reliability counters for the self-healing control loop.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DrilldownStats {
    /// Rebind transactions started (one per phase transition).
    pub rebinds: u64,
    /// Control requests sent, including re-sends.
    pub requests_sent: u64,
    /// Responses matched to an outstanding request tag.
    pub acks: u64,
    /// Whole-transaction re-sends after an ack timeout.
    pub retries: u64,
    /// Ack timers that fired with requests still unacked.
    pub timeouts: u64,
    /// Transactions abandoned after exhausting the retry budget.
    pub gave_up: u64,
    /// Subset of `gave_up` abandoned for blowing the overall deadline
    /// rather than the attempt counter.
    pub deadline_giveups: u64,
    /// Imbalance digests rejected for carrying an older generation.
    pub stale_digests: u64,
    /// Rebind transactions rejected by the static safety gate
    /// (`S4L016`) before ever reaching the control channel.
    pub rebinds_rejected: u64,
}

impl DrilldownStats {
    /// Exports the reliability counters into a telemetry snapshot.
    pub fn export(&self, snap: &mut telemetry::Snapshot) {
        snap.push_counter(
            "drilldown_rebinds_total",
            "rebind transactions started",
            &[],
            self.rebinds,
        );
        snap.push_counter(
            "drilldown_rebind_rejected_total",
            "rebind transactions rejected by the static safety gate",
            &[],
            self.rebinds_rejected,
        );
        snap.push_counter(
            "drilldown_retries_total",
            "whole-transaction re-sends after ack timeouts",
            &[],
            self.retries,
        );
        snap.push_counter(
            "drilldown_acks_total",
            "responses matched to an outstanding request tag",
            &[],
            self.acks,
        );
        snap.push_counter(
            "drilldown_deadline_giveups_total",
            "transactions abandoned for blowing the overall retry deadline",
            &[],
            self.deadline_giveups,
        );
        snap.push_counter(
            "drilldown_stale_digests_total",
            "imbalance digests rejected for carrying an older generation",
            &[],
            self.stale_digests,
        );
    }
}

/// One in-flight rebind transaction awaiting acks.
#[derive(Debug, Clone)]
struct PendingRebind {
    /// Binding generation the transaction installs (also the timer
    /// token, so late timers of superseded transactions are ignored).
    generation: u64,
    /// The full request list, kept for idempotent re-sends.
    reqs: Vec<p4sim::RuntimeRequest>,
    /// Tag of the unacked batch message, if one is in flight.
    outstanding: Option<u64>,
    /// Re-send attempts so far.
    attempt: u32,
    /// When the transaction was first sent, for the overall deadline.
    first_sent_at: SimTime,
}

/// The controller node.
pub struct DrilldownController {
    handles: CaseStudyHandles,
    switch: NodeId,
    topo: DrilldownTopology,
    /// Current phase.
    pub phase: DrilldownPhase,
    /// All alerts raised, in order.
    pub alerts: Vec<Alert>,
    /// The run's timeline.
    pub report: DrilldownReport,
    /// Reliability counters (retries, acks, stale digests).
    pub stats: DrilldownStats,
    /// Retry policy for rebind transactions: capped exponential
    /// backoff with deterministic jitter and an overall deadline
    /// ([`RetryPolicy`]). The base delay should comfortably exceed one
    /// control-channel round trip.
    pub retry: RetryPolicy,
    /// Re-sends allowed per transaction before giving up.
    pub max_retries: u32,
    next_tag: u64,
    /// Current binding generation; imbalance digests stamped with an
    /// older generation were in flight across a rebind and are ignored.
    generation: u64,
    pending: Option<PendingRebind>,
    /// Shadow copy of the switch pipeline used to statically vet every
    /// rebind transaction before it is sent (see
    /// [`Self::with_shadow_model`]). `None` disables the gate.
    shadow: Option<p4sim::Pipeline>,
}

impl DrilldownController {
    /// Creates a controller driving `switch` (whose pipeline is the
    /// case-study app described by `handles`).
    #[must_use]
    pub fn new(handles: CaseStudyHandles, switch: NodeId, topo: DrilldownTopology) -> Self {
        Self {
            handles,
            switch,
            topo,
            phase: DrilldownPhase::WatchingPrefix,
            alerts: Vec::new(),
            report: DrilldownReport::default(),
            stats: DrilldownStats::default(),
            retry: RetryPolicy::control_default(0x0064_7269_6c6c),
            max_retries: 8,
            next_tag: 1,
            generation: 0,
            pending: None,
            shadow: None,
        }
    }

    /// Arms the static rebind-safety gate: every rebind transaction is
    /// first applied to `shadow` (a copy of the switch's pipeline) and
    /// symbolically vetted (`S4L016`) — a transaction whose post-state
    /// can fault (e.g. a binding whose action data indexes a register
    /// out of bounds) is rejected and never sent. The shadow tracks
    /// binding-table structure, not per-packet register contents, which
    /// is all the static check reads.
    #[must_use]
    pub fn with_shadow_model(mut self, shadow: p4sim::Pipeline) -> Self {
        self.shadow = Some(shadow);
        self
    }

    /// Current binding generation.
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Assembles and statically vets one rebind transaction: clear old
    /// bindings, reset the distribution, bump the generation register,
    /// install `binds`.
    ///
    /// With a shadow model armed, the whole batch is vetted with
    /// [`p4sim::vet_rebind`] first; a rejected transaction increments
    /// [`DrilldownStats::rebinds_rejected`], leaves the generation
    /// untouched, and returns `None` — nothing reaches the control
    /// channel. On acceptance the shadow advances to the vetted
    /// post-rebind pipeline and the new generation is committed.
    pub fn prepare_rebind(
        &mut self,
        binds: Vec<p4sim::RuntimeRequest>,
    ) -> Option<Vec<p4sim::RuntimeRequest>> {
        let generation = self.generation + 1;
        let mut reqs = vec![binding::clear_bindings_h(&self.handles)];
        reqs.extend(binding::reset_distribution_h(&self.handles));
        reqs.push(p4sim::RuntimeRequest::WriteRegister {
            register: self.handles.generation_reg,
            index: 0,
            value: generation,
        });
        reqs.extend(binds);
        if let Some(shadow) = &self.shadow {
            // Reduced budgets: the gate's teeth are the constant-folded
            // bounds check and the concrete witness replays, neither of
            // which needs an exhaustive path sweep.
            let opts = p4sim::SymbolicOptions {
                path_budget: 512,
                samples: 16,
                ..p4sim::SymbolicOptions::default()
            };
            let report =
                p4sim::vet_rebind(shadow, &p4sim::RuntimeRequest::Batch(reqs.clone()), &opts);
            if !report.passes() {
                self.stats.rebinds_rejected += 1;
                return None;
            }
            self.shadow = report.vetted;
        }
        self.generation = generation;
        self.stats.rebinds += 1;
        Some(reqs)
    }

    /// Starts an acknowledged rebind transaction. The whole request
    /// list is kept for idempotent re-sends until every request is
    /// acked; a transaction the static gate rejects is dropped here.
    fn rebind(&mut self, ctx: &mut NodeCtx, binds: Vec<p4sim::RuntimeRequest>) {
        let Some(reqs) = self.prepare_rebind(binds) else {
            return;
        };
        // A still-unacked older transaction is superseded: its state is
        // about to be overwritten anyway, and its late timer is ignored
        // by the generation check.
        self.pending = Some(PendingRebind {
            generation: self.generation,
            reqs,
            outstanding: None,
            attempt: 0,
            first_sent_at: ctx.now,
        });
        self.send_transaction(ctx);
    }

    /// (Re-)sends the pending transaction as ONE atomic
    /// [`p4sim::RuntimeRequest::Batch`] message and arms the ack timer
    /// with exponentially backed-off delay.
    ///
    /// Atomicity is what makes the loop safe on a faulty channel: the
    /// batch either reaches the switch whole (clear + generation bump +
    /// binds applied back-to-back, so no digest is ever computed on
    /// half-applied bindings) or is lost whole and re-sent on timeout.
    /// Duplicated deliveries reapply cleanly because the batch starts
    /// from a table clear.
    fn send_transaction(&mut self, ctx: &mut NodeCtx) {
        let Some(mut p) = self.pending.take() else {
            return;
        };
        let tag = self.next_tag;
        self.next_tag += 1;
        p.outstanding = Some(tag);
        ctx.send_control(
            self.switch,
            ControlMsg::Request {
                tag,
                req: p4sim::RuntimeRequest::Batch(p.reqs.clone()),
            },
        );
        self.stats.requests_sent += 1;
        // Each transaction jitters on its own stream so back-to-back
        // rebinds don't retry in lockstep.
        let policy = RetryPolicy {
            seed: self.retry.seed ^ p.generation,
            ..self.retry
        };
        ctx.set_timer(policy.delay_ns(p.attempt), p.generation);
        self.pending = Some(p);
    }

    fn on_response(&mut self, tag: u64) {
        let Some(p) = self.pending.as_mut() else {
            return;
        };
        if p.outstanding == Some(tag) {
            self.stats.acks += 1;
            self.pending = None;
        }
    }

    /// True when an imbalance digest belongs to the current bindings.
    fn digest_is_current(&mut self, digest: &DigestRecord) -> bool {
        let current = digest.values.last().copied() == Some(self.generation);
        if !current {
            self.stats.stale_digests += 1;
        }
        current
    }

    fn on_digest(&mut self, ctx: &mut NodeCtx, digest: &DigestRecord) {
        match (digest.id, self.phase) {
            (DIGEST_SPIKE, DrilldownPhase::WatchingPrefix) => {
                self.report.spike_alert_at = Some(ctx.now);
                self.alerts.push(Alert::TrafficSpike {
                    at: ctx.now,
                    interval_count: digest.values.first().copied().unwrap_or(0),
                });
                let binds: Vec<_> = (0..self.topo.subnets)
                    .map(|s| {
                        binding::bind_prefix_h(
                            &self.handles,
                            Ipv4Addr::new(self.topo.net, 0, s, 0),
                            24,
                            0,
                            u64::from(s),
                        )
                    })
                    .collect();
                self.rebind(ctx, binds);
                self.phase = DrilldownPhase::WatchingSubnets;
            }
            (DIGEST_IMBALANCE, DrilldownPhase::WatchingSubnets) => {
                if !self.digest_is_current(digest) {
                    return;
                }
                let group = digest.values.first().copied().unwrap_or(0);
                let subnet = u8::try_from(group).unwrap_or(0);
                self.report.subnet_identified_at = Some(ctx.now);
                self.alerts.push(Alert::TrafficImbalance {
                    at: ctx.now,
                    group,
                });
                let binds: Vec<_> = (1..=self.topo.hosts_per_subnet)
                    .map(|h| {
                        binding::bind_prefix_h(
                            &self.handles,
                            Ipv4Addr::new(self.topo.net, 0, subnet, h),
                            32,
                            0,
                            u64::from(h),
                        )
                    })
                    .collect();
                self.rebind(ctx, binds);
                self.phase = DrilldownPhase::WatchingHosts { subnet };
            }
            (DIGEST_IMBALANCE, DrilldownPhase::WatchingHosts { subnet }) => {
                if !self.digest_is_current(digest) {
                    return;
                }
                let host = u8::try_from(digest.values.first().copied().unwrap_or(0)).unwrap_or(0);
                let dest = Ipv4Addr::new(self.topo.net, 0, subnet, host);
                self.report.pinpointed_at = Some(ctx.now);
                self.report.dest = Some(dest);
                self.alerts.push(Alert::Pinpointed { at: ctx.now, dest });
                self.phase = DrilldownPhase::Done { dest };
            }
            _ => {} // late or duplicate digests are ignored
        }
    }
}

impl Node for DrilldownController {
    fn on_frame(&mut self, _ctx: &mut NodeCtx, _port: usize, _frame: bytes::Bytes) {}

    fn on_control(&mut self, ctx: &mut NodeCtx, _from: NodeId, msg: ControlMsg) {
        match msg {
            ControlMsg::Digest { digest, .. } => self.on_digest(ctx, &digest),
            // Acks for the pending rebind transaction. A duplicated
            // response acks an already-cleared tag and is ignored, so
            // the loop is idempotent under control-channel duplication.
            ControlMsg::Response { tag, .. } => self.on_response(tag),
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut NodeCtx, token: u64) {
        // Only the pending transaction's own timer matters; timers of
        // superseded or fully-acked transactions arrive late and miss.
        let Some(p) = self.pending.as_mut() else {
            return;
        };
        if p.generation != token || p.outstanding.is_none() {
            return;
        }
        self.stats.timeouts += 1;
        if self.retry.past_deadline(ctx.now.saturating_sub(p.first_sent_at)) {
            self.stats.deadline_giveups += 1;
            self.stats.gave_up += 1;
            self.pending = None;
            return;
        }
        if p.attempt >= self.max_retries {
            self.stats.gave_up += 1;
            self.pending = None;
            return;
        }
        p.attempt += 1;
        self.stats.retries += 1;
        self.send_transaction(ctx);
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// Trigger policy for ensemble-driven drilldown.
///
/// Historically the drilldown only reacted to per-engine gated
/// `fired` verdicts. That misses coordinated sub-threshold episodes:
/// several engines at, say, 0.9 of their thresholds is collectively a
/// stronger signal than one engine barely past its own. This config
/// closes that gap — the ensemble's combined weighted score (see
/// [`crate::detector::EnsembleVerdict::combined_q16`]) triggers the
/// drilldown too, once it crosses `combined_threshold_q16`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EnsembleTriggerConfig {
    /// Combined-score trigger threshold, Q16. The default of 0.75
    /// sits below any single engine's firing point (1.0) but well
    /// above quiet-traffic combined scores (engines near zero pull
    /// the weighted mean down hard).
    pub combined_threshold_q16: i64,
    /// Quiet intervals (no trigger) before the ladder resets to the
    /// prefix phase.
    pub reset_after_quiet: u32,
    /// Binding-table entries installed by a prefix → subnets rebind.
    pub subnet_binds: u32,
    /// Binding-table entries installed by a subnets → hosts rebind.
    pub host_binds: u32,
}

impl Default for EnsembleTriggerConfig {
    fn default() -> Self {
        Self {
            combined_threshold_q16: (3 * crate::detector::Q16) / 4,
            reset_after_quiet: 8,
            subnet_binds: 16,
            host_binds: 16,
        }
    }
}

/// Decides whether a verdict warrants drilling down, and why.
#[derive(Debug, Clone, Copy)]
pub struct EnsembleTrigger {
    /// The policy in force.
    pub config: EnsembleTriggerConfig,
}

impl EnsembleTrigger {
    /// A trigger under `config`.
    #[must_use]
    pub fn new(config: EnsembleTriggerConfig) -> Self {
        Self { config }
    }

    /// `Some(cause)` when the verdict should pull the trigger: any
    /// engine's gated fire wins, else the combined weighted score
    /// crossing the configured threshold.
    #[must_use]
    pub fn decide(&self, v: &crate::detector::EnsembleVerdict) -> Option<TriggerCause> {
        if !v.fired.is_empty() {
            return Some(TriggerCause::EnginesFired(
                v.fired.iter().map(|r| r.engine.to_string()).collect(),
            ));
        }
        if v.combined_q16 >= self.config.combined_threshold_q16 {
            return Some(TriggerCause::CombinedScore {
                combined_q16: v.combined_q16,
                threshold_q16: self.config.combined_threshold_q16,
            });
        }
        None
    }
}

/// One drilldown rebind, recorded as alert provenance. Mirrors the
/// acked batch transactions [`DrilldownController`] sends over the
/// control channel, as a deterministic structural record (what was
/// rebound, when, why) rather than the wire messages themselves.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize)]
pub struct RebindTransaction {
    /// Binding generation the transaction installs.
    pub generation: u64,
    /// Epoch that pulled the trigger.
    pub epoch: u64,
    /// Interval end (ns).
    pub at: u64,
    /// Phase before the rebind (`"prefix"`, `"subnets"`, `"hosts"`).
    pub from_phase: String,
    /// Phase after the rebind.
    pub to_phase: String,
    /// Binding-table entries installed.
    pub binds: u32,
    /// What pulled the trigger.
    pub cause: TriggerCause,
}

/// What one triggering verdict did to the drilldown ladder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DrillOutcome {
    /// Why the trigger pulled.
    pub cause: TriggerCause,
    /// Rebind transactions the trigger caused (empty once the ladder
    /// is already at host granularity).
    pub transactions: Vec<RebindTransaction>,
}

/// Ladder position for [`ScoreDrilldown`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ScorePhase {
    Prefix,
    Subnets,
    Hosts,
}

impl ScorePhase {
    fn name(self) -> &'static str {
        match self {
            ScorePhase::Prefix => "prefix",
            ScorePhase::Subnets => "subnets",
            ScorePhase::Hosts => "hosts",
        }
    }
}

/// The replay-side drilldown ladder, driven by [`EnsembleVerdict`]s
/// instead of switch digests: prefix → subnets → hosts, one rebind
/// transaction per triggering interval, resetting to the prefix after
/// a configurable quiet streak. Pure and deterministic — state is a
/// function of the verdict stream alone, so pool and reference replay
/// engines produce bit-identical transaction logs.
#[derive(Debug, Clone)]
pub struct ScoreDrilldown {
    trigger: EnsembleTrigger,
    phase: ScorePhase,
    generation: u64,
    quiet: u32,
}

impl ScoreDrilldown {
    /// A ladder at the prefix phase under `config`.
    #[must_use]
    pub fn new(config: EnsembleTriggerConfig) -> Self {
        Self {
            trigger: EnsembleTrigger::new(config),
            phase: ScorePhase::Prefix,
            generation: 0,
            quiet: 0,
        }
    }

    /// Feeds one interval verdict. Returns the trigger cause and any
    /// rebind transaction it produced; `None` on quiet intervals.
    pub fn observe(&mut self, v: &crate::detector::EnsembleVerdict) -> Option<DrillOutcome> {
        let Some(cause) = self.trigger.decide(v) else {
            self.quiet += 1;
            if self.quiet >= self.trigger.config.reset_after_quiet {
                self.phase = ScorePhase::Prefix;
                self.quiet = 0;
            }
            return None;
        };
        self.quiet = 0;
        let (next, binds) = match self.phase {
            ScorePhase::Prefix => (ScorePhase::Subnets, self.trigger.config.subnet_binds),
            ScorePhase::Subnets => (ScorePhase::Hosts, self.trigger.config.host_binds),
            ScorePhase::Hosts => {
                // Already at host granularity: the alert is attributed
                // to the standing bindings, no rebind needed.
                return Some(DrillOutcome {
                    cause,
                    transactions: Vec::new(),
                });
            }
        };
        self.generation += 1;
        let tx = RebindTransaction {
            generation: self.generation,
            epoch: v.epoch,
            at: v.at,
            from_phase: self.phase.name().to_string(),
            to_phase: next.name().to_string(),
            binds,
            cause: cause.clone(),
        };
        self.phase = next;
        Some(DrillOutcome {
            cause,
            transactions: vec![tx],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::host::{SinkHost, TraceGen, TrafficSource};
    use netsim::{P4SwitchNode, Simulation, MICROS, MILLIS};
    use stat4_p4::{CaseStudyApp, CaseStudyParams, Stat4Config};
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;
    use workloads::SpikeWorkload;

    /// Full closed loop: workload → switch → digests → controller →
    /// binding edits → pinpoint. A miniature of the paper's Fig. 6 run.
    #[test]
    fn end_to_end_drilldown_pinpoints_victim() {
        let params = CaseStudyParams {
            interval_log2: 20, // ~1 ms
            window_size: 32,
            min_intervals: 8,
            config: Stat4Config {
                counter_num: 2,
                counter_size: 256,
                width_bits: 64,
            },
            ..CaseStudyParams::default()
        };
        let workload = SpikeWorkload {
            background_pps: 20_000,
            spike_multiplier: 10,
            spike_start_range: (40_000_000, 60_000_000),
            duration: 400_000_000, // 0.4 s
            seed: 11,
            ..SpikeWorkload::default()
        };
        let (schedule, truth) = workload.generate();
        let app = CaseStudyApp::build(params).unwrap();
        let handles = app.handles();
        // The shadow model for the static rebind gate: a second build
        // of the same app, matching the switch's startup state.
        let shadow = CaseStudyApp::build(params).unwrap().pipeline;

        let mut sim = Simulation::new();
        let source = sim.add_node(Box::new(TrafficSource::new(Box::new(TraceGen::new(
            schedule,
        )))));
        let sink_count = Arc::new(AtomicU64::new(0));
        let sink = sim.add_node(Box::new(SinkHost::new(sink_count.clone())));
        // Placeholder id for the controller; switch needs it first.
        let switch = sim.add_node(Box::new(P4SwitchNode::new(app.pipeline)));
        let controller = sim.add_node(Box::new(
            DrilldownController::new(
                handles,
                switch,
                DrilldownTopology {
                    net: 10,
                    subnets: 6,
                    hosts_per_subnet: 6,
                },
            )
            .with_shadow_model(shadow),
        ));
        sim.node_as_mut::<P4SwitchNode>(switch).unwrap().controller = Some(controller);

        sim.connect(source, 0, switch, 0, 20 * MICROS);
        sim.connect(switch, 1, sink, 0, 20 * MICROS);
        sim.connect_control(switch, controller, 2 * MILLIS);
        sim.run();

        let ctl = sim.node_as::<DrilldownController>(controller).unwrap();
        let report = ctl.report;
        assert!(
            matches!(ctl.phase, DrilldownPhase::Done { .. }),
            "phase = {:?}, alerts = {:?}",
            ctl.phase,
            ctl.alerts
        );
        assert_eq!(report.dest, Some(truth.spike_dest), "right victim");

        // Detection latency: the spike digest is emitted at the close of
        // the first spiky interval; with ~1 ms intervals + 2 ms channel
        // the alert must arrive within a few ms of the onset.
        let detect = report.spike_alert_at.unwrap();
        assert!(detect >= truth.spike_start);
        assert!(
            detect < truth.spike_start + 8_000_000,
            "detected {} ns after onset",
            detect - truth.spike_start
        );

        // The drill-down needed two more controller round trips.
        let pinpoint = report.pinpointed_at.unwrap();
        assert!(pinpoint > detect + 4 * MILLIS, "two RTTs at 2 ms each");
        assert!(report.subnet_identified_at.unwrap() > detect);
        assert!(report.subnet_identified_at.unwrap() < pinpoint);

        // Every rebind the drill-down sent passed the static gate.
        assert_eq!(ctl.stats.rebinds_rejected, 0, "{:?}", ctl.stats);
        assert!(ctl.stats.rebinds >= 2, "{:?}", ctl.stats);
    }

    /// The static `S4L016` gate: a rebind transaction whose binding
    /// would index the statistics registers out of bounds is rejected
    /// before it reaches the control channel — nothing is sent, the
    /// binding generation does not advance, and the
    /// `drilldown_rebind_rejected_total` counter increments.
    #[test]
    fn static_gate_rejects_poisoned_rebind() {
        let params = CaseStudyParams::default();
        let app = CaseStudyApp::build(params).unwrap();
        let handles = app.handles();
        let mut ctl = DrilldownController::new(
            handles,
            0,
            DrilldownTopology {
                net: 10,
                subnets: 4,
                hosts_per_subnet: 4,
            },
        )
        .with_shadow_model(app.pipeline);

        // A sane rebind passes the gate and advances the generation.
        let good = binding::bind_prefix_h(&handles, Ipv4Addr::new(10, 0, 0, 0), 24, 0, 0);
        let reqs = ctl
            .prepare_rebind(vec![good])
            .expect("a sound rebind must be vetted through");
        // clear + 5 register resets + generation stamp + one bind
        assert_eq!(reqs.len(), 8);
        assert_eq!(ctl.generation(), 1);
        assert_eq!(ctl.stats.rebinds, 1);

        // A poisoned binding: its action data carries a base far past
        // the statistics registers, so the tracked path would fault
        // with a register-out-of-bounds on every matching packet. The
        // gate finds the constant-folded OOB statically.
        let bad = p4sim::RuntimeRequest::InsertEntry {
            table: handles.drill_table,
            entry: p4sim::Entry {
                key: binding::prefix_key(Ipv4Addr::new(10, 0, 1, 0), 24),
                priority: 24,
                action: handles.track_group_action,
                action_data: vec![1_000_000, 0, 0],
            },
        };
        assert!(
            ctl.prepare_rebind(vec![bad]).is_none(),
            "the poisoned rebind must be rejected"
        );
        assert_eq!(ctl.generation(), 1, "generation must not advance");
        assert_eq!(ctl.stats.rebinds, 1, "no rebind was started");
        assert_eq!(ctl.stats.rebinds_rejected, 1);
        assert_eq!(ctl.stats.requests_sent, 0, "nothing reached the channel");

        // The rejection is visible to telemetry.
        let mut snap = telemetry::Snapshot::new();
        ctl.stats.export(&mut snap);
        assert_eq!(snap.counter_sum("drilldown_rebind_rejected_total"), 1);
        let text = telemetry::render_prometheus(&snap);
        telemetry::check_prometheus(&text).expect("valid exposition");

        // The gate does not wedge: the next sound rebind still passes.
        let again = binding::bind_prefix_h(&handles, Ipv4Addr::new(10, 0, 2, 0), 24, 0, 2);
        assert!(ctl.prepare_rebind(vec![again]).is_some());
        assert_eq!(ctl.generation(), 2);
    }

    #[test]
    fn no_spike_no_alerts() {
        let params = CaseStudyParams {
            interval_log2: 20,
            window_size: 32,
            min_intervals: 8,
            ..CaseStudyParams::default()
        };
        let workload = SpikeWorkload {
            background_pps: 20_000,
            // The spike is scheduled after the workload ends: pure
            // background traffic.
            spike_start_range: (300_000_000, 310_000_000),
            duration: 200_000_000,
            seed: 5,
            ..SpikeWorkload::default()
        };
        let (schedule, _) = workload.generate();
        let app = CaseStudyApp::build(params).unwrap();
        let handles = app.handles();
        let mut sim = Simulation::new();
        let source = sim.add_node(Box::new(TrafficSource::new(Box::new(TraceGen::new(
            schedule,
        )))));
        let sink = sim.add_node(Box::new(SinkHost::new(Arc::new(AtomicU64::new(0)))));
        let switch = sim.add_node(Box::new(P4SwitchNode::new(app.pipeline)));
        let controller = sim.add_node(Box::new(DrilldownController::new(
            handles,
            switch,
            DrilldownTopology {
                net: 10,
                subnets: 6,
                hosts_per_subnet: 6,
            },
        )));
        sim.node_as_mut::<P4SwitchNode>(switch).unwrap().controller = Some(controller);
        sim.connect(source, 0, switch, 0, 20 * MICROS);
        sim.connect(switch, 1, sink, 0, 20 * MICROS);
        sim.connect_control(switch, controller, 2 * MILLIS);
        sim.run();

        let ctl = sim.node_as::<DrilldownController>(controller).unwrap();
        assert_eq!(ctl.phase, DrilldownPhase::WatchingPrefix);
        assert!(ctl.alerts.is_empty(), "alerts: {:?}", ctl.alerts);
    }

    /// The self-healing loop under chaos: with 25% control-message
    /// loss plus jitter, rebind requests get dropped in flight — the
    /// ack timers must re-send them until the drill-down completes.
    #[test]
    fn drilldown_heals_over_lossy_control_channel() {
        let params = CaseStudyParams {
            interval_log2: 20,
            window_size: 32,
            min_intervals: 8,
            config: Stat4Config {
                counter_num: 2,
                counter_size: 256,
                width_bits: 64,
            },
            ..CaseStudyParams::default()
        };
        let workload = SpikeWorkload {
            background_pps: 20_000,
            spike_multiplier: 10,
            spike_start_range: (40_000_000, 60_000_000),
            duration: 600_000_000,
            seed: 11,
            ..SpikeWorkload::default()
        };
        let (schedule, truth) = workload.generate();
        let app = CaseStudyApp::build(params).unwrap();
        let handles = app.handles();

        let mut sim = Simulation::new();
        sim.set_fault_schedule(
            faultinject::FaultSchedule::parse("ctrl_loss=0.25,ctrl_delay_ns=300us", 2).unwrap(),
        );
        let source = sim.add_node(Box::new(TrafficSource::new(Box::new(TraceGen::new(
            schedule,
        )))));
        let sink = sim.add_node(Box::new(SinkHost::new(Arc::new(AtomicU64::new(0)))));
        let switch = sim.add_node(Box::new(P4SwitchNode::new(app.pipeline)));
        let controller = sim.add_node(Box::new(DrilldownController::new(
            handles,
            switch,
            DrilldownTopology {
                net: 10,
                subnets: 6,
                hosts_per_subnet: 6,
            },
        )));
        sim.node_as_mut::<P4SwitchNode>(switch).unwrap().controller = Some(controller);
        sim.connect(source, 0, switch, 0, 20 * MICROS);
        sim.connect(switch, 1, sink, 0, 20 * MICROS);
        sim.connect_control(switch, controller, 2 * MILLIS);
        sim.run();

        let ctl = sim.node_as::<DrilldownController>(controller).unwrap();
        assert!(
            matches!(ctl.phase, DrilldownPhase::Done { .. }),
            "drill-down must complete despite loss: phase = {:?}, stats = {:?}",
            ctl.phase,
            ctl.stats
        );
        assert_eq!(ctl.report.dest, Some(truth.spike_dest), "right victim");
        // The chaos actually bit and the loop actually healed.
        assert!(
            sim.fault_stats.control_dropped > 0,
            "schedule dropped nothing: {:?}",
            sim.fault_stats
        );
        assert!(ctl.stats.acks > 0, "{:?}", ctl.stats);
        assert!(
            ctl.stats.retries > 0,
            "lost rebind requests must trigger re-sends: {:?}",
            ctl.stats
        );
        assert_eq!(ctl.stats.gave_up, 0, "{:?}", ctl.stats);
    }

    /// Two chaos runs with one seed are bit-identical; the timeline is
    /// reproducible for debugging.
    #[test]
    fn lossy_drilldown_is_seed_deterministic() {
        let run = |seed: u64| {
            let params = CaseStudyParams {
                interval_log2: 20,
                window_size: 32,
                min_intervals: 8,
                ..CaseStudyParams::default()
            };
            let (schedule, _) = SpikeWorkload {
                background_pps: 20_000,
                spike_multiplier: 10,
                spike_start_range: (40_000_000, 60_000_000),
                duration: 300_000_000,
                seed: 11,
                ..SpikeWorkload::default()
            }
            .generate();
            let app = CaseStudyApp::build(params).unwrap();
            let handles = app.handles();
            let mut sim = Simulation::new();
            sim.set_fault_schedule(
                faultinject::FaultSchedule::parse("ctrl_loss=0.2,ctrl_delay_ns=200us", seed)
                    .unwrap(),
            );
            let source = sim.add_node(Box::new(TrafficSource::new(Box::new(TraceGen::new(
                schedule,
            )))));
            let sink = sim.add_node(Box::new(SinkHost::new(Arc::new(AtomicU64::new(0)))));
            let switch = sim.add_node(Box::new(P4SwitchNode::new(app.pipeline)));
            let controller = sim.add_node(Box::new(DrilldownController::new(
                handles,
                switch,
                DrilldownTopology {
                    net: 10,
                    subnets: 6,
                    hosts_per_subnet: 6,
                },
            )));
            sim.node_as_mut::<P4SwitchNode>(switch).unwrap().controller = Some(controller);
            sim.connect(source, 0, switch, 0, 20 * MICROS);
            sim.connect(switch, 1, sink, 0, 20 * MICROS);
            sim.connect_control(switch, controller, 2 * MILLIS);
            sim.run();
            let ctl = sim.node_as::<DrilldownController>(controller).unwrap();
            (ctl.report, ctl.stats, ctl.alerts.clone())
        };
        let a = run(3);
        let b = run(3);
        assert_eq!(a, b);
        let c = run(4);
        assert_ne!(a.1, c.1, "different seed, different chaos");
    }

    #[test]
    fn report_latency_helper() {
        let mut r = DrilldownReport::default();
        assert_eq!(r.pinpoint_latency(), None);
        r.spike_alert_at = Some(100);
        r.pinpointed_at = Some(350);
        assert_eq!(r.pinpoint_latency(), Some(250));
    }

    use crate::detector::{
        confidence_q16, DetectionResult, Detector, Ensemble, SignalContext, Q16,
    };
    use stat4_core::{FrequencyDist, RunningStats};

    /// An engine pinned at a fixed sub-threshold score; never fires.
    struct SimmeringEngine {
        name: &'static str,
        score: i64,
    }

    impl Detector for SimmeringEngine {
        fn name(&self) -> &'static str {
            self.name
        }
        fn update(&mut self, ctx: &SignalContext<'_>) -> Option<DetectionResult> {
            Some(DetectionResult {
                engine: self.name,
                at: ctx.at,
                epoch: ctx.epoch,
                score: self.score,
                weight: Q16,
                confidence: confidence_q16(self.score),
                expected: 100,
                observed: 90,
                fired: self.score >= Q16,
            })
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
    }

    fn quiet_ctx<'a>(
        at: u64,
        kinds: &'a FrequencyDist,
        stats: &'a RunningStats,
    ) -> SignalContext<'a> {
        SignalContext {
            at,
            epoch: at / 10,
            interval_ns: 10,
            spanned: 1,
            packets: 100,
            syns: 5,
            len_sum: 40_000,
            distinct_sources: 10,
            median_len: 400,
            kinds,
            len_stats: stats,
        }
    }

    /// Regression for the ROADMAP item-1 follow-on: three engines each
    /// simmering at 0.9 of threshold never fire individually, but the
    /// combined weighted score (0.9·Q16 ≥ 0.75·Q16) now pulls the
    /// drilldown trigger — the episode is no longer invisible.
    #[test]
    fn sub_threshold_multi_engine_episode_triggers_drilldown() {
        let kinds = FrequencyDist::new(0, 7).unwrap();
        let stats = RunningStats::new();
        let score = (9 * Q16) / 10;
        let mut ens = Ensemble::new(vec![
            Box::new(SimmeringEngine { name: "a", score }),
            Box::new(SimmeringEngine { name: "b", score }),
            Box::new(SimmeringEngine { name: "c", score }),
        ]);
        let mut drill = ScoreDrilldown::new(EnsembleTriggerConfig::default());
        let v = ens.observe(&quiet_ctx(10, &kinds, &stats));
        assert!(v.fired.is_empty(), "no single engine may fire");
        assert_eq!(v.combined_q16, score);
        let outcome = drill
            .observe(&v)
            .expect("combined sub-threshold scores must trigger");
        match &outcome.cause {
            TriggerCause::CombinedScore {
                combined_q16,
                threshold_q16,
            } => {
                assert_eq!(*combined_q16, score);
                assert_eq!(*threshold_q16, (3 * Q16) / 4);
            }
            other => panic!("expected CombinedScore cause, got {other:?}"),
        }
        assert_eq!(outcome.transactions.len(), 1);
        let tx = &outcome.transactions[0];
        assert_eq!((tx.from_phase.as_str(), tx.to_phase.as_str()), ("prefix", "subnets"));
        assert_eq!(tx.generation, 1);
    }

    /// A gated engine fire always wins over the combined score as the
    /// recorded cause, and the ladder climbs one phase per trigger
    /// until hosts, then attributes without rebinding.
    #[test]
    fn fired_engines_drive_the_ladder_to_hosts() {
        let kinds = FrequencyDist::new(0, 7).unwrap();
        let stats = RunningStats::new();
        let mut ens = Ensemble::new(vec![Box::new(SimmeringEngine {
            name: "hot",
            score: 2 * Q16,
        })]);
        let mut drill = ScoreDrilldown::new(EnsembleTriggerConfig::default());
        let mut txs = Vec::new();
        for at in [10u64, 20, 30] {
            let v = ens.observe(&quiet_ctx(at, &kinds, &stats));
            let outcome = drill.observe(&v).expect("fired engine must trigger");
            assert_eq!(
                outcome.cause,
                TriggerCause::EnginesFired(vec!["hot".to_string()])
            );
            txs.extend(outcome.transactions);
        }
        let phases: Vec<_> = txs
            .iter()
            .map(|t| (t.from_phase.as_str(), t.to_phase.as_str()))
            .collect();
        assert_eq!(phases, [("prefix", "subnets"), ("subnets", "hosts")]);
        assert_eq!(txs.iter().map(|t| t.generation).collect::<Vec<_>>(), [1, 2]);
    }

    /// Quiet streaks reset the ladder to the prefix phase.
    #[test]
    fn quiet_streak_resets_the_ladder() {
        let kinds = FrequencyDist::new(0, 7).unwrap();
        let stats = RunningStats::new();
        let config = EnsembleTriggerConfig {
            reset_after_quiet: 2,
            ..EnsembleTriggerConfig::default()
        };
        let mut drill = ScoreDrilldown::new(config);
        let fire = |at: u64| {
            let mut e = Ensemble::new(vec![Box::new(SimmeringEngine {
                name: "hot",
                score: 2 * Q16,
            })]);
            e.observe(&quiet_ctx(at, &kinds, &stats))
        };
        let calm = |at: u64| {
            let mut e = Ensemble::new(vec![Box::new(SimmeringEngine { name: "cold", score: 0 })]);
            e.observe(&quiet_ctx(at, &kinds, &stats))
        };
        let first = drill.observe(&fire(10)).unwrap();
        assert_eq!(first.transactions[0].to_phase, "subnets");
        assert!(drill.observe(&calm(20)).is_none());
        assert!(drill.observe(&calm(30)).is_none());
        // Reset happened: the next trigger starts from the prefix again.
        let again = drill.observe(&fire(40)).unwrap();
        assert_eq!(again.transactions[0].from_phase, "prefix");
    }
}
