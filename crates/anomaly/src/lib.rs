//! # anomaly
//!
//! In-switch anomaly-detection applications built on Stat4 — one per
//! use case in the paper's Table 1:
//!
//! | use case | module | values of interest |
//! |---|---|---|
//! | volumetric DDoS | [`drilldown`] | traffic rate over time (+ drill-down) |
//! | SYN flood | [`synflood`] | SYN rate / SYN share of packet types |
//! | remote failure | [`stalled`] | stalled flows over time |
//! | load balancing | [`drilldown`] | traffic rate across IPs |
//! | traffic classification | [`classify`] | packets by type |
//!
//! The centrepiece is [`drilldown::DrilldownController`], the
//! controller half of the paper's Sec. 4 case study: it reacts to
//! in-switch spike alerts by progressively narrowing the switch's
//! binding tables (/8 rate → per-/24 groups → per-destination) until
//! the spike's destination is pinpointed, and records the timeline so
//! experiments can measure detection and pinpoint latency.
//!
//! The other detectors are *software-side* users of `stat4-core`,
//! demonstrating that the same integer algorithms serve both in-switch
//! (via `stat4-p4`) and host-side deployment.
//!
//! Detection is organised as a pluggable ensemble: every engine
//! implements [`detector::Detector`] over a shared per-interval
//! [`detector::SignalContext`], and [`detector::Ensemble`] combines
//! their Q16 scores. See [`engines`] for the catalogue.
#![forbid(unsafe_code)]


pub mod alerts;
pub mod backoff;
pub mod classify;
pub mod detector;
pub mod drilldown;
pub mod engines;
pub mod epoch;
pub mod metrics;
pub mod polling;
pub mod shift;
pub mod stalled;
pub mod synflood;

pub use alerts::Alert;
pub use backoff::RetryPolicy;
pub use detector::{
    confidence_q16, ratio_q16, AlertProvenance, DetectionResult, Detector, EngineAtFire,
    EngineSummary, Ensemble, EnsembleVerdict, SignalContext, SignalValues, TriggerCause, Q16,
    SCORE_CAP,
};
pub use engines::{
    AdaptiveEngine, AdaptiveEngineConfig, CardinalityEngine, CardinalityEngineConfig,
    CusumEngine, CusumEngineConfig, EnsembleConfig, HoltWintersEngine, HoltWintersEngineConfig,
    MedianShiftEngine, MultiScaleEngine, MultiScaleEngineConfig, StalledEngine, SynFloodEngine,
};
pub use metrics::{Check, DetectorMetrics};
pub use classify::DriftMonitor;
pub use drilldown::{
    DrillOutcome, DrilldownController, DrilldownPhase, DrilldownReport, DrilldownStats,
    EnsembleTrigger, EnsembleTriggerConfig, RebindTransaction, ScoreDrilldown,
};
pub use epoch::EpochSynFloodDetector;
pub use polling::PollingController;
pub use shift::PercentileShiftDetector;
pub use stalled::StalledFlowDetector;
pub use synflood::SynFloodDetector;
