//! Remote-failure detection via stalled flows (paper Table 1: "remote
//! failure — satisfy uptime SLAs, stalled flows over time").
//!
//! The value of interest is *flow activity per interval*: how many
//! tracked flows made progress. A remote failure (link cut, blackholed
//! prefix) makes many flows stall at once, so the per-interval activity
//! collapses — a **lower-tail** outlier of the windowed distribution,
//! the mirror image of the spike check (`N·x < Xsum − k·σ(NX)`).

use crate::alerts::Alert;
use stat4_core::window::WindowedDist;

/// Configuration.
#[derive(Debug, Clone, Copy)]
pub struct StalledFlowConfig {
    /// Interval length (ns).
    pub interval_ns: u64,
    /// Window capacity in intervals.
    pub window: usize,
    /// σ multiplier.
    pub k: u32,
    /// Minimum closed intervals before alerts.
    pub min_intervals: usize,
}

impl Default for StalledFlowConfig {
    fn default() -> Self {
        Self {
            interval_ns: 100_000_000, // 100 ms
            window: 50,
            k: 2,
            min_intervals: 10,
        }
    }
}

/// Streaming detector over per-interval activity counts.
#[derive(Debug)]
pub struct StalledFlowDetector {
    cfg: StalledFlowConfig,
    window: WindowedDist,
    current_interval: Option<u64>,
    /// Alerts raised.
    pub alerts: Vec<Alert>,
    /// First alert time.
    pub detected_at: Option<u64>,
}

impl StalledFlowDetector {
    /// Creates a detector.
    ///
    /// # Panics
    ///
    /// Panics on a zero-interval window.
    #[must_use]
    pub fn new(cfg: StalledFlowConfig) -> Self {
        Self {
            window: WindowedDist::new(cfg.window).expect("non-empty window"),
            current_interval: None,
            alerts: Vec::new(),
            detected_at: None,
            cfg,
        }
    }

    /// Records one unit of flow activity (e.g. an ACK advancing a flow)
    /// at time `at`; returns an alert if the interval that just closed
    /// was anomalously quiet.
    pub fn observe_activity(&mut self, at: u64) -> Option<Alert> {
        let alert = self.roll_to(at);
        self.window.accumulate(1);
        alert
    }

    /// Records `n` units of activity at time `at` in one call —
    /// behaviorally identical to `n` calls of
    /// [`Self::observe_activity`] at the same instant (the roll to
    /// `at` happens once, then the units accumulate), which the
    /// equivalence proptest in this module pins down. `n == 0` is a
    /// plain [`Self::tick`]. This is the entry point for epoch-driven
    /// callers that learn per-interval activity from merged reports.
    pub fn observe_activity_n(&mut self, at: u64, n: u64) -> Option<Alert> {
        let alert = self.roll_to(at);
        self.window
            .accumulate(i64::try_from(n).unwrap_or(i64::MAX));
        alert
    }

    /// Advances time without activity (call at least once per interval
    /// when idle, e.g. from a timer); may close quiet intervals and
    /// alert on them.
    pub fn tick(&mut self, at: u64) -> Option<Alert> {
        self.roll_to(at)
    }

    fn roll_to(&mut self, at: u64) -> Option<Alert> {
        let ivl = at / self.cfg.interval_ns;
        let cur = match self.current_interval {
            None => {
                self.current_interval = Some(ivl);
                return None;
            }
            Some(c) => c,
        };
        if ivl == cur {
            return None;
        }
        let mut first_alert = None;
        // Close every elapsed interval, including fully idle ones —
        // exactly the case a failure produces.
        for _ in cur..ivl {
            let closed = self.window.current();
            let quiet = self.window.is_drop_margined(
                closed,
                self.cfg.k,
                self.cfg.min_intervals,
                3, // -12.5% of the mean
                4,
            );
            self.window.close_interval();
            if quiet {
                let alert = Alert::ActivityDrop {
                    at,
                    interval_value: closed,
                };
                self.detected_at.get_or_insert(at);
                self.alerts.push(alert.clone());
                if first_alert.is_none() {
                    first_alert = Some(alert);
                }
            }
        }
        self.current_interval = Some(ivl);
        first_alert
    }

    /// Stats over the stored window (for reports).
    #[must_use]
    pub fn stats(&self) -> &stat4_core::running::RunningStats {
        self.window.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> StalledFlowConfig {
        StalledFlowConfig {
            interval_ns: 1_000_000,
            window: 32,
            k: 2,
            min_intervals: 8,
        }
    }

    /// Steady activity, then a failure zeroes it: detect on the first
    /// quiet interval.
    #[test]
    fn detects_activity_collapse() {
        let mut det = StalledFlowDetector::new(cfg());
        // ~50 activity units per 1 ms interval for 30 intervals, with
        // deterministic variation.
        for i in 0..30u64 {
            let per = 48 + (i % 5);
            for j in 0..per {
                det.observe_activity(i * 1_000_000 + j * 10_000);
            }
        }
        assert!(det.detected_at.is_none(), "healthy phase clean");
        // Failure: silence. A tick 3 intervals later must close the
        // quiet intervals and alert.
        let alert = det.tick(33 * 1_000_000);
        assert!(alert.is_some(), "collapse detected");
        match det.alerts[0] {
            Alert::ActivityDrop { interval_value, .. } => {
                assert!(interval_value < 10, "quiet interval: {interval_value}");
            }
            ref other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn gradual_decline_within_band_is_quiet() {
        let mut det = StalledFlowDetector::new(cfg());
        for i in 0..40u64 {
            // 50 ± small wiggle, no collapse.
            let per = 50 + (i % 3) - 1;
            for j in 0..per {
                det.observe_activity(i * 1_000_000 + j * 10_000);
            }
        }
        assert!(det.detected_at.is_none(), "alerts: {:?}", det.alerts);
    }

    mod bulk_equivalence {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// `observe_activity_n(at, n)` ≡ `n × observe_activity(at)`:
            /// identical alert streams and identical window stats on
            /// arbitrary (time, count) sequences.
            #[test]
            fn bulk_activity_equals_repeated_single(
                steps in proptest::collection::vec((0u64..40, 0u64..80), 1..60),
            ) {
                let mut single = StalledFlowDetector::new(cfg());
                let mut bulk = StalledFlowDetector::new(cfg());
                let mut t = 0u64;
                for &(advance, n) in &steps {
                    t += advance * 250_000;
                    for _ in 0..n {
                        single.observe_activity(t);
                    }
                    if n == 0 {
                        single.tick(t);
                    }
                    bulk.observe_activity_n(t, n);
                    prop_assert_eq!(&single.alerts, &bulk.alerts);
                    prop_assert_eq!(single.detected_at, bulk.detected_at);
                    prop_assert_eq!(single.stats(), bulk.stats());
                }
            }
        }
    }

    #[test]
    fn warmup_suppresses_alerts() {
        let mut det = StalledFlowDetector::new(cfg());
        // Two busy intervals then silence: window too shallow to judge.
        for i in 0..2u64 {
            for j in 0..50 {
                det.observe_activity(i * 1_000_000 + j * 10_000);
            }
        }
        assert!(det.tick(6 * 1_000_000).is_none());
        assert!(det.detected_at.is_none());
    }
}
