//! Alert types shared by the detectors.

use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// An anomaly surfaced by a detector, timestamped in simulation time.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Alert {
    /// Traffic rate exceeded mean + k·σ of the recent-interval window.
    TrafficSpike {
        /// Time of detection (ns).
        at: u64,
        /// The outlying interval's packet count.
        interval_count: u64,
    },
    /// One monitored group receives disproportionate traffic.
    TrafficImbalance {
        /// Time of detection (ns).
        at: u64,
        /// The guilty group index.
        group: u64,
    },
    /// The spike's destination was pinpointed.
    Pinpointed {
        /// Time of identification (ns).
        at: u64,
        /// The destination.
        dest: Ipv4Addr,
    },
    /// SYN rate / share anomaly.
    SynFlood {
        /// Time of detection (ns).
        at: u64,
        /// SYN observations at detection.
        syn_count: u64,
    },
    /// Activity collapsed (stalled flows / failure).
    ActivityDrop {
        /// Time of detection (ns).
        at: u64,
        /// The anomalously low interval value.
        interval_value: i64,
    },
    /// Traffic composition drifted from its history.
    CompositionDrift {
        /// Time of detection (ns).
        at: u64,
        /// Index of the drifting packet kind.
        kind: usize,
    },
}

impl Alert {
    /// Detection timestamp.
    #[must_use]
    pub fn at(&self) -> u64 {
        match self {
            Alert::TrafficSpike { at, .. }
            | Alert::TrafficImbalance { at, .. }
            | Alert::Pinpointed { at, .. }
            | Alert::SynFlood { at, .. }
            | Alert::ActivityDrop { at, .. }
            | Alert::CompositionDrift { at, .. } => *at,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn at_extracts_timestamp() {
        let a = Alert::TrafficSpike {
            at: 77,
            interval_count: 5,
        };
        assert_eq!(a.at(), 77);
        let b = Alert::Pinpointed {
            at: 99,
            dest: Ipv4Addr::new(10, 0, 1, 2),
        };
        assert_eq!(b.at(), 99);
    }
}
