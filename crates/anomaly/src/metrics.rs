//! Per-detector telemetry: fire counters and detection-delay tracking.
//!
//! Every detector knows two timestamps the operator cares about: when
//! the underlying signal *first looked anomalous* (the raw Stat4 check
//! fired, ignoring warm-up gating) and when the detector actually
//! *alerted* (after `min_intervals`, margins, …). The gap between them
//! is the detection delay the paper's case study measures; here it
//! feeds a [`LogLinearHistogram`] so a replay exports the whole delay
//! distribution, not just the first-alert scalar.
//!
//! An *episode* starts at the first anomalous observation after a
//! quiet one and ends when the signal goes quiet again; at most one
//! delay sample is recorded per episode (the first alert). Fires are
//! counted per check (`rate` / `share`) every time.

use stat4_core::{Mergeable, Stat4Result};
use telemetry::{Counter, LogLinearHistogram, Snapshot};

/// Which Stat4 check raised an alert.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Check {
    /// Per-interval rate spike (windowed mean + k·σ).
    Rate,
    /// Composition share outlier (`n·f > Xsum + k·σ(NX) + margin·n`).
    Share,
}

/// Fire counters and detection-delay histogram for one detector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetectorMetrics {
    /// Rate-check alerts raised.
    pub rate_fires: Counter,
    /// Share-check alerts raised.
    pub share_fires: Counter,
    /// Delay from the first anomalous epoch of an episode to its first
    /// alert, in the same time unit the detector observes (ns here).
    pub detection_delay: LogLinearHistogram,
    episode_start: Option<u64>,
    episode_alerted: bool,
}

impl Default for DetectorMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl DetectorMetrics {
    /// Fresh, quiet metrics.
    #[must_use]
    pub fn new() -> Self {
        Self {
            rate_fires: Counter::new(),
            share_fires: Counter::new(),
            detection_delay: LogLinearHistogram::default(),
            episode_start: None,
            episode_alerted: false,
        }
    }

    /// Feeds the raw (ungated) anomaly signal for the observation at
    /// `at`: opens an episode on the first anomalous observation,
    /// closes it when the signal goes quiet.
    pub fn signal(&mut self, at: u64, anomalous: bool) {
        if anomalous {
            if self.episode_start.is_none() {
                self.episode_start = Some(at);
                self.episode_alerted = false;
            }
        } else {
            self.episode_start = None;
            self.episode_alerted = false;
        }
    }

    /// Records an alert from `check` at time `at`; the first alert of
    /// an episode contributes `at − episode_start` to the delay
    /// histogram.
    pub fn fired(&mut self, check: Check, at: u64) {
        match check {
            Check::Rate => self.rate_fires.inc(),
            Check::Share => self.share_fires.inc(),
        }
        if let Some(start) = self.episode_start {
            if !self.episode_alerted {
                self.detection_delay.record(at.saturating_sub(start));
                self.episode_alerted = true;
            }
        }
    }

    /// Total alerts across checks.
    #[must_use]
    pub fn fires(&self) -> u64 {
        self.rate_fires.get() + self.share_fires.get()
    }

    /// When the current anomaly episode began, if one is open.
    #[must_use]
    pub fn episode_start(&self) -> Option<u64> {
        self.episode_start
    }

    /// Exports the standard detector families into `snap`, labelled
    /// with `detector="<name>"`.
    pub fn export(&self, snap: &mut Snapshot, detector: &str) {
        snap.push_counter(
            "anomaly_detector_fires_total",
            "alerts raised, by detector and check",
            &[("detector", detector), ("check", "rate")],
            self.rate_fires.get(),
        );
        snap.push_counter(
            "anomaly_detector_fires_total",
            "alerts raised, by detector and check",
            &[("detector", detector), ("check", "share")],
            self.share_fires.get(),
        );
        snap.push_histogram(
            "anomaly_detection_delay_ns",
            "first anomalous epoch to first alert, per episode",
            &[("detector", detector)],
            &self.detection_delay,
        );
    }
}

impl Mergeable for DetectorMetrics {
    /// Counters and delay histograms add; episode state (an open
    /// episode is a *path* through one detector's timeline) resets —
    /// merged metrics are a report, not a live detector.
    fn merge_from(&mut self, other: &Self) -> Stat4Result<()> {
        self.rate_fires.merge_from(&other.rate_fires)?;
        self.share_fires.merge_from(&other.share_fires)?;
        self.detection_delay.merge_from(&other.detection_delay)?;
        self.episode_start = None;
        self.episode_alerted = false;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_delay_sample_per_episode() {
        let mut m = DetectorMetrics::new();
        m.signal(100, true); // episode opens
        m.signal(200, true);
        m.fired(Check::Rate, 300); // delay 200
        m.fired(Check::Share, 300); // same episode: counted, no new delay
        assert_eq!(m.fires(), 2);
        assert_eq!(m.detection_delay.count(), 1);
        assert_eq!(m.detection_delay.max(), Some(200));

        m.signal(400, false); // episode closes
        m.signal(500, true); // new episode
        m.fired(Check::Rate, 500); // delay 0
        assert_eq!(m.detection_delay.count(), 2);
        assert_eq!(m.detection_delay.min(), Some(0));
    }

    #[test]
    fn fire_without_episode_counts_but_records_no_delay() {
        let mut m = DetectorMetrics::new();
        m.fired(Check::Rate, 10);
        assert_eq!(m.rate_fires.get(), 1);
        assert!(m.detection_delay.is_empty());
    }

    #[test]
    fn export_shape() {
        let mut m = DetectorMetrics::new();
        m.signal(0, true);
        m.fired(Check::Rate, 50);
        let mut snap = Snapshot::new();
        m.export(&mut snap, "epoch_synflood");
        assert_eq!(snap.counter_sum("anomaly_detector_fires_total"), 1);
        assert!(snap.find("anomaly_detection_delay_ns").is_some());
        let text = telemetry::render_prometheus(&snap);
        telemetry::check_prometheus(&text).expect("valid exposition");
    }
}
