//! Bounded exponential backoff with deterministic jitter and an
//! overall deadline — the retry policy behind every control-path
//! transaction (drilldown rebinds, replay drain-swap requests).
//!
//! Three properties matter on a faulty control channel:
//!
//! - **bounded exponent**: the per-attempt delay is `base << attempt`
//!   but the exponent is capped, so a long outage retries at a steady
//!   ceiling instead of backing off into silence;
//! - **deterministic jitter**: each retry adds up to 25% extra delay,
//!   derived by SplitMix64 from `(seed, attempt)` — de-synchronising
//!   concurrent retriers (the thundering-herd fix) while keeping every
//!   run a pure function of its seed, like all fault decisions in this
//!   workspace;
//! - **deadline**: beyond a total elapsed budget the transaction gives
//!   up regardless of the attempt counter, so a wedged peer cannot pin
//!   a retry loop forever.

/// SplitMix64 finalizer (the workspace-standard mixer), inlined so this
/// crate keeps its dependency set unchanged.
#[must_use]
const fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A retry policy: capped exponential backoff, seeded jitter, deadline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// First-retry delay in nanoseconds.
    pub base_ns: u64,
    /// Cap on the backoff exponent: attempt `k` waits
    /// `base_ns << min(k, max_shift)` before jitter.
    pub max_shift: u32,
    /// Jitter amplitude as a right-shift of the un-jittered delay:
    /// attempt `k` adds `uniform[0, delay >> jitter_shift]`. Shift 2 is
    /// up-to-25% jitter; `u64::BITS` or more disables jitter entirely.
    pub jitter_shift: u32,
    /// Total elapsed budget in nanoseconds; a transaction older than
    /// this gives up on its next timeout. Zero means no deadline.
    pub deadline_ns: u64,
    /// Jitter seed; runs with equal seeds retry at equal times.
    pub seed: u64,
}

impl RetryPolicy {
    /// The drilldown default: 10 ms base doubling to a 640 ms ceiling,
    /// 25% jitter, 10 s overall budget.
    #[must_use]
    pub const fn control_default(seed: u64) -> Self {
        Self {
            base_ns: 10_000_000,
            max_shift: 6,
            jitter_shift: 2,
            deadline_ns: 10_000_000_000,
            seed,
        }
    }

    /// Delay before re-send number `attempt` (0-based), jitter
    /// included. Saturates instead of overflowing.
    #[must_use]
    pub fn delay_ns(&self, attempt: u32) -> u64 {
        let shift = attempt.min(self.max_shift).min(63);
        let base = self.base_ns.saturating_shl(shift);
        base.saturating_add(self.jitter_ns(attempt, base))
    }

    fn jitter_ns(&self, attempt: u32, base: u64) -> u64 {
        if self.jitter_shift >= u64::BITS {
            return 0;
        }
        let amplitude = base >> self.jitter_shift;
        if amplitude == 0 {
            return 0;
        }
        let h = splitmix64(self.seed ^ u64::from(attempt).wrapping_mul(0x2545_f491_4f6c_dd1d));
        match amplitude.checked_add(1) {
            Some(m) => h % m,
            None => h,
        }
    }

    /// Has a transaction first sent `elapsed_ns` ago exhausted its
    /// deadline?
    #[must_use]
    pub fn past_deadline(&self, elapsed_ns: u64) -> bool {
        self.deadline_ns > 0 && elapsed_ns >= self.deadline_ns
    }
}

/// `u64` has no `saturating_shl`; provide the one this module needs.
trait SaturatingShl {
    fn saturating_shl(self, shift: u32) -> Self;
}

impl SaturatingShl for u64 {
    fn saturating_shl(self, shift: u32) -> Self {
        if self == 0 {
            0
        } else if shift >= self.leading_zeros() {
            u64::MAX
        } else {
            self << shift
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> RetryPolicy {
        RetryPolicy {
            base_ns: 1_000,
            max_shift: 4,
            jitter_shift: 2,
            deadline_ns: 1_000_000,
            seed: 9,
        }
    }

    #[test]
    fn exponent_is_capped() {
        let p = RetryPolicy { jitter_shift: u32::MAX, ..policy() };
        assert_eq!(p.delay_ns(0), 1_000);
        assert_eq!(p.delay_ns(1), 2_000);
        assert_eq!(p.delay_ns(4), 16_000);
        assert_eq!(p.delay_ns(5), 16_000, "capped at max_shift");
        assert_eq!(p.delay_ns(u32::MAX), 16_000);
    }

    #[test]
    fn jitter_is_bounded_deterministic_and_nontrivial() {
        let p = policy();
        let q = policy();
        let mut varied = false;
        for attempt in 0..64 {
            let base = 1_000u64 << attempt.min(4);
            let d = p.delay_ns(attempt);
            assert!(d >= base, "jitter is additive");
            assert!(d <= base + (base >> 2), "jitter ≤ 25%");
            assert_eq!(d, q.delay_ns(attempt), "same seed, same delay");
            varied |= d != base;
        }
        assert!(varied, "jitter actually fires");
        let other = RetryPolicy { seed: 10, ..policy() };
        assert!(
            (0..64).any(|a| other.delay_ns(a) != p.delay_ns(a)),
            "different seeds de-synchronise"
        );
    }

    #[test]
    fn deadline_applies_only_when_set() {
        let p = policy();
        assert!(!p.past_deadline(999_999));
        assert!(p.past_deadline(1_000_000));
        let unbounded = RetryPolicy { deadline_ns: 0, ..policy() };
        assert!(!unbounded.past_deadline(u64::MAX));
    }

    #[test]
    fn huge_shifts_saturate_instead_of_overflowing() {
        let p = RetryPolicy {
            base_ns: u64::MAX / 2,
            max_shift: 63,
            jitter_shift: 0,
            deadline_ns: 0,
            seed: 0,
        };
        assert_eq!(p.delay_ns(40), u64::MAX);
    }
}
