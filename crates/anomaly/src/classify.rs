//! Traffic-composition drift monitoring (paper Table 1: "traffic
//! classification — correctness, packets by type").
//!
//! The paper cites in-network ML classifiers whose models go stale when
//! the traffic mix shifts. The Stat4 angle: per packet kind, track the
//! *count per interval* in a windowed distribution and flag intervals
//! where a kind's count is an outlier of its own history — composition
//! drift — using only the mean ± k·σ machinery.

use crate::alerts::Alert;
use stat4_core::window::WindowedDist;

/// Configuration.
#[derive(Debug, Clone, Copy)]
pub struct DriftConfig {
    /// Number of packet kinds monitored.
    pub kinds: usize,
    /// Interval length (ns).
    pub interval_ns: u64,
    /// Window capacity in intervals.
    pub window: usize,
    /// σ multiplier.
    pub k: u32,
    /// Minimum closed intervals before alerts.
    pub min_intervals: usize,
}

impl Default for DriftConfig {
    fn default() -> Self {
        Self {
            kinds: 4,
            interval_ns: 50_000_000, // 50 ms
            window: 40,
            k: 3,
            min_intervals: 10,
        }
    }
}

/// Streaming composition-drift monitor.
#[derive(Debug)]
pub struct DriftMonitor {
    cfg: DriftConfig,
    per_kind: Vec<WindowedDist>,
    current_interval: Option<u64>,
    /// Alerts raised.
    pub alerts: Vec<Alert>,
    /// First alert time.
    pub detected_at: Option<u64>,
}

impl DriftMonitor {
    /// Creates a monitor.
    ///
    /// # Panics
    ///
    /// Panics on zero kinds or window.
    #[must_use]
    pub fn new(cfg: DriftConfig) -> Self {
        assert!(cfg.kinds > 0);
        Self {
            per_kind: (0..cfg.kinds)
                .map(|_| WindowedDist::new(cfg.window).expect("non-empty window"))
                .collect(),
            current_interval: None,
            alerts: Vec::new(),
            detected_at: None,
            cfg,
        }
    }

    /// Feeds one packet of `kind` at time `at`; returns the first alert
    /// raised by the interval roll-over, if any.
    pub fn observe(&mut self, at: u64, kind: usize) -> Option<Alert> {
        let ivl = at / self.cfg.interval_ns;
        let mut raised = None;
        match self.current_interval {
            None => self.current_interval = Some(ivl),
            Some(cur) if cur != ivl => {
                for (k, w) in self.per_kind.iter_mut().enumerate() {
                    let closed = w.current();
                    let drift = w.is_spike_margined(closed, self.cfg.k, self.cfg.min_intervals, 3, 4)
                        || w.is_drop_margined(closed, self.cfg.k, self.cfg.min_intervals, 3, 4);
                    w.close_interval();
                    if drift {
                        let alert = Alert::CompositionDrift { at, kind: k };
                        self.detected_at.get_or_insert(at);
                        self.alerts.push(alert.clone());
                        if raised.is_none() {
                            raised = Some(alert);
                        }
                    }
                }
                self.current_interval = Some(ivl);
            }
            _ => {}
        }
        if let Some(w) = self.per_kind.get_mut(kind) {
            w.accumulate(1);
        }
        raised
    }

    /// The drifting kinds seen so far (deduplicated, in first-seen
    /// order).
    #[must_use]
    pub fn drifted_kinds(&self) -> Vec<usize> {
        let mut out = Vec::new();
        for a in &self.alerts {
            if let Alert::CompositionDrift { kind, .. } = a {
                if !out.contains(kind) {
                    out.push(*kind);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::{PacketKind, PacketMixWorkload};

    #[test]
    fn detects_quic_surge() {
        let w = PacketMixWorkload {
            packets: 40_000,
            gap_ns: 10_000,
            shift_at: 200_000_000, // halfway through 400 ms
            ..PacketMixWorkload::default()
        };
        let (schedule, kinds) = w.generate();
        let mut mon = DriftMonitor::new(DriftConfig {
            interval_ns: 10_000_000,
            window: 16,
            k: 4,
            min_intervals: 8,
            kinds: 4,
        });
        for ((t, _), kind) in schedule.iter().zip(&kinds) {
            mon.observe(*t, kind.index());
        }
        let at = mon.detected_at.expect("drift detected");
        assert!(at >= w.shift_at, "no false positive, detected at {at}");
        assert!(at < w.shift_at + 50_000_000, "prompt detection: {at}");
        assert!(
            mon.drifted_kinds().contains(&PacketKind::Quic.index())
                || mon.drifted_kinds().contains(&PacketKind::TcpData.index()),
            "the shifted kinds flagged: {:?}",
            mon.drifted_kinds()
        );
    }

    #[test]
    fn stable_mix_is_quiet() {
        let w = PacketMixWorkload {
            packets: 40_000,
            gap_ns: 10_000,
            shift_at: u64::MAX,
            ..PacketMixWorkload::default()
        };
        let (schedule, kinds) = w.generate();
        let mut mon = DriftMonitor::new(DriftConfig {
            interval_ns: 10_000_000,
            window: 16,
            k: 4,
            min_intervals: 8,
            kinds: 4,
        });
        for ((t, _), kind) in schedule.iter().zip(&kinds) {
            mon.observe(*t, kind.index());
        }
        assert!(mon.detected_at.is_none(), "alerts: {:?}", mon.alerts);
    }

    #[test]
    fn unknown_kind_ignored() {
        let mut mon = DriftMonitor::new(DriftConfig::default());
        assert!(mon.observe(0, 99).is_none());
    }
}
