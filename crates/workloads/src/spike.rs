//! The case-study workload (paper Sec. 4, Figure 6): uniform
//! load-balanced traffic across 36 destinations in six /24 subnets of a
//! /8, then a volumetric spike to one randomly selected destination
//! after a randomized time.

use crate::{rng, Schedule};
use packet::builder::PacketBuilder;
use rand::Rng;
use std::net::Ipv4Addr;

/// What actually happened, for grading detections.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpikeGroundTruth {
    /// When the spike starts (ns).
    pub spike_start: u64,
    /// The attacked destination.
    pub spike_dest: Ipv4Addr,
    /// Index of the attacked subnet within the /8 (0-based).
    pub spike_subnet: u8,
}

/// Generator configuration (defaults mirror the paper's setup).
#[derive(Debug, Clone, Copy)]
pub struct SpikeWorkload {
    /// First octet of the monitored /8.
    pub net: u8,
    /// Number of /24 subnets in use.
    pub subnets: u8,
    /// Destinations per subnet (paper: 36 across 6 subnets).
    pub hosts_per_subnet: u8,
    /// Background rate in packets/second across all destinations.
    pub background_pps: u64,
    /// Spike rate multiplier on top of the background.
    pub spike_multiplier: u64,
    /// Spike start is drawn uniformly from this window (ns).
    pub spike_start_range: (u64, u64),
    /// Total workload duration (ns).
    pub duration: u64,
    /// RNG seed (also selects the victim).
    pub seed: u64,
}

impl Default for SpikeWorkload {
    fn default() -> Self {
        Self {
            net: 10,
            subnets: 6,
            hosts_per_subnet: 6,
            background_pps: 20_000,
            spike_multiplier: 10,
            spike_start_range: (1_000_000_000, 2_000_000_000),
            duration: 4_000_000_000,
            seed: 1,
        }
    }
}

impl SpikeWorkload {
    /// All destination addresses, subnet-major.
    #[must_use]
    pub fn destinations(&self) -> Vec<Ipv4Addr> {
        let mut out = Vec::new();
        for s in 0..self.subnets {
            for h in 1..=self.hosts_per_subnet {
                out.push(Ipv4Addr::new(self.net, 0, s, h));
            }
        }
        out
    }

    /// Generates the schedule and its ground truth.
    #[must_use]
    pub fn generate(&self) -> (Schedule, SpikeGroundTruth) {
        let mut r = rng(self.seed);
        let dests = self.destinations();
        let victim_idx = r.random_range(0..dests.len());
        let victim = dests[victim_idx];
        let spike_start = r.random_range(self.spike_start_range.0..=self.spike_start_range.1);
        let src = Ipv4Addr::new(198, 51, 100, 7);

        let gap = 1_000_000_000 / self.background_pps.max(1);
        let mut schedule = Vec::new();
        let mut t = 0u64;
        while t < self.duration {
            // Background packet to a uniformly chosen destination, with
            // +-25% jitter on the gap so interval counts have variance.
            let d = dests[r.random_range(0..dests.len())];
            let frame = PacketBuilder::udp(src, d, r.random_range(1024..65000), 80)
                .payload(b"bg")
                .build_bytes();
            schedule.push((t, frame));
            let jitter = r.random_range(0..=gap / 2);
            t += gap / 2 + 1 + jitter;
        }
        // The spike: multiplier x background rate, to the victim alone.
        let spike_gap = (gap / self.spike_multiplier.max(1)).max(1);
        let mut t = spike_start;
        while t < self.duration {
            let frame = PacketBuilder::udp(src, victim, r.random_range(1024..65000), 80)
                .payload(b"atk")
                .build_bytes();
            schedule.push((t, frame));
            t += spike_gap;
        }
        (
            crate::sorted(schedule),
            SpikeGroundTruth {
                spike_start,
                spike_dest: victim,
                spike_subnet: victim.octets()[2],
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use packet::{EthernetFrame, Ipv4Packet};

    fn small() -> SpikeWorkload {
        SpikeWorkload {
            background_pps: 1_000,
            spike_start_range: (10_000_000, 20_000_000),
            duration: 50_000_000,
            seed: 3,
            ..SpikeWorkload::default()
        }
    }

    #[test]
    fn thirty_six_destinations() {
        let w = SpikeWorkload::default();
        let d = w.destinations();
        assert_eq!(d.len(), 36);
        assert_eq!(d[0], Ipv4Addr::new(10, 0, 0, 1));
        assert_eq!(d[35], Ipv4Addr::new(10, 0, 5, 6));
    }

    #[test]
    fn ground_truth_consistent_and_deterministic() {
        let w = small();
        let (s1, g1) = w.generate();
        let (s2, g2) = w.generate();
        assert_eq!(g1, g2);
        assert_eq!(s1.len(), s2.len());
        assert!(w.destinations().contains(&g1.spike_dest));
        assert_eq!(g1.spike_dest.octets()[2], g1.spike_subnet);
        assert!(g1.spike_start >= 10_000_000 && g1.spike_start <= 20_000_000);
    }

    #[test]
    fn rate_roughly_doubles_plus_after_spike() {
        let w = small();
        let (s, g) = w.generate();
        let before: usize = s
            .iter()
            .filter(|(t, _)| *t < g.spike_start)
            .count();
        let after: usize = s.iter().filter(|(t, _)| *t >= g.spike_start).count();
        let before_dur = g.spike_start as f64;
        let after_dur = (w.duration - g.spike_start) as f64;
        let r_before = before as f64 / before_dur;
        let r_after = after as f64 / after_dur;
        assert!(
            r_after > 3.0 * r_before,
            "rates: {r_before} vs {r_after}"
        );
    }

    #[test]
    fn spike_packets_target_the_victim() {
        let w = small();
        let (s, g) = w.generate();
        // Count per-destination traffic after the spike: victim dominates.
        let mut victim = 0usize;
        let mut others = 0usize;
        for (t, frame) in &s {
            if *t < g.spike_start {
                continue;
            }
            let eth = EthernetFrame::new_checked(&frame[..]).unwrap();
            let ip = Ipv4Packet::new_checked(eth.payload()).unwrap();
            if ip.dst() == g.spike_dest {
                victim += 1;
            } else {
                others += 1;
            }
        }
        assert!(victim > others, "victim {victim} vs others {others}");
    }

    #[test]
    fn schedule_is_sorted() {
        let (s, _) = small().generate();
        assert!(s.windows(2).all(|w| w[0].0 <= w[1].0));
    }
}
