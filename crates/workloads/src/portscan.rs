//! Low-and-slow port-scan workload.
//!
//! Background: well-behaved TCP sessions at a *deterministic*
//! connections-per-interval cadence ([`CONN_PATTERN`]), so the SYN
//! rate has a known bounded wiggle. Attack: one scanner adds a mere
//! `scan_syns` bare SYNs per interval against the victim's ports,
//! counting upward — far inside the per-interval band
//! (`max + scan_syns < mean + k·σ + margin`), so the interval-local
//! SYN-rate check stays quiet *forever*. Only an accumulating
//! change-point statistic (CUSUM) integrates the small persistent
//! excess into an alarm.

use crate::{rng, Schedule};
use packet::builder::PacketBuilder;
use packet::TcpFlags;
use rand::Rng;
use std::net::Ipv4Addr;

/// Connections started per interval, cycling. Mean 19, max 22; the
/// ±3 wiggle keeps the rate band's σ honest (≈2.2) without letting a
/// +`scan_syns` shift reach `mean + 2σ + mean/8 ≈ 26`.
pub const CONN_PATTERN: [u64; 4] = [16, 20, 18, 22];

/// Generator configuration.
#[derive(Debug, Clone, Copy)]
pub struct LowSlowScanWorkload {
    /// Servers receiving legitimate traffic.
    pub servers: u8,
    /// Detector interval the cadence is phased to (ns).
    pub interval_ns: u64,
    /// Scanner SYNs added per interval once the scan starts.
    pub scan_syns: u64,
    /// When the scan starts (ns; rounded down to an interval).
    pub scan_start: u64,
    /// Workload duration (ns).
    pub duration: u64,
    /// RNG seed (selects the victim and client addresses).
    pub seed: u64,
}

impl Default for LowSlowScanWorkload {
    fn default() -> Self {
        Self {
            servers: 8,
            interval_ns: 10_000_000,
            scan_syns: 3,
            scan_start: 500_000_000,
            duration: 1_200_000_000,
            seed: 1,
        }
    }
}

impl LowSlowScanWorkload {
    /// The server addresses.
    #[must_use]
    pub fn servers(&self) -> Vec<Ipv4Addr> {
        (1..=self.servers)
            .map(|h| Ipv4Addr::new(10, 0, 1, h))
            .collect()
    }

    /// The scanner's source address.
    #[must_use]
    pub fn scanner(&self) -> Ipv4Addr {
        Ipv4Addr::new(203, 0, 113, 66)
    }

    /// Generates the schedule and the scanned victim.
    #[must_use]
    pub fn generate(&self) -> (Schedule, Ipv4Addr) {
        let mut r = rng(self.seed);
        let servers = self.servers();
        let victim = servers[r.random_range(0..servers.len())];
        let mut schedule = Vec::new();
        let scan_from = (self.scan_start / self.interval_ns) * self.interval_ns;
        let mut scanned_port = 1u16;
        let mut t = 0u64;
        let mut interval = 0u64;
        while t < self.duration {
            let conns = CONN_PATTERN[(interval % 4) as usize];
            let slot = self.interval_ns / conns;
            for j in 0..conns {
                let base = t + j * slot;
                let server = servers[r.random_range(0..servers.len())];
                let client = Ipv4Addr::new(192, 0, 2, r.random_range(1..=254));
                let sport: u16 = r.random_range(10_000..60_000);
                // SYN, four data segments, FIN — all inside this slot,
                // so every packet of the session lands in `interval`.
                schedule.push((
                    base,
                    PacketBuilder::tcp_syn(client, server, sport, 80).build_bytes(),
                ));
                for k in 1..=4u64 {
                    schedule.push((
                        base + k * slot / 8,
                        PacketBuilder::tcp(client, server, sport, 80, TcpFlags::ack())
                            .payload(b"GET /")
                            .build_bytes(),
                    ));
                }
                schedule.push((
                    base + 5 * slot / 8,
                    PacketBuilder::tcp(
                        client,
                        server,
                        sport,
                        80,
                        TcpFlags(TcpFlags::FIN | TcpFlags::ACK),
                    )
                    .build_bytes(),
                ));
            }
            if t >= scan_from {
                let gap = self.interval_ns / self.scan_syns.max(1);
                for k in 0..self.scan_syns {
                    schedule.push((
                        t + k * gap + 500,
                        PacketBuilder::tcp_syn(self.scanner(), victim, 40_000, scanned_port)
                            .build_bytes(),
                    ));
                    scanned_port = scanned_port.wrapping_add(1).max(1);
                }
            }
            t += self.interval_ns;
            interval += 1;
        }
        (crate::sorted(schedule), victim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use packet::{EthernetFrame, Ipv4Packet, TcpSegment};

    fn syns_per_interval(w: &LowSlowScanWorkload, s: &Schedule) -> Vec<u64> {
        let n = (w.duration / w.interval_ns) as usize;
        let mut syns = vec![0u64; n];
        for (t, frame) in s {
            let eth = EthernetFrame::new_checked(&frame[..]).unwrap();
            let ip = Ipv4Packet::new_checked(eth.payload()).unwrap();
            let tcp = TcpSegment::new_checked(ip.payload()).unwrap();
            if tcp.syn() && !tcp.ack() {
                syns[(t / w.interval_ns) as usize] += 1;
            }
        }
        syns
    }

    #[test]
    fn syn_cadence_is_pattern_plus_scan() {
        let w = LowSlowScanWorkload::default();
        let (s, _) = w.generate();
        let syns = syns_per_interval(&w, &s);
        let scan_idx = (w.scan_start / w.interval_ns) as usize;
        for (i, got) in syns.iter().enumerate() {
            let mut want = CONN_PATTERN[i % 4];
            if i >= scan_idx {
                want += w.scan_syns;
            }
            assert_eq!(*got, want, "interval {i}");
        }
    }

    #[test]
    fn shifted_max_stays_inside_rate_band() {
        // mean 19, σ² = 5 → 2σ ≈ 4.47, relative margin 19/8 ≈ 2.4:
        // bound ≈ 25.8. The scan's worst interval is 22 + 3 = 25.
        let w = LowSlowScanWorkload::default();
        let max = CONN_PATTERN.iter().max().unwrap() + w.scan_syns;
        assert!(max < 26, "scan must stay under the interval band");
    }

    #[test]
    fn scan_targets_one_victim_with_marching_ports() {
        let w = LowSlowScanWorkload::default();
        let (s, victim) = w.generate();
        let mut ports = Vec::new();
        for (_, frame) in &s {
            let eth = EthernetFrame::new_checked(&frame[..]).unwrap();
            let ip = Ipv4Packet::new_checked(eth.payload()).unwrap();
            if ip.src() != w.scanner() {
                continue;
            }
            assert_eq!(ip.dst(), victim);
            let tcp = TcpSegment::new_checked(ip.payload()).unwrap();
            ports.push(tcp.dst_port());
        }
        assert!(!ports.is_empty());
        let mut sorted = ports.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), ports.len(), "each port scanned once");
    }

    #[test]
    fn deterministic() {
        let w = LowSlowScanWorkload::default();
        assert_eq!(w.generate(), w.generate());
    }
}
