//! Seasonal-drift workload: periodic traffic whose *phase* flips.
//!
//! Background: a square-wave diurnal pattern — each season is
//! `season_len` intervals, the first half at `high_rate` packets per
//! interval, the second at `low_rate`. Anomaly: from `drift_start`
//! (season-aligned) the halves swap. Mean, variance, packet sizes,
//! kinds and source set are all exactly preserved — per-interval
//! bands, multi-scale sums (the period divides every scale), CUSUM,
//! cardinality and length engines see nothing. Only a seasonal
//! forecaster, which knows *which phase* each interval is in, sees a
//! full-swing residual.

use crate::{rng, Schedule};
use packet::builder::PacketBuilder;
use rand::Rng;
use std::net::Ipv4Addr;

/// Generator configuration.
#[derive(Debug, Clone, Copy)]
pub struct SeasonalDriftWorkload {
    /// Fixed client pool size (keeps cardinality flat).
    pub sources: u8,
    /// Detector interval the pattern is phased to (ns).
    pub interval_ns: u64,
    /// Intervals per season (must be even; halves alternate).
    pub season_len: u64,
    /// Packets per interval during the high half-season.
    pub high_rate: u64,
    /// Packets per interval during the low half-season.
    pub low_rate: u64,
    /// When the halves swap (ns; rounded down to a season boundary).
    pub drift_start: u64,
    /// Workload duration (ns).
    pub duration: u64,
    /// RNG seed (jitters packet spacing only, never counts).
    pub seed: u64,
}

impl Default for SeasonalDriftWorkload {
    fn default() -> Self {
        Self {
            sources: 32,
            interval_ns: 10_000_000,
            season_len: 16,
            high_rate: 180,
            low_rate: 60,
            drift_start: 640_000_000,
            duration: 1_280_000_000,
            seed: 1,
        }
    }
}

impl SeasonalDriftWorkload {
    /// The fixed client pool.
    #[must_use]
    pub fn clients(&self) -> Vec<Ipv4Addr> {
        (1..=self.sources)
            .map(|h| Ipv4Addr::new(172, 16, 0, h))
            .collect()
    }

    /// The effective (season-aligned) drift onset time.
    #[must_use]
    pub fn aligned_drift_start(&self) -> u64 {
        let season_ns = self.season_len * self.interval_ns;
        (self.drift_start / season_ns) * season_ns
    }

    /// Packets scheduled for the interval starting at `t`.
    #[must_use]
    pub fn rate_at(&self, t: u64) -> u64 {
        let idx = t / self.interval_ns;
        let pos = idx % self.season_len;
        let mut high = pos < self.season_len / 2;
        if t >= self.aligned_drift_start() {
            high = !high;
        }
        if high {
            self.high_rate
        } else {
            self.low_rate
        }
    }

    /// Generates the schedule.
    #[must_use]
    pub fn generate(&self) -> Schedule {
        let mut r = rng(self.seed);
        let clients = self.clients();
        let server = Ipv4Addr::new(10, 0, 2, 1);
        let mut schedule = Vec::new();
        let mut t = 0u64;
        let mut turn = 0usize;
        while t < self.duration {
            let count = self.rate_at(t);
            let gap = self.interval_ns / count.max(1);
            for k in 0..count {
                let src = clients[turn % clients.len()];
                turn += 1;
                // Jitter stays inside this packet's slot, so the
                // per-interval count is exact.
                let at = t + k * gap + r.random_range(0..gap / 2 + 1);
                schedule.push((
                    at,
                    PacketBuilder::udp(src, server, 5353, 53)
                        .payload(b"seasonal-query--")
                        .build_bytes(),
                ));
            }
            t += self.interval_ns;
        }
        crate::sorted(schedule)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts_per_interval(w: &SeasonalDriftWorkload) -> Vec<u64> {
        let s = w.generate();
        let n = (w.duration / w.interval_ns) as usize;
        let mut counts = vec![0u64; n];
        for (t, _) in &s {
            counts[(t / w.interval_ns) as usize] += 1;
        }
        counts
    }

    #[test]
    fn pattern_is_exact_and_swaps_at_drift() {
        let w = SeasonalDriftWorkload::default();
        let counts = counts_per_interval(&w);
        let drift_idx = (w.aligned_drift_start() / w.interval_ns) as usize;
        for (i, c) in counts.iter().enumerate() {
            let pos = i as u64 % w.season_len;
            let mut high = pos < w.season_len / 2;
            if i >= drift_idx {
                high = !high;
            }
            let want = if high { w.high_rate } else { w.low_rate };
            assert_eq!(*c, want, "interval {i}");
        }
    }

    #[test]
    fn mean_and_value_set_preserved_across_drift() {
        let w = SeasonalDriftWorkload::default();
        let counts = counts_per_interval(&w);
        let drift_idx = (w.aligned_drift_start() / w.interval_ns) as usize;
        let before: u64 = counts[..drift_idx].iter().sum::<u64>() / drift_idx as u64;
        let after: u64 =
            counts[drift_idx..].iter().sum::<u64>() / (counts.len() - drift_idx) as u64;
        assert_eq!(before, after, "phase swap must not move the mean");
    }

    #[test]
    fn deterministic() {
        let w = SeasonalDriftWorkload::default();
        assert_eq!(w.generate(), w.generate());
    }
}
