//! SYN-flood workload (paper Table 1, "SYN flood — protect servers").
//!
//! Background: well-behaved TCP sessions (SYN, a burst of data, FIN).
//! Attack: a storm of bare SYNs from spoofed sources to one victim.

use crate::{rng, Schedule};
use packet::builder::PacketBuilder;
use packet::TcpFlags;
use rand::Rng;
use std::net::Ipv4Addr;

/// Generator configuration.
#[derive(Debug, Clone, Copy)]
pub struct SynFloodWorkload {
    /// Servers receiving legitimate traffic.
    pub servers: u8,
    /// Legitimate new connections per second (each ≈ 6 packets).
    pub background_cps: u64,
    /// Flood SYNs per second once the attack starts.
    pub flood_pps: u64,
    /// When the flood starts (ns).
    pub flood_start: u64,
    /// Workload duration (ns).
    pub duration: u64,
    /// RNG seed (selects the victim).
    pub seed: u64,
}

impl Default for SynFloodWorkload {
    fn default() -> Self {
        Self {
            servers: 8,
            background_cps: 2_000,
            flood_pps: 100_000,
            flood_start: 1_000_000_000,
            duration: 2_500_000_000,
            seed: 1,
        }
    }
}

impl SynFloodWorkload {
    /// The server addresses.
    #[must_use]
    pub fn servers(&self) -> Vec<Ipv4Addr> {
        (1..=self.servers)
            .map(|h| Ipv4Addr::new(10, 0, 1, h))
            .collect()
    }

    /// Generates the schedule and the victim address.
    #[must_use]
    pub fn generate(&self) -> (Schedule, Ipv4Addr) {
        let mut r = rng(self.seed);
        let servers = self.servers();
        let victim = servers[r.random_range(0..servers.len())];
        let mut schedule = Vec::new();

        // Legitimate connections: SYN, SYN-ACK is server-side (not on
        // this link), then data and FIN from the client.
        let conn_gap = 1_000_000_000 / self.background_cps.max(1);
        let mut t = 0u64;
        while t < self.duration {
            let server = servers[r.random_range(0..servers.len())];
            let client = Ipv4Addr::new(192, 0, 2, r.random_range(1..=254));
            let sport: u16 = r.random_range(10_000..60_000);
            let mut ct = t;
            schedule.push((
                ct,
                PacketBuilder::tcp_syn(client, server, sport, 80).build_bytes(),
            ));
            for _ in 0..4 {
                ct += r.random_range(50_000u64..200_000);
                schedule.push((
                    ct,
                    PacketBuilder::tcp(client, server, sport, 80, TcpFlags::ack())
                        .payload(b"GET /")
                        .build_bytes(),
                ));
            }
            ct += r.random_range(50_000u64..200_000);
            schedule.push((
                ct,
                PacketBuilder::tcp(client, server, sport, 80, TcpFlags(TcpFlags::FIN | TcpFlags::ACK))
                    .build_bytes(),
            ));
            t += conn_gap + r.random_range(0..=conn_gap / 4);
        }

        // The flood: bare SYNs from spoofed sources.
        let flood_gap = (1_000_000_000 / self.flood_pps.max(1)).max(1);
        let mut t = self.flood_start;
        while t < self.duration {
            let spoofed = Ipv4Addr::new(
                r.random_range(1..224),
                r.random_range(0..=255),
                r.random_range(0..=255),
                r.random_range(1..=254),
            );
            schedule.push((
                t,
                PacketBuilder::tcp_syn(spoofed, victim, r.random_range(1024..65000), 80)
                    .build_bytes(),
            ));
            t += flood_gap;
        }
        (crate::sorted(schedule), victim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use packet::{EthernetFrame, Ipv4Packet, TcpSegment};

    fn small() -> SynFloodWorkload {
        SynFloodWorkload {
            background_cps: 500,
            flood_pps: 20_000,
            flood_start: 5_000_000,
            duration: 20_000_000,
            seed: 9,
            ..SynFloodWorkload::default()
        }
    }

    fn syn_fraction(schedule: &Schedule, from: u64, to: u64) -> f64 {
        let mut syn = 0usize;
        let mut total = 0usize;
        for (t, frame) in schedule {
            if *t < from || *t >= to {
                continue;
            }
            let eth = EthernetFrame::new_checked(&frame[..]).unwrap();
            let ip = Ipv4Packet::new_checked(eth.payload()).unwrap();
            let tcp = TcpSegment::new_checked(ip.payload()).unwrap();
            total += 1;
            if tcp.syn() && !tcp.ack() {
                syn += 1;
            }
        }
        syn as f64 / total.max(1) as f64
    }

    #[test]
    fn syn_share_rises_after_flood() {
        let w = small();
        let (s, _victim) = w.generate();
        let before = syn_fraction(&s, 0, w.flood_start);
        let after = syn_fraction(&s, w.flood_start, w.duration);
        assert!(before < 0.35, "background SYN share {before}");
        assert!(after > 0.7, "flood SYN share {after}");
    }

    #[test]
    fn victim_is_a_server_and_deterministic() {
        let w = small();
        let (_, v1) = w.generate();
        let (_, v2) = w.generate();
        assert_eq!(v1, v2);
        assert!(w.servers().contains(&v1));
    }

    #[test]
    fn flood_targets_victim_only() {
        let w = small();
        let (s, victim) = w.generate();
        for (t, frame) in &s {
            if *t < w.flood_start {
                continue;
            }
            let eth = EthernetFrame::new_checked(&frame[..]).unwrap();
            let ip = Ipv4Packet::new_checked(eth.payload()).unwrap();
            let tcp = TcpSegment::new_checked(ip.payload()).unwrap();
            if tcp.syn() && !tcp.ack() && ip.src().octets()[0] != 192 {
                assert_eq!(ip.dst(), victim);
            }
        }
    }
}
