//! Cardinality-spike workload: a spoofed source sweep at constant
//! volume.
//!
//! Background: a fixed pool of `sources` clients sends round-robin
//! UDP at exactly `rate` packets per interval. Anomaly: from
//! `spike_start` the *same* `rate` packets per interval arrive from
//! fresh random spoofed addresses instead. Volume, kinds, sizes and
//! cadence are all byte-for-byte flat — every counter-based engine is
//! blind. The only moving statistic is the number of distinct
//! senders, which roughly doubles: HyperLogLog territory.

use crate::{rng, Schedule};
use packet::builder::PacketBuilder;
use rand::Rng;
use std::net::Ipv4Addr;

/// Generator configuration.
#[derive(Debug, Clone, Copy)]
pub struct CardinalitySpikeWorkload {
    /// Fixed background client-pool size.
    pub sources: u8,
    /// Packets per interval (constant throughout).
    pub rate: u64,
    /// Detector interval the cadence is phased to (ns).
    pub interval_ns: u64,
    /// When the spoofed sweep starts (ns; rounded down to an interval).
    pub spike_start: u64,
    /// Workload duration (ns).
    pub duration: u64,
    /// RNG seed (spoofed addresses only; counts are exact).
    pub seed: u64,
}

impl Default for CardinalitySpikeWorkload {
    fn default() -> Self {
        Self {
            sources: 64,
            rate: 120,
            interval_ns: 10_000_000,
            spike_start: 400_000_000,
            duration: 900_000_000,
            seed: 1,
        }
    }
}

impl CardinalitySpikeWorkload {
    /// The fixed background pool.
    #[must_use]
    pub fn pool(&self) -> Vec<Ipv4Addr> {
        (1..=self.sources)
            .map(|h| Ipv4Addr::new(172, 16, 1, h))
            .collect()
    }

    /// Generates the schedule.
    #[must_use]
    pub fn generate(&self) -> Schedule {
        let mut r = rng(self.seed);
        let pool = self.pool();
        let server = Ipv4Addr::new(10, 0, 3, 1);
        let spike_from = (self.spike_start / self.interval_ns) * self.interval_ns;
        let gap = self.interval_ns / self.rate.max(1);
        let mut schedule = Vec::new();
        let mut t = 0u64;
        while t < self.duration {
            for k in 0..self.rate {
                let src = if t >= spike_from {
                    Ipv4Addr::new(
                        r.random_range(1..224),
                        r.random_range(0..=255),
                        r.random_range(0..=255),
                        r.random_range(1..=254),
                    )
                } else {
                    pool[(k % pool.len() as u64) as usize]
                };
                schedule.push((
                    t + k * gap,
                    PacketBuilder::udp(src, server, 7777, 9000)
                        .payload(b"steady-payload--")
                        .build_bytes(),
                ));
            }
            t += self.interval_ns;
        }
        crate::sorted(schedule)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use packet::{EthernetFrame, Ipv4Packet};
    use std::collections::HashSet;

    fn per_interval(w: &CardinalitySpikeWorkload) -> Vec<(u64, usize)> {
        let s = w.generate();
        let n = (w.duration / w.interval_ns) as usize;
        let mut counts = vec![0u64; n];
        let mut sources: Vec<HashSet<Ipv4Addr>> = vec![HashSet::new(); n];
        for (t, frame) in &s {
            let i = (t / w.interval_ns) as usize;
            counts[i] += 1;
            let eth = EthernetFrame::new_checked(&frame[..]).unwrap();
            let ip = Ipv4Packet::new_checked(eth.payload()).unwrap();
            sources[i].insert(ip.src());
        }
        counts.into_iter().zip(sources.into_iter().map(|s| s.len())).collect()
    }

    #[test]
    fn volume_flat_cardinality_jumps() {
        let w = CardinalitySpikeWorkload::default();
        let spike_idx = (w.spike_start / w.interval_ns) as usize;
        for (i, (count, distinct)) in per_interval(&w).iter().enumerate() {
            assert_eq!(*count, w.rate, "interval {i} volume must be flat");
            if i < spike_idx {
                assert_eq!(*distinct, usize::from(w.sources), "interval {i}");
            } else {
                assert!(
                    *distinct > usize::from(w.sources) + 40,
                    "interval {i}: spoofed sweep only reached {distinct} sources"
                );
            }
        }
    }

    #[test]
    fn deterministic() {
        let w = CardinalitySpikeWorkload::default();
        assert_eq!(w.generate(), w.generate());
    }
}
