//! Zipf-distributed per-prefix traffic.
//!
//! The paper's future-work section notes that "the distribution of
//! traffic per prefix may be zipfian" — the classic heavy-tailed case
//! where mean ± k·σ checks behave differently than on normal data. This
//! workload feeds the ablation experiments on non-normal distributions.

use crate::{rng, Schedule};
use packet::builder::PacketBuilder;
use rand::Rng;
use std::net::Ipv4Addr;

/// Generator configuration.
#[derive(Debug, Clone, Copy)]
pub struct ZipfPrefixWorkload {
    /// Number of /24 prefixes.
    pub prefixes: u16,
    /// Zipf exponent `s` (1.0 = classic).
    pub exponent: f64,
    /// Packets to generate.
    pub packets: usize,
    /// Gap between packets (ns).
    pub gap_ns: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ZipfPrefixWorkload {
    fn default() -> Self {
        Self {
            prefixes: 64,
            exponent: 1.0,
            packets: 100_000,
            gap_ns: 5_000,
            seed: 1,
        }
    }
}

impl ZipfPrefixWorkload {
    /// Inverse-CDF table for the Zipf distribution.
    fn cdf(&self) -> Vec<f64> {
        let mut weights: Vec<f64> = (1..=self.prefixes)
            .map(|k| 1.0 / f64::from(k).powf(self.exponent))
            .collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        for w in &mut weights {
            acc += *w / total;
            *w = acc;
        }
        weights
    }

    /// The address of prefix `k`'s representative host.
    #[must_use]
    pub fn prefix_host(&self, k: u16) -> Ipv4Addr {
        Ipv4Addr::new(10, (k >> 8) as u8, (k & 0xff) as u8, 1)
    }

    /// Generates the schedule and the per-prefix packet counts (ground
    /// truth for popularity).
    #[must_use]
    pub fn generate(&self) -> (Schedule, Vec<u64>) {
        let mut r = rng(self.seed);
        let cdf = self.cdf();
        let src = Ipv4Addr::new(198, 51, 100, 9);
        let mut counts = vec![0u64; usize::from(self.prefixes)];
        let mut schedule = Vec::with_capacity(self.packets);
        for i in 0..self.packets {
            let u: f64 = r.random();
            let k = cdf.partition_point(|&c| c < u).min(cdf.len() - 1);
            counts[k] += 1;
            let frame = PacketBuilder::udp(src, self.prefix_host(k as u16), 4000, 80)
                .payload(b"z")
                .build_bytes();
            schedule.push((i as u64 * self.gap_ns, frame));
        }
        (schedule, counts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn head_dominates_tail() {
        let w = ZipfPrefixWorkload {
            packets: 20_000,
            ..ZipfPrefixWorkload::default()
        };
        let (_, counts) = w.generate();
        let total: u64 = counts.iter().sum();
        assert_eq!(total, 20_000);
        // Rank 1 should hold roughly 1/H(64) ≈ 21% of traffic; allow
        // slack but require clear dominance and monotone-ish decay.
        assert!(counts[0] as f64 / total as f64 > 0.15, "head {}", counts[0]);
        assert!(counts[0] > counts[10] && counts[10] > counts[60].saturating_sub(5));
    }

    #[test]
    fn higher_exponent_more_skew() {
        let base = ZipfPrefixWorkload {
            packets: 20_000,
            ..ZipfPrefixWorkload::default()
        };
        let steep = ZipfPrefixWorkload {
            exponent: 2.0,
            ..base
        };
        let (_, c1) = base.generate();
        let (_, c2) = steep.generate();
        assert!(c2[0] > c1[0], "steeper head {} vs {}", c2[0], c1[0]);
    }

    #[test]
    fn deterministic() {
        let w = ZipfPrefixWorkload {
            packets: 1_000,
            ..ZipfPrefixWorkload::default()
        };
        assert_eq!(w.generate().1, w.generate().1);
    }

    #[test]
    fn prefix_host_layout() {
        let w = ZipfPrefixWorkload::default();
        assert_eq!(w.prefix_host(0), Ipv4Addr::new(10, 0, 0, 1));
        assert_eq!(w.prefix_host(257), Ipv4Addr::new(10, 1, 1, 1));
    }
}
