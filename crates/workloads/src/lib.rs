//! # workloads
//!
//! Seeded synthetic traffic generators for every experiment in the
//! reproduction. The paper evaluates on synthetic traffic (uniform
//! load-balanced background, a volumetric spike to one destination,
//! random payload integers for the echo validation); this crate
//! generates those workloads deterministically from a seed, plus the
//! extra workloads the paper's Table 1 use cases imply (SYN floods,
//! packet-type mixes) and the Zipf-popularity traffic its future-work
//! section mentions.
//!
//! Every generator produces a time-sorted `Vec<(time_ns, frame)>`
//! schedule (convertible into a pull-based source via `netsim`'s
//! `TraceGen`) and exposes its ground truth (when the
//! spike starts, which destination is attacked, …) so experiments can
//! grade detections.

pub mod bimodal;
pub mod cardinality;
pub mod echo;
pub mod mix;
pub mod portscan;
pub mod seasonal;
pub mod shard;
pub mod spike;
pub mod synflood;
pub mod zipf;

pub use bimodal::{BimodalValues, Mode};
pub use cardinality::CardinalitySpikeWorkload;
pub use echo::EchoWorkload;
pub use mix::{PacketKind, PacketMixWorkload};
pub use portscan::LowSlowScanWorkload;
pub use seasonal::SeasonalDriftWorkload;
pub use shard::{flow_key, shard_of, split};
pub use spike::{SpikeGroundTruth, SpikeWorkload};
pub use synflood::SynFloodWorkload;
pub use zipf::ZipfPrefixWorkload;

use rand::rngs::StdRng;
use rand::SeedableRng;

/// The deterministic RNG used by every workload.
#[must_use]
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// A time-sorted frame schedule.
pub type Schedule = Vec<(u64, bytes::Bytes)>;

/// Asserts (debug) and returns the schedule sorted by time.
#[must_use]
pub fn sorted(mut schedule: Schedule) -> Schedule {
    schedule.sort_by_key(|(t, _)| *t);
    schedule
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    #[test]
    fn rng_is_deterministic() {
        let mut a = rng(7);
        let mut b = rng(7);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = rng(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn sorted_sorts() {
        let s = sorted(vec![
            (5, bytes::Bytes::new()),
            (1, bytes::Bytes::new()),
            (3, bytes::Bytes::new()),
        ]);
        let times: Vec<u64> = s.iter().map(|(t, _)| *t).collect();
        assert_eq!(times, vec![1, 3, 5]);
    }
}
