//! Packet-type mix workload (paper Table 1, "traffic classification").
//!
//! Generates a stream whose composition (TCP data, TCP SYN, UDP, QUIC)
//! follows configurable weights, with an optional composition change
//! mid-stream — the drift that would invalidate an in-switch ML model,
//! which the paper cites as a monitoring use case.

use crate::{rng, Schedule};
use packet::builder::PacketBuilder;
use packet::TcpFlags;
use rand::Rng;
use std::net::Ipv4Addr;

/// The packet kinds the classifier distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PacketKind {
    /// Established-flow TCP data segment.
    TcpData,
    /// TCP connection attempt (pure SYN).
    TcpSyn,
    /// Plain UDP datagram.
    Udp,
    /// QUIC (UDP to port 443).
    Quic,
}

impl PacketKind {
    /// All kinds, in a stable order (also the frequency-distribution
    /// cell assignment used by examples and benches).
    pub const ALL: [PacketKind; 4] = [
        PacketKind::TcpData,
        PacketKind::TcpSyn,
        PacketKind::Udp,
        PacketKind::Quic,
    ];

    /// Stable index of this kind.
    #[must_use]
    pub fn index(self) -> usize {
        Self::ALL.iter().position(|k| *k == self).expect("in ALL")
    }
}

/// Generator configuration.
#[derive(Debug, Clone, Copy)]
pub struct PacketMixWorkload {
    /// Relative weights of the four kinds before the shift.
    pub weights_before: [u32; 4],
    /// Relative weights after the shift.
    pub weights_after: [u32; 4],
    /// When the composition changes (ns); `u64::MAX` = never.
    pub shift_at: u64,
    /// Packets to generate.
    pub packets: usize,
    /// Gap between packets (ns).
    pub gap_ns: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PacketMixWorkload {
    fn default() -> Self {
        Self {
            weights_before: [70, 5, 15, 10],
            weights_after: [30, 5, 15, 50],
            shift_at: u64::MAX,
            packets: 50_000,
            gap_ns: 10_000,
            seed: 1,
        }
    }
}

impl PacketMixWorkload {
    fn pick(weights: &[u32; 4], u: u32) -> PacketKind {
        let total: u32 = weights.iter().sum();
        let mut x = u % total.max(1);
        for (i, w) in weights.iter().enumerate() {
            if x < *w {
                return PacketKind::ALL[i];
            }
            x -= w;
        }
        PacketKind::TcpData
    }

    /// Generates the schedule plus each packet's kind.
    #[must_use]
    pub fn generate(&self) -> (Schedule, Vec<PacketKind>) {
        let mut r = rng(self.seed);
        let src = Ipv4Addr::new(192, 0, 2, 50);
        let dst = Ipv4Addr::new(10, 0, 2, 2);
        let mut schedule = Vec::with_capacity(self.packets);
        let mut kinds = Vec::with_capacity(self.packets);
        for i in 0..self.packets {
            let t = i as u64 * self.gap_ns;
            let weights = if t < self.shift_at {
                &self.weights_before
            } else {
                &self.weights_after
            };
            let kind = Self::pick(weights, r.random());
            kinds.push(kind);
            let sport: u16 = r.random_range(10_000..60_000);
            let frame = match kind {
                PacketKind::TcpData => {
                    PacketBuilder::tcp(src, dst, sport, 80, TcpFlags::ack())
                        .payload(b"data")
                        .build_bytes()
                }
                PacketKind::TcpSyn => PacketBuilder::tcp_syn(src, dst, sport, 80).build_bytes(),
                PacketKind::Udp => PacketBuilder::udp(src, dst, sport, 53).build_bytes(),
                PacketKind::Quic => PacketBuilder::udp(src, dst, sport, 443)
                    .payload(b"quic")
                    .build_bytes(),
            };
            schedule.push((t, frame));
        }
        (schedule, kinds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn composition_respects_weights() {
        let w = PacketMixWorkload {
            packets: 20_000,
            ..PacketMixWorkload::default()
        };
        let (_, kinds) = w.generate();
        let frac = |k: PacketKind| {
            kinds.iter().filter(|x| **x == k).count() as f64 / kinds.len() as f64
        };
        assert!((frac(PacketKind::TcpData) - 0.70).abs() < 0.03);
        assert!((frac(PacketKind::TcpSyn) - 0.05).abs() < 0.02);
        assert!((frac(PacketKind::Udp) - 0.15).abs() < 0.02);
        assert!((frac(PacketKind::Quic) - 0.10).abs() < 0.02);
    }

    #[test]
    fn shift_changes_composition() {
        let w = PacketMixWorkload {
            packets: 20_000,
            shift_at: 10_000 * 10_000, // halfway
            ..PacketMixWorkload::default()
        };
        let (s, kinds) = w.generate();
        let half = kinds.len() / 2;
        let quic_before =
            kinds[..half].iter().filter(|k| **k == PacketKind::Quic).count() as f64 / half as f64;
        let quic_after =
            kinds[half..].iter().filter(|k| **k == PacketKind::Quic).count() as f64 / half as f64;
        assert!(quic_before < 0.15 && quic_after > 0.4, "{quic_before} {quic_after}");
        assert_eq!(s.len(), kinds.len());
    }

    #[test]
    fn kind_indices_stable() {
        assert_eq!(PacketKind::TcpData.index(), 0);
        assert_eq!(PacketKind::Quic.index(), 3);
    }
}
