//! The echo-validation workload (paper Sec. 3, Figure 5).
//!
//! Frames "whose payload only contains a randomly generated integer
//! between −255 and 255", paced at a fixed gap. The values are exposed
//! so the host-side oracle can replay them.

use crate::{rng, Schedule};
use packet::builder::PacketBuilder;
use rand::Rng;
use std::net::Ipv4Addr;

/// Generator configuration.
#[derive(Debug, Clone, Copy)]
pub struct EchoWorkload {
    /// Number of frames (the paper runs up to 10 000).
    pub packets: usize,
    /// Gap between frames in nanoseconds.
    pub gap_ns: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for EchoWorkload {
    fn default() -> Self {
        Self {
            packets: 10_000,
            gap_ns: 10_000,
            seed: 1,
        }
    }
}

impl EchoWorkload {
    /// Generates the schedule and the ground-truth values.
    #[must_use]
    pub fn generate(&self) -> (Schedule, Vec<i64>) {
        let mut r = rng(self.seed);
        let mut schedule = Vec::with_capacity(self.packets);
        let mut values = Vec::with_capacity(self.packets);
        let src = Ipv4Addr::new(192, 0, 2, 1);
        let dst = Ipv4Addr::new(10, 0, 0, 1);
        for i in 0..self.packets {
            let v: i64 = r.random_range(-255..=255);
            values.push(v);
            let frame = PacketBuilder::ipv4(src, dst, 0xfd)
                .payload(&(v as u64).to_be_bytes())
                .build_bytes();
            schedule.push((i as u64 * self.gap_ns, frame));
        }
        (schedule, values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use packet::{EthernetFrame, Ipv4Packet};

    #[test]
    fn values_in_range_and_deterministic() {
        let w = EchoWorkload {
            packets: 500,
            gap_ns: 100,
            seed: 42,
        };
        let (s1, v1) = w.generate();
        let (s2, v2) = w.generate();
        assert_eq!(v1, v2);
        assert_eq!(s1.len(), 500);
        assert!(v1.iter().all(|v| (-255..=255).contains(v)));
        assert!(v1.iter().any(|v| *v < 0), "negatives occur");
        // Frames decode back to the value.
        for ((_, frame), v) in s1.iter().zip(&v1) {
            let eth = EthernetFrame::new_checked(&frame[..]).unwrap();
            let ip = Ipv4Packet::new_checked(eth.payload()).unwrap();
            let mut buf = [0u8; 8];
            buf.copy_from_slice(&ip.payload()[..8]);
            assert_eq!(u64::from_be_bytes(buf) as i64, *v);
        }
        assert_eq!(s2[10].0, 1000, "pacing");
    }

    #[test]
    fn different_seeds_differ() {
        let a = EchoWorkload {
            seed: 1,
            packets: 50,
            gap_ns: 1,
        }
        .generate()
        .1;
        let b = EchoWorkload {
            seed: 2,
            packets: 50,
            gap_ns: 1,
        }
        .generate()
        .1;
        assert_ne!(a, b);
    }
}
