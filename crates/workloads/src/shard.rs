//! Deterministic per-shard trace splitting for the sharded replay
//! engine.
//!
//! Real multi-pipe switches steer a flow to one pipe; the replay engine
//! mirrors that by hashing each frame's flow 5-tuple (src IP, dst IP,
//! protocol, src port, dst port) to a shard. Splitting is:
//!
//! - **deterministic** — a pure function of the frame bytes, so every
//!   run (and every shard count) partitions a trace identically;
//! - **flow-affine** — all packets of one flow land on one shard, the
//!   property per-flow state (sequence tracking, conservative sketch
//!   updates) relies on;
//! - **order-preserving** — each shard's schedule keeps the original
//!   time order (a stable filter of the time-sorted input).
//!
//! Non-IPv4 frames hash over the raw frame bytes instead, so they are
//! still spread deterministically rather than piling onto shard 0.

use crate::Schedule;
use packet::{EtherType, EthernetFrame, IpProtocol, Ipv4Packet, TcpSegment, UdpDatagram};

/// FNV-1a offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

#[inline]
fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// The flow key of a frame: an FNV-1a hash of the IPv4 5-tuple
/// (src, dst, protocol, src port, dst port; ports zero for transports
/// without them), or of the whole frame for non-IPv4 traffic.
#[must_use]
pub fn flow_key(frame: &[u8]) -> u64 {
    let Ok(eth) = EthernetFrame::new_checked(frame) else {
        return fnv1a(FNV_OFFSET, frame);
    };
    if eth.ethertype() != EtherType::Ipv4 {
        return fnv1a(FNV_OFFSET, frame);
    }
    let Ok(ip) = Ipv4Packet::new_checked(eth.payload()) else {
        return fnv1a(FNV_OFFSET, frame);
    };
    let (sport, dport) = match ip.protocol() {
        IpProtocol::Tcp => TcpSegment::new_checked(ip.payload())
            .map(|t| (t.src_port(), t.dst_port()))
            .unwrap_or((0, 0)),
        IpProtocol::Udp => UdpDatagram::new_checked(ip.payload())
            .map(|u| (u.src_port(), u.dst_port()))
            .unwrap_or((0, 0)),
        _ => (0, 0),
    };
    let mut h = fnv1a(FNV_OFFSET, &ip.src().octets());
    h = fnv1a(h, &ip.dst().octets());
    h = fnv1a(h, &[u8::from(ip.protocol())]);
    h = fnv1a(h, &sport.to_be_bytes());
    h = fnv1a(h, &dport.to_be_bytes());
    h
}

/// The shard (in `0..shards`) a frame belongs to: the widening-multiply
/// range reduction of its flow key — uniform without division or
/// modulo.
///
/// # Panics
///
/// Panics if `shards` is zero.
#[must_use]
pub fn shard_of(frame: &[u8], shards: usize) -> usize {
    assert!(shards >= 1, "need at least one shard");
    let wide = u128::from(flow_key(frame)) * (shards as u128);
    (wide >> 64) as usize
}

/// Splits a time-sorted schedule into `shards` per-shard schedules by
/// flow hash. The union of the outputs is the input; each output keeps
/// the input's time order.
///
/// # Panics
///
/// Panics if `shards` is zero.
#[must_use]
pub fn split(schedule: &Schedule, shards: usize) -> Vec<Schedule> {
    let mut out: Vec<Schedule> = vec![Vec::new(); shards];
    for (t, frame) in schedule {
        out[shard_of(frame, shards)].push((*t, frame.clone()));
    }
    out
}

/// The home shard of every frame in `frames`, in input order — the
/// hash half of [`split`], decoupled from list building so callers
/// (the replay engine's pre-partition stage) can apply their own
/// routing policy (quarantine reroutes) over the assignments.
///
/// # Panics
///
/// Panics if `shards` is zero.
#[must_use]
pub fn assignments(frames: &[(u64, bytes::Bytes)], shards: usize) -> Vec<usize> {
    assert!(shards >= 1, "need at least one shard");
    frames.iter().map(|(_, f)| shard_of(f, shards)).collect()
}

/// [`assignments`] computed on up to `max_threads` scoped threads.
///
/// The flow hash is a pure per-frame function, so the input is cut
/// into contiguous chunks, hashed in parallel, and re-concatenated in
/// chunk order — the result is bit-identical to the sequential
/// [`assignments`] for every thread count. Falls back to the
/// sequential path when the input is small or `max_threads <= 1`
/// (thread spawn costs more than it saves on short epochs).
///
/// # Panics
///
/// Panics if `shards` is zero.
#[must_use]
pub fn assignments_parallel(
    frames: &[(u64, bytes::Bytes)],
    shards: usize,
    max_threads: usize,
) -> Vec<usize> {
    assert!(shards >= 1, "need at least one shard");
    /// Below this many frames per thread, parallel hashing cannot
    /// amortise the spawn cost.
    const MIN_FRAMES_PER_THREAD: usize = 4096;
    let threads = max_threads.min(frames.len() / MIN_FRAMES_PER_THREAD);
    if threads <= 1 {
        return assignments(frames, shards);
    }
    let chunk = frames.len().div_ceil(threads);
    let mut out = Vec::with_capacity(frames.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = frames
            .chunks(chunk)
            .map(|part| scope.spawn(move || assignments(part, shards)))
            .collect();
        for h in handles {
            out.extend(h.join().expect("assignment hashing must not panic"));
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PacketMixWorkload, SynFloodWorkload};

    fn sample_schedule() -> Schedule {
        let (s, _) = SynFloodWorkload {
            background_cps: 500,
            flood_pps: 10_000,
            flood_start: 4_000_000,
            duration: 12_000_000,
            seed: 3,
            ..SynFloodWorkload::default()
        }
        .generate();
        s
    }

    #[test]
    fn split_partitions_without_loss() {
        let s = sample_schedule();
        for shards in [1usize, 2, 4, 8] {
            let parts = split(&s, shards);
            assert_eq!(parts.len(), shards);
            assert_eq!(
                parts.iter().map(Vec::len).sum::<usize>(),
                s.len(),
                "{shards} shards must partition every packet"
            );
            let mut rebuilt: Schedule = parts.concat();
            rebuilt.sort_by_key(|(t, _)| *t);
            let mut original = s.clone();
            original.sort_by_key(|(t, _)| *t);
            assert_eq!(rebuilt.len(), original.len());
        }
    }

    #[test]
    fn per_shard_time_order_preserved() {
        let s = sample_schedule();
        for part in split(&s, 4) {
            assert!(
                part.windows(2).all(|w| w[0].0 <= w[1].0),
                "shard schedules stay time-sorted"
            );
        }
    }

    #[test]
    fn same_flow_same_shard() {
        let s = sample_schedule();
        // Group frames by exact 5-tuple key and check shard agreement.
        for shards in [2usize, 4, 8] {
            for (_, frame) in &s {
                let k = flow_key(frame);
                let expect = ((u128::from(k) * shards as u128) >> 64) as usize;
                assert_eq!(shard_of(frame, shards), expect);
            }
        }
    }

    #[test]
    fn splitting_is_deterministic() {
        let s = sample_schedule();
        let a = split(&s, 8);
        let b = split(&s, 8);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.len(), y.len());
            for ((t1, f1), (t2, f2)) in x.iter().zip(y) {
                assert_eq!(t1, t2);
                assert_eq!(f1, f2);
            }
        }
    }

    #[test]
    fn one_shard_is_identity() {
        let s = sample_schedule();
        let parts = split(&s, 1);
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].len(), s.len());
        for ((t1, f1), (t2, f2)) in parts[0].iter().zip(&s) {
            assert_eq!(t1, t2);
            assert_eq!(f1, f2);
        }
    }

    #[test]
    fn shards_reasonably_balanced_on_mix() {
        // The mix workload spreads source ports; 8-way split should not
        // starve any shard entirely on a 20k-packet trace.
        let (s, _) = PacketMixWorkload {
            packets: 20_000,
            ..PacketMixWorkload::default()
        }
        .generate();
        let parts = split(&s, 8);
        for (i, p) in parts.iter().enumerate() {
            assert!(
                p.len() > s.len() / 64,
                "shard {i} got {} of {} packets",
                p.len(),
                s.len()
            );
        }
    }

    #[test]
    fn assignments_agree_with_split() {
        let s = sample_schedule();
        for shards in [1usize, 2, 4, 8] {
            let homes = assignments(&s, shards);
            assert_eq!(homes.len(), s.len());
            for ((_, frame), home) in s.iter().zip(&homes) {
                assert!(*home < shards);
                assert_eq!(*home, shard_of(frame, shards));
            }
        }
    }

    #[test]
    fn parallel_assignments_bit_identical_to_sequential() {
        let s = sample_schedule();
        let seq = assignments(&s, 8);
        for threads in [0usize, 1, 2, 3, 7, 64] {
            assert_eq!(
                assignments_parallel(&s, 8, threads),
                seq,
                "{threads} threads must not change the partition"
            );
        }
        // Force the parallel path even on a short trace by lowering the
        // effective per-thread size: a long synthetic repeat.
        let mut long = Schedule::new();
        while long.len() < 20_000 {
            long.extend(s.iter().cloned());
        }
        let seq_long = assignments(&long, 4);
        assert_eq!(assignments_parallel(&long, 4, 4), seq_long);
    }

    #[test]
    fn non_ip_frames_still_split_deterministically() {
        let junk = bytes::Bytes::copy_from_slice(&[0u8; 10]);
        let k1 = flow_key(&junk);
        let k2 = flow_key(&junk);
        assert_eq!(k1, k2);
        let _ = shard_of(&junk, 4);
    }
}
