//! Bimodal value streams.
//!
//! The paper's future-work section: "if a distribution is bimodal, the
//! controller can instruct switches to separately track and check the
//! two modes of the distribution". This workload produces such a
//! stream — per-interval values drawn from two well-separated clusters
//! (think: request traffic vs periodic bulk backups) — plus an optional
//! *mid-gap anomaly*: a value sitting between the modes, blatantly
//! abnormal to an operator yet **inside** the naive mean ± 2σ band,
//! because the two modes inflate σ to cover the whole gap. The
//! `bimodal_adaptation` example shows the controller-side fix the paper
//! sketches.

use crate::rng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One mode of the distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Mode {
    /// Centre of the mode.
    pub mean: i64,
    /// Half-width of the uniform jitter around the centre.
    pub jitter: i64,
}

/// Generator configuration.
#[derive(Debug, Clone, Copy)]
pub struct BimodalValues {
    /// The low mode (e.g. interactive traffic).
    pub low: Mode,
    /// The high mode (e.g. periodic bulk transfers).
    pub high: Mode,
    /// One sample in `high_period` comes from the high mode.
    pub high_period: usize,
    /// Number of samples.
    pub count: usize,
    /// If set, sample `anomaly_at` is replaced by this value.
    pub anomaly: Option<(usize, i64)>,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BimodalValues {
    fn default() -> Self {
        Self {
            low: Mode {
                mean: 100,
                jitter: 10,
            },
            high: Mode {
                mean: 10_000,
                jitter: 500,
            },
            high_period: 10,
            count: 1_000,
            anomaly: None,
            seed: 1,
        }
    }
}

impl BimodalValues {
    /// Generates the sample stream and, per sample, which mode produced
    /// it (`false` = low, `true` = high; the anomaly keeps the slot's
    /// original label).
    #[must_use]
    pub fn generate(&self) -> (Vec<i64>, Vec<bool>) {
        let mut r = rng(self.seed);
        let mut values = Vec::with_capacity(self.count);
        let mut labels = Vec::with_capacity(self.count);
        for i in 0..self.count {
            let is_high = self.high_period > 0 && i % self.high_period == self.high_period - 1;
            let m = if is_high { self.high } else { self.low };
            let v = m.mean + r.random_range(-m.jitter..=m.jitter);
            values.push(v);
            labels.push(is_high);
        }
        if let Some((at, v)) = self.anomaly {
            if at < values.len() {
                values[at] = v;
            }
        }
        (values, labels)
    }

    /// A threshold separating the modes (controller-side: it can
    /// divide), as the midpoint of the two means.
    #[must_use]
    pub fn split_threshold(&self) -> i64 {
        (self.low.mean + self.high.mean) / 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modes_are_separated_and_labelled() {
        let w = BimodalValues::default();
        let (values, labels) = w.generate();
        let t = w.split_threshold();
        for (v, is_high) in values.iter().zip(&labels) {
            if *is_high {
                assert!(*v > t, "high sample {v} above threshold {t}");
            } else {
                assert!(*v < t, "low sample {v} below threshold {t}");
            }
        }
        let highs = labels.iter().filter(|l| **l).count();
        assert_eq!(highs, 100, "one in ten samples is high");
    }

    #[test]
    fn anomaly_is_injected() {
        let w = BimodalValues {
            anomaly: Some((500, 5_000)),
            ..BimodalValues::default()
        };
        let (values, _) = w.generate();
        assert_eq!(values[500], 5_000);
    }

    #[test]
    fn deterministic() {
        let w = BimodalValues::default();
        assert_eq!(w.generate().0, w.generate().0);
    }

    /// The motivating pathology: a mid-gap value is inside the naive
    /// global 2σ band.
    #[test]
    fn mid_gap_value_hides_in_global_band() {
        use stat4_core::running::RunningStats;
        let w = BimodalValues::default();
        let (values, _) = w.generate();
        let mut s = RunningStats::new();
        for &v in &values {
            s.push(v);
        }
        let mid = 5_000;
        assert!(
            !s.is_upper_outlier(mid, 2) && !s.is_lower_outlier(mid, 2),
            "mid-gap value invisible to the global band"
        );
    }
}
