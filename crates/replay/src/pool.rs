//! The persistent shard worker pool — the crate's production engine.
//!
//! The [`reference`](crate::reference) engine pays two coordinator
//! taxes every detector interval: it spawns and joins a full
//! `std::thread::scope` worker set, and it flow-hashes every frame of
//! the interval serially between barriers. This module removes both
//! while reproducing the reference outcome bit for bit:
//!
//! - **Workers spawn once per run.** One OS thread per shard lives for
//!   the whole replay inside a single `std::thread::scope`, fed
//!   through a bounded [`sync_channel`] of capacity
//!   [`QUEUE_CAPACITY`]. An epoch is a message, not a thread.
//! - **State ping-pongs, never copies.** Each epoch the coordinator
//!   *moves* the shard's [`ShardState`] plus its frame list to the
//!   worker and gets both back in the reply — pointer handoffs through
//!   the channel, zero clones. Merging therefore still happens on the
//!   coordinator, serialized exactly like the reference engine.
//! - **Partitioning is a parallel pre-stage.** Flow hashing — the
//!   expensive, alive-map-independent half of partitioning — runs once
//!   up front over the whole schedule on scoped threads
//!   ([`workloads::shard::assignments_parallel`]). The cheap routing
//!   pass (home → survivor, quarantine reroutes) for interval *k+1*
//!   runs while the workers ingest interval *k*.
//! - **Routing is speculative but exact.** Interval *k+1* is routed
//!   against the alive map *predicted* after *k*: the current map
//!   minus shards with an injected panic scheduled at *k*. Injected
//!   faults are deterministic, so the prediction only misses on
//!   organic failures (a worker dying on its own, a merge mismatch) —
//!   then the speculative partition is discarded and rebuilt from the
//!   actual map, keeping outcomes bit-identical to the reference
//!   engine in every case.
//! - **Buffers are pooled.** Frame lists return (cleared) in each
//!   reply and recycle through a spare pool; steady state circulates
//!   ~2× shards buffers for the whole run instead of reallocating
//!   `shards` fresh `Vec`s per interval.
//!
//! Fault supervision is re-wired onto the pool with identical
//! semantics: a scheduled crash quarantines the shard before dispatch
//! (its state stays with the coordinator, excluded from merges); an
//! injected panic unwinds the worker — the coordinator notices the
//! reply channel disconnect, joins the dead thread for its payload,
//! and quarantines the shard (its state died with the worker, which
//! matches the reference engine's "a dead pipe's registers are
//! unreadable" exclusion); merge mismatches quarantine at the barrier.
//! `tests/pool.rs` and `tests/pool_teardown.rs` hold the engine to
//! bit-identical outcomes and leak-free teardown.

use crate::ckpt::{self, Checkpoint, ContextEntry, OverrideEntry, ShardStateRaw};
use crate::lifecycle::{self, LifecyclePlan, LifecycleReport, ResumeState};
use crate::provenance::{AlertProvenanceRecord, LineageSources};
use crate::{
    merge_surviving_entries, next_alive, panic_message, EnsembleReport, IncidentKind, ReplayConfig,
    ReplayHealth, ReplayOutcome, ReplayTelemetry, ShardIncident, ShardState,
};
use anomaly::{SignalContext, SignalValues, SynFloodEngine};
use faultinject::{FaultSchedule, ShardFaultKind};
use p4sim::Pipeline;
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::time::Instant;
use telemetry::Tracer;
use workloads::Schedule;

/// Bound of each shard's dispatch queue: one epoch in flight plus the
/// shutdown marker, so the coordinator never blocks on a send. Depth
/// beyond 1 would let epoch k+1 start before k's merge — the detector
/// is sequential, so the pipeline ends at the barrier by design.
pub(crate) const QUEUE_CAPACITY: usize = 2;

/// Scoped threads for the up-front flow-hash pass. Hashing is pure and
/// order-preserving, so any thread count yields the same assignment
/// (`assignments_parallel` falls back to serial for short schedules).
const PARTITION_THREADS: usize = 4;

/// One epoch's work order for a shard: its state, its routed frame
/// slice, and any fault scheduled to fire on the worker.
struct EpochWork<'a> {
    epoch_idx: u64,
    fault: Option<ShardFaultKind>,
    state: ShardState,
    frames: Vec<&'a bytes::Bytes>,
    batch: usize,
    /// Dispatch timestamp, for the queue-wait histogram.
    sent_at: Instant,
    /// The shard's span recorder, handed off with the state — threads
    /// never share a tracer. Dies with the worker on a panic.
    tracer: Tracer,
}

/// Coordinator → worker messages. The size skew between the variants
/// is deliberate: an `EpochWork` lives in at most one channel slot per
/// shard at a time (queue depth ≤ 1 by construction), so boxing it
/// would add a per-epoch allocation to save nothing.
#[allow(clippy::large_enum_variant)]
enum Dispatch<'a> {
    Epoch(EpochWork<'a>),
    Shutdown,
}

/// A routed epoch produced speculatively for interval k+1 while k is
/// in flight, valid only if `assumed_alive` still matches reality when
/// k+1 dispatches.
struct RoutedEpoch<'a> {
    work: Vec<Vec<&'a bytes::Bytes>>,
    rerouted: u64,
    assumed_alive: Vec<bool>,
}

/// Worker → coordinator reply: the state and (cleared) frame buffer
/// come home, plus the numbers the coordinator needs to reconstruct
/// the per-batch metrics the reference engine records in-thread.
struct Reply<'a> {
    state: ShardState,
    frames: Vec<&'a bytes::Bytes>,
    ingested: u64,
    busy_ns: u64,
    queue_wait_ns: u64,
    tracer: Tracer,
}

#[inline]
fn elapsed_ns(t: Instant) -> u64 {
    u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// The persistent per-shard worker: block on the queue, run one epoch,
/// reply, repeat until shutdown or coordinator disconnect. An injected
/// panic fires before any ingest (same clean-epoch-boundary guarantee
/// as the reference engine) and unwinds through this loop, dropping
/// both channel ends — the reply-channel disconnect is how the
/// supervisor notices.
fn worker_loop<'a>(shard: usize, rx: &Receiver<Dispatch<'a>>, tx: &SyncSender<Reply<'a>>) {
    // Flat parsed-batch buffer, reused for the worker's whole life:
    // each batch's headers are parsed once into it, then the trackers
    // replay the metas without touching the frame bytes again.
    let mut metas: Vec<crate::FrameMeta> = Vec::new();
    while let Ok(Dispatch::Epoch(mut work)) = rx.recv() {
        let queue_wait_ns = elapsed_ns(work.sent_at);
        let mut tracer = work.tracer;
        // The queue-wait span opens at the instant the coordinator
        // dispatched (captured on its thread, same clock origin) and
        // closes now that the worker has dequeued.
        let sent_ns = tracer.ns_since(work.sent_at);
        tracer.begin_at("queue_wait", work.epoch_idx, sent_ns);
        tracer.end("queue_wait", work.epoch_idx);
        match work.fault {
            Some(ShardFaultKind::Panic) => {
                let epoch_idx = work.epoch_idx;
                panic!("injected fault: shard {shard} panicked at epoch {epoch_idx}")
            }
            Some(ShardFaultKind::Stall { ns }) => {
                std::thread::sleep(std::time::Duration::from_nanos(ns));
            }
            _ => {}
        }
        tracer.begin("ingest", work.epoch_idx);
        let busy = Instant::now();
        for chunk in work.frames.chunks(work.batch) {
            metas.clear();
            metas.extend(chunk.iter().map(|f| crate::parse_frame(f)));
            for m in &metas {
                work.state.ingest_meta(m);
            }
        }
        let busy_ns = elapsed_ns(busy);
        tracer.end("ingest", work.epoch_idx);
        let ingested = work.frames.len() as u64;
        work.frames.clear();
        let reply = Reply {
            state: work.state,
            frames: work.frames,
            ingested,
            busy_ns,
            queue_wait_ns,
            tracer,
        };
        if tx.send(reply).is_err() {
            return;
        }
    }
}

/// Routes one epoch's frames into per-shard work lists under `alive`:
/// home shard if alive, else the next survivor in ring order, else the
/// frame is lost. Buffers come from (and eventually return to) the
/// spare pool. Returns the lists and the reroute count — the caller
/// commits the count only when the routing is actually used (a
/// discarded speculative route must not leak into health accounting).
fn route<'a>(
    schedule: &'a Schedule,
    homes: &[usize],
    range: std::ops::Range<usize>,
    alive: &[bool],
    spare: &mut Vec<Vec<&'a bytes::Bytes>>,
    shards: usize,
) -> (Vec<Vec<&'a bytes::Bytes>>, u64) {
    let mut work: Vec<Vec<&'a bytes::Bytes>> =
        (0..shards).map(|_| spare.pop().unwrap_or_default()).collect();
    let mut rerouted = 0u64;
    for idx in range {
        let home = homes[idx];
        let target = if alive[home] {
            Some(home)
        } else {
            next_alive(alive, home)
        };
        if let Some(t) = target {
            if t != home {
                rerouted += 1;
            }
            work[t].push(&schedule[idx].1);
        }
    }
    (work, rerouted)
}

/// Returns an epoch's buffers to the spare pool, cleared.
fn recycle<'a>(work: Vec<Vec<&'a bytes::Bytes>>, spare: &mut Vec<Vec<&'a bytes::Bytes>>) {
    for mut buf in work {
        buf.clear();
        spare.push(buf);
    }
}

/// [`crate::run_replay_with_faults`] on the persistent worker pool,
/// with the lifecycle layer threaded through: `plan` schedules
/// checkpoints, cooperative kills and drain-point swaps; `resume`
/// continues a checkpointed run bit-identically. Outcome semantics are
/// documented on the public wrappers; a fresh run with an inert plan is
/// required (and tested) to be a bit-identical drop-in for
/// [`crate::reference::run_replay_with_faults`].
#[allow(clippy::too_many_lines)]
pub(crate) fn run(
    schedule: &Schedule,
    cfg: &ReplayConfig,
    faults: &FaultSchedule,
    plan: &LifecyclePlan,
    resume: Option<ResumeState>,
) -> (ReplayOutcome, LifecycleReport) {
    assert!(cfg.shards >= 1, "need at least one shard");
    let interval = cfg.detector.interval_ns.max(1);
    let batch = cfg.batch.max(1);
    let batch_u64 = batch as u64;

    // Fresh runs and resumes share one initialisation path: the state
    // a fresh run starts from is just the resume state of ordinal 0.
    let r = resume.unwrap_or_else(|| ResumeState::fresh(cfg));
    let start_ordinal = r.next_ordinal;
    let mut next_ckpt_ordinal = r.next_checkpoint_ordinal;
    // Ping-pong slots: `Some` while the coordinator holds the state,
    // `None` while it is out with the worker (or died with one).
    let mut states: Vec<Option<ShardState>> = r.states;
    let mut alive: Vec<bool> = r.alive;
    let mut incidents: Vec<ShardIncident> = r.incidents;
    let mut ensemble = r.ensemble;
    let mut telemetry = ReplayTelemetry::new(cfg.shards);
    telemetry.queue_capacity = QUEUE_CAPACITY as u64;
    let mut packets: u64 = r.packets;
    let mut epochs: u64 = r.epochs;
    let mut packets_rerouted: u64 = r.packets_rerouted;
    let mut reports_dropped: u64 = r.reports_dropped;
    // Report-loss carry-forward — identical to the reference engine:
    // the next delivered report observes the per-interval average of
    // the span it covers. (HLL registers are not carried: a dropped
    // interval's distinct-source registers wash at its barrier.)
    let mut carried_syns: i64 = r.carried_syns;
    let mut carried_packets: i64 = r.carried_packets;
    let mut carried_len_sum: i64 = r.carried_len_sum;
    let mut carried_epochs: i64 = r.carried_epochs;
    // Epoch ordinals of the carried (dropped) reports — alert lineage.
    let mut carried_from: Vec<u64> = r.carried_from;
    // Drilldown ladder fed by every delivered verdict; each trigger
    // yields one provenance record.
    let mut drill = r.drill;
    let mut provenance: Vec<AlertProvenanceRecord> = r.provenance;

    // Lifecycle state. The shadow model starts from the plan's program
    // on a fresh run; a resume arrives with the checkpointed registers
    // already restored into it.
    let mut shadow: Option<Pipeline> = r.shadow.or_else(|| plan.initial_program.clone());
    let mut generation: u64 = r.generation;
    let mut swaps_committed_total: u64 = r.swaps_committed;
    // The ensemble warm-replay log: kept only when checkpoints can be
    // written (it is checkpoint payload, nothing else reads it).
    let collect_log = plan.checkpoint_dir.is_some();
    let mut context_log: Vec<ContextEntry> = r.context_log;
    let mut overrides: Vec<OverrideEntry> = r.overrides;
    let mut observes: u64 = context_log.len() as u64;
    let mut shed = lifecycle::ShedController::new(plan.shed);
    let mut report = LifecycleReport::default();
    if let Some(from) = r.resumed_from {
        report.resumed_from = Some(from);
        report.push(
            start_ordinal as u64,
            "resumed",
            format!("from checkpoint {from} at epoch ordinal {start_ordinal}"),
        );
        for note in r.fallbacks {
            report.push(start_ordinal as u64, "checkpoint_fallback", note);
        }
    }

    // Incremental barrier merger: keeps the previous epoch's merged
    // view and folds per-shard deltas into it; rebuilds from scratch
    // (the old full fold) on the first barrier and whenever the alive
    // map changes. A resume starts with no accumulator, so its first
    // barrier is a rebuild over the restored states.
    let mut merger = crate::barrier::BarrierMerger::new();

    let started = Instant::now();

    if !schedule.is_empty() {
        // Parallel pre-partition stage: hash every frame's flow once,
        // up front. Assignments depend only on frame bytes — the
        // alive-dependent routing stays per-epoch (and overlapped).
        // Recorded as `prepartition_ns`, not into the per-epoch
        // `partition_ns` histogram: this warm-up pass happens before
        // any epoch runs, and counting it there left the histogram
        // with epochs + 1 samples — off by one against every
        // per-epoch series.
        let hash_started = Instant::now();
        let homes = workloads::shard::assignments_parallel(schedule, cfg.shards, PARTITION_THREADS);
        telemetry.prepartition_ns.add(elapsed_ns(hash_started));

        // Epoch boundaries: contiguous runs of `t / interval` in the
        // time-sorted schedule, exactly like the reference engine.
        let mut ranges: Vec<(u64, std::ops::Range<usize>)> = Vec::new();
        let mut i = 0;
        while i < schedule.len() {
            let epoch_idx = schedule[i].0 / interval;
            let mut j = i;
            while j < schedule.len() && schedule[j].0 / interval == epoch_idx {
                j += 1;
            }
            ranges.push((epoch_idx, i..j));
            i = j;
        }

        // Shard tracers ping-pong with the state: `Some` while the
        // coordinator holds one, `None` while it is out with the
        // worker (or died with a panicked one).
        let trace_origin = telemetry.trace.origin();
        let mut shard_tracers: Vec<Option<Tracer>> =
            telemetry.shard_traces.drain(..).map(Some).collect();

        std::thread::scope(|scope| {
            let mut to_worker: Vec<SyncSender<Dispatch<'_>>> = Vec::with_capacity(cfg.shards);
            let mut from_worker: Vec<Receiver<Reply<'_>>> = Vec::with_capacity(cfg.shards);
            let mut handles = Vec::with_capacity(cfg.shards);
            for s in 0..cfg.shards {
                let (tx_d, rx_d) = sync_channel::<Dispatch<'_>>(QUEUE_CAPACITY);
                let (tx_r, rx_r) = sync_channel::<Reply<'_>>(QUEUE_CAPACITY);
                to_worker.push(tx_d);
                from_worker.push(rx_r);
                handles.push(Some(scope.spawn(move || worker_loop(s, &rx_d, &tx_r))));
            }

            // Run-long buffer pool (~2× shards lists in steady state).
            let mut spare: Vec<Vec<&bytes::Bytes>> = Vec::new();
            let mut in_flight: Vec<u64> = vec![0; cfg.shards];
            let mut speculative: Option<RoutedEpoch> = None;

            for (k, (epoch_idx, range)) in ranges.iter().enumerate().skip(start_ordinal) {
                let epoch_idx = *epoch_idx;
                let k64 = k as u64;

                // (0) Drain point: every surviving state is home, no
                // epoch is in flight — the only place configuration or
                // persistence may change.
                //
                // (0a) Checkpoint cadence. Written *before* the kill
                // check so a killed run's directory looks exactly like
                // a crashed run's. `k != start_ordinal` skips the
                // vacuous checkpoint of the state we just loaded (or,
                // fresh, of an empty run).
                if let Some(dir) = plan.checkpoint_dir.as_deref() {
                    if plan.checkpoint_every > 0
                        && k64.is_multiple_of(plan.checkpoint_every)
                        && k != start_ordinal
                    {
                        let t0 = Instant::now();
                        let c = Checkpoint {
                            next_ordinal: k,
                            checkpoint_ordinal: next_ckpt_ordinal,
                            cfg_shards: cfg.shards,
                            cfg_batch: cfg.batch,
                            cfg_interval_ns: cfg.detector.interval_ns,
                            schedule_packets: schedule.len() as u64,
                            faults_spec: plan.faults_spec.clone(),
                            fault_seed: faults.seed(),
                            packets,
                            epochs,
                            packets_rerouted,
                            reports_dropped,
                            carried_syns,
                            carried_packets,
                            carried_len_sum,
                            carried_epochs,
                            carried_from: carried_from.clone(),
                            alive: alive.clone(),
                            shards: states
                                .iter()
                                .map(|s| s.as_ref().map(ShardStateRaw::of))
                                .collect(),
                            incidents: incidents.clone(),
                            context_log: context_log.clone(),
                            overrides: overrides.clone(),
                            provenance: provenance.clone(),
                            generation,
                            swaps_committed: swaps_committed_total,
                            pipeline: shadow.as_ref().map(Pipeline::export_state),
                        };
                        match ckpt::write_checkpoint(dir, &c, faults) {
                            Ok(path) => {
                                telemetry.checkpoints_written.inc();
                                report.checkpoints_written += 1;
                                report.push(
                                    k64,
                                    "checkpoint_written",
                                    format!("{} (resumes at ordinal {k})", path.display()),
                                );
                            }
                            Err(e) => report.push(k64, "checkpoint_error", e),
                        }
                        telemetry.ckpt_write_ns.record(elapsed_ns(t0));
                        next_ckpt_ordinal += 1;
                    }
                }

                // (0b) Cooperative kill: stop at the drain point with a
                // clean teardown — the crash model recovery tests
                // resume from.
                if plan.kill_at_epoch == Some(k64) {
                    report.push(
                        k64,
                        "killed",
                        format!("stopped at drain point before epoch ordinal {k}"),
                    );
                    break;
                }

                // (0c) Drain-point swaps: vet everything against the
                // running configuration, then commit atomically — or
                // reject leaving it untouched.
                for req in plan.swaps.iter().filter(|s| s.at_epoch == k64) {
                    match lifecycle::vet_swap(req, generation, shadow.as_ref(), &ensemble) {
                        Ok(vetted) => {
                            if let Some(next) = vetted.shadow {
                                shadow = Some(next);
                            }
                            for (name, w) in &req.weights {
                                let _ = ensemble.set_weight_override(name, *w);
                                overrides.push(OverrideEntry {
                                    after_observes: observes,
                                    engine: name.clone(),
                                    weight: *w,
                                });
                            }
                            generation += 1;
                            swaps_committed_total += 1;
                            telemetry.swaps_committed.inc();
                            report.swaps_committed += 1;
                            report.push(
                                k64,
                                "swap_committed",
                                format!("generation {generation}: {}", vetted.detail),
                            );
                            // Control-channel duplication: the storm
                            // fault redelivers the request we just
                            // committed. Its expected generation is now
                            // stale, so the duplicate vets to rejection
                            // — commits are idempotent.
                            if faults.duplicate_reconfig(swaps_committed_total) {
                                if let Err(e) = lifecycle::vet_swap(
                                    req,
                                    generation,
                                    shadow.as_ref(),
                                    &ensemble,
                                ) {
                                    telemetry.swaps_rejected.inc();
                                    report.swaps_rejected += 1;
                                    report.push(k64, "stale_swap_rejected", e);
                                }
                            }
                        }
                        Err(e) => {
                            telemetry.swaps_rejected.inc();
                            report.swaps_rejected += 1;
                            let kind = if req.expected_generation == generation {
                                "swap_rejected"
                            } else {
                                "stale_swap_rejected"
                            };
                            report.push(k64, kind, e);
                        }
                    }
                }

                // Telemetry shedding is sampled once per epoch so every
                // span opened this epoch also closes this epoch.
                let traces_on = shed.allow_traces();
                let hists_on = shed.allow_histograms();
                if !traces_on {
                    telemetry.telemetry_shed.inc();
                }

                let incidents_before = incidents.len();

                // (A) This epoch's routing: the speculative partition
                // if its predicted alive map held, else a fresh pass.
                let (mut work, rerouted) = match speculative.take() {
                    Some(spec) if spec.assumed_alive == alive => (spec.work, spec.rerouted),
                    other => {
                        if let Some(spec) = other {
                            recycle(spec.work, &mut spare);
                        }
                        let t0 = Instant::now();
                        let routed =
                            route(schedule, &homes, range.clone(), &alive, &mut spare, cfg.shards);
                        if hists_on {
                            telemetry.partition_ns.record(elapsed_ns(t0));
                        }
                        routed
                    }
                };
                packets_rerouted += rerouted;

                // (B) Fault plan; crashes quarantine before dispatch,
                // so the crashed shard's slice of this interval is
                // lost — its state stays parked in its slot.
                let mut recover_started: Option<Instant> = None;
                let plan: Vec<Option<ShardFaultKind>> = (0..cfg.shards)
                    .map(|s| {
                        if alive[s] {
                            faults.shard_fault(epoch_idx, s)
                        } else {
                            None
                        }
                    })
                    .collect();
                for (s, fault) in plan.iter().enumerate() {
                    let Some(kind) = fault else { continue };
                    telemetry.faults_injected.inc();
                    if *kind == ShardFaultKind::Crash {
                        recover_started.get_or_insert_with(Instant::now);
                        alive[s] = false;
                        incidents.push(ShardIncident {
                            shard: s,
                            epoch: epoch_idx,
                            kind: IncidentKind::Crashed,
                        });
                    }
                }

                // (C) Dispatch to every surviving worker: move the
                // state and frame list through the bounded queue.
                if traces_on {
                    telemetry.trace.begin("ingest", epoch_idx);
                }
                let epoch_started = Instant::now();
                let mut dispatched = vec![false; cfg.shards];
                for s in 0..cfg.shards {
                    let frames = std::mem::take(&mut work[s]);
                    if alive[s] {
                        let state = states[s].take().expect("alive shard holds its state");
                        let tracer =
                            shard_tracers[s].take().expect("alive shard holds its tracer");
                        let msg = Dispatch::Epoch(EpochWork {
                            epoch_idx,
                            fault: plan[s],
                            state,
                            frames,
                            batch,
                            sent_at: Instant::now(),
                            tracer,
                        });
                        to_worker[s]
                            .send(msg)
                            .expect("dispatch to a live worker cannot fail");
                        in_flight[s] += 1;
                        if hists_on {
                            telemetry.shards[s].queue_depth.record(in_flight[s]);
                        }
                        dispatched[s] = true;
                    } else {
                        recycle(vec![frames], &mut spare);
                    }
                }

                // (D) Pipelined pre-partition: route interval k+1 while
                // the workers ingest interval k, against the alive map
                // predicted after k (current minus injected panics at
                // k — deterministic, so only organic failures miss).
                let mut spec_route_ns = None;
                if let Some((_, next_range)) = ranges.get(k + 1) {
                    let mut pred = alive.clone();
                    for (s, fault) in plan.iter().enumerate() {
                        if matches!(fault, Some(ShardFaultKind::Panic)) {
                            pred[s] = false;
                        }
                    }
                    let t0 = Instant::now();
                    let (w, r) =
                        route(schedule, &homes, next_range.clone(), &pred, &mut spare, cfg.shards);
                    let dur = elapsed_ns(t0);
                    if hists_on {
                        telemetry.partition_ns.record(dur);
                    }
                    spec_route_ns = Some(dur);
                    speculative = Some(RoutedEpoch {
                        work: w,
                        rerouted: r,
                        assumed_alive: pred,
                    });
                }

                // (E) Collect replies in shard order. A disconnected
                // reply channel means the worker died: join it for the
                // panic payload and quarantine (its state is gone).
                type EpochResult = (usize, Result<(u64, u64, u64), String>);
                let mut results: Vec<EpochResult> = Vec::with_capacity(cfg.shards);
                if traces_on {
                    telemetry.trace.begin("barrier", epoch_idx);
                }
                for s in 0..cfg.shards {
                    if !dispatched[s] {
                        continue;
                    }
                    in_flight[s] -= 1;
                    match from_worker[s].recv() {
                        Ok(reply) => {
                            states[s] = Some(reply.state);
                            shard_tracers[s] = Some(reply.tracer);
                            recycle(vec![reply.frames], &mut spare);
                            results
                                .push((s, Ok((reply.busy_ns, reply.ingested, reply.queue_wait_ns))));
                        }
                        Err(_) => {
                            let h = handles[s].take().expect("dead worker joined once");
                            let msg = match h.join() {
                                Err(payload) => panic_message(payload),
                                Ok(()) => String::from("shard worker exited without a reply"),
                            };
                            results.push((s, Err(msg)));
                        }
                    }
                }
                if traces_on {
                    telemetry.trace.end("barrier", epoch_idx);
                }
                let epoch_wall = elapsed_ns(epoch_started);
                if traces_on {
                    telemetry.trace.end("ingest", epoch_idx);
                }
                let mut worst_queue_wait_ns = 0u64;
                for (s, r) in &results {
                    match r {
                        Ok((busy_ns, ingested, queue_wait_ns)) => {
                            // Reconstruct the reference engine's
                            // per-chunk records from the counts: `full`
                            // whole batches plus one remainder batch is
                            // exactly what `chunks(batch)` yields, and
                            // `record_n` is bit-identical to repeated
                            // `record`s.
                            let full = ingested / batch_u64;
                            let rem = ingested % batch_u64;
                            worst_queue_wait_ns = worst_queue_wait_ns.max(*queue_wait_ns);
                            let m = &mut telemetry.shards[*s];
                            m.packets.add(*ingested);
                            m.batches.add(full + u64::from(rem > 0));
                            m.ingest_ns.add(*busy_ns);
                            if hists_on {
                                m.batch_size.record_n(batch_u64, full);
                                if rem > 0 {
                                    m.batch_size.record(rem);
                                }
                                m.queue_wait_ns.record(*queue_wait_ns);
                                m.barrier_wait_ns.record(epoch_wall.saturating_sub(*busy_ns));
                            }
                        }
                        Err(msg) => {
                            recover_started.get_or_insert_with(Instant::now);
                            alive[*s] = false;
                            incidents.push(ShardIncident {
                                shard: *s,
                                epoch: epoch_idx,
                                kind: IncidentKind::Panicked(msg.clone()),
                            });
                        }
                    }
                }
                packets += range.len() as u64;
                epochs += 1;

                // (F) Barrier: merge surviving state (serialized on
                // the coordinator, like the reference engine) and feed
                // the central detector unless this report is lost.
                if traces_on {
                    telemetry.trace.begin("merge", epoch_idx);
                }
                let merge_started = Instant::now();
                let mut entries: Vec<(usize, &mut ShardState)> = states
                    .iter_mut()
                    .enumerate()
                    .filter_map(|(s, st)| st.as_mut().map(|st| (s, st)))
                    .collect();
                let merge_stats =
                    merger.merge(&mut entries, &mut alive, cfg, epoch_idx, &mut incidents);
                drop(entries);
                let merged = merger.merged();
                let merge_ns = elapsed_ns(merge_started);
                if traces_on {
                    telemetry.trace.end("merge", epoch_idx);
                }
                if hists_on {
                    telemetry.merge_ns.record(merge_ns);
                }
                telemetry.merge_delta_bytes.add(merge_stats.delta_bytes);
                telemetry
                    .merge_skipped_registers
                    .add(merge_stats.skipped_registers);
                if merge_stats.rebuilt {
                    telemetry.merge_rebuilds.inc();
                }
                let at = (epoch_idx + 1) * interval;
                let mut any_fired = false;
                if faults.drop_epoch_report(epoch_idx) {
                    reports_dropped += 1;
                    telemetry.reports_dropped.inc();
                    if traces_on {
                        telemetry.trace.instant("report_dropped", epoch_idx);
                    }
                    carried_syns += merged.syn_in_interval;
                    carried_packets += merged.packets_in_interval;
                    carried_len_sum += merged.len_sum_in_interval;
                    carried_epochs += 1;
                    carried_from.push(epoch_idx);
                } else {
                    if traces_on {
                        telemetry.trace.begin("detect", epoch_idx);
                    }
                    let span = carried_epochs + 1;
                    let ctx = SignalContext {
                        at,
                        epoch: epoch_idx,
                        interval_ns: interval,
                        spanned: span,
                        packets: (merged.packets_in_interval + carried_packets) / span,
                        syns: (merged.syn_in_interval + carried_syns) / span,
                        len_sum: (merged.len_sum_in_interval + carried_len_sum) / span,
                        distinct_sources: i64::try_from(merged.src_hll.estimate())
                            .unwrap_or(i64::MAX),
                        median_len: crate::median_len_signal(
                            &merged.len_median,
                            &mut telemetry.median_fallbacks,
                        ),
                        kinds: &merged.kinds,
                        len_stats: &merged.len_stats,
                    };
                    // The warm-replay log records exactly what the
                    // ensemble just observed: the scalar signals plus
                    // the two merged trackers the context borrows.
                    if collect_log {
                        context_log.push(ContextEntry {
                            signals: SignalValues::capture(&ctx),
                            kinds_min: merged.kinds.min_value(),
                            kinds_counts: merged.kinds.counts().to_vec(),
                            len_n: merged.len_stats.n(),
                            len_xsum: merged.len_stats.xsum(),
                            len_xsumsq: merged.len_stats.xsumsq(),
                        });
                    }
                    observes += 1;
                    let verdict = ensemble.observe(&ctx);
                    any_fired = !verdict.fired.is_empty();
                    if let Some(outcome) = drill.observe(&verdict) {
                        if traces_on && !outcome.transactions.is_empty() {
                            telemetry.trace.instant("rebind", epoch_idx);
                        }
                        let delivered: Vec<usize> = alive
                            .iter()
                            .enumerate()
                            .filter(|&(_, a)| *a)
                            .map(|(s, _)| s)
                            .collect();
                        provenance.push(AlertProvenanceRecord::capture(
                            provenance.len() as u64,
                            &ctx,
                            &verdict,
                            outcome,
                            LineageSources {
                                delivered_shards: delivered,
                                carried_from: &carried_from,
                                rerouted_frames: rerouted,
                                incidents: &incidents,
                            },
                        ));
                    }
                    if traces_on {
                        telemetry.trace.end("detect", epoch_idx);
                    }
                    carried_syns = 0;
                    carried_packets = 0;
                    carried_len_sum = 0;
                    carried_epochs = 0;
                    carried_from.clear();
                }
                if any_fired && traces_on {
                    telemetry.trace.instant("alert", epoch_idx);
                }
                if hists_on {
                    // Actual wall time of the whole epoch (dispatch
                    // through merge and detection). The old record
                    // summed the ingest window with the merge window,
                    // double-counting any overlap — epoch_ns samples
                    // could exceed what a wall clock ever measured.
                    telemetry.epoch_ns.record(elapsed_ns(epoch_started));
                }
                telemetry.epochs.inc();
                if let Some(dur) = spec_route_ns {
                    // The k+1 routing ran inside k's ingest window;
                    // anything beyond the wall was coordinator-bound.
                    if hists_on {
                        telemetry.overlap_ns.record(dur.min(epoch_wall));
                    }
                }

                // (G) Quarantine bookkeeping, same clock semantics as
                // the reference engine.
                let new_incidents = incidents.len() - incidents_before;
                if new_incidents > 0 {
                    telemetry.shards_quarantined.add(new_incidents as u64);
                    if traces_on {
                        telemetry.trace.instant("quarantine", epoch_idx);
                    }
                    let t0 = recover_started.unwrap_or(merge_started);
                    let spent = elapsed_ns(t0);
                    for _ in 0..new_incidents {
                        telemetry.recover_ns.record(spent);
                    }
                }

                // (H) Fold the closed interval's SYN counts and reset
                // the per-interval fields (counters and HLL registers).
                // Parked (dead-but-present) states carry zero here,
                // exactly like the reference engine's stale entries.
                for (s, (st, m)) in states
                    .iter_mut()
                    .zip(telemetry.shards.iter_mut())
                    .enumerate()
                {
                    if let Some(state) = st {
                        if traces_on {
                            if let Some(tr) = shard_tracers[s].as_mut() {
                                tr.begin("close_interval", epoch_idx);
                            }
                        }
                        m.syn_packets.add(crate::closed_interval_syns(
                            state.syn_in_interval,
                            &mut telemetry.syn_clamps,
                        ));
                        state.close_interval();
                        if traces_on {
                            if let Some(tr) = shard_tracers[s].as_mut() {
                                tr.end("close_interval", epoch_idx);
                            }
                        }
                    }
                }

                // Feed the shed controller the epoch's worst queue
                // wait; a level change takes effect next epoch (this
                // one's spans are already committed).
                if let Some(level) = shed.observe(worst_queue_wait_ns) {
                    report.push(k64, "shed_level", level.as_str().to_string());
                }
            }

            // Teardown: wake every worker with a shutdown marker (dead
            // workers' queues are disconnected — ignore), then join.
            // Panicked workers were joined at quarantine time, so every
            // remaining join is a clean exit and the scope ends with no
            // unjoined threads to re-panic on.
            for tx in &to_worker {
                let _ = tx.send(Dispatch::Shutdown);
            }
            drop(to_worker);
            for h in &mut handles {
                if let Some(h) = h.take() {
                    h.join().expect("idle worker shuts down cleanly");
                }
            }
        });

        // Bring the shard trace buffers home. A panicked worker's
        // tracer died with it — an empty placeholder keeps the slot
        // (it contributes no events and no thread to the merge).
        telemetry.shard_traces = shard_tracers
            .into_iter()
            .enumerate()
            .map(|(s, t)| t.unwrap_or_else(|| Tracer::for_shard(0, s as u32, trace_origin)))
            .collect();
    }

    let elapsed = started.elapsed();
    telemetry.elapsed_ns = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
    let syn_engine = ensemble
        .engine::<SynFloodEngine>("synflood")
        .expect("ensemble always carries the SYN-flood engine");
    let alerts = syn_engine.alerts().to_vec();
    let detected_at = syn_engine.detected_at();
    telemetry.alerts.add(alerts.len() as u64);
    telemetry.detector = syn_engine.metrics().clone();
    telemetry.engines = ensemble
        .metrics_by_name()
        .into_iter()
        .map(|(n, m)| (n.to_string(), m))
        .collect();
    let ensemble_report = EnsembleReport {
        engines: ensemble.summaries(),
        fired: ensemble.fired_log.clone(),
    };

    let final_epoch = schedule.last().map_or(0, |(t, _)| t / interval);
    let entries: Vec<(usize, &ShardState)> = states
        .iter()
        .enumerate()
        .filter_map(|(s, st)| st.as_ref().map(|st| (s, st)))
        .collect();
    let merged = merge_surviving_entries(&entries, &mut alive, cfg, final_epoch, &mut incidents);
    let health = ReplayHealth {
        shards_configured: cfg.shards,
        shards_alive: alive.iter().filter(|a| **a).count(),
        packets_offered: packets,
        packets_ingested: merged.packets,
        packets_lost: packets.saturating_sub(merged.packets),
        packets_rerouted,
        reports_dropped,
        incidents,
    };
    telemetry.packets_lost.add(health.packets_lost);
    telemetry.packets_rerouted.add(health.packets_rerouted);
    report.generation = generation;
    let outcome = ReplayOutcome {
        merged,
        alerts,
        detected_at,
        packets,
        epochs,
        elapsed,
        health,
        ensemble: ensemble_report,
        provenance,
        telemetry,
    };
    (outcome, report)
}
