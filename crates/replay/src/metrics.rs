//! Replay-engine telemetry: per-shard metric sets that merge at the
//! same epoch barriers as the Stat4 state itself.
//!
//! Each shard thread owns one [`ShardMetrics`] — plain counters and
//! log-linear histograms, updated with per-batch granularity so the
//! per-packet hot path stays allocation- and timing-free. Like
//! [`crate::ShardState`], the sets implement
//! [`stat4_core::Mergeable`]; the merged view
//! ([`ReplayTelemetry::merged_shard`]) is a pure fold of the per-shard
//! sets, so `merged.packets == Σ shard.packets` by construction.
//!
//! [`ReplayTelemetry::snapshot`] renders everything — per-shard
//! series (labelled `shard="<i>"`), engine-level epoch/merge timings,
//! the epoch tracer's bookkeeping, and the central detector's fire /
//! detection-delay metrics — into one [`telemetry::Snapshot`] ready
//! for Prometheus or JSON exposition.

use anomaly::DetectorMetrics;
use stat4_core::{Mergeable, Stat4Result};
use telemetry::{Counter, LogLinearHistogram, MergedTrace, Snapshot, Tracer};

/// Metrics one shard thread maintains.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMetrics {
    /// Frames ingested.
    pub packets: Counter,
    /// SYN frames ingested (folded in at each epoch barrier).
    pub syn_packets: Counter,
    /// Batches processed.
    pub batches: Counter,
    /// Frames per batch.
    pub batch_size: LogLinearHistogram,
    /// Nanoseconds spent ingesting (excludes barrier waits).
    pub ingest_ns: Counter,
    /// Nanoseconds spent idle at the epoch barrier waiting for the
    /// slowest shard — the straggler signal.
    pub barrier_wait_ns: LogLinearHistogram,
    /// Nanoseconds each dispatched epoch sat in this shard's bounded
    /// queue before the worker dequeued it (pool engine; empty on the
    /// reference engine, which has no queues).
    pub queue_wait_ns: LogLinearHistogram,
    /// Epochs in flight in this shard's queue at each dispatch —
    /// backpressure signal (pool engine; empty on the reference
    /// engine).
    pub queue_depth: LogLinearHistogram,
}

impl Default for ShardMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl ShardMetrics {
    /// A zeroed set.
    #[must_use]
    pub fn new() -> Self {
        Self {
            packets: Counter::new(),
            syn_packets: Counter::new(),
            batches: Counter::new(),
            batch_size: LogLinearHistogram::default(),
            ingest_ns: Counter::new(),
            barrier_wait_ns: LogLinearHistogram::default(),
            queue_wait_ns: LogLinearHistogram::default(),
            queue_depth: LogLinearHistogram::default(),
        }
    }

    /// Ingest throughput in packets per second of *busy* time (0.0
    /// before any timed work).
    #[must_use]
    pub fn ingest_pps(&self) -> f64 {
        let ns = self.ingest_ns.get();
        if ns == 0 {
            return 0.0;
        }
        self.packets.get() as f64 / (ns as f64 / 1e9)
    }
}

impl Mergeable for ShardMetrics {
    /// Counters and histograms add cellwise — the merged set equals a
    /// single shard having done all the work (modulo wall-clock
    /// fields, which are sums of busy time, not elapsed time).
    fn merge_from(&mut self, other: &Self) -> Stat4Result<()> {
        self.packets.merge_from(&other.packets)?;
        self.syn_packets.merge_from(&other.syn_packets)?;
        self.batches.merge_from(&other.batches)?;
        self.batch_size.merge_from(&other.batch_size)?;
        self.ingest_ns.merge_from(&other.ingest_ns)?;
        self.barrier_wait_ns.merge_from(&other.barrier_wait_ns)?;
        self.queue_wait_ns.merge_from(&other.queue_wait_ns)?;
        self.queue_depth.merge_from(&other.queue_depth)?;
        Ok(())
    }
}

/// Everything the replay engine observed about itself during one run.
#[derive(Debug, Clone)]
pub struct ReplayTelemetry {
    /// Per-shard metric sets, index = shard id.
    pub shards: Vec<ShardMetrics>,
    /// Closed epochs.
    pub epochs: Counter,
    /// Alerts the central detector raised.
    pub alerts: Counter,
    /// Wall time of each epoch (dispatch → merged, detected verdict),
    /// ns. A real clock measurement: every sample is bounded by the
    /// run's `elapsed_ns`.
    pub epoch_ns: LogLinearHistogram,
    /// Time folding shard state into the merged view per epoch
    /// (rebuild fold or sparse delta application), ns.
    pub merge_ns: LogLinearHistogram,
    /// The central detector's fire counts and detection-delay
    /// histogram (copied out after the run).
    pub detector: DetectorMetrics,
    /// Per-engine ensemble metrics (fire counts and detection-delay
    /// histograms), one entry per ensemble engine, copied out after
    /// the run in engine order.
    pub engines: Vec<(String, DetectorMetrics)>,
    /// Shard faults the supervisor injected (stalls, panics, crashes).
    pub faults_injected: Counter,
    /// Shards quarantined by the supervisor (panic, crash, or merge
    /// failure) — each shard counts at most once.
    pub shards_quarantined: Counter,
    /// Frames never reflected in the merged view: slices of shards
    /// that died mid-epoch plus the discarded history of quarantined
    /// shards.
    pub packets_lost: Counter,
    /// Frames redirected from a quarantined shard to a survivor.
    pub packets_rerouted: Counter,
    /// Epoch reports lost on the control channel (the detector skipped
    /// those intervals; SYN counts carried forward).
    pub reports_dropped: Counter,
    /// Time from detecting a shard failure to having re-merged the
    /// surviving state, per quarantine incident, ns.
    pub recover_ns: LogLinearHistogram,
    /// Time spent flow-hash partitioning each epoch's frames into
    /// per-shard work lists (the pre-partition stage), ns. One sample
    /// per closed epoch — the warm-up partition of epoch 0's frames,
    /// which happens before any epoch runs, lands in
    /// [`Self::prepartition_ns`] instead.
    pub partition_ns: LogLinearHistogram,
    /// Time spent on the warm-up partition before the first epoch
    /// (pool engine; zero on the reference engine). Kept out of
    /// `partition_ns` so that histogram's sample count equals the
    /// closed-epoch count.
    pub prepartition_ns: Counter,
    /// Bytes of sparse delta state shipped across all epoch-barrier
    /// merges (what a control channel would carry; full rebuild merges
    /// contribute nothing here).
    pub merge_delta_bytes: Counter,
    /// Register cells the delta path did **not** ship because they
    /// were untouched since the previous barrier — the sparsity win
    /// over a full-state merge.
    pub merge_skipped_registers: Counter,
    /// Epoch barriers that fell back to a full rebuild merge (first
    /// epoch, resume, or a change in the alive map).
    pub merge_rebuilds: Counter,
    /// Median-length estimates that came back empty and were reported
    /// as 0 to the detectors (previously swallowed by `unwrap_or`).
    pub median_fallbacks: Counter,
    /// Closed-interval SYN counts outside the u64 range that were
    /// clamped to 0 for the detectors (previously swallowed by
    /// `unwrap_or`).
    pub syn_clamps: Counter,
    /// Portion of each epoch's partition time that overlapped worker
    /// ingest — the pool's pipelining win; zero on the reference
    /// engine, which partitions serially between barriers.
    pub overlap_ns: LogLinearHistogram,
    /// Bound of the per-shard dispatch queues (0 = unqueued reference
    /// engine).
    pub queue_capacity: u64,
    /// Crash-consistent checkpoints written at epoch drain points.
    pub checkpoints_written: Counter,
    /// Time serializing and durably writing each checkpoint, ns.
    pub ckpt_write_ns: LogLinearHistogram,
    /// Drain-point reconfiguration requests committed.
    pub swaps_committed: Counter,
    /// Drain-point reconfiguration requests rejected (vet failures and
    /// stale duplicates).
    pub swaps_rejected: Counter,
    /// Epochs that ran with telemetry detail shed (trace spans or
    /// histograms suppressed under queue-wait overload).
    pub telemetry_shed: Counter,
    /// Epoch lifecycle events recorded by the coordinator (bounded).
    pub trace: Tracer,
    /// One bounded tracer per shard, sharing the coordinator's time
    /// origin — workers record their ingest/queue-wait spans into
    /// their own buffer (handed off through the dispatch channel on
    /// the pool engine; borrowed in-scope on the reference engine).
    /// [`Self::merged_trace`] folds them with the coordinator's.
    pub shard_traces: Vec<Tracer>,
    /// Total wall time of the replay, ns.
    pub elapsed_ns: u64,
}

impl ReplayTelemetry {
    /// Default trace-buffer capacity (events).
    pub const TRACE_CAPACITY: usize = 4096;

    /// Fresh telemetry for `shards` worker shards.
    #[must_use]
    pub fn new(shards: usize) -> Self {
        let trace = Tracer::new(Self::TRACE_CAPACITY);
        let origin = trace.origin();
        Self {
            shards: (0..shards).map(|_| ShardMetrics::new()).collect(),
            epochs: Counter::new(),
            alerts: Counter::new(),
            epoch_ns: LogLinearHistogram::default(),
            merge_ns: LogLinearHistogram::default(),
            detector: DetectorMetrics::new(),
            engines: Vec::new(),
            faults_injected: Counter::new(),
            shards_quarantined: Counter::new(),
            packets_lost: Counter::new(),
            packets_rerouted: Counter::new(),
            reports_dropped: Counter::new(),
            recover_ns: LogLinearHistogram::default(),
            partition_ns: LogLinearHistogram::default(),
            prepartition_ns: Counter::new(),
            merge_delta_bytes: Counter::new(),
            merge_skipped_registers: Counter::new(),
            merge_rebuilds: Counter::new(),
            median_fallbacks: Counter::new(),
            syn_clamps: Counter::new(),
            overlap_ns: LogLinearHistogram::default(),
            queue_capacity: 0,
            checkpoints_written: Counter::new(),
            ckpt_write_ns: LogLinearHistogram::default(),
            swaps_committed: Counter::new(),
            swaps_rejected: Counter::new(),
            telemetry_shed: Counter::new(),
            trace,
            shard_traces: (0..shards)
                .map(|s| Tracer::for_shard(Self::TRACE_CAPACITY, s as u32, origin))
                .collect(),
            elapsed_ns: 0,
        }
    }

    /// Every thread's trace buffer — the coordinator's first, then
    /// each shard's — folded into one causally-ordered stream with the
    /// total dropped-event count.
    #[must_use]
    pub fn merged_trace(&self) -> MergedTrace {
        MergedTrace::merge(std::iter::once(&self.trace).chain(self.shard_traces.iter()))
    }

    /// The cross-shard fold of the per-shard sets.
    ///
    /// # Panics
    ///
    /// Never in practice: all sets share one histogram geometry.
    #[must_use]
    pub fn merged_shard(&self) -> ShardMetrics {
        let mut merged = ShardMetrics::new();
        for s in &self.shards {
            merged.merge_from(s).expect("uniform metric geometry");
        }
        merged
    }

    /// Renders the full metric set as a [`Snapshot`].
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        let mut snap = Snapshot::new();
        for (i, s) in self.shards.iter().enumerate() {
            let id = i.to_string();
            let labels: [(&str, &str); 1] = [("shard", &id)];
            snap.push_counter(
                "replay_shard_packets_total",
                "frames ingested per shard",
                &labels,
                s.packets.get(),
            );
            snap.push_counter(
                "replay_shard_syn_packets_total",
                "SYN frames ingested per shard",
                &labels,
                s.syn_packets.get(),
            );
            snap.push_counter(
                "replay_shard_batches_total",
                "batches processed per shard",
                &labels,
                s.batches.get(),
            );
            snap.push_counter(
                "replay_shard_ingest_ns_total",
                "busy ingest nanoseconds per shard",
                &labels,
                s.ingest_ns.get(),
            );
            snap.push_gauge(
                "replay_shard_ingest_pps",
                "ingest throughput per shard (packets per busy second)",
                &labels,
                s.ingest_pps() as i64,
            );
            snap.push_histogram(
                "replay_shard_batch_size",
                "frames per batch",
                &labels,
                &s.batch_size,
            );
            snap.push_histogram(
                "replay_shard_barrier_wait_ns",
                "idle time at the epoch barrier per shard",
                &labels,
                &s.barrier_wait_ns,
            );
            snap.push_histogram(
                "replay_shard_queue_wait_ns",
                "time dispatched epochs sat in the shard's queue",
                &labels,
                &s.queue_wait_ns,
            );
            snap.push_histogram(
                "replay_shard_queue_depth",
                "epochs in flight in the shard's queue at dispatch",
                &labels,
                &s.queue_depth,
            );
            snap.push_gauge(
                "replay_shard_queue_depth_max",
                "deepest the shard's dispatch queue got",
                &labels,
                i64::try_from(s.queue_depth.max().unwrap_or(0)).unwrap_or(i64::MAX),
            );
            if let Some(t) = self.shard_traces.get(i) {
                snap.push_counter(
                    "replay_shard_trace_dropped_total",
                    "trace events dropped at the shard tracer's buffer cap",
                    &labels,
                    t.dropped(),
                );
            }
        }
        let merged = self.merged_shard();
        snap.push_counter(
            "replay_packets_total",
            "frames ingested across all shards",
            &[],
            merged.packets.get(),
        );
        snap.push_counter(
            "replay_epochs_total",
            "closed detector intervals",
            &[],
            self.epochs.get(),
        );
        snap.push_counter(
            "replay_alerts_total",
            "alerts raised by the central detector",
            &[],
            self.alerts.get(),
        );
        snap.push_histogram(
            "replay_epoch_ns",
            "wall time per epoch (dispatch through merge and detection)",
            &[],
            &self.epoch_ns,
        );
        snap.push_histogram(
            "replay_merge_ns",
            "time folding shard state into the merged view per epoch",
            &[],
            &self.merge_ns,
        );
        snap.push_gauge(
            "replay_elapsed_ns",
            "wall time of the whole replay",
            &[],
            i64::try_from(self.elapsed_ns).unwrap_or(i64::MAX),
        );
        snap.push_counter(
            "replay_faults_injected_total",
            "shard faults injected by the supervisor",
            &[],
            self.faults_injected.get(),
        );
        snap.push_counter(
            "replay_shards_quarantined_total",
            "shards quarantined after a panic, crash or merge failure",
            &[],
            self.shards_quarantined.get(),
        );
        snap.push_counter(
            "replay_packets_lost_total",
            "frames missing from the merged view after quarantines",
            &[],
            self.packets_lost.get(),
        );
        snap.push_counter(
            "replay_packets_rerouted_total",
            "frames redirected from quarantined shards to survivors",
            &[],
            self.packets_rerouted.get(),
        );
        snap.push_counter(
            "replay_reports_dropped_total",
            "epoch reports lost on the control channel",
            &[],
            self.reports_dropped.get(),
        );
        snap.push_histogram(
            "replay_recover_ns",
            "time from shard failure to re-merged surviving state",
            &[],
            &self.recover_ns,
        );
        snap.push_histogram(
            "replay_partition_ns",
            "time flow-hash partitioning each epoch into shard work lists",
            &[],
            &self.partition_ns,
        );
        snap.push_counter(
            "replay_prepartition_ns_total",
            "time spent on the warm-up partition before the first epoch",
            &[],
            self.prepartition_ns.get(),
        );
        snap.push_counter(
            "replay_merge_delta_bytes_total",
            "bytes of sparse delta state shipped across barrier merges",
            &[],
            self.merge_delta_bytes.get(),
        );
        snap.push_counter(
            "replay_merge_skipped_registers_total",
            "untouched register cells the delta merges did not ship",
            &[],
            self.merge_skipped_registers.get(),
        );
        snap.push_counter(
            "replay_merge_rebuilds_total",
            "epoch barriers that fell back to a full rebuild merge",
            &[],
            self.merge_rebuilds.get(),
        );
        snap.push_counter(
            "replay_median_fallbacks_total",
            "empty median estimates reported to the detectors as 0",
            &[],
            self.median_fallbacks.get(),
        );
        snap.push_counter(
            "replay_syn_clamps_total",
            "out-of-range closed-interval SYN counts clamped to 0",
            &[],
            self.syn_clamps.get(),
        );
        snap.push_histogram(
            "replay_overlap_ns",
            "partition time overlapped with worker ingest per epoch",
            &[],
            &self.overlap_ns,
        );
        snap.push_gauge(
            "replay_queue_capacity",
            "bound of the per-shard dispatch queues (0 = unqueued engine)",
            &[],
            i64::try_from(self.queue_capacity).unwrap_or(i64::MAX),
        );
        snap.push_counter(
            "replay_checkpoints_written_total",
            "crash-consistent checkpoints written at epoch drain points",
            &[],
            self.checkpoints_written.get(),
        );
        snap.push_histogram(
            "replay_ckpt_write_ns",
            "time serializing and durably writing each checkpoint",
            &[],
            &self.ckpt_write_ns,
        );
        snap.push_counter(
            "replay_swaps_committed_total",
            "drain-point reconfiguration requests committed",
            &[],
            self.swaps_committed.get(),
        );
        snap.push_counter(
            "replay_swaps_rejected_total",
            "drain-point reconfiguration requests rejected",
            &[],
            self.swaps_rejected.get(),
        );
        snap.push_counter(
            "replay_telemetry_shed_epochs_total",
            "epochs run with telemetry detail shed under overload",
            &[],
            self.telemetry_shed.get(),
        );
        let merged_trace = self.merged_trace();
        snap.push_counter(
            "replay_trace_events_total",
            "epoch lifecycle events recorded across all threads",
            &[],
            merged_trace.events.len() as u64,
        );
        snap.push_counter(
            "replay_trace_dropped_total",
            "trace events dropped at any thread's buffer cap",
            &[],
            merged_trace.dropped,
        );
        self.detector.export(&mut snap, "epoch_synflood");
        for (name, m) in &self.engines {
            m.export(&mut snap, name);
        }
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merged_shard_is_the_sum() {
        let mut t = ReplayTelemetry::new(3);
        for (i, s) in t.shards.iter_mut().enumerate() {
            s.packets.add(10 * (i as u64 + 1));
            s.batch_size.record(256);
        }
        let m = t.merged_shard();
        assert_eq!(m.packets.get(), 60);
        assert_eq!(m.batch_size.count(), 3);
    }

    #[test]
    fn snapshot_validates_and_sums() {
        let mut t = ReplayTelemetry::new(2);
        t.shards[0].packets.add(7);
        t.shards[1].packets.add(5);
        t.shards[0].ingest_ns.add(1_000);
        t.shards[0].barrier_wait_ns.record(42);
        t.epochs.add(3);
        t.epoch_ns.record(100_000);
        let snap = t.snapshot();
        assert_eq!(snap.counter_sum("replay_shard_packets_total"), 12);
        assert_eq!(snap.counter_sum("replay_packets_total"), 12);
        let text = telemetry::render_prometheus(&snap);
        telemetry::check_prometheus(&text).expect("valid exposition");
    }

    #[test]
    fn fault_counters_render_in_snapshot() {
        let mut t = ReplayTelemetry::new(1);
        t.faults_injected.add(3);
        t.shards_quarantined.inc();
        t.packets_lost.add(120);
        t.packets_rerouted.add(45);
        t.reports_dropped.add(2);
        t.recover_ns.record(5_000);
        let snap = t.snapshot();
        assert_eq!(snap.counter_sum("replay_faults_injected_total"), 3);
        assert_eq!(snap.counter_sum("replay_shards_quarantined_total"), 1);
        assert_eq!(snap.counter_sum("replay_packets_lost_total"), 120);
        assert_eq!(snap.counter_sum("replay_packets_rerouted_total"), 45);
        assert_eq!(snap.counter_sum("replay_reports_dropped_total"), 2);
        let text = telemetry::render_prometheus(&snap);
        assert!(text.contains("replay_recover_ns"));
        telemetry::check_prometheus(&text).expect("valid exposition");
    }

    #[test]
    fn engine_metrics_render_in_snapshot() {
        let mut t = ReplayTelemetry::new(1);
        let mut m = DetectorMetrics::new();
        m.signal(100, true);
        m.fired(anomaly::metrics::Check::Rate, 130);
        t.engines.push((String::from("cusum"), m));
        let snap = t.snapshot();
        let text = telemetry::render_prometheus(&snap);
        assert!(
            text.contains("detector=\"cusum\""),
            "per-engine fire counter missing: {text}"
        );
        telemetry::check_prometheus(&text).expect("valid exposition");
    }

    #[test]
    fn merged_trace_folds_every_thread() {
        let mut t = ReplayTelemetry::new(2);
        t.trace.begin("ingest", 0);
        for tr in &mut t.shard_traces {
            tr.begin("ingest", 0);
            tr.end("ingest", 0);
        }
        t.trace.end("ingest", 0);
        let m = t.merged_trace();
        assert_eq!(m.events.len(), 6);
        assert_eq!(m.threads, 3, "coordinator plus two shards");
        assert_eq!(m.dropped, 0);
        telemetry::check_trace(&m.to_chrome_json()).expect("valid merged trace");
    }

    #[test]
    fn trace_counters_expose_merged_and_per_shard_drops() {
        let mut t = ReplayTelemetry::new(2);
        // Rebuild shard 1's tracer with a one-event buffer so the
        // second event overflows.
        t.shard_traces[1] = Tracer::for_shard(1, 1, t.trace.origin());
        t.shard_traces[1].instant("a", 0);
        t.shard_traces[1].instant("b", 0); // dropped at the cap
        t.trace.instant("alert", 0);
        let snap = t.snapshot();
        assert_eq!(snap.counter_sum("replay_trace_events_total"), 2);
        assert_eq!(snap.counter_sum("replay_trace_dropped_total"), 1);
        assert_eq!(snap.counter_sum("replay_shard_trace_dropped_total"), 1);
        let text = telemetry::render_prometheus(&snap);
        assert!(
            text.contains("replay_shard_trace_dropped_total{shard=\"1\"}"),
            "per-shard dropped counter missing: {text}"
        );
        telemetry::check_prometheus(&text).expect("valid exposition");
    }

    #[test]
    fn lifecycle_series_render_in_snapshot() {
        let mut t = ReplayTelemetry::new(1);
        t.checkpoints_written.add(2);
        t.ckpt_write_ns.record(40_000);
        t.swaps_committed.inc();
        t.swaps_rejected.add(3);
        t.telemetry_shed.add(5);
        let snap = t.snapshot();
        assert_eq!(snap.counter_sum("replay_checkpoints_written_total"), 2);
        assert_eq!(snap.counter_sum("replay_swaps_committed_total"), 1);
        assert_eq!(snap.counter_sum("replay_swaps_rejected_total"), 3);
        assert_eq!(snap.counter_sum("replay_telemetry_shed_epochs_total"), 5);
        let text = telemetry::render_prometheus(&snap);
        assert!(text.contains("replay_ckpt_write_ns"));
        telemetry::check_prometheus(&text).expect("valid exposition");
    }

    #[test]
    fn ingest_pps_zero_when_untimed() {
        let s = ShardMetrics::new();
        assert_eq!(s.ingest_pps(), 0.0);
    }

    #[test]
    fn pool_series_render_in_snapshot() {
        let mut t = ReplayTelemetry::new(2);
        t.shards[0].queue_wait_ns.record(900);
        t.shards[0].queue_depth.record(1);
        t.shards[1].queue_depth.record(2);
        t.partition_ns.record(12_000);
        t.overlap_ns.record(9_000);
        t.queue_capacity = 2;
        let snap = t.snapshot();
        let text = telemetry::render_prometheus(&snap);
        for name in [
            "replay_shard_queue_wait_ns",
            "replay_shard_queue_depth",
            "replay_shard_queue_depth_max",
            "replay_partition_ns",
            "replay_overlap_ns",
            "replay_queue_capacity",
        ] {
            assert!(text.contains(name), "{name} missing from exposition");
        }
        telemetry::check_prometheus(&text).expect("valid exposition");
        // The merged set folds the queue histograms too.
        assert_eq!(t.merged_shard().queue_depth.count(), 2);
    }
}
