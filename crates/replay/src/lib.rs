//! # replay
//!
//! A batched, multi-threaded packet-replay engine that shards traffic
//! across N worker pipelines — the software model of a multi-pipe
//! switch running the paper's Stat4 programs, one pipeline per ingress
//! pipe, with the control plane periodically folding per-pipe state
//! into a global view.
//!
//! ## Architecture
//!
//! ```text
//!            ┌── shard 0: ShardState ──┐
//! schedule ──┤   shard 1: ShardState   ├── epoch barrier ── merge ──▶
//!   (split   │   ...                   │   (Σ sums, Σ cells,         central
//!   by flow  └── shard N-1 ────────────┘    canonical markers)       detector
//!   5-tuple)
//! ```
//!
//! - **Sharding** — [`workloads::shard`] hashes each frame's flow
//!   5-tuple, so splitting is deterministic and flow-affine.
//! - **Worker pool** — one OS thread per shard, spawned **once per
//!   run** and fed through bounded per-shard channels ([`mod@pool`]
//!   internals): each detector interval (epoch) the coordinator moves
//!   the shard's state plus the interval's frame list to the worker,
//!   pre-partitions the *next* interval while the workers ingest, and
//!   recycles the frame buffers run-long. The original engine — which
//!   re-spawned a `std::thread::scope` worker set every interval — is
//!   kept as [`reference`] and is the conformance baseline the pool is
//!   tested bit-identical against (`tests/pool.rs`).
//! - **Epochs** — time is cut into detector intervals; each epoch,
//!   every surviving worker ingests its slice of the interval in
//!   batches, then all replies join at the coordinator's barrier.
//! - **Merge** — shard state folds into a global [`ShardState`] via
//!   [`stat4_core::Mergeable`]: `RunningStats` / `FrequencyDist` /
//!   `CountMinSketch` merge by summing (order-free, bit-identical to a
//!   sequential run), while `PercentileSet` markers — which are
//!   path-dependent and *not* mergeable — are rebuilt canonically from
//!   the merged counts (a deterministic function of the counts alone).
//! - **Detection** — [`anomaly::EpochSynFloodDetector`] runs only on
//!   merged aggregates, so its verdicts are shard-count invariant *by
//!   construction*: a 1-shard and an 8-shard replay hand it
//!   bit-identical inputs.
//! - **Supervision** — shard threads run under a supervisor
//!   ([`run_replay_with_faults`]): a panicked or crashed shard is
//!   *quarantined* — its state is excluded from all future merges (a
//!   dead pipe's registers are unreadable) and its traffic reroutes to
//!   the next survivor in ring order — and the run completes in
//!   degraded mode, reporting coverage and incidents in
//!   [`ReplayHealth`] instead of propagating the failure. Faults are
//!   driven by a seeded [`faultinject::FaultSchedule`], so every chaos
//!   run replays bit-identically from its `(spec, seed)` pair.
//!
//! The conformance suite (`tests/conformance.rs`) asserts exactly that:
//! for the `synflood` and `mix` workloads, 2/4/8-shard runs produce the
//! same merged statistics and the same alert sequence as the
//! single-shard run. The chaos suite (`tests/chaos.rs`) adds the
//! degraded-mode guarantees: under a schedule with a shard crash and
//! 30% report loss the flood is still detected, and reruns of one seed
//! are byte-identical.

mod barrier;
pub mod ckpt;
pub mod lifecycle;
pub mod metrics;
mod pool;
pub mod provenance;
pub mod reference;
pub mod snapshot;

pub use ckpt::Checkpoint;
pub use lifecycle::{
    LifecycleEvent, LifecyclePlan, LifecycleReport, ShedController, ShedLevel, ShedPolicy,
    SwapRequest,
};
pub use metrics::{ReplayTelemetry, ShardMetrics};
pub use provenance::{AlertProvenanceRecord, EpochLineage, IncidentRef};
pub use snapshot::{parse_outcome_json, render_outcome_json, RunSnapshot};

use anomaly::shift::ShiftConfig;
use anomaly::stalled::StalledFlowConfig;
use anomaly::synflood::{SynFloodConfig, KIND_SYN};
use anomaly::{
    AdaptiveEngine, Alert, CardinalityEngine, CusumEngine, DetectionResult, EngineSummary,
    Ensemble, EnsembleConfig, HoltWintersEngine, MedianShiftEngine, MultiScaleEngine,
    StalledEngine, SynFloodEngine,
};
use faultinject::FaultSchedule;
use packet::{EtherType, EthernetFrame, IpProtocol, Ipv4Packet, TcpSegment, UdpDatagram};
use stat4_core::freq::FrequencyDist;
use stat4_core::hll::HyperLogLog;
use stat4_core::percentile::{PercentileSet, Quantile};
use stat4_core::running::RunningStats;
use stat4_core::sketch::CountMinSketch;
use stat4_core::delta::{FreqDelta, HllDelta, PercentileDelta, RunningDelta, SketchDelta};
use stat4_core::{DeltaMergeable, Mergeable, Stat4Result};
use workloads::Schedule;

/// Kind cell for non-SYN TCP segments.
pub const KIND_TCP: i64 = 0;
/// Kind cell for plain UDP datagrams.
pub const KIND_UDP: i64 = 2;
/// Kind cell for QUIC (UDP port 443).
pub const KIND_QUIC: i64 = 3;
/// Kind cell for everything else (non-IPv4, parse failures).
pub const KIND_OTHER: i64 = 4;

/// Largest frame length tracked by the length percentile domain.
pub const MAX_LEN: i64 = 2047;

/// Precision of the per-shard distinct-source HyperLogLog (1024
/// registers, ≈ 3.3% standard error — 1 KiB of register SRAM per
/// pipe, the in-switch budget the paper's scale implies).
pub const SRC_HLL_PRECISION: u32 = 10;

/// Everything the trackers need from one frame, parsed in a single
/// header pass. The worker hot path parses each frame **once** into a
/// `FrameMeta`, batches the metas in a flat reusable buffer, and feeds
/// the trackers from the batch ([`ShardState::ingest_meta`]) — the
/// zero-copy replacement for the old per-tracker re-parse
/// (`kind_of` + private dst/src key extractors walked the same headers
/// three times per frame).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameMeta {
    /// Packet kind cell ([`KIND_SYN`], [`KIND_TCP`], ...).
    pub kind: i64,
    /// Frame length clamped to [`MAX_LEN`].
    pub len: i64,
    /// IPv4 destination address as a sketch key (0 for non-IPv4).
    pub dst: u64,
    /// IPv4 source address as an HLL key (0 for non-IPv4).
    pub src: u64,
}

/// Parses one frame into its [`FrameMeta`] in a single pass.
/// Non-IPv4 and malformed frames classify as [`KIND_OTHER`] with zero
/// address keys, exactly as the old per-field extractors did.
#[must_use]
pub fn parse_frame(frame: &[u8]) -> FrameMeta {
    let len = (frame.len() as i64).min(MAX_LEN);
    let other = FrameMeta { kind: KIND_OTHER, len, dst: 0, src: 0 };
    let Ok(eth) = EthernetFrame::new_checked(frame) else {
        return other;
    };
    if eth.ethertype() != EtherType::Ipv4 {
        return other;
    }
    let Ok(ip) = Ipv4Packet::new_checked(eth.payload()) else {
        return other;
    };
    let kind = match ip.protocol() {
        IpProtocol::Tcp => match TcpSegment::new_checked(ip.payload()) {
            Ok(t) if t.syn() && !t.ack() => KIND_SYN,
            _ => KIND_TCP,
        },
        IpProtocol::Udp => match UdpDatagram::new_checked(ip.payload()) {
            Ok(u) if u.dst_port() == 443 => KIND_QUIC,
            _ => KIND_UDP,
        },
        _ => KIND_OTHER,
    };
    FrameMeta {
        kind,
        len,
        dst: u64::from(u32::from(ip.dst())),
        src: u64::from(u32::from(ip.src())),
    }
}

/// Classifies a frame into the kind cells above ([`KIND_SYN`] for pure
/// TCP SYNs). Mirrors the streaming detector's classification so both
/// engines see the same composition.
#[must_use]
pub fn kind_of(frame: &[u8]) -> i64 {
    parse_frame(frame).kind
}

/// Replay-engine configuration.
#[derive(Debug, Clone, Copy)]
pub struct ReplayConfig {
    /// Number of worker shards (≥ 1).
    pub shards: usize,
    /// Frames per batch inside a shard thread.
    pub batch: usize,
    /// Detector configuration; `interval_ns` doubles as the epoch
    /// length.
    pub detector: SynFloodConfig,
    /// Configuration for the new statistical engines (CUSUM,
    /// Holt-Winters, cardinality, multi-scale, adaptive). The lifted
    /// engines take theirs from `detector` / `interval_ns`.
    pub ensemble: EnsembleConfig,
}

impl Default for ReplayConfig {
    fn default() -> Self {
        Self {
            shards: 1,
            batch: 256,
            detector: SynFloodConfig::default(),
            ensemble: EnsembleConfig::default(),
        }
    }
}

/// Builds the detection ensemble a replay run drives on merged
/// interval state: the three lifted detectors (SYN flood, stalled
/// flows, median shift) plus the five new engines, in report order.
///
/// The SYN-flood engine wraps the exact pre-trait
/// [`anomaly::EpochSynFloodDetector`] under `cfg.detector`, so
/// [`ReplayOutcome::alerts`] / `detected_at` are bit-identical to the
/// pre-ensemble engine by construction.
#[must_use]
pub fn build_ensemble(cfg: &ReplayConfig) -> Ensemble {
    let interval_ns = cfg.detector.interval_ns;
    Ensemble::new(vec![
        Box::new(SynFloodEngine::new(cfg.detector)),
        Box::new(StalledEngine::new(StalledFlowConfig {
            interval_ns,
            ..StalledFlowConfig::default()
        })),
        Box::new(MedianShiftEngine::new(ShiftConfig {
            domain: (0, MAX_LEN),
            interval_ns,
            ..ShiftConfig::default()
        })),
        Box::new(CusumEngine::new(cfg.ensemble.cusum)),
        Box::new(HoltWintersEngine::new(cfg.ensemble.holtwinters)),
        Box::new(CardinalityEngine::new(cfg.ensemble.cardinality)),
        Box::new(MultiScaleEngine::new(cfg.ensemble.multiscale)),
        Box::new(AdaptiveEngine::new(cfg.ensemble.adaptive)),
    ])
}

/// Shard-count-invariant ensemble results of one replay run.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct EnsembleReport {
    /// Per-engine fire counts and first-fire times, in report order.
    pub engines: Vec<EngineSummary>,
    /// Every fired [`DetectionResult`], in interval order then engine
    /// order — the byte-identical determinism regression surface.
    pub fired: Vec<DetectionResult>,
}

impl EnsembleReport {
    /// The summary for `engine`, if it exists.
    #[must_use]
    pub fn engine(&self, name: &str) -> Option<&EngineSummary> {
        self.engines.iter().find(|e| e.name == name)
    }
}

/// The full Stat4 state one shard maintains — one instance of every
/// tracker family the paper builds, so the merge rules of all of them
/// are exercised.
#[derive(Debug, Clone)]
pub struct ShardState {
    /// Packet-kind composition (merged by cellwise count addition).
    pub kinds: FrequencyDist,
    /// Frame-length moments (merged by summing `N`/`Xsum`/`Xsumsq`).
    pub len_stats: RunningStats,
    /// Per-destination volume sketch (merged cellwise; plain —
    /// non-conservative — updates so the merge is exact).
    pub dst_sketch: CountMinSketch,
    /// Median frame length (counts merge exactly; markers rebuild
    /// canonically from the merged counts).
    pub len_median: PercentileSet,
    /// Distinct source addresses in the current (open) interval
    /// (registers merge across shards, wash at each epoch barrier).
    pub src_hll: HyperLogLog,
    /// Frames ingested by this shard.
    pub packets: u64,
    /// SYNs seen in the current (open) interval.
    pub syn_in_interval: i64,
    /// Frames seen in the current (open) interval.
    pub packets_in_interval: i64,
    /// Frame-length sum of the current (open) interval.
    pub len_sum_in_interval: i64,
    /// `packets` at the last delta window open — the baseline
    /// [`Self::take_delta`] ships `packets` against.
    taken_packets: u64,
}

/// Equality over the observable statistics only — the delta baseline
/// (`taken_packets`, plus each tracker's internal dirty journal) is
/// bookkeeping, invisible to the conformance surface exactly as it is
/// invisible to serde.
impl PartialEq for ShardState {
    fn eq(&self, other: &Self) -> bool {
        self.kinds == other.kinds
            && self.len_stats == other.len_stats
            && self.dst_sketch == other.dst_sketch
            && self.len_median == other.len_median
            && self.src_hll == other.src_hll
            && self.packets == other.packets
            && self.syn_in_interval == other.syn_in_interval
            && self.packets_in_interval == other.packets_in_interval
            && self.len_sum_in_interval == other.len_sum_in_interval
    }
}

impl Eq for ShardState {}

/// Everything one shard mutated since its last delta window opened —
/// the sparse payload the epoch barrier ships instead of the full
/// tracker set. Built by [`ShardState::take_delta`], applied by
/// [`ShardState::apply_delta`].
#[derive(Debug, Clone)]
pub struct ShardDelta {
    kinds: FreqDelta,
    len_stats: RunningDelta,
    dst_sketch: SketchDelta,
    len_median: PercentileDelta,
    src_hll: HllDelta,
    packets_delta: u64,
    syn_in_interval: i64,
    packets_in_interval: i64,
    len_sum_in_interval: i64,
}

impl ShardDelta {
    /// Approximate wire size of this delta in bytes — what a control
    /// channel would actually ship, the `merge_delta_bytes` telemetry.
    #[must_use]
    pub fn wire_bytes(&self) -> u64 {
        self.kinds.wire_bytes()
            + self.len_stats.wire_bytes()
            + self.dst_sketch.wire_bytes()
            + self.len_median.wire_bytes()
            + self.src_hll.wire_bytes()
            // packets_delta + the three interval scalars.
            + 32
    }

    /// Register cells / HLL registers carried by this delta.
    #[must_use]
    pub fn touched_registers(&self) -> u64 {
        (self.kinds.touched()
            + self.dst_sketch.touched()
            + self.len_median.touched()
            + self.src_hll.touched()) as u64
    }
}

impl ShardState {
    /// Creates an empty state for the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if the detector's kind domain is degenerate.
    #[must_use]
    pub fn new(cfg: &ReplayConfig) -> Self {
        Self {
            kinds: FrequencyDist::new(0, cfg.detector.kinds - 1).expect("valid kind domain"),
            len_stats: RunningStats::new(),
            dst_sketch: CountMinSketch::new(4, 12),
            len_median: PercentileSet::new(0, MAX_LEN, &[Quantile::percentile(50).unwrap()])
                .expect("valid length domain"),
            src_hll: HyperLogLog::new(SRC_HLL_PRECISION).expect("valid HLL precision"),
            packets: 0,
            syn_in_interval: 0,
            packets_in_interval: 0,
            len_sum_in_interval: 0,
            taken_packets: 0,
        }
    }

    /// Ingests one frame (parse + observe; convenience over
    /// [`Self::ingest_meta`]).
    pub fn ingest(&mut self, frame: &[u8]) {
        self.ingest_meta(&parse_frame(frame));
    }

    /// Ingests one already-parsed frame. The pool's worker hot path
    /// parses a whole batch into [`FrameMeta`]s once and replays the
    /// flat buffer through here, touching no frame bytes twice.
    pub fn ingest_meta(&mut self, m: &FrameMeta) {
        let _ = self.kinds.observe(m.kind);
        self.len_stats.push(m.len);
        let _ = self.len_median.observe(m.len);
        self.dst_sketch.update(m.dst, 1);
        self.src_hll.observe(m.src);
        if m.kind == KIND_SYN {
            self.syn_in_interval += 1;
        }
        self.packets += 1;
        self.packets_in_interval += 1;
        self.len_sum_in_interval += m.len;
    }

    /// Takes everything mutated since the last take (or the last
    /// [`Self::discard_delta`]) and opens a fresh delta window. The
    /// interval-scoped scalars ship their **current** values — the
    /// barrier zeroes them in the accumulator before applying, so each
    /// epoch's delta carries exactly that epoch's contribution.
    #[must_use]
    pub fn take_delta(&mut self) -> ShardDelta {
        let packets_delta = self.packets - self.taken_packets;
        self.taken_packets = self.packets;
        ShardDelta {
            kinds: self.kinds.take_delta(),
            len_stats: self.len_stats.take_delta(),
            dst_sketch: self.dst_sketch.take_delta(),
            len_median: self.len_median.take_delta(),
            src_hll: self.src_hll.take_delta(),
            packets_delta,
            syn_in_interval: self.syn_in_interval,
            packets_in_interval: self.packets_in_interval,
            len_sum_in_interval: self.len_sum_in_interval,
        }
    }

    /// Applies a delta taken from a merge-compatible shard. Absent
    /// counter saturation the result is bit-identical to a full
    /// [`Self::merge_from`] of the source shard into a state that
    /// already held everything up to the source's previous take.
    ///
    /// # Errors
    ///
    /// [`stat4_core::Stat4Error::MergeMismatch`] if the delta indexes
    /// cells outside this state's tracker geometries.
    pub fn apply_delta(&mut self, delta: &ShardDelta) -> Stat4Result<()> {
        self.kinds.apply_delta(&delta.kinds)?;
        self.len_stats.apply_delta(&delta.len_stats)?;
        self.dst_sketch.apply_delta(&delta.dst_sketch)?;
        self.len_median.apply_delta(&delta.len_median)?;
        self.src_hll.apply_delta(&delta.src_hll)?;
        self.packets += delta.packets_delta;
        self.syn_in_interval += delta.syn_in_interval;
        self.packets_in_interval += delta.packets_in_interval;
        self.len_sum_in_interval += delta.len_sum_in_interval;
        Ok(())
    }

    /// Drops any pending delta and re-bases the window at the current
    /// state — the coordinator calls this on every source right after
    /// a full rebuild merge, so the next [`Self::take_delta`] ships
    /// only post-rebuild mutations.
    pub fn discard_delta(&mut self) {
        self.taken_packets = self.packets;
        self.kinds.discard_delta();
        self.len_stats.discard_delta();
        self.dst_sketch.discard_delta();
        self.len_median.discard_delta();
        self.src_hll.discard_delta();
    }

    /// Total register cells this state holds across all trackers — the
    /// denominator for the `merge_skipped_registers` sparsity counter.
    #[must_use]
    pub fn register_cells(&self) -> u64 {
        let kinds = self.kinds.max_value() - self.kinds.min_value() + 1;
        let cms = (self.dst_sketch.rows() as u64) * (1u64 << self.dst_sketch.width_log2());
        let (lo, hi) = self.len_median.domain();
        let median = (hi - lo + 1) as u64;
        let hll = 1u64 << self.src_hll.precision();
        kinds as u64 + cms + median + hll
    }

    /// Folds `other` into `self` using each tracker's merge rule.
    ///
    /// # Errors
    ///
    /// [`stat4_core::Stat4Error::MergeMismatch`] if the two states were
    /// built with different domains or geometries.
    pub fn merge_from(&mut self, other: &Self) -> Stat4Result<()> {
        self.kinds.merge_from(&other.kinds)?;
        self.len_stats.merge_from(&other.len_stats)?;
        self.dst_sketch.merge_from(&other.dst_sketch)?;
        self.len_median.merge_from(&other.len_median)?;
        self.src_hll.merge_from(&other.src_hll)?;
        self.packets += other.packets;
        self.syn_in_interval += other.syn_in_interval;
        self.packets_in_interval += other.packets_in_interval;
        self.len_sum_in_interval += other.len_sum_in_interval;
        Ok(())
    }

    /// Resets the per-interval fields at an epoch barrier (counts fold
    /// into the closed interval's report; HLL registers wash).
    pub fn close_interval(&mut self) {
        self.syn_in_interval = 0;
        self.packets_in_interval = 0;
        self.len_sum_in_interval = 0;
        self.src_hll.reset();
    }

    /// Why [`merge_from`](Self::merge_from) would fail for `other`, or
    /// `None` if the two states are merge-compatible. Mirrors each
    /// tracker's own geometry check (same order, same `what` strings),
    /// so callers can validate up front and then merge in place —
    /// without the trial-clone a fallible in-place merge would need to
    /// stay atomic.
    #[must_use]
    pub fn merge_mismatch(&self, other: &Self) -> Option<&'static str> {
        if self.kinds.min_value() != other.kinds.min_value()
            || self.kinds.max_value() != other.kinds.max_value()
        {
            return Some("frequency domains");
        }
        if self.dst_sketch.rows() != other.dst_sketch.rows()
            || self.dst_sketch.width_log2() != other.dst_sketch.width_log2()
        {
            return Some("sketch geometries");
        }
        if self.len_median.domain() != other.len_median.domain() {
            return Some("percentile domains");
        }
        if self.len_median.marker_count() != other.len_median.marker_count()
            || (0..self.len_median.marker_count())
                .any(|i| self.len_median.quantile(i) != other.len_median.quantile(i))
        {
            return Some("quantile sets");
        }
        if self.src_hll.precision() != other.src_hll.precision() {
            return Some("hyperloglog precisions");
        }
        None
    }
}

/// Why the supervisor quarantined a shard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IncidentKind {
    /// The shard thread panicked (injected or organic); the panic
    /// message is captured when it is a string.
    Panicked(String),
    /// A scheduled crash stopped the shard cleanly but permanently.
    Crashed,
    /// The shard's state would not fold into the merged view.
    MergeFailed(String),
}

/// One quarantine event: `shard` left the run at `epoch`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardIncident {
    /// Index of the quarantined shard.
    pub shard: usize,
    /// Epoch (detector-interval ordinal) at which it was quarantined.
    pub epoch: u64,
    /// What happened.
    pub kind: IncidentKind,
}

/// Degraded-mode summary of a (possibly faulted) replay run. A pure
/// function of the schedule and the fault schedule — no wall-clock
/// fields — so same-seed reruns compare equal.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ReplayHealth {
    /// Shards the run was configured with.
    pub shards_configured: usize,
    /// Shards still alive at the end of the run.
    pub shards_alive: usize,
    /// Every quarantine event, in occurrence order.
    pub incidents: Vec<ShardIncident>,
    /// Frames in the schedule.
    pub packets_offered: u64,
    /// Frames reflected in the final merged view.
    pub packets_ingested: u64,
    /// Frames missing from the merged view: slices of shards that died
    /// mid-epoch plus the discarded history of quarantined shards.
    pub packets_lost: u64,
    /// Frames redirected from a quarantined shard to a survivor.
    pub packets_rerouted: u64,
    /// Epoch reports lost on the control channel (those intervals were
    /// never observed by the detector; their SYNs carried forward).
    pub reports_dropped: u64,
}

impl ReplayHealth {
    /// Fraction of offered frames present in the merged view (`1.0`
    /// for an empty schedule).
    #[must_use]
    pub fn coverage(&self) -> f64 {
        if self.packets_offered == 0 {
            return 1.0;
        }
        self.packets_ingested as f64 / self.packets_offered as f64
    }

    /// True when the run survived any fault: lost data, a quarantine,
    /// or a dropped epoch report.
    #[must_use]
    pub fn degraded(&self) -> bool {
        !self.incidents.is_empty() || self.reports_dropped > 0 || self.packets_lost > 0
    }
}

/// What a replay run produced.
#[derive(Debug)]
pub struct ReplayOutcome {
    /// The merged global state after the last epoch.
    pub merged: ShardState,
    /// Alerts raised by the central detector, in interval order.
    pub alerts: Vec<Alert>,
    /// First alert time, if any.
    pub detected_at: Option<u64>,
    /// Frames replayed.
    pub packets: u64,
    /// Closed epochs (detector intervals).
    pub epochs: u64,
    /// Wall-clock replay time.
    pub elapsed: std::time::Duration,
    /// Degraded-mode summary: surviving shards, quarantine incidents,
    /// coverage, rerouted frames, dropped reports.
    pub health: ReplayHealth,
    /// Per-engine ensemble results (fires, first-fire times, the full
    /// fired-result log).
    pub ensemble: EnsembleReport,
    /// One provenance record per drilldown trigger, in fire order:
    /// signals, per-engine scores, epoch lineage and rebind
    /// transactions. Deterministic — part of the pool-vs-reference
    /// bit-identity surface.
    pub provenance: Vec<AlertProvenanceRecord>,
    /// Everything the engine observed about itself: per-shard metric
    /// sets, epoch/merge timings, detector fires, trace events.
    pub telemetry: ReplayTelemetry,
}

impl ReplayOutcome {
    /// Replay throughput in packets per second. An instantaneous run
    /// (zero elapsed time — e.g. an empty schedule) reports `0.0`, not
    /// infinity or NaN, so downstream arithmetic and JSON stay finite.
    #[must_use]
    pub fn throughput_pps(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.packets as f64 / secs
    }
}

/// Replays a time-sorted schedule through `cfg.shards` worker threads
/// and returns the merged state plus the central detector's alerts.
///
/// Equivalent to [`run_replay_with_faults`] with an empty
/// [`FaultSchedule`] — no faults, full coverage.
///
/// # Panics
///
/// Panics if `cfg.shards` is zero.
#[must_use]
pub fn run_replay(schedule: &Schedule, cfg: &ReplayConfig) -> ReplayOutcome {
    run_replay_with_faults(schedule, cfg, &FaultSchedule::none())
}

/// The next surviving shard after `home` in ring order, if any.
pub(crate) fn next_alive(alive: &[bool], home: usize) -> Option<usize> {
    (1..alive.len())
        .map(|d| (home + d) % alive.len())
        .find(|&s| alive[s])
}

/// Renders a caught panic payload (best effort: `&str` and `String`
/// payloads, which covers every `panic!` with a message).
pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        String::from("shard thread panicked (non-string payload)")
    }
}

/// The merged median frame length handed to the detectors. An empty
/// merged state (every shard quarantined) has no median; that used to
/// be silently flattened to 0 by `unwrap_or` — now the fallback is
/// still 0 (the detectors need *a* number) but the incident is counted
/// in `median_fallbacks` so a degraded signal is visible.
pub(crate) fn median_len_signal(
    len_median: &PercentileSet,
    fallbacks: &mut telemetry::Counter,
) -> i64 {
    match len_median.estimate(0) {
        Some(v) => v,
        None => {
            fallbacks.inc();
            0
        }
    }
}

/// The closed interval's SYN count as the detectors' u64 signal. The
/// counter is i64 (carried-forward arithmetic can in principle go
/// negative on a corrupted pipe); a negative value used to be silently
/// flattened to 0 by `unwrap_or` — now the clamp is counted in
/// `syn_clamps`.
pub(crate) fn closed_interval_syns(syns: i64, clamps: &mut telemetry::Counter) -> u64 {
    match u64::try_from(syns) {
        Ok(v) => v,
        Err(_) => {
            clamps.inc();
            0
        }
    }
}

/// Folds every surviving shard into a fresh merged view. A shard whose
/// state will not merge (geometry mismatch — impossible when all
/// states come from one config, but treated as pipe corruption rather
/// than a reason to kill the run) is quarantined instead of panicking.
///
/// Geometry is validated **before** any tracker is touched
/// ([`ShardState::merge_mismatch`]), so the merge itself runs in place
/// on the accumulating view. The previous implementation merged into a
/// trial clone per shard to stay atomic under a mid-merge mismatch —
/// O(shards²) copies of the full tracker set every epoch; validate-
/// then-merge keeps the same quarantine behaviour with zero clones.
pub(crate) fn merge_surviving(
    shards: &[ShardState],
    alive: &mut [bool],
    cfg: &ReplayConfig,
    epoch_idx: u64,
    incidents: &mut Vec<ShardIncident>,
) -> ShardState {
    let entries: Vec<(usize, &ShardState)> = shards.iter().enumerate().collect();
    merge_surviving_entries(&entries, alive, cfg, epoch_idx, incidents)
}

/// [`merge_surviving`] over an explicit `(shard index, state)` list —
/// the pool engine owns its states in `Option` slots, so it hands in
/// references to whichever slots are populated rather than a
/// contiguous slice.
pub(crate) fn merge_surviving_entries(
    entries: &[(usize, &ShardState)],
    alive: &mut [bool],
    cfg: &ReplayConfig,
    epoch_idx: u64,
    incidents: &mut Vec<ShardIncident>,
) -> ShardState {
    let mut merged = ShardState::new(cfg);
    for &(s, state) in entries {
        if !alive[s] {
            continue;
        }
        if let Some(what) = merged.merge_mismatch(state) {
            alive[s] = false;
            incidents.push(ShardIncident {
                shard: s,
                epoch: epoch_idx,
                // Same rendering as Stat4Error::MergeMismatch, which
                // the trial-merge path used to surface.
                kind: IncidentKind::MergeFailed(format!(
                    "cannot merge trackers with different {what}"
                )),
            });
            continue;
        }
        merged
            .merge_from(state)
            .expect("validated merge cannot fail");
    }
    merged
}

/// [`run_replay`] under a seeded fault schedule, supervised.
///
/// Each detector interval is one *epoch*: the interval's frames are
/// split by flow hash, every surviving shard ingests its slice on its
/// own thread (in `cfg.batch`-sized batches), the threads join, shard
/// state is folded into a fresh merged view, and the detector consumes
/// the merged aggregates. Per-shard state persists across epochs; only
/// the merged view is rebuilt.
///
/// The supervisor consults `faults` at three points:
///
/// - **Shard faults** ([`FaultSchedule::shard_fault`]). A `Stall`
///   sleeps the shard thread (state survives; only wall-clock timings
///   change). A `Panic` unwinds the shard thread; the supervisor
///   catches the failed join. A `Crash` stops the shard cleanly before
///   its thread spawns. Panicked and crashed shards are *quarantined*:
///   their slice of the fault epoch is lost, their accumulated state is
///   excluded from all future merges (a dead pipe's registers are
///   unreadable), and their traffic reroutes to the next survivor in
///   ring order from the following epoch on. Because an injected panic
///   fires before the shard touches any state, the quarantined state
///   is always a clean epoch boundary — the outcome does not depend on
///   where mid-epoch the unwind happened.
/// - **Report loss** ([`FaultSchedule::drop_epoch_report`]). A dropped
///   epoch report means the detector never observes that interval; its
///   SYN count carries forward, exactly as cumulative switch registers
///   would, and the next delivered report observes the per-interval
///   average of the span it covers — the controller's best rate
///   estimate from a multi-interval register delta, which keeps a run
///   of lost reports from masquerading as a spike.
/// - **Merge failures** are quarantined per [`merge_surviving`], never
///   propagated.
///
/// The run always completes: the returned [`ReplayHealth`] reports
/// surviving shards, coverage and every incident. With an empty
/// schedule the behaviour is bit-identical to [`run_replay`].
///
/// Since the worker-pool rewrite this runs on the persistent pool
/// engine ([`mod@pool`]); [`reference::run_replay_with_faults`] keeps
/// the original per-epoch thread-scope engine as the conformance
/// baseline — outcomes (merged state, alerts, health, telemetry
/// counter sums) are bit-identical between the two.
///
/// # Panics
///
/// Panics if `cfg.shards` is zero.
#[must_use]
pub fn run_replay_with_faults(
    schedule: &Schedule,
    cfg: &ReplayConfig,
    faults: &FaultSchedule,
) -> ReplayOutcome {
    pool::run(schedule, cfg, faults, &LifecyclePlan::none(), None).0
}

/// [`run_replay_with_faults`] with the full lifecycle layer active:
/// `plan` schedules crash-consistent checkpoints, a cooperative kill,
/// and drain-point swap requests, and the run's lifecycle activity
/// comes back in the [`LifecycleReport`]. With an inert plan
/// ([`LifecyclePlan::none`]) the outcome is bit-identical to
/// [`run_replay_with_faults`].
///
/// # Panics
///
/// Panics if `cfg.shards` is zero.
#[must_use]
pub fn run_replay_lifecycle(
    schedule: &Schedule,
    cfg: &ReplayConfig,
    faults: &FaultSchedule,
    plan: &LifecyclePlan,
) -> (ReplayOutcome, LifecycleReport) {
    pool::run(schedule, cfg, faults, plan, None)
}

/// Continues a checkpointed replay to completion.
///
/// Loads the newest valid checkpoint from `plan.checkpoint_dir`
/// (falling back past torn or corrupted files, which the checksum
/// rejects), validates it against `cfg` and `schedule`, rebuilds the
/// coordinator — shard trackers through their raw constructors, the
/// detection ensemble and drilldown ladder by replaying the
/// checkpoint's delivered-signal log, provenance verbatim — and runs
/// the remaining epochs. The fault schedule is reparsed from the
/// spec/seed stored in the checkpoint, so injected chaos continues
/// exactly where it left off; the completed run's [`RunSnapshot`] is
/// bit-identical to an uninterrupted run's (`tests/lifecycle.rs`).
///
/// # Errors
///
/// - the plan has no checkpoint directory, or no checkpoint in it
///   validates;
/// - the checkpoint disagrees with `cfg` (shards, batch, interval) or
///   with the schedule's length;
/// - the stored fault spec no longer parses;
/// - the checkpoint carries data-plane register state but the plan
///   supplies no `initial_program` to restore it into;
/// - a stored shard state fails its tracker-geometry validation.
pub fn resume_from_checkpoint(
    schedule: &Schedule,
    cfg: &ReplayConfig,
    plan: &LifecyclePlan,
) -> Result<(ReplayOutcome, LifecycleReport), String> {
    let dir = plan
        .checkpoint_dir
        .as_deref()
        .ok_or_else(|| String::from("resume requires a checkpoint directory in the plan"))?;
    let (c, fallbacks) = ckpt::load_latest(dir)?;
    if c.cfg_shards != cfg.shards || c.cfg_batch != cfg.batch {
        return Err(format!(
            "checkpoint was taken with shards={}, batch={}; run configured with shards={}, \
             batch={}",
            c.cfg_shards, c.cfg_batch, cfg.shards, cfg.batch
        ));
    }
    if c.cfg_interval_ns != cfg.detector.interval_ns {
        return Err(format!(
            "checkpoint interval {}ns does not match configured {}ns",
            c.cfg_interval_ns, cfg.detector.interval_ns
        ));
    }
    if c.schedule_packets != schedule.len() as u64 {
        return Err(format!(
            "checkpoint covers a {}-frame schedule; this schedule has {} frames",
            c.schedule_packets,
            schedule.len()
        ));
    }
    let faults = if c.faults_spec.is_empty() {
        FaultSchedule::none()
    } else {
        FaultSchedule::parse(&c.faults_spec, c.fault_seed)
            .map_err(|e| format!("stored fault spec {:?}: {e}", c.faults_spec))?
    };
    let states = c
        .shards
        .iter()
        .enumerate()
        .map(|(s, raw)| {
            raw.as_ref()
                .map(|r| r.restore().map_err(|e| format!("shard {s}: {e}")))
                .transpose()
        })
        .collect::<Result<Vec<_>, String>>()?;
    let shadow = match (&c.pipeline, &plan.initial_program) {
        (Some(state), Some(program)) => {
            let mut p = program.clone();
            p.restore_state(state)
                .map_err(|e| format!("cannot restore data-plane state: {e}"))?;
            Some(p)
        }
        (Some(_), None) => {
            return Err(String::from(
                "checkpoint carries data-plane state; supply the program via the plan's \
                 initial_program",
            ))
        }
        (None, p) => p.clone(),
    };
    let (ensemble, drill) = c.rebuild_detection(cfg);
    // Checkpoints written after this resume embed the stored spec, not
    // whatever the caller had in the plan.
    let mut plan = plan.clone();
    plan.faults_spec = c.faults_spec.clone();
    let resume = lifecycle::ResumeState {
        next_ordinal: c.next_ordinal,
        next_checkpoint_ordinal: c.checkpoint_ordinal + 1,
        packets: c.packets,
        epochs: c.epochs,
        packets_rerouted: c.packets_rerouted,
        reports_dropped: c.reports_dropped,
        carried_syns: c.carried_syns,
        carried_packets: c.carried_packets,
        carried_len_sum: c.carried_len_sum,
        carried_epochs: c.carried_epochs,
        carried_from: c.carried_from.clone(),
        alive: c.alive.clone(),
        states,
        incidents: c.incidents.clone(),
        ensemble,
        drill,
        context_log: c.context_log.clone(),
        overrides: c.overrides.clone(),
        provenance: c.provenance.clone(),
        generation: c.generation,
        swaps_committed: c.swaps_committed,
        shadow,
        resumed_from: Some(c.checkpoint_ordinal),
        fallbacks,
    };
    Ok(pool::run(schedule, cfg, &faults, &plan, Some(resume)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::SynFloodWorkload;

    fn small_flood() -> Schedule {
        let (s, _) = SynFloodWorkload {
            background_cps: 500,
            flood_pps: 20_000,
            flood_start: 150_000_000,
            duration: 400_000_000,
            seed: 11,
            ..SynFloodWorkload::default()
        }
        .generate();
        s
    }

    #[test]
    fn single_shard_counts_every_packet() {
        let s = small_flood();
        let out = run_replay(&s, &ReplayConfig::default());
        assert_eq!(out.packets, s.len() as u64);
        assert_eq!(out.merged.packets, s.len() as u64);
        assert_eq!(out.merged.len_stats.n(), s.len() as u64);
        assert!(out.epochs > 0);
    }

    #[test]
    fn merged_moments_match_direct_ingest() {
        // RunningStats / FrequencyDist / sketch are order-free, so the
        // replay's merged state must equal a plain sequential ingest.
        let s = small_flood();
        let cfg = ReplayConfig {
            shards: 4,
            ..ReplayConfig::default()
        };
        let out = run_replay(&s, &cfg);
        let mut direct = ShardState::new(&cfg);
        for (_, frame) in &s {
            direct.ingest(frame);
        }
        assert_eq!(out.merged.len_stats, direct.len_stats);
        assert_eq!(out.merged.kinds, direct.kinds);
        assert_eq!(out.merged.dst_sketch, direct.dst_sketch);
        // Percentile *counts* agree too; only the marker path differs.
        assert_eq!(out.merged.len_median.total(), direct.len_median.total());
    }

    #[test]
    fn flood_detected_on_merged_state() {
        let s = small_flood();
        let out = run_replay(
            &s,
            &ReplayConfig {
                shards: 2,
                ..ReplayConfig::default()
            },
        );
        let at = out.detected_at.expect("flood must be detected");
        assert!(at >= 150_000_000, "no false positive: {at}");
    }

    #[test]
    fn batch_size_does_not_change_outcome() {
        let s = small_flood();
        let a = run_replay(
            &s,
            &ReplayConfig {
                shards: 4,
                batch: 1,
                ..ReplayConfig::default()
            },
        );
        let b = run_replay(
            &s,
            &ReplayConfig {
                shards: 4,
                batch: 4096,
                ..ReplayConfig::default()
            },
        );
        assert_eq!(a.merged, b.merged);
        assert_eq!(a.alerts, b.alerts);
    }

    #[test]
    fn throughput_is_zero_not_nan_for_instant_runs() {
        // Regression: an instantaneous (or empty) run used to report
        // f64::INFINITY; NaN/∞ poisons downstream JSON and averages.
        let cfg = ReplayConfig::default();
        let out = ReplayOutcome {
            merged: ShardState::new(&cfg),
            alerts: Vec::new(),
            detected_at: None,
            packets: 0,
            epochs: 0,
            elapsed: std::time::Duration::ZERO,
            health: ReplayHealth::default(),
            ensemble: EnsembleReport::default(),
            provenance: Vec::new(),
            telemetry: ReplayTelemetry::new(1),
        };
        assert_eq!(out.throughput_pps(), 0.0);
        assert!(out.throughput_pps().is_finite());

        let busy = ReplayOutcome {
            packets: 1000,
            elapsed: std::time::Duration::ZERO,
            ..out
        };
        assert_eq!(busy.throughput_pps(), 0.0, "packets but zero elapsed");
    }

    #[test]
    fn empty_schedule_runs_clean() {
        let out = run_replay(&Schedule::new(), &ReplayConfig::default());
        assert_eq!(out.packets, 0);
        assert_eq!(out.epochs, 0);
        assert!(out.throughput_pps().is_finite());
        assert_eq!(out.telemetry.merged_shard().packets.get(), 0);
    }

    #[test]
    fn telemetry_shard_counters_sum_to_outcome() {
        let s = small_flood();
        let cfg = ReplayConfig {
            shards: 4,
            ..ReplayConfig::default()
        };
        let out = run_replay(&s, &cfg);
        assert_eq!(out.telemetry.shards.len(), 4);
        let merged = out.telemetry.merged_shard();
        assert_eq!(merged.packets.get(), out.packets);
        assert_eq!(
            merged.syn_packets.get(),
            out.merged.kinds.frequency(KIND_SYN),
            "per-shard SYN counters fold to the merged kind frequency"
        );
        assert_eq!(out.telemetry.epochs.get(), out.epochs);
        assert_eq!(out.telemetry.alerts.get(), out.alerts.len() as u64);
        assert_eq!(out.telemetry.epoch_ns.count(), out.epochs);
        // Every shard saw at least one barrier.
        for m in &out.telemetry.shards {
            assert_eq!(m.barrier_wait_ns.count(), out.epochs);
        }
        // Trace recorded the epoch lifecycle (bounded buffer).
        assert!(!out.telemetry.trace.events().is_empty());
    }

    #[test]
    fn faultless_run_reports_full_health() {
        let s = small_flood();
        let cfg = ReplayConfig {
            shards: 4,
            ..ReplayConfig::default()
        };
        let out = run_replay(&s, &cfg);
        let h = &out.health;
        assert!(!h.degraded());
        assert_eq!(h.shards_alive, 4);
        assert_eq!(h.shards_configured, 4);
        assert!(h.incidents.is_empty());
        assert_eq!(h.packets_offered, s.len() as u64);
        assert_eq!(h.packets_ingested, s.len() as u64);
        assert_eq!(h.packets_lost, 0);
        assert_eq!(h.packets_rerouted, 0);
        assert_eq!(h.reports_dropped, 0);
        assert!((h.coverage() - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn merge_mismatch_quarantines_instead_of_panicking() {
        // Regression for the old `expect("uniform shard geometry")`
        // sites: a shard whose state will not fold is quarantined and
        // reported, not a process abort.
        let cfg_a = ReplayConfig::default();
        let mut cfg_b = cfg_a;
        cfg_b.detector.kinds = cfg_a.detector.kinds + 4;
        let shards = vec![ShardState::new(&cfg_a), ShardState::new(&cfg_b)];
        let mut alive = vec![true, true];
        let mut incidents = Vec::new();
        let merged = merge_surviving(&shards, &mut alive, &cfg_a, 7, &mut incidents);
        assert!(alive[0] && !alive[1]);
        assert_eq!(incidents.len(), 1);
        assert_eq!(incidents[0].shard, 1);
        assert_eq!(incidents[0].epoch, 7);
        assert!(
            matches!(incidents[0].kind, IncidentKind::MergeFailed(_)),
            "{:?}",
            incidents[0].kind
        );
        // The survivor's (empty) state still merged cleanly.
        assert_eq!(merged.packets, 0);
    }

    #[test]
    fn coverage_is_finite_on_zero_interval_runs() {
        // Regression: coverage() used to divide packets_ingested by
        // packets_offered unguarded, so a zero-interval (empty) run
        // reported NaN — which poisons JSON exposition and any average
        // built on top. An empty run is full coverage by definition.
        let h = ReplayHealth::default();
        assert_eq!(h.packets_offered, 0);
        assert!(h.coverage().is_finite());
        assert_eq!(h.coverage(), 1.0);
        let out = run_replay(&Schedule::new(), &ReplayConfig::default());
        assert!(out.health.coverage().is_finite());
        assert_eq!(out.health.coverage(), 1.0);
    }

    #[test]
    fn merge_mismatch_mirrors_merge_from() {
        // The up-front geometry check must agree with the fallible
        // merge on every mismatch axis, or the in-place merge loses
        // its "validated merge cannot fail" invariant.
        let cfg = ReplayConfig::default();
        let base = ShardState::new(&cfg);
        assert_eq!(base.merge_mismatch(&base.clone()), None);

        let mut wide_kinds = cfg;
        wide_kinds.detector.kinds += 4;
        let other = ShardState::new(&wide_kinds);
        assert_eq!(base.merge_mismatch(&other), Some("frequency domains"));
        let err = base.clone().merge_from(&other).unwrap_err();
        assert_eq!(err.to_string(), "cannot merge trackers with different frequency domains");

        let mut narrow_sketch = base.clone();
        narrow_sketch.dst_sketch = CountMinSketch::new(2, 12);
        assert_eq!(base.merge_mismatch(&narrow_sketch), Some("sketch geometries"));
        assert!(base.clone().merge_from(&narrow_sketch).is_err());

        let mut short_domain = base.clone();
        short_domain.len_median =
            PercentileSet::new(0, MAX_LEN - 1, &[Quantile::percentile(50).unwrap()]).unwrap();
        assert_eq!(base.merge_mismatch(&short_domain), Some("percentile domains"));
        assert!(base.clone().merge_from(&short_domain).is_err());

        let mut other_quantiles = base.clone();
        other_quantiles.len_median =
            PercentileSet::new(0, MAX_LEN, &[Quantile::percentile(90).unwrap()]).unwrap();
        assert_eq!(base.merge_mismatch(&other_quantiles), Some("quantile sets"));
        assert!(base.clone().merge_from(&other_quantiles).is_err());

        let mut other_precision = base.clone();
        other_precision.src_hll = HyperLogLog::new(SRC_HLL_PRECISION + 2).unwrap();
        assert_eq!(
            base.merge_mismatch(&other_precision),
            Some("hyperloglog precisions")
        );
        assert!(base.clone().merge_from(&other_precision).is_err());
    }

    #[test]
    fn parse_frame_matches_per_field_extraction() {
        // One parse must agree with the kind classifier on every frame
        // of a real mixed workload, and malformed frames must land in
        // the same KIND_OTHER / zero-key bucket the old per-field
        // extractors produced.
        let s = small_flood();
        for (_, frame) in &s {
            let m = parse_frame(frame);
            assert_eq!(m.kind, kind_of(frame));
            assert_eq!(m.len, (frame.len() as i64).min(MAX_LEN));
            if m.kind != KIND_OTHER {
                assert!(m.dst != 0 || m.src != 0, "IPv4 frames carry address keys");
            }
        }
        let garbage = [0u8; 9];
        let m = parse_frame(&garbage);
        assert_eq!((m.kind, m.dst, m.src, m.len), (KIND_OTHER, 0, 0, 9));
    }

    #[test]
    fn ingest_meta_equals_ingest() {
        let s = small_flood();
        let cfg = ReplayConfig::default();
        let mut by_frame = ShardState::new(&cfg);
        let mut by_meta = ShardState::new(&cfg);
        for (_, frame) in &s {
            by_frame.ingest(frame);
            by_meta.ingest_meta(&parse_frame(frame));
        }
        assert_eq!(by_frame, by_meta);
    }

    #[test]
    fn shard_delta_equals_full_merge() {
        // apply_delta(take_delta()) over several windows must land on
        // the same state as a fresh full merge of the sources — the
        // invariant the barrier merger's delta path rests on.
        let s = small_flood();
        let cfg = ReplayConfig {
            shards: 3,
            ..ReplayConfig::default()
        };
        let mut shards: Vec<ShardState> = (0..3).map(|_| ShardState::new(&cfg)).collect();
        let mut acc = ShardState::new(&cfg);
        let chunk = s.len() / 6;
        for (i, (_, frame)) in s.iter().enumerate() {
            shards[i % 3].ingest(frame);
            if i % chunk == chunk - 1 {
                // One "barrier": interval-scoped state restarts in the
                // accumulator, then each shard's delta folds in.
                acc.syn_in_interval = 0;
                acc.packets_in_interval = 0;
                acc.len_sum_in_interval = 0;
                acc.src_hll.reset();
                let mut delta_bytes = 0;
                for sh in &mut shards {
                    let d = sh.take_delta();
                    delta_bytes += d.wire_bytes();
                    assert!(d.touched_registers() <= sh.register_cells());
                    acc.apply_delta(&d).unwrap();
                }
                assert!(delta_bytes > 0);
                let mut full = ShardState::new(&cfg);
                for sh in &shards {
                    full.merge_from(sh).unwrap();
                }
                assert_eq!(acc, full, "delta accumulation diverged at frame {i}");
                // As in both engines: interval state washes on every
                // shard after the barrier (the HLL delta path relies
                // on this — a washed HLL journals every live register
                // of the next interval afresh).
                for sh in &mut shards {
                    sh.close_interval();
                }
            }
        }
    }

    #[test]
    fn median_fallback_and_syn_clamp_are_counted() {
        let mut fallbacks = telemetry::Counter::new();
        let empty = PercentileSet::new(0, MAX_LEN, &[Quantile::percentile(50).unwrap()]).unwrap();
        assert_eq!(median_len_signal(&empty, &mut fallbacks), 0);
        assert_eq!(fallbacks.get(), 1, "empty estimate is a counted incident");
        let mut one = empty.clone();
        one.observe(42).unwrap();
        assert_eq!(median_len_signal(&one, &mut fallbacks), 42);
        assert_eq!(fallbacks.get(), 1, "a real estimate adds nothing");

        let mut clamps = telemetry::Counter::new();
        assert_eq!(closed_interval_syns(17, &mut clamps), 17);
        assert_eq!(clamps.get(), 0);
        assert_eq!(closed_interval_syns(-3, &mut clamps), 0);
        assert_eq!(clamps.get(), 1, "negative SYN count is a counted clamp");
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let s = Schedule::new();
        let _ = run_replay(
            &s,
            &ReplayConfig {
                shards: 0,
                ..ReplayConfig::default()
            },
        );
    }
}
