//! # replay
//!
//! A batched, multi-threaded packet-replay engine that shards traffic
//! across N worker pipelines — the software model of a multi-pipe
//! switch running the paper's Stat4 programs, one pipeline per ingress
//! pipe, with the control plane periodically folding per-pipe state
//! into a global view.
//!
//! ## Architecture
//!
//! ```text
//!            ┌── shard 0: ShardState ──┐
//! schedule ──┤   shard 1: ShardState   ├── epoch barrier ── merge ──▶
//!   (split   │   ...                   │   (Σ sums, Σ cells,         central
//!   by flow  └── shard N-1 ────────────┘    canonical markers)       detector
//!   5-tuple)
//! ```
//!
//! - **Sharding** — [`workloads::shard::split`] hashes each frame's
//!   flow 5-tuple, so splitting is deterministic and flow-affine.
//! - **Epochs** — time is cut into detector intervals; each epoch, one
//!   OS thread per shard ingests that shard's slice of the interval in
//!   batches, then all threads join at a barrier.
//! - **Merge** — shard state folds into a global [`ShardState`] via
//!   [`stat4_core::Mergeable`]: `RunningStats` / `FrequencyDist` /
//!   `CountMinSketch` merge by summing (order-free, bit-identical to a
//!   sequential run), while `PercentileSet` markers — which are
//!   path-dependent and *not* mergeable — are rebuilt canonically from
//!   the merged counts (a deterministic function of the counts alone).
//! - **Detection** — [`anomaly::EpochSynFloodDetector`] runs only on
//!   merged aggregates, so its verdicts are shard-count invariant *by
//!   construction*: a 1-shard and an 8-shard replay hand it
//!   bit-identical inputs.
//!
//! The conformance suite (`tests/conformance.rs`) asserts exactly that:
//! for the `synflood` and `mix` workloads, 2/4/8-shard runs produce the
//! same merged statistics and the same alert sequence as the
//! single-shard run.

pub mod metrics;

pub use metrics::{ReplayTelemetry, ShardMetrics};

use anomaly::epoch::EpochSynFloodDetector;
use anomaly::synflood::{SynFloodConfig, KIND_SYN};
use anomaly::Alert;
use packet::{EtherType, EthernetFrame, IpProtocol, Ipv4Packet, TcpSegment, UdpDatagram};
use stat4_core::freq::FrequencyDist;
use stat4_core::percentile::{PercentileSet, Quantile};
use stat4_core::running::RunningStats;
use stat4_core::sketch::CountMinSketch;
use stat4_core::{Mergeable, Stat4Result};
use workloads::Schedule;

/// Kind cell for non-SYN TCP segments.
pub const KIND_TCP: i64 = 0;
/// Kind cell for plain UDP datagrams.
pub const KIND_UDP: i64 = 2;
/// Kind cell for QUIC (UDP port 443).
pub const KIND_QUIC: i64 = 3;
/// Kind cell for everything else (non-IPv4, parse failures).
pub const KIND_OTHER: i64 = 4;

/// Largest frame length tracked by the length percentile domain.
pub const MAX_LEN: i64 = 2047;

/// Classifies a frame into the kind cells above ([`KIND_SYN`] for pure
/// TCP SYNs). Mirrors the streaming detector's classification so both
/// engines see the same composition.
#[must_use]
pub fn kind_of(frame: &[u8]) -> i64 {
    let Ok(eth) = EthernetFrame::new_checked(frame) else {
        return KIND_OTHER;
    };
    if eth.ethertype() != EtherType::Ipv4 {
        return KIND_OTHER;
    }
    let Ok(ip) = Ipv4Packet::new_checked(eth.payload()) else {
        return KIND_OTHER;
    };
    match ip.protocol() {
        IpProtocol::Tcp => match TcpSegment::new_checked(ip.payload()) {
            Ok(t) if t.syn() && !t.ack() => KIND_SYN,
            _ => KIND_TCP,
        },
        IpProtocol::Udp => match UdpDatagram::new_checked(ip.payload()) {
            Ok(u) if u.dst_port() == 443 => KIND_QUIC,
            _ => KIND_UDP,
        },
        _ => KIND_OTHER,
    }
}

fn dst_key(frame: &[u8]) -> u64 {
    let Ok(eth) = EthernetFrame::new_checked(frame) else {
        return 0;
    };
    if eth.ethertype() != EtherType::Ipv4 {
        return 0;
    }
    Ipv4Packet::new_checked(eth.payload()).map_or(0, |ip| u64::from(u32::from(ip.dst())))
}

/// Replay-engine configuration.
#[derive(Debug, Clone, Copy)]
pub struct ReplayConfig {
    /// Number of worker shards (≥ 1).
    pub shards: usize,
    /// Frames per batch inside a shard thread.
    pub batch: usize,
    /// Detector configuration; `interval_ns` doubles as the epoch
    /// length.
    pub detector: SynFloodConfig,
}

impl Default for ReplayConfig {
    fn default() -> Self {
        Self {
            shards: 1,
            batch: 256,
            detector: SynFloodConfig::default(),
        }
    }
}

/// The full Stat4 state one shard maintains — one instance of every
/// tracker family the paper builds, so the merge rules of all of them
/// are exercised.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardState {
    /// Packet-kind composition (merged by cellwise count addition).
    pub kinds: FrequencyDist,
    /// Frame-length moments (merged by summing `N`/`Xsum`/`Xsumsq`).
    pub len_stats: RunningStats,
    /// Per-destination volume sketch (merged cellwise; plain —
    /// non-conservative — updates so the merge is exact).
    pub dst_sketch: CountMinSketch,
    /// Median frame length (counts merge exactly; markers rebuild
    /// canonically from the merged counts).
    pub len_median: PercentileSet,
    /// Frames ingested by this shard.
    pub packets: u64,
    /// SYNs seen in the current (open) interval.
    pub syn_in_interval: i64,
}

impl ShardState {
    /// Creates an empty state for the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if the detector's kind domain is degenerate.
    #[must_use]
    pub fn new(cfg: &ReplayConfig) -> Self {
        Self {
            kinds: FrequencyDist::new(0, cfg.detector.kinds - 1).expect("valid kind domain"),
            len_stats: RunningStats::new(),
            dst_sketch: CountMinSketch::new(4, 12),
            len_median: PercentileSet::new(0, MAX_LEN, &[Quantile::percentile(50).unwrap()])
                .expect("valid length domain"),
            packets: 0,
            syn_in_interval: 0,
        }
    }

    /// Ingests one frame.
    pub fn ingest(&mut self, frame: &[u8]) {
        let kind = kind_of(frame);
        let _ = self.kinds.observe(kind);
        let len = (frame.len() as i64).min(MAX_LEN);
        self.len_stats.push(len);
        let _ = self.len_median.observe(len);
        self.dst_sketch.update(dst_key(frame), 1);
        if kind == KIND_SYN {
            self.syn_in_interval += 1;
        }
        self.packets += 1;
    }

    /// Folds `other` into `self` using each tracker's merge rule.
    ///
    /// # Errors
    ///
    /// [`stat4_core::Stat4Error::MergeMismatch`] if the two states were
    /// built with different domains or geometries.
    pub fn merge_from(&mut self, other: &Self) -> Stat4Result<()> {
        self.kinds.merge_from(&other.kinds)?;
        self.len_stats.merge_from(&other.len_stats)?;
        self.dst_sketch.merge_from(&other.dst_sketch)?;
        self.len_median.merge_from(&other.len_median)?;
        self.packets += other.packets;
        self.syn_in_interval += other.syn_in_interval;
        Ok(())
    }
}

/// What a replay run produced.
#[derive(Debug)]
pub struct ReplayOutcome {
    /// The merged global state after the last epoch.
    pub merged: ShardState,
    /// Alerts raised by the central detector, in interval order.
    pub alerts: Vec<Alert>,
    /// First alert time, if any.
    pub detected_at: Option<u64>,
    /// Frames replayed.
    pub packets: u64,
    /// Closed epochs (detector intervals).
    pub epochs: u64,
    /// Wall-clock replay time.
    pub elapsed: std::time::Duration,
    /// Everything the engine observed about itself: per-shard metric
    /// sets, epoch/merge timings, detector fires, trace events.
    pub telemetry: ReplayTelemetry,
}

impl ReplayOutcome {
    /// Replay throughput in packets per second. An instantaneous run
    /// (zero elapsed time — e.g. an empty schedule) reports `0.0`, not
    /// infinity or NaN, so downstream arithmetic and JSON stay finite.
    #[must_use]
    pub fn throughput_pps(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.packets as f64 / secs
    }
}

/// Replays a time-sorted schedule through `cfg.shards` worker threads
/// and returns the merged state plus the central detector's alerts.
///
/// Each detector interval is one *epoch*: the interval's frames are
/// split by flow hash, every shard ingests its slice on its own thread
/// (in `cfg.batch`-sized batches), the threads join, shard state is
/// folded into a fresh merged view, and the detector consumes the
/// merged aggregates. Per-shard state persists across epochs; only the
/// merged view is rebuilt.
///
/// # Panics
///
/// Panics if `cfg.shards` is zero or a shard state merge fails (states
/// are constructed from one config, so geometries always match).
#[must_use]
pub fn run_replay(schedule: &Schedule, cfg: &ReplayConfig) -> ReplayOutcome {
    assert!(cfg.shards >= 1, "need at least one shard");
    let interval = cfg.detector.interval_ns.max(1);
    let batch = cfg.batch.max(1);

    let mut shards: Vec<ShardState> = (0..cfg.shards).map(|_| ShardState::new(cfg)).collect();
    let mut detector = EpochSynFloodDetector::new(cfg.detector);
    let mut telemetry = ReplayTelemetry::new(cfg.shards);
    let mut packets: u64 = 0;
    let mut epochs: u64 = 0;

    let started = std::time::Instant::now();

    // Cut the schedule into epochs (one detector interval each). The
    // schedule is time-sorted, so each epoch is a contiguous run.
    let mut i = 0;
    while i < schedule.len() {
        let epoch_idx = schedule[i].0 / interval;
        let mut j = i;
        while j < schedule.len() && schedule[j].0 / interval == epoch_idx {
            j += 1;
        }
        let epoch_frames = &schedule[i..j];
        i = j;

        // Deterministic flow-affine split of this epoch's frames.
        let mut work: Vec<Vec<&bytes::Bytes>> = vec![Vec::new(); cfg.shards];
        for (_, frame) in epoch_frames {
            work[workloads::shard::shard_of(frame, cfg.shards)].push(frame);
        }

        // One thread per shard; the scope end is the epoch barrier.
        // Each thread updates its own ShardMetrics (single-owner, no
        // atomics) at batch granularity and reports its busy time so
        // barrier idle time can be attributed after the join.
        telemetry.trace.begin("ingest", epoch_idx);
        let epoch_started = std::time::Instant::now();
        let ingest_ns: Vec<u64> = std::thread::scope(|scope| {
            let handles: Vec<_> = shards
                .iter_mut()
                .zip(telemetry.shards.iter_mut())
                .zip(&work)
                .map(|((state, m), list)| {
                    scope.spawn(move || {
                        let busy = std::time::Instant::now();
                        for chunk in list.chunks(batch) {
                            for frame in chunk {
                                state.ingest(frame);
                            }
                            m.packets.add(chunk.len() as u64);
                            m.batches.inc();
                            m.batch_size.record(chunk.len() as u64);
                        }
                        let ns = u64::try_from(busy.elapsed().as_nanos()).unwrap_or(u64::MAX);
                        m.ingest_ns.add(ns);
                        ns
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard thread panicked"))
                .collect()
        });
        let epoch_wall = u64::try_from(epoch_started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        telemetry.trace.end("ingest", epoch_idx);
        for (m, busy) in telemetry.shards.iter_mut().zip(&ingest_ns) {
            m.barrier_wait_ns.record(epoch_wall.saturating_sub(*busy));
        }
        packets += epoch_frames.len() as u64;
        epochs += 1;

        // Barrier work: fold shard state into a fresh global view and
        // let the central detector judge the merged aggregates.
        telemetry.trace.begin("merge", epoch_idx);
        let merge_started = std::time::Instant::now();
        let mut merged = ShardState::new(cfg);
        for s in &shards {
            merged.merge_from(s).expect("uniform shard geometry");
        }
        let at = (epoch_idx + 1) * interval;
        let raised = detector.observe_interval(at, merged.syn_in_interval, &merged.kinds);
        telemetry
            .merge_ns
            .record(u64::try_from(merge_started.elapsed().as_nanos()).unwrap_or(u64::MAX));
        telemetry.trace.end("merge", epoch_idx);
        if !raised.is_empty() {
            telemetry.trace.instant("alert", epoch_idx);
        }
        telemetry.epoch_ns.record(
            epoch_wall.saturating_add(
                u64::try_from(merge_started.elapsed().as_nanos()).unwrap_or(u64::MAX),
            ),
        );
        telemetry.epochs.inc();
        for (s, m) in shards.iter_mut().zip(telemetry.shards.iter_mut()) {
            m.syn_packets.add(u64::try_from(s.syn_in_interval).unwrap_or(0));
            s.syn_in_interval = 0;
        }
    }

    let elapsed = started.elapsed();
    telemetry.elapsed_ns = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
    telemetry.alerts.add(detector.alerts.len() as u64);
    telemetry.detector = detector.metrics.clone();

    let mut merged = ShardState::new(cfg);
    for s in &shards {
        merged.merge_from(s).expect("uniform shard geometry");
    }
    ReplayOutcome {
        merged,
        alerts: detector.alerts.clone(),
        detected_at: detector.detected_at,
        packets,
        epochs,
        elapsed,
        telemetry,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::SynFloodWorkload;

    fn small_flood() -> Schedule {
        let (s, _) = SynFloodWorkload {
            background_cps: 500,
            flood_pps: 20_000,
            flood_start: 150_000_000,
            duration: 400_000_000,
            seed: 11,
            ..SynFloodWorkload::default()
        }
        .generate();
        s
    }

    #[test]
    fn single_shard_counts_every_packet() {
        let s = small_flood();
        let out = run_replay(&s, &ReplayConfig::default());
        assert_eq!(out.packets, s.len() as u64);
        assert_eq!(out.merged.packets, s.len() as u64);
        assert_eq!(out.merged.len_stats.n(), s.len() as u64);
        assert!(out.epochs > 0);
    }

    #[test]
    fn merged_moments_match_direct_ingest() {
        // RunningStats / FrequencyDist / sketch are order-free, so the
        // replay's merged state must equal a plain sequential ingest.
        let s = small_flood();
        let cfg = ReplayConfig {
            shards: 4,
            ..ReplayConfig::default()
        };
        let out = run_replay(&s, &cfg);
        let mut direct = ShardState::new(&cfg);
        for (_, frame) in &s {
            direct.ingest(frame);
        }
        assert_eq!(out.merged.len_stats, direct.len_stats);
        assert_eq!(out.merged.kinds, direct.kinds);
        assert_eq!(out.merged.dst_sketch, direct.dst_sketch);
        // Percentile *counts* agree too; only the marker path differs.
        assert_eq!(out.merged.len_median.total(), direct.len_median.total());
    }

    #[test]
    fn flood_detected_on_merged_state() {
        let s = small_flood();
        let out = run_replay(
            &s,
            &ReplayConfig {
                shards: 2,
                ..ReplayConfig::default()
            },
        );
        let at = out.detected_at.expect("flood must be detected");
        assert!(at >= 150_000_000, "no false positive: {at}");
    }

    #[test]
    fn batch_size_does_not_change_outcome() {
        let s = small_flood();
        let a = run_replay(
            &s,
            &ReplayConfig {
                shards: 4,
                batch: 1,
                ..ReplayConfig::default()
            },
        );
        let b = run_replay(
            &s,
            &ReplayConfig {
                shards: 4,
                batch: 4096,
                ..ReplayConfig::default()
            },
        );
        assert_eq!(a.merged, b.merged);
        assert_eq!(a.alerts, b.alerts);
    }

    #[test]
    fn throughput_is_zero_not_nan_for_instant_runs() {
        // Regression: an instantaneous (or empty) run used to report
        // f64::INFINITY; NaN/∞ poisons downstream JSON and averages.
        let cfg = ReplayConfig::default();
        let out = ReplayOutcome {
            merged: ShardState::new(&cfg),
            alerts: Vec::new(),
            detected_at: None,
            packets: 0,
            epochs: 0,
            elapsed: std::time::Duration::ZERO,
            telemetry: ReplayTelemetry::new(1),
        };
        assert_eq!(out.throughput_pps(), 0.0);
        assert!(out.throughput_pps().is_finite());

        let busy = ReplayOutcome {
            packets: 1000,
            elapsed: std::time::Duration::ZERO,
            ..out
        };
        assert_eq!(busy.throughput_pps(), 0.0, "packets but zero elapsed");
    }

    #[test]
    fn empty_schedule_runs_clean() {
        let out = run_replay(&Schedule::new(), &ReplayConfig::default());
        assert_eq!(out.packets, 0);
        assert_eq!(out.epochs, 0);
        assert!(out.throughput_pps().is_finite());
        assert_eq!(out.telemetry.merged_shard().packets.get(), 0);
    }

    #[test]
    fn telemetry_shard_counters_sum_to_outcome() {
        let s = small_flood();
        let cfg = ReplayConfig {
            shards: 4,
            ..ReplayConfig::default()
        };
        let out = run_replay(&s, &cfg);
        assert_eq!(out.telemetry.shards.len(), 4);
        let merged = out.telemetry.merged_shard();
        assert_eq!(merged.packets.get(), out.packets);
        assert_eq!(
            merged.syn_packets.get(),
            out.merged.kinds.frequency(KIND_SYN),
            "per-shard SYN counters fold to the merged kind frequency"
        );
        assert_eq!(out.telemetry.epochs.get(), out.epochs);
        assert_eq!(out.telemetry.alerts.get(), out.alerts.len() as u64);
        assert_eq!(out.telemetry.epoch_ns.count(), out.epochs);
        // Every shard saw at least one barrier.
        for m in &out.telemetry.shards {
            assert_eq!(m.barrier_wait_ns.count(), out.epochs);
        }
        // Trace recorded the epoch lifecycle (bounded buffer).
        assert!(!out.telemetry.trace.events().is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let s = Schedule::new();
        let _ = run_replay(
            &s,
            &ReplayConfig {
                shards: 0,
                ..ReplayConfig::default()
            },
        );
    }
}
