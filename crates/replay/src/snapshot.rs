//! Deterministic JSON snapshot of a [`ReplayOutcome`] — render *and*
//! parse, hand-rolled on [`telemetry::Json`].
//!
//! [`RunSnapshot`] mirrors every deterministic field of an outcome
//! (alerts, health, ensemble report, alert provenance, merged-state
//! summary); wall-clock fields are deliberately absent, so two
//! snapshots of bit-identical runs compare equal. [`render_outcome_json`]
//! writes the snapshot; [`parse_outcome_json`] reads it back
//! field-for-field — the golden round-trip `tests/provenance.rs`
//! pins. `stat4-trace explain` consumes these files.

use crate::provenance::{AlertProvenanceRecord, EpochLineage, IncidentRef};
use crate::ReplayOutcome;
use anomaly::synflood::KIND_SYN;
use anomaly::{
    Alert, AlertProvenance, DetectionResult, EngineAtFire, RebindTransaction, SignalValues,
    TriggerCause,
};
use telemetry::json::render;
use telemetry::Json;

/// One alert flattened to `(kind, at, value)` — enough to reconstruct
/// the alert timeline without a per-variant schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AlertSnap {
    /// Variant name (`"syn_flood"`, `"traffic_spike"`, ...).
    pub kind: String,
    /// Detection time (ns).
    pub at: u64,
    /// The variant's payload value (count, group, address, ...).
    pub value: i64,
}

impl AlertSnap {
    fn of(a: &Alert) -> Self {
        let (kind, at, value) = match a {
            Alert::TrafficSpike { at, interval_count } => (
                "traffic_spike",
                *at,
                i64::try_from(*interval_count).unwrap_or(i64::MAX),
            ),
            Alert::TrafficImbalance { at, group } => (
                "traffic_imbalance",
                *at,
                i64::try_from(*group).unwrap_or(i64::MAX),
            ),
            Alert::Pinpointed { at, dest } => {
                ("pinpointed", *at, i64::from(u32::from(*dest)))
            }
            Alert::SynFlood { at, syn_count } => (
                "syn_flood",
                *at,
                i64::try_from(*syn_count).unwrap_or(i64::MAX),
            ),
            Alert::ActivityDrop { at, interval_value } => {
                ("activity_drop", *at, *interval_value)
            }
            Alert::CompositionDrift { at, kind } => (
                "composition_drift",
                *at,
                i64::try_from(*kind).unwrap_or(i64::MAX),
            ),
        };
        Self {
            kind: kind.to_string(),
            at,
            value,
        }
    }
}

/// [`crate::ReplayHealth`] with incidents rendered as [`IncidentRef`]s.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HealthSnap {
    /// Shards the run was configured with.
    pub shards_configured: usize,
    /// Shards alive at the end.
    pub shards_alive: usize,
    /// Frames in the schedule.
    pub packets_offered: u64,
    /// Frames in the final merged view.
    pub packets_ingested: u64,
    /// Frames missing from the merged view.
    pub packets_lost: u64,
    /// Frames redirected from quarantined shards.
    pub packets_rerouted: u64,
    /// Epoch reports lost on the control channel.
    pub reports_dropped: u64,
    /// Every quarantine event, in occurrence order.
    pub incidents: Vec<IncidentRef>,
}

/// One engine's run summary with an owned name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineSnap {
    /// Engine name.
    pub name: String,
    /// Total gated fires.
    pub fires: u64,
    /// First fire time (ns), if any.
    pub first_fired_at: Option<u64>,
}

/// One fired [`DetectionResult`] with an owned engine name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FiredSnap {
    /// Engine that fired.
    pub engine: String,
    /// Interval end (ns).
    pub at: u64,
    /// Interval ordinal.
    pub epoch: u64,
    /// Q16 score.
    pub score: i64,
    /// Ensemble weight, Q16.
    pub weight: i64,
    /// Confidence, Q16.
    pub confidence: i64,
    /// Expected signal value.
    pub expected: i64,
    /// Observed signal value.
    pub observed: i64,
}

impl FiredSnap {
    fn of(r: &DetectionResult) -> Self {
        Self {
            engine: r.engine.to_string(),
            at: r.at,
            epoch: r.epoch,
            score: r.score,
            weight: r.weight,
            confidence: r.confidence,
            expected: r.expected,
            observed: r.observed,
        }
    }
}

/// The ensemble report: per-engine summaries plus the fired log.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct EnsembleSnap {
    /// Per-engine fire counts, in report order.
    pub engines: Vec<EngineSnap>,
    /// Every fired result, in interval order then engine order.
    pub fired: Vec<FiredSnap>,
}

/// Scalar summary of the final merged [`crate::ShardState`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MergedSnap {
    /// Frames in the merged view.
    pub packets: u64,
    /// SYN frames (merged kind frequency).
    pub syn_total: u64,
    /// Frame-length observations.
    pub len_n: u64,
    /// Canonical median frame length.
    pub median_len: i64,
}

/// Every deterministic field of a [`ReplayOutcome`], JSON-round-trip
/// safe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunSnapshot {
    /// Frames replayed.
    pub packets: u64,
    /// Closed epochs.
    pub epochs: u64,
    /// First alert time, if any.
    pub detected_at: Option<u64>,
    /// Central-detector alerts, in interval order.
    pub alerts: Vec<AlertSnap>,
    /// Degraded-mode summary.
    pub health: HealthSnap,
    /// Ensemble report.
    pub ensemble: EnsembleSnap,
    /// Alert provenance records, in fire order.
    pub provenance: Vec<AlertProvenanceRecord>,
    /// Final merged-state summary.
    pub merged: MergedSnap,
}

impl RunSnapshot {
    /// Captures the deterministic view of `out`.
    #[must_use]
    pub fn of(out: &ReplayOutcome) -> Self {
        Self {
            packets: out.packets,
            epochs: out.epochs,
            detected_at: out.detected_at,
            alerts: out.alerts.iter().map(AlertSnap::of).collect(),
            health: HealthSnap {
                shards_configured: out.health.shards_configured,
                shards_alive: out.health.shards_alive,
                packets_offered: out.health.packets_offered,
                packets_ingested: out.health.packets_ingested,
                packets_lost: out.health.packets_lost,
                packets_rerouted: out.health.packets_rerouted,
                reports_dropped: out.health.reports_dropped,
                incidents: out.health.incidents.iter().map(IncidentRef::from).collect(),
            },
            ensemble: EnsembleSnap {
                engines: out
                    .ensemble
                    .engines
                    .iter()
                    .map(|e| EngineSnap {
                        name: e.name.to_string(),
                        fires: e.fires,
                        first_fired_at: e.first_fired_at,
                    })
                    .collect(),
                fired: out.ensemble.fired.iter().map(FiredSnap::of).collect(),
            },
            provenance: out.provenance.clone(),
            merged: MergedSnap {
                packets: out.merged.packets,
                syn_total: out.merged.kinds.frequency(KIND_SYN),
                len_n: out.merged.len_stats.n(),
                median_len: out.merged.len_median.estimate(0).unwrap_or(0),
            },
        }
    }
}

// ---- render ---------------------------------------------------------

pub(crate) fn ju(v: u64) -> Json {
    Json::Int(i64::try_from(v).unwrap_or(i64::MAX))
}

pub(crate) fn jus(v: usize) -> Json {
    Json::Int(i64::try_from(v).unwrap_or(i64::MAX))
}

pub(crate) fn js(v: &str) -> Json {
    Json::Str(v.to_string())
}

pub(crate) fn jopt(v: Option<u64>) -> Json {
    v.map_or(Json::Null, ju)
}

pub(crate) fn obj(members: Vec<(&str, Json)>) -> Json {
    Json::Obj(members.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn cause_json(c: &TriggerCause) -> Json {
    match c {
        TriggerCause::EnginesFired(names) => obj(vec![
            ("kind", js("engines_fired")),
            ("engines", Json::Arr(names.iter().map(|n| js(n)).collect())),
        ]),
        TriggerCause::CombinedScore {
            combined_q16,
            threshold_q16,
        } => obj(vec![
            ("kind", js("combined_score")),
            ("combined_q16", Json::Int(*combined_q16)),
            ("threshold_q16", Json::Int(*threshold_q16)),
        ]),
    }
}

fn signals_json(s: &SignalValues) -> Json {
    obj(vec![
        ("at", ju(s.at)),
        ("epoch", ju(s.epoch)),
        ("interval_ns", ju(s.interval_ns)),
        ("spanned", Json::Int(s.spanned)),
        ("packets", Json::Int(s.packets)),
        ("syns", Json::Int(s.syns)),
        ("len_sum", Json::Int(s.len_sum)),
        ("distinct_sources", Json::Int(s.distinct_sources)),
        ("median_len", Json::Int(s.median_len)),
    ])
}

fn engine_at_fire_json(e: &EngineAtFire) -> Json {
    obj(vec![
        ("engine", js(&e.engine)),
        ("score", Json::Int(e.score)),
        ("threshold_q16", Json::Int(e.threshold_q16)),
        ("confidence", Json::Int(e.confidence)),
        ("weight", Json::Int(e.weight)),
        ("expected", Json::Int(e.expected)),
        ("observed", Json::Int(e.observed)),
        ("fired", Json::Bool(e.fired)),
    ])
}

fn provenance_json(p: &AlertProvenance) -> Json {
    obj(vec![
        ("at", ju(p.at)),
        ("epoch", ju(p.epoch)),
        ("signals", signals_json(&p.signals)),
        ("combined_q16", Json::Int(p.combined_q16)),
        (
            "engines",
            Json::Arr(p.engines.iter().map(engine_at_fire_json).collect()),
        ),
        ("cause", cause_json(&p.cause)),
    ])
}

fn incident_json(i: &IncidentRef) -> Json {
    obj(vec![
        ("shard", jus(i.shard)),
        ("epoch", ju(i.epoch)),
        ("detail", js(&i.detail)),
    ])
}

fn lineage_json(l: &EpochLineage) -> Json {
    obj(vec![
        ("epoch", ju(l.epoch)),
        (
            "delivered_shards",
            Json::Arr(l.delivered_shards.iter().map(|&s| jus(s)).collect()),
        ),
        (
            "carried_epochs",
            Json::Arr(l.carried_epochs.iter().map(|&e| ju(e)).collect()),
        ),
        ("spanned", Json::Int(l.spanned)),
        ("rerouted_frames", ju(l.rerouted_frames)),
        (
            "quarantined",
            Json::Arr(l.quarantined.iter().map(incident_json).collect()),
        ),
    ])
}

fn rebind_json(t: &RebindTransaction) -> Json {
    obj(vec![
        ("generation", ju(t.generation)),
        ("epoch", ju(t.epoch)),
        ("at", ju(t.at)),
        ("from_phase", js(&t.from_phase)),
        ("to_phase", js(&t.to_phase)),
        ("binds", ju(u64::from(t.binds))),
        ("cause", cause_json(&t.cause)),
    ])
}

pub(crate) fn record_json(r: &AlertProvenanceRecord) -> Json {
    obj(vec![
        ("id", ju(r.id)),
        ("provenance", provenance_json(&r.provenance)),
        ("lineage", lineage_json(&r.lineage)),
        (
            "drilldown",
            Json::Arr(r.drilldown.iter().map(rebind_json).collect()),
        ),
    ])
}

fn snapshot_json(s: &RunSnapshot) -> Json {
    obj(vec![
        ("packets", ju(s.packets)),
        ("epochs", ju(s.epochs)),
        ("detected_at", jopt(s.detected_at)),
        (
            "alerts",
            Json::Arr(
                s.alerts
                    .iter()
                    .map(|a| {
                        obj(vec![
                            ("kind", js(&a.kind)),
                            ("at", ju(a.at)),
                            ("value", Json::Int(a.value)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "health",
            obj(vec![
                ("shards_configured", jus(s.health.shards_configured)),
                ("shards_alive", jus(s.health.shards_alive)),
                ("packets_offered", ju(s.health.packets_offered)),
                ("packets_ingested", ju(s.health.packets_ingested)),
                ("packets_lost", ju(s.health.packets_lost)),
                ("packets_rerouted", ju(s.health.packets_rerouted)),
                ("reports_dropped", ju(s.health.reports_dropped)),
                (
                    "incidents",
                    Json::Arr(s.health.incidents.iter().map(incident_json).collect()),
                ),
            ]),
        ),
        (
            "ensemble",
            obj(vec![
                (
                    "engines",
                    Json::Arr(
                        s.ensemble
                            .engines
                            .iter()
                            .map(|e| {
                                obj(vec![
                                    ("name", js(&e.name)),
                                    ("fires", ju(e.fires)),
                                    ("first_fired_at", jopt(e.first_fired_at)),
                                ])
                            })
                            .collect(),
                    ),
                ),
                (
                    "fired",
                    Json::Arr(
                        s.ensemble
                            .fired
                            .iter()
                            .map(|f| {
                                obj(vec![
                                    ("engine", js(&f.engine)),
                                    ("at", ju(f.at)),
                                    ("epoch", ju(f.epoch)),
                                    ("score", Json::Int(f.score)),
                                    ("weight", Json::Int(f.weight)),
                                    ("confidence", Json::Int(f.confidence)),
                                    ("expected", Json::Int(f.expected)),
                                    ("observed", Json::Int(f.observed)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
        ),
        (
            "provenance",
            Json::Arr(s.provenance.iter().map(record_json).collect()),
        ),
        (
            "merged",
            obj(vec![
                ("packets", ju(s.merged.packets)),
                ("syn_total", ju(s.merged.syn_total)),
                ("len_n", ju(s.merged.len_n)),
                ("median_len", Json::Int(s.merged.median_len)),
            ]),
        ),
    ])
}

/// Renders the deterministic snapshot of `out` as a JSON document.
#[must_use]
pub fn render_outcome_json(out: &ReplayOutcome) -> String {
    render_snapshot_json(&RunSnapshot::of(out))
}

/// Renders an already-captured snapshot.
#[must_use]
pub fn render_snapshot_json(s: &RunSnapshot) -> String {
    render(&snapshot_json(s))
}

// ---- parse ----------------------------------------------------------

pub(crate) fn req<'a>(v: &'a Json, key: &str, path: &str) -> Result<&'a Json, String> {
    v.get(key)
        .ok_or_else(|| format!("{path}: missing \"{key}\""))
}

pub(crate) fn req_u64(v: &Json, key: &str, path: &str) -> Result<u64, String> {
    req(v, key, path)?
        .as_u64()
        .ok_or_else(|| format!("{path}: \"{key}\" is not a non-negative integer"))
}

pub(crate) fn req_usize(v: &Json, key: &str, path: &str) -> Result<usize, String> {
    usize::try_from(req_u64(v, key, path)?)
        .map_err(|_| format!("{path}: \"{key}\" overflows usize"))
}

pub(crate) fn req_i64(v: &Json, key: &str, path: &str) -> Result<i64, String> {
    req(v, key, path)?
        .as_i64()
        .ok_or_else(|| format!("{path}: \"{key}\" is not an integer"))
}

pub(crate) fn req_str(v: &Json, key: &str, path: &str) -> Result<String, String> {
    Ok(req(v, key, path)?
        .as_str()
        .ok_or_else(|| format!("{path}: \"{key}\" is not a string"))?
        .to_string())
}

fn req_bool(v: &Json, key: &str, path: &str) -> Result<bool, String> {
    req(v, key, path)?
        .as_bool()
        .ok_or_else(|| format!("{path}: \"{key}\" is not a boolean"))
}

pub(crate) fn req_arr<'a>(v: &'a Json, key: &str, path: &str) -> Result<&'a [Json], String> {
    req(v, key, path)?
        .as_arr()
        .ok_or_else(|| format!("{path}: \"{key}\" is not an array"))
}

pub(crate) fn opt_u64(v: &Json, key: &str, path: &str) -> Result<Option<u64>, String> {
    let field = req(v, key, path)?;
    if field.is_null() {
        return Ok(None);
    }
    field
        .as_u64()
        .map(Some)
        .ok_or_else(|| format!("{path}: \"{key}\" is neither null nor a non-negative integer"))
}

fn parse_cause(v: &Json, path: &str) -> Result<TriggerCause, String> {
    match req_str(v, "kind", path)?.as_str() {
        "engines_fired" => {
            let names = req_arr(v, "engines", path)?
                .iter()
                .enumerate()
                .map(|(i, n)| {
                    n.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| format!("{path}: engines[{i}] is not a string"))
                })
                .collect::<Result<Vec<_>, _>>()?;
            Ok(TriggerCause::EnginesFired(names))
        }
        "combined_score" => Ok(TriggerCause::CombinedScore {
            combined_q16: req_i64(v, "combined_q16", path)?,
            threshold_q16: req_i64(v, "threshold_q16", path)?,
        }),
        other => Err(format!("{path}: unknown cause kind {other:?}")),
    }
}

fn parse_incident(v: &Json, path: &str) -> Result<IncidentRef, String> {
    Ok(IncidentRef {
        shard: req_usize(v, "shard", path)?,
        epoch: req_u64(v, "epoch", path)?,
        detail: req_str(v, "detail", path)?,
    })
}

pub(crate) fn parse_record(v: &Json, path: &str) -> Result<AlertProvenanceRecord, String> {
    let prov = req(v, "provenance", path)?;
    let ppath = format!("{path}.provenance");
    let sig = req(prov, "signals", &ppath)?;
    let spath = format!("{ppath}.signals");
    let signals = SignalValues {
        at: req_u64(sig, "at", &spath)?,
        epoch: req_u64(sig, "epoch", &spath)?,
        interval_ns: req_u64(sig, "interval_ns", &spath)?,
        spanned: req_i64(sig, "spanned", &spath)?,
        packets: req_i64(sig, "packets", &spath)?,
        syns: req_i64(sig, "syns", &spath)?,
        len_sum: req_i64(sig, "len_sum", &spath)?,
        distinct_sources: req_i64(sig, "distinct_sources", &spath)?,
        median_len: req_i64(sig, "median_len", &spath)?,
    };
    let engines = req_arr(prov, "engines", &ppath)?
        .iter()
        .enumerate()
        .map(|(i, e)| {
            let epath = format!("{ppath}.engines[{i}]");
            Ok(EngineAtFire {
                engine: req_str(e, "engine", &epath)?,
                score: req_i64(e, "score", &epath)?,
                threshold_q16: req_i64(e, "threshold_q16", &epath)?,
                confidence: req_i64(e, "confidence", &epath)?,
                weight: req_i64(e, "weight", &epath)?,
                expected: req_i64(e, "expected", &epath)?,
                observed: req_i64(e, "observed", &epath)?,
                fired: req_bool(e, "fired", &epath)?,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    let lin = req(v, "lineage", path)?;
    let lpath = format!("{path}.lineage");
    let delivered_shards = req_arr(lin, "delivered_shards", &lpath)?
        .iter()
        .enumerate()
        .map(|(i, s)| {
            s.as_u64()
                .and_then(|u| usize::try_from(u).ok())
                .ok_or_else(|| format!("{lpath}: delivered_shards[{i}] is not a shard index"))
        })
        .collect::<Result<Vec<_>, _>>()?;
    let carried_epochs = req_arr(lin, "carried_epochs", &lpath)?
        .iter()
        .enumerate()
        .map(|(i, e)| {
            e.as_u64()
                .ok_or_else(|| format!("{lpath}: carried_epochs[{i}] is not an epoch"))
        })
        .collect::<Result<Vec<_>, _>>()?;
    let quarantined = req_arr(lin, "quarantined", &lpath)?
        .iter()
        .enumerate()
        .map(|(i, q)| parse_incident(q, &format!("{lpath}.quarantined[{i}]")))
        .collect::<Result<Vec<_>, _>>()?;
    let drilldown = req_arr(v, "drilldown", path)?
        .iter()
        .enumerate()
        .map(|(i, t)| {
            let tpath = format!("{path}.drilldown[{i}]");
            Ok(RebindTransaction {
                generation: req_u64(t, "generation", &tpath)?,
                epoch: req_u64(t, "epoch", &tpath)?,
                at: req_u64(t, "at", &tpath)?,
                from_phase: req_str(t, "from_phase", &tpath)?,
                to_phase: req_str(t, "to_phase", &tpath)?,
                binds: u32::try_from(req_u64(t, "binds", &tpath)?)
                    .map_err(|_| format!("{tpath}: \"binds\" overflows u32"))?,
                cause: parse_cause(req(t, "cause", &tpath)?, &format!("{tpath}.cause"))?,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    Ok(AlertProvenanceRecord {
        id: req_u64(v, "id", path)?,
        provenance: AlertProvenance {
            at: req_u64(prov, "at", &ppath)?,
            epoch: req_u64(prov, "epoch", &ppath)?,
            signals,
            combined_q16: req_i64(prov, "combined_q16", &ppath)?,
            engines,
            cause: parse_cause(req(prov, "cause", &ppath)?, &format!("{ppath}.cause"))?,
        },
        lineage: EpochLineage {
            epoch: req_u64(lin, "epoch", &lpath)?,
            delivered_shards,
            carried_epochs,
            spanned: req_i64(lin, "spanned", &lpath)?,
            rerouted_frames: req_u64(lin, "rerouted_frames", &lpath)?,
            quarantined,
        },
        drilldown,
    })
}

/// Parses a document written by [`render_outcome_json`] back into the
/// snapshot it encodes.
///
/// # Errors
///
/// A description of the first structural problem (JSON syntax, missing
/// field, wrong type), prefixed with the offending path.
pub fn parse_outcome_json(text: &str) -> Result<RunSnapshot, String> {
    let doc = Json::parse(text)?;
    let alerts = req_arr(&doc, "alerts", "$")?
        .iter()
        .enumerate()
        .map(|(i, a)| {
            let path = format!("$.alerts[{i}]");
            Ok(AlertSnap {
                kind: req_str(a, "kind", &path)?,
                at: req_u64(a, "at", &path)?,
                value: req_i64(a, "value", &path)?,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    let health = req(&doc, "health", "$")?;
    let hpath = "$.health";
    let incidents = req_arr(health, "incidents", hpath)?
        .iter()
        .enumerate()
        .map(|(i, q)| parse_incident(q, &format!("{hpath}.incidents[{i}]")))
        .collect::<Result<Vec<_>, _>>()?;
    let ens = req(&doc, "ensemble", "$")?;
    let engines = req_arr(ens, "engines", "$.ensemble")?
        .iter()
        .enumerate()
        .map(|(i, e)| {
            let path = format!("$.ensemble.engines[{i}]");
            Ok(EngineSnap {
                name: req_str(e, "name", &path)?,
                fires: req_u64(e, "fires", &path)?,
                first_fired_at: opt_u64(e, "first_fired_at", &path)?,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    let fired = req_arr(ens, "fired", "$.ensemble")?
        .iter()
        .enumerate()
        .map(|(i, f)| {
            let path = format!("$.ensemble.fired[{i}]");
            Ok(FiredSnap {
                engine: req_str(f, "engine", &path)?,
                at: req_u64(f, "at", &path)?,
                epoch: req_u64(f, "epoch", &path)?,
                score: req_i64(f, "score", &path)?,
                weight: req_i64(f, "weight", &path)?,
                confidence: req_i64(f, "confidence", &path)?,
                expected: req_i64(f, "expected", &path)?,
                observed: req_i64(f, "observed", &path)?,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    let provenance = req_arr(&doc, "provenance", "$")?
        .iter()
        .enumerate()
        .map(|(i, r)| parse_record(r, &format!("$.provenance[{i}]")))
        .collect::<Result<Vec<_>, _>>()?;
    let merged = req(&doc, "merged", "$")?;
    let mpath = "$.merged";
    Ok(RunSnapshot {
        packets: req_u64(&doc, "packets", "$")?,
        epochs: req_u64(&doc, "epochs", "$")?,
        detected_at: opt_u64(&doc, "detected_at", "$")?,
        alerts,
        health: HealthSnap {
            shards_configured: req_usize(health, "shards_configured", hpath)?,
            shards_alive: req_usize(health, "shards_alive", hpath)?,
            packets_offered: req_u64(health, "packets_offered", hpath)?,
            packets_ingested: req_u64(health, "packets_ingested", hpath)?,
            packets_lost: req_u64(health, "packets_lost", hpath)?,
            packets_rerouted: req_u64(health, "packets_rerouted", hpath)?,
            reports_dropped: req_u64(health, "reports_dropped", hpath)?,
            incidents,
        },
        ensemble: EnsembleSnap { engines, fired },
        provenance,
        merged: MergedSnap {
            packets: req_u64(merged, "packets", mpath)?,
            syn_total: req_u64(merged, "syn_total", mpath)?,
            len_n: req_u64(merged, "len_n", mpath)?,
            median_len: req_i64(merged, "median_len", mpath)?,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_snapshot() -> RunSnapshot {
        let signals = SignalValues {
            at: 2_000_000,
            epoch: 1,
            interval_ns: 1_000_000,
            spanned: 2,
            packets: 900,
            syns: 450,
            len_sum: 54_000,
            distinct_sources: 37,
            median_len: 60,
        };
        let cause = TriggerCause::EnginesFired(vec![String::from("synflood")]);
        let record = AlertProvenanceRecord {
            id: 0,
            provenance: AlertProvenance {
                at: 2_000_000,
                epoch: 1,
                signals,
                combined_q16: 80_000,
                engines: vec![EngineAtFire {
                    engine: String::from("synflood"),
                    score: 131_072,
                    threshold_q16: 65_536,
                    confidence: 65_536,
                    weight: 65_536,
                    expected: 100,
                    observed: 450,
                    fired: true,
                }],
                cause: cause.clone(),
            },
            lineage: EpochLineage {
                epoch: 1,
                delivered_shards: vec![0, 2, 3],
                carried_epochs: vec![0],
                spanned: 2,
                rerouted_frames: 17,
                quarantined: vec![IncidentRef {
                    shard: 1,
                    epoch: 0,
                    detail: String::from("crashed"),
                }],
            },
            drilldown: vec![RebindTransaction {
                generation: 1,
                epoch: 1,
                at: 2_000_000,
                from_phase: String::from("prefix"),
                to_phase: String::from("subnets"),
                binds: 16,
                cause: TriggerCause::CombinedScore {
                    combined_q16: 50_000,
                    threshold_q16: 49_152,
                },
            }],
        };
        RunSnapshot {
            packets: 1234,
            epochs: 9,
            detected_at: Some(2_000_000),
            alerts: vec![AlertSnap {
                kind: String::from("syn_flood"),
                at: 2_000_000,
                value: 450,
            }],
            health: HealthSnap {
                shards_configured: 4,
                shards_alive: 3,
                packets_offered: 1234,
                packets_ingested: 1200,
                packets_lost: 34,
                packets_rerouted: 17,
                reports_dropped: 1,
                incidents: vec![IncidentRef {
                    shard: 1,
                    epoch: 0,
                    detail: String::from("panicked: injected fault"),
                }],
            },
            ensemble: EnsembleSnap {
                engines: vec![EngineSnap {
                    name: String::from("synflood"),
                    fires: 3,
                    first_fired_at: Some(2_000_000),
                }],
                fired: vec![FiredSnap {
                    engine: String::from("synflood"),
                    at: 2_000_000,
                    epoch: 1,
                    score: 131_072,
                    weight: 65_536,
                    confidence: 65_536,
                    expected: 100,
                    observed: 450,
                }],
            },
            provenance: vec![record],
            merged: MergedSnap {
                packets: 1200,
                syn_total: 700,
                len_n: 1200,
                median_len: 60,
            },
        }
    }

    #[test]
    fn hand_built_snapshot_round_trips() {
        let snap = sample_snapshot();
        let text = render_snapshot_json(&snap);
        let parsed = parse_outcome_json(&text).expect("rendered snapshot parses");
        assert_eq!(parsed, snap);
    }

    #[test]
    fn none_detected_at_round_trips_as_null() {
        let mut snap = sample_snapshot();
        snap.detected_at = None;
        snap.ensemble.engines[0].first_fired_at = None;
        let text = render_snapshot_json(&snap);
        assert!(text.contains("\"detected_at\":null"));
        let parsed = parse_outcome_json(&text).expect("parses");
        assert_eq!(parsed, snap);
    }

    #[test]
    fn parse_reports_the_offending_path() {
        let snap = sample_snapshot();
        let text = render_snapshot_json(&snap);
        let broken = text.replace("\"combined_q16\":80000", "\"combined_q17\":80000");
        let err = parse_outcome_json(&broken).expect_err("missing field must fail");
        assert!(err.contains("combined_q16"), "unhelpful error: {err}");
        assert!(err.contains("$.provenance[0]"), "no path in error: {err}");
    }

    #[test]
    fn malformed_json_is_rejected() {
        assert!(parse_outcome_json("{\"packets\":").is_err());
        assert!(parse_outcome_json("[]").is_err());
    }
}
