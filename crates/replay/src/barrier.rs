//! Sparse epoch-barrier merging.
//!
//! Both replay engines used to rebuild the merged [`ShardState`] from
//! scratch at every epoch barrier — a fold over *all* tracker cells of
//! *all* surviving shards, so merge cost grew linearly with shard
//! count regardless of how little state an epoch actually touched.
//! [`BarrierMerger`] keeps the previous barrier's merged view as an
//! accumulator and, on steady-state epochs, ships only each shard's
//! **delta** (the cells mutated since the previous barrier, tracked by
//! `stat4_core::DeltaMergeable` dirty journals) into it.
//!
//! # Rebuild triggers
//!
//! The delta path is only sound while the accumulator reflects exactly
//! the set of shards it was built from. The merger falls back to a
//! full rebuild — the old fold, preserving its quarantine semantics
//! bit for bit — whenever:
//!
//! - it has no accumulator yet (first barrier, or first barrier after
//!   a checkpoint resume — restored trackers re-base their journals,
//!   so nothing is pending anyway), or
//! - the alive map changed since the accumulator was built (a shard
//!   was quarantined, so its history must leave the merged view; this
//!   also covers total shard loss, where the rebuild produces the
//!   fresh-empty state the old path produced).
//!
//! After a rebuild every surviving shard's journal is re-based
//! ([`ShardState::discard_delta`]) so the next barrier's deltas are
//! relative to what the accumulator already holds.
//!
//! # Interval-scoped state
//!
//! The engines zero each shard's interval scalars and wash its HLL
//! after every barrier ([`ShardState::close_interval`]), so on a delta
//! epoch each shard's *current* interval values are exactly its
//! contribution to the closing epoch. The merger therefore zeroes the
//! accumulator's interval fields before applying deltas; the result is
//! bit-identical to the fresh fold the rebuild path computes.

use crate::{merge_surviving_entries, ReplayConfig, ShardIncident, ShardState};

/// What one barrier merge did — feeds the `merge_delta_bytes` /
/// `merge_skipped_registers` / `merge_rebuilds` telemetry.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct BarrierStats {
    /// Wire bytes the delta path shipped (0 on a rebuild).
    pub delta_bytes: u64,
    /// Register cells present in the shards but absent from the deltas
    /// — untouched state a full merge would have re-folded.
    pub skipped_registers: u64,
    /// Whether this barrier fell back to a full rebuild.
    pub rebuilt: bool,
}

/// Incremental cross-shard merger: owns the merged view between
/// barriers and folds per-shard deltas into it.
#[derive(Debug)]
pub(crate) struct BarrierMerger {
    acc: Option<ShardState>,
    /// Alive map the accumulator was built over.
    acc_alive: Vec<bool>,
}

impl BarrierMerger {
    pub(crate) fn new() -> Self {
        Self {
            acc: None,
            acc_alive: Vec::new(),
        }
    }

    /// Merges the surviving shards for one epoch barrier. `entries`
    /// are `(shard index, state)` pairs for every *populated* slot;
    /// `alive` is indexed by shard index and may be flipped off by the
    /// rebuild path's quarantine handling, exactly as
    /// [`merge_surviving_entries`] did.
    pub(crate) fn merge(
        &mut self,
        entries: &mut [(usize, &mut ShardState)],
        alive: &mut [bool],
        cfg: &ReplayConfig,
        epoch_idx: u64,
        incidents: &mut Vec<ShardIncident>,
    ) -> BarrierStats {
        let mut stats = BarrierStats::default();
        if let Some(acc) = self.acc.as_mut().filter(|_| self.acc_alive == alive) {
            // Interval-scoped fields start fresh each epoch; the
            // shards' current values are this epoch's contributions.
            acc.syn_in_interval = 0;
            acc.packets_in_interval = 0;
            acc.len_sum_in_interval = 0;
            acc.src_hll.reset();
            for (s, state) in entries.iter_mut() {
                if !alive[*s] {
                    continue;
                }
                let delta = state.take_delta();
                stats.delta_bytes += delta.wire_bytes();
                stats.skipped_registers +=
                    state.register_cells().saturating_sub(delta.touched_registers());
                // Geometry is immutable after construction and was
                // validated when the accumulator was (re)built, so a
                // mismatch here is unreachable.
                acc.apply_delta(&delta)
                    .expect("delta from a validated shard cannot mismatch");
            }
        } else {
            stats.rebuilt = true;
            let ro: Vec<(usize, &ShardState)> =
                entries.iter().map(|(s, st)| (*s, &**st)).collect();
            let merged = merge_surviving_entries(&ro, alive, cfg, epoch_idx, incidents);
            drop(ro);
            for (s, state) in entries.iter_mut() {
                if alive[*s] {
                    state.discard_delta();
                }
            }
            self.acc = Some(merged);
            // Captured *after* the merge: the rebuild itself may have
            // quarantined a mismatching shard.
            self.acc_alive = alive.to_vec();
        }
        stats
    }

    /// The merged view of the latest barrier.
    ///
    /// # Panics
    ///
    /// Panics if called before the first [`Self::merge`].
    pub(crate) fn merged(&self) -> &ShardState {
        self.acc.as_ref().expect("merge() before merged()")
    }
}
