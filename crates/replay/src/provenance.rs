//! Alert provenance: the full causal record behind each drilldown
//! trigger a replay run fired.
//!
//! When the ensemble (or its combined weighted score) pulls the
//! drilldown trigger at an epoch barrier, the engines capture one
//! [`AlertProvenanceRecord`]: the merged signals every engine read,
//! each engine's score against its threshold at fire time
//! ([`anomaly::AlertProvenance`]), the epoch's *lineage* — which shard
//! reports arrived, which earlier epochs carried forward under report
//! loss, every quarantine so far — and the drilldown rebind
//! transactions the trigger caused.
//!
//! Everything here derives only from merged state and deterministic
//! supervisor events, so provenance is part of the pool-vs-reference
//! bit-identity surface (`tests/pool.rs`) and survives the JSON round
//! trip in [`crate::snapshot`] field-for-field.

use crate::{IncidentKind, ShardIncident};
use anomaly::{AlertProvenance, DrillOutcome, EnsembleVerdict, RebindTransaction, SignalContext,
    SignalValues};

/// A quarantine event referenced from an alert's lineage, with the
/// incident kind rendered as a stable string so records round-trip
/// through JSON without loss.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IncidentRef {
    /// Index of the quarantined shard.
    pub shard: usize,
    /// Epoch at which it was quarantined.
    pub epoch: u64,
    /// `"crashed"`, `"panicked: <msg>"` or `"merge_failed: <msg>"`.
    pub detail: String,
}

impl From<&ShardIncident> for IncidentRef {
    fn from(i: &ShardIncident) -> Self {
        let detail = match &i.kind {
            IncidentKind::Crashed => String::from("crashed"),
            IncidentKind::Panicked(msg) => format!("panicked: {msg}"),
            IncidentKind::MergeFailed(msg) => format!("merge_failed: {msg}"),
        };
        Self {
            shard: i.shard,
            epoch: i.epoch,
            detail,
        }
    }
}

/// How the firing interval's merged report came to be: which shards
/// contributed, what carried forward, what the supervisor had done by
/// then.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EpochLineage {
    /// The epoch whose report fired.
    pub epoch: u64,
    /// Shards alive after this epoch's merge — whose state is in the
    /// merged view the engines judged.
    pub delivered_shards: Vec<usize>,
    /// Earlier epochs whose reports were lost on the control channel
    /// and carried (cumulative-register style) into this one.
    pub carried_epochs: Vec<u64>,
    /// Intervals the delivered report spans (`carried_epochs + 1`).
    pub spanned: i64,
    /// Frames rerouted from quarantined shards to survivors in this
    /// epoch.
    pub rerouted_frames: u64,
    /// Every quarantine up to and including this epoch, in occurrence
    /// order.
    pub quarantined: Vec<IncidentRef>,
}

/// The supervisor-side facts [`AlertProvenanceRecord::capture`] folds
/// into a lineage — what the run knew at the detect site, before any
/// provenance shaping.
#[derive(Debug)]
pub struct LineageSources<'a> {
    /// Shards alive after this epoch's merge.
    pub delivered_shards: Vec<usize>,
    /// Epochs whose reports were lost and carried into this one.
    pub carried_from: &'a [u64],
    /// Frames rerouted from quarantined shards this epoch.
    pub rerouted_frames: u64,
    /// Every quarantine incident so far, in occurrence order.
    pub incidents: &'a [ShardIncident],
}

/// One fired alert with its statistical provenance, epoch lineage and
/// the drilldown transactions it caused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AlertProvenanceRecord {
    /// Ordinal of the record within the run (stable alert id).
    pub id: u64,
    /// Per-engine scores, signals and trigger cause at fire time.
    pub provenance: AlertProvenance,
    /// How the firing report was assembled.
    pub lineage: EpochLineage,
    /// Rebind transactions the trigger caused (empty once the ladder
    /// is at host granularity).
    pub drilldown: Vec<RebindTransaction>,
}

impl AlertProvenanceRecord {
    /// Captures one record at the detect site. Both replay engines
    /// call this with identical inputs, which is what keeps provenance
    /// on the bit-identity surface.
    #[must_use]
    pub fn capture(
        id: u64,
        ctx: &SignalContext<'_>,
        verdict: &EnsembleVerdict,
        outcome: DrillOutcome,
        sources: LineageSources<'_>,
    ) -> Self {
        let DrillOutcome {
            cause,
            transactions,
        } = outcome;
        Self {
            id,
            provenance: AlertProvenance::assemble(SignalValues::capture(ctx), verdict, cause),
            lineage: EpochLineage {
                epoch: verdict.epoch,
                delivered_shards: sources.delivered_shards,
                carried_epochs: sources.carried_from.to_vec(),
                spanned: ctx.spanned,
                rerouted_frames: sources.rerouted_frames,
                quarantined: sources.incidents.iter().map(IncidentRef::from).collect(),
            },
            drilldown: transactions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn incident_ref_renders_each_kind() {
        let cases = [
            (IncidentKind::Crashed, "crashed"),
            (
                IncidentKind::Panicked(String::from("boom")),
                "panicked: boom",
            ),
            (
                IncidentKind::MergeFailed(String::from("bad geometry")),
                "merge_failed: bad geometry",
            ),
        ];
        for (kind, want) in cases {
            let r = IncidentRef::from(&ShardIncident {
                shard: 3,
                epoch: 7,
                kind,
            });
            assert_eq!(r.shard, 3);
            assert_eq!(r.epoch, 7);
            assert_eq!(r.detail, want);
        }
    }
}
