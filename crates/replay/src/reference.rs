//! The original per-epoch thread-scope replay engine, kept as the
//! **conformance baseline** for the persistent worker pool.
//!
//! This is the engine the crate shipped before the pool rewrite: every
//! detector interval it partitions the interval's frames serially on
//! the coordinator, spawns one scoped thread per surviving shard,
//! joins them all, merges, and tears the scope down again. Spawn/join
//! per interval is exactly the overhead the pool removes — but the
//! outcome (merged state, alerts, health, telemetry counter sums) is a
//! pure function of the schedule and fault schedule, so the pool is
//! required to reproduce it bit for bit. `tests/pool.rs` asserts that
//! equivalence and `crates/bench` measures the speedup against this
//! module.
//!
//! Nothing here is deprecated API surface: it exists so the comparison
//! target is the real former engine, not a reconstruction.

use crate::provenance::{AlertProvenanceRecord, LineageSources};
use crate::{
    build_ensemble, merge_surviving, next_alive, panic_message, EnsembleReport, IncidentKind,
    ReplayConfig, ReplayHealth, ReplayOutcome, ReplayTelemetry, ShardIncident, ShardState,
};
use anomaly::{ScoreDrilldown, SignalContext, SynFloodEngine};
use faultinject::{FaultSchedule, ShardFaultKind};
use workloads::Schedule;

/// [`crate::run_replay`] on the reference engine — no faults.
///
/// # Panics
///
/// Panics if `cfg.shards` is zero.
#[must_use]
pub fn run_replay(schedule: &Schedule, cfg: &ReplayConfig) -> ReplayOutcome {
    run_replay_with_faults(schedule, cfg, &FaultSchedule::none())
}

/// The pre-pool [`crate::run_replay_with_faults`]: per-epoch scoped
/// worker threads, serial coordinator-side partitioning, no
/// pipelining. Semantics documented on the crate-level function; this
/// body is the behavioural specification the pool engine is tested
/// against.
///
/// # Panics
///
/// Panics if `cfg.shards` is zero.
#[must_use]
pub fn run_replay_with_faults(
    schedule: &Schedule,
    cfg: &ReplayConfig,
    faults: &FaultSchedule,
) -> ReplayOutcome {
    assert!(cfg.shards >= 1, "need at least one shard");
    let interval = cfg.detector.interval_ns.max(1);
    let batch = cfg.batch.max(1);

    let mut shards: Vec<ShardState> = (0..cfg.shards).map(|_| ShardState::new(cfg)).collect();
    let mut alive: Vec<bool> = vec![true; cfg.shards];
    let mut incidents: Vec<ShardIncident> = Vec::new();
    let mut ensemble = build_ensemble(cfg);
    let mut telemetry = ReplayTelemetry::new(cfg.shards);
    let mut packets: u64 = 0;
    let mut epochs: u64 = 0;
    let mut packets_rerouted: u64 = 0;
    let mut reports_dropped: u64 = 0;
    // Counts from intervals whose epoch report was lost; folded into
    // the next delivered report (switch registers are cumulative). The
    // delivered report spans `carried_epochs + 1` intervals, so the
    // engines observe the per-interval average — otherwise a run of
    // dropped reports would masquerade as a spike. HLL registers are
    // not carried: a dropped interval's distinct-source registers wash
    // at its barrier.
    let mut carried_syns: i64 = 0;
    let mut carried_packets: i64 = 0;
    let mut carried_len_sum: i64 = 0;
    let mut carried_epochs: i64 = 0;
    // Epoch ordinals of the carried (dropped) reports — alert lineage.
    let mut carried_from: Vec<u64> = Vec::new();
    // Drilldown ladder fed by every delivered verdict; each trigger
    // yields one provenance record (identical to the pool engine).
    let mut drill = ScoreDrilldown::new(cfg.ensemble.trigger);
    let mut provenance: Vec<AlertProvenanceRecord> = Vec::new();

    // Incremental barrier merger — same delta path as the pool engine,
    // so conformance covers the sparse merge on both sides.
    let mut merger = crate::barrier::BarrierMerger::new();

    let started = std::time::Instant::now();

    // Cut the schedule into epochs (one detector interval each). The
    // schedule is time-sorted, so each epoch is a contiguous run.
    let mut i = 0;
    while i < schedule.len() {
        let epoch_idx = schedule[i].0 / interval;
        let mut j = i;
        while j < schedule.len() && schedule[j].0 / interval == epoch_idx {
            j += 1;
        }
        let epoch_frames = &schedule[i..j];
        i = j;
        let incidents_before = incidents.len();

        // Deterministic flow-affine split of this epoch's frames.
        // Frames whose home shard was quarantined in an earlier epoch
        // reroute to the next survivor in ring order (the controller's
        // repartitioning); with no survivors at all they are lost.
        let mut work: Vec<Vec<&bytes::Bytes>> = vec![Vec::new(); cfg.shards];
        let mut epoch_rerouted: u64 = 0;
        for (_, frame) in epoch_frames {
            let home = workloads::shard::shard_of(frame, cfg.shards);
            let target = if alive[home] {
                Some(home)
            } else {
                next_alive(&alive, home)
            };
            if let Some(t) = target {
                if t != home {
                    epoch_rerouted += 1;
                }
                work[t].push(frame);
            }
        }
        packets_rerouted += epoch_rerouted;

        // Scheduled faults for this epoch. Crashes are handled here on
        // the supervisor side — the shard is quarantined before its
        // thread would spawn, so its slice of this interval is lost.
        let mut recover_started: Option<std::time::Instant> = None;
        let plan: Vec<Option<ShardFaultKind>> = (0..cfg.shards)
            .map(|s| {
                if alive[s] {
                    faults.shard_fault(epoch_idx, s)
                } else {
                    None
                }
            })
            .collect();
        for (s, fault) in plan.iter().enumerate() {
            let Some(kind) = fault else { continue };
            telemetry.faults_injected.inc();
            if *kind == ShardFaultKind::Crash {
                recover_started.get_or_insert_with(std::time::Instant::now);
                alive[s] = false;
                incidents.push(ShardIncident {
                    shard: s,
                    epoch: epoch_idx,
                    kind: IncidentKind::Crashed,
                });
            }
        }

        // One thread per surviving shard; the scope end is the epoch
        // barrier. Each thread updates its own ShardMetrics
        // (single-owner, no atomics) at batch granularity and reports
        // its busy time so barrier idle time can be attributed after
        // the join. A failed join quarantines the shard instead of
        // propagating the panic.
        telemetry.trace.begin("ingest", epoch_idx);
        let epoch_started = std::time::Instant::now();
        let results: Vec<(usize, Result<u64, String>)> = std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (s, (((state, m), tracer), list)) in shards
                .iter_mut()
                .zip(telemetry.shards.iter_mut())
                .zip(telemetry.shard_traces.iter_mut())
                .zip(&work)
                .enumerate()
            {
                if !alive[s] {
                    continue;
                }
                let fault = plan[s];
                let handle = scope.spawn(move || {
                    match fault {
                        // Before any ingest (and before the span
                        // opens), so the quarantined state is a clean
                        // epoch boundary.
                        Some(ShardFaultKind::Panic) => {
                            panic!("injected fault: shard {s} panicked at epoch {epoch_idx}")
                        }
                        Some(ShardFaultKind::Stall { ns }) => {
                            std::thread::sleep(std::time::Duration::from_nanos(ns));
                        }
                        _ => {}
                    }
                    tracer.begin("ingest", epoch_idx);
                    let busy = std::time::Instant::now();
                    for chunk in list.chunks(batch) {
                        for frame in chunk {
                            state.ingest(frame);
                        }
                        m.packets.add(chunk.len() as u64);
                        m.batches.inc();
                        m.batch_size.record(chunk.len() as u64);
                    }
                    let ns = u64::try_from(busy.elapsed().as_nanos()).unwrap_or(u64::MAX);
                    m.ingest_ns.add(ns);
                    tracer.end("ingest", epoch_idx);
                    ns
                });
                handles.push((s, handle));
            }
            handles
                .into_iter()
                .map(|(s, h)| (s, h.join().map_err(panic_message)))
                .collect()
        });
        let epoch_wall = u64::try_from(epoch_started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        telemetry.trace.end("ingest", epoch_idx);
        for (s, r) in &results {
            match r {
                Ok(busy) => {
                    telemetry.shards[*s]
                        .barrier_wait_ns
                        .record(epoch_wall.saturating_sub(*busy));
                }
                Err(msg) => {
                    recover_started.get_or_insert_with(std::time::Instant::now);
                    alive[*s] = false;
                    incidents.push(ShardIncident {
                        shard: *s,
                        epoch: epoch_idx,
                        kind: IncidentKind::Panicked(msg.clone()),
                    });
                }
            }
        }
        packets += epoch_frames.len() as u64;
        epochs += 1;

        // Barrier work: fold surviving shard state into a fresh global
        // view and (unless this epoch's report is lost) let the
        // central detector judge the merged aggregates.
        telemetry.trace.begin("merge", epoch_idx);
        let merge_started = std::time::Instant::now();
        let mut entries: Vec<(usize, &mut ShardState)> =
            shards.iter_mut().enumerate().collect();
        let merge_stats = merger.merge(&mut entries, &mut alive, cfg, epoch_idx, &mut incidents);
        drop(entries);
        let merged = merger.merged();
        let merge_ns = u64::try_from(merge_started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        telemetry.trace.end("merge", epoch_idx);
        telemetry.merge_ns.record(merge_ns);
        telemetry.merge_delta_bytes.add(merge_stats.delta_bytes);
        telemetry
            .merge_skipped_registers
            .add(merge_stats.skipped_registers);
        if merge_stats.rebuilt {
            telemetry.merge_rebuilds.inc();
        }
        let at = (epoch_idx + 1) * interval;
        let mut any_fired = false;
        if faults.drop_epoch_report(epoch_idx) {
            reports_dropped += 1;
            telemetry.reports_dropped.inc();
            telemetry.trace.instant("report_dropped", epoch_idx);
            carried_syns += merged.syn_in_interval;
            carried_packets += merged.packets_in_interval;
            carried_len_sum += merged.len_sum_in_interval;
            carried_epochs += 1;
            carried_from.push(epoch_idx);
        } else {
            telemetry.trace.begin("detect", epoch_idx);
            let span = carried_epochs + 1;
            let ctx = SignalContext {
                at,
                epoch: epoch_idx,
                interval_ns: interval,
                spanned: span,
                packets: (merged.packets_in_interval + carried_packets) / span,
                syns: (merged.syn_in_interval + carried_syns) / span,
                len_sum: (merged.len_sum_in_interval + carried_len_sum) / span,
                distinct_sources: i64::try_from(merged.src_hll.estimate()).unwrap_or(i64::MAX),
                median_len: crate::median_len_signal(
                    &merged.len_median,
                    &mut telemetry.median_fallbacks,
                ),
                kinds: &merged.kinds,
                len_stats: &merged.len_stats,
            };
            let verdict = ensemble.observe(&ctx);
            any_fired = !verdict.fired.is_empty();
            if let Some(outcome) = drill.observe(&verdict) {
                if !outcome.transactions.is_empty() {
                    telemetry.trace.instant("rebind", epoch_idx);
                }
                let delivered: Vec<usize> = alive
                    .iter()
                    .enumerate()
                    .filter(|&(_, a)| *a)
                    .map(|(s, _)| s)
                    .collect();
                provenance.push(AlertProvenanceRecord::capture(
                    provenance.len() as u64,
                    &ctx,
                    &verdict,
                    outcome,
                    LineageSources {
                        delivered_shards: delivered,
                        carried_from: &carried_from,
                        rerouted_frames: epoch_rerouted,
                        incidents: &incidents,
                    },
                ));
            }
            telemetry.trace.end("detect", epoch_idx);
            carried_syns = 0;
            carried_packets = 0;
            carried_len_sum = 0;
            carried_epochs = 0;
            carried_from.clear();
        }
        if any_fired {
            telemetry.trace.instant("alert", epoch_idx);
        }
        // Actual wall time of the whole epoch (spawn through merge and
        // detection) — see the pool engine for the double-count this
        // replaces.
        telemetry
            .epoch_ns
            .record(u64::try_from(epoch_started.elapsed().as_nanos()).unwrap_or(u64::MAX));
        telemetry.epochs.inc();

        // Quarantine bookkeeping: recovery is complete once the
        // surviving state is re-merged, so the time-to-recover clock
        // runs from the first failure this epoch to here.
        let new_incidents = incidents.len() - incidents_before;
        if new_incidents > 0 {
            telemetry.shards_quarantined.add(new_incidents as u64);
            telemetry.trace.instant("quarantine", epoch_idx);
            let t0 = recover_started.unwrap_or(merge_started);
            let spent = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
            for _ in 0..new_incidents {
                telemetry.recover_ns.record(spent);
            }
        }

        for (i, (s, m)) in shards
            .iter_mut()
            .zip(telemetry.shards.iter_mut())
            .enumerate()
        {
            telemetry.shard_traces[i].begin("close_interval", epoch_idx);
            m.syn_packets
                .add(crate::closed_interval_syns(s.syn_in_interval, &mut telemetry.syn_clamps));
            s.close_interval();
            telemetry.shard_traces[i].end("close_interval", epoch_idx);
        }
    }

    let elapsed = started.elapsed();
    telemetry.elapsed_ns = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
    let syn_engine = ensemble
        .engine::<SynFloodEngine>("synflood")
        .expect("ensemble always carries the SYN-flood engine");
    let alerts = syn_engine.alerts().to_vec();
    let detected_at = syn_engine.detected_at();
    telemetry.alerts.add(alerts.len() as u64);
    telemetry.detector = syn_engine.metrics().clone();
    telemetry.engines = ensemble
        .metrics_by_name()
        .into_iter()
        .map(|(n, m)| (n.to_string(), m))
        .collect();
    let report = EnsembleReport {
        engines: ensemble.summaries(),
        fired: ensemble.fired_log.clone(),
    };

    let final_epoch = schedule.last().map_or(0, |(t, _)| t / interval);
    let merged = merge_surviving(&shards, &mut alive, cfg, final_epoch, &mut incidents);
    let health = ReplayHealth {
        shards_configured: cfg.shards,
        shards_alive: alive.iter().filter(|a| **a).count(),
        packets_offered: packets,
        packets_ingested: merged.packets,
        packets_lost: packets.saturating_sub(merged.packets),
        packets_rerouted,
        reports_dropped,
        incidents,
    };
    telemetry.packets_lost.add(health.packets_lost);
    telemetry.packets_rerouted.add(health.packets_rerouted);
    ReplayOutcome {
        merged,
        alerts,
        detected_at,
        packets,
        epochs,
        elapsed,
        health,
        ensemble: report,
        provenance,
        telemetry,
    }
}
