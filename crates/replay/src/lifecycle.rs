//! Replay-pool lifecycle: drain-swap-resume reconfiguration, crash
//! recovery plumbing, and overload shedding.
//!
//! The pool's epoch barrier is a natural *drain point*: at the top of
//! each loop iteration every shard state is home with the coordinator
//! and no epoch is in flight. This module defines what may happen
//! there:
//!
//! - **Hot swaps** ([`SwapRequest`]) — replace the compiled data-plane
//!   program, rewrite binding tables, and/or override ensemble engine
//!   weights, atomically. Every component is vetted *before* anything
//!   mutates: the proposed program must be symbolically equivalent to
//!   the running shadow model ([`p4sim::check_equivalence`]), binding
//!   rewrites must pass the rebind verifier ([`p4sim::vet_rebind`]),
//!   and weight overrides must name real engines with sane values. One
//!   failure rejects the whole request; the old configuration is
//!   untouched (verified down to the generation counter by
//!   `tests/lifecycle.rs`). A stale `expected_generation` — e.g. a
//!   duplicate delivery injected by the `reconfig_storm` fault domain —
//!   is rejected the same way, which makes commits idempotent under
//!   control-channel duplication.
//! - **Checkpoints** — at a configurable epoch cadence the coordinator
//!   writes a [`crate::ckpt::Checkpoint`]; see that module for the
//!   crash-consistency discipline.
//! - **Cooperative kill** — `kill_at_epoch` stops the run at a drain
//!   point with a clean worker teardown, modelling the crash the
//!   recovery test resumes from (the checkpoint directory then looks
//!   exactly as it would after a real mid-run death, because
//!   checkpoints are written *before* the kill check).
//! - **Shedding** ([`ShedController`]) — when epoch queue-wait climbs
//!   past watermarks the coordinator sheds telemetry detail in a strict
//!   ladder: trace spans first, then histogram records. Counters and
//!   alerts are never shed, and nothing on the [`crate::RunSnapshot`]
//!   surface is affected, so an overloaded run still reports correct
//!   outcomes — it just explains itself less verbosely.
//!
//! Everything the lifecycle does is reported out of band in a
//! [`LifecycleReport`], never inside [`crate::ReplayOutcome`]'s
//! snapshot surface: recovery must be able to prove bit-identity of
//! the outcome, so lifecycle chatter gets its own document.

use crate::ckpt::{ContextEntry, OverrideEntry};
use crate::provenance::AlertProvenanceRecord;
use crate::snapshot::{obj, opt_u64, req_arr, req_str, req_u64};
use crate::{ShardIncident, ShardState};
use anomaly::{Ensemble, ScoreDrilldown};
use p4sim::{check_equivalence, vet_rebind, Pipeline, RuntimeRequest, SymbolicOptions};
use std::path::PathBuf;
use telemetry::json::render;
use telemetry::Json;

/// Symbolic budgets for in-line swap vetting — same reduced settings
/// the drilldown ladder uses for per-transaction rebind checks: big
/// enough to cover every path of the case-study program, small enough
/// to run at an epoch barrier.
#[must_use]
pub(crate) fn vet_options() -> SymbolicOptions {
    SymbolicOptions {
        path_budget: 512,
        samples: 16,
        ..SymbolicOptions::default()
    }
}

// ---- shedding -------------------------------------------------------

/// How much telemetry the coordinator is currently recording.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ShedLevel {
    /// Everything: trace spans, histograms, counters.
    Full,
    /// Trace spans shed; histograms and counters still recorded.
    NoTraces,
    /// Trace spans and histogram records shed; only counters (and
    /// alerts, which are outcome data, not telemetry) remain.
    CountersOnly,
}

impl ShedLevel {
    /// Stable tag for event logs.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            ShedLevel::Full => "full",
            ShedLevel::NoTraces => "no_traces",
            ShedLevel::CountersOnly => "counters_only",
        }
    }
}

/// Queue-wait watermarks driving the shed ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShedPolicy {
    /// Worst per-epoch queue wait above which trace spans shed.
    pub high_ns: u64,
    /// Worst per-epoch queue wait above which histograms shed too.
    pub critical_ns: u64,
    /// Consecutive epochs below `high_ns` before stepping one level
    /// back down (hysteresis against flapping).
    pub calm_epochs: u32,
}

impl Default for ShedPolicy {
    /// Defaults are far above anything a healthy in-process run sees
    /// (worst observed queue waits are microseconds; injected stalls
    /// are ≤ a few ms), so shedding only engages under genuine
    /// overload.
    fn default() -> Self {
        Self {
            high_ns: 50_000_000,
            critical_ns: 500_000_000,
            calm_epochs: 3,
        }
    }
}

/// Watermark-driven shed state machine. Escalation is immediate (one
/// bad epoch is enough — by the time queue wait is visible the backlog
/// already exists); de-escalation needs `calm_epochs` consecutive
/// quiet epochs and steps down one level at a time.
#[derive(Debug, Clone)]
pub struct ShedController {
    policy: ShedPolicy,
    level: ShedLevel,
    calm_streak: u32,
}

impl ShedController {
    /// A controller starting at [`ShedLevel::Full`].
    #[must_use]
    pub fn new(policy: ShedPolicy) -> Self {
        Self {
            policy,
            level: ShedLevel::Full,
            calm_streak: 0,
        }
    }

    /// Current level.
    #[must_use]
    pub fn level(&self) -> ShedLevel {
        self.level
    }

    /// May trace spans be recorded right now?
    #[must_use]
    pub fn allow_traces(&self) -> bool {
        self.level == ShedLevel::Full
    }

    /// May histogram values be recorded right now?
    #[must_use]
    pub fn allow_histograms(&self) -> bool {
        self.level != ShedLevel::CountersOnly
    }

    /// Feeds one epoch's worst shard queue wait; returns the new level
    /// when it changed.
    pub fn observe(&mut self, worst_queue_wait_ns: u64) -> Option<ShedLevel> {
        let before = self.level;
        if worst_queue_wait_ns >= self.policy.critical_ns {
            self.level = ShedLevel::CountersOnly;
            self.calm_streak = 0;
        } else if worst_queue_wait_ns >= self.policy.high_ns {
            self.level = self.level.max(ShedLevel::NoTraces);
            self.calm_streak = 0;
        } else {
            self.calm_streak += 1;
            if self.calm_streak >= self.policy.calm_epochs && self.level != ShedLevel::Full {
                self.level = match self.level {
                    ShedLevel::CountersOnly => ShedLevel::NoTraces,
                    _ => ShedLevel::Full,
                };
                self.calm_streak = 0;
            }
        }
        (self.level != before).then_some(self.level)
    }
}

// ---- swaps ----------------------------------------------------------

/// A drain-point reconfiguration request: any combination of a new
/// compiled program, binding-table rewrites, and ensemble weight
/// overrides, applied atomically or not at all.
#[derive(Debug, Clone)]
pub struct SwapRequest {
    /// Epoch ordinal (index into the run's interval sequence) at whose
    /// drain point this request applies.
    pub at_epoch: u64,
    /// Generation the requester believes is running; a mismatch means
    /// the request is stale (duplicate delivery, lost race) and is
    /// rejected without vetting.
    pub expected_generation: u64,
    /// Replacement compiled program; must be symbolically equivalent
    /// to the running shadow model.
    pub program: Option<Pipeline>,
    /// Binding-table rewrites, vetted as one transaction.
    pub bindings: Vec<RuntimeRequest>,
    /// Ensemble weight overrides: `(engine name, Q16 weight)`; `None`
    /// restores the engine's own weight.
    pub weights: Vec<(String, Option<i64>)>,
}

/// The vetted effect of an accepted swap, computed without mutating
/// anything — commit is a plain move of these values.
pub(crate) struct VettedSwap {
    /// The next shadow model (program swap and/or binding rewrites
    /// applied), when the request touched the data plane.
    pub(crate) shadow: Option<Pipeline>,
    /// One-line human summary for the event log.
    pub(crate) detail: String,
}

/// Vets `req` against the current configuration without changing it.
///
/// # Errors
///
/// The rejection reason: stale generation, a non-equivalent program
/// (with the first counterexample noted), a binding transaction the
/// rebind verifier refused, or an unknown/negative weight override.
pub(crate) fn vet_swap(
    req: &SwapRequest,
    generation: u64,
    shadow: Option<&Pipeline>,
    ensemble: &Ensemble,
) -> Result<VettedSwap, String> {
    if req.expected_generation != generation {
        return Err(format!(
            "stale request: expected generation {}, running generation {}",
            req.expected_generation, generation
        ));
    }
    let engines: Vec<&'static str> = ensemble
        .weight_overrides()
        .into_iter()
        .map(|(n, _)| n)
        .collect();
    for (name, weight) in &req.weights {
        if !engines.iter().any(|e| e == name) {
            return Err(format!("weight override names unknown engine {name:?}"));
        }
        if let Some(w) = weight {
            if *w < 0 {
                return Err(format!("weight override for {name:?} is negative ({w})"));
            }
        }
    }
    let opts = vet_options();
    let mut parts: Vec<String> = Vec::new();
    let mut next: Option<Pipeline> = None;
    if let Some(proposed) = &req.program {
        let Some(current) = shadow else {
            return Err(String::from(
                "program swap without a running shadow model to verify against",
            ));
        };
        let equiv = check_equivalence(current, proposed, &opts);
        if let Some(ce) = &equiv.counterexample {
            return Err(format!(
                "proposed program diverges from the running one: {} ({} witnesses checked)",
                ce.detail, equiv.witnesses
            ));
        }
        parts.push(format!(
            "program verified equivalent ({} witnesses)",
            equiv.witnesses
        ));
        next = Some(proposed.clone());
    }
    if !req.bindings.is_empty() {
        let base = next.as_ref().or(shadow).ok_or_else(|| {
            String::from("binding rewrite without a running shadow model to verify against")
        })?;
        let report = vet_rebind(base, &RuntimeRequest::Batch(req.bindings.clone()), &opts);
        if !report.passes() {
            let first = report
                .diagnostics
                .iter()
                .find(|d| d.severity == p4sim::Severity::Error)
                .map_or_else(
                    || String::from("rebind verifier refused the transaction"),
                    |d| d.message.clone(),
                );
            return Err(format!("binding rewrite rejected: {first}"));
        }
        let vetted = report
            .vetted
            .ok_or_else(|| String::from("rebind verifier passed but returned no vetted model"))?;
        parts.push(format!(
            "{} binding request(s) vetted",
            req.bindings.len()
        ));
        next = Some(vetted);
    }
    if !req.weights.is_empty() {
        parts.push(format!("{} weight override(s)", req.weights.len()));
    }
    if parts.is_empty() {
        parts.push(String::from("no-op reconfiguration"));
    }
    Ok(VettedSwap {
        shadow: next,
        detail: parts.join(", "),
    })
}

// ---- plan -----------------------------------------------------------

/// Everything the caller wants the lifecycle layer to do during one
/// `pool::run`. [`LifecyclePlan::none`] is the zero-cost default every
/// plain replay uses.
#[derive(Debug, Clone, Default)]
pub struct LifecyclePlan {
    /// Where to write checkpoints; `None` disables checkpointing.
    pub checkpoint_dir: Option<PathBuf>,
    /// Write a checkpoint every this many epochs (0 = only where the
    /// cadence from a resumed run demands; effectively disabled).
    pub checkpoint_every: u64,
    /// Stop cooperatively at this epoch ordinal's drain point — the
    /// crash model the recovery test resumes from.
    pub kill_at_epoch: Option<u64>,
    /// Reconfiguration requests, matched by epoch ordinal.
    pub swaps: Vec<SwapRequest>,
    /// The compiled program whose shadow model seeds generation 0.
    /// Required for program/binding swaps and for resuming a
    /// checkpoint that carries data-plane state.
    pub initial_program: Option<Pipeline>,
    /// The fault spec string the run was started with, embedded in
    /// checkpoints so resume can rebuild the exact schedule.
    pub faults_spec: String,
    /// Overload-shedding watermarks.
    pub shed: ShedPolicy,
}

impl LifecyclePlan {
    /// The inert plan: no checkpoints, no kill, no swaps, default
    /// shedding watermarks (which a healthy run never reaches).
    #[must_use]
    pub fn none() -> Self {
        Self::default()
    }
}

/// State handed to `pool::run` when continuing from a checkpoint —
/// everything the run loop would otherwise initialise fresh.
pub(crate) struct ResumeState {
    pub(crate) next_ordinal: usize,
    pub(crate) next_checkpoint_ordinal: u64,
    pub(crate) packets: u64,
    pub(crate) epochs: u64,
    pub(crate) packets_rerouted: u64,
    pub(crate) reports_dropped: u64,
    pub(crate) carried_syns: i64,
    pub(crate) carried_packets: i64,
    pub(crate) carried_len_sum: i64,
    pub(crate) carried_epochs: i64,
    pub(crate) carried_from: Vec<u64>,
    pub(crate) alive: Vec<bool>,
    pub(crate) states: Vec<Option<ShardState>>,
    pub(crate) incidents: Vec<ShardIncident>,
    pub(crate) ensemble: Ensemble,
    pub(crate) drill: ScoreDrilldown,
    pub(crate) context_log: Vec<ContextEntry>,
    pub(crate) overrides: Vec<OverrideEntry>,
    pub(crate) provenance: Vec<AlertProvenanceRecord>,
    pub(crate) generation: u64,
    pub(crate) swaps_committed: u64,
    pub(crate) shadow: Option<Pipeline>,
    /// Ordinal of the checkpoint this resume loaded; `None` marks a
    /// fresh (non-resumed) run.
    pub(crate) resumed_from: Option<u64>,
    /// Fallback notes from the checkpoint loader (rejected newer
    /// files), surfaced as events.
    pub(crate) fallbacks: Vec<String>,
}

impl ResumeState {
    /// The initial state of a fresh run — what `pool::run` used to
    /// build inline before resume existed.
    pub(crate) fn fresh(cfg: &crate::ReplayConfig) -> Self {
        Self {
            next_ordinal: 0,
            next_checkpoint_ordinal: 0,
            packets: 0,
            epochs: 0,
            packets_rerouted: 0,
            reports_dropped: 0,
            carried_syns: 0,
            carried_packets: 0,
            carried_len_sum: 0,
            carried_epochs: 0,
            carried_from: Vec::new(),
            alive: vec![true; cfg.shards],
            states: (0..cfg.shards).map(|_| Some(ShardState::new(cfg))).collect(),
            incidents: Vec::new(),
            ensemble: crate::build_ensemble(cfg),
            drill: ScoreDrilldown::new(cfg.ensemble.trigger),
            context_log: Vec::new(),
            overrides: Vec::new(),
            provenance: Vec::new(),
            generation: 0,
            swaps_committed: 0,
            shadow: None,
            resumed_from: None,
            fallbacks: Vec::new(),
        }
    }
}

// ---- report ---------------------------------------------------------

/// One lifecycle occurrence, stamped with the epoch ordinal at whose
/// drain point it happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LifecycleEvent {
    /// Epoch ordinal (index into the run's interval sequence).
    pub epoch: u64,
    /// Stable machine tag: `checkpoint_written`, `checkpoint_fallback`,
    /// `killed`, `swap_committed`, `swap_rejected`,
    /// `stale_swap_rejected`, `resumed`, `shed_level`.
    pub kind: String,
    /// Human-readable specifics.
    pub detail: String,
}

/// The out-of-band record of everything the lifecycle layer did during
/// one run. Deliberately not part of [`crate::ReplayOutcome`]: the
/// outcome's snapshot surface must stay bit-identical across
/// checkpoint/resume and accepted-vs-rejected swap schedules, and
/// lifecycle chatter (ordinals, fallback notes) legitimately differs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LifecycleReport {
    /// Everything that happened, in order.
    pub events: Vec<LifecycleEvent>,
    /// Final reconfiguration generation.
    pub generation: u64,
    /// Checkpoints written this run.
    pub checkpoints_written: u64,
    /// Swap requests committed this run.
    pub swaps_committed: u64,
    /// Swap requests rejected this run (vet failures + stale
    /// duplicates).
    pub swaps_rejected: u64,
    /// Checkpoint ordinal this run resumed from, if it did.
    pub resumed_from: Option<u64>,
}

impl LifecycleReport {
    pub fn push(&mut self, epoch: u64, kind: &str, detail: String) {
        self.events.push(LifecycleEvent {
            epoch,
            kind: kind.to_string(),
            detail,
        });
    }

    /// Renders the report as a JSON document (the `--lifecycle-out`
    /// format, consumed by `stat4-trace explain`).
    #[must_use]
    pub fn to_json(&self) -> String {
        render(&obj(vec![
            (
                "events",
                Json::Arr(
                    self.events
                        .iter()
                        .map(|e| {
                            obj(vec![
                                ("epoch", Json::Int(i64::try_from(e.epoch).unwrap_or(i64::MAX))),
                                ("kind", Json::Str(e.kind.clone())),
                                ("detail", Json::Str(e.detail.clone())),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "generation",
                Json::Int(i64::try_from(self.generation).unwrap_or(i64::MAX)),
            ),
            (
                "checkpoints_written",
                Json::Int(i64::try_from(self.checkpoints_written).unwrap_or(i64::MAX)),
            ),
            (
                "swaps_committed",
                Json::Int(i64::try_from(self.swaps_committed).unwrap_or(i64::MAX)),
            ),
            (
                "swaps_rejected",
                Json::Int(i64::try_from(self.swaps_rejected).unwrap_or(i64::MAX)),
            ),
            (
                "resumed_from",
                self.resumed_from.map_or(Json::Null, |o| {
                    Json::Int(i64::try_from(o).unwrap_or(i64::MAX))
                }),
            ),
        ]))
    }

    /// Parses a document produced by [`Self::to_json`].
    ///
    /// # Errors
    ///
    /// A description of the first missing or mistyped field.
    pub fn parse(text: &str) -> Result<Self, String> {
        let doc = Json::parse(text)?;
        let events = req_arr(&doc, "events", "$")?
            .iter()
            .enumerate()
            .map(|(i, e)| {
                let p = format!("$.events[{i}]");
                Ok(LifecycleEvent {
                    epoch: req_u64(e, "epoch", &p)?,
                    kind: req_str(e, "kind", &p)?,
                    detail: req_str(e, "detail", &p)?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(Self {
            events,
            generation: req_u64(&doc, "generation", "$")?,
            checkpoints_written: req_u64(&doc, "checkpoints_written", "$")?,
            swaps_committed: req_u64(&doc, "swaps_committed", "$")?,
            swaps_rejected: req_u64(&doc, "swaps_rejected", "$")?,
            resumed_from: opt_u64(&doc, "resumed_from", "$")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shed_escalates_immediately_and_calms_with_hysteresis() {
        let mut c = ShedController::new(ShedPolicy {
            high_ns: 100,
            critical_ns: 1_000,
            calm_epochs: 2,
        });
        assert!(c.allow_traces() && c.allow_histograms());
        assert_eq!(c.observe(500), Some(ShedLevel::NoTraces));
        assert!(!c.allow_traces() && c.allow_histograms());
        assert_eq!(c.observe(5_000), Some(ShedLevel::CountersOnly));
        assert!(!c.allow_traces() && !c.allow_histograms());
        // One calm epoch is not enough; two step down one level only.
        assert_eq!(c.observe(0), None);
        assert_eq!(c.observe(0), Some(ShedLevel::NoTraces));
        assert_eq!(c.observe(0), None);
        assert_eq!(c.observe(0), Some(ShedLevel::Full));
        assert!(c.allow_traces() && c.allow_histograms());
    }

    #[test]
    fn shed_never_de_escalates_past_full_or_flaps_on_spikes() {
        let mut c = ShedController::new(ShedPolicy {
            high_ns: 100,
            critical_ns: 1_000,
            calm_epochs: 3,
        });
        for _ in 0..10 {
            assert_eq!(c.observe(0), None, "calm controller stays at full");
        }
        c.observe(200);
        // A calm streak interrupted by another spike restarts.
        assert_eq!(c.observe(0), None);
        assert_eq!(c.observe(0), None);
        assert_eq!(c.observe(200), None, "still shedding");
        assert_eq!(c.observe(0), None);
        assert_eq!(c.observe(0), None);
        assert_eq!(c.observe(0), Some(ShedLevel::Full));
    }

    #[test]
    fn report_round_trips_through_json() {
        let mut r = LifecycleReport {
            generation: 2,
            checkpoints_written: 3,
            swaps_committed: 1,
            swaps_rejected: 2,
            resumed_from: Some(1),
            ..LifecycleReport::default()
        };
        r.push(4, "swap_committed", String::from("program verified equivalent"));
        r.push(5, "shed_level", String::from("no_traces"));
        let text = r.to_json();
        let parsed = LifecycleReport::parse(&text).expect("own rendering parses");
        assert_eq!(parsed, r);
        assert_eq!(parsed.to_json(), text);
    }

    #[test]
    fn report_parse_reports_field_paths() {
        let err = LifecycleReport::parse("{\"events\":[{\"epoch\":1}]}").unwrap_err();
        assert!(err.contains("$.events[0]"), "{err}");
    }
}
