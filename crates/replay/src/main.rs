//! Replay-engine driver: replays a synthetic workload through the
//! sharded engine and prints the merged statistics, alerts, and
//! throughput. Optionally exports the run's full telemetry snapshot.
//!
//! ```text
//! replay [synflood|mix] [shards] [interval_ms]
//!        [--shards N] [--interval-ms M] [--batch B]
//!        [--faults SPEC] [--seed N]
//!        [--metrics-out PATH] [--metrics-format prom|json]
//!        [--trace-out PATH] [--snapshot-out PATH]
//! ```
//!
//! Flags win over the positional forms. `--metrics-out` writes the
//! telemetry snapshot to PATH — JSON by default, Prometheus text
//! exposition with `--metrics-format prom`. `--trace-out` writes the
//! merged epoch lifecycle trace (coordinator plus every shard) in
//! Chrome trace-event format — open it in `about:tracing`/Perfetto or
//! feed it to `stat4-trace`. `--snapshot-out` writes the deterministic
//! run snapshot (alerts, health, ensemble report, alert provenance) as
//! JSON for `stat4-trace explain`.
//!
//! `--faults` runs the replay under a seeded fault schedule (see
//! `faultinject` for the spec grammar, e.g.
//! `shard_crash=1@3,ctrl_loss=0.30`); `--seed` picks the chaos seed
//! (default 0). The run then prints a `chaos:` summary line with the
//! surviving shard count, coverage, and incident tally — and the same
//! `(spec, seed)` pair always replays bit-identically.
//!
//! Zero is rejected for `--shards`, `--interval-ms` and `--batch` with
//! a specific message: a zero interval would spin the epoch cutter on
//! one timestamp forever and a zero batch would divide by zero in the
//! dispatcher, so they fail loudly at the door instead.

use anomaly::synflood::SynFloodConfig;
use anomaly::EnsembleConfig;
use faultinject::FaultSchedule;
use replay::{render_outcome_json, run_replay_with_faults, ReplayConfig};
use workloads::{
    CardinalitySpikeWorkload, LowSlowScanWorkload, PacketMixWorkload, Schedule,
    SeasonalDriftWorkload, SynFloodWorkload,
};

const USAGE: &str = "usage: replay [synflood|mix|seasonal|scan|cardinality] [shards] [interval_ms]\n\
     \x20             [--shards N] [--interval-ms M] [--batch B]\n\
     \x20             [--faults SPEC] [--seed N]\n\
     \x20             [--metrics-out PATH] [--metrics-format prom|json]\n\
     \x20             [--trace-out PATH] [--snapshot-out PATH]";

fn usage() -> ! {
    eprintln!("{USAGE}");
    std::process::exit(2);
}

/// What the command line asked for.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Options {
    workload: String,
    shards: usize,
    interval_ms: u64,
    batch: usize,
    faults: Option<String>,
    seed: u64,
    metrics_out: Option<String>,
    metrics_format: MetricsFormat,
    trace_out: Option<String>,
    snapshot_out: Option<String>,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            workload: String::from("synflood"),
            shards: 4,
            interval_ms: 10,
            batch: 256,
            faults: None,
            seed: 0,
            metrics_out: None,
            metrics_format: MetricsFormat::Json,
            trace_out: None,
            snapshot_out: None,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MetricsFormat {
    Json,
    Prom,
}

/// Parses the argument list, or explains what is wrong with it. Pure
/// (no printing, no exiting) so the validation — notably the zero
/// rejections for `--shards` / `--interval-ms` / `--batch` — is unit
/// testable; `main` turns `Err` into the usage exit.
fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options::default();
    let mut positional = 0;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut flag_value = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        let parse_num = |name: &str, v: &str| -> Result<u64, String> {
            v.parse()
                .map_err(|_| format!("{name} wants a number, got {v:?}"))
        };
        match arg.as_str() {
            "--shards" => {
                let v = flag_value("--shards")?;
                opts.shards = parse_num("--shards", &v)? as usize;
            }
            "--interval-ms" => {
                let v = flag_value("--interval-ms")?;
                opts.interval_ms = parse_num("--interval-ms", &v)?;
            }
            "--batch" => {
                let v = flag_value("--batch")?;
                opts.batch = parse_num("--batch", &v)? as usize;
            }
            "--faults" => opts.faults = Some(flag_value("--faults")?),
            "--seed" => {
                let v = flag_value("--seed")?;
                opts.seed = parse_num("--seed", &v)?;
            }
            "--metrics-out" => opts.metrics_out = Some(flag_value("--metrics-out")?),
            "--metrics-format" => {
                opts.metrics_format = match flag_value("--metrics-format")?.as_str() {
                    "json" => MetricsFormat::Json,
                    "prom" => MetricsFormat::Prom,
                    other => {
                        return Err(format!("unknown metrics format {other:?} (want prom|json)"))
                    }
                };
            }
            "--trace-out" => opts.trace_out = Some(flag_value("--trace-out")?),
            "--snapshot-out" => opts.snapshot_out = Some(flag_value("--snapshot-out")?),
            "--help" | "-h" => return Err(String::new()),
            flag if flag.starts_with("--") => return Err(format!("unknown flag {flag}")),
            positional_arg => {
                match positional {
                    0 => opts.workload = positional_arg.to_string(),
                    1 => opts.shards = parse_num("shards", positional_arg)? as usize,
                    2 => opts.interval_ms = parse_num("interval_ms", positional_arg)?,
                    _ => return Err(format!("too many positionals at {positional_arg:?}")),
                }
                positional += 1;
            }
        }
    }
    if opts.shards == 0 {
        return Err(String::from(
            "--shards 0 makes no sense: the engine needs at least one shard",
        ));
    }
    if opts.interval_ms == 0 {
        return Err(String::from(
            "--interval-ms 0 would spin forever cutting zero-length epochs; \
             use an interval of at least 1 ms",
        ));
    }
    if opts.batch == 0 {
        return Err(String::from(
            "--batch 0 would divide by zero in the dispatcher; \
             use a batch of at least 1 frame",
        ));
    }
    Ok(opts)
}

fn generate(name: &str) -> Schedule {
    match name {
        "synflood" => {
            let (s, victim) = SynFloodWorkload {
                background_cps: 500,
                flood_pps: 50_000,
                flood_start: 400_000_000,
                duration: 900_000_000,
                seed: 4,
                ..SynFloodWorkload::default()
            }
            .generate();
            println!("workload: synflood (victim {victim}, onset 400 ms)");
            s
        }
        "mix" => {
            let (s, _) = PacketMixWorkload {
                packets: 100_000,
                ..PacketMixWorkload::default()
            }
            .generate();
            println!("workload: mix (100k packets, stable composition)");
            s
        }
        "seasonal" => {
            let w = SeasonalDriftWorkload::default();
            println!(
                "workload: seasonal (season {} intervals, phase drift at {} ms)",
                w.season_len,
                w.aligned_drift_start() / 1_000_000,
            );
            w.generate()
        }
        "scan" => {
            let w = LowSlowScanWorkload::default();
            let (s, victim) = w.generate();
            println!(
                "workload: scan (low-and-slow {} SYN/interval scan of {victim} from {} at {} ms)",
                w.scan_syns,
                w.scanner(),
                w.scan_start / 1_000_000,
            );
            s
        }
        "cardinality" => {
            let w = CardinalitySpikeWorkload::default();
            println!(
                "workload: cardinality (pool of {} sources, spoofed sweep at {} ms)",
                w.sources,
                w.spike_start / 1_000_000,
            );
            w.generate()
        }
        _ => usage(),
    }
}

fn write_or_die(path: &str, contents: &str, what: &str) {
    if let Err(e) = std::fs::write(path, contents) {
        eprintln!("replay: cannot write {what} to {path}: {e}");
        std::process::exit(1);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("replay: {msg}");
            }
            usage()
        }
    };

    let schedule = generate(&opts.workload);
    let cfg = ReplayConfig {
        shards: opts.shards,
        batch: opts.batch,
        detector: SynFloodConfig {
            interval_ns: opts.interval_ms * 1_000_000,
            ..SynFloodConfig::default()
        },
        ensemble: EnsembleConfig::default(),
    };
    let faults = match &opts.faults {
        Some(spec) => match FaultSchedule::parse(spec, opts.seed) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("replay: {e}");
                std::process::exit(2);
            }
        },
        None => FaultSchedule::none(),
    };
    let out = run_replay_with_faults(&schedule, &cfg, &faults);

    println!(
        "replayed {} packets over {} epochs on {} shard(s) in {:.1} ms ({:.0} pkt/s)",
        out.packets,
        out.epochs,
        opts.shards,
        out.elapsed.as_secs_f64() * 1e3,
        out.throughput_pps(),
    );
    println!(
        "merged: mean frame len = {} B (N·x domain /{}), median len = {:?} B, kinds seen = {}",
        if out.merged.len_stats.n() > 0 {
            out.merged.len_stats.xsum() / out.merged.len_stats.n() as i64
        } else {
            0
        },
        out.merged.len_stats.n(),
        out.merged.len_median.estimate(0),
        out.merged.kinds.n_distinct(),
    );
    match out.detected_at {
        Some(at) => println!(
            "alerts: {} (first at {:.1} ms)",
            out.alerts.len(),
            at as f64 / 1e6
        ),
        None => println!("alerts: none"),
    }
    for e in &out.ensemble.engines {
        match e.first_fired_at {
            Some(at) => println!(
                "engine {:>11}: {} fire(s), first at {:.1} ms",
                e.name,
                e.fires,
                at as f64 / 1e6
            ),
            None => println!("engine {:>11}: quiet", e.name),
        }
    }
    // Every record is in the snapshot; the console shows the first few
    // so a flood of alerts doesn't drown the summary.
    const PROVENANCE_SHOWN: usize = 5;
    for rec in out.provenance.iter().take(PROVENANCE_SHOWN) {
        println!(
            "provenance: alert {} at epoch {} — cause {:?}, {} shard(s) delivered, \
             {} carried epoch(s), {} rebind tx(s)",
            rec.id,
            rec.lineage.epoch,
            rec.provenance.cause,
            rec.lineage.delivered_shards.len(),
            rec.lineage.carried_epochs.len(),
            rec.drilldown.len(),
        );
    }
    if out.provenance.len() > PROVENANCE_SHOWN {
        println!(
            "provenance: … {} more record(s) (use --snapshot-out + `stat4-trace explain`)",
            out.provenance.len() - PROVENANCE_SHOWN,
        );
    }
    if opts.faults.is_some() {
        let h = &out.health;
        println!(
            "chaos: seed {} | shards alive {}/{}, coverage {:.1}%, incidents {}, \
             reports dropped {}, rerouted {} frames",
            opts.seed,
            h.shards_alive,
            h.shards_configured,
            h.coverage() * 100.0,
            h.incidents.len(),
            h.reports_dropped,
            h.packets_rerouted,
        );
        for inc in &h.incidents {
            println!(
                "chaos: shard {} quarantined at epoch {}: {:?}",
                inc.shard, inc.epoch, inc.kind
            );
        }
    }

    if let Some(path) = &opts.metrics_out {
        let snap = out.telemetry.snapshot();
        let rendered = match opts.metrics_format {
            MetricsFormat::Json => telemetry::render_json(&snap),
            MetricsFormat::Prom => telemetry::render_prometheus(&snap),
        };
        write_or_die(path, &rendered, "metrics");
        println!(
            "metrics: {} families / {} samples written to {path}",
            snap.metrics.len(),
            snap.sample_count(),
        );
    }
    if let Some(path) = &opts.trace_out {
        let merged = out.telemetry.merged_trace();
        write_or_die(path, &merged.to_chrome_json(), "trace");
        println!(
            "trace: {} events from {} thread(s) written to {path} ({} dropped at cap)",
            merged.events.len(),
            merged.threads,
            merged.dropped,
        );
    }
    if let Some(path) = &opts.snapshot_out {
        write_or_die(path, &render_outcome_json(&out), "run snapshot");
        println!(
            "snapshot: {} alert(s), {} provenance record(s) written to {path}",
            out.alerts.len(),
            out.provenance.len(),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Options, String> {
        let owned: Vec<String> = args.iter().map(ToString::to_string).collect();
        parse_args(&owned)
    }

    #[test]
    fn defaults_with_no_args() {
        let opts = parse(&[]).unwrap();
        assert_eq!(opts, Options::default());
    }

    #[test]
    fn flags_and_positionals_parse() {
        let opts = parse(&["mix", "2", "5"]).unwrap();
        assert_eq!(opts.workload, "mix");
        assert_eq!(opts.shards, 2);
        assert_eq!(opts.interval_ms, 5);

        let opts = parse(&[
            "--shards", "8", "--interval-ms", "20", "--batch", "64", "--faults",
            "shard_crash=1@3", "--seed", "9", "--metrics-out", "m.json", "--metrics-format",
            "prom", "--trace-out", "t.json", "--snapshot-out", "run.json",
        ])
        .unwrap();
        assert_eq!(opts.shards, 8);
        assert_eq!(opts.interval_ms, 20);
        assert_eq!(opts.batch, 64);
        assert_eq!(opts.faults.as_deref(), Some("shard_crash=1@3"));
        assert_eq!(opts.seed, 9);
        assert_eq!(opts.metrics_out.as_deref(), Some("m.json"));
        assert_eq!(opts.metrics_format, MetricsFormat::Prom);
        assert_eq!(opts.trace_out.as_deref(), Some("t.json"));
        assert_eq!(opts.snapshot_out.as_deref(), Some("run.json"));
    }

    #[test]
    fn flags_win_over_positionals() {
        let opts = parse(&["synflood", "2", "--shards", "8"]).unwrap();
        assert_eq!(opts.shards, 8);
    }

    #[test]
    fn zero_interval_rejected_with_specific_message() {
        // Regression: a zero interval used to be clamped deep in the
        // engine (`interval_ns.max(1)`), turning a typo'd flag into a
        // per-nanosecond epoch busy-loop instead of an error.
        let err = parse(&["--interval-ms", "0"]).unwrap_err();
        assert!(err.contains("--interval-ms 0"), "got: {err}");
        assert!(err.contains("at least 1 ms"), "actionable: {err}");
    }

    #[test]
    fn zero_batch_rejected_with_specific_message() {
        let err = parse(&["--batch", "0"]).unwrap_err();
        assert!(err.contains("--batch 0"), "got: {err}");
    }

    #[test]
    fn zero_shards_rejected_with_specific_message() {
        let err = parse(&["--shards", "0"]).unwrap_err();
        assert!(err.contains("--shards 0"), "got: {err}");
        // Zero via the positional form is caught by the same gate.
        let err = parse(&["synflood", "0"]).unwrap_err();
        assert!(err.contains("at least one shard"), "got: {err}");
    }

    #[test]
    fn malformed_and_unknown_args_rejected() {
        assert!(parse(&["--shards"]).unwrap_err().contains("needs a value"));
        assert!(parse(&["--shards", "many"])
            .unwrap_err()
            .contains("wants a number"));
        assert!(parse(&["--frobnicate"])
            .unwrap_err()
            .contains("unknown flag"));
        assert!(parse(&["--metrics-format", "xml"])
            .unwrap_err()
            .contains("unknown metrics format"));
        assert!(parse(&["a", "1", "2", "3"])
            .unwrap_err()
            .contains("too many positionals"));
    }
}
