//! Replay-engine driver: replays a synthetic workload through the
//! sharded engine and prints the merged statistics, alerts, and
//! throughput. Optionally exports the run's full telemetry snapshot.
//!
//! ```text
//! replay [synflood|mix] [shards] [interval_ms]
//!        [--shards N] [--interval-ms M] [--batch B]
//!        [--faults SPEC] [--seed N]
//!        [--metrics-out PATH] [--metrics-format prom|json]
//!        [--trace-out PATH] [--snapshot-out PATH]
//! ```
//!
//! Flags win over the positional forms. `--metrics-out` writes the
//! telemetry snapshot to PATH — JSON by default, Prometheus text
//! exposition with `--metrics-format prom`. `--trace-out` writes the
//! merged epoch lifecycle trace (coordinator plus every shard) in
//! Chrome trace-event format — open it in `about:tracing`/Perfetto or
//! feed it to `stat4-trace`. `--snapshot-out` writes the deterministic
//! run snapshot (alerts, health, ensemble report, alert provenance) as
//! JSON for `stat4-trace explain`.
//!
//! `--faults` runs the replay under a seeded fault schedule (see
//! `faultinject` for the spec grammar, e.g.
//! `shard_crash=1@3,ctrl_loss=0.30`); `--seed` picks the chaos seed
//! (default 0). The run then prints a `chaos:` summary line with the
//! surviving shard count, coverage, and incident tally — and the same
//! `(spec, seed)` pair always replays bit-identically. `--faults @FILE`
//! loads the spec from FILE instead: one entry (or comma-joined group)
//! per line, `#` comments allowed, and a malformed line is rejected
//! with its file, line number and reason.
//!
//! Lifecycle flags: `--checkpoint-dir D --checkpoint-every N` writes a
//! crash-consistent checkpoint into D every N epochs;
//! `--kill-at-epoch K` stops the run cooperatively at ordinal K's
//! drain point (the crash model); `--resume` continues the newest
//! valid checkpoint in D to completion — the resumed run's
//! `--snapshot-out` document is byte-identical to an uninterrupted
//! run's. `--swap-demo E` stages a hot-swap pair at epoch ordinal E:
//! an equivalent recompiled program that commits, then a poisoned
//! (behaviourally different) program that the shadow-model verifier
//! rejects. `--lifecycle-out PATH` writes the lifecycle event report
//! as JSON for `stat4-trace explain`.
//!
//! Zero is rejected for `--shards`, `--interval-ms` and `--batch` with
//! a specific message: a zero interval would spin the epoch cutter on
//! one timestamp forever and a zero batch would divide by zero in the
//! dispatcher, so they fail loudly at the door instead.

use anomaly::synflood::SynFloodConfig;
use anomaly::EnsembleConfig;
use faultinject::{FaultSchedule, FaultSpec};
use replay::{
    render_outcome_json, resume_from_checkpoint, run_replay_lifecycle, LifecyclePlan,
    LifecycleReport, ReplayConfig, ReplayOutcome, SwapRequest,
};
use stat4_p4::{CaseStudyApp, CaseStudyParams};
use std::path::PathBuf;
use workloads::{
    CardinalitySpikeWorkload, LowSlowScanWorkload, PacketMixWorkload, Schedule,
    SeasonalDriftWorkload, SynFloodWorkload,
};

const USAGE: &str = "usage: replay [synflood|mix|seasonal|scan|cardinality] [shards] [interval_ms]\n\
     \x20             [--shards N] [--interval-ms M] [--batch B]\n\
     \x20             [--faults SPEC|@FILE] [--seed N]\n\
     \x20             [--checkpoint-dir DIR] [--checkpoint-every N]\n\
     \x20             [--kill-at-epoch K] [--resume] [--swap-demo E]\n\
     \x20             [--lifecycle-out PATH]\n\
     \x20             [--metrics-out PATH] [--metrics-format prom|json]\n\
     \x20             [--trace-out PATH] [--snapshot-out PATH]";

fn usage() -> ! {
    eprintln!("{USAGE}");
    std::process::exit(2);
}

/// What the command line asked for.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Options {
    workload: String,
    shards: usize,
    interval_ms: u64,
    batch: usize,
    faults: Option<String>,
    seed: u64,
    checkpoint_dir: Option<String>,
    checkpoint_every: u64,
    kill_at_epoch: Option<u64>,
    resume: bool,
    swap_demo: Option<u64>,
    lifecycle_out: Option<String>,
    metrics_out: Option<String>,
    metrics_format: MetricsFormat,
    trace_out: Option<String>,
    snapshot_out: Option<String>,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            workload: String::from("synflood"),
            shards: 4,
            interval_ms: 10,
            batch: 256,
            faults: None,
            seed: 0,
            checkpoint_dir: None,
            checkpoint_every: 0,
            kill_at_epoch: None,
            resume: false,
            swap_demo: None,
            lifecycle_out: None,
            metrics_out: None,
            metrics_format: MetricsFormat::Json,
            trace_out: None,
            snapshot_out: None,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MetricsFormat {
    Json,
    Prom,
}

/// Parses the argument list, or explains what is wrong with it. Pure
/// (no printing, no exiting) so the validation — notably the zero
/// rejections for `--shards` / `--interval-ms` / `--batch` — is unit
/// testable; `main` turns `Err` into the usage exit.
fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options::default();
    let mut positional = 0;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut flag_value = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        let parse_num = |name: &str, v: &str| -> Result<u64, String> {
            v.parse()
                .map_err(|_| format!("{name} wants a number, got {v:?}"))
        };
        match arg.as_str() {
            "--shards" => {
                let v = flag_value("--shards")?;
                opts.shards = parse_num("--shards", &v)? as usize;
            }
            "--interval-ms" => {
                let v = flag_value("--interval-ms")?;
                opts.interval_ms = parse_num("--interval-ms", &v)?;
            }
            "--batch" => {
                let v = flag_value("--batch")?;
                opts.batch = parse_num("--batch", &v)? as usize;
            }
            "--faults" => opts.faults = Some(flag_value("--faults")?),
            "--seed" => {
                let v = flag_value("--seed")?;
                opts.seed = parse_num("--seed", &v)?;
            }
            "--checkpoint-dir" => opts.checkpoint_dir = Some(flag_value("--checkpoint-dir")?),
            "--checkpoint-every" => {
                let v = flag_value("--checkpoint-every")?;
                opts.checkpoint_every = parse_num("--checkpoint-every", &v)?;
            }
            "--kill-at-epoch" => {
                let v = flag_value("--kill-at-epoch")?;
                opts.kill_at_epoch = Some(parse_num("--kill-at-epoch", &v)?);
            }
            "--resume" => opts.resume = true,
            "--swap-demo" => {
                let v = flag_value("--swap-demo")?;
                opts.swap_demo = Some(parse_num("--swap-demo", &v)?);
            }
            "--lifecycle-out" => opts.lifecycle_out = Some(flag_value("--lifecycle-out")?),
            "--metrics-out" => opts.metrics_out = Some(flag_value("--metrics-out")?),
            "--metrics-format" => {
                opts.metrics_format = match flag_value("--metrics-format")?.as_str() {
                    "json" => MetricsFormat::Json,
                    "prom" => MetricsFormat::Prom,
                    other => {
                        return Err(format!("unknown metrics format {other:?} (want prom|json)"))
                    }
                };
            }
            "--trace-out" => opts.trace_out = Some(flag_value("--trace-out")?),
            "--snapshot-out" => opts.snapshot_out = Some(flag_value("--snapshot-out")?),
            "--help" | "-h" => return Err(String::new()),
            flag if flag.starts_with("--") => return Err(format!("unknown flag {flag}")),
            positional_arg => {
                match positional {
                    0 => opts.workload = positional_arg.to_string(),
                    1 => opts.shards = parse_num("shards", positional_arg)? as usize,
                    2 => opts.interval_ms = parse_num("interval_ms", positional_arg)?,
                    _ => return Err(format!("too many positionals at {positional_arg:?}")),
                }
                positional += 1;
            }
        }
    }
    if opts.shards == 0 {
        return Err(String::from(
            "--shards 0 makes no sense: the engine needs at least one shard",
        ));
    }
    if opts.interval_ms == 0 {
        return Err(String::from(
            "--interval-ms 0 would spin forever cutting zero-length epochs; \
             use an interval of at least 1 ms",
        ));
    }
    if opts.batch == 0 {
        return Err(String::from(
            "--batch 0 would divide by zero in the dispatcher; \
             use a batch of at least 1 frame",
        ));
    }
    if opts.resume && opts.checkpoint_dir.is_none() {
        return Err(String::from(
            "--resume needs --checkpoint-dir to know where the checkpoints live",
        ));
    }
    if opts.checkpoint_every > 0 && opts.checkpoint_dir.is_none() {
        return Err(String::from(
            "--checkpoint-every needs --checkpoint-dir to have somewhere to write",
        ));
    }
    Ok(opts)
}

/// Resolves a `--faults @FILE` body into an inline spec string. Each
/// non-comment line must parse as a fault spec on its own; a bad line
/// is reported with its file, line number, and the parser's reason so
/// a typo in a 40-line chaos suite names the exact entry at fault.
/// Pure (takes the already-read text) so every rejection is unit
/// testable without touching the filesystem.
fn faults_from_file(path: &str, text: &str) -> Result<String, String> {
    let mut entries = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        // Validate each comma-separated entry on the line individually
        // so the error points at the entry, not the whole line.
        for entry in line.split(',') {
            let entry = entry.trim();
            if entry.is_empty() {
                return Err(format!(
                    "{path}:{}: bad fault spec: empty entry (stray comma?)",
                    idx + 1
                ));
            }
            // `SpecError` already renders as "bad fault spec: ...".
            if let Err(e) = FaultSpec::parse(entry) {
                return Err(format!("{path}:{}: {e}", idx + 1));
            }
            entries.push(entry.to_string());
        }
    }
    if entries.is_empty() {
        return Err(format!(
            "{path}: no fault specs found (only blank lines and comments)"
        ));
    }
    Ok(entries.join(","))
}

/// Builds the `--swap-demo` request pair: an equivalent recompile that
/// should commit (generation 0 → 1), then a behaviourally different
/// "poisoned" build against generation 1 that the shadow-model
/// verifier must reject. Both land at the same drain point so one run
/// exercises both verdicts.
fn swap_demo_requests(at_epoch: u64) -> (p4sim::Pipeline, Vec<SwapRequest>) {
    let build = |params: CaseStudyParams| match CaseStudyApp::build(params) {
        Ok(app) => app,
        Err(e) => {
            eprintln!("replay: cannot build case-study program for --swap-demo: {e}");
            std::process::exit(1);
        }
    };
    let base = build(CaseStudyParams::default());
    let equivalent = build(CaseStudyParams::default());
    // Halving the rate window changes the ring-buffer modulus, so the
    // two builds provably diverge on a concrete witness — the verifier
    // must catch this one.
    let poisoned = build(CaseStudyParams {
        window_size: CaseStudyParams::default().window_size / 2,
        ..CaseStudyParams::default()
    });
    let swaps = vec![
        SwapRequest {
            at_epoch,
            expected_generation: 0,
            program: Some(equivalent.pipeline),
            bindings: Vec::new(),
            weights: Vec::new(),
        },
        SwapRequest {
            at_epoch,
            expected_generation: 1,
            program: Some(poisoned.pipeline),
            bindings: Vec::new(),
            weights: Vec::new(),
        },
    ];
    (base.pipeline, swaps)
}

/// Prints the lifecycle events a CI grep (or a human) cares about:
/// commits, rejections, the kill, the resume point, and any fallback
/// past a corrupt checkpoint.
fn print_lifecycle(report: &LifecycleReport) {
    for ev in &report.events {
        match ev.kind.as_str() {
            "swap_committed" => {
                println!("lifecycle: swap committed at epoch {} ({})", ev.epoch, ev.detail)
            }
            "swap_rejected" | "stale_swap_rejected" => {
                println!("lifecycle: swap rejected at epoch {}: {}", ev.epoch, ev.detail)
            }
            "killed" => println!("lifecycle: killed at epoch {} ({})", ev.epoch, ev.detail),
            "resumed" => println!("lifecycle: resumed at epoch {} ({})", ev.epoch, ev.detail),
            "checkpoint_fallback" => {
                println!("lifecycle: checkpoint fallback: {}", ev.detail)
            }
            "checkpoint_error" => {
                println!("lifecycle: checkpoint error at epoch {}: {}", ev.epoch, ev.detail)
            }
            _ => {}
        }
    }
    if report.checkpoints_written > 0 || report.swaps_committed > 0 || report.swaps_rejected > 0 {
        println!(
            "lifecycle: {} checkpoint(s) written, {} swap(s) committed, {} rejected, generation {}",
            report.checkpoints_written,
            report.swaps_committed,
            report.swaps_rejected,
            report.generation,
        );
    }
}

fn generate(name: &str) -> Schedule {
    match name {
        "synflood" => {
            let (s, victim) = SynFloodWorkload {
                background_cps: 500,
                flood_pps: 50_000,
                flood_start: 400_000_000,
                duration: 900_000_000,
                seed: 4,
                ..SynFloodWorkload::default()
            }
            .generate();
            println!("workload: synflood (victim {victim}, onset 400 ms)");
            s
        }
        "mix" => {
            let (s, _) = PacketMixWorkload {
                packets: 100_000,
                ..PacketMixWorkload::default()
            }
            .generate();
            println!("workload: mix (100k packets, stable composition)");
            s
        }
        "seasonal" => {
            let w = SeasonalDriftWorkload::default();
            println!(
                "workload: seasonal (season {} intervals, phase drift at {} ms)",
                w.season_len,
                w.aligned_drift_start() / 1_000_000,
            );
            w.generate()
        }
        "scan" => {
            let w = LowSlowScanWorkload::default();
            let (s, victim) = w.generate();
            println!(
                "workload: scan (low-and-slow {} SYN/interval scan of {victim} from {} at {} ms)",
                w.scan_syns,
                w.scanner(),
                w.scan_start / 1_000_000,
            );
            s
        }
        "cardinality" => {
            let w = CardinalitySpikeWorkload::default();
            println!(
                "workload: cardinality (pool of {} sources, spoofed sweep at {} ms)",
                w.sources,
                w.spike_start / 1_000_000,
            );
            w.generate()
        }
        _ => usage(),
    }
}

fn write_or_die(path: &str, contents: &str, what: &str) {
    if let Err(e) = std::fs::write(path, contents) {
        eprintln!("replay: cannot write {what} to {path}: {e}");
        std::process::exit(1);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("replay: {msg}");
            }
            usage()
        }
    };

    let schedule = generate(&opts.workload);
    let cfg = ReplayConfig {
        shards: opts.shards,
        batch: opts.batch,
        detector: SynFloodConfig {
            interval_ns: opts.interval_ms * 1_000_000,
            ..SynFloodConfig::default()
        },
        ensemble: EnsembleConfig::default(),
    };
    // `--faults @FILE` reads the spec from a file, validating each
    // line so a malformed entry is reported as file:line: reason.
    let faults_spec = match &opts.faults {
        Some(spec) if spec.starts_with('@') => {
            let path = &spec[1..];
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("replay: cannot read fault spec file {path}: {e}");
                    std::process::exit(2);
                }
            };
            match faults_from_file(path, &text) {
                Ok(joined) => Some(joined),
                Err(e) => {
                    eprintln!("replay: {e}");
                    std::process::exit(2);
                }
            }
        }
        other => other.clone(),
    };
    let faults = match &faults_spec {
        Some(spec) => match FaultSchedule::parse(spec, opts.seed) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("replay: {e}");
                std::process::exit(2);
            }
        },
        None => FaultSchedule::none(),
    };

    let mut plan = LifecyclePlan {
        checkpoint_dir: opts.checkpoint_dir.as_ref().map(PathBuf::from),
        checkpoint_every: opts.checkpoint_every,
        kill_at_epoch: opts.kill_at_epoch,
        faults_spec: faults_spec.clone().unwrap_or_default(),
        ..LifecyclePlan::none()
    };
    if let Some(at) = opts.swap_demo {
        let (base, swaps) = swap_demo_requests(at);
        plan.initial_program = Some(base);
        plan.swaps = swaps;
    }

    let (out, lifecycle): (ReplayOutcome, LifecycleReport) = if opts.resume {
        match resume_from_checkpoint(&schedule, &cfg, &plan) {
            Ok(pair) => pair,
            Err(e) => {
                eprintln!("replay: cannot resume: {e}");
                std::process::exit(1);
            }
        }
    } else {
        run_replay_lifecycle(&schedule, &cfg, &faults, &plan)
    };

    println!(
        "replayed {} packets over {} epochs on {} shard(s) in {:.1} ms ({:.0} pkt/s)",
        out.packets,
        out.epochs,
        opts.shards,
        out.elapsed.as_secs_f64() * 1e3,
        out.throughput_pps(),
    );
    println!(
        "merged: mean frame len = {} B (N·x domain /{}), median len = {:?} B, kinds seen = {}",
        if out.merged.len_stats.n() > 0 {
            out.merged.len_stats.xsum() / out.merged.len_stats.n() as i64
        } else {
            0
        },
        out.merged.len_stats.n(),
        out.merged.len_median.estimate(0),
        out.merged.kinds.n_distinct(),
    );
    match out.detected_at {
        Some(at) => println!(
            "alerts: {} (first at {:.1} ms)",
            out.alerts.len(),
            at as f64 / 1e6
        ),
        None => println!("alerts: none"),
    }
    for e in &out.ensemble.engines {
        match e.first_fired_at {
            Some(at) => println!(
                "engine {:>11}: {} fire(s), first at {:.1} ms",
                e.name,
                e.fires,
                at as f64 / 1e6
            ),
            None => println!("engine {:>11}: quiet", e.name),
        }
    }
    // Every record is in the snapshot; the console shows the first few
    // so a flood of alerts doesn't drown the summary.
    const PROVENANCE_SHOWN: usize = 5;
    for rec in out.provenance.iter().take(PROVENANCE_SHOWN) {
        println!(
            "provenance: alert {} at epoch {} — cause {:?}, {} shard(s) delivered, \
             {} carried epoch(s), {} rebind tx(s)",
            rec.id,
            rec.lineage.epoch,
            rec.provenance.cause,
            rec.lineage.delivered_shards.len(),
            rec.lineage.carried_epochs.len(),
            rec.drilldown.len(),
        );
    }
    if out.provenance.len() > PROVENANCE_SHOWN {
        println!(
            "provenance: … {} more record(s) (use --snapshot-out + `stat4-trace explain`)",
            out.provenance.len() - PROVENANCE_SHOWN,
        );
    }
    print_lifecycle(&lifecycle);
    if let Some(path) = &opts.lifecycle_out {
        write_or_die(path, &lifecycle.to_json(), "lifecycle report");
        println!(
            "lifecycle: {} event(s) written to {path}",
            lifecycle.events.len()
        );
    }
    if faults_spec.is_some() {
        let h = &out.health;
        println!(
            "chaos: seed {} | shards alive {}/{}, coverage {:.1}%, incidents {}, \
             reports dropped {}, rerouted {} frames",
            opts.seed,
            h.shards_alive,
            h.shards_configured,
            h.coverage() * 100.0,
            h.incidents.len(),
            h.reports_dropped,
            h.packets_rerouted,
        );
        for inc in &h.incidents {
            println!(
                "chaos: shard {} quarantined at epoch {}: {:?}",
                inc.shard, inc.epoch, inc.kind
            );
        }
    }

    if let Some(path) = &opts.metrics_out {
        let snap = out.telemetry.snapshot();
        let rendered = match opts.metrics_format {
            MetricsFormat::Json => telemetry::render_json(&snap),
            MetricsFormat::Prom => telemetry::render_prometheus(&snap),
        };
        write_or_die(path, &rendered, "metrics");
        println!(
            "metrics: {} families / {} samples written to {path}",
            snap.metrics.len(),
            snap.sample_count(),
        );
    }
    if let Some(path) = &opts.trace_out {
        let merged = out.telemetry.merged_trace();
        write_or_die(path, &merged.to_chrome_json(), "trace");
        println!(
            "trace: {} events from {} thread(s) written to {path} ({} dropped at cap)",
            merged.events.len(),
            merged.threads,
            merged.dropped,
        );
    }
    if let Some(path) = &opts.snapshot_out {
        write_or_die(path, &render_outcome_json(&out), "run snapshot");
        println!(
            "snapshot: {} alert(s), {} provenance record(s) written to {path}",
            out.alerts.len(),
            out.provenance.len(),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Options, String> {
        let owned: Vec<String> = args.iter().map(ToString::to_string).collect();
        parse_args(&owned)
    }

    #[test]
    fn defaults_with_no_args() {
        let opts = parse(&[]).unwrap();
        assert_eq!(opts, Options::default());
    }

    #[test]
    fn flags_and_positionals_parse() {
        let opts = parse(&["mix", "2", "5"]).unwrap();
        assert_eq!(opts.workload, "mix");
        assert_eq!(opts.shards, 2);
        assert_eq!(opts.interval_ms, 5);

        let opts = parse(&[
            "--shards", "8", "--interval-ms", "20", "--batch", "64", "--faults",
            "shard_crash=1@3", "--seed", "9", "--metrics-out", "m.json", "--metrics-format",
            "prom", "--trace-out", "t.json", "--snapshot-out", "run.json",
        ])
        .unwrap();
        assert_eq!(opts.shards, 8);
        assert_eq!(opts.interval_ms, 20);
        assert_eq!(opts.batch, 64);
        assert_eq!(opts.faults.as_deref(), Some("shard_crash=1@3"));
        assert_eq!(opts.seed, 9);
        assert_eq!(opts.metrics_out.as_deref(), Some("m.json"));
        assert_eq!(opts.metrics_format, MetricsFormat::Prom);
        assert_eq!(opts.trace_out.as_deref(), Some("t.json"));
        assert_eq!(opts.snapshot_out.as_deref(), Some("run.json"));
    }

    #[test]
    fn flags_win_over_positionals() {
        let opts = parse(&["synflood", "2", "--shards", "8"]).unwrap();
        assert_eq!(opts.shards, 8);
    }

    #[test]
    fn zero_interval_rejected_with_specific_message() {
        // Regression: a zero interval used to be clamped deep in the
        // engine (`interval_ns.max(1)`), turning a typo'd flag into a
        // per-nanosecond epoch busy-loop instead of an error.
        let err = parse(&["--interval-ms", "0"]).unwrap_err();
        assert!(err.contains("--interval-ms 0"), "got: {err}");
        assert!(err.contains("at least 1 ms"), "actionable: {err}");
    }

    #[test]
    fn zero_batch_rejected_with_specific_message() {
        let err = parse(&["--batch", "0"]).unwrap_err();
        assert!(err.contains("--batch 0"), "got: {err}");
    }

    #[test]
    fn zero_shards_rejected_with_specific_message() {
        let err = parse(&["--shards", "0"]).unwrap_err();
        assert!(err.contains("--shards 0"), "got: {err}");
        // Zero via the positional form is caught by the same gate.
        let err = parse(&["synflood", "0"]).unwrap_err();
        assert!(err.contains("at least one shard"), "got: {err}");
    }

    #[test]
    fn malformed_and_unknown_args_rejected() {
        assert!(parse(&["--shards"]).unwrap_err().contains("needs a value"));
        assert!(parse(&["--shards", "many"])
            .unwrap_err()
            .contains("wants a number"));
        assert!(parse(&["--frobnicate"])
            .unwrap_err()
            .contains("unknown flag"));
        assert!(parse(&["--metrics-format", "xml"])
            .unwrap_err()
            .contains("unknown metrics format"));
        assert!(parse(&["a", "1", "2", "3"])
            .unwrap_err()
            .contains("too many positionals"));
    }

    #[test]
    fn lifecycle_flags_parse() {
        let opts = parse(&[
            "--checkpoint-dir",
            "ckpts",
            "--checkpoint-every",
            "2",
            "--kill-at-epoch",
            "5",
            "--swap-demo",
            "3",
            "--lifecycle-out",
            "lc.json",
        ])
        .unwrap();
        assert_eq!(opts.checkpoint_dir.as_deref(), Some("ckpts"));
        assert_eq!(opts.checkpoint_every, 2);
        assert_eq!(opts.kill_at_epoch, Some(5));
        assert_eq!(opts.swap_demo, Some(3));
        assert_eq!(opts.lifecycle_out.as_deref(), Some("lc.json"));
        assert!(!opts.resume);

        let opts = parse(&["--resume", "--checkpoint-dir", "ckpts"]).unwrap();
        assert!(opts.resume);
    }

    #[test]
    fn resume_without_checkpoint_dir_rejected() {
        let err = parse(&["--resume"]).unwrap_err();
        assert!(err.contains("--resume needs --checkpoint-dir"), "got: {err}");
    }

    #[test]
    fn checkpoint_every_without_dir_rejected() {
        let err = parse(&["--checkpoint-every", "2"]).unwrap_err();
        assert!(
            err.contains("--checkpoint-every needs --checkpoint-dir"),
            "got: {err}"
        );
    }

    #[test]
    fn fault_file_joins_valid_lines() {
        let text = "# chaos suite\nshard_crash=1@3\n\nctrl_loss=0.30, ctrl_dup=0.10\n";
        let spec = faults_from_file("suite.txt", text).unwrap();
        assert_eq!(spec, "shard_crash=1@3,ctrl_loss=0.30,ctrl_dup=0.10");
        // The joined form must itself parse as a schedule.
        FaultSchedule::parse(&spec, 7).unwrap();
    }

    #[test]
    fn fault_file_reports_file_line_and_reason() {
        let text = "shard_crash=1@3\nno_such_fault=1\n";
        let err = faults_from_file("suite.txt", text).unwrap_err();
        assert!(err.starts_with("suite.txt:2: bad fault spec: "), "got: {err}");
        assert!(err.contains("no_such_fault"), "names the entry: {err}");
    }

    #[test]
    fn fault_file_rejects_malformed_value() {
        let text = "ctrl_loss=lots\n";
        let err = faults_from_file("suite.txt", text).unwrap_err();
        assert!(err.starts_with("suite.txt:1: bad fault spec: "), "got: {err}");
    }

    #[test]
    fn fault_file_rejects_stray_comma() {
        let err = faults_from_file("suite.txt", "shard_crash=1@3,,ctrl_loss=0.1\n").unwrap_err();
        assert!(err.contains("suite.txt:1"), "got: {err}");
        assert!(err.contains("stray comma"), "got: {err}");
    }

    #[test]
    fn fault_file_rejects_empty_file() {
        let err = faults_from_file("suite.txt", "# nothing here\n\n").unwrap_err();
        assert!(err.contains("no fault specs found"), "got: {err}");
    }
}

